package ncache_test

// One benchmark per table and figure of the paper's evaluation (§5), plus
// ablations of the design decisions DESIGN.md calls out. Each benchmark
// runs the full simulated experiment (deterministic, virtual-time) and
// reports the paper's headline quantities as custom metrics. Run with:
//
//	go test -bench=. -benchmem
//
// cmd/ncbench runs the same experiments with longer windows and prints the
// full tables.

import (
	"fmt"
	"testing"

	"ncache/internal/bench"
	"ncache/internal/passthru"
	"ncache/internal/sim"
)

// benchOpts keeps the testing.B variants quick; ncbench uses longer windows.
func benchOpts() bench.Options {
	return bench.Options{
		Warmup:      50 * sim.Millisecond,
		Window:      200 * sim.Millisecond,
		Concurrency: 8,
		Scale:       8,
	}
}

// gainAt returns the NCache-vs-Original throughput gain (%) at a request
// size.
func gainAt(points []bench.NFSPoint, mode passthru.Mode, reqKB int) float64 {
	var base, v float64
	for _, p := range points {
		if p.ReqKB != reqKB {
			continue
		}
		switch p.Mode {
		case passthru.Original:
			base = p.ThroughputMBs
		case mode:
			v = p.ThroughputMBs
		}
	}
	if base <= 0 {
		return 0
	}
	return (v/base - 1) * 100
}

func BenchmarkTable1Report(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table1()
		if len(rows) != 4 {
			b.Fatalf("table1 rows = %d", len(rows))
		}
	}
	fmt.Print(bench.FormatTable1(bench.Table1()))
}

func BenchmarkTable2CopyCounts(b *testing.B) {
	var rows []bench.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Copies != r.Want {
			b.Fatalf("Table 2 mismatch: %s %s = %d, paper %d", r.Server, r.Path, r.Copies, r.Want)
		}
	}
	fmt.Print(bench.FormatTable2(rows))
}

func BenchmarkFig4AllMiss(b *testing.B) {
	var pts []bench.NFSPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.RunFig4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(gainAt(pts, passthru.NCache, 32), "ncache_gain_%@32KB")
	b.ReportMetric(gainAt(pts, passthru.NCache, 16), "ncache_gain_%@16KB")
	fmt.Print(bench.FormatNFSPoints("Figure 4: all-miss", pts))
}

func BenchmarkFig5aAllHitOneNIC(b *testing.B) {
	var pts []bench.NFSPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.RunFig5a(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	// The paper's quantity here is CPU savings at fixed (link-bound)
	// throughput.
	var origCPU, ncCPU float64
	for _, p := range pts {
		if p.ReqKB == 32 {
			switch p.Mode {
			case passthru.Original:
				origCPU = p.ServerCPU
			case passthru.NCache:
				ncCPU = p.ServerCPU
			}
		}
	}
	b.ReportMetric((origCPU-ncCPU)*100, "cpu_saving_pts@32KB")
	fmt.Print(bench.FormatNFSPoints("Figure 5(a): all-hit, one NIC", pts))
}

func BenchmarkFig5bAllHitTwoNIC(b *testing.B) {
	var pts []bench.NFSPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.RunFig5b(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(gainAt(pts, passthru.NCache, 32), "ncache_gain_%@32KB")
	b.ReportMetric(gainAt(pts, passthru.Baseline, 16), "baseline_gain_%@16KB")
	fmt.Print(bench.FormatNFSPoints("Figure 5(b): all-hit, two NICs", pts))
}

func BenchmarkFig6aWebMacro(b *testing.B) {
	var pts []bench.WebPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.RunFig6a(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	var base, nc float64
	for _, p := range pts {
		if p.ParamKB == 500 {
			switch p.Mode {
			case passthru.Original:
				base = p.ThroughputMBs
			case passthru.NCache:
				nc = p.ThroughputMBs
			}
		}
	}
	if base > 0 {
		b.ReportMetric((nc/base-1)*100, "ncache_gain_%@500MB")
	}
	fmt.Print(bench.FormatWebPoints("Figure 6(a): web macro", "wsMB", pts))
}

func BenchmarkFig6bWebRequestSize(b *testing.B) {
	var pts []bench.WebPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.RunFig6b(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	var base, nc float64
	for _, p := range pts {
		if p.ParamKB == 128 {
			switch p.Mode {
			case passthru.Original:
				base = p.ThroughputMBs
			case passthru.NCache:
				nc = p.ThroughputMBs
			}
		}
	}
	if base > 0 {
		b.ReportMetric((nc/base-1)*100, "ncache_gain_%@128KB")
	}
	fmt.Print(bench.FormatWebPoints("Figure 6(b): web all-hit", "reqKB", pts))
}

func BenchmarkFig7SFS(b *testing.B) {
	var pts []bench.SFSPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.RunFig7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	var base30, nc30, base75, nc75 float64
	for _, p := range pts {
		switch {
		case p.RegularDataPct == 30 && p.Mode == passthru.Original:
			base30 = p.OpsPerSec
		case p.RegularDataPct == 30 && p.Mode == passthru.NCache:
			nc30 = p.OpsPerSec
		case p.RegularDataPct == 75 && p.Mode == passthru.Original:
			base75 = p.OpsPerSec
		case p.RegularDataPct == 75 && p.Mode == passthru.NCache:
			nc75 = p.OpsPerSec
		}
	}
	if base30 > 0 {
		b.ReportMetric((nc30/base30-1)*100, "ncache_gain_%@30%data")
	}
	if base75 > 0 {
		b.ReportMetric((nc75/base75-1)*100, "ncache_gain_%@75%data")
	}
	fmt.Print(bench.FormatSFSPoints(pts))
}

// BenchmarkFutureWorkWireFormat evaluates §6's proposal — network-ready
// disk-resident data at the storage target — on the all-miss workload.
func BenchmarkFutureWorkWireFormat(b *testing.B) {
	var pts []bench.WireFormatPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.RunFutureWorkWireFormat(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	var classic, wf float64
	for _, p := range pts {
		if p.Mode == passthru.NCache {
			if p.WireFormat {
				wf = p.ThroughputMBs
			} else {
				classic = p.ThroughputMBs
			}
		}
	}
	if classic > 0 {
		b.ReportMetric((wf/classic-1)*100, "ncache_gain_%_wireformat")
	}
	fmt.Print(bench.FormatWireFormatPoints(pts))
}

// BenchmarkTransportComparison runs the same NFS service over UDP and
// record-marked TCP — isolating the per-packet overhead the paper blames
// for kHTTPd's smaller gains (§5.5).
func BenchmarkTransportComparison(b *testing.B) {
	var pts []bench.TransportPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.RunTransportComparison(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		if p.Mode == passthru.NCache {
			b.ReportMetric(p.ThroughputMBs, "ncache_MBs_"+p.Transport)
		}
	}
	fmt.Print(bench.FormatTransportPoints(pts))
}

// BenchmarkOverheadBreakdown attributes the NCache-vs-baseline CPU gap to
// the module's mechanisms (the paper's §5.5/TR-177 breakdown).
func BenchmarkOverheadBreakdown(b *testing.B) {
	var rep bench.OverheadReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = bench.RunOverheadBreakdown(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric((rep.NCacheCPUPerOpNs-rep.BaselineCPUPerOpNs)/1000, "overhead_us/op")
	b.ReportMetric(rep.AccountedPct, "accounted_%")
	if rep.AccountedPct < 70 || rep.AccountedPct > 130 {
		b.Fatalf("component model accounts for %.1f%% of the gap — accounting broken", rep.AccountedPct)
	}
	fmt.Print(bench.FormatOverhead(rep))
}

// BenchmarkAblationRemap disables FHO→LBN remapping: flushed write data is
// dropped from the network-centric cache instead of being re-indexed, so
// subsequent reads of flushed blocks miss and go back to storage.
func BenchmarkAblationRemap(b *testing.B) {
	var with, without bench.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		with, without, err = bench.RunAblationRemap(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(with.OpsPerSec, "ops/s_remap_on")
	b.ReportMetric(without.OpsPerSec, "ops/s_remap_off")
	fmt.Printf("Ablation remap: on=%.0f ops/s (remaps=%d, L2 hits=%d)  off=%.0f ops/s (remaps=%d, L2 hits=%d)\n",
		with.OpsPerSec, with.Remaps, with.L2Hits, without.OpsPerSec, without.Remaps, without.L2Hits)
}

// BenchmarkAblationCopyCost sweeps the per-byte memcpy cost: the NCache gain
// must scale with how expensive copies are — the mechanism behind every
// result in the paper.
func BenchmarkAblationCopyCost(b *testing.B) {
	var rows []bench.CopyCostRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.RunAblationCopyCost(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		fmt.Printf("Ablation copy cost %.1f ns/B: original=%.1f MB/s ncache=%.1f MB/s gain=%+.1f%%\n",
			r.NsPerByte, r.OriginalMBs, r.NCacheMBs, r.GainPct)
	}
	if len(rows) >= 2 {
		b.ReportMetric(rows[len(rows)-1].GainPct-rows[0].GainPct, "gain_spread_pts")
	}
}

// BenchmarkAblationCacheSplit sweeps how the fixed memory budget is divided
// between the FS buffer cache and NCache (the double-buffering control of
// §3.4/§4.1).
func BenchmarkAblationCacheSplit(b *testing.B) {
	var rows []bench.CacheSplitRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.RunAblationCacheSplit(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		fmt.Printf("Ablation cache split fs=%dMB: %.1f MB/s (fs hit %.1f%%, L2 hits %d)\n",
			r.FSCacheMB, r.ThroughputMBs, r.FSHitPct, r.L2Hits)
	}
}

// BenchmarkAblationChecksumOffload turns NIC checksum offload off, making
// every transmitted payload byte cost CPU for software checksumming —
// except NCache's substituted replies, whose checksums are inherited from
// per-entry partials captured at receive time (§1). NCache's relative gain
// therefore grows when offload is unavailable.
func BenchmarkAblationChecksumOffload(b *testing.B) {
	var on, off bench.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		on, off, err = bench.RunAblationChecksum(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(on.GainPct, "ncache_gain_%_offload_on")
	b.ReportMetric(off.GainPct, "ncache_gain_%_offload_off")
	fmt.Printf("Ablation checksum offload: on → ncache %+.1f%%; off → ncache %+.1f%%\n",
		on.GainPct, off.GainPct)
}
