module ncache

go 1.22
