// Command webdsim brings up the simulated kHTTPd pass-through web server in
// a chosen configuration, fetches a page set over persistent connections,
// and dumps the data-path statistics.
//
// Usage:
//
//	webdsim -mode ncache -pages 32 -gets 200
package main

import (
	"flag"
	"fmt"
	"os"

	"ncache/internal/extfs"
	"ncache/internal/passthru"
	"ncache/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "webdsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("webdsim", flag.ContinueOnError)
	modeStr := fs.String("mode", "ncache", "server configuration: original|baseline|ncache")
	pages := fs.Int("pages", 32, "number of pages in the working set")
	gets := fs.Int("gets", 200, "number of GETs to issue")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var mode passthru.Mode
	switch *modeStr {
	case "original":
		mode = passthru.Original
	case "baseline":
		mode = passthru.Baseline
	case "ncache":
		mode = passthru.NCache
	default:
		return fmt.Errorf("unknown mode %q", *modeStr)
	}

	cl, err := passthru.NewCluster(passthru.ClusterConfig{
		Mode:          mode,
		NumClients:    1,
		BlocksPerDisk: 64 * 1024,
		EnableWeb:     true,
	})
	if err != nil {
		return err
	}
	fmtr, err := extfs.Format(cl.Storage.Array, 4096)
	if err != nil {
		return err
	}
	names := make([]string, *pages)
	for i := range names {
		names[i] = fmt.Sprintf("page-%03d.html", i)
		size := uint64(workload.WebPageClasses[i%len(workload.WebPageClasses)].Size)
		if _, err := fmtr.AddFile(names[i], size, nil); err != nil {
			return err
		}
	}
	if err := fmtr.Flush(); err != nil {
		return err
	}
	if err := cl.Start(); err != nil {
		return err
	}
	fmt.Printf("kHTTPd up: mode=%s pages=%d\n", mode, *pages)

	var conn *passthru.HTTPConn
	cl.Clients[0].DialHTTP(passthru.ServerAddr, func(h *passthru.HTTPConn, err error) {
		if err != nil {
			fmt.Println("dial:", err)
			return
		}
		conn = h
	})
	if err := cl.Eng.Run(); err != nil {
		return err
	}
	if conn == nil {
		return fmt.Errorf("dial failed")
	}

	var total int
	var issue func(i int)
	issue = func(i int) {
		if i == *gets {
			return
		}
		conn.Get(names[i%len(names)], func(n int, err error) {
			if err != nil {
				fmt.Println("get:", err)
				return
			}
			total += n
			issue(i + 1)
		})
	}
	start := cl.Eng.Now()
	issue(0)
	if err := cl.Eng.Run(); err != nil {
		return err
	}
	elapsed := cl.Eng.Now().Sub(start)
	fmt.Printf("%d GETs, %d MB in %v virtual (%.1f MB/s)\n",
		*gets, total>>20, elapsed, float64(total)/elapsed.Seconds()/1e6)
	fmt.Printf("server: requests=%d errors=%d copies: %s\n",
		cl.App.Web.Requests, cl.App.Web.Errors, cl.App.Node.Copies)
	if cl.App.Module != nil {
		fmt.Printf("ncache: %+v\n", cl.App.Module.Stats)
	}
	return nil
}
