// Command nfsdsim brings up one simulated pass-through NFS server (storage
// server + application server + client) in a chosen configuration, runs a
// small interactive-style scenario, and dumps the data-path statistics —
// a quick way to watch where copies happen in each mode.
//
// Usage:
//
//	nfsdsim -mode ncache -reqkb 32 -ops 64
package main

import (
	"flag"
	"fmt"
	"os"

	"ncache/internal/extfs"
	"ncache/internal/netbuf"
	"ncache/internal/nfs"
	"ncache/internal/passthru"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nfsdsim:", err)
		os.Exit(1)
	}
}

func parseMode(s string) (passthru.Mode, error) {
	switch s {
	case "original":
		return passthru.Original, nil
	case "baseline":
		return passthru.Baseline, nil
	case "ncache":
		return passthru.NCache, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (original|baseline|ncache)", s)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nfsdsim", flag.ContinueOnError)
	modeStr := fs.String("mode", "ncache", "server configuration: original|baseline|ncache")
	reqKB := fs.Int("reqkb", 32, "NFS read request size in KB (4-32)")
	ops := fs.Int("ops", 64, "number of reads to issue")
	writes := fs.Int("writes", 8, "number of writes to issue before reading back")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode, err := parseMode(*modeStr)
	if err != nil {
		return err
	}

	cl, err := passthru.NewCluster(passthru.ClusterConfig{
		Mode:          mode,
		NumClients:    1,
		BlocksPerDisk: 32 * 1024,
	})
	if err != nil {
		return err
	}
	fmtr, err := extfs.Format(cl.Storage.Array, 1024)
	if err != nil {
		return err
	}
	spec, err := fmtr.AddFile("demo.dat", 32<<20, nil)
	if err != nil {
		return err
	}
	if err := fmtr.Flush(); err != nil {
		return err
	}
	if err := cl.Start(); err != nil {
		return err
	}
	fmt.Printf("cluster up: mode=%s file=%s (%d MB)\n", mode, spec.Name, spec.Size>>20)

	client := cl.Clients[0].NFS
	var fh nfs.FH
	client.Lookup(nfs.RootFH(), "demo.dat", func(h nfs.FH, _ nfs.Attr, err error) {
		if err != nil {
			fmt.Println("lookup:", err)
			return
		}
		fh = h
	})
	if err := cl.Eng.Run(); err != nil {
		return err
	}

	// Writes, then sequential reads (the second pass hits in cache).
	for i := 0; i < *writes; i++ {
		off := uint64(i) * uint64(*reqKB) * 1024
		client.WriteBytes(fh, off, make([]byte, *reqKB*1024), func(_ int, _ nfs.Attr, err error) {
			if err != nil {
				fmt.Println("write:", err)
			}
		})
	}
	if err := cl.Eng.Run(); err != nil {
		return err
	}
	for pass := 1; pass <= 2; pass++ {
		before := cl.App.Node.Copies
		startOps := cl.App.Node.Reqs.Ops
		start := cl.Eng.Now()
		for i := 0; i < *ops; i++ {
			off := uint64(i) * uint64(*reqKB) * 1024
			client.Read(fh, off, *reqKB*1024, func(data *netbuf.Chain, _ nfs.Attr, err error) {
				if err != nil {
					fmt.Println("read:", err)
					return
				}
				data.Release()
			})
		}
		if err := cl.Eng.Run(); err != nil {
			return err
		}
		d := cl.App.Node.Copies.Sub(before)
		fmt.Printf("pass %d (%s): %d ops in %v virtual — %s\n",
			pass, map[int]string{1: "cold", 2: "warm"}[pass],
			cl.App.Node.Reqs.Ops-startOps, cl.Eng.Now().Sub(start), d)
	}

	fmt.Printf("\nserver CPU busy: %v  storage CPU busy: %v\n",
		cl.App.Node.CPU.Busy(), cl.Storage.Node.CPU.Busy())
	if cl.App.Module != nil {
		fmt.Printf("ncache: %+v\nused=%d MB entries=%d pinned=%d B\n",
			cl.App.Module.Stats, cl.App.Module.UsedBytes()>>20,
			cl.App.Module.Len(), cl.App.Module.PinnedBytes())
	}
	fmt.Printf("fs cache: %+v resident=%d blocks\n", cl.App.Cache.Stats, cl.App.Cache.Len())
	fmt.Printf("storage: read cmds=%d write cmds=%d bytes out=%d MB\n",
		cl.Storage.Target.ReadCmds, cl.Storage.Target.WriteCmds, cl.Storage.Target.BytesOut>>20)
	return nil
}
