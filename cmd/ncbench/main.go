// Command ncbench regenerates the tables and figures of "Network-Centric
// Buffer Cache Organization" (ICDCS 2005) on the simulated testbed.
//
// Usage:
//
//	ncbench -exp all                 # every table and figure
//	ncbench -exp fig4                # one experiment
//	ncbench -exp fig5b -window 1s -concurrency 16
//
// Experiments: table1, table2, fig4, fig5a, fig5b, fig6a, fig6b, fig7,
// transport, futurework, overhead, ablations, fig-fault, fig-fault-sweep,
// fig-avail, scaleout, writeback, all.
//
// fig-avail (explicit-only) measures availability on a two-arm mirrored
// volume: a mixed read/write load runs through an injected arm outage — the
// circuit breaker ejects the dead arm, the survivor keeps serving, and a
// dirty-region resync readmits the arm — followed by a read-policy
// comparison under a slow primary arm, writing results/fig-avail.txt:
//
//	ncbench -exp fig-avail
//	ncbench -exp fig-avail -window 200ms -scale 8   # quick smoke
//
// writeback (explicit-only) compares the asynchronous write-back pipeline
// (WAL group commit + batched flusher) against the synchronous dirty-data
// path at equal durability on a write-heavy SFS mix, writing
// results/fig-writeback.txt:
//
//	ncbench -exp writeback
//	ncbench -exp writeback -window 200ms -scale 8   # quick smoke
//
// scaleout (explicit-only, like fig-fault-sweep) grows the pass-through
// tier to 1/2/4/8 front-end servers over sharded iSCSI targets with
// control-plane routing and remap coherence, writing results/fig-scaleout.txt:
//
//	ncbench -exp scaleout
//	ncbench -exp scaleout -window 200ms -scale 8   # quick smoke topology
//
// -workers N runs every cluster on the parallel discrete-event engine with
// N worker threads (one shard per simulated node, conservative epochs at
// the 5 µs fabric latency). Results are bit-identical for any N >= 1; only
// wall-clock changes. Parallel runs record -benchjson entries under a
// "-wN" name suffix:
//
//	ncbench -exp scaleout -workers 4 -benchjson BENCH_PR7.json
//
// -cpuprofile/-memprofile write pprof profiles of the run; -benchjson
// records per-experiment wall-clock and allocation metrics; -benchgate
// compares the run's allocation metrics against a committed -benchjson
// baseline and exits non-zero if any shared experiment's alloc_bytes
// regresses by more than 5% (the CI gate — baselines must be produced with
// the same flags as the gated run):
//
//	ncbench -exp fig5b -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//	ncbench -exp all -benchjson BENCH_PR3.json
//	ncbench -exp fig5b -window 50ms -benchgate BENCH_PR4.json
//
// -fault injects a deterministic fault schedule (a preset name or the
// fault.ParseSpec grammar) into the NFS experiments, replayable via
// -faultseed:
//
//	ncbench -exp fig4 -fault frame-loss
//	ncbench -exp fig5b -fault 'slowdisk:disk0:rate=0.5:delay=5ms' -faultseed 7
//	ncbench -exp transport -fault frame-loss  # loss recovery over UDP vs TCP
//	ncbench -exp fig-fault            # the Original-vs-NCache degradation table
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ncache/internal/bench"
	"ncache/internal/passthru"
	"ncache/internal/sim"
	"ncache/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ncbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ncbench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: table1,table2,fig4,fig5a,fig5b,fig6a,fig6b,fig7,transport,futurework,overhead,ablations,fig-fault,fig-fault-sweep,fig-avail,scaleout,writeback,all")
	warmup := fs.Duration("warmup", 150*time.Millisecond, "steady-state warm-up (virtual time)")
	window := fs.Duration("window", 600*time.Millisecond, "measurement window (virtual time)")
	concurrency := fs.Int("concurrency", 8, "outstanding requests per client host")
	scale := fs.Int("scale", 4, "memory-scale divisor for the macro experiments (1 = paper scale)")
	latency := fs.Bool("latency", false, "trace requests and print latency percentiles with per-layer attribution")
	traceOut := fs.String("trace", "", "write traced request timelines as chrome://tracing JSON to this file (implies tracing)")
	faultSpec := fs.String("fault", "", "fault schedule for the NFS experiments: a preset (frame-loss, slow-disk, cpu-burst) or fault.ParseSpec grammar")
	faultSeed := fs.Uint64("faultseed", 1, "seed for the fault injector's random streams (runs replay bit-for-bit per seed)")
	workers := fs.Int("workers", 0, "parallel-engine worker threads (0 = legacy single engine; results are identical for any value >= 1, only wall-clock changes)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile (after the run, post-GC) to this file")
	benchJSON := fs.String("benchjson", "", "write per-experiment wall-clock and allocation metrics as JSON to this file")
	benchGate := fs.String("benchgate", "", "compare this run's allocation metrics against a baseline -benchjson file; exit non-zero on an alloc_bytes regression above 5%")
	speedupGate := fs.String("speedupgate", "", "compare this run's wall_ms against a baseline -benchjson file (matching experiments by name with any -wN suffix stripped); exit non-zero unless baseline/this >= -speedupmin")
	speedupMin := fs.Float64("speedupmin", 1.5, "minimum wall-clock speedup demanded by -speedupgate")
	epochMax := fs.Float64("epochmax", 0, "with -speedupgate: also require epochs <= this fraction of the baseline's epochs for experiments where both report them (host-independent; 0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ncbench: memprofile:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ncbench: memprofile:", err)
			}
			f.Close()
		}()
	}
	opt := bench.Options{
		Warmup:      sim.Duration(*warmup),
		Window:      sim.Duration(*window),
		Concurrency: *concurrency,
		Scale:       *scale,
		Latency:     *latency,
		FaultSpec:   *faultSpec,
		FaultSeed:   *faultSeed,
		Workers:     *workers,
	}
	if *traceOut != "" {
		opt.Chrome = trace.NewChromeTrace()
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	// measured wraps one experiment run, recording wall-clock time,
	// allocation deltas and sharded-engine epoch statistics for the
	// -benchjson report. Parallel runs record under a -wN suffix so worker
	// counts never gate against each other (allocation totals differ with
	// the shard layout even though results are bit-identical).
	var records []benchRecord
	measured := func(name string, fn func() error) error {
		if *workers > 0 {
			name = fmt.Sprintf("%s-w%d", name, *workers)
		}
		passthru.TakeEngineStats() // drop tallies from earlier experiments
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		err := fn()
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		st, _ := passthru.TakeEngineStats()
		records = append(records, benchRecord{
			Name:          name,
			WallMs:        float64(wall.Microseconds()) / 1e3,
			AllocBytes:    after.TotalAlloc - before.TotalAlloc,
			Allocs:        after.Mallocs - before.Mallocs,
			Epochs:        st.Epochs,
			SimEvents:     st.Events,
			StagedAdmits:  st.StagedAdmits,
			ExclusiveRuns: st.ExclusiveRuns,
			BarrierMs:     float64(st.BarrierNs) / 1e6,
		})
		return err
	}

	if want("table1") {
		ran = true
		fmt.Println(bench.FormatTable1(bench.Table1()))
	}
	if want("table2") {
		ran = true
		var rows []bench.Table2Row
		err := measured("table2", func() error {
			var e error
			rows, e = bench.Table2()
			return e
		})
		if err != nil {
			return fmt.Errorf("table2: %w", err)
		}
		fmt.Println(bench.FormatTable2(rows))
	}
	if want("fig4") {
		ran = true
		var pts []bench.NFSPoint
		err := measured("fig4", func() error {
			var e error
			pts, e = bench.RunFig4(opt)
			return e
		})
		if err != nil {
			return fmt.Errorf("fig4: %w", err)
		}
		fmt.Println(bench.FormatNFSPoints(
			"Figure 4: NFS all-miss workload (throughput and server CPU vs request size)", pts))
		if opt.Latency {
			fmt.Println(bench.FormatLatency("Latency, fig4 (all-miss)", pts))
		}
	}
	if want("fig5a") {
		ran = true
		var pts []bench.NFSPoint
		err := measured("fig5a", func() error {
			var e error
			pts, e = bench.RunFig5a(opt)
			return e
		})
		if err != nil {
			return fmt.Errorf("fig5a: %w", err)
		}
		fmt.Println(bench.FormatNFSPoints(
			"Figure 5(a): NFS all-hit workload, one NIC (link-bound; watch CPU)", pts))
		if opt.Latency {
			fmt.Println(bench.FormatLatency("Latency, fig5a (all-hit, one NIC)", pts))
		}
	}
	if want("fig5b") {
		ran = true
		var pts []bench.NFSPoint
		err := measured("fig5b", func() error {
			var e error
			pts, e = bench.RunFig5b(opt)
			return e
		})
		if err != nil {
			return fmt.Errorf("fig5b: %w", err)
		}
		fmt.Println(bench.FormatNFSPoints(
			"Figure 5(b): NFS all-hit workload, two NICs (CPU-bound)", pts))
		if opt.Latency {
			table := bench.FormatLatency("Latency, fig5b (all-hit, two NICs)", pts)
			fmt.Println(table)
			if err := writeResult("fig5b-latency.txt", []byte(table)); err != nil {
				return err
			}
		}
	}
	if want("fig6a") {
		ran = true
		var pts []bench.WebPoint
		err := measured("fig6a", func() error {
			var e error
			pts, e = bench.RunFig6a(opt)
			return e
		})
		if err != nil {
			return fmt.Errorf("fig6a: %w", err)
		}
		fmt.Println(bench.FormatWebPoints(
			"Figure 6(a): kHTTPd SPECweb99-like load vs working-set size (paper-scale MB)",
			"wsMB", pts))
	}
	if want("fig6b") {
		ran = true
		var pts []bench.WebPoint
		err := measured("fig6b", func() error {
			var e error
			pts, e = bench.RunFig6b(opt)
			return e
		})
		if err != nil {
			return fmt.Errorf("fig6b: %w", err)
		}
		fmt.Println(bench.FormatWebPoints(
			"Figure 6(b): kHTTPd all-hit workload vs request size", "reqKB", pts))
	}
	if want("fig7") {
		ran = true
		var pts []bench.SFSPoint
		err := measured("fig7", func() error {
			var e error
			pts, e = bench.RunFig7(opt)
			return e
		})
		if err != nil {
			return fmt.Errorf("fig7: %w", err)
		}
		fmt.Println(bench.FormatSFSPoints(pts))
	}
	if want("fig-fault") {
		ran = true
		var pts []bench.FaultPoint
		err := measured("fig-fault", func() error {
			var e error
			pts, e = bench.RunFigFault(opt)
			return e
		})
		if err != nil {
			return fmt.Errorf("fig-fault: %w", err)
		}
		table := bench.FormatFaultPoints(pts)
		fmt.Println(table)
		if err := writeResult("fig-fault.txt", []byte(table)); err != nil {
			return err
		}
	}
	if *exp == "fig-fault-sweep" {
		// Explicit-only (not part of "all"): 12 full cluster runs.
		ran = true
		var pts []bench.SweepPoint
		err := measured("fig-fault-sweep", func() error {
			var e error
			pts, e = bench.RunFaultSweep(opt)
			return e
		})
		if err != nil {
			return fmt.Errorf("fig-fault-sweep: %w", err)
		}
		csv := bench.FormatFaultSweepCSV(pts)
		fmt.Print(csv)
		if err := writeResult("fig-fault.csv", []byte(csv)); err != nil {
			return err
		}
	}
	if *exp == "writeback" {
		// Explicit-only (not part of "all"): the durability-vs-throughput
		// comparison of the asynchronous write-back pipeline.
		ran = true
		var pts []bench.WritebackPoint
		err := measured("writeback", func() error {
			var e error
			pts, e = bench.RunWriteback(opt)
			return e
		})
		if err != nil {
			return fmt.Errorf("writeback: %w", err)
		}
		for _, p := range pts {
			if p.Arm != "wal" {
				continue
			}
			r := &records[len(records)-1]
			r.WALCommits = p.WALCommits
			r.MeanCommitRecs = p.MeanCommitRecs
			r.WALPeakDepth = p.WALPeakDepth
			r.FlushBatches = p.FlushBatches
			r.MeanBatchBlocks = p.MeanBatchBlocks
			r.DirtyPeakBytes = int64(p.DirtyPeakMB * 1e6)
			r.Stalls = p.Stalls
			r.StallMs = p.StallMs
		}
		table := bench.FormatWritebackPoints(pts)
		fmt.Println(table)
		if err := writeResult("fig-writeback.txt", []byte(table)); err != nil {
			return err
		}
	}
	if *exp == "fig-avail" {
		// Explicit-only (not part of "all"): the mirrored-volume availability
		// timeline plus the read-policy comparison — four full cluster runs.
		ran = true
		var rep bench.AvailReport
		err := measured("fig-avail", func() error {
			var e error
			rep, e = bench.RunAvail(opt)
			return e
		})
		if err != nil {
			return fmt.Errorf("fig-avail: %w", err)
		}
		table := bench.FormatAvail(rep)
		fmt.Println(table)
		if err := writeResult("fig-avail.txt", []byte(table)); err != nil {
			return err
		}
	}
	if *exp == "scaleout" {
		// Explicit-only (not part of "all"): four full cluster sweeps at
		// growing topology and client population.
		ran = true
		var pts []bench.ScaleoutPoint
		err := measured("scaleout", func() error {
			var e error
			pts, e = bench.RunScaleout(opt)
			return e
		})
		if err != nil {
			return fmt.Errorf("scaleout: %w", err)
		}
		table := bench.FormatScaleoutPoints(pts)
		fmt.Println(table)
		if err := writeResult("fig-scaleout.txt", []byte(table)); err != nil {
			return err
		}
	}
	if want("futurework") {
		ran = true
		var pts []bench.WireFormatPoint
		err := measured("futurework", func() error {
			var e error
			pts, e = bench.RunFutureWorkWireFormat(opt)
			return e
		})
		if err != nil {
			return fmt.Errorf("futurework: %w", err)
		}
		fmt.Println(bench.FormatWireFormatPoints(pts))
	}
	if want("transport") {
		ran = true
		var pts []bench.TransportPoint
		err := measured("transport", func() error {
			var e error
			pts, e = bench.RunTransportComparison(opt)
			return e
		})
		if err != nil {
			return fmt.Errorf("transport: %w", err)
		}
		fmt.Println(bench.FormatTransportPoints(pts))
	}
	if want("overhead") {
		ran = true
		var rep bench.OverheadReport
		err := measured("overhead", func() error {
			var e error
			rep, e = bench.RunOverheadBreakdown(opt)
			return e
		})
		if err != nil {
			return fmt.Errorf("overhead: %w", err)
		}
		fmt.Println(bench.FormatOverhead(rep))
	}
	if want("ablations") {
		ran = true
		var withRemap, withoutRemap bench.AblationResult
		err := measured("ablation-remap", func() error {
			var e error
			withRemap, withoutRemap, e = bench.RunAblationRemap(opt)
			return e
		})
		if err != nil {
			return fmt.Errorf("ablation remap: %w", err)
		}
		fmt.Printf("Ablation: FHO→LBN remapping\n  on:  %8.0f ops/s (remaps=%d, L2 hits=%d)\n  off: %8.0f ops/s (remaps=%d, L2 hits=%d)\n\n",
			withRemap.OpsPerSec, withRemap.Remaps, withRemap.L2Hits,
			withoutRemap.OpsPerSec, withoutRemap.Remaps, withoutRemap.L2Hits)

		var rows []bench.CopyCostRow
		err = measured("ablation-copycost", func() error {
			var e error
			rows, e = bench.RunAblationCopyCost(opt)
			return e
		})
		if err != nil {
			return fmt.Errorf("ablation copy cost: %w", err)
		}
		fmt.Println("Ablation: per-byte copy cost (all-hit, 32 KB, CPU-bound)")
		for _, r := range rows {
			fmt.Printf("  %.1f ns/B: original %6.1f MB/s, ncache %6.1f MB/s, gain %+.1f%%\n",
				r.NsPerByte, r.OriginalMBs, r.NCacheMBs, r.GainPct)
		}
		fmt.Println()

		var splits []bench.CacheSplitRow
		err = measured("ablation-cachesplit", func() error {
			var e error
			splits, e = bench.RunAblationCacheSplit(opt)
			return e
		})
		if err != nil {
			return fmt.Errorf("ablation cache split: %w", err)
		}
		fmt.Println("Ablation: memory split between FS cache and NCache (fixed budget)")
		for _, r := range splits {
			fmt.Printf("  fs=%2d MB: %6.1f MB/s (fs hit %.1f%%, L2 hits %d)\n",
				r.FSCacheMB, r.ThroughputMBs, r.FSHitPct, r.L2Hits)
		}
		fmt.Println()

		var on, off bench.AblationResult
		err = measured("ablation-checksum", func() error {
			var e error
			on, off, e = bench.RunAblationChecksum(opt)
			return e
		})
		if err != nil {
			return fmt.Errorf("ablation checksum: %w", err)
		}
		fmt.Printf("Ablation: NIC checksum offload\n  on:  ncache gain %+.1f%%\n  off: ncache gain %+.1f%% (inherited checksums spare the software walk)\n\n",
			on.GainPct, off.GainPct)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want one of table1,table2,fig4,fig5a,fig5b,fig6a,fig6b,fig7,transport,futurework,overhead,ablations,fig-fault,fig-fault-sweep,fig-avail,scaleout,writeback,all)", *exp)
	}
	if *benchGate != "" {
		if err := gateAllocations(*benchGate, records); err != nil {
			return err
		}
	}
	if *speedupGate != "" {
		if err := gateSpeedup(*speedupGate, *speedupMin, *epochMax, records); err != nil {
			return err
		}
	}
	if *benchJSON != "" {
		cmd := "ncbench -exp " + *exp
		if *workers > 0 {
			cmd = fmt.Sprintf("%s -workers %d", cmd, *workers)
		}
		rep := benchReport{
			Go:          runtime.Version(),
			NumCPU:      runtime.NumCPU(),
			Gomaxprocs:  runtime.GOMAXPROCS(0),
			Command:     cmd,
			Experiments: records,
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return fmt.Errorf("benchjson: %w", err)
		}
		if err := os.WriteFile(*benchJSON, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("benchjson: %w", err)
		}
	}
	if opt.Chrome != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("trace output: %w", err)
		}
		if _, err := opt.Chrome.WriteTo(f); err != nil {
			f.Close()
			return fmt.Errorf("trace output: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (open in chrome://tracing or Perfetto)\n", *traceOut)
	}
	return nil
}

// benchRecord is one experiment's resource footprint: wall-clock time,
// heap-allocation deltas (runtime.MemStats), and — on the sharded engine —
// the coordinator's epoch statistics summed over the experiment's clusters.
// Epochs/SimEvents/StagedAdmits/ExclusiveRuns are pure functions of the
// simulated schedule (host-independent, identical for any worker count);
// WallMs and BarrierMs depend on the host, which is why the report also
// carries its CPU topology.
type benchRecord struct {
	Name          string  `json:"name"`
	WallMs        float64 `json:"wall_ms"`
	AllocBytes    uint64  `json:"alloc_bytes"`
	Allocs        uint64  `json:"allocs"`
	Epochs        uint64  `json:"epochs,omitempty"`
	SimEvents     uint64  `json:"sim_events,omitempty"`
	StagedAdmits  uint64  `json:"staged_admits,omitempty"`
	ExclusiveRuns uint64  `json:"exclusive_runs,omitempty"`
	BarrierMs     float64 `json:"barrier_ms,omitempty"`
	// Write-back pipeline attribution (the writeback experiment's WAL arm):
	// group commits and their mean size, peak journal depth, coalesced flush
	// batches and their mean size, peak dirty memory, and admission stalls
	// at the high watermark.
	WALCommits      uint64  `json:"wal_commits,omitempty"`
	MeanCommitRecs  float64 `json:"mean_commit_records,omitempty"`
	WALPeakDepth    int64   `json:"wal_peak_depth,omitempty"`
	FlushBatches    uint64  `json:"flush_batches,omitempty"`
	MeanBatchBlocks float64 `json:"mean_batch_blocks,omitempty"`
	DirtyPeakBytes  int64   `json:"dirty_peak_bytes,omitempty"`
	Stalls          uint64  `json:"stalls,omitempty"`
	StallMs         float64 `json:"stall_ms,omitempty"`
}

// benchReport is the -benchjson document.
type benchReport struct {
	Go          string        `json:"go"`
	NumCPU      int           `json:"num_cpu"`
	Gomaxprocs  int           `json:"gomaxprocs"`
	Command     string        `json:"command"`
	Experiments []benchRecord `json:"experiments"`
}

// gateAllocations enforces the allocation-regression gate: every experiment
// this run shares with the baseline report must stay within 5% of the
// baseline's alloc_bytes. Wall-clock is reported but never gated (too noisy
// on shared CI runners); alloc_bytes is deterministic for the
// single-threaded simulation.
func gateAllocations(path string, records []benchRecord) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("benchgate: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("benchgate: %s: %w", path, err)
	}
	baseline := make(map[string]benchRecord, len(base.Experiments))
	for _, e := range base.Experiments {
		baseline[e.Name] = e
	}
	const tolerancePct = 5.0
	var bad []string
	checked := 0
	for _, r := range records {
		b, ok := baseline[r.Name]
		if !ok || b.AllocBytes == 0 {
			continue
		}
		checked++
		deltaPct := (float64(r.AllocBytes)/float64(b.AllocBytes) - 1) * 100
		fmt.Printf("benchgate: %-20s alloc_bytes %14d vs baseline %14d (%+.2f%%)\n",
			r.Name, r.AllocBytes, b.AllocBytes, deltaPct)
		if deltaPct > tolerancePct {
			bad = append(bad, fmt.Sprintf("%s %+.2f%%", r.Name, deltaPct))
		}
	}
	if checked == 0 {
		return fmt.Errorf("benchgate: no experiments in common with %s", path)
	}
	if len(bad) > 0 {
		return fmt.Errorf("benchgate: alloc_bytes regressed more than %.0f%%: %s",
			tolerancePct, strings.Join(bad, ", "))
	}
	return nil
}

// stripWorkers removes a -wN worker suffix from a benchRecord name, so a
// parallel run ("scaleout-w4") matches its sequential baseline ("scaleout"
// or "scaleout-w1") across reports.
func stripWorkers(name string) string {
	if i := strings.LastIndex(name, "-w"); i > 0 {
		digits := name[i+2:]
		if len(digits) > 0 && strings.Trim(digits, "0123456789") == "" {
			return name[:i]
		}
	}
	return name
}

// gateSpeedup enforces the parallel-engine wall-clock gate: every experiment
// this run shares with the baseline (worker suffixes stripped on both sides)
// must run at least min times faster than the baseline recorded. Used by CI
// to require the Workers=N engine to beat its Workers=1 oracle on the same
// topology; meaningful only on a multi-core runner. When epochMax > 0 the
// gate also requires epochs <= epochMax × baseline epochs wherever both
// reports carry epoch counts — unlike wall-clock, the epoch count is a pure
// function of the simulated schedule, so this half of the gate holds on any
// host, single-core CI runners included.
func gateSpeedup(path string, min, epochMax float64, records []benchRecord) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("speedupgate: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("speedupgate: %s: %w", path, err)
	}
	baseline := make(map[string]benchRecord, len(base.Experiments))
	for _, e := range base.Experiments {
		baseline[stripWorkers(e.Name)] = e
	}
	var bad []string
	checked := 0
	for _, r := range records {
		b, ok := baseline[stripWorkers(r.Name)]
		if !ok || b.WallMs == 0 || r.WallMs == 0 {
			continue
		}
		checked++
		speedup := b.WallMs / r.WallMs
		fmt.Printf("speedupgate: %-20s wall_ms %10.1f vs baseline %10.1f (%.2fx)\n",
			r.Name, r.WallMs, b.WallMs, speedup)
		if speedup < min {
			bad = append(bad, fmt.Sprintf("%s %.2fx < %.2fx", r.Name, speedup, min))
		}
		if epochMax > 0 && b.Epochs > 0 && r.Epochs > 0 {
			limit := uint64(epochMax * float64(b.Epochs))
			fmt.Printf("speedupgate: %-20s epochs  %10d vs baseline %10d (limit %d)\n",
				r.Name, r.Epochs, b.Epochs, limit)
			if r.Epochs > limit {
				bad = append(bad, fmt.Sprintf("%s epochs %d > %.2f x %d", r.Name, r.Epochs, epochMax, b.Epochs))
			}
		}
	}
	if checked == 0 {
		return fmt.Errorf("speedupgate: no experiments in common with %s", path)
	}
	if len(bad) > 0 {
		return fmt.Errorf("speedupgate: wall-clock speedup below target: %s", strings.Join(bad, ", "))
	}
	return nil
}

// writeResult stores a rendered table under results/.
func writeResult(name string, data []byte) error {
	if err := os.MkdirAll("results", 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join("results", name), data, 0o644)
}
