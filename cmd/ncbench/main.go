// Command ncbench regenerates the tables and figures of "Network-Centric
// Buffer Cache Organization" (ICDCS 2005) on the simulated testbed.
//
// Usage:
//
//	ncbench -exp all                 # every table and figure
//	ncbench -exp fig4                # one experiment
//	ncbench -exp fig5b -window 1s -concurrency 16
//
// Experiments: table1, table2, fig4, fig5a, fig5b, fig6a, fig6b, fig7,
// transport, futurework, overhead, ablations, fig-fault, all.
//
// -fault injects a deterministic fault schedule (a preset name or the
// fault.ParseSpec grammar) into the NFS experiments, replayable via
// -faultseed:
//
//	ncbench -exp fig4 -fault frame-loss
//	ncbench -exp fig5b -fault 'slowdisk:disk0:rate=0.5:delay=5ms' -faultseed 7
//	ncbench -exp fig-fault            # the Original-vs-NCache degradation table
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ncache/internal/bench"
	"ncache/internal/sim"
	"ncache/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ncbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ncbench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: table1,table2,fig4,fig5a,fig5b,fig6a,fig6b,fig7,transport,futurework,overhead,ablations,fig-fault,all")
	warmup := fs.Duration("warmup", 150*time.Millisecond, "steady-state warm-up (virtual time)")
	window := fs.Duration("window", 600*time.Millisecond, "measurement window (virtual time)")
	concurrency := fs.Int("concurrency", 8, "outstanding requests per client host")
	scale := fs.Int("scale", 4, "memory-scale divisor for the macro experiments (1 = paper scale)")
	latency := fs.Bool("latency", false, "trace requests and print latency percentiles with per-layer attribution")
	traceOut := fs.String("trace", "", "write traced request timelines as chrome://tracing JSON to this file (implies tracing)")
	faultSpec := fs.String("fault", "", "fault schedule for the NFS experiments: a preset (frame-loss, slow-disk, cpu-burst) or fault.ParseSpec grammar")
	faultSeed := fs.Uint64("faultseed", 1, "seed for the fault injector's random streams (runs replay bit-for-bit per seed)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opt := bench.Options{
		Warmup:      sim.Duration(*warmup),
		Window:      sim.Duration(*window),
		Concurrency: *concurrency,
		Scale:       *scale,
		Latency:     *latency,
		FaultSpec:   *faultSpec,
		FaultSeed:   *faultSeed,
	}
	if *traceOut != "" {
		opt.Chrome = trace.NewChromeTrace()
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if want("table1") {
		ran = true
		fmt.Println(bench.FormatTable1(bench.Table1()))
	}
	if want("table2") {
		ran = true
		rows, err := bench.Table2()
		if err != nil {
			return fmt.Errorf("table2: %w", err)
		}
		fmt.Println(bench.FormatTable2(rows))
	}
	if want("fig4") {
		ran = true
		pts, err := bench.RunFig4(opt)
		if err != nil {
			return fmt.Errorf("fig4: %w", err)
		}
		fmt.Println(bench.FormatNFSPoints(
			"Figure 4: NFS all-miss workload (throughput and server CPU vs request size)", pts))
		if opt.Latency {
			fmt.Println(bench.FormatLatency("Latency, fig4 (all-miss)", pts))
		}
	}
	if want("fig5a") {
		ran = true
		pts, err := bench.RunFig5a(opt)
		if err != nil {
			return fmt.Errorf("fig5a: %w", err)
		}
		fmt.Println(bench.FormatNFSPoints(
			"Figure 5(a): NFS all-hit workload, one NIC (link-bound; watch CPU)", pts))
		if opt.Latency {
			fmt.Println(bench.FormatLatency("Latency, fig5a (all-hit, one NIC)", pts))
		}
	}
	if want("fig5b") {
		ran = true
		pts, err := bench.RunFig5b(opt)
		if err != nil {
			return fmt.Errorf("fig5b: %w", err)
		}
		fmt.Println(bench.FormatNFSPoints(
			"Figure 5(b): NFS all-hit workload, two NICs (CPU-bound)", pts))
		if opt.Latency {
			table := bench.FormatLatency("Latency, fig5b (all-hit, two NICs)", pts)
			fmt.Println(table)
			if err := writeResult("fig5b-latency.txt", []byte(table)); err != nil {
				return err
			}
		}
	}
	if want("fig6a") {
		ran = true
		pts, err := bench.RunFig6a(opt)
		if err != nil {
			return fmt.Errorf("fig6a: %w", err)
		}
		fmt.Println(bench.FormatWebPoints(
			"Figure 6(a): kHTTPd SPECweb99-like load vs working-set size (paper-scale MB)",
			"wsMB", pts))
	}
	if want("fig6b") {
		ran = true
		pts, err := bench.RunFig6b(opt)
		if err != nil {
			return fmt.Errorf("fig6b: %w", err)
		}
		fmt.Println(bench.FormatWebPoints(
			"Figure 6(b): kHTTPd all-hit workload vs request size", "reqKB", pts))
	}
	if want("fig7") {
		ran = true
		pts, err := bench.RunFig7(opt)
		if err != nil {
			return fmt.Errorf("fig7: %w", err)
		}
		fmt.Println(bench.FormatSFSPoints(pts))
	}
	if want("fig-fault") {
		ran = true
		pts, err := bench.RunFigFault(opt)
		if err != nil {
			return fmt.Errorf("fig-fault: %w", err)
		}
		table := bench.FormatFaultPoints(pts)
		fmt.Println(table)
		if err := writeResult("fig-fault.txt", []byte(table)); err != nil {
			return err
		}
	}
	if want("futurework") {
		ran = true
		pts, err := bench.RunFutureWorkWireFormat(opt)
		if err != nil {
			return fmt.Errorf("futurework: %w", err)
		}
		fmt.Println(bench.FormatWireFormatPoints(pts))
	}
	if want("transport") {
		ran = true
		pts, err := bench.RunTransportComparison(opt)
		if err != nil {
			return fmt.Errorf("transport: %w", err)
		}
		fmt.Println(bench.FormatTransportPoints(pts))
	}
	if want("overhead") {
		ran = true
		rep, err := bench.RunOverheadBreakdown(opt)
		if err != nil {
			return fmt.Errorf("overhead: %w", err)
		}
		fmt.Println(bench.FormatOverhead(rep))
	}
	if want("ablations") {
		ran = true
		withRemap, withoutRemap, err := bench.RunAblationRemap(opt)
		if err != nil {
			return fmt.Errorf("ablation remap: %w", err)
		}
		fmt.Printf("Ablation: FHO→LBN remapping\n  on:  %8.0f ops/s (remaps=%d, L2 hits=%d)\n  off: %8.0f ops/s (remaps=%d, L2 hits=%d)\n\n",
			withRemap.OpsPerSec, withRemap.Remaps, withRemap.L2Hits,
			withoutRemap.OpsPerSec, withoutRemap.Remaps, withoutRemap.L2Hits)

		rows, err := bench.RunAblationCopyCost(opt)
		if err != nil {
			return fmt.Errorf("ablation copy cost: %w", err)
		}
		fmt.Println("Ablation: per-byte copy cost (all-hit, 32 KB, CPU-bound)")
		for _, r := range rows {
			fmt.Printf("  %.1f ns/B: original %6.1f MB/s, ncache %6.1f MB/s, gain %+.1f%%\n",
				r.NsPerByte, r.OriginalMBs, r.NCacheMBs, r.GainPct)
		}
		fmt.Println()

		splits, err := bench.RunAblationCacheSplit(opt)
		if err != nil {
			return fmt.Errorf("ablation cache split: %w", err)
		}
		fmt.Println("Ablation: memory split between FS cache and NCache (fixed budget)")
		for _, r := range splits {
			fmt.Printf("  fs=%2d MB: %6.1f MB/s (fs hit %.1f%%, L2 hits %d)\n",
				r.FSCacheMB, r.ThroughputMBs, r.FSHitPct, r.L2Hits)
		}
		fmt.Println()

		on, off, err := bench.RunAblationChecksum(opt)
		if err != nil {
			return fmt.Errorf("ablation checksum: %w", err)
		}
		fmt.Printf("Ablation: NIC checksum offload\n  on:  ncache gain %+.1f%%\n  off: ncache gain %+.1f%% (inherited checksums spare the software walk)\n\n",
			on.GainPct, off.GainPct)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want one of table1,table2,fig4,fig5a,fig5b,fig6a,fig6b,fig7,transport,futurework,overhead,ablations,fig-fault,all)", *exp)
	}
	if opt.Chrome != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("trace output: %w", err)
		}
		if _, err := opt.Chrome.WriteTo(f); err != nil {
			f.Close()
			return fmt.Errorf("trace output: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (open in chrome://tracing or Perfetto)\n", *traceOut)
	}
	return nil
}

// writeResult stores a rendered table under results/.
func writeResult(name string, data []byte) error {
	if err := os.MkdirAll("results", 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join("results", name), data, 0o644)
}
