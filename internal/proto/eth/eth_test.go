package eth

import (
	"bytes"
	"errors"
	"testing"

	"ncache/internal/netbuf"
)

// frameWith returns a single-buffer chain holding payload with header room.
func frameWith(t *testing.T, payload []byte) *netbuf.Chain {
	t.Helper()
	b := netbuf.New(netbuf.DefaultHeadroom, len(payload))
	if err := b.Append(payload); err != nil {
		t.Fatal(err)
	}
	return netbuf.ChainOf(b)
}

func TestHeaderRoundTrip(t *testing.T) {
	payload := []byte("regular data block")
	frame := frameWith(t, payload)
	defer frame.Release()

	h := Header{Dst: 0x0a000002, Src: 0x0a000001, Type: TypeIPv4, Pad: 7}
	if err := h.Push(frame); err != nil {
		t.Fatal(err)
	}
	if frame.Len() != HeaderLen+len(payload) {
		t.Fatalf("framed length = %d, want %d", frame.Len(), HeaderLen+len(payload))
	}

	got, err := Parse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("parsed %+v, want %+v", got, h)
	}
	if !bytes.Equal(frame.Flatten(), payload) {
		t.Fatalf("payload corrupted: %q", frame.Flatten())
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	frame := frameWith(t, []byte{1, 2, 3, 4})
	defer frame.Release()
	h := Header{Dst: Broadcast, Src: 42, Type: TypeIPv4}
	if err := h.Push(frame); err != nil {
		t.Fatal(err)
	}
	peeked, err := Peek(frame)
	if err != nil {
		t.Fatal(err)
	}
	if peeked != h {
		t.Fatalf("peeked %+v, want %+v", peeked, h)
	}
	if frame.Len() != HeaderLen+4 {
		t.Fatalf("peek consumed bytes: len = %d", frame.Len())
	}
	// A subsequent Parse still sees the header.
	parsed, err := Parse(frame)
	if err != nil || parsed != h {
		t.Fatalf("parse after peek: %+v, %v", parsed, err)
	}
	if frame.Len() != 4 {
		t.Fatalf("parse did not strip header: len = %d", frame.Len())
	}
}

func TestShortFrameErrors(t *testing.T) {
	short := frameWith(t, []byte{1, 2, 3}) // < HeaderLen
	defer short.Release()
	if _, err := Parse(short); !errors.Is(err, ErrShortHeader) {
		t.Fatalf("Parse(short) = %v, want ErrShortHeader", err)
	}
	if _, err := Peek(short); !errors.Is(err, ErrShortHeader) {
		t.Fatalf("Peek(short) = %v, want ErrShortHeader", err)
	}

	empty := netbuf.NewChain()
	if _, err := Parse(empty); !errors.Is(err, ErrShortHeader) {
		t.Fatalf("Parse(empty) = %v, want ErrShortHeader", err)
	}
	if err := (Header{}).Push(empty); err == nil {
		t.Fatal("Push on an empty chain must fail")
	}
}

func TestPushWithoutHeadroomFails(t *testing.T) {
	b := netbuf.New(0, 8)
	if err := b.Append(make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	frame := netbuf.ChainOf(b)
	defer frame.Release()
	if err := (Header{}).Push(frame); err == nil {
		t.Fatal("Push without headroom must fail")
	}
}
