// Package eth implements the link-layer framing used on the simulated
// fabric. Addresses are 32-bit and double as network-layer addresses (the
// simulated LAN has no ARP; every node sits on one switch, as in the paper's
// testbed where all machines share a NetGear gigabit switch).
package eth

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ncache/internal/netbuf"
)

// HeaderLen is the encoded size of a link header.
const HeaderLen = 12

// Addr is a link/network address.
type Addr uint32

// Broadcast is the all-ones broadcast address.
const Broadcast Addr = 0xffffffff

// String formats the address dotted-quad style.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// EtherType identifies the payload protocol of a frame.
type EtherType uint16

// Assigned ethertypes for the simulated stack.
const (
	TypeIPv4 EtherType = 0x0800
)

// ErrShortHeader reports a frame too short to carry a link header.
var ErrShortHeader = errors.New("eth: short header")

// Header is a link-layer frame header.
type Header struct {
	Dst  Addr
	Src  Addr
	Type EtherType
	// Pad keeps the header length even so transport checksum inheritance
	// composes on 16-bit boundaries.
	Pad uint16
}

// Push prepends the header to the first buffer of the frame.
func (h Header) Push(frame *netbuf.Chain) error {
	bufs := frame.Bufs()
	if len(bufs) == 0 {
		return errors.New("eth: empty frame")
	}
	dst, err := bufs[0].Push(HeaderLen)
	if err != nil {
		return fmt.Errorf("eth push: %w", err)
	}
	binary.BigEndian.PutUint32(dst[0:4], uint32(h.Dst))
	binary.BigEndian.PutUint32(dst[4:8], uint32(h.Src))
	binary.BigEndian.PutUint16(dst[8:10], uint16(h.Type))
	binary.BigEndian.PutUint16(dst[10:12], h.Pad)
	return nil
}

// Parse strips and returns the header from the first buffer of the frame.
func Parse(frame *netbuf.Chain) (Header, error) {
	bufs := frame.Bufs()
	if len(bufs) == 0 || bufs[0].Len() < HeaderLen {
		return Header{}, ErrShortHeader
	}
	raw, err := bufs[0].Pull(HeaderLen)
	if err != nil {
		return Header{}, err
	}
	return Header{
		Dst:  Addr(binary.BigEndian.Uint32(raw[0:4])),
		Src:  Addr(binary.BigEndian.Uint32(raw[4:8])),
		Type: EtherType(binary.BigEndian.Uint16(raw[8:10])),
		Pad:  binary.BigEndian.Uint16(raw[10:12]),
	}, nil
}

// Peek reads the header without consuming it, for switch forwarding.
func Peek(frame *netbuf.Chain) (Header, error) {
	bufs := frame.Bufs()
	if len(bufs) == 0 || bufs[0].Len() < HeaderLen {
		return Header{}, ErrShortHeader
	}
	raw := bufs[0].Bytes()
	return Header{
		Dst:  Addr(binary.BigEndian.Uint32(raw[0:4])),
		Src:  Addr(binary.BigEndian.Uint32(raw[4:8])),
		Type: EtherType(binary.BigEndian.Uint16(raw[8:10])),
		Pad:  binary.BigEndian.Uint16(raw[10:12]),
	}, nil
}
