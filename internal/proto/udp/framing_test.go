package udp

import (
	"bytes"
	"encoding/binary"
	"testing"

	"ncache/internal/netbuf"
	"ncache/internal/proto/eth"
	"ncache/internal/proto/ipv4"
)

// buildDatagram crafts a wire-format UDP datagram (header + payload) with a
// correct checksum; mangle, if set, corrupts the header afterwards.
func buildDatagram(src, dst eth.Addr, srcPort, dstPort uint16, pay []byte, mangle func(hdr []byte)) *netbuf.Chain {
	hdr := make([]byte, HeaderLen)
	total := HeaderLen + len(pay)
	binary.BigEndian.PutUint16(hdr[0:2], srcPort)
	binary.BigEndian.PutUint16(hdr[2:4], dstPort)
	binary.BigEndian.PutUint16(hdr[4:6], uint16(total))
	sum := pseudoHeaderSum(src, dst, uint16(total))
	sum.AddBytes(hdr)
	sum.AddBytes(pay)
	ck := sum.Checksum()
	if ck == 0 {
		ck = 0xffff
	}
	binary.BigEndian.PutUint16(hdr[6:8], ck)
	if mangle != nil {
		mangle(hdr)
	}
	return netbuf.ChainFromBytes(append(append([]byte{}, hdr...), pay...), netbuf.DefaultBufSize)
}

// inject feeds a crafted datagram straight into the receive path, as if the
// IP layer had just reassembled it.
func inject(t *testing.T, h *host, src eth.Addr, dg *netbuf.Chain) {
	t.Helper()
	h.udp.receive(ipv4.Header{Src: src, Dst: h.addr, Proto: ipv4.ProtoUDP}, dg)
}

// TestWireFormatRoundTrip checks the header codec field by field: a crafted
// datagram surfaces with the same ports, addresses and payload bytes.
func TestWireFormatRoundTrip(t *testing.T) {
	eng, a, b := twoHosts(t)
	payload := []byte("framing round trip")
	var got *Datagram
	if err := b.udp.Bind(2049, func(dg Datagram) { got = &dg }); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	inject(t, b, a.addr, buildDatagram(a.addr, b.addr, 700, 2049, payload, nil))
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got == nil {
		t.Fatal("datagram not delivered")
	}
	if got.Src != a.addr || got.Dst != b.addr || got.SrcPort != 700 || got.DstPort != 2049 {
		t.Fatalf("addressing = %+v", got)
	}
	if !bytes.Equal(got.Payload.Flatten(), payload) {
		t.Fatal("payload damaged in framing")
	}
	got.Payload.Release()
}

// TestShortHeaderRejected checks runt datagrams are dropped, not parsed.
func TestShortHeaderRejected(t *testing.T) {
	eng, a, b := twoHosts(t)
	delivered := false
	if err := b.udp.Bind(2049, func(dg Datagram) { delivered = true; dg.Payload.Release() }); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	inject(t, b, a.addr, netbuf.ChainFromBytes([]byte{0x01, 0x02, 0x03}, netbuf.DefaultBufSize))
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if delivered {
		t.Fatal("runt datagram delivered")
	}
	if b.udp.BadChecksums != 1 {
		t.Fatalf("BadChecksums = %d, want 1", b.udp.BadChecksums)
	}
}

// TestBadHeaderChecksumRejected corrupts the checksum field itself.
func TestBadHeaderChecksumRejected(t *testing.T) {
	eng, a, b := twoHosts(t)
	delivered := false
	if err := b.udp.Bind(2049, func(dg Datagram) { delivered = true; dg.Payload.Release() }); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	inject(t, b, a.addr, buildDatagram(a.addr, b.addr, 700, 2049, []byte("x"), func(hdr []byte) {
		hdr[6] ^= 0xff
	}))
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if delivered || b.udp.BadChecksums != 1 {
		t.Fatalf("delivered=%v BadChecksums=%d", delivered, b.udp.BadChecksums)
	}
}

// TestLengthMismatchRejected corrupts the length field: the pseudo-header
// sum no longer matches and the datagram must not demux.
func TestLengthMismatchRejected(t *testing.T) {
	eng, a, b := twoHosts(t)
	delivered := false
	if err := b.udp.Bind(2049, func(dg Datagram) { delivered = true; dg.Payload.Release() }); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	inject(t, b, a.addr, buildDatagram(a.addr, b.addr, 700, 2049, []byte("abcd"), func(hdr []byte) {
		binary.BigEndian.PutUint16(hdr[4:6], uint16(HeaderLen+4+8))
	}))
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if delivered || b.udp.BadChecksums != 1 {
		t.Fatalf("delivered=%v BadChecksums=%d", delivered, b.udp.BadChecksums)
	}
}
