package udp

import (
	"bytes"
	"testing"

	"ncache/internal/netbuf"
	"ncache/internal/proto/eth"
	"ncache/internal/proto/ipv4"
	"ncache/internal/sim"
	"ncache/internal/simnet"
)

type host struct {
	node *simnet.Node
	ip   *ipv4.Stack
	udp  *Transport
	addr eth.Addr
}

func twoHosts(t *testing.T) (*sim.Engine, *host, *host) {
	t.Helper()
	eng := sim.NewEngine()
	nw := simnet.NewNetwork(eng, 5*sim.Microsecond)
	mk := func(name string, addr eth.Addr) *host {
		n := simnet.NewNode(eng, name, simnet.DefaultProfile())
		if _, err := nw.Attach(n, addr, simnet.Gbps); err != nil {
			t.Fatalf("attach %s: %v", name, err)
		}
		ip := ipv4.NewStack(n)
		return &host{node: n, ip: ip, udp: NewTransport(ip), addr: addr}
	}
	return eng, mk("a", 1), mk("b", 2)
}

func TestSmallDatagram(t *testing.T) {
	eng, a, b := twoHosts(t)
	var got Datagram
	var payload []byte
	if err := b.udp.Bind(2049, func(dg Datagram) {
		got = dg
		payload = dg.Payload.Flatten()
		dg.Payload.Release()
	}); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if err := a.udp.Send(a.addr, 700, b.addr, 2049, []byte("rpc call")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if string(payload) != "rpc call" {
		t.Fatalf("payload = %q", payload)
	}
	if got.Src != 1 || got.Dst != 2 || got.SrcPort != 700 || got.DstPort != 2049 {
		t.Fatalf("addressing = %+v", got)
	}
}

func TestLargeDatagramFragmentsAndReassembles(t *testing.T) {
	eng, a, b := twoHosts(t)
	want := make([]byte, 32*1024) // an NFS 32 KB read reply sized payload
	for i := range want {
		want[i] = byte(i * 31)
	}
	var got []byte
	var bufsInChain int
	if err := b.udp.Bind(9, func(dg Datagram) {
		got = dg.Payload.Flatten()
		bufsInChain = dg.Payload.NumBufs()
		dg.Payload.Release()
	}); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if err := a.udp.Send(a.addr, 10, b.addr, 9, want); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("payload mismatch: got %d bytes", len(got))
	}
	if bufsInChain < 22 {
		t.Fatalf("expected many wire buffers after zero-copy reassembly, got %d", bufsInChain)
	}
	// 32KB+8 at 1480 B/fragment = 23 fragments.
	if tx := a.node.NIC(0).Stats.PacketsTx; tx != 23 {
		t.Fatalf("fragments sent = %d, want 23", tx)
	}
	if a.ip.ReasmErrors != 0 || b.ip.ReasmErrors != 0 {
		t.Fatal("reassembly errors on lossless fabric")
	}
}

func TestSendChainZeroCopy(t *testing.T) {
	eng, a, b := twoHosts(t)
	payload := netbuf.ChainFromBytes(bytes.Repeat([]byte("z"), 4096), netbuf.DefaultBufSize)
	copiesBefore := a.node.Copies.PhysicalOps
	var got []byte
	if err := b.udp.Bind(1, func(dg Datagram) {
		got = dg.Payload.Flatten()
		dg.Payload.Release()
	}); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if err := a.udp.SendChain(a.addr, 2, b.addr, 1, payload); err != nil {
		t.Fatalf("SendChain: %v", err)
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 4096 {
		t.Fatalf("got %d bytes", len(got))
	}
	if a.node.Copies.PhysicalOps != copiesBefore {
		t.Fatalf("SendChain performed %d physical copies, want 0",
			a.node.Copies.PhysicalOps-copiesBefore)
	}
}

func TestOversizeDatagramRejected(t *testing.T) {
	_, a, b := twoHosts(t)
	big := netbuf.ChainFromBytes(make([]byte, 70000), netbuf.DefaultBufSize)
	if err := a.udp.SendChain(a.addr, 1, b.addr, 1, big); err == nil {
		t.Fatal("oversize datagram accepted")
	}
}

func TestUnboundPortDiscarded(t *testing.T) {
	eng, a, b := twoHosts(t)
	if err := a.udp.Send(a.addr, 1, b.addr, 4242, []byte("nobody home")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	_ = b
}

func TestDoubleBindRejected(t *testing.T) {
	_, a, _ := twoHosts(t)
	if err := a.udp.Bind(5, func(Datagram) {}); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if err := a.udp.Bind(5, func(Datagram) {}); err == nil {
		t.Fatal("double Bind succeeded")
	}
	a.udp.Unbind(5)
	if err := a.udp.Bind(5, func(Datagram) {}); err != nil {
		t.Fatalf("Bind after Unbind: %v", err)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	eng, a, b := twoHosts(t)
	// Corrupt payload in flight via a tx filter that flips a byte in the
	// UDP payload region of the first fragment.
	a.node.NIC(0).AddTxFilter(corruptor{})
	delivered := false
	if err := b.udp.Bind(77, func(dg Datagram) {
		delivered = true
		dg.Payload.Release()
	}); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if err := a.udp.Send(a.addr, 1, b.addr, 77, []byte("integrity matters here")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if delivered {
		t.Fatal("corrupted datagram was delivered")
	}
	if b.udp.BadChecksums != 1 {
		t.Fatalf("BadChecksums = %d, want 1", b.udp.BadChecksums)
	}
}

type corruptor struct{}

func (corruptor) FilterTx(f *netbuf.Chain) *netbuf.Chain {
	// eth(12) + ip(20) + udp(8) = byte 40 is the first payload byte; the
	// headers live in the first buffer.
	last := f.Bufs()[len(f.Bufs())-1]
	if last.Len() > 0 {
		last.Bytes()[last.Len()-1] ^= 0xff
	}
	return f
}

func TestReplyFromArrivalAddress(t *testing.T) {
	// A server with two NICs must reply from the address the request hit.
	eng := sim.NewEngine()
	nw := simnet.NewNetwork(eng, sim.Microsecond)
	server := simnet.NewNode(eng, "server", simnet.DefaultProfile())
	client := simnet.NewNode(eng, "client", simnet.DefaultProfile())
	if _, err := nw.Attach(server, 10, simnet.Gbps); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Attach(server, 11, simnet.Gbps); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Attach(client, 20, simnet.Gbps); err != nil {
		t.Fatal(err)
	}
	sIP := ipv4.NewStack(server)
	cIP := ipv4.NewStack(client)
	sUDP := NewTransport(sIP)
	cUDP := NewTransport(cIP)

	if err := sUDP.Bind(2049, func(dg Datagram) {
		dg.Payload.Release()
		if err := sUDP.Send(dg.Dst, dg.DstPort, dg.Src, dg.SrcPort, []byte("pong")); err != nil {
			t.Errorf("reply: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	var replySrc eth.Addr
	if err := cUDP.Bind(999, func(dg Datagram) {
		replySrc = dg.Src
		dg.Payload.Release()
	}); err != nil {
		t.Fatal(err)
	}
	if err := cUDP.Send(20, 999, 11, 2049, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if replySrc != 11 {
		t.Fatalf("reply came from %v, want 11 (the NIC the request hit)", replySrc)
	}
}
