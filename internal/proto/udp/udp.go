// Package udp implements the datagram transport the simulated NFS service
// runs on (the paper's NFS experiments use NFS-over-UDP). It exposes a
// socket-like API plus the extended zero-copy send path that the NCache
// kernel modification adds ("TCP/IP socket interfaces extended", Table 1):
// SendChain transmits a netbuf chain without copying payload bytes.
package udp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ncache/internal/netbuf"
	"ncache/internal/proto/eth"
	"ncache/internal/proto/ipv4"
	"ncache/internal/simnet"
)

// HeaderLen is the encoded size of a UDP header.
const HeaderLen = 8

// Errors returned by the transport.
var (
	ErrPortInUse   = errors.New("udp: port in use")
	ErrBadChecksum = errors.New("udp: checksum mismatch")
)

// Datagram is a received datagram with its addressing context.
type Datagram struct {
	Src     eth.Addr
	Dst     eth.Addr // the local address the datagram arrived on
	SrcPort uint16
	DstPort uint16
	// Payload holds the original wire buffers — on the registered-receive
	// path, buffers the NIC's RX ring adopted into this node's pools at
	// delivery. Ownership contract: the receiver owns the references and
	// must Release the chain (or pass it to an owner-taking API) exactly
	// once; long-term retention goes through SubChain/Clone aliasing.
	Payload *netbuf.Chain
}

// Receiver consumes inbound datagrams on a bound port.
type Receiver func(dg Datagram)

// Transport is a node's UDP layer.
type Transport struct {
	ip       *ipv4.Stack
	node     *simnet.Node
	ports    map[uint16]Receiver
	nextPort uint16
	// BadChecksums counts datagrams dropped for checksum mismatch.
	BadChecksums uint64
}

// NewTransport creates the UDP layer and registers it with the IP stack.
func NewTransport(ip *ipv4.Stack) *Transport {
	t := &Transport{
		ip:       ip,
		node:     ip.Node(),
		ports:    make(map[uint16]Receiver),
		nextPort: 49152,
	}
	ip.Register(ipv4.ProtoUDP, t.receive)
	return t
}

// Node returns the owning node.
func (t *Transport) Node() *simnet.Node { return t.node }

// Bind installs a receiver for a local port.
func (t *Transport) Bind(port uint16, r Receiver) error {
	if _, busy := t.ports[port]; busy {
		return fmt.Errorf("%w: %d", ErrPortInUse, port)
	}
	t.ports[port] = r
	return nil
}

// Unbind removes a port binding.
func (t *Transport) Unbind(port uint16) { delete(t.ports, port) }

// Send transmits a payload of plain bytes (they are copied into pooled
// transmit buffers — the legacy physical-copy path; callers that already
// hold a chain use SendChain and skip the copy).
func (t *Transport) Send(src eth.Addr, srcPort uint16, dst eth.Addr, dstPort uint16, payload []byte) error {
	chain, err := t.node.TxPool.GetChain(payload)
	if err != nil {
		return err
	}
	return t.SendChain(src, srcPort, dst, dstPort, chain)
}

// SendChain transmits a payload already in network buffers without copying
// it — the extended socket interface. The transport takes ownership of the
// chain's references.
func (t *Transport) SendChain(src eth.Addr, srcPort uint16, dst eth.Addr, dstPort uint16, payload *netbuf.Chain) error {
	total := payload.Len() + HeaderLen
	if total > 0xffff {
		payload.Release()
		return fmt.Errorf("udp: datagram %d exceeds 64KB", total)
	}
	hb, err := t.node.TxPool.Get()
	if err != nil {
		payload.Release()
		return err
	}
	hdr, err := hb.Push(HeaderLen)
	if err != nil {
		hb.Release()
		payload.Release()
		return err
	}
	binary.BigEndian.PutUint16(hdr[0:2], srcPort)
	binary.BigEndian.PutUint16(hdr[2:4], dstPort)
	binary.BigEndian.PutUint16(hdr[4:6], uint16(total))
	binary.BigEndian.PutUint16(hdr[6:8], 0)

	// Transport checksum over pseudo-header + header + payload. The
	// payload walk is free on hardware with checksum offload; otherwise
	// it costs CPU — unless the chain carries an inherited partial from
	// the NCache substitution hook, in which case the sum was composed
	// from stored per-entry partials and no payload byte is touched.
	sum := pseudoHeaderSum(src, dst, uint16(total))
	sum.AddBytes(hdr)
	pay, inherited := payload.CachedPartial()
	if !inherited {
		pay = netbuf.PartialOfChain(payload)
	}
	sum = netbuf.Combine(sum, pay)
	ck := sum.Checksum()
	if ck == 0 {
		ck = 0xffff
	}
	binary.BigEndian.PutUint16(hdr[6:8], ck)
	if !t.offloaded(src) && !inherited {
		t.node.Copies.ChecksumBytes += uint64(payload.Len())
		t.node.Charge(t.node.Cost.ChecksumCost(payload.Len()), nil)
	}

	dg := netbuf.ChainOf(hb)
	dg.AppendChain(payload)
	return t.ip.Send(src, dst, ipv4.ProtoUDP, dg)
}

// offloaded reports whether the NIC at the local address computes transport
// checksums in hardware.
func (t *Transport) offloaded(local eth.Addr) bool {
	for _, nic := range t.node.NICs() {
		if nic.Addr == local {
			return nic.ChecksumOffload
		}
	}
	return false
}

// receive validates and demuxes one reassembled datagram.
func (t *Transport) receive(ih ipv4.Header, payload *netbuf.Chain) {
	if payload.Len() < HeaderLen {
		t.BadChecksums++
		payload.Release()
		return
	}
	raw, err := payload.PullHeader(HeaderLen)
	if err != nil {
		payload.Release()
		return
	}
	srcPort := binary.BigEndian.Uint16(raw[0:2])
	dstPort := binary.BigEndian.Uint16(raw[2:4])
	length := binary.BigEndian.Uint16(raw[4:6])

	sum := pseudoHeaderSum(ih.Src, ih.Dst, length)
	sum.AddBytes(raw)
	sum = netbuf.Combine(sum, netbuf.PartialOfChain(payload))
	if sum.Fold() != 0xffff {
		t.BadChecksums++
		payload.Release()
		return
	}
	if !t.offloaded(ih.Dst) {
		t.node.Copies.ChecksumBytes += uint64(payload.Len())
		t.node.Charge(t.node.Cost.ChecksumCost(payload.Len()), nil)
	}

	r, ok := t.ports[dstPort]
	if !ok {
		payload.Release()
		return
	}
	r(Datagram{
		Src:     ih.Src,
		Dst:     ih.Dst,
		SrcPort: srcPort,
		DstPort: dstPort,
		Payload: payload,
	})
}

// pseudoHeaderSum starts a checksum with the UDP pseudo-header.
func pseudoHeaderSum(src, dst eth.Addr, length uint16) netbuf.Partial {
	var s netbuf.Partial
	s.AddUint16(uint16(src >> 16))
	s.AddUint16(uint16(src))
	s.AddUint16(uint16(dst >> 16))
	s.AddUint16(uint16(dst))
	s.AddUint16(uint16(ipv4.ProtoUDP))
	s.AddUint16(length)
	return s
}
