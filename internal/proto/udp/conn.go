// Connected-endpoint view of the datagram transport: a bound local port
// associated with one peer, satisfying the transport-neutral proto.Conn
// interface so datagram and stream transports are interchangeable to the
// layers above.

package udp

import (
	"ncache/internal/netbuf"
	"ncache/internal/proto"
	"ncache/internal/proto/eth"
	"ncache/internal/simnet"
)

// MaxPayload is the largest datagram payload SendChain accepts.
const MaxPayload = 0xffff - HeaderLen

// Conn is a connected datagram endpoint: a local port bound to one peer.
// Each chain handed to the receiver is one datagram payload; datagrams
// from other peers arriving on the port are dropped.
type Conn struct {
	t          *Transport
	local      eth.Addr
	remote     eth.Addr
	localPort  uint16
	remotePort uint16
	receiver   func(*netbuf.Chain)
	closed     bool
}

// Open binds localPort and returns a connected endpoint to remote:port.
func (t *Transport) Open(local eth.Addr, localPort uint16, remote eth.Addr, remotePort uint16) (*Conn, error) {
	c := &Conn{
		t:          t,
		local:      local,
		remote:     remote,
		localPort:  localPort,
		remotePort: remotePort,
	}
	if err := t.Bind(localPort, c.recv); err != nil {
		return nil, err
	}
	return c, nil
}

// DialConn is Open with the transport-neutral proto.Dialer shape: it binds
// an ephemeral local port and completes immediately (datagram endpoints
// have no handshake).
func (t *Transport) DialConn(local, remote eth.Addr, port uint16, done func(proto.Conn, error)) {
	for {
		p := t.nextPort
		if p == 0 {
			t.nextPort = 49152
			continue
		}
		t.nextPort++
		c, err := t.Open(local, p, remote, port)
		if err == nil {
			done(c, nil)
			return
		}
	}
}

func (c *Conn) recv(dg Datagram) {
	if dg.Src != c.remote || dg.SrcPort != c.remotePort {
		dg.Payload.Release()
		return
	}
	if c.receiver != nil {
		c.receiver(dg.Payload)
	} else {
		dg.Payload.Release()
	}
}

// SendChain transmits one datagram to the peer, zero-copy. The endpoint
// takes ownership of the chain.
func (c *Conn) SendChain(payload *netbuf.Chain) error {
	return c.t.SendChain(c.local, c.localPort, c.remote, c.remotePort, payload)
}

// SetReceiver installs the inbound datagram consumer (one chain per
// datagram; the consumer must Release or pass on each chain exactly once).
func (c *Conn) SetReceiver(f func(*netbuf.Chain)) { c.receiver = f }

// MSS returns the largest payload one SendChain may carry.
func (c *Conn) MSS() int { return MaxPayload }

// Close releases the port binding.
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.t.Unbind(c.localPort)
}

// Node returns the node owning the endpoint.
func (c *Conn) Node() *simnet.Node { return c.t.node }

// LocalAddr returns the endpoint's local address.
func (c *Conn) LocalAddr() eth.Addr { return c.local }

// RemoteAddr returns the peer's address.
func (c *Conn) RemoteAddr() eth.Addr { return c.remote }

// LocalPort returns the bound local port.
func (c *Conn) LocalPort() uint16 { return c.localPort }

// RemotePort returns the peer's port.
func (c *Conn) RemotePort() uint16 { return c.remotePort }

// Conn satisfies the transport-neutral connection interface.
var _ proto.Conn = (*Conn)(nil)
