package ipv4

import (
	"fmt"

	"ncache/internal/netbuf"
	"ncache/internal/proto/eth"
	"ncache/internal/sim"
	"ncache/internal/simnet"
)

// Handler consumes a reassembled datagram for one transport protocol. The
// payload chain's buffers are the original wire buffers (zero-copy
// reassembly) — registered-receive buffers this node adopted at NIC
// delivery. Ownership contract: the stack transfers the references to the
// handler, which must Release or forward them exactly once.
type Handler func(h Header, payload *netbuf.Chain)

// Stack is a node's network layer: it owns the receive path of every NIC on
// the node, demuxes to registered transports, fragments oversize datagrams
// on transmit, and reassembles on receive.
type Stack struct {
	node     *simnet.Node
	nics     map[eth.Addr]*simnet.NIC
	handlers map[uint8]Handler
	nextID   uint16
	reasm    map[flowKey]*reassembly

	// ReasmErrors counts fragments that could not be reassembled
	// (out-of-order or inconsistent); the lossless fabric keeps this at
	// zero unless faults are injected.
	ReasmErrors uint64
	// ReasmDropped counts partial datagrams abandoned because a lost
	// fragment made completion impossible (a newer ID arrived on the flow,
	// or the reassembly timed out).
	ReasmDropped uint64
}

// ReasmTimeout bounds how long a partial datagram may wait for its next
// fragment. Fragments of one datagram arrive back-to-back within
// microseconds; a partial this stale lost a fragment and can never
// complete (the kernel's ip_frag_time serves the same purpose).
const ReasmTimeout = 50 * sim.Millisecond

// flowKey identifies one fragment stream. The fabric preserves per-flow
// ordering, so at most one datagram per flow is ever mid-reassembly; a
// fragment carrying a new IP ID obsoletes any older partial.
type flowKey struct {
	src, dst eth.Addr
	proto    uint8
}

type reassembly struct {
	id      uint16
	chain   *netbuf.Chain
	nextOff uint16
	expiry  sim.EventID
}

// NewStack creates the network layer for node and installs itself as the
// receive handler on every currently attached NIC.
func NewStack(node *simnet.Node) *Stack {
	s := &Stack{
		node:     node,
		nics:     make(map[eth.Addr]*simnet.NIC),
		handlers: make(map[uint8]Handler),
		reasm:    make(map[flowKey]*reassembly),
	}
	for _, nic := range node.NICs() {
		s.AttachNIC(nic)
	}
	return s
}

// AttachNIC registers a NIC added after stack construction.
func (s *Stack) AttachNIC(nic *simnet.NIC) {
	s.nics[nic.Addr] = nic
	nic.SetRxHandler(func(frame *netbuf.Chain) {
		// Per-packet receive cost: interrupt + driver + demux.
		s.node.Charge(s.node.Cost.PktRxNs, func() {
			s.receive(frame)
		})
	})
}

// Node returns the owning node.
func (s *Stack) Node() *simnet.Node { return s.node }

// Register installs the handler for an IP protocol number.
func (s *Stack) Register(proto uint8, h Handler) {
	s.handlers[proto] = h
}

// Addrs returns the local addresses of all attached NICs.
func (s *Stack) Addrs() []eth.Addr {
	out := make([]eth.Addr, 0, len(s.nics))
	for a := range s.nics { // det: unordered (diagnostic accessor, not on the event path)
		out = append(out, a)
	}
	return out
}

// Send transmits payload as one IP datagram from the local address src to
// dst, fragmenting as needed. The stack takes ownership of the payload
// chain's references. Fragmentation clones buffer descriptors — payload
// bytes are never copied on this path.
func (s *Stack) Send(src, dst eth.Addr, proto uint8, payload *netbuf.Chain) error {
	nic, ok := s.nics[src]
	if !ok {
		return fmt.Errorf("ipv4: no local NIC with address %s", src)
	}
	id := s.nextID
	s.nextID++
	total := payload.Len()
	maxFrag := (nic.MTU - HeaderLen) &^ 7 // fragment payload, multiple of 8

	if total <= nic.MTU-HeaderLen {
		return s.sendFragment(nic, Header{
			TotalLen: uint16(HeaderLen + total),
			ID:       id,
			TTL:      64,
			Proto:    proto,
			Src:      src,
			Dst:      dst,
		}, payload)
	}

	for off := 0; off < total; off += maxFrag {
		n := maxFrag
		more := true
		if off+n >= total {
			n = total - off
			more = false
		}
		fragPayload, err := payload.Slice(off, n)
		if err != nil {
			payload.Release()
			return fmt.Errorf("ipv4 fragment: %w", err)
		}
		hdr := Header{
			TotalLen:   uint16(HeaderLen + n),
			ID:         id,
			MoreFrags:  more,
			FragOffset: uint16(off),
			TTL:        64,
			Proto:      proto,
			Src:        src,
			Dst:        dst,
		}
		if err := s.sendFragment(nic, hdr, fragPayload); err != nil {
			payload.Release()
			return err
		}
	}
	// The fragments hold their own references now.
	payload.Release()
	return nil
}

// sendFragment prepends headers into a dedicated header buffer (never into
// shared payload buffers — fragments may alias one another's backing), then
// charges per-packet CPU and hands the frame to the NIC.
func (s *Stack) sendFragment(nic *simnet.NIC, hdr Header, payload *netbuf.Chain) error {
	hb, err := s.node.TxPool.Get()
	if err != nil {
		payload.Release()
		return err
	}
	frame := netbuf.ChainOf(hb)
	frame.AppendChain(payload)
	if err := hdr.Push(frame); err != nil {
		return err
	}
	ehdr := eth.Header{Dst: hdr.Dst, Src: hdr.Src, Type: eth.TypeIPv4}
	if err := ehdr.Push(frame); err != nil {
		return err
	}
	s.node.Charge(s.node.Cost.PktTxNs, func() {
		if err := nic.Send(frame); err != nil {
			frame.Release()
		}
	})
	return nil
}

// receive parses one frame and either delivers or reassembles it.
func (s *Stack) receive(frame *netbuf.Chain) {
	if _, err := eth.Parse(frame); err != nil {
		s.ReasmErrors++
		frame.Release()
		return
	}
	hdr, err := Parse(frame)
	if err != nil {
		s.ReasmErrors++
		frame.Release()
		return
	}
	if !hdr.MoreFrags && hdr.FragOffset == 0 {
		s.deliver(hdr, frame)
		return
	}

	key := flowKey{src: hdr.Src, dst: hdr.Dst, proto: hdr.Proto}
	r := s.reasm[key]
	if r != nil && r.id != hdr.ID {
		// Per-flow ordering: a fragment with a new ID means the old
		// partial's missing tail can never arrive. Abandon it.
		s.ReasmDropped++
		s.evict(key, r)
		r = nil
	}
	if r == nil {
		if hdr.FragOffset != 0 {
			// Head fragment lost; the rest of the datagram is noise.
			s.ReasmErrors++
			frame.Release()
			return
		}
		r = &reassembly{id: hdr.ID, chain: netbuf.NewChain()}
		rr := r
		r.expiry = s.node.Eng.Schedule(ReasmTimeout, func() {
			if s.reasm[key] == rr {
				s.ReasmDropped++
				rr.chain.Release()
				delete(s.reasm, key)
			}
		})
		s.reasm[key] = r
	}
	if hdr.FragOffset != r.nextOff {
		// A middle fragment was lost or reordered away.
		s.ReasmErrors++
		frame.Release()
		s.evict(key, r)
		return
	}
	r.chain.AppendChain(frame)
	r.nextOff += hdr.TotalLen - HeaderLen
	if !hdr.MoreFrags {
		s.node.Eng.Cancel(r.expiry)
		delete(s.reasm, key)
		s.deliver(hdr, r.chain)
	}
}

// evict abandons a partial reassembly, releasing its buffers.
func (s *Stack) evict(key flowKey, r *reassembly) {
	s.node.Eng.Cancel(r.expiry)
	r.chain.Release()
	delete(s.reasm, key)
}

// deliver hands a complete datagram to the registered transport.
func (s *Stack) deliver(hdr Header, payload *netbuf.Chain) {
	h, ok := s.handlers[hdr.Proto]
	if !ok {
		payload.Release()
		return
	}
	h(hdr, payload)
}
