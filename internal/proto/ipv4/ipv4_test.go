package ipv4

import (
	"testing"
	"testing/quick"

	"ncache/internal/netbuf"
	"ncache/internal/proto/eth"
)

func TestHeaderRoundTrip(t *testing.T) {
	cases := []Header{
		{TotalLen: 20, ID: 1, TTL: 64, Proto: ProtoUDP, Src: 1, Dst: 2},
		{TotalLen: 1500, ID: 7, MoreFrags: true, FragOffset: 1480, TTL: 3, Proto: ProtoTCP, Src: 0xffffffff, Dst: 0},
		{TotalLen: 60, ID: 0xffff, FragOffset: 8 * 1024, TTL: 255, Proto: 99, Src: 10, Dst: 20},
	}
	for _, in := range cases {
		c := netbuf.ChainFromBytes([]byte("xyz"), 100)
		if err := in.Push(c); err != nil {
			t.Fatalf("Push(%+v): %v", in, err)
		}
		out, err := Parse(c)
		if err != nil {
			t.Fatalf("Parse(%+v): %v", in, err)
		}
		if out != in {
			t.Fatalf("round trip: got %+v, want %+v", out, in)
		}
		if string(c.Flatten()) != "xyz" {
			t.Fatalf("payload corrupted")
		}
	}
}

func TestParseRejectsCorruptHeader(t *testing.T) {
	c := netbuf.ChainFromBytes([]byte("payload"), 100)
	h := Header{TotalLen: 27, ID: 3, TTL: 64, Proto: ProtoUDP, Src: 1, Dst: 2}
	if err := h.Push(c); err != nil {
		t.Fatalf("Push: %v", err)
	}
	// Flip a bit in the header.
	c.Bufs()[0].Bytes()[8] ^= 0xff
	if _, err := Parse(c); err == nil {
		t.Fatal("Parse accepted corrupt header")
	}
}

func TestParseRejectsShortAndBadVersion(t *testing.T) {
	short := netbuf.ChainFromBytes([]byte{1, 2, 3}, 100)
	if _, err := Parse(short); err == nil {
		t.Fatal("Parse accepted short header")
	}
	c := netbuf.ChainFromBytes(nil, 100)
	h := Header{TotalLen: 20, TTL: 1, Proto: 1, Src: 1, Dst: 2}
	if err := h.Push(c); err != nil {
		t.Fatalf("Push: %v", err)
	}
	c.Bufs()[0].Bytes()[0] = 0x60 // IPv6 version nibble
	if _, err := Parse(c); err == nil {
		t.Fatal("Parse accepted bad version")
	}
}

func TestHeaderPropertyRoundTrip(t *testing.T) {
	f := func(totalLen, id, fragOff uint16, ttl, proto uint8, src, dst uint32, more bool) bool {
		in := Header{
			TotalLen:   totalLen,
			ID:         id,
			MoreFrags:  more,
			FragOffset: (fragOff % 8191) * 8,
			TTL:        ttl,
			Proto:      proto,
			Src:        eth.Addr(src),
			Dst:        eth.Addr(dst),
		}
		c := netbuf.ChainFromBytes(nil, 64)
		if err := in.Push(c); err != nil {
			return false
		}
		out, err := Parse(c)
		if err != nil {
			return false
		}
		return out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
