// Package ipv4 implements the network layer of the simulated stack: header
// codec, MTU fragmentation and reassembly, and per-node demux to transport
// protocols.
//
// Fragmentation is zero-copy: an oversize datagram (an NFS read reply over
// UDP easily reaches 32 KB) is split into fragments whose buffers are cloned
// descriptors over the original chain. This is load-bearing for NCache — a
// cached payload must reach the wire without any physical copy even when it
// spans many fragments.
package ipv4

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ncache/internal/netbuf"
	"ncache/internal/proto/eth"
)

// HeaderLen is the encoded size of the (option-less) IPv4 header.
const HeaderLen = 20

// Protocol numbers carried in the header.
const (
	ProtoTCP uint8 = 6
	ProtoUDP uint8 = 17
)

// Errors returned by the codec.
var (
	ErrShortHeader = errors.New("ipv4: short header")
	ErrBadChecksum = errors.New("ipv4: header checksum mismatch")
	ErrBadVersion  = errors.New("ipv4: bad version")
)

// Header is an IPv4 packet header (no options).
type Header struct {
	TotalLen   uint16
	ID         uint16
	MoreFrags  bool
	FragOffset uint16 // in bytes; must be a multiple of 8
	TTL        uint8
	Proto      uint8
	Src        eth.Addr
	Dst        eth.Addr
}

// Push prepends the header, computing the header checksum, to the first
// buffer of the packet.
func (h Header) Push(pkt *netbuf.Chain) error {
	bufs := pkt.Bufs()
	if len(bufs) == 0 {
		return errors.New("ipv4: empty packet")
	}
	dst, err := bufs[0].Push(HeaderLen)
	if err != nil {
		return fmt.Errorf("ipv4 push: %w", err)
	}
	dst[0] = 0x45 // version 4, IHL 5
	dst[1] = 0
	binary.BigEndian.PutUint16(dst[2:4], h.TotalLen)
	binary.BigEndian.PutUint16(dst[4:6], h.ID)
	frag := h.FragOffset / 8
	if h.MoreFrags {
		frag |= 0x2000
	}
	binary.BigEndian.PutUint16(dst[6:8], frag)
	dst[8] = h.TTL
	dst[9] = h.Proto
	dst[10], dst[11] = 0, 0
	binary.BigEndian.PutUint32(dst[12:16], uint32(h.Src))
	binary.BigEndian.PutUint32(dst[16:20], uint32(h.Dst))
	ck := netbuf.Sum(dst)
	binary.BigEndian.PutUint16(dst[10:12], ck)
	return nil
}

// Parse strips and validates the header from the packet.
func Parse(pkt *netbuf.Chain) (Header, error) {
	bufs := pkt.Bufs()
	if len(bufs) == 0 || bufs[0].Len() < HeaderLen {
		return Header{}, ErrShortHeader
	}
	raw := bufs[0].Bytes()[:HeaderLen]
	if raw[0] != 0x45 {
		return Header{}, ErrBadVersion
	}
	var s netbuf.Partial
	s.AddBytes(raw)
	if s.Fold() != 0xffff {
		return Header{}, ErrBadChecksum
	}
	if _, err := bufs[0].Pull(HeaderLen); err != nil {
		return Header{}, err
	}
	frag := binary.BigEndian.Uint16(raw[6:8])
	return Header{
		TotalLen:   binary.BigEndian.Uint16(raw[2:4]),
		ID:         binary.BigEndian.Uint16(raw[4:6]),
		MoreFrags:  frag&0x2000 != 0,
		FragOffset: (frag & 0x1fff) * 8,
		TTL:        raw[8],
		Proto:      raw[9],
		Src:        eth.Addr(binary.BigEndian.Uint32(raw[12:16])),
		Dst:        eth.Addr(binary.BigEndian.Uint32(raw[16:20])),
	}, nil
}
