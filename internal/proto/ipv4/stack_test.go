package ipv4

import (
	"bytes"
	"testing"

	"ncache/internal/netbuf"
	"ncache/internal/proto/eth"
	"ncache/internal/sim"
	"ncache/internal/simnet"
)

func stackPair(t *testing.T) (*sim.Engine, *Stack, *Stack) {
	t.Helper()
	eng := sim.NewEngine()
	nw := simnet.NewNetwork(eng, 2*sim.Microsecond)
	a := simnet.NewNode(eng, "a", simnet.DefaultProfile())
	b := simnet.NewNode(eng, "b", simnet.DefaultProfile())
	if _, err := nw.Attach(a, 1, simnet.Gbps); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Attach(b, 2, simnet.Gbps); err != nil {
		t.Fatal(err)
	}
	return eng, NewStack(a), NewStack(b)
}

func TestStackSmallDatagram(t *testing.T) {
	eng, sa, sb := stackPair(t)
	var got []byte
	var gotHdr Header
	sb.Register(99, func(h Header, payload *netbuf.Chain) {
		gotHdr = h
		got = payload.Flatten()
		payload.Release()
	})
	want := []byte("one packet")
	if err := sa.Send(1, 2, 99, netbuf.ChainFromBytes(want, netbuf.DefaultBufSize)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("payload = %q", got)
	}
	if gotHdr.Src != 1 || gotHdr.Dst != 2 || gotHdr.Proto != 99 {
		t.Fatalf("header = %+v", gotHdr)
	}
}

func TestStackFragmentationRoundTrip(t *testing.T) {
	eng, sa, sb := stackPair(t)
	want := make([]byte, 20000)
	sim.NewRNG(4).Fill(want)
	var got []byte
	sb.Register(17, func(_ Header, payload *netbuf.Chain) {
		got = payload.Flatten()
		payload.Release()
	})
	if err := sa.Send(1, 2, 17, netbuf.ChainFromBytes(want, netbuf.DefaultBufSize)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("reassembly mismatch: %d bytes", len(got))
	}
	if sb.ReasmErrors != 0 {
		t.Fatalf("ReasmErrors = %d", sb.ReasmErrors)
	}
	// 20000 bytes at 1480/fragment = 14 fragments.
	if tx := sa.Node().NIC(0).Stats.PacketsTx; tx != 14 {
		t.Fatalf("fragments = %d, want 14", tx)
	}
}

func TestStackInterleavedDatagramsReassembleByID(t *testing.T) {
	// Two large datagrams sent back-to-back: their fragments share the
	// wire but must reassemble separately by IP ID.
	eng, sa, sb := stackPair(t)
	var got [][]byte
	sb.Register(17, func(_ Header, payload *netbuf.Chain) {
		got = append(got, payload.Flatten())
		payload.Release()
	})
	a := bytes.Repeat([]byte{0xA1}, 5000)
	b := bytes.Repeat([]byte{0xB2}, 7000)
	if err := sa.Send(1, 2, 17, netbuf.ChainFromBytes(a, netbuf.DefaultBufSize)); err != nil {
		t.Fatal(err)
	}
	if err := sa.Send(1, 2, 17, netbuf.ChainFromBytes(b, netbuf.DefaultBufSize)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !bytes.Equal(got[0], a) || !bytes.Equal(got[1], b) {
		t.Fatalf("interleaved reassembly broken: %d datagrams", len(got))
	}
}

func TestStackUnknownProtoDropped(t *testing.T) {
	eng, sa, _ := stackPair(t)
	if err := sa.Send(1, 2, 200, netbuf.ChainFromBytes([]byte("x"), 64)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Nothing to assert beyond "no crash, no leak": the datagram is
	// silently discarded at the receiver.
}

func TestStackSendFromUnknownAddressFails(t *testing.T) {
	_, sa, _ := stackPair(t)
	err := sa.Send(42, 2, 17, netbuf.ChainFromBytes([]byte("x"), 64))
	if err == nil {
		t.Fatal("send from non-local address succeeded")
	}
}

func TestStackAddrs(t *testing.T) {
	_, sa, _ := stackPair(t)
	addrs := sa.Addrs()
	if len(addrs) != 1 || addrs[0] != eth.Addr(1) {
		t.Fatalf("Addrs = %v", addrs)
	}
}
