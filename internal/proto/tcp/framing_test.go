package tcp

import (
	"encoding/binary"
	"testing"

	"ncache/internal/netbuf"
	"ncache/internal/proto/eth"
	"ncache/internal/proto/ipv4"
)

// buildSegment crafts a wire-format TCP segment with a correct checksum;
// mangle, if set, corrupts the header afterwards.
func buildSegment(src, dst eth.Addr, srcPort, dstPort uint16, seq, ack uint32, flags uint8, pay []byte, mangle func(hdr []byte)) *netbuf.Chain {
	hdr := make([]byte, HeaderLen)
	binary.BigEndian.PutUint16(hdr[0:2], srcPort)
	binary.BigEndian.PutUint16(hdr[2:4], dstPort)
	binary.BigEndian.PutUint32(hdr[4:8], seq)
	binary.BigEndian.PutUint32(hdr[8:12], ack)
	hdr[12] = flags
	sum := pseudoHeaderSum(src, dst)
	sum.AddBytes(hdr)
	sum.AddBytes(pay)
	binary.BigEndian.PutUint16(hdr[14:16], sum.Checksum())
	if mangle != nil {
		mangle(hdr)
	}
	return netbuf.ChainFromBytes(append(append([]byte{}, hdr...), pay...), netbuf.DefaultBufSize)
}

// inject feeds a crafted segment straight into the receive path.
func inject(h *host, src eth.Addr, seg *netbuf.Chain) {
	h.tcp.receive(ipv4.Header{Src: src, Dst: h.addr, Proto: ipv4.ProtoTCP}, seg)
}

// TestSegmentWireFormatRoundTrip checks the header codec field by field: a
// crafted SYN reaches the listener's demux with its ports and sequence
// number intact (visible in the passive connection it creates).
func TestSegmentWireFormatRoundTrip(t *testing.T) {
	eng, a, b := twoHosts(t)
	if err := b.tcp.Listen(80, func(c *Conn) {}); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	const seq = 0x1234_5678
	inject(b, a.addr, buildSegment(a.addr, b.addr, 5555, 80, seq, 0, flagSYN, nil, nil))
	// Demux is synchronous: the passive connection exists before the
	// engine runs. (Running further would let host a RST the half-open
	// connection, since no real client owns port 5555 there.)
	key := connKey{localAddr: b.addr, remoteAddr: a.addr, localPort: 80, remotePort: 5555}
	c, ok := b.tcp.conns[key]
	if !ok {
		t.Fatalf("no passive connection for %+v (ports mis-framed)", key)
	}
	if c.rcvNxt != seq+1 {
		t.Fatalf("rcvNxt = %#x, want seq+1 = %#x", c.rcvNxt, uint32(seq+1))
	}
	_ = eng
}

// TestShortSegmentRejected checks runt segments are counted and dropped.
func TestShortSegmentRejected(t *testing.T) {
	eng, a, b := twoHosts(t)
	inject(b, a.addr, netbuf.ChainFromBytes(make([]byte, HeaderLen-1), netbuf.DefaultBufSize))
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if b.tcp.ProtocolErrors != 1 {
		t.Fatalf("ProtocolErrors = %d, want 1", b.tcp.ProtocolErrors)
	}
	if len(b.tcp.conns) != 0 {
		t.Fatal("runt segment created connection state")
	}
}

// TestBadChecksumRejected flips a checksum byte on an otherwise valid SYN:
// it must neither demux nor create a passive connection.
func TestBadChecksumRejected(t *testing.T) {
	eng, a, b := twoHosts(t)
	if err := b.tcp.Listen(80, func(c *Conn) {}); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	inject(b, a.addr, buildSegment(a.addr, b.addr, 5555, 80, 1, 0, flagSYN, nil, func(hdr []byte) {
		hdr[14] ^= 0xff
	}))
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if b.tcp.ProtocolErrors != 1 || len(b.tcp.conns) != 0 {
		t.Fatalf("errors=%d conns=%d, want 1/0", b.tcp.ProtocolErrors, len(b.tcp.conns))
	}
}

// TestStrayAckRejected checks a well-formed segment for a connection that
// does not exist is rejected (counted as a stray and answered with RST)
// rather than fabricating state — and that it is not misfiled as a
// protocol error, which is reserved for genuinely malformed input.
func TestStrayAckRejected(t *testing.T) {
	eng, a, b := twoHosts(t)
	inject(b, a.addr, buildSegment(a.addr, b.addr, 5555, 80, 7, 9, flagACK, []byte("ghost"), nil))
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if b.tcp.StraySegments != 1 || b.tcp.ProtocolErrors != 0 || len(b.tcp.conns) != 0 {
		t.Fatalf("strays=%d errors=%d conns=%d, want 1/0/0",
			b.tcp.StraySegments, b.tcp.ProtocolErrors, len(b.tcp.conns))
	}
	// The RST answer lands at a's transport, which also has no such
	// connection; it must swallow it without replying (no RST storms).
	if a.tcp.StraySegments != 1 || a.tcp.ProtocolErrors != 0 {
		t.Fatalf("a: strays=%d errors=%d, want 1/0", a.tcp.StraySegments, a.tcp.ProtocolErrors)
	}
}
