package tcp

import (
	"bytes"
	"os"
	"reflect"
	"strconv"
	"testing"

	"ncache/internal/fault"
	"ncache/internal/netbuf"
	"ncache/internal/proto/eth"
	"ncache/internal/proto/ipv4"
	"ncache/internal/sim"
	"ncache/internal/simnet"
)

// twoHostsFaults is twoHosts with a fault injector on the switch fabric.
// The injector starts disarmed; tests arm it around the lossy phase.
func twoHostsFaults(t *testing.T, seed uint64, spec string) (*sim.Engine, *fault.Injector, *host, *host) {
	t.Helper()
	eng := sim.NewEngine()
	nw := simnet.NewNetwork(eng, 5*sim.Microsecond)
	in, err := fault.NewFromSpec(eng, seed, spec)
	if err != nil {
		t.Fatalf("fault spec %q: %v", spec, err)
	}
	nw.SetFaults(in)
	mk := func(name string, addr eth.Addr) *host {
		n := simnet.NewNode(eng, name, simnet.DefaultProfile())
		if _, err := nw.Attach(n, addr, simnet.Gbps); err != nil {
			t.Fatalf("attach %s: %v", name, err)
		}
		ip := ipv4.NewStack(n)
		return &host{node: n, ip: ip, tcp: NewTransport(ip), addr: addr}
	}
	return eng, in, mk("a", 1), mk("b", 2)
}

// lossSeed reads the CI fault-seed matrix override (NCACHE_FAULT_SEED), so
// the loss suite replays under the same seed sweep as the cluster-level
// fault tests.
func lossSeed(t *testing.T, dflt uint64) uint64 {
	t.Helper()
	s := os.Getenv("NCACHE_FAULT_SEED")
	if s == "" {
		return dflt
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		t.Fatalf("NCACHE_FAULT_SEED=%q: %v", s, err)
	}
	return v
}

// lossPayload is the stream every loss test pushes through the connection:
// big enough that drops regularly hole the in-flight window (hundreds of
// segments), seeded so corruption would be detected byte-for-byte.
func lossPayload() []byte {
	want := make([]byte, 512*1024)
	sim.NewRNG(42).Fill(want)
	return want
}

// runLossTransfer drives one connection a→b under the armed injector,
// streaming lossPayload in application-sized chunks, and returns the bytes
// the server collected.
func runLossTransfer(t *testing.T, eng *sim.Engine, a, b *host, want []byte) *bytes.Buffer {
	t.Helper()
	got := collectServer(t, b, 80)
	a.tcp.Connect(a.addr, b.addr, 80, func(c *Conn, err error) {
		if err != nil {
			t.Errorf("connect under loss: %v", err)
			return
		}
		for off := 0; off < len(want); off += 64 * 1024 {
			end := off + 64*1024
			if end > len(want) {
				end = len(want)
			}
			if err := c.Send(want[off:end]); err != nil {
				t.Errorf("Send: %v", err)
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return got
}

// checkHostsDrained asserts that once the engine idles, neither host holds
// pooled buffers: the retransmission queues released every clone as acks
// advanced, and the receive path reposted every RX-ring credit.
func checkHostsDrained(t *testing.T, hosts ...*host) {
	t.Helper()
	for _, h := range hosts {
		for _, p := range []*netbuf.Pool{h.node.RxPool, h.node.TxPool} {
			if got := p.Outstanding(); got != 0 {
				t.Errorf("pool %s leaked %d buffers (owners %v)",
					p.Name(), got, p.LeakReport())
			}
		}
		for _, nic := range h.node.NICs() {
			if got := nic.Ring().Outstanding(); got != 0 {
				t.Errorf("%s %s: RX ring %d credits outstanding",
					h.node.Name, nic.Addr, got)
			}
		}
	}
}

// TestLossRecoveryDeliversExactStream is the core loss-recovery property:
// under random drop, duplicate and reorder (delay) schedules — alone and
// combined — the receiver sees the exact byte stream the sender wrote, no
// segment escapes as a protocol error, no connection aborts, and every
// pooled buffer the recovery machinery borrowed is returned.
func TestLossRecoveryDeliversExactStream(t *testing.T) {
	cases := []struct {
		name string
		spec string
		// check asserts the schedule provoked the machinery it targets.
		check func(t *testing.T, a, b *Transport)
	}{
		{
			name: "drop",
			spec: "drop:a*:rate=0.02,drop:b*:rate=0.02",
			check: func(t *testing.T, a, b *Transport) {
				if a.Retransmits == 0 {
					t.Error("2% frame loss provoked no retransmissions")
				}
			},
		},
		{
			name: "dup",
			spec: "dup:a*:rate=0.05,dup:b*:rate=0.05",
			check: func(t *testing.T, a, b *Transport) {
				if a.DupSegments+b.DupSegments == 0 {
					t.Error("5% duplication provoked no duplicate-segment suppression")
				}
			},
		},
		{
			name: "reorder",
			spec: "delay:a*:rate=0.05:delay=300us,delay:b*:rate=0.05:delay=300us",
			check: func(t *testing.T, a, b *Transport) {
				if a.OutOfOrder+b.OutOfOrder+a.DupSegments+b.DupSegments == 0 {
					t.Error("300us delays provoked no out-of-order handling")
				}
			},
		},
		{
			name: "combined",
			spec: "drop:a*:rate=0.01,drop:b*:rate=0.01," +
				"dup:a*:rate=0.02,dup:b*:rate=0.02," +
				"delay:a*:rate=0.02:delay=300us,delay:b*:rate=0.02:delay=300us",
			check: func(t *testing.T, a, b *Transport) {
				if a.Retransmits == 0 {
					t.Error("combined schedule provoked no retransmissions")
				}
			},
		},
	}
	want := lossPayload()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng, in, a, b := twoHostsFaults(t, lossSeed(t, 7), tc.spec)
			in.Arm()
			got := runLossTransfer(t, eng, a, b, want)
			if !bytes.Equal(got.Bytes(), want) {
				t.Fatalf("stream corrupted under %s: got %d bytes, want %d",
					tc.name, got.Len(), len(want))
			}
			if a.tcp.ProtocolErrors != 0 || b.tcp.ProtocolErrors != 0 {
				t.Errorf("protocol errors escaped: %d/%d",
					a.tcp.ProtocolErrors, b.tcp.ProtocolErrors)
			}
			if a.tcp.AbortedConns+b.tcp.AbortedConns != 0 {
				t.Error("loss recovery aborted the connection")
			}
			tc.check(t, a.tcp, b.tcp)
			checkHostsDrained(t, a, b)
			t.Logf("retrans=%d rtos=%d fastrtx=%d dup=%d ooo=%d",
				a.tcp.Retransmits, a.tcp.RTOEvents, a.tcp.FastRetransmits,
				b.tcp.DupSegments, b.tcp.OutOfOrder)
		})
	}
}

// TestLossRecoveryAcrossSeeds sweeps fault seeds: whatever drop/dup/reorder
// pattern a seed draws, the stream must arrive byte-identical. At least one
// seed in the sweep must actually exercise retransmission, or the sweep
// proves nothing.
func TestLossRecoveryAcrossSeeds(t *testing.T) {
	const spec = "drop:a*:rate=0.015,drop:b*:rate=0.015," +
		"dup:b*:rate=0.02,delay:a*:rate=0.02:delay=300us"
	want := lossPayload()
	var retrans uint64
	for seed := uint64(1); seed <= 8; seed++ {
		eng, in, a, b := twoHostsFaults(t, seed, spec)
		in.Arm()
		got := runLossTransfer(t, eng, a, b, want)
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("seed %d: stream corrupted: got %d bytes, want %d",
				seed, got.Len(), len(want))
		}
		if a.tcp.ProtocolErrors+b.tcp.ProtocolErrors != 0 {
			t.Errorf("seed %d: protocol errors escaped", seed)
		}
		checkHostsDrained(t, a, b)
		retrans += a.tcp.Retransmits
	}
	if retrans == 0 {
		t.Error("no seed in the sweep provoked a retransmission")
	}
}

// lossCounters is the full observable outcome of a lossy run, for replay
// comparison.
type lossCounters struct {
	Retrans, RTOs, FastRtx   uint64
	DupSegs, OOO, OOODrops   uint64
	Strays, ProtoErrs, Abort uint64
	Bytes                    int
	End                      sim.Time
}

func snapshotLoss(a, b *Transport, got *bytes.Buffer, eng *sim.Engine) lossCounters {
	return lossCounters{
		Retrans:   a.Retransmits,
		RTOs:      a.RTOEvents,
		FastRtx:   a.FastRetransmits,
		DupSegs:   a.DupSegments + b.DupSegments,
		OOO:       a.OutOfOrder + b.OutOfOrder,
		OOODrops:  a.OutOfOrderDrops + b.OutOfOrderDrops,
		Strays:    a.StraySegments + b.StraySegments,
		ProtoErrs: a.ProtocolErrors + b.ProtocolErrors,
		Abort:     a.AbortedConns + b.AbortedConns,
		Bytes:     got.Len(),
		End:       eng.Now(),
	}
}

// TestLossRecoverySeedReplay: the same fault seed must reproduce the same
// recovery bit-for-bit — every counter and the virtual completion time. RTO
// timers, backoff and fast-retransmit decisions all feed the event order, so
// any hidden nondeterminism (map iteration, wall-clock leakage) diverges
// here.
func TestLossRecoverySeedReplay(t *testing.T) {
	const spec = "drop:a*:rate=0.02,drop:b*:rate=0.02,delay:b*:rate=0.02:delay=300us"
	want := lossPayload()
	run := func() lossCounters {
		eng, in, a, b := twoHostsFaults(t, lossSeed(t, 99), spec)
		in.Arm()
		got := runLossTransfer(t, eng, a, b, want)
		return snapshotLoss(a.tcp, b.tcp, got, eng)
	}
	first, second := run(), run()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("replay diverged:\nfirst:  %+v\nsecond: %+v", first, second)
	}
	if first.Retrans == 0 {
		t.Error("replay pair exercised no retransmissions")
	}
}

// TestRTOExponentialBackoff drops the first frames of the handshake
// deterministically (rate=1, count-limited): the SYN must be re-sent on the
// RTO timer with exponential backoff, so the connection establishes only
// after BaseRTO + 2*BaseRTO of timer waits.
func TestRTOExponentialBackoff(t *testing.T) {
	eng, in, a, b := twoHostsFaults(t, 1, "drop:b*:rate=1:count=2")
	in.Arm()
	if err := b.tcp.Listen(80, func(c *Conn) {}); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	var estab sim.Time
	a.tcp.Connect(a.addr, b.addr, 80, func(c *Conn, err error) {
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		estab = eng.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if estab == 0 {
		t.Fatal("handshake never completed")
	}
	if a.tcp.RTOEvents < 2 {
		t.Fatalf("expected >=2 RTO firings for two dropped SYNs, got %d", a.tcp.RTOEvents)
	}
	if wantMin := sim.Time(BaseRTO + 2*BaseRTO); estab < wantMin {
		t.Fatalf("backoff too fast: established at %v, want >= %v", estab, wantMin)
	}
	checkHostsDrained(t, a, b)
}
