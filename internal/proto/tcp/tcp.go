// Package tcp implements the stream transport the simulated iSCSI and HTTP
// traffic runs on. It is a deliberately reduced TCP: three-way handshake,
// MSS segmentation, cumulative acknowledgments with delayed acks, a fixed
// send window, FIN teardown — and loss recovery: every in-flight segment is
// retained on a per-connection retransmission queue (refcounted netbuf
// clones owned by "tcp.retransmit"), an exponential-backoff RTO timer
// drives go-back-N resend, triple duplicate ACKs trigger fast retransmit,
// and the receiver tolerates out-of-order segments (buffer-or-drop with
// cumulative ACK) and suppresses duplicates. Genuinely malformed segments
// (runts, bad checksums) still count as protocol errors; loss-induced
// anomalies are counted separately. Per-packet CPU costs of data segments,
// acks *and retransmissions* are charged through the IP layer, which is
// what makes TCP-borne workloads carry the higher per-packet overhead the
// paper notes for HTTP versus NFS-over-UDP.
//
// Like the udp package, it exposes the extended zero-copy interface the
// NCache kernel modification adds: SendChain transmits payload already in
// network buffers without copying.
package tcp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ncache/internal/netbuf"
	"ncache/internal/proto"
	"ncache/internal/proto/eth"
	"ncache/internal/proto/ipv4"
	"ncache/internal/sim"
	"ncache/internal/simnet"
	"ncache/internal/trace"
)

// HeaderLen is the encoded size of the (option-less) segment header.
const HeaderLen = 16

// DefaultWindow is the fixed flow-control window: bytes in flight per
// connection.
const DefaultWindow = 256 * 1024

// Loss-recovery tuning. BaseRTO matches the RPC-layer retransmit timer
// scale used by the fault calibration in passthru; backoff doubles per
// consecutive timeout up to MaxRTO. After MaxRetries consecutive timeouts
// on the same data the connection aborts (ErrTimeout), which bounds
// simulated time when the peer is gone.
const (
	BaseRTO    = 20 * sim.Millisecond
	MaxRTO     = 640 * sim.Millisecond
	MaxRetries = 12
	// dupAckThreshold duplicate cumulative acks trigger fast retransmit.
	dupAckThreshold = 3
	// maxOOO bounds the out-of-order reassembly queue; it covers a full
	// DefaultWindow of MSS segments so a single early loss does not shed
	// the rest of the window.
	maxOOO = 256
)

// Segment flags.
const (
	flagSYN = 1 << 0
	flagACK = 1 << 1
	flagFIN = 1 << 2
	flagPSH = 1 << 3
	flagRST = 1 << 4
)

// Errors surfaced by the transport.
var (
	ErrPortInUse    = errors.New("tcp: port in use")
	ErrConnClosed   = errors.New("tcp: connection closed")
	ErrConnReset    = errors.New("tcp: connection reset")
	ErrNoSuchRemote = errors.New("tcp: connection refused")
	ErrTimeout      = errors.New("tcp: retransmission timeout")
)

type state int

const (
	stateSynSent state = iota + 1
	stateSynRcvd
	stateEstablished
	stateFinWait
	stateClosed
)

// AcceptFunc receives newly established passive connections.
type AcceptFunc func(c *Conn)

// Transport is a node's TCP layer.
type Transport struct {
	ip        *ipv4.Stack
	node      *simnet.Node
	listeners map[uint16]AcceptFunc
	conns     map[connKey]*Conn
	nextPort  uint16

	// ProtocolErrors counts genuinely malformed segments: runts and
	// checksum failures. Loss-induced anomalies (gaps, duplicates, strays
	// for torn-down connections) are recoverable and counted separately.
	ProtocolErrors uint64
	// StraySegments counts non-SYN segments for unknown connections
	// (usually retransmissions racing a teardown); each is answered with
	// RST so the peer stops retransmitting.
	StraySegments uint64
	// DupSegments counts received segments wholly or partially below
	// rcvNxt (duplicate deliveries suppressed by the cumulative ack).
	DupSegments uint64
	// OutOfOrder counts received segments beyond rcvNxt that were buffered
	// for reassembly; OutOfOrderDrops counts those shed because the
	// reassembly queue was full.
	OutOfOrder      uint64
	OutOfOrderDrops uint64
	// Retransmits counts segments re-sent (by RTO or fast retransmit).
	// RTOEvents and FastRetransmits count the triggering events.
	Retransmits     uint64
	RTOEvents       uint64
	FastRetransmits uint64
	// AbortedConns counts connections torn down by the retransmission
	// limit or by a peer reset outside an orderly close.
	AbortedConns uint64
}

type connKey struct {
	localAddr, remoteAddr eth.Addr
	localPort, remotePort uint16
}

// NewTransport creates the TCP layer and registers it with the IP stack.
func NewTransport(ip *ipv4.Stack) *Transport {
	t := &Transport{
		ip:        ip,
		node:      ip.Node(),
		listeners: make(map[uint16]AcceptFunc),
		conns:     make(map[connKey]*Conn),
		nextPort:  49152,
	}
	ip.Register(ipv4.ProtoTCP, t.receive)
	return t
}

// Listen installs an accept callback for a local port.
func (t *Transport) Listen(port uint16, accept AcceptFunc) error {
	if _, busy := t.listeners[port]; busy {
		return fmt.Errorf("%w: %d", ErrPortInUse, port)
	}
	t.listeners[port] = accept
	return nil
}

// Connect opens a connection from the local address to remote:port and
// invokes done when the handshake completes (or fails).
func (t *Transport) Connect(local, remote eth.Addr, remotePort uint16, done func(*Conn, error)) {
	key := connKey{localAddr: local, remoteAddr: remote, localPort: t.nextPort, remotePort: remotePort}
	t.nextPort++
	c := newConn(t, key, stateSynSent)
	c.onEstab = done
	t.conns[key] = c
	c.retain(c.sndNxt, 1, flagSYN, nil)
	c.sendSegment(flagSYN, nil)
	c.armRTO()
}

// DialConn is Connect with the transport-neutral proto.Dialer shape.
func (t *Transport) DialConn(local, remote eth.Addr, port uint16, done func(proto.Conn, error)) {
	t.Connect(local, remote, port, func(c *Conn, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		done(c, nil)
	})
}

// ListenConn is Listen with the transport-neutral proto.Listener shape.
func (t *Transport) ListenConn(port uint16, accept func(proto.Conn)) error {
	return t.Listen(port, func(c *Conn) { accept(c) })
}

var _ proto.Listener = (*Transport)(nil)

// mss returns the maximum segment payload for the node's first NIC.
func (t *Transport) mss() int {
	nics := t.node.NICs()
	if len(nics) == 0 {
		return 1460
	}
	return nics[0].MTU - ipv4.HeaderLen - HeaderLen
}

// rtxSeg is one retained in-flight segment. payload is a refcounted clone
// of the transmitted chain (owner "tcp.retransmit"); seqLen covers payload
// bytes plus one for SYN/FIN.
type rtxSeg struct {
	seq     uint32
	seqLen  uint32
	flags   uint8
	payload *netbuf.Chain
}

// oooSeg is one out-of-order received segment buffered for reassembly.
type oooSeg struct {
	seq     uint32
	flags   uint8
	payload *netbuf.Chain
}

// Conn is one TCP connection endpoint.
type Conn struct {
	t     *Transport
	key   connKey
	state state
	mss   int

	sndNxt uint32 // next sequence number to send
	sndUna uint32 // oldest unacknowledged sequence number
	rcvNxt uint32 // next sequence number expected
	window uint32 // send window (bytes in flight allowed)

	// sendQ holds payload waiting for window space, as one logical chain.
	sendQ *netbuf.Chain
	// pushAt marks stream offsets (absolute seq) that end a SendChain, so
	// the final segment of each application message carries PSH and
	// triggers an immediate ack.
	pushAt []uint32

	// rtxQ retains every unacknowledged segment in send order for
	// go-back-N resend. rtoFn is the pre-bound timer callback (one
	// closure per connection, so arming allocates nothing).
	rtxQ     []rtxSeg
	rtoFn    func()
	rtoTimer sim.EventID
	rtoArmed bool
	rtoTries int
	dupAcks  int

	// oooQ buffers out-of-order received segments, sorted by seq.
	oooQ []oooSeg

	receiver func(*netbuf.Chain)
	onEstab  func(*Conn, error)
	onClose  func()
	acceptFn AcceptFunc
	delack   int
	finSent  bool
	finRcvd  bool
}

func newConn(t *Transport, key connKey, st state) *Conn {
	c := &Conn{
		t:      t,
		key:    key,
		state:  st,
		window: DefaultWindow,
		mss:    t.mss(),
	}
	c.rtoFn = c.onRTO
	return c
}

// Node returns the node owning the connection's local endpoint.
func (c *Conn) Node() *simnet.Node { return c.t.node }

// LocalAddr returns the connection's local address.
func (c *Conn) LocalAddr() eth.Addr { return c.key.localAddr }

// RemoteAddr returns the connection's remote address.
func (c *Conn) RemoteAddr() eth.Addr { return c.key.remoteAddr }

// RemotePort returns the connection's remote port.
func (c *Conn) RemotePort() uint16 { return c.key.remotePort }

// LocalPort returns the connection's local port.
func (c *Conn) LocalPort() uint16 { return c.key.localPort }

// MSS returns the maximum segment payload.
func (c *Conn) MSS() int { return c.mss }

// SetReceiver installs the in-order stream consumer. Data chains passed to
// the receiver are the original wire buffers (adopted into this node's
// pools by the registered-receive path). Ownership contract: the receiver
// must Release each chain, or pass it on, exactly once.
func (c *Conn) SetReceiver(f func(*netbuf.Chain)) { c.receiver = f }

// SetOnClose installs a callback invoked when the peer closes.
func (c *Conn) SetOnClose(f func()) { c.onClose = f }

// Established reports whether the connection is open for data.
func (c *Conn) Established() bool { return c.state == stateEstablished }

// Send queues plain bytes on the stream (they are copied into pooled
// transmit buffers — the legacy path; the copy cost is the caller's to
// charge).
func (c *Conn) Send(p []byte) error {
	chain, err := c.t.node.TxPool.GetChain(p)
	if err != nil {
		return err
	}
	return c.SendChain(chain)
}

// SendChain queues payload already held in network buffers — the zero-copy
// socket extension. The connection takes ownership of the chain.
func (c *Conn) SendChain(payload *netbuf.Chain) error {
	if c.state != stateEstablished && c.state != stateSynRcvd && c.state != stateSynSent {
		payload.Release()
		return ErrConnClosed
	}
	if c.sendQ == nil {
		c.sendQ = netbuf.NewChain()
	}
	c.sendQ.AppendChain(payload)
	// The last byte of this message ends a PSH segment so the peer acks
	// immediately (message boundaries drive request/response traffic).
	c.pushAt = append(c.pushAt, c.sndNxt+uint32(c.sendQ.Len()))
	c.pump()
	return nil
}

// Close sends FIN after all queued data drains.
func (c *Conn) Close() {
	if c.state == stateClosed {
		return
	}
	c.finSent = true
	c.pump()
}

// retain records a transmitted segment on the retransmission queue. For
// data segments the clone shares the payload buffers (refcounted, owner
// "tcp.retransmit"); control segments retain only their sequence space.
func (c *Conn) retain(seq, seqLen uint32, flags uint8, payload *netbuf.Chain) {
	var keep *netbuf.Chain
	if payload != nil {
		keep = payload.Clone()
		keep.SetOwner("tcp.retransmit")
	}
	c.rtxQ = append(c.rtxQ, rtxSeg{seq: seq, seqLen: seqLen, flags: flags, payload: keep})
}

// pump transmits queued data within the window, then FIN if closing.
func (c *Conn) pump() {
	if c.state != stateEstablished {
		return
	}
	for c.sendQ != nil && c.sendQ.Len() > 0 {
		inflight := c.sndNxt - c.sndUna
		if inflight >= c.window {
			return
		}
		room := int(c.window - inflight)
		n := c.sendQ.Len()
		if n > c.mss {
			n = c.mss
		}
		if n > room {
			n = room
		}
		seg, err := c.sendQ.PullChain(n)
		if err != nil {
			return
		}
		flags := uint8(flagACK)
		endSeq := c.sndNxt + uint32(n)
		if len(c.pushAt) > 0 && seqLEQ(c.pushAt[0], endSeq) {
			flags |= flagPSH
			c.pushAt = c.pushAt[1:]
		}
		c.retain(c.sndNxt, uint32(n), flags, seg)
		c.sendSegmentSeq(flags, c.sndNxt, seg)
		c.sndNxt = endSeq
		c.armRTO()
	}
	if c.finSent && c.state == stateEstablished && (c.sendQ == nil || c.sendQ.Len() == 0) {
		c.retain(c.sndNxt, 1, flagFIN|flagACK, nil)
		c.sendSegmentSeq(flagFIN|flagACK, c.sndNxt, nil)
		c.sndNxt++
		c.state = stateFinWait
		c.armRTO()
	}
}

// armRTO starts the retransmission timer if it is not already running and
// unacknowledged data exists.
func (c *Conn) armRTO() {
	if c.rtoArmed || len(c.rtxQ) == 0 {
		return
	}
	c.rtoTimer = c.t.node.Eng.Schedule(c.rto(), c.rtoFn)
	c.rtoArmed = true
}

// restartRTO re-bases the timer (called when the ack point advances).
func (c *Conn) restartRTO() {
	if c.rtoArmed {
		c.t.node.Eng.Cancel(c.rtoTimer)
		c.rtoArmed = false
	}
	c.armRTO()
}

// cancelRTO stops the timer.
func (c *Conn) cancelRTO() {
	if c.rtoArmed {
		c.t.node.Eng.Cancel(c.rtoTimer)
		c.rtoArmed = false
	}
}

// rto returns the current backoff-scaled retransmission timeout.
func (c *Conn) rto() sim.Duration {
	d := BaseRTO
	for i := 0; i < c.rtoTries && d < MaxRTO; i++ {
		d *= 2
	}
	if d > MaxRTO {
		d = MaxRTO
	}
	return d
}

// onRTO fires when the oldest unacknowledged segment times out: go-back-N
// resend of the whole retransmission queue with doubled backoff. The timer
// event inherits the request context it was armed under, so the added
// latency is fault-attributed to the network layer on the active span
// (tcp.rto).
func (c *Conn) onRTO() {
	c.rtoArmed = false
	if c.state == stateClosed || len(c.rtxQ) == 0 {
		return
	}
	c.rtoTries++
	if c.rtoTries > MaxRetries {
		c.abort(ErrTimeout, true)
		return
	}
	c.t.RTOEvents++
	trace.Fault(c.t.node.Eng, trace.LNet, c.rto())
	for i := range c.rtxQ {
		c.resend(&c.rtxQ[i])
	}
	c.armRTO()
}

// fastRetransmit resends the oldest unacknowledged segment immediately
// (triple duplicate acks signal an isolated loss; the rest of the window
// is likely buffered at the receiver). Annotated as tcp.fastrtx on the
// active span: a fault event with no timer latency of its own.
func (c *Conn) fastRetransmit() {
	if len(c.rtxQ) == 0 {
		return
	}
	c.t.FastRetransmits++
	trace.Fault(c.t.node.Eng, trace.LNet, 0)
	c.resend(&c.rtxQ[0])
}

// resend re-transmits one retained segment. The retransmission travels the
// normal IP path, so per-packet and checksum CPU are charged exactly like
// a first transmission.
func (c *Conn) resend(s *rtxSeg) {
	c.t.Retransmits++
	var pl *netbuf.Chain
	if s.payload != nil {
		pl = s.payload.Clone()
	}
	c.sendSegmentSeq(s.flags, s.seq, pl)
}

// ackRtx drops retained segments fully covered by the cumulative ack and
// resets the backoff state. Returns true if the ack point advanced.
func (c *Conn) ackRtx(ack uint32) {
	i := 0
	for ; i < len(c.rtxQ); i++ {
		s := &c.rtxQ[i]
		if !seqLEQ(s.seq+s.seqLen, ack) {
			break
		}
		if s.payload != nil {
			s.payload.Release()
		}
	}
	if i > 0 {
		m := copy(c.rtxQ, c.rtxQ[i:])
		for j := m; j < len(c.rtxQ); j++ {
			c.rtxQ[j] = rtxSeg{}
		}
		c.rtxQ = c.rtxQ[:m]
		c.rtoTries = 0
		c.dupAcks = 0
		if len(c.rtxQ) == 0 {
			c.cancelRTO()
		} else {
			c.restartRTO()
		}
	}
}

// sendSegment emits a control segment at the current send sequence.
func (c *Conn) sendSegment(flags uint8, payload *netbuf.Chain) {
	c.sendSegmentSeq(flags, c.sndNxt, payload)
	if flags&flagSYN != 0 {
		c.sndNxt++
	}
}

// sendSegmentSeq builds, checksums and transmits one segment.
func (c *Conn) sendSegmentSeq(flags uint8, seq uint32, payload *netbuf.Chain) {
	c.t.sendSeg(c.key, seq, c.rcvNxt, flags, payload)
}

// sendAck emits an immediate pure ack and resets the delayed-ack counter.
func (c *Conn) sendAck() {
	c.delack = 0
	c.sendSegmentSeq(flagACK, c.sndNxt, nil)
}

// sendSeg builds, checksums and transmits one segment for key (which need
// not belong to a live connection — RSTs answer strays after teardown).
func (t *Transport) sendSeg(key connKey, seq, ackNo uint32, flags uint8, payload *netbuf.Chain) {
	hb, err := t.node.TxPool.Get()
	if err != nil {
		if payload != nil {
			payload.Release()
		}
		return
	}
	hdr, err := hb.Push(HeaderLen)
	if err != nil {
		hb.Release()
		if payload != nil {
			payload.Release()
		}
		return
	}
	binary.BigEndian.PutUint16(hdr[0:2], key.localPort)
	binary.BigEndian.PutUint16(hdr[2:4], key.remotePort)
	binary.BigEndian.PutUint32(hdr[4:8], seq)
	binary.BigEndian.PutUint32(hdr[8:12], ackNo)
	hdr[12] = flags
	hdr[13] = 0
	hdr[14], hdr[15] = 0, 0

	plen := 0
	sum := pseudoHeaderSum(key.localAddr, key.remoteAddr)
	sum.AddBytes(hdr)
	if payload != nil {
		plen = payload.Len()
		sum = netbuf.Combine(sum, netbuf.PartialOfChain(payload))
	}
	ck := sum.Checksum()
	binary.BigEndian.PutUint16(hdr[14:16], ck)
	if !t.offloaded(key.localAddr) && plen > 0 {
		t.node.Copies.ChecksumBytes += uint64(plen)
		t.node.Charge(t.node.Cost.ChecksumCost(plen), nil)
	}

	seg := netbuf.ChainOf(hb)
	if payload != nil {
		seg.AppendChain(payload)
	}
	if err := t.ip.Send(key.localAddr, key.remoteAddr, ipv4.ProtoTCP, seg); err != nil {
		seg.Release()
	}
}

// offloaded reports checksum-offload capability of the NIC at addr.
func (t *Transport) offloaded(local eth.Addr) bool {
	for _, nic := range t.node.NICs() {
		if nic.Addr == local {
			return nic.ChecksumOffload
		}
	}
	return false
}

// receive demuxes one segment.
func (t *Transport) receive(ih ipv4.Header, payload *netbuf.Chain) {
	if payload.Len() < HeaderLen {
		t.ProtocolErrors++
		payload.Release()
		return
	}
	raw, err := payload.PullHeader(HeaderLen)
	if err != nil {
		payload.Release()
		return
	}
	srcPort := binary.BigEndian.Uint16(raw[0:2])
	dstPort := binary.BigEndian.Uint16(raw[2:4])
	seq := binary.BigEndian.Uint32(raw[4:8])
	ack := binary.BigEndian.Uint32(raw[8:12])
	flags := raw[12]

	// Verify the transport checksum (free with offload; the cost model
	// for software checksumming is charged on rx below).
	sum := pseudoHeaderSum(ih.Src, ih.Dst)
	sum.AddBytes(raw)
	sum = netbuf.Combine(sum, netbuf.PartialOfChain(payload))
	if sum.Fold() != 0xffff {
		t.ProtocolErrors++
		payload.Release()
		return
	}
	if !t.offloaded(ih.Dst) && payload.Len() > 0 {
		t.node.Copies.ChecksumBytes += uint64(payload.Len())
		t.node.Charge(t.node.Cost.ChecksumCost(payload.Len()), nil)
	}

	key := connKey{localAddr: ih.Dst, remoteAddr: ih.Src, localPort: dstPort, remotePort: srcPort}
	c, ok := t.conns[key]
	if !ok {
		if flags&flagSYN != 0 && flags&flagACK == 0 {
			t.acceptSyn(key, seq)
			payload.Release()
			return
		}
		// A stray non-SYN segment: usually a retransmission racing our
		// teardown. Answer with RST (unless it *is* an RST) so the peer
		// stops retrying instead of backing off to its abort limit.
		t.StraySegments++
		if flags&flagRST == 0 {
			end := seq + uint32(payload.Len())
			if flags&flagFIN != 0 {
				end++
			}
			t.sendSeg(key, ack, end, flagRST|flagACK, nil)
		}
		payload.Release()
		return
	}
	c.handle(flags, seq, ack, payload)
}

// acceptSyn creates a passive connection if a listener exists; connection
// attempts to closed ports are refused with RST.
func (t *Transport) acceptSyn(key connKey, seq uint32) {
	accept, ok := t.listeners[key.localPort]
	if !ok {
		t.sendSeg(key, 0, seq+1, flagRST|flagACK, nil)
		return
	}
	c := newConn(t, key, stateSynRcvd)
	c.rcvNxt = seq + 1
	t.conns[key] = c
	c.acceptFn = accept
	c.retain(c.sndNxt, 1, flagSYN|flagACK, nil)
	c.sendSegment(flagSYN|flagACK, nil)
	c.armRTO()
}

// handle advances the connection state machine for one segment.
func (c *Conn) handle(flags uint8, seq, ack uint32, payload *netbuf.Chain) {
	t := c.t
	if flags&flagRST != 0 {
		payload.Release()
		if c.finSent && c.finRcvd {
			// Reset racing the tail of an orderly close (our final ack
			// was lost and the peer already tore down): not an abort.
			c.teardown()
			return
		}
		if c.state == stateSynSent {
			c.abort(ErrNoSuchRemote, false)
		} else {
			c.abort(ErrConnReset, false)
		}
		return
	}
	switch c.state {
	case stateSynSent:
		if flags&(flagSYN|flagACK) == flagSYN|flagACK {
			c.rcvNxt = seq + 1
			c.sndUna = ack
			c.ackRtx(ack)
			c.state = stateEstablished
			c.sendSegmentSeq(flagACK, c.sndNxt, nil)
			if c.onEstab != nil {
				cb := c.onEstab
				c.onEstab = nil
				cb(c, nil)
			}
			c.pump()
		}
		payload.Release()
		return
	case stateSynRcvd:
		if flags&flagACK != 0 {
			c.sndUna = ack
			c.ackRtx(ack)
			c.state = stateEstablished
			if c.acceptFn != nil {
				fn := c.acceptFn
				c.acceptFn = nil
				fn(c)
			}
		}
		// Fall through to process any data on the ACK.
	case stateClosed:
		payload.Release()
		return
	}

	if flags&flagSYN != 0 {
		// Duplicate SYN or SYN|ACK after we are established: our previous
		// ack was lost. Re-ack so the peer's handshake completes too.
		t.DupSegments++
		payload.Release()
		c.sendAck()
		return
	}

	if flags&flagACK != 0 {
		if seqLT(c.sndUna, ack) && seqLEQ(ack, c.sndNxt) {
			c.sndUna = ack
			c.ackRtx(ack)
			c.pump()
		} else if ack == c.sndUna && payload.Len() == 0 && flags&flagFIN == 0 &&
			len(c.rtxQ) > 0 && (c.state == stateEstablished || c.state == stateFinWait) {
			// Pure duplicate ack: the receiver is seeing a gap.
			c.dupAcks++
			if c.dupAcks == dupAckThreshold {
				c.dupAcks = 0
				c.fastRetransmit()
			}
		}
	}

	n := payload.Len()
	if n > 0 {
		c.recvData(flags, seq, payload)
	} else {
		payload.Release()
	}

	if flags&flagFIN != 0 {
		finSeq := seq + uint32(n)
		switch {
		case c.finRcvd || seqLT(finSeq, c.rcvNxt):
			// Duplicate FIN: re-ack so the closer stops retransmitting.
			t.DupSegments++
			c.sendAck()
		case finSeq == c.rcvNxt:
			c.rcvNxt++
			c.finRcvd = true
			c.sendAck()
			if c.state == stateEstablished && !c.finSent {
				// Passive close: acknowledge and close our side too.
				c.Close()
			}
		default:
			// FIN beyond a receive gap: dup-ack; the peer's RTO re-sends
			// it after the gap heals.
			c.sendAck()
		}
	}
	if c.finRcvd && (c.state == stateFinWait || c.finSent) && c.sndUna == c.sndNxt {
		c.teardown()
	}
}

// recvData accepts one data segment: in-order delivery, duplicate
// suppression, or bounded out-of-order buffering with an immediate
// duplicate ack to trigger the sender's fast retransmit.
func (c *Conn) recvData(flags uint8, seq uint32, payload *netbuf.Chain) {
	t := c.t
	if seq == c.rcvNxt && len(c.oooQ) == 0 {
		// Fast path (the only path on a lossless fabric): deliver and run
		// the delayed-ack clock exactly as before.
		c.rcvNxt += uint32(payload.Len())
		c.deliver(payload)
		c.delack++
		if c.delack >= 2 || flags&flagPSH != 0 {
			c.delack = 0
			c.sendSegmentSeq(flagACK, c.sndNxt, nil)
		}
		return
	}
	end := seq + uint32(payload.Len())
	if seqLEQ(end, c.rcvNxt) {
		// Wholly duplicate: suppress, but re-ack so the sender advances.
		t.DupSegments++
		payload.Release()
		c.sendAck()
		return
	}
	if seqLT(c.rcvNxt, seq) {
		// Beyond a gap: buffer (or shed) and send a duplicate ack.
		c.bufferOOO(seq, flags, payload)
		c.sendAck()
		return
	}
	// In-order head, possibly with a duplicate prefix to trim; afterwards
	// drain whatever buffered segments the fill made contiguous.
	if seqLT(seq, c.rcvNxt) {
		t.DupSegments++
		trim, err := payload.PullChain(int(c.rcvNxt - seq))
		if err != nil {
			payload.Release()
			c.sendAck()
			return
		}
		trim.Release()
	}
	c.rcvNxt = end
	c.deliver(payload)
	c.drainOOO()
	c.sendAck()
}

// bufferOOO inserts one out-of-order segment into the sorted reassembly
// queue, suppressing exact duplicates and shedding beyond maxOOO.
func (c *Conn) bufferOOO(seq uint32, flags uint8, payload *netbuf.Chain) {
	t := c.t
	i := 0
	for ; i < len(c.oooQ); i++ {
		if seq == c.oooQ[i].seq {
			t.DupSegments++
			payload.Release()
			return
		}
		if seqLT(seq, c.oooQ[i].seq) {
			break
		}
	}
	if len(c.oooQ) >= maxOOO {
		t.OutOfOrderDrops++
		payload.Release()
		return
	}
	t.OutOfOrder++
	c.oooQ = append(c.oooQ, oooSeg{})
	copy(c.oooQ[i+1:], c.oooQ[i:])
	c.oooQ[i] = oooSeg{seq: seq, flags: flags, payload: payload}
}

// drainOOO delivers buffered segments made contiguous by a gap fill.
func (c *Conn) drainOOO() {
	t := c.t
	for len(c.oooQ) > 0 {
		e := c.oooQ[0]
		if seqLT(c.rcvNxt, e.seq) {
			return
		}
		copy(c.oooQ, c.oooQ[1:])
		c.oooQ[len(c.oooQ)-1] = oooSeg{}
		c.oooQ = c.oooQ[:len(c.oooQ)-1]
		end := e.seq + uint32(e.payload.Len())
		if seqLEQ(end, c.rcvNxt) {
			t.DupSegments++
			e.payload.Release()
			continue
		}
		if seqLT(e.seq, c.rcvNxt) {
			trim, err := e.payload.PullChain(int(c.rcvNxt - e.seq))
			if err != nil {
				e.payload.Release()
				continue
			}
			trim.Release()
		}
		c.rcvNxt = end
		c.deliver(e.payload)
	}
}

// deliver hands one in-order chain to the application.
func (c *Conn) deliver(payload *netbuf.Chain) {
	if c.receiver != nil {
		c.receiver(payload)
	} else {
		payload.Release()
	}
}

// abort tears the connection down outside an orderly close, optionally
// notifying the peer with RST.
func (c *Conn) abort(err error, notifyPeer bool) {
	if c.state == stateClosed {
		return
	}
	c.t.AbortedConns++
	if notifyPeer {
		c.sendSegmentSeq(flagRST|flagACK, c.sndNxt, nil)
	}
	if c.state == stateSynSent && c.onEstab != nil {
		cb := c.onEstab
		c.onEstab = nil
		cb(nil, err)
	}
	c.teardown()
}

// teardown finalizes the connection and releases every retained buffer:
// the unsent queue, the retransmission queue, and the reassembly queue.
func (c *Conn) teardown() {
	if c.state == stateClosed {
		return
	}
	c.state = stateClosed
	c.cancelRTO()
	delete(c.t.conns, c.key)
	if c.sendQ != nil {
		c.sendQ.Release()
		c.sendQ = nil
	}
	for i := range c.rtxQ {
		if c.rtxQ[i].payload != nil {
			c.rtxQ[i].payload.Release()
		}
		c.rtxQ[i] = rtxSeg{}
	}
	c.rtxQ = c.rtxQ[:0]
	for i := range c.oooQ {
		c.oooQ[i].payload.Release()
		c.oooQ[i] = oooSeg{}
	}
	c.oooQ = c.oooQ[:0]
	if c.onClose != nil {
		c.onClose()
	}
}

// seqLEQ reports a <= b in sequence-number arithmetic.
func seqLEQ(a, b uint32) bool { return int32(b-a) >= 0 }

// seqLT reports a < b in sequence-number arithmetic.
func seqLT(a, b uint32) bool { return int32(b-a) > 0 }

// pseudoHeaderSum starts a checksum with the TCP pseudo-header. Length is
// omitted (both sides compute it the same way; the simulated fabric never
// truncates).
func pseudoHeaderSum(src, dst eth.Addr) netbuf.Partial {
	var s netbuf.Partial
	s.AddUint16(uint16(src >> 16))
	s.AddUint16(uint16(src))
	s.AddUint16(uint16(dst >> 16))
	s.AddUint16(uint16(dst))
	s.AddUint16(uint16(ipv4.ProtoTCP))
	return s
}

// Conn satisfies the transport-neutral connection interface.
var _ proto.Conn = (*Conn)(nil)
