// Package tcp implements the stream transport the simulated iSCSI and HTTP
// traffic runs on. It is a deliberately reduced TCP: three-way handshake,
// MSS segmentation, cumulative acknowledgments with delayed acks, a fixed
// send window, and FIN teardown — but no loss recovery, because the
// simulated fabric is lossless and ordering-preserving (anything else is
// reported as a protocol error and counted). Per-packet CPU costs of data
// segments *and* acks are charged through the IP layer, which is what makes
// TCP-borne workloads carry the higher per-packet overhead the paper notes
// for HTTP versus NFS-over-UDP.
//
// Like the udp package, it exposes the extended zero-copy interface the
// NCache kernel modification adds: SendChain transmits payload already in
// network buffers without copying.
package tcp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ncache/internal/netbuf"
	"ncache/internal/proto/eth"
	"ncache/internal/proto/ipv4"
	"ncache/internal/simnet"
)

// HeaderLen is the encoded size of the (option-less) segment header.
const HeaderLen = 16

// DefaultWindow is the fixed flow-control window: bytes in flight per
// connection.
const DefaultWindow = 256 * 1024

// Segment flags.
const (
	flagSYN = 1 << 0
	flagACK = 1 << 1
	flagFIN = 1 << 2
	flagPSH = 1 << 3
)

// Errors surfaced by the transport.
var (
	ErrPortInUse    = errors.New("tcp: port in use")
	ErrConnClosed   = errors.New("tcp: connection closed")
	ErrConnReset    = errors.New("tcp: connection reset")
	ErrNoSuchRemote = errors.New("tcp: connection refused")
)

type state int

const (
	stateSynSent state = iota + 1
	stateSynRcvd
	stateEstablished
	stateFinWait
	stateClosed
)

// AcceptFunc receives newly established passive connections.
type AcceptFunc func(c *Conn)

// Transport is a node's TCP layer.
type Transport struct {
	ip        *ipv4.Stack
	node      *simnet.Node
	listeners map[uint16]AcceptFunc
	conns     map[connKey]*Conn
	nextPort  uint16

	// ProtocolErrors counts segments that violated the lossless-fabric
	// assumptions (out-of-order data, unknown connections).
	ProtocolErrors uint64
}

type connKey struct {
	localAddr, remoteAddr eth.Addr
	localPort, remotePort uint16
}

// NewTransport creates the TCP layer and registers it with the IP stack.
func NewTransport(ip *ipv4.Stack) *Transport {
	t := &Transport{
		ip:        ip,
		node:      ip.Node(),
		listeners: make(map[uint16]AcceptFunc),
		conns:     make(map[connKey]*Conn),
		nextPort:  49152,
	}
	ip.Register(ipv4.ProtoTCP, t.receive)
	return t
}

// Listen installs an accept callback for a local port.
func (t *Transport) Listen(port uint16, accept AcceptFunc) error {
	if _, busy := t.listeners[port]; busy {
		return fmt.Errorf("%w: %d", ErrPortInUse, port)
	}
	t.listeners[port] = accept
	return nil
}

// Connect opens a connection from the local address to remote:port and
// invokes done when the handshake completes (or fails).
func (t *Transport) Connect(local, remote eth.Addr, remotePort uint16, done func(*Conn, error)) {
	key := connKey{localAddr: local, remoteAddr: remote, localPort: t.nextPort, remotePort: remotePort}
	t.nextPort++
	c := &Conn{
		t:       t,
		key:     key,
		state:   stateSynSent,
		window:  DefaultWindow,
		onEstab: done,
		mss:     t.mss(),
	}
	t.conns[key] = c
	c.sendSegment(flagSYN, nil)
}

// mss returns the maximum segment payload for the node's first NIC.
func (t *Transport) mss() int {
	nics := t.node.NICs()
	if len(nics) == 0 {
		return 1460
	}
	return nics[0].MTU - ipv4.HeaderLen - HeaderLen
}

// Conn is one TCP connection endpoint.
type Conn struct {
	t     *Transport
	key   connKey
	state state
	mss   int

	sndNxt uint32 // next sequence number to send
	sndUna uint32 // oldest unacknowledged sequence number
	rcvNxt uint32 // next sequence number expected
	window uint32 // send window (bytes in flight allowed)

	// sendQ holds payload waiting for window space, as one logical chain.
	sendQ *netbuf.Chain
	// pushAt marks stream offsets (absolute seq) that end a SendChain, so
	// the final segment of each application message carries PSH and
	// triggers an immediate ack.
	pushAt []uint32

	receiver func(*netbuf.Chain)
	onEstab  func(*Conn, error)
	onClose  func()
	acceptFn AcceptFunc
	delack   int
	finSent  bool
	finRcvd  bool
}

// Node returns the node owning the connection's local endpoint.
func (c *Conn) Node() *simnet.Node { return c.t.node }

// LocalAddr returns the connection's local address.
func (c *Conn) LocalAddr() eth.Addr { return c.key.localAddr }

// RemoteAddr returns the connection's remote address.
func (c *Conn) RemoteAddr() eth.Addr { return c.key.remoteAddr }

// RemotePort returns the connection's remote port.
func (c *Conn) RemotePort() uint16 { return c.key.remotePort }

// LocalPort returns the connection's local port.
func (c *Conn) LocalPort() uint16 { return c.key.localPort }

// SetReceiver installs the in-order stream consumer. Data chains passed to
// the receiver are the original wire buffers (adopted into this node's
// pools by the registered-receive path). Ownership contract: the receiver
// must Release each chain, or pass it on, exactly once.
func (c *Conn) SetReceiver(f func(*netbuf.Chain)) { c.receiver = f }

// SetOnClose installs a callback invoked when the peer closes.
func (c *Conn) SetOnClose(f func()) { c.onClose = f }

// Established reports whether the connection is open for data.
func (c *Conn) Established() bool { return c.state == stateEstablished }

// Send queues plain bytes on the stream (they are copied into pooled
// transmit buffers — the legacy path; the copy cost is the caller's to
// charge).
func (c *Conn) Send(p []byte) error {
	chain, err := c.t.node.TxPool.GetChain(p)
	if err != nil {
		return err
	}
	return c.SendChain(chain)
}

// SendChain queues payload already held in network buffers — the zero-copy
// socket extension. The connection takes ownership of the chain.
func (c *Conn) SendChain(payload *netbuf.Chain) error {
	if c.state != stateEstablished && c.state != stateSynRcvd && c.state != stateSynSent {
		payload.Release()
		return ErrConnClosed
	}
	if c.sendQ == nil {
		c.sendQ = netbuf.NewChain()
	}
	c.sendQ.AppendChain(payload)
	// The last byte of this message ends a PSH segment so the peer acks
	// immediately (message boundaries drive request/response traffic).
	c.pushAt = append(c.pushAt, c.sndNxt+uint32(c.sendQ.Len()))
	c.pump()
	return nil
}

// Close sends FIN after all queued data drains.
func (c *Conn) Close() {
	if c.state == stateClosed {
		return
	}
	c.finSent = true
	c.pump()
}

// pump transmits queued data within the window, then FIN if closing.
func (c *Conn) pump() {
	if c.state != stateEstablished {
		return
	}
	for c.sendQ != nil && c.sendQ.Len() > 0 {
		inflight := c.sndNxt - c.sndUna
		if inflight >= c.window {
			return
		}
		room := int(c.window - inflight)
		n := c.sendQ.Len()
		if n > c.mss {
			n = c.mss
		}
		if n > room {
			n = room
		}
		seg, err := c.sendQ.PullChain(n)
		if err != nil {
			return
		}
		flags := uint8(flagACK)
		endSeq := c.sndNxt + uint32(n)
		if len(c.pushAt) > 0 && seqLEQ(c.pushAt[0], endSeq) {
			flags |= flagPSH
			c.pushAt = c.pushAt[1:]
		}
		c.sendSegmentSeq(flags, c.sndNxt, seg)
		c.sndNxt = endSeq
	}
	if c.finSent && c.state == stateEstablished && (c.sendQ == nil || c.sendQ.Len() == 0) {
		c.sendSegmentSeq(flagFIN|flagACK, c.sndNxt, nil)
		c.sndNxt++
		c.state = stateFinWait
	}
}

// sendSegment emits a control segment at the current send sequence.
func (c *Conn) sendSegment(flags uint8, payload *netbuf.Chain) {
	c.sendSegmentSeq(flags, c.sndNxt, payload)
	if flags&flagSYN != 0 {
		c.sndNxt++
	}
}

// sendSegmentSeq builds, checksums and transmits one segment.
func (c *Conn) sendSegmentSeq(flags uint8, seq uint32, payload *netbuf.Chain) {
	hb, err := c.t.node.TxPool.Get()
	if err != nil {
		if payload != nil {
			payload.Release()
		}
		return
	}
	hdr, err := hb.Push(HeaderLen)
	if err != nil {
		hb.Release()
		if payload != nil {
			payload.Release()
		}
		return
	}
	binary.BigEndian.PutUint16(hdr[0:2], c.key.localPort)
	binary.BigEndian.PutUint16(hdr[2:4], c.key.remotePort)
	binary.BigEndian.PutUint32(hdr[4:8], seq)
	binary.BigEndian.PutUint32(hdr[8:12], c.rcvNxt)
	hdr[12] = flags
	hdr[13] = 0
	hdr[14], hdr[15] = 0, 0

	plen := 0
	sum := pseudoHeaderSum(c.key.localAddr, c.key.remoteAddr)
	sum.AddBytes(hdr)
	if payload != nil {
		plen = payload.Len()
		sum = netbuf.Combine(sum, netbuf.PartialOfChain(payload))
	}
	ck := sum.Checksum()
	binary.BigEndian.PutUint16(hdr[14:16], ck)
	if !c.t.offloaded(c.key.localAddr) && plen > 0 {
		c.t.node.Copies.ChecksumBytes += uint64(plen)
		c.t.node.Charge(c.t.node.Cost.ChecksumCost(plen), nil)
	}

	seg := netbuf.ChainOf(hb)
	if payload != nil {
		seg.AppendChain(payload)
	}
	if err := c.t.ip.Send(c.key.localAddr, c.key.remoteAddr, ipv4.ProtoTCP, seg); err != nil {
		seg.Release()
	}
}

// offloaded reports checksum-offload capability of the NIC at addr.
func (t *Transport) offloaded(local eth.Addr) bool {
	for _, nic := range t.node.NICs() {
		if nic.Addr == local {
			return nic.ChecksumOffload
		}
	}
	return false
}

// receive demuxes one segment.
func (t *Transport) receive(ih ipv4.Header, payload *netbuf.Chain) {
	if payload.Len() < HeaderLen {
		t.ProtocolErrors++
		payload.Release()
		return
	}
	raw, err := payload.PullHeader(HeaderLen)
	if err != nil {
		payload.Release()
		return
	}
	srcPort := binary.BigEndian.Uint16(raw[0:2])
	dstPort := binary.BigEndian.Uint16(raw[2:4])
	seq := binary.BigEndian.Uint32(raw[4:8])
	ack := binary.BigEndian.Uint32(raw[8:12])
	flags := raw[12]

	// Verify the transport checksum (free with offload; the cost model
	// for software checksumming is charged on rx below).
	sum := pseudoHeaderSum(ih.Src, ih.Dst)
	sum.AddBytes(raw)
	sum = netbuf.Combine(sum, netbuf.PartialOfChain(payload))
	if sum.Fold() != 0xffff {
		t.ProtocolErrors++
		payload.Release()
		return
	}
	if !t.offloaded(ih.Dst) && payload.Len() > 0 {
		t.node.Copies.ChecksumBytes += uint64(payload.Len())
		t.node.Charge(t.node.Cost.ChecksumCost(payload.Len()), nil)
	}

	key := connKey{localAddr: ih.Dst, remoteAddr: ih.Src, localPort: dstPort, remotePort: srcPort}
	c, ok := t.conns[key]
	if !ok {
		if flags&flagSYN != 0 && flags&flagACK == 0 {
			t.acceptSyn(key, seq)
			payload.Release()
			return
		}
		t.ProtocolErrors++
		payload.Release()
		return
	}
	c.handle(flags, seq, ack, payload)
}

// acceptSyn creates a passive connection if a listener exists.
func (t *Transport) acceptSyn(key connKey, seq uint32) {
	accept, ok := t.listeners[key.localPort]
	if !ok {
		return
	}
	c := &Conn{
		t:      t,
		key:    key,
		state:  stateSynRcvd,
		window: DefaultWindow,
		rcvNxt: seq + 1,
		mss:    t.mss(),
	}
	t.conns[key] = c
	c.acceptFn = accept
	c.sendSegment(flagSYN|flagACK, nil)
}

// handle advances the connection state machine for one segment.
func (c *Conn) handle(flags uint8, seq, ack uint32, payload *netbuf.Chain) {
	t := c.t
	switch c.state {
	case stateSynSent:
		if flags&(flagSYN|flagACK) == flagSYN|flagACK {
			c.rcvNxt = seq + 1
			c.sndUna = ack
			c.state = stateEstablished
			c.sendSegmentSeq(flagACK, c.sndNxt, nil)
			if c.onEstab != nil {
				cb := c.onEstab
				c.onEstab = nil
				cb(c, nil)
			}
			c.pump()
		}
		payload.Release()
		return
	case stateSynRcvd:
		if flags&flagACK != 0 {
			c.sndUna = ack
			c.state = stateEstablished
			if c.acceptFn != nil {
				fn := c.acceptFn
				c.acceptFn = nil
				fn(c)
			}
		}
		// Fall through to process any data on the ACK.
	case stateClosed:
		payload.Release()
		return
	}

	if flags&flagACK != 0 && seqLEQ(c.sndUna, ack) {
		c.sndUna = ack
		c.pump()
	}

	n := payload.Len()
	if n > 0 {
		if seq != c.rcvNxt {
			t.ProtocolErrors++
			payload.Release()
			return
		}
		c.rcvNxt += uint32(n)
		if c.receiver != nil {
			c.receiver(payload)
		} else {
			payload.Release()
		}
		c.delack++
		if c.delack >= 2 || flags&flagPSH != 0 {
			c.delack = 0
			c.sendSegmentSeq(flagACK, c.sndNxt, nil)
		}
	} else {
		payload.Release()
	}

	if flags&flagFIN != 0 {
		c.rcvNxt++
		c.finRcvd = true
		c.sendSegmentSeq(flagACK, c.sndNxt, nil)
		if c.state == stateEstablished && !c.finSent {
			// Passive close: acknowledge and close our side too.
			c.Close()
		}
	}
	if c.finRcvd && (c.state == stateFinWait || c.finSent) && c.sndUna == c.sndNxt {
		c.teardown()
	}
}

// teardown finalizes the connection.
func (c *Conn) teardown() {
	if c.state == stateClosed {
		return
	}
	c.state = stateClosed
	delete(c.t.conns, c.key)
	if c.sendQ != nil {
		c.sendQ.Release()
	}
	if c.onClose != nil {
		c.onClose()
	}
}

// acceptFn is stored on passive connections until established.
// (kept at end of struct methods for clarity)

// seqLEQ reports a <= b in sequence-number arithmetic.
func seqLEQ(a, b uint32) bool { return int32(b-a) >= 0 }

// pseudoHeaderSum starts a checksum with the TCP pseudo-header. Length is
// omitted (both sides compute it the same way; the simulated fabric never
// truncates).
func pseudoHeaderSum(src, dst eth.Addr) netbuf.Partial {
	var s netbuf.Partial
	s.AddUint16(uint16(src >> 16))
	s.AddUint16(uint16(src))
	s.AddUint16(uint16(dst >> 16))
	s.AddUint16(uint16(dst))
	s.AddUint16(uint16(ipv4.ProtoTCP))
	return s
}
