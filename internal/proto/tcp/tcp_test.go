package tcp

import (
	"bytes"
	"testing"

	"ncache/internal/netbuf"
	"ncache/internal/proto/eth"
	"ncache/internal/proto/ipv4"
	"ncache/internal/sim"
	"ncache/internal/simnet"
)

type host struct {
	node *simnet.Node
	ip   *ipv4.Stack
	tcp  *Transport
	addr eth.Addr
}

func twoHosts(t *testing.T) (*sim.Engine, *host, *host) {
	t.Helper()
	eng := sim.NewEngine()
	nw := simnet.NewNetwork(eng, 5*sim.Microsecond)
	mk := func(name string, addr eth.Addr) *host {
		n := simnet.NewNode(eng, name, simnet.DefaultProfile())
		if _, err := nw.Attach(n, addr, simnet.Gbps); err != nil {
			t.Fatalf("attach %s: %v", name, err)
		}
		ip := ipv4.NewStack(n)
		return &host{node: n, ip: ip, tcp: NewTransport(ip), addr: addr}
	}
	return eng, mk("a", 1), mk("b", 2)
}

// collectServer accepts one connection and accumulates its stream.
func collectServer(t *testing.T, h *host, port uint16) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := h.tcp.Listen(port, func(c *Conn) {
		c.SetReceiver(func(data *netbuf.Chain) {
			buf.Write(data.Flatten())
			data.Release()
		})
	}); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	return &buf
}

func TestHandshakeAndSmallTransfer(t *testing.T) {
	eng, a, b := twoHosts(t)
	got := collectServer(t, b, 3260)
	var estab bool
	a.tcp.Connect(a.addr, b.addr, 3260, func(c *Conn, err error) {
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		estab = true
		if err := c.Send([]byte("iscsi login")); err != nil {
			t.Errorf("Send: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !estab {
		t.Fatal("handshake did not complete")
	}
	if got.String() != "iscsi login" {
		t.Fatalf("received %q", got.String())
	}
	if a.tcp.ProtocolErrors != 0 || b.tcp.ProtocolErrors != 0 {
		t.Fatalf("protocol errors: %d/%d", a.tcp.ProtocolErrors, b.tcp.ProtocolErrors)
	}
}

func TestLargeTransferSegmentsInOrder(t *testing.T) {
	eng, a, b := twoHosts(t)
	got := collectServer(t, b, 80)
	want := make([]byte, 1<<20) // 1 MB: exceeds window, exercises ack clocking
	sim.NewRNG(1).Fill(want)
	a.tcp.Connect(a.addr, b.addr, 80, func(c *Conn, err error) {
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		// Send in several chunks, as an application would.
		for off := 0; off < len(want); off += 128 * 1024 {
			end := off + 128*1024
			if end > len(want) {
				end = len(want)
			}
			if err := c.Send(want[off:end]); err != nil {
				t.Errorf("Send: %v", err)
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("stream corrupted: got %d bytes, want %d", got.Len(), len(want))
	}
	if b.tcp.ProtocolErrors != 0 {
		t.Fatalf("protocol errors: %d", b.tcp.ProtocolErrors)
	}
}

func TestSendChainZeroCopy(t *testing.T) {
	eng, a, b := twoHosts(t)
	got := collectServer(t, b, 80)
	payload := netbuf.ChainFromBytes(bytes.Repeat([]byte("q"), 8192), netbuf.DefaultBufSize)
	before := a.node.Copies.PhysicalOps
	a.tcp.Connect(a.addr, b.addr, 80, func(c *Conn, err error) {
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		if err := c.SendChain(payload); err != nil {
			t.Errorf("SendChain: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got.Len() != 8192 {
		t.Fatalf("received %d bytes, want 8192", got.Len())
	}
	if a.node.Copies.PhysicalOps != before {
		t.Fatal("SendChain physically copied payload")
	}
}

func TestBidirectionalEcho(t *testing.T) {
	eng, a, b := twoHosts(t)
	if err := b.tcp.Listen(7, func(c *Conn) {
		c.SetReceiver(func(data *netbuf.Chain) {
			// Echo straight back, zero-copy.
			if err := c.SendChain(data); err != nil {
				t.Errorf("echo: %v", err)
			}
		})
	}); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	var echoed bytes.Buffer
	a.tcp.Connect(a.addr, b.addr, 7, func(c *Conn, err error) {
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		c.SetReceiver(func(data *netbuf.Chain) {
			echoed.Write(data.Flatten())
			data.Release()
		})
		if err := c.Send([]byte("marco")); err != nil {
			t.Errorf("Send: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if echoed.String() != "marco" {
		t.Fatalf("echo = %q", echoed.String())
	}
}

func TestConnectionClose(t *testing.T) {
	eng, a, b := twoHosts(t)
	serverClosed := false
	if err := b.tcp.Listen(9, func(c *Conn) {
		c.SetReceiver(func(d *netbuf.Chain) { d.Release() })
		c.SetOnClose(func() { serverClosed = true })
	}); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	clientClosed := false
	a.tcp.Connect(a.addr, b.addr, 9, func(c *Conn, err error) {
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		c.SetOnClose(func() { clientClosed = true })
		if err := c.Send([]byte("bye")); err != nil {
			t.Errorf("Send: %v", err)
		}
		c.Close()
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !clientClosed || !serverClosed {
		t.Fatalf("close not propagated: client=%v server=%v", clientClosed, serverClosed)
	}
	if len(a.tcp.conns) != 0 || len(b.tcp.conns) != 0 {
		t.Fatalf("connections leaked: %d/%d", len(a.tcp.conns), len(b.tcp.conns))
	}
}

func TestConnectToClosedPortIgnored(t *testing.T) {
	eng, a, b := twoHosts(t)
	var gotConn *Conn
	gotErr := error(nil)
	called := 0
	a.tcp.Connect(a.addr, b.addr, 4444, func(c *Conn, err error) {
		called++
		gotConn, gotErr = c, err
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// A SYN to a closed port is refused with RST: the callback fires
	// exactly once with a connection-refused error.
	if called != 1 {
		t.Fatalf("connect callback fired %d times, want 1", called)
	}
	if gotConn != nil || gotErr == nil {
		t.Fatalf("callback got (%v, %v), want (nil, refused)", gotConn, gotErr)
	}
	if len(a.tcp.conns) != 0 {
		t.Fatalf("refused connection leaked state: %d conns", len(a.tcp.conns))
	}
}

func TestSendOnClosedConnFails(t *testing.T) {
	eng, a, b := twoHosts(t)
	collectServer(t, b, 11)
	var conn *Conn
	a.tcp.Connect(a.addr, b.addr, 11, func(c *Conn, err error) {
		conn = c
		c.Close()
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if conn == nil {
		t.Fatal("no connection")
	}
	if err := conn.Send([]byte("late")); err == nil {
		t.Fatal("Send on closed connection succeeded")
	}
}

func TestDoubleListenRejected(t *testing.T) {
	_, a, _ := twoHosts(t)
	if err := a.tcp.Listen(80, func(*Conn) {}); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	if err := a.tcp.Listen(80, func(*Conn) {}); err == nil {
		t.Fatal("double Listen succeeded")
	}
}

func TestConcurrentConnections(t *testing.T) {
	eng, a, b := twoHosts(t)
	recv := map[uint16]*bytes.Buffer{}
	if err := b.tcp.Listen(5000, func(c *Conn) {
		buf := &bytes.Buffer{}
		recv[c.RemotePort()] = buf
		c.SetReceiver(func(d *netbuf.Chain) {
			buf.Write(d.Flatten())
			d.Release()
		})
	}); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	for i := 0; i < 8; i++ {
		i := i
		a.tcp.Connect(a.addr, b.addr, 5000, func(c *Conn, err error) {
			if err != nil {
				t.Errorf("connect %d: %v", i, err)
				return
			}
			if err := c.Send([]byte{byte('A' + i)}); err != nil {
				t.Errorf("Send %d: %v", i, err)
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(recv) != 8 {
		t.Fatalf("connections received = %d, want 8", len(recv))
	}
	seen := map[string]bool{}
	for _, buf := range recv {
		seen[buf.String()] = true
	}
	for i := 0; i < 8; i++ {
		if !seen[string([]byte{byte('A' + i)})] {
			t.Fatalf("missing payload from connection %d", i)
		}
	}
}

func TestSegmentsRespectMSS(t *testing.T) {
	eng, a, b := twoHosts(t)
	collectServer(t, b, 80)
	a.tcp.Connect(a.addr, b.addr, 80, func(c *Conn, err error) {
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		if err := c.Send(make([]byte, 100*1024)); err != nil {
			t.Errorf("Send: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Every frame the sender transmitted must fit the MTU.
	mtu := a.node.NIC(0).MTU
	if got := a.node.NIC(0).Stats.BytesTx; got == 0 {
		t.Fatal("nothing sent")
	}
	// Expected segment count: ceil(100KB / MSS) data segments (plus
	// handshake); MSS = MTU - 20 - 16.
	mss := mtu - 20 - 16
	wantData := (100*1024 + mss - 1) / mss
	tx := int(a.node.NIC(0).Stats.PacketsTx)
	if tx < wantData || tx > wantData+5 {
		t.Fatalf("sender packets = %d, want ≈%d data segments", tx, wantData)
	}
}

func TestWindowLimitsInFlight(t *testing.T) {
	// With acks never returning (receiver side dropped), the sender must
	// stop at the window, not stream unboundedly.
	eng, a, b := twoHosts(t)
	if err := b.tcp.Listen(80, func(c *Conn) {
		c.SetReceiver(func(d *netbuf.Chain) { d.Release() })
		// Sabotage: drop the server's outbound acks by detaching its
		// connection map entry is intrusive; instead we simply count
		// what the sender put on the wire before acks arrive. Use a
		// one-way far latency so acks lag.
	}); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	var conn *Conn
	a.tcp.Connect(a.addr, b.addr, 80, func(c *Conn, err error) {
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		conn = c
		if err := c.Send(make([]byte, 4*DefaultWindow)); err != nil {
			t.Errorf("Send: %v", err)
		}
	})
	// Run only a sliver of virtual time: enough to transmit the window,
	// not enough for the first ack round trip to clock more out.
	if err := eng.RunUntil(30 * 1000); err != nil { // 30µs
		t.Fatalf("RunUntil: %v", err)
	}
	if conn == nil {
		t.Skip("handshake did not finish in the sliver; timing model changed")
	}
	inflight := conn.sndNxt - conn.sndUna
	if inflight > DefaultWindow {
		t.Fatalf("in-flight %d exceeds window %d", inflight, DefaultWindow)
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestAcksCostPackets(t *testing.T) {
	// The receiver of a long stream must transmit ack packets — the
	// per-packet overhead that makes TCP dearer than UDP in the paper.
	eng, a, b := twoHosts(t)
	collectServer(t, b, 80)
	a.tcp.Connect(a.addr, b.addr, 80, func(c *Conn, err error) {
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		if err := c.Send(make([]byte, 64*1024)); err != nil {
			t.Errorf("Send: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	acks := b.node.NIC(0).Stats.PacketsTx
	// 64KB at ~1464B/segment = ~45 segments, delayed ack 1 per 2 → >20.
	if acks < 20 {
		t.Fatalf("receiver sent %d packets, expected >20 acks", acks)
	}
}
