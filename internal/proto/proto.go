// Package proto defines the transport-neutral connection interface the
// upper layers (sunrpc streams, iscsi, nfs, passthru benches) program
// against. Both tcp.Conn and udp.Conn satisfy Conn, so a protocol built on
// "a bidirectional zero-copy byte/message pipe to one peer" selects its
// transport by constructor instead of branching on a transport name.
package proto

import (
	"ncache/internal/netbuf"
	"ncache/internal/proto/eth"
	"ncache/internal/simnet"
)

// Conn is one endpoint of an established transport association.
//
// Ownership contract (identical for every implementation): SendChain takes
// ownership of the chain; chains handed to the receiver callback must be
// Released (or passed on) exactly once by the consumer.
type Conn interface {
	// SendChain transmits payload already held in network buffers — the
	// zero-copy socket extension. The connection takes ownership.
	SendChain(payload *netbuf.Chain) error
	// SetReceiver installs the inbound consumer. For stream transports the
	// chains are in-order stream data; for datagram transports each chain
	// is one datagram payload.
	SetReceiver(f func(*netbuf.Chain))
	// MSS returns the largest payload the transport moves without further
	// segmentation charged to this layer (TCP: segment payload; UDP: the
	// datagram cap).
	MSS() int
	// Close ends the association (stream transports flush queued data
	// first).
	Close()
	// Node returns the node owning the local endpoint.
	Node() *simnet.Node
	// LocalAddr returns the local network address.
	LocalAddr() eth.Addr
	// RemoteAddr returns the peer's network address.
	RemoteAddr() eth.Addr
}

// Dialer opens a connection to remote:port and invokes done exactly once
// when the association is usable (or has failed). tcp.Transport.DialConn
// and udp.Transport.DialConn both match this shape.
type Dialer func(local, remote eth.Addr, port uint16, done func(Conn, error))

// Listener accepts inbound connections on a port, handing each established
// Conn to the accept callback. tcp.Transport implements it; servers built on
// it never see a concrete transport type.
type Listener interface {
	ListenConn(port uint16, accept func(Conn)) error
}
