package simnet

import "ncache/internal/sim"

// CostProfile calibrates the CPU cost of data-path operations. The defaults
// approximate the paper's testbed: Pentium III 1 GHz application/storage
// servers, Intel Pro/1000 gigabit NICs with checksum offload, Linux 2.4.
//
// Only relative magnitudes matter for reproducing the evaluation's shape:
// per-byte copy cost dominates large requests, per-packet cost dominates
// small ones — the crossover the paper places around 16 KB.
type CostProfile struct {
	// CopyNsPerByte is the cost of one byte of payload memcpy. A PIII-1GHz
	// sustains roughly 400 MB/s on cache-cold buffer-to-buffer copies.
	CopyNsPerByte float64
	// ChecksumNsPerByte is the cost of software Internet checksumming.
	// Irrelevant when NICs offload (the testbed's default).
	ChecksumNsPerByte float64
	// PktTxNs is the fixed per-packet transmit cost: driver, descriptor
	// setup, protocol header construction.
	PktTxNs sim.Duration
	// PktRxNs is the fixed per-packet receive cost: interrupt, driver,
	// protocol demux.
	PktRxNs sim.Duration
	// RPCNs is the per-message RPC/XDR processing cost.
	RPCNs sim.Duration
	// NFSOpNs is the per-operation NFS server logic cost (fh resolution,
	// permission checks, reply construction).
	NFSOpNs sim.Duration
	// HTTPOpNs is the per-request kHTTPd logic cost (parse, lookup).
	HTTPOpNs sim.Duration
	// ISCSIOpNs is the per-command iSCSI initiator/target logic cost.
	ISCSIOpNs sim.Duration
	// TargetBlockNs is the storage target's per-block overhead (buffer
	// management, SCSI midlayer, scatter-gather setup) — what saturates
	// the storage server's CPU in the paper's all-miss runs.
	TargetBlockNs sim.Duration
	// FSBlockNs is the per-block file system logic cost (mapping,
	// buffer-cache lookup).
	FSBlockNs sim.Duration
	// LogicalCopyNs is the cost of one logical copy: moving a 40-byte
	// key between layers instead of a payload.
	LogicalCopyNs sim.Duration
	// NCacheLookupNs is the hash lookup/insert cost per NCache operation.
	NCacheLookupNs sim.Duration
	// NCacheSubstNs is the per-packet payload-substitution cost at the
	// driver hook (clone descriptors, fix headers).
	NCacheSubstNs sim.Duration
	// NCacheMgmtNs is the per-block cache-management cost (LRU list
	// maintenance, chunk bookkeeping) — the overhead that separates
	// NFS-NCache from NFS-baseline in Figures 4–7.
	NCacheMgmtNs sim.Duration
	// SyscallNs approximates kernel entry/copyin bookkeeping per
	// daemon-level read/write of the buffer cache.
	SyscallNs sim.Duration
}

// DefaultProfile returns the PIII-1GHz-calibrated cost profile used by all
// experiments unless overridden.
func DefaultProfile() CostProfile {
	return CostProfile{
		CopyNsPerByte:     3.0,  // ~333 MB/s cache-cold memcpy
		ChecksumNsPerByte: 1.25, // ~800 MB/s csum walk (offloaded by default)
		PktTxNs:           3500,
		PktRxNs:           4 * sim.Microsecond,
		RPCNs:             6 * sim.Microsecond,
		NFSOpNs:           25 * sim.Microsecond,
		HTTPOpNs:          12 * sim.Microsecond,
		ISCSIOpNs:         8 * sim.Microsecond,
		TargetBlockNs:     12 * sim.Microsecond,
		FSBlockNs:         1500,
		LogicalCopyNs:     150,
		NCacheLookupNs:    1 * sim.Microsecond,
		NCacheSubstNs:     700,
		NCacheMgmtNs:      2500,
		SyscallNs:         2 * sim.Microsecond,
	}
}

// CopyCost returns the CPU time to physically copy n payload bytes.
func (p CostProfile) CopyCost(n int) sim.Duration {
	return sim.Duration(p.CopyNsPerByte * float64(n))
}

// ChecksumCost returns the CPU time to checksum n payload bytes in software.
func (p CostProfile) ChecksumCost(n int) sim.Duration {
	return sim.Duration(p.ChecksumNsPerByte * float64(n))
}
