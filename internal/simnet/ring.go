package simnet

import (
	"fmt"
	"sync"

	"ncache/internal/netbuf"
)

// RxRing models a NIC's registered receive ring: a set of descriptors the
// driver posts, each naming a pool-owned buffer the device may DMA an
// arriving frame into. In the shared-memory simulation the "DMA" is an
// ownership exchange rather than a byte copy: the sender's buffer — whose
// payload the wire already clocked across, paying full serialization time —
// is adopted into the receiving node's pool (it *is* the registered buffer
// the frame landed in), and an empty replacement is lent back to the sender's
// pool so both sides keep circulating buffers. No simulated time or payload
// bytes move here, so results are bit-identical to the legacy by-reference
// delivery; what changes is ownership: received payloads are now accounted to
// the receiver, which is what lets NCache pin *its own node's* receive
// buffers (§4.1) instead of the sender's transmit pool.
//
// Clone descriptors are not adopted: their backing belongs to whoever holds
// the root (a cached chain transmitted by reference stays pinned at the
// cache). Standalone buffers (no pool) pass through unchanged.
type RxRing struct {
	nic *NIC
	// size is the number of posted descriptors; posted tracks how many are
	// currently free. The driver replenishes on exhaustion (counted in
	// Refills) rather than dropping — the fabric stays lossless so the
	// registered path is behaviorally identical to the legacy one.
	//
	// mu guards posted and Refills: an adopted buffer's last reference can
	// drop on whichever shard holds it, so the credit return in bufReleased
	// may race the owning shard's adopt. Credits are pure counts — the
	// order they return in never affects simulated results.
	mu     sync.Mutex
	size   int
	posted int

	// FramesAdopted / BufsAdopted count delivery-time ownership transfers;
	// Passthrough counts delivered buffers that could not be adopted
	// (clones, standalone buffers). Refills counts on-demand descriptor
	// replenishments when the ring ran dry.
	FramesAdopted uint64
	BufsAdopted   uint64
	Passthrough   uint64
	Refills       uint64

	// releaseFn is the single func value installed as every adopted
	// buffer's recycle hook (allocated once, not per frame).
	releaseFn func(*netbuf.Buf)
}

// DefaultRxRingSize matches a typical e1000 receive ring.
const DefaultRxRingSize = 256

// newRxRing builds the ring for one NIC.
func newRxRing(nic *NIC, size int) *RxRing {
	if size <= 0 {
		size = DefaultRxRingSize
	}
	r := &RxRing{nic: nic, size: size, posted: size}
	r.releaseFn = r.bufReleased
	return r
}

// Size returns the number of descriptors the ring posts.
func (r *RxRing) Size() int { return r.size }

// Outstanding returns the ring credits currently consumed by adopted buffers
// that have not yet been released back to their pool. Leak tests assert this
// returns to zero after a drained workload.
func (r *RxRing) Outstanding() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.size - r.posted + int(r.Refills)
}

// adopt runs the simulated receive DMA for one delivered frame: every
// unshared pool-owned buffer in the frame is re-homed into the receiving
// node's pool of matching geometry (RxPool for MTU-sized buffers, BlkPool
// for block-sized ones), consuming a ring credit until the buffer's last
// reference is released, and the adopting pool immediately lends an empty
// replacement back to the sender's pool.
func (r *RxRing) adopt(frame *netbuf.Chain) {
	node := r.nic.node
	adopted := false
	for _, b := range frame.Bufs() {
		src := b.Pool()
		if src == nil || b.Shared() {
			r.Passthrough++
			continue
		}
		dst := node.RxPool
		if !dst.Adopt(b) {
			dst = node.BlkPool
			if !dst.Adopt(b) {
				r.Passthrough++
				continue
			}
		}
		dst.Lend(src)
		r.mu.Lock()
		if r.posted == 0 {
			// Ring exhausted: the driver replenishes instead of dropping,
			// keeping the fabric lossless (results stay bit-identical).
			r.Refills++
		} else {
			r.posted--
		}
		r.mu.Unlock()
		// A buffer forwarded wholesale from another node may still carry
		// that node's ring hook; fire it so the old ring's credit returns.
		if old := b.TakeRecycleHook(); old != nil {
			old(b)
		}
		b.OnRecycle(r.releaseFn)
		r.BufsAdopted++
		adopted = true
	}
	if adopted {
		r.FramesAdopted++
	}
}

// bufReleased returns a ring credit when an adopted buffer's last reference
// is dropped. It runs on whichever shard released the reference.
func (r *RxRing) bufReleased(*netbuf.Buf) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.posted < r.size {
		r.posted++
		return
	}
	// The credit belongs to an on-demand refill; retire it.
	if r.Refills > 0 {
		r.Refills--
	}
}

// String summarizes ring state for diagnostics.
func (r *RxRing) String() string {
	return fmt.Sprintf("rxring(%s size=%d outstanding=%d adopted=%d)",
		r.nic.Addr, r.size, r.Outstanding(), r.BufsAdopted)
}
