package simnet

import (
	"testing"

	"ncache/internal/sim"
)

func TestCopyCostLinear(t *testing.T) {
	p := DefaultProfile()
	if p.CopyCost(0) != 0 {
		t.Fatal("zero bytes cost nonzero")
	}
	one := p.CopyCost(1000)
	two := p.CopyCost(2000)
	if two != 2*one {
		t.Fatalf("copy cost not linear: %v vs %v", one, two)
	}
	// The calibrated rate: 3 ns/B.
	if got := p.CopyCost(1_000_000); got != 3*sim.Millisecond {
		t.Fatalf("CopyCost(1MB) = %v, want 3ms", got)
	}
}

func TestChecksumCost(t *testing.T) {
	p := DefaultProfile()
	if got := p.ChecksumCost(800_000); got != sim.Millisecond {
		t.Fatalf("ChecksumCost(800KB) = %v, want 1ms (800 MB/s)", got)
	}
}

func TestDefaultProfileSanity(t *testing.T) {
	p := DefaultProfile()
	// The relationships the calibration depends on (§DESIGN 4a): logical
	// copies are orders of magnitude cheaper than a block copy; the
	// per-block target overhead exceeds per-command costs under large
	// transfers; substitution is cheaper than copying a wire buffer.
	if p.LogicalCopyNs*10 > p.CopyCost(4096) {
		t.Fatal("logical copy not much cheaper than a 4KB physical copy")
	}
	if p.NCacheSubstNs >= p.CopyCost(1460) {
		t.Fatal("per-buffer substitution costs more than copying the buffer")
	}
	if p.PktRxNs <= 0 || p.PktTxNs <= 0 || p.NFSOpNs <= 0 || p.TargetBlockNs <= 0 {
		t.Fatal("zero per-op costs")
	}
}

func TestBandwidthSerializationUnits(t *testing.T) {
	if Gbps.serialization(0) != 0 {
		t.Fatal("zero bytes serialize in nonzero time")
	}
	if Bandwidth(0).serialization(1000) != 0 {
		t.Fatal("zero bandwidth must not divide by zero")
	}
	// 1500B at 1Gbps = 12µs.
	if d := Gbps.serialization(1500); d != 12*sim.Microsecond {
		t.Fatalf("1500B @ 1Gbps = %v", d)
	}
}
