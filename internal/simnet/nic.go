package simnet

import (
	"fmt"

	"ncache/internal/metrics"
	"ncache/internal/netbuf"
	"ncache/internal/proto/eth"
	"ncache/internal/sim"
	"ncache/internal/trace"
)

// Bandwidth is a link speed in bits per second.
type Bandwidth int64

// Common link speeds.
const (
	Mbps Bandwidth = 1_000_000
	Gbps Bandwidth = 1_000_000_000
)

// serialization returns the time to clock n bytes onto a link of this speed.
func (bw Bandwidth) serialization(n int) sim.Duration {
	if bw <= 0 {
		return 0
	}
	return sim.Duration(int64(n) * 8 * int64(sim.Second) / int64(bw))
}

// FrameOverheadBytes models preamble, CRC and inter-frame gap on each frame,
// beyond the bytes carried in the chain.
const FrameOverheadBytes = 24

// TxFilter inspects (and may replace) an outgoing frame just before it is
// clocked onto the wire. This is the driver-level hook the NCache module
// installs ("inserted into the layer between the network stack and the
// Ethernet device driver", §4.1). Returning a different chain substitutes
// the frame; the filter owns the old frame's references in that case.
type TxFilter interface {
	FilterTx(frame *netbuf.Chain) *netbuf.Chain
}

// RxHandler receives frames delivered to a NIC. It runs in event context;
// implementations charge their own CPU costs.
type RxHandler func(frame *netbuf.Chain)

// NIC is a network interface: an address, a transmit serializer at the
// link's bandwidth, checksum-offload capability, and the driver tx hook.
type NIC struct {
	Addr eth.Addr
	MTU  int
	// ChecksumOffload mirrors the Intel Pro/1000 capability the testbed
	// enabled: transport checksums cost no CPU on this interface.
	ChecksumOffload bool
	Stats           metrics.Net

	node    *Node
	net     *Network
	tx      *sim.Resource
	rx      RxHandler
	ring    *RxRing
	filters []TxFilter
	bw      Bandwidth
	latency sim.Duration
}

// Ring returns the NIC's registered receive ring.
func (n *NIC) Ring() *RxRing { return n.ring }

// SetRxHandler installs the function invoked for each delivered frame.
func (n *NIC) SetRxHandler(h RxHandler) { n.rx = h }

// AddTxFilter appends a driver-level transmit hook. Filters run in
// installation order on every outgoing frame.
func (n *NIC) AddTxFilter(f TxFilter) { n.filters = append(n.filters, f) }

// Node returns the owning node.
func (n *NIC) Node() *Node { return n.node }

// Bandwidth returns the attached link speed.
func (n *NIC) Bandwidth() Bandwidth { return n.bw }

// Latency returns this link's one-way latency — the minimum delay any
// frame sent from this NIC pays before reaching another node, and thus the
// lookahead this node's shard offers every destination.
func (n *NIC) Latency() sim.Duration { return n.latency }

// TxUtilization reports the transmit serializer's utilization since its
// stats were last reset — how close this NIC is to line rate.
func (n *NIC) TxUtilization() float64 { return n.tx.Utilization() }

// ResetStats zeroes wire counters and the transmit serializer's window.
func (n *NIC) ResetStats() {
	n.Stats = metrics.Net{}
	n.tx.ResetStats()
}

// Send clocks a fully framed chain (link header already pushed) onto the
// wire. The frame must fit in MTU + headers. Delivery is asynchronous; the
// NIC owns the chain's references from this point.
func (n *NIC) Send(frame *netbuf.Chain) error {
	for _, f := range n.filters {
		frame = f.FilterTx(frame)
	}
	size := frame.Len()
	if size > n.MTU+eth.HeaderLen {
		return fmt.Errorf("simnet: frame %d bytes exceeds MTU %d on %s", size, n.MTU, n.Addr)
	}
	d := n.net.faults.FrameTx(n.node.Eng, n.node.Name+".tx")
	if d.Drop {
		n.Stats.FaultDropTx++
		frame.Release()
		return nil
	}
	n.Stats.PacketsTx++
	n.Stats.BytesTx += uint64(size)
	// From here the request is on the wire: transmit queueing,
	// serialization and link latency all belong to the network.
	trace.To(n.node.Eng, trace.LNet)
	// Resolve the egress port now (the table is immutable): the uplink
	// traversal below is the shard crossing, so the destination must be
	// known before the frame leaves this node's shard.
	p := n.net.route(n, frame)
	wire := size + FrameOverheadBytes
	n.tx.Use(n.bw.serialization(wire), n.launch(p, frame, n.latency+d.Delay, d.Corrupt))
	if d.Dup {
		// Injected duplicate: an extra copy of the frame, clocked onto the
		// wire like any other (it shares the payload buffers by reference,
		// so receivers see it as a clone and never adopt its buffers).
		dup := frame.Clone()
		n.Stats.FaultDupTx++
		n.Stats.PacketsTx++
		n.Stats.BytesTx += uint64(size)
		n.tx.Use(n.bw.serialization(wire), n.launch(p, dup, n.latency, false))
	}
	return nil
}

// launch returns the transmit-completion action for one frame copy: cross
// into the destination node's shard after the uplink AND downlink
// latencies (plus any injected delay), or — for unroutable frames — pay
// the same wire time locally and let the switch count the discard.
//
// Paying the egress port's latency on the sending side is timing-identical
// to paying it after downlink serialization (every frame into a port pays
// the same constant, so queue waits commute with it), but it doubles the
// shard pair's signal delay — and therefore the parallel engine's
// lookahead: a frame from A to B can never land sooner than A's uplink
// plus B's downlink.
func (n *NIC) launch(p *port, frame *netbuf.Chain, delay sim.Duration, corrupt bool) func() {
	return func() {
		if p == nil {
			n.node.Eng.Schedule(delay, func() { n.net.drop(frame) })
			return
		}
		n.node.Eng.PostTo(p.nic.node.Eng, delay+p.lat, func() {
			n.net.arrive(p, frame, corrupt)
		})
	}
}

// deliver hands a frame arriving from the fabric to the receive handler.
// Corrupt frames paid for their wire time but fail checksum verification
// here, so they are counted and discarded without reaching the stack.
// The frame's buffers are first adopted into this node's pools — the
// simulated DMA into the RX ring — so everything upstack, including NCache
// capture, retains buffers this node owns.
func (n *NIC) deliver(frame *netbuf.Chain, corrupt bool) {
	if corrupt {
		n.Stats.FaultCorruptRx++
		frame.Release()
		return
	}
	n.ring.adopt(frame)
	n.Stats.PacketsRx++
	n.Stats.BytesRx += uint64(frame.Len())
	if n.rx == nil {
		frame.Release()
		return
	}
	n.rx(frame)
}
