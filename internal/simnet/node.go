// Package simnet models the hardware of the paper's testbed: nodes with a
// CPU, one or more gigabit NICs, and a store-and-forward switch connecting
// them. Data on the wire is real bytes in netbuf chains; time is virtual.
package simnet

import (
	"fmt"

	"ncache/internal/metrics"
	"ncache/internal/netbuf"
	"ncache/internal/sim"
)

// Node is one machine: a CPU queueing resource, driver buffer pools, NICs,
// and the metric counters the experiments read.
type Node struct {
	Name string
	Eng  *sim.Engine
	CPU  *sim.Resource
	// Cost calibrates this node's per-operation CPU charges.
	Cost CostProfile
	// RxPool is the driver receive-buffer pool backing the NICs' registered
	// RX rings: arriving MTU-sized payload buffers are adopted into it at
	// delivery (the simulated DMA), so what NCache pins comes from here —
	// this node's own receive memory, bounding what is left for the FS
	// buffer cache (§4.1).
	RxPool *netbuf.Pool
	// TxPool recycles MTU-sized transmit buffers: protocol header buffers
	// and wire-segment copies draw from here so the steady-state transmit
	// path allocates nothing. Buffers that leave on the wire are adopted by
	// the receiver's ring, which lends an empty replacement straight back,
	// keeping the pool circulating. It is unbounded and outside the
	// RxPool's pinned-memory accounting (a driver tx ring, not cache
	// memory).
	TxPool *netbuf.Pool
	// BlkPool recycles file-system-block-sized buffers (stamped junk
	// blocks, flush payloads). Like TxPool it is transient driver memory.
	BlkPool *netbuf.Pool
	// Copies / NetStats / Reqs are this node's data-path counters.
	Copies metrics.Copies
	Reqs   metrics.Requests

	nics []*NIC
}

// BlockBufSize is the payload capacity of BlkPool buffers, matching the
// file-system block size every experiment uses.
const BlockBufSize = 4096

// NewNode creates a node with one CPU and unbounded default buffer pools.
func NewNode(eng *sim.Engine, name string, cost CostProfile) *Node {
	return &Node{
		Name:    name,
		Eng:     eng,
		CPU:     sim.NewResource(eng, name+".cpu"),
		Cost:    cost,
		RxPool:  netbuf.NewPool(name+".rx", netbuf.DefaultHeadroom, netbuf.DefaultBufSize, 0),
		TxPool:  netbuf.NewPool(name+".tx", netbuf.DefaultHeadroom, netbuf.DefaultBufSize, 0),
		BlkPool: netbuf.NewPool(name+".blk", netbuf.DefaultHeadroom, BlockBufSize, 0),
	}
}

// NICs returns the node's attached interfaces.
func (n *Node) NICs() []*NIC { return n.nics }

// NIC returns the i'th interface.
func (n *Node) NIC(i int) *NIC { return n.nics[i] }

// Charge runs fn after the node's CPU has served d of work.
func (n *Node) Charge(d sim.Duration, fn func()) {
	n.CPU.Use(d, fn)
}

// ChargeCopy performs the accounting for one physical copy of nbytes and
// runs fn once the CPU time has been served. The actual byte movement is the
// caller's business; this charges its simulated cost.
func (n *Node) ChargeCopy(nbytes int, fn func()) {
	n.Copies.AddPhysical(nbytes)
	n.CPU.Use(n.Cost.CopyCost(nbytes), fn)
}

// NetTotals sums wire counters across all NICs.
func (n *Node) NetTotals() metrics.Net {
	var t metrics.Net
	for _, nic := range n.nics {
		t.PacketsTx += nic.Stats.PacketsTx
		t.PacketsRx += nic.Stats.PacketsRx
		t.BytesTx += nic.Stats.BytesTx
		t.BytesRx += nic.Stats.BytesRx
	}
	return t
}

// String identifies the node.
func (n *Node) String() string { return fmt.Sprintf("node(%s)", n.Name) }
