package simnet

import (
	"bytes"
	"testing"

	"ncache/internal/netbuf"
	"ncache/internal/proto/eth"
	"ncache/internal/sim"
)

func testFabric(t *testing.T) (*sim.Engine, *Network, *NIC, *NIC) {
	t.Helper()
	eng := sim.NewEngine()
	nw := NewNetwork(eng, 5*sim.Microsecond)
	a := NewNode(eng, "a", DefaultProfile())
	b := NewNode(eng, "b", DefaultProfile())
	na, err := nw.Attach(a, 1, Gbps)
	if err != nil {
		t.Fatalf("attach a: %v", err)
	}
	nb, err := nw.Attach(b, 2, Gbps)
	if err != nil {
		t.Fatalf("attach b: %v", err)
	}
	return eng, nw, na, nb
}

func frameTo(t *testing.T, dst, src eth.Addr, payload []byte) *netbuf.Chain {
	t.Helper()
	c := netbuf.ChainFromBytes(payload, netbuf.DefaultBufSize)
	if err := (eth.Header{Dst: dst, Src: src, Type: eth.TypeIPv4}).Push(c); err != nil {
		t.Fatalf("push eth: %v", err)
	}
	return c
}

func TestFrameDelivery(t *testing.T) {
	eng, _, na, nb := testFabric(t)
	var got []byte
	nb.SetRxHandler(func(f *netbuf.Chain) {
		hdr, err := eth.Parse(f)
		if err != nil {
			t.Errorf("parse: %v", err)
		}
		if hdr.Src != 1 || hdr.Dst != 2 {
			t.Errorf("hdr = %+v", hdr)
		}
		got = f.Flatten()
		f.Release()
	})
	payload := []byte("over the fabric")
	if err := na.Send(frameTo(t, 2, 1, payload)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("delivered %q, want %q", got, payload)
	}
	if na.Stats.PacketsTx != 1 || nb.Stats.PacketsRx != 1 {
		t.Fatalf("stats tx=%d rx=%d", na.Stats.PacketsTx, nb.Stats.PacketsRx)
	}
}

func TestDeliveryLatencyIncludesSerialization(t *testing.T) {
	eng, _, na, nb := testFabric(t)
	var at sim.Time
	nb.SetRxHandler(func(f *netbuf.Chain) { at = eng.Now(); f.Release() })
	payload := make([]byte, 1488) // 1488+12 hdr = 1500 on wire + 24 overhead
	if err := na.Send(frameTo(t, 2, 1, payload)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Wire bytes = 1500+24 = 1524. Serialization at 1 Gbps = 12.192 us,
	// twice (uplink + downlink) + 2x5us latency = 34.384 us.
	want := sim.Time(2*12192 + 2*5000)
	if at != want {
		t.Fatalf("delivery at %v, want %v", at, want)
	}
}

func TestOrderingPreservedPerFlow(t *testing.T) {
	eng, _, na, nb := testFabric(t)
	var order []byte
	nb.SetRxHandler(func(f *netbuf.Chain) {
		if _, err := eth.Parse(f); err != nil {
			t.Errorf("parse: %v", err)
		}
		order = append(order, f.Flatten()[0])
		f.Release()
	})
	for i := byte(0); i < 10; i++ {
		if err := na.Send(frameTo(t, 2, 1, []byte{i})); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := byte(0); i < 10; i++ {
		if order[i] != i {
			t.Fatalf("frames reordered: %v", order)
		}
	}
}

func TestUnknownDestinationDropped(t *testing.T) {
	eng, nw, na, _ := testFabric(t)
	if err := na.Send(frameTo(t, 99, 1, []byte("void"))); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if nw.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", nw.Dropped())
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	_, _, na, _ := testFabric(t)
	big := netbuf.ChainFromBytes(make([]byte, 3000), 3000)
	// Build a single oversize buffer chain manually (bypasses MTU segmenting).
	if err := (eth.Header{Dst: 2, Src: 1}).Push(big); err == nil {
		if err := na.Send(big); err == nil {
			t.Fatal("oversize frame accepted")
		}
	}
}

func TestDuplicateAddressRejected(t *testing.T) {
	eng := sim.NewEngine()
	nw := NewNetwork(eng, 0)
	n := NewNode(eng, "n", DefaultProfile())
	if _, err := nw.Attach(n, 7, Gbps); err != nil {
		t.Fatalf("attach: %v", err)
	}
	if _, err := nw.Attach(n, 7, Gbps); err == nil {
		t.Fatal("duplicate attach succeeded")
	}
}

func TestTxFilterSubstitution(t *testing.T) {
	eng, _, na, nb := testFabric(t)
	var got []byte
	nb.SetRxHandler(func(f *netbuf.Chain) {
		if _, err := eth.Parse(f); err != nil {
			t.Errorf("parse: %v", err)
		}
		got = f.Flatten()
		f.Release()
	})
	na.AddTxFilter(txFilterFunc(func(f *netbuf.Chain) *netbuf.Chain {
		// Replace the whole frame, as the NCache driver hook does.
		hdr, err := eth.Parse(f)
		if err != nil {
			t.Errorf("filter parse: %v", err)
			return f
		}
		f.Release()
		nf := netbuf.ChainFromBytes([]byte("substituted"), 1500)
		if err := hdr.Push(nf); err != nil {
			t.Errorf("filter push: %v", err)
		}
		return nf
	}))
	if err := na.Send(frameTo(t, 2, 1, []byte("original"))); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if string(got) != "substituted" {
		t.Fatalf("got %q, want substituted payload", got)
	}
}

type txFilterFunc func(*netbuf.Chain) *netbuf.Chain

func (f txFilterFunc) FilterTx(c *netbuf.Chain) *netbuf.Chain { return f(c) }

func TestMultiNICNode(t *testing.T) {
	eng := sim.NewEngine()
	nw := NewNetwork(eng, sim.Microsecond)
	server := NewNode(eng, "server", DefaultProfile())
	client := NewNode(eng, "client", DefaultProfile())
	s1, _ := nw.Attach(server, 10, Gbps)
	s2, _ := nw.Attach(server, 11, Gbps)
	c1, _ := nw.Attach(client, 20, Gbps)
	rx := map[eth.Addr]int{}
	h := func(nicAddr eth.Addr) RxHandler {
		return func(f *netbuf.Chain) { rx[nicAddr]++; f.Release() }
	}
	s1.SetRxHandler(h(10))
	s2.SetRxHandler(h(11))
	if err := c1.Send(frameTo(t, 10, 20, []byte("x"))); err != nil {
		t.Fatal(err)
	}
	if err := c1.Send(frameTo(t, 11, 20, []byte("y"))); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rx[10] != 1 || rx[11] != 1 {
		t.Fatalf("rx = %v, want one frame per NIC", rx)
	}
	if len(server.NICs()) != 2 {
		t.Fatalf("server NICs = %d, want 2", len(server.NICs()))
	}
	if server.NetTotals().PacketsRx != 2 {
		t.Fatalf("NetTotals.PacketsRx = %d, want 2", server.NetTotals().PacketsRx)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	if d := Gbps.serialization(125); d != 1000 {
		t.Fatalf("1Gbps x 125B = %v, want 1us", d)
	}
	if d := (100 * Mbps).serialization(125); d != 10000 {
		t.Fatalf("100Mbps x 125B = %v, want 10us", d)
	}
}

func TestNodeChargeCopyAccounting(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNode(eng, "n", DefaultProfile())
	done := false
	n.ChargeCopy(4096, func() { done = true })
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !done {
		t.Fatal("ChargeCopy callback not run")
	}
	if n.Copies.PhysicalOps != 1 || n.Copies.PhysicalBytes != 4096 {
		t.Fatalf("copies = %+v", n.Copies)
	}
	if n.CPU.Busy() != n.Cost.CopyCost(4096) {
		t.Fatalf("CPU busy = %v, want %v", n.CPU.Busy(), n.Cost.CopyCost(4096))
	}
}

func TestEthHeaderRoundTrip(t *testing.T) {
	c := netbuf.ChainFromBytes([]byte("data"), 100)
	in := eth.Header{Dst: 0xdeadbeef, Src: 0x01020304, Type: eth.TypeIPv4, Pad: 7}
	if err := in.Push(c); err != nil {
		t.Fatalf("Push: %v", err)
	}
	peeked, err := eth.Peek(c)
	if err != nil {
		t.Fatalf("Peek: %v", err)
	}
	if peeked != in {
		t.Fatalf("Peek = %+v, want %+v", peeked, in)
	}
	out, err := eth.Parse(c)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if out != in {
		t.Fatalf("Parse = %+v, want %+v", out, in)
	}
	if string(c.Flatten()) != "data" {
		t.Fatalf("payload corrupted: %q", c.Flatten())
	}
	if got := eth.Addr(0x0a000001).String(); got != "10.0.0.1" {
		t.Fatalf("Addr.String = %q", got)
	}
}
