package simnet

import (
	"fmt"
	"sync/atomic"

	"ncache/internal/fault"
	"ncache/internal/netbuf"
	"ncache/internal/proto/eth"
	"ncache/internal/sim"
)

// Network is a store-and-forward switch: every NIC attaches to one port
// over a full-duplex link. Forwarding looks up the destination address and
// serializes the frame onto the egress port's downlink. The fabric is
// lossless and preserves per-flow ordering, like the paper's NetGear gigabit
// switch under non-saturating load — unless a fault injector says otherwise.
type Network struct {
	eng     *sim.Engine
	latency sim.Duration
	// ports is immutable once traffic starts (attachments happen at build
	// time), so route lookups are safe from any shard without locking.
	ports map[eth.Addr]*port
	// dropped counts frames discarded for unknown or self destinations.
	// The drop/arrive counters are atomics because frames from different
	// source shards account concurrently; they are commutative sums, so
	// totals are deterministic for any worker count.
	dropped atomic.Uint64
	faults  *fault.Injector
	// faultDropped counts frames the injector discarded at switch
	// downlinks (transmit-side drops land on the NIC's own stats).
	faultDropped atomic.Uint64
	// faultDuped counts extra frame copies the injector created at switch
	// downlinks.
	faultDuped atomic.Uint64
}

// port is the switch side of one attachment: a downlink serializer toward
// the NIC, with the link's one-way latency (the switch default unless the
// attachment asked for a slower link).
type port struct {
	nic  *NIC
	down *sim.Resource
	bw   Bandwidth
	lat  sim.Duration
}

// NewNetwork returns an empty switch with the given one-way port latency.
func NewNetwork(eng *sim.Engine, latency sim.Duration) *Network {
	return &Network{
		eng:     eng,
		latency: latency,
		ports:   make(map[eth.Addr]*port),
	}
}

// Attach creates a NIC on node, connected to this switch at the given
// address and bandwidth, and returns it. The NIC uses the testbed defaults:
// 1500-byte MTU and checksum offload on, and the switch's default one-way
// link latency.
func (nw *Network) Attach(node *Node, addr eth.Addr, bw Bandwidth) (*NIC, error) {
	return nw.AttachAt(node, addr, bw, nw.latency)
}

// AttachAt is Attach with an explicit one-way link latency for this port —
// a client reaching the fabric over a longer path (LAN hop, WAN link) pays
// it in both directions. It must be at least the switch latency: the
// fabric latency is the global floor the sharded engine's default
// lookahead is derived from, and a faster-than-fabric link would break
// that contract.
func (nw *Network) AttachAt(node *Node, addr eth.Addr, bw Bandwidth, latency sim.Duration) (*NIC, error) {
	if _, exists := nw.ports[addr]; exists {
		return nil, fmt.Errorf("simnet: address %s already attached", addr)
	}
	if latency < nw.latency {
		return nil, fmt.Errorf("simnet: link latency %s below switch latency %s", latency, nw.latency)
	}
	nic := &NIC{
		Addr:            addr,
		MTU:             netbuf.DefaultBufSize,
		ChecksumOffload: true,
		node:            node,
		net:             nw,
		tx:              sim.NewResource(node.Eng, fmt.Sprintf("%s.%s.tx", node.Name, addr)),
		bw:              bw,
		latency:         latency,
	}
	nic.ring = newRxRing(nic, DefaultRxRingSize)
	// The downlink serializer lives on the destination node's shard: frames
	// arriving for this port are clocked in destination-shard time. On a
	// sequential engine node.Eng is the switch engine, as before.
	nw.ports[addr] = &port{
		nic:  nic,
		down: sim.NewResource(node.Eng, fmt.Sprintf("sw.%s.down", addr)),
		bw:   bw,
		lat:  latency,
	}
	node.nics = append(node.nics, nic)
	return nic, nil
}

// Dropped reports frames discarded for unknown destinations.
func (nw *Network) Dropped() uint64 { return nw.dropped.Load() }

// Latency returns the one-way port latency — the sharded engine's lookahead
// floor, since no frame crosses nodes in less than one port traversal.
func (nw *Network) Latency() sim.Duration { return nw.latency }

// SetFaults installs the fault injector consulted on every frame. Nil (the
// default) disables injection.
func (nw *Network) SetFaults(in *fault.Injector) { nw.faults = in }

// Faults returns the installed injector (nil when faults are off).
func (nw *Network) Faults() *fault.Injector { return nw.faults }

// FaultDropped reports frames the injector discarded at switch downlinks.
func (nw *Network) FaultDropped() uint64 { return nw.faultDropped.Load() }

// FaultDuped reports extra frame copies the injector created at switch
// downlinks.
func (nw *Network) FaultDuped() uint64 { return nw.faultDuped.Load() }

// route resolves the egress port for a frame, or nil when the switch would
// discard it (unparseable header, unknown destination, or hairpin to the
// sender). Pure lookup against the immutable port table, so the sending
// shard can resolve the destination at transmit time.
func (nw *Network) route(from *NIC, frame *netbuf.Chain) *port {
	hdr, err := eth.Peek(frame)
	if err != nil {
		return nil
	}
	p, ok := nw.ports[hdr.Dst]
	if !ok || p.nic == from {
		return nil
	}
	return p
}

// drop discards an unroutable frame once it has paid its wire time.
func (nw *Network) drop(frame *netbuf.Chain) {
	nw.dropped.Add(1)
	frame.Release()
}

// arrive runs on the destination node's shard when a frame reaches the
// switch egress: the receive-side fault decision and downlink
// serialization unfold in destination-shard time — byte-identical to the
// old single-engine forward, since the port's downlink lives on node.Eng.
// The port latency was already paid on the shard crossing (see
// NIC.launch), so delivery happens straight off the serializer.
func (nw *Network) arrive(p *port, frame *netbuf.Chain, corrupt bool) {
	eng := p.nic.node.Eng
	d := nw.faults.FrameRx(eng, p.nic.node.Name+".rx")
	if d.Drop {
		nw.faultDropped.Add(1)
		frame.Release()
		return
	}
	corrupt = corrupt || d.Corrupt
	wire := frame.Len() + FrameOverheadBytes
	p.down.Use(p.bw.serialization(wire), func() {
		eng.Schedule(d.Delay, func() {
			p.nic.deliver(frame, corrupt)
		})
	})
	if d.Dup {
		// Injected duplicate at the downlink: a by-reference copy clocked
		// after the original.
		dup := frame.Clone()
		nw.faultDuped.Add(1)
		p.down.Use(p.bw.serialization(wire), func() {
			eng.Schedule(0, func() {
				p.nic.deliver(dup, corrupt)
			})
		})
	}
}
