package simnet

import (
	"fmt"

	"ncache/internal/fault"
	"ncache/internal/netbuf"
	"ncache/internal/proto/eth"
	"ncache/internal/sim"
)

// Network is a store-and-forward switch: every NIC attaches to one port
// over a full-duplex link. Forwarding looks up the destination address and
// serializes the frame onto the egress port's downlink. The fabric is
// lossless and preserves per-flow ordering, like the paper's NetGear gigabit
// switch under non-saturating load — unless a fault injector says otherwise.
type Network struct {
	eng     *sim.Engine
	latency sim.Duration
	ports   map[eth.Addr]*port
	dropped uint64
	faults  *fault.Injector
	// faultDropped counts frames the injector discarded at switch
	// downlinks (transmit-side drops land on the NIC's own stats).
	faultDropped uint64
	// legacyIngress disables the registered-receive ownership transfer at
	// delivery, reverting to PR 3's by-reference frames (receivers retain
	// sender-pool buffers). Kept for one release as the differential-test
	// reference; simulated results are bit-identical either way.
	legacyIngress bool
}

// SetLegacyIngress selects the pre-registered-receive delivery path, where
// frames keep their sender's buffer ownership. Differential tests run both
// paths and compare results; default is the registered path.
func (nw *Network) SetLegacyIngress(on bool) { nw.legacyIngress = on }

// LegacyIngress reports whether the legacy by-reference delivery is active.
func (nw *Network) LegacyIngress() bool { return nw.legacyIngress }

// port is the switch side of one attachment: a downlink serializer toward
// the NIC.
type port struct {
	nic  *NIC
	down *sim.Resource
	bw   Bandwidth
}

// NewNetwork returns an empty switch with the given one-way port latency.
func NewNetwork(eng *sim.Engine, latency sim.Duration) *Network {
	return &Network{
		eng:     eng,
		latency: latency,
		ports:   make(map[eth.Addr]*port),
	}
}

// Attach creates a NIC on node, connected to this switch at the given
// address and bandwidth, and returns it. The NIC uses the testbed defaults:
// 1500-byte MTU and checksum offload on.
func (nw *Network) Attach(node *Node, addr eth.Addr, bw Bandwidth) (*NIC, error) {
	if _, exists := nw.ports[addr]; exists {
		return nil, fmt.Errorf("simnet: address %s already attached", addr)
	}
	nic := &NIC{
		Addr:            addr,
		MTU:             netbuf.DefaultBufSize,
		ChecksumOffload: true,
		node:            node,
		net:             nw,
		tx:              sim.NewResource(node.Eng, fmt.Sprintf("%s.%s.tx", node.Name, addr)),
		bw:              bw,
		latency:         nw.latency,
	}
	nic.ring = newRxRing(nic, DefaultRxRingSize)
	nw.ports[addr] = &port{
		nic:  nic,
		down: sim.NewResource(nw.eng, fmt.Sprintf("sw.%s.down", addr)),
		bw:   bw,
	}
	node.nics = append(node.nics, nic)
	return nic, nil
}

// Dropped reports frames discarded for unknown destinations.
func (nw *Network) Dropped() uint64 { return nw.dropped }

// SetFaults installs the fault injector consulted on every frame. Nil (the
// default) disables injection.
func (nw *Network) SetFaults(in *fault.Injector) { nw.faults = in }

// Faults returns the installed injector (nil when faults are off).
func (nw *Network) Faults() *fault.Injector { return nw.faults }

// FaultDropped reports frames the injector discarded at switch downlinks.
func (nw *Network) FaultDropped() uint64 { return nw.faultDropped }

// forward moves a frame from an ingress NIC to its destination port.
func (nw *Network) forward(from *NIC, frame *netbuf.Chain, corrupt bool) {
	hdr, err := eth.Peek(frame)
	if err != nil {
		nw.dropped++
		frame.Release()
		return
	}
	p, ok := nw.ports[hdr.Dst]
	if !ok || p.nic == from {
		nw.dropped++
		frame.Release()
		return
	}
	d := nw.faults.FrameRx(p.nic.node.Name + ".rx")
	if d.Drop {
		nw.faultDropped++
		frame.Release()
		return
	}
	corrupt = corrupt || d.Corrupt
	wire := frame.Len() + FrameOverheadBytes
	p.down.Use(p.bw.serialization(wire), func() {
		nw.eng.Schedule(nw.latency+d.Delay, func() {
			p.nic.deliver(frame, corrupt)
		})
	})
}
