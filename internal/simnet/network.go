package simnet

import (
	"fmt"

	"ncache/internal/fault"
	"ncache/internal/netbuf"
	"ncache/internal/proto/eth"
	"ncache/internal/sim"
)

// Network is a store-and-forward switch: every NIC attaches to one port
// over a full-duplex link. Forwarding looks up the destination address and
// serializes the frame onto the egress port's downlink. The fabric is
// lossless and preserves per-flow ordering, like the paper's NetGear gigabit
// switch under non-saturating load — unless a fault injector says otherwise.
type Network struct {
	eng     *sim.Engine
	latency sim.Duration
	ports   map[eth.Addr]*port
	dropped uint64
	faults  *fault.Injector
	// faultDropped counts frames the injector discarded at switch
	// downlinks (transmit-side drops land on the NIC's own stats).
	faultDropped uint64
	// faultDuped counts extra frame copies the injector created at switch
	// downlinks.
	faultDuped uint64
}

// port is the switch side of one attachment: a downlink serializer toward
// the NIC.
type port struct {
	nic  *NIC
	down *sim.Resource
	bw   Bandwidth
}

// NewNetwork returns an empty switch with the given one-way port latency.
func NewNetwork(eng *sim.Engine, latency sim.Duration) *Network {
	return &Network{
		eng:     eng,
		latency: latency,
		ports:   make(map[eth.Addr]*port),
	}
}

// Attach creates a NIC on node, connected to this switch at the given
// address and bandwidth, and returns it. The NIC uses the testbed defaults:
// 1500-byte MTU and checksum offload on.
func (nw *Network) Attach(node *Node, addr eth.Addr, bw Bandwidth) (*NIC, error) {
	if _, exists := nw.ports[addr]; exists {
		return nil, fmt.Errorf("simnet: address %s already attached", addr)
	}
	nic := &NIC{
		Addr:            addr,
		MTU:             netbuf.DefaultBufSize,
		ChecksumOffload: true,
		node:            node,
		net:             nw,
		tx:              sim.NewResource(node.Eng, fmt.Sprintf("%s.%s.tx", node.Name, addr)),
		bw:              bw,
		latency:         nw.latency,
	}
	nic.ring = newRxRing(nic, DefaultRxRingSize)
	nw.ports[addr] = &port{
		nic:  nic,
		down: sim.NewResource(nw.eng, fmt.Sprintf("sw.%s.down", addr)),
		bw:   bw,
	}
	node.nics = append(node.nics, nic)
	return nic, nil
}

// Dropped reports frames discarded for unknown destinations.
func (nw *Network) Dropped() uint64 { return nw.dropped }

// SetFaults installs the fault injector consulted on every frame. Nil (the
// default) disables injection.
func (nw *Network) SetFaults(in *fault.Injector) { nw.faults = in }

// Faults returns the installed injector (nil when faults are off).
func (nw *Network) Faults() *fault.Injector { return nw.faults }

// FaultDropped reports frames the injector discarded at switch downlinks.
func (nw *Network) FaultDropped() uint64 { return nw.faultDropped }

// FaultDuped reports extra frame copies the injector created at switch
// downlinks.
func (nw *Network) FaultDuped() uint64 { return nw.faultDuped }

// forward moves a frame from an ingress NIC to its destination port.
func (nw *Network) forward(from *NIC, frame *netbuf.Chain, corrupt bool) {
	hdr, err := eth.Peek(frame)
	if err != nil {
		nw.dropped++
		frame.Release()
		return
	}
	p, ok := nw.ports[hdr.Dst]
	if !ok || p.nic == from {
		nw.dropped++
		frame.Release()
		return
	}
	d := nw.faults.FrameRx(p.nic.node.Name + ".rx")
	if d.Drop {
		nw.faultDropped++
		frame.Release()
		return
	}
	corrupt = corrupt || d.Corrupt
	wire := frame.Len() + FrameOverheadBytes
	p.down.Use(p.bw.serialization(wire), func() {
		nw.eng.Schedule(nw.latency+d.Delay, func() {
			p.nic.deliver(frame, corrupt)
		})
	})
	if d.Dup {
		// Injected duplicate at the downlink: a by-reference copy clocked
		// after the original.
		dup := frame.Clone()
		nw.faultDuped++
		p.down.Use(p.bw.serialization(wire), func() {
			nw.eng.Schedule(nw.latency, func() {
				p.nic.deliver(dup, corrupt)
			})
		})
	}
}
