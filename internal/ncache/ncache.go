// Package ncache implements the paper's contribution: the network-centric
// buffer cache. Payloads that pass through the server are kept in their
// network-ready form (chains of the original wire buffers) and indexed two
// ways:
//
//   - the LBN cache holds data that arrived as iSCSI read responses,
//     keyed by storage logical block number (§3.4);
//   - the FHO cache holds data that arrived as NFS write requests,
//     keyed by file handle + offset.
//
// Upper layers see only key-carrying junk blocks (package lkey) and move
// them with logical copies. The module's three hooks sit exactly where
// Table 1 puts the kernel modifications:
//
//   - CaptureLBN — the iSCSI initiator's receive path;
//   - CaptureFHO — the NFS server's write-request receive path;
//   - SubstituteMessage — the transmit path of outgoing replies;
//   - WriteOut — the iSCSI initiator's transmit path, where dirty
//     file-system buffers flush and FHO entries remap to LBN entries.
//
// Entries are managed LRU with the paper's policy: clean chunks are
// reclaimed from the cold end first; dirty FHO chunks are pinned until the
// file system's own flush remaps them (the paper sizes the FS cache small so
// this always happens before NCache needs the space).
package ncache

import (
	"container/list"

	"ncache/internal/lkey"
	"ncache/internal/netbuf"
	"ncache/internal/sim"
	"ncache/internal/simnet"
	"ncache/internal/trace"
)

// EntryOverheadBytes models the per-entry metadata footprint (hash links,
// LRU links, buffer descriptors). It is what shrinks the effective cache at
// large working sets in Figure 6(a).
const EntryOverheadBytes = 512

// Config sizes and tunes a module.
type Config struct {
	// CapacityBytes bounds payload + metadata held by the cache.
	CapacityBytes int64
	// BlockSize is the file-system block size entries are split into.
	BlockSize int
	// DisableRemap turns off FHO→LBN remapping (ablation: flushes then
	// evict FHO entries instead of re-indexing them).
	DisableRemap bool
}

// Stats counts module activity.
type Stats struct {
	Captures      uint64 // blocks captured into the cache
	LBNHits       uint64
	FHOHits       uint64
	SubstMisses   uint64 // stamped blocks with no cache entry (junk passes)
	Remaps        uint64
	Evictions     uint64
	PinnedSkips   uint64 // eviction passes blocked by dirty FHO entries
	Substitutions uint64
	// SubstBufs counts wire buffers spliced by substitutions (the unit
	// the driver-hook cost scales with).
	SubstBufs uint64
	// L2Hits/L2Misses count file-system cache misses served (or not)
	// directly from the network-centric cache without storage traffic —
	// the second-level-cache role of §3.4.
	L2Hits   uint64
	L2Misses uint64
}

// entry is one cached block.
type entry struct {
	key     lkey.Key
	chain   *netbuf.Chain
	partial netbuf.Partial // inherited payload checksum
	dirty   bool
	bytes   int
	elem    *list.Element
}

type fhoKey struct {
	fh  lkey.FH
	off uint64
}

// Module is one node's network-centric cache.
type Module struct {
	node *simnet.Node
	cfg  Config

	lbn  map[int64]*entry
	fho  map[fhoKey]*entry
	lru  *list.List // front = most recent
	used int64

	// remapObserver, when set, receives the LBNs WriteOut re-indexed in
	// one flush — the control-plane agent stages them there so peer
	// servers can be told to invalidate their stale copies.
	remapObserver func([]int64)

	// Stats is the module's activity counters.
	Stats Stats
}

// New creates a module on a node.
func New(node *simnet.Node, cfg Config) *Module {
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 4096
	}
	return &Module{
		node: node,
		cfg:  cfg,
		lbn:  make(map[int64]*entry),
		fho:  make(map[fhoKey]*entry),
		lru:  list.New(),
	}
}

// UsedBytes reports current occupancy (payload + metadata overhead).
func (m *Module) UsedBytes() int64 { return m.used }

// Len reports the number of cached entries.
func (m *Module) Len() int { return m.lru.Len() }

// chargeLookup bills one hash operation.
func (m *Module) chargeLookup() {
	trace.Account(m.node.Eng, trace.LNCache, m.node.Cost.NCacheLookupNs)
	m.node.Charge(m.node.Cost.NCacheLookupNs, nil)
}

// chargeMgmt bills per-block cache management (insert/evict/LRU).
func (m *Module) chargeMgmt(blocks int) {
	cost := sim.Duration(blocks) * m.node.Cost.NCacheMgmtNs
	trace.Account(m.node.Eng, trace.LNCache, cost)
	m.node.Charge(cost, nil)
}

// touch moves an entry to the hot end.
func (m *Module) touch(e *entry) { m.lru.MoveToFront(e.elem) }

// insert adds an entry, evicting as needed.
func (m *Module) insert(e *entry) {
	e.elem = m.lru.PushFront(e)
	m.used += int64(e.bytes + EntryOverheadBytes)
	m.index(e)
	m.evict()
}

// index registers an entry under all identities its key carries.
func (m *Module) index(e *entry) {
	if e.key.Flags&lkey.HasLBN != 0 {
		m.lbn[e.key.LBN] = e
	}
	if e.key.Flags&lkey.HasFHO != 0 {
		m.fho[fhoKey{fh: e.key.FH, off: e.key.Off}] = e
	}
}

// unindex removes an entry from all identity maps.
func (m *Module) unindex(e *entry) {
	if e.key.Flags&lkey.HasLBN != 0 && m.lbn[e.key.LBN] == e {
		delete(m.lbn, e.key.LBN)
	}
	if e.key.Flags&lkey.HasFHO != 0 {
		k := fhoKey{fh: e.key.FH, off: e.key.Off}
		if m.fho[k] == e {
			delete(m.fho, k)
		}
	}
}

// remove drops an entry entirely.
func (m *Module) remove(e *entry) {
	m.unindex(e)
	if e.elem != nil {
		m.lru.Remove(e.elem)
		e.elem = nil
	}
	m.used -= int64(e.bytes + EntryOverheadBytes)
	e.chain.Release()
}

// evict reclaims cold entries until occupancy fits capacity. Dirty entries
// (unremapped FHO data — the only copy of client writes) are pinned.
func (m *Module) evict() {
	if m.cfg.CapacityBytes <= 0 {
		return
	}
	e := m.lru.Back()
	for e != nil && m.used > m.cfg.CapacityBytes {
		ent, ok := e.Value.(*entry)
		prev := e.Prev()
		if !ok {
			e = prev
			continue
		}
		if ent.dirty {
			m.Stats.PinnedSkips++
			e = prev
			continue
		}
		m.Stats.Evictions++
		m.remove(ent)
		e = prev
	}
}

// CaptureLBN is the iSCSI read hook: it captures the payload of a completed
// regular-data READ into the LBN cache, block by block, and returns the
// key-carrying junk the upper layers cache instead. Payload bytes are not
// copied — the entries hold clones of the wire buffers, which on the
// registered-receive path are this node's own RxPool buffers (adopted at
// NIC delivery), so the arriving payload buffer, the cached buffer, and the
// buffer later cloned onto the wire by SubstituteMessage are the same
// physical memory. The hook takes ownership of data and releases it; the
// cache owns the captured sub-chains until eviction.
func (m *Module) CaptureLBN(lba int64, blocks int, data *netbuf.Chain) *netbuf.Chain {
	if blocks <= 0 || data.Len() < blocks*m.cfg.BlockSize {
		return data
	}
	out := netbuf.NewChain()
	for i := 0; i < blocks; i++ {
		sub, err := data.Slice(i*m.cfg.BlockSize, m.cfg.BlockSize)
		if err != nil {
			sub = netbuf.NewChain()
		}
		key := lkey.ForLBN(lba + int64(i))
		m.storeLBN(key, sub, false)
		out.AppendChain(lkey.StampChainPool(m.node.BlkPool, key, m.cfg.BlockSize))
	}
	m.chargeMgmt(blocks)
	data.Release()
	return out
}

// storeLBN installs (or refreshes) an LBN entry.
func (m *Module) storeLBN(key lkey.Key, chain *netbuf.Chain, dirty bool) {
	if old, ok := m.lbn[key.LBN]; ok {
		m.remove(old)
	}
	chain.SetOwner("ncache.lbn")
	e := &entry{
		key:     key,
		chain:   chain,
		partial: netbuf.PartialOfChain(chain),
		dirty:   dirty,
		bytes:   chain.Len(),
	}
	m.Stats.Captures++
	m.insert(e)
}

// CaptureFHO is the NFS write-request hook: it captures a block-aligned
// write payload into the FHO cache and returns stamped junk for the file
// system to cache. Non-block-aligned payloads pass through untouched (the
// caller falls back to physical copying, as the paper's small-request path
// does).
func (m *Module) CaptureFHO(fh lkey.FH, off uint64, data *netbuf.Chain) *netbuf.Chain {
	bs := m.cfg.BlockSize
	n := data.Len()
	if n == 0 || n%bs != 0 || off%uint64(bs) != 0 {
		return data
	}
	blocks := n / bs
	out := netbuf.NewChain()
	for i := 0; i < blocks; i++ {
		sub, err := data.Slice(i*bs, bs)
		if err != nil {
			sub = netbuf.NewChain()
		}
		key := lkey.ForFHO(fh, off+uint64(i*bs))
		k := fhoKey{fh: fh, off: key.Off}
		if old, ok := m.fho[k]; ok {
			// Overwrite in place: client rewrote the block before it
			// was flushed (the Table 2 "overwritten" case).
			m.remove(old)
		}
		sub.SetOwner("ncache.fho")
		e := &entry{
			key:     key,
			chain:   sub,
			partial: netbuf.PartialOfChain(sub),
			dirty:   true,
			bytes:   sub.Len(),
		}
		m.Stats.Captures++
		m.insert(e)
		out.AppendChain(lkey.StampChainPool(m.node.BlkPool, key, bs))
	}
	m.chargeMgmt(blocks)
	data.Release()
	return out
}

// lookup finds the freshest entry for a key: FHO first (client writes are
// always newer), then LBN (§3.4).
func (m *Module) lookup(key lkey.Key) *entry {
	if key.Flags&lkey.HasFHO != 0 {
		if e, ok := m.fho[fhoKey{fh: key.FH, off: key.Off}]; ok {
			m.Stats.FHOHits++
			return e
		}
	}
	if key.Flags&lkey.HasLBN != 0 {
		if e, ok := m.lbn[key.LBN]; ok {
			m.Stats.LBNHits++
			return e
		}
	}
	return nil
}

// SubstituteMessage is the transmit hook: it scans an outgoing message for
// stamped junk blocks and splices in clones of the cached payloads. Blocks
// whose entries are gone (or baseline junk with no identities) pass through
// unchanged. The module owns the input chain and returns the chain to send.
func (m *Module) SubstituteMessage(payload *netbuf.Chain) *netbuf.Chain {
	out := netbuf.NewChain()
	substituted := 0
	clonedBufs := 0
	// Checksum inheritance (§1): compose the output's transport-checksum
	// partial from the per-entry partials captured at receive time, so a
	// software-checksum transmit path never re-walks substituted payload.
	// Composition needs 16-bit alignment; block payloads keep it.
	var ck netbuf.Partial
	even := true
	addWalked := func(p []byte) {
		ck.AddBytes(p)
		if len(p)%2 == 1 {
			even = !even
		}
	}
	for _, b := range payload.Bufs() {
		key, ok := lkey.Parse(b.Bytes())
		if !ok || key.Flags == 0 {
			addWalked(b.Bytes())
			out.Append(b)
			continue
		}
		m.chargeLookup()
		e := m.lookup(key)
		if e == nil {
			m.Stats.SubstMisses++
			out.Append(b)
			continue
		}
		m.touch(e)
		// Splice in clones of the cached wire buffers, honoring the
		// key's sub-block offset (unaligned reads); pad to the junk
		// block's length so message framing is preserved.
		want := b.Len()
		var cl *netbuf.Chain
		avail := e.chain.Len() - int(key.SubOff)
		take := want
		if take > avail {
			take = avail
		}
		if take < 0 {
			take = 0
		}
		if key.SubOff == 0 && take == e.chain.Len() {
			cl = e.chain.Clone()
		} else {
			var err error
			cl, err = e.chain.Slice(int(key.SubOff), take)
			if err != nil {
				cl = netbuf.NewChain()
			}
		}
		clonedBufs += cl.NumBufs()
		clLen := cl.Len()
		if even && key.SubOff == 0 && take == e.chain.Len() {
			// Whole-entry splice at even offset: inherit the stored
			// partial without touching payload bytes.
			ck = netbuf.Combine(ck, e.partial)
			if take%2 == 1 {
				even = !even
			}
		} else {
			for _, cb := range cl.Bufs() {
				addWalked(cb.Bytes())
			}
		}
		out.AppendChain(cl)
		if short := want - clLen; short > 0 {
			var pb *netbuf.Buf
			if short <= m.node.BlkPool.BufSize() {
				if zb, perr := m.node.BlkPool.Get(); perr == nil {
					pb = zb
				}
			}
			if pb == nil {
				pb = netbuf.New(0, short)
			}
			_ = pb.Put(short)
			addWalked(pb.Bytes())
			out.Append(pb)
		}
		b.Release()
		substituted++
	}
	if substituted > 0 {
		m.Stats.Substitutions += uint64(substituted)
		m.Stats.SubstBufs += uint64(clonedBufs)
		m.node.Copies.Substitutions += uint64(substituted)
		// The substitution cost scales with the wire buffers spliced —
		// the driver-level hook touches every outgoing packet.
		m.node.Charge(sim.Duration(clonedBufs)*m.node.Cost.NCacheSubstNs, nil)
		out.SetPartial(ck)
	}
	return out
}

// WriteOut is the iSCSI write hook: when the file system flushes a dirty
// buffer, the outgoing payload is stamped junk. The module substitutes the
// real cached data and — for FHO entries — performs the remap: the entry is
// re-indexed under its now-known LBN, replacing any stale LBN entry, and
// marked clean (the write carrying its data is on its way to storage).
func (m *Module) WriteOut(lba int64, blocks int, data *netbuf.Chain) *netbuf.Chain {
	bs := m.cfg.BlockSize
	if data.Len() != blocks*bs {
		return data
	}
	out := netbuf.NewChain()
	touched := 0
	var remapped []int64
	for i := 0; i < blocks; i++ {
		sub, err := data.Slice(i*bs, bs)
		if err != nil {
			sub = netbuf.NewChain()
		}
		key, isKey := lkey.FromChain(sub)
		if !isKey || key.Flags == 0 {
			out.AppendChain(sub)
			continue
		}
		m.chargeLookup()
		e := m.lookup(key)
		if e == nil {
			m.Stats.SubstMisses++
			out.AppendChain(sub)
			continue
		}
		touched++
		blockLBN := lba + int64(i)
		if e.key.Flags&lkey.HasFHO != 0 && e.dirty {
			if m.cfg.DisableRemap {
				// Ablation: flush the data but drop the entry.
				out.AppendChain(e.chain.Clone())
				e.dirty = false
				m.remove(e)
				sub.Release()
				continue
			}
			// Remap FHO → LBN (§3.4): newer FHO data replaces any
			// stale LBN entry.
			m.unindex(e)
			e.key = e.key.WithLBN(blockLBN)
			e.key.Flags |= lkey.HasFHO
			if old, ok := m.lbn[blockLBN]; ok && old != e {
				m.remove(old)
			}
			e.dirty = false
			m.index(e)
			m.Stats.Remaps++
			m.node.Copies.Remaps++
			remapped = append(remapped, blockLBN)
		}
		m.touch(e)
		out.AppendChain(e.chain.Clone())
		sub.Release()
	}
	if touched > 0 {
		m.node.Charge(sim.Duration(touched)*m.node.Cost.NCacheSubstNs, nil)
		m.node.Copies.Substitutions += uint64(touched)
	}
	if len(remapped) > 0 && m.remapObserver != nil {
		m.remapObserver(remapped)
	}
	data.Release()
	m.evict()
	return out
}

// SetRemapObserver installs the per-flush remap notification hook.
func (m *Module) SetRemapObserver(fn func([]int64)) { m.remapObserver = fn }

// ServeRead attempts to satisfy a block-read entirely from the LBN cache —
// the second-level-cache role (§3.4): a file-system buffer-cache miss whose
// blocks are all resident costs hash lookups and key copies, not an iSCSI
// round trip. It returns stamped junk (what the buffer cache stores) and
// true on a full hit; partial hits are treated as misses.
func (m *Module) ServeRead(lba int64, blocks int) (*netbuf.Chain, bool) {
	if blocks <= 0 {
		return nil, false
	}
	entries := make([]*entry, blocks)
	for i := 0; i < blocks; i++ {
		e, ok := m.lbn[lba+int64(i)]
		if !ok {
			m.Stats.L2Misses++
			m.node.Charge(m.node.Cost.NCacheLookupNs, nil)
			return nil, false
		}
		entries[i] = e
	}
	out := netbuf.NewChain()
	for i, e := range entries {
		m.touch(e)
		out.AppendChain(lkey.StampChainPool(m.node.BlkPool, lkey.ForLBN(lba+int64(i)), m.cfg.BlockSize))
	}
	m.Stats.L2Hits += uint64(blocks)
	m.Stats.LBNHits += uint64(blocks)
	m.node.Charge(sim.Duration(blocks)*m.node.Cost.NCacheLookupNs, nil)
	return out, true
}

// Materialize copies a cached entry's payload into dst (a physical copy the
// caller charges), used when a logical block must become real again — e.g.
// a partial overwrite of a key-carrying buffer. It reports whether the
// entry was found.
func (m *Module) Materialize(key lkey.Key, dst []byte) bool {
	e := m.lookup(key)
	if e == nil {
		return false
	}
	m.touch(e)
	e.chain.Gather(dst)
	return true
}

// InvalidateLBN drops an LBN entry (file deletion / block reuse).
func (m *Module) InvalidateLBN(lbn int64) {
	if e, ok := m.lbn[lbn]; ok && !e.dirty {
		m.remove(e)
	}
}

// DropClean releases every clean entry, returning the buffers the cache
// pins back to their pools (shutdown, or a full invalidation). Dirty FHO
// entries — the only copy of unflushed client writes — stay. Returns the
// number of entries dropped.
func (m *Module) DropClean() int {
	dropped := 0
	e := m.lru.Back()
	for e != nil {
		prev := e.Prev()
		if ent, ok := e.Value.(*entry); ok && !ent.dirty {
			m.remove(ent)
			dropped++
		}
		e = prev
	}
	return dropped
}

// Reset models a node crash: every entry — dirty FHO data included — is
// released back to its pool. Durability for acknowledged writes is the
// write-ahead log's job, not the cache's; restart replay rewrites their
// blocks from the journal.
func (m *Module) Reset() {
	e := m.lru.Back()
	for e != nil {
		prev := e.Prev()
		if ent, ok := e.Value.(*entry); ok {
			m.remove(ent)
		}
		e = prev
	}
}

// PinnedBytes reports bytes held by dirty (unremapped) FHO entries.
func (m *Module) PinnedBytes() int64 {
	var n int64
	for _, e := range m.fho { // det: commutative (sum)
		if e.dirty {
			n += int64(e.bytes + EntryOverheadBytes)
		}
	}
	return n
}
