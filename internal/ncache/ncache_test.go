package ncache

import (
	"bytes"
	"testing"

	"ncache/internal/lkey"
	"ncache/internal/netbuf"
	"ncache/internal/sim"
	"ncache/internal/simnet"
)

const bs = 4096

func newModule(t *testing.T, capacity int64) (*sim.Engine, *simnet.Node, *Module) {
	t.Helper()
	eng := sim.NewEngine()
	node := simnet.NewNode(eng, "app", simnet.DefaultProfile())
	m := New(node, Config{CapacityBytes: capacity, BlockSize: bs})
	return eng, node, m
}

// blockData builds deterministic block content.
func blockData(tag byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = tag ^ byte(i*7)
	}
	return out
}

func TestCaptureLBNReturnsStampedJunk(t *testing.T) {
	eng, node, m := newModule(t, 1<<20)
	payload := append(blockData(1, bs), blockData(2, bs)...)
	wire := netbuf.ChainFromBytes(payload, netbuf.DefaultBufSize)
	before := node.Copies.PhysicalOps

	junk := m.CaptureLBN(100, 2, wire)
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if junk.Len() != 2*bs {
		t.Fatalf("junk len = %d", junk.Len())
	}
	k1, ok := lkey.FromChain(junk)
	if !ok || k1.LBN != 100 {
		t.Fatalf("first key = %+v ok=%v", k1, ok)
	}
	second, err := junk.Slice(bs, bs)
	if err != nil {
		t.Fatal(err)
	}
	k2, ok := lkey.FromChain(second)
	if !ok || k2.LBN != 101 {
		t.Fatalf("second key = %+v", k2)
	}
	if node.Copies.PhysicalOps != before {
		t.Fatal("capture physically copied payload")
	}
	if m.Len() != 2 || m.Stats.Captures != 2 {
		t.Fatalf("entries=%d captures=%d", m.Len(), m.Stats.Captures)
	}
}

func TestSubstituteMessageRestoresPayload(t *testing.T) {
	eng, _, m := newModule(t, 1<<20)
	want := blockData(7, bs)
	m.CaptureLBN(55, 1, netbuf.ChainFromBytes(want, netbuf.DefaultBufSize))

	// Compose a "reply": header bytes + one stamped junk block.
	hdr := netbuf.FromBytes([]byte("RPCHDR"))
	msg := netbuf.ChainOf(hdr)
	for _, b := range lkey.StampChain(lkey.ForLBN(55), bs).Bufs() {
		msg.Append(b)
	}
	out := m.SubstituteMessage(msg)
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	flat := out.Flatten()
	if string(flat[:6]) != "RPCHDR" {
		t.Fatal("header damaged")
	}
	if !bytes.Equal(flat[6:], want) {
		t.Fatal("substitution did not restore payload")
	}
	if m.Stats.Substitutions != 1 || m.Stats.LBNHits != 1 {
		t.Fatalf("stats = %+v", m.Stats)
	}
}

func TestSubstituteMissPassesJunkThrough(t *testing.T) {
	eng, _, m := newModule(t, 1<<20)
	msg := lkey.StampChain(lkey.ForLBN(999), bs)
	out := m.SubstituteMessage(msg)
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.Len() != bs {
		t.Fatalf("len = %d", out.Len())
	}
	if m.Stats.SubstMisses != 1 {
		t.Fatalf("misses = %d", m.Stats.SubstMisses)
	}
	// Baseline junk (no identities) is not even looked up.
	out2 := m.SubstituteMessage(lkey.StampChain(lkey.Key{}, bs))
	if out2.Len() != bs || m.Stats.SubstMisses != 1 {
		t.Fatal("baseline junk should pass through without a miss")
	}
}

func TestFHOCaptureAndFreshnessOverLBN(t *testing.T) {
	eng, _, m := newModule(t, 1<<20)
	stale := blockData(1, bs)
	fresh := blockData(2, bs)
	fh := lkey.FH{9}

	// Old disk content in the LBN cache.
	m.CaptureLBN(300, 1, netbuf.ChainFromBytes(stale, netbuf.DefaultBufSize))
	// Client writes new content → FHO cache.
	junk := m.CaptureFHO(fh, 8192, netbuf.ChainFromBytes(fresh, netbuf.DefaultBufSize))
	if _, ok := lkey.FromChain(junk); !ok {
		t.Fatal("FHO capture did not stamp")
	}

	// A read reply whose block carries both identities must resolve FHO
	// first (§3.4: clients always see the newest data).
	key := lkey.ForFHO(fh, 8192).WithLBN(300)
	out := m.SubstituteMessage(lkey.StampChain(key, bs))
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !bytes.Equal(out.Flatten(), fresh) {
		t.Fatal("substitution served stale LBN data over fresh FHO data")
	}
	if m.Stats.FHOHits != 1 {
		t.Fatalf("stats = %+v", m.Stats)
	}
}

func TestWriteOutRemapsFHOToLBN(t *testing.T) {
	eng, _, m := newModule(t, 1<<20)
	fh := lkey.FH{3}
	data := blockData(9, bs)
	m.CaptureFHO(fh, 0, netbuf.ChainFromBytes(data, netbuf.DefaultBufSize))
	if m.PinnedBytes() == 0 {
		t.Fatal("dirty FHO entry not pinned")
	}

	// The file system flushes: stamped junk goes down the iSCSI write
	// path; the hook must substitute real data and remap.
	flush := lkey.StampChain(lkey.ForFHO(fh, 0), bs)
	wire := m.WriteOut(700, 1, flush)
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !bytes.Equal(wire.Flatten(), data) {
		t.Fatal("flush payload not substituted with real data")
	}
	if m.Stats.Remaps != 1 {
		t.Fatalf("remaps = %d", m.Stats.Remaps)
	}
	if m.PinnedBytes() != 0 {
		t.Fatal("entry still pinned after remap")
	}

	// The data is now reachable under its LBN.
	out := m.SubstituteMessage(lkey.StampChain(lkey.ForLBN(700), bs))
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !bytes.Equal(out.Flatten(), data) {
		t.Fatal("remapped entry not reachable by LBN")
	}
	// And the FHO index no longer holds it separately (moved, not copied).
	if m.Len() != 1 {
		t.Fatalf("entries = %d, want 1", m.Len())
	}
}

func TestRemapOverwritesStaleLBNEntry(t *testing.T) {
	eng, _, m := newModule(t, 1<<20)
	stale := blockData(1, bs)
	fresh := blockData(2, bs)
	fh := lkey.FH{4}
	m.CaptureLBN(800, 1, netbuf.ChainFromBytes(stale, netbuf.DefaultBufSize))
	m.CaptureFHO(fh, 0, netbuf.ChainFromBytes(fresh, netbuf.DefaultBufSize))
	m.WriteOut(800, 1, lkey.StampChain(lkey.ForFHO(fh, 0), bs))
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := m.SubstituteMessage(lkey.StampChain(lkey.ForLBN(800), bs))
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !bytes.Equal(out.Flatten(), fresh) {
		t.Fatal("stale LBN entry survived remap")
	}
	if m.Len() != 1 {
		t.Fatalf("entries = %d, want 1 (stale entry dropped)", m.Len())
	}
}

func TestLRUEvictionSkipsDirty(t *testing.T) {
	// Capacity for ~4 blocks incl. overhead.
	eng, _, m := newModule(t, int64(4*(bs+EntryOverheadBytes)))
	fh := lkey.FH{1}
	// One dirty FHO entry.
	m.CaptureFHO(fh, 0, netbuf.ChainFromBytes(blockData(0, bs), netbuf.DefaultBufSize))
	// Flood with clean LBN entries.
	for i := int64(0); i < 10; i++ {
		m.CaptureLBN(1000+i, 1, netbuf.ChainFromBytes(blockData(byte(i), bs), netbuf.DefaultBufSize))
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Stats.Evictions == 0 {
		t.Fatal("no evictions under pressure")
	}
	if m.UsedBytes() > int64(4*(bs+EntryOverheadBytes))+int64(bs+EntryOverheadBytes) {
		t.Fatalf("used = %d exceeds capacity + one pinned", m.UsedBytes())
	}
	// The dirty FHO entry survived.
	out := m.SubstituteMessage(lkey.StampChain(lkey.ForFHO(fh, 0), bs))
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !bytes.Equal(out.Flatten(), blockData(0, bs)) {
		t.Fatal("dirty FHO entry was evicted")
	}
	// The hottest (most recent) LBN entry also survived; the coldest died.
	m.Stats.SubstMisses = 0
	m.SubstituteMessage(lkey.StampChain(lkey.ForLBN(1009), bs))
	if m.Stats.SubstMisses != 0 {
		t.Fatal("MRU entry evicted before LRU")
	}
	m.SubstituteMessage(lkey.StampChain(lkey.ForLBN(1000), bs))
	if m.Stats.SubstMisses != 1 {
		t.Fatal("LRU entry not evicted first")
	}
}

func TestOverwriteBeforeFlush(t *testing.T) {
	// The Table 2 "overwritten" case: a second write to the same FHO
	// replaces the first entry without any flush.
	eng, _, m := newModule(t, 1<<20)
	fh := lkey.FH{2}
	m.CaptureFHO(fh, 0, netbuf.ChainFromBytes(blockData(1, bs), netbuf.DefaultBufSize))
	m.CaptureFHO(fh, 0, netbuf.ChainFromBytes(blockData(2, bs), netbuf.DefaultBufSize))
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Len() != 1 {
		t.Fatalf("entries = %d, want 1", m.Len())
	}
	out := m.SubstituteMessage(lkey.StampChain(lkey.ForFHO(fh, 0), bs))
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !bytes.Equal(out.Flatten(), blockData(2, bs)) {
		t.Fatal("overwrite did not replace FHO entry")
	}
}

func TestUnalignedFHOPassesThrough(t *testing.T) {
	_, _, m := newModule(t, 1<<20)
	odd := netbuf.ChainFromBytes(make([]byte, 1000), netbuf.DefaultBufSize)
	out := m.CaptureFHO(lkey.FH{}, 0, odd)
	if out != odd {
		t.Fatal("unaligned payload should pass through uncached")
	}
	if m.Len() != 0 {
		t.Fatal("unaligned payload was cached")
	}
}

func TestDisableRemapAblation(t *testing.T) {
	eng := sim.NewEngine()
	node := simnet.NewNode(eng, "app", simnet.DefaultProfile())
	m := New(node, Config{CapacityBytes: 1 << 20, BlockSize: bs, DisableRemap: true})
	fh := lkey.FH{8}
	data := blockData(5, bs)
	m.CaptureFHO(fh, 0, netbuf.ChainFromBytes(data, netbuf.DefaultBufSize))
	wire := m.WriteOut(50, 1, lkey.StampChain(lkey.ForFHO(fh, 0), bs))
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !bytes.Equal(wire.Flatten(), data) {
		t.Fatal("flush data lost with remap disabled")
	}
	if m.Len() != 0 {
		t.Fatal("entry should be dropped when remap is disabled")
	}
	if m.Stats.Remaps != 0 {
		t.Fatal("remap counted despite ablation")
	}
}

func TestInvalidateLBN(t *testing.T) {
	eng, _, m := newModule(t, 1<<20)
	m.CaptureLBN(10, 1, netbuf.ChainFromBytes(blockData(1, bs), netbuf.DefaultBufSize))
	m.InvalidateLBN(10)
	out := m.SubstituteMessage(lkey.StampChain(lkey.ForLBN(10), bs))
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	_ = out
	if m.Stats.SubstMisses != 1 {
		t.Fatal("invalidated entry still served")
	}
}

func TestChecksumInheritanceStored(t *testing.T) {
	_, _, m := newModule(t, 1<<20)
	data := blockData(3, bs)
	m.CaptureLBN(20, 1, netbuf.ChainFromBytes(data, netbuf.DefaultBufSize))
	e := m.lbn[20]
	if e.partial.Checksum() != netbuf.Sum(data) {
		t.Fatal("inherited checksum does not match payload")
	}
}
