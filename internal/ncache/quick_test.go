package ncache

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"ncache/internal/lkey"
	"ncache/internal/netbuf"
)

// The remap property tests drive random interleavings of the four cache
// hooks against a reference model and check the paper's freshness invariant
// (§3.4): a substitution may serve cached bytes or miss, but it must never
// serve data older than the newest write — in particular, while a dirty FHO
// entry exists for a block, every read of that block returns the FHO bytes,
// no matter what stale disk content the LBN cache has absorbed meanwhile.

// remapModel is the reference state the module is checked against.
type remapModel struct {
	fho  map[lkey.Key][]byte // dirty FHO entries (pinned, must always hit)
	lbn  map[int64][]byte    // what the LBN cache holds, if it holds the block
	disk map[int64][]byte    // what storage holds (updated when a flush departs)
}

// fhoKeySpace is the small key pool random ops draw from: 4 files × 4
// block-aligned offsets, each with a fixed flush destination.
const (
	modelFiles   = 4
	modelOffsets = 4
)

func modelKey(file, slot int) (lkey.FH, uint64, int64) {
	fh := lkey.FH{byte(file + 1)}
	off := uint64(slot) * bs
	lbn := int64(1000 + file*modelOffsets + slot)
	return fh, off, lbn
}

// runRemapModel replays nOps random hook invocations derived from seed and
// reports the first invariant violation. Capacity is a parameter so the
// property can be checked both without eviction and under pressure (dirty
// entries are pinned, so freshness must survive eviction of clean ones).
func runRemapModel(t *testing.T, seed int64, nOps int, capacity int64) bool {
	t.Helper()
	eng, _, m := newModule(t, capacity)
	rng := rand.New(rand.NewSource(seed))
	model := remapModel{
		fho:  make(map[lkey.Key][]byte),
		lbn:  make(map[int64][]byte),
		disk: make(map[int64][]byte),
	}
	version := 0
	content := func() []byte {
		version++
		return blockData(byte(version), bs)
	}
	for _, slot := range []int{0, 1, 2, 3} {
		for f := 0; f < modelFiles; f++ {
			_, _, lbn := modelKey(f, slot)
			model.disk[lbn] = content()
		}
	}

	// substitute runs one transmit-path lookup and checks the result
	// against the model; stats deltas tell a hit from a junk pass-through.
	substitute := func(key lkey.Key, wantFresh []byte, mustHit bool) bool {
		hits := m.Stats.LBNHits + m.Stats.FHOHits
		misses := m.Stats.SubstMisses
		out := m.SubstituteMessage(lkey.StampChain(key, bs))
		if err := eng.Run(); err != nil {
			t.Logf("seed %d: engine: %v", seed, err)
			return false
		}
		hit := m.Stats.LBNHits+m.Stats.FHOHits > hits
		if !hit {
			if mustHit {
				t.Logf("seed %d: dirty FHO key %+v missed (pinned entry lost)", seed, key)
				return false
			}
			if m.Stats.SubstMisses == misses {
				t.Logf("seed %d: key %+v neither hit nor missed", seed, key)
				return false
			}
			return true
		}
		if !bytes.Equal(out.Flatten(), wantFresh) {
			t.Logf("seed %d: key %+v served stale bytes", seed, key)
			return false
		}
		return true
	}

	for i := 0; i < nOps; i++ {
		file := rng.Intn(modelFiles)
		slot := rng.Intn(modelOffsets)
		fh, off, lbn := modelKey(file, slot)
		fkey := lkey.ForFHO(fh, off)
		switch rng.Intn(5) {
		case 0: // client write → FHO capture (overwrites any prior dirty data)
			data := content()
			junk := m.CaptureFHO(fh, off, netbuf.ChainFromBytes(data, netbuf.DefaultBufSize))
			if _, ok := lkey.FromChain(junk); !ok {
				t.Logf("seed %d: aligned FHO capture not stamped", seed)
				return false
			}
			model.fho[fkey] = data
		case 1: // file-system flush → WriteOut remaps FHO under its LBN
			data, dirty := model.fho[fkey]
			if !dirty {
				continue
			}
			wire := m.WriteOut(lbn, 1, lkey.StampChain(fkey, bs))
			if !bytes.Equal(wire.Flatten(), data) {
				t.Logf("seed %d: flush of %+v substituted wrong bytes", seed, fkey)
				return false
			}
			delete(model.fho, fkey)
			model.lbn[lbn] = data
			model.disk[lbn] = data
		case 2: // iSCSI read response → LBN capture of current disk content
			data := model.disk[lbn]
			m.CaptureLBN(lbn, 1, netbuf.ChainFromBytes(data, netbuf.DefaultBufSize))
			model.lbn[lbn] = data
		case 3: // read of a block carrying both identities (the §3.4 case)
			if data, dirty := model.fho[fkey]; dirty {
				// Freshness: the dirty FHO bytes win over any LBN entry.
				if !substitute(fkey.WithLBN(lbn), data, true) {
					return false
				}
			} else if data, ok := model.lbn[lbn]; ok {
				if !substitute(fkey.WithLBN(lbn), data, false) {
					return false
				}
			} else if !substitute(fkey.WithLBN(lbn), nil, false) {
				return false
			}
		case 4: // plain LBN read (second-level-cache path)
			if data, ok := model.lbn[lbn]; ok {
				if !substitute(lkey.ForLBN(lbn), data, false) {
					return false
				}
			} else if !substitute(lkey.ForLBN(lbn), nil, false) {
				return false
			}
		}
		if err := eng.Run(); err != nil {
			t.Logf("seed %d: engine: %v", seed, err)
			return false
		}
	}

	// Closing sweep: every surviving dirty entry must still serve its bytes.
	for key, data := range model.fho {
		_, _, lbn := modelKey(int(key.FH[0])-1, int(key.Off/bs))
		if !substitute(key.WithLBN(lbn), data, true) {
			return false
		}
	}
	return true
}

// TestQuickRemapFreshness checks the freshness invariant over random op
// sequences with ample capacity (no eviction in play).
func TestQuickRemapFreshness(t *testing.T) {
	f := func(seed int64) bool {
		return runRemapModel(t, seed, 80, 1<<24)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRemapFreshnessUnderPressure re-checks with room for only ~6
// blocks: clean LBN entries get evicted (misses are legal), but dirty FHO
// entries are pinned, so the never-stale guarantee must hold regardless.
func TestQuickRemapFreshnessUnderPressure(t *testing.T) {
	f := func(seed int64) bool {
		return runRemapModel(t, seed, 80, int64(6*(bs+EntryOverheadBytes)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
