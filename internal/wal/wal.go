// Package wal is the write-ahead log of the asynchronous write-back
// pipeline: a logical redo journal of NFS WRITE intent, group-committed on
// a simulated log device before the client's reply is released.
//
// The log is record-per-write, not record-per-block: one Record carries the
// write's file identity, byte offset, the resolved device blocks and a copy
// of the wire payload. Group commit batches staged records and pays one
// simulated device latency per group (the classic "one fsync for N
// transactions" economy); a record's committed callback — the ack gate —
// fires only when its group is durable. Crash() drops staged and
// in-flight-commit records: their acks never fired, so losing them breaks
// no promise. Durable records survive for replay in sequence order.
//
// Truncation is prefix-only: a durable record retires when every one of its
// blocks has been written back AND no earlier record remains. The prefix
// rule is load-bearing — records can overlap (two writes touching one
// block), and replay applies the surviving suffix in sequence order, so
// retiring a newer record while an older overlapping one remains would let
// replay regress the block to the older contents.
package wal

import (
	"ncache/internal/metrics"
	"ncache/internal/sim"
)

// Record journals one acknowledged-to-be write.
type Record struct {
	// Seq is the log sequence number (assigned by Append, 1-based).
	Seq uint64
	// Ino/Off identify the write in file terms (the FHO identity).
	Ino uint32
	Off uint64
	// Epoch is the control-plane epoch at append time (0 single-server).
	Epoch uint64
	// Sum is the internet checksum of Data, verified at replay — a
	// mismatched (torn) record stops recovery at the last good prefix.
	Sum uint16
	// LBNs are the device blocks the write resolved to, in file order.
	LBNs []int64
	// Data is the redo payload: the write's bytes, block-aligned.
	Data []byte
}

// Config tunes the group-commit protocol.
type Config struct {
	// CommitInterval bounds how long a staged record waits for company
	// (the timer arms on the first append of a group). Default 200 µs.
	CommitInterval sim.Duration
	// CommitBytes forces an early commit when the staged payload reaches
	// this size. Default 256 KB.
	CommitBytes int
	// CommitLatency is the simulated log-device write time charged once
	// per group. Default 20 µs.
	CommitLatency sim.Duration
}

func (c Config) withDefaults() Config {
	if c.CommitInterval <= 0 {
		c.CommitInterval = 200 * sim.Microsecond
	}
	if c.CommitBytes <= 0 {
		c.CommitBytes = 256 << 10
	}
	if c.CommitLatency <= 0 {
		c.CommitLatency = 20 * sim.Microsecond
	}
	return c
}

// Log is one server's write-ahead log. All scheduling runs on the owning
// node's engine (its own shard under the parallel engine).
type Log struct {
	eng *sim.Engine
	cfg Config
	wb  *metrics.Writeback

	nextSeq     uint64
	staged      []*Record
	stagedFns   []func()
	stagedBytes int
	inflight    []*Record
	inflightFns []func()
	durable     []*Record

	timerSet bool
	timer    sim.EventID
	// gen discards the completion of a commit that was in flight when the
	// node crashed: the group never became durable.
	gen uint64
}

// New creates a log; wb (may be nil) receives depth/commit accounting.
func New(eng *sim.Engine, cfg Config, wb *metrics.Writeback) *Log {
	if wb == nil {
		wb = &metrics.Writeback{}
	}
	return &Log{eng: eng, cfg: cfg.withDefaults(), wb: wb}
}

// Stats returns the shared pipeline counters.
func (l *Log) Stats() *metrics.Writeback { return l.wb }

// Depth returns journaled-but-unretired records (staged, committing and
// durable).
func (l *Log) Depth() int { return len(l.staged) + len(l.inflight) + len(l.durable) }

// DurableRecords returns the records replay must apply, in sequence order.
func (l *Log) DurableRecords() []*Record { return l.durable }

// Append stages a record and returns its sequence number. committed fires
// once the record's group commit lands — the caller releases the client
// ack there, and never if the node crashes first.
func (l *Log) Append(r *Record, committed func()) uint64 {
	l.nextSeq++
	r.Seq = l.nextSeq
	l.staged = append(l.staged, r)
	l.stagedFns = append(l.stagedFns, committed)
	l.stagedBytes += len(r.Data)
	l.wb.WALAppends++
	l.wb.AddWALDepth(1, int64(len(r.Data)))
	if l.stagedBytes >= l.cfg.CommitBytes {
		l.commitNow()
		return r.Seq
	}
	if !l.timerSet && len(l.inflight) == 0 {
		l.timerSet = true
		l.timer = l.eng.Schedule(l.cfg.CommitInterval, l.timerFire)
	}
	return r.Seq
}

func (l *Log) timerFire() {
	l.timerSet = false
	l.commitNow()
}

// commitNow starts a group commit of everything staged. One commit is in
// flight at a time; appends arriving during it stage the next group.
func (l *Log) commitNow() {
	if len(l.inflight) > 0 || len(l.staged) == 0 {
		return
	}
	if l.timerSet {
		l.eng.Cancel(l.timer)
		l.timerSet = false
	}
	l.inflight, l.inflightFns = l.staged, l.stagedFns
	l.staged, l.stagedFns, l.stagedBytes = nil, nil, 0
	gen := l.gen
	l.eng.Schedule(l.cfg.CommitLatency, func() {
		if l.gen != gen {
			return // crashed mid-commit: the group was lost with the node
		}
		batch, fns := l.inflight, l.inflightFns
		l.inflight, l.inflightFns = nil, nil
		l.durable = append(l.durable, batch...)
		l.wb.ObserveCommit(len(batch))
		for _, fn := range fns {
			if fn != nil {
				fn()
			}
		}
		// Acks may have staged more writes synchronously; keep the pipe
		// moving without waiting out a fresh timer when a full group (or
		// a timer armed before this commit started) is already due.
		if l.stagedBytes >= l.cfg.CommitBytes {
			l.commitNow()
		} else if len(l.staged) > 0 && !l.timerSet {
			l.timerSet = true
			l.timer = l.eng.Schedule(l.cfg.CommitInterval, l.timerFire)
		}
	})
}

// Truncate retires the longest durable prefix whose device blocks have all
// been written back (stillDirty reports false for every LBN). Returns the
// records retired. See the package comment for why only a prefix may go.
func (l *Log) Truncate(stillDirty func(lbn int64) bool) int {
	n := 0
scan:
	for _, r := range l.durable {
		for _, lbn := range r.LBNs {
			if stillDirty(lbn) {
				break scan
			}
		}
		n++
	}
	if n == 0 {
		return 0
	}
	bytes := 0
	for _, r := range l.durable[:n] {
		bytes += len(r.Data)
	}
	l.durable = l.durable[n:]
	l.wb.WALTruncates += uint64(n)
	l.wb.AddWALDepth(int64(-n), int64(-bytes))
	return n
}

// Crash models the node dying: staged and in-flight-commit records are
// lost (their committed callbacks never fire — the acks they gate were
// never sent), the commit timer dies with the node, and durable records
// survive for replay.
func (l *Log) Crash() {
	l.gen++
	if l.timerSet {
		l.eng.Cancel(l.timer)
		l.timerSet = false
	}
	lost := len(l.staged) + len(l.inflight)
	bytes := 0
	for _, r := range l.staged {
		bytes += len(r.Data)
	}
	for _, r := range l.inflight {
		bytes += len(r.Data)
	}
	l.staged, l.stagedFns, l.stagedBytes = nil, nil, 0
	l.inflight, l.inflightFns = nil, nil
	if lost > 0 {
		l.wb.AddWALDepth(int64(-lost), int64(-bytes))
	}
}
