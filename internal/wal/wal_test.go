package wal

import (
	"testing"

	"ncache/internal/metrics"
	"ncache/internal/netbuf"
	"ncache/internal/sim"
)

func rig() (*sim.Engine, *metrics.Writeback, *Log) {
	eng := sim.NewEngine()
	wb := &metrics.Writeback{}
	l := New(eng, Config{}, wb)
	return eng, wb, l
}

func rec(lbn int64, payload byte) *Record {
	data := make([]byte, 4096)
	for i := range data {
		data[i] = payload
	}
	return &Record{Ino: 2, Off: uint64(lbn) * 4096, Sum: netbuf.Sum(data), LBNs: []int64{lbn}, Data: data}
}

// TestGroupCommitTimer: records appended within one interval commit as one
// group, and the committed callbacks fire in append order, after (not at)
// the appends.
func TestGroupCommitTimer(t *testing.T) {
	eng, wb, l := rig()
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		seq := l.Append(rec(int64(i), byte(i)), func() { order = append(order, i) })
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if len(order) != 0 {
		t.Fatal("committed before the group-commit timer fired")
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("commit order = %v", order)
	}
	if wb.WALCommits != 1 {
		t.Fatalf("commits = %d, want 1 group", wb.WALCommits)
	}
	if wb.CommitRecords != 3 {
		t.Fatalf("commit records = %d", wb.CommitRecords)
	}
	if got := len(l.DurableRecords()); got != 3 {
		t.Fatalf("durable = %d", got)
	}
}

// TestCommitBytesThreshold: a group reaching CommitBytes commits without
// waiting out the interval.
func TestCommitBytesThreshold(t *testing.T) {
	eng := sim.NewEngine()
	l := New(eng, Config{CommitInterval: sim.Second, CommitBytes: 2 * 4096}, nil)
	committed := 0
	l.Append(rec(0, 1), func() { committed++ })
	l.Append(rec(1, 2), func() { committed++ })
	eng.RunFor(sim.Millisecond)
	if committed != 2 {
		t.Fatalf("committed = %d before a 1 s timer could fire, want 2 (size threshold)", committed)
	}
}

// TestTruncatePrefixOnly: an older record overlapping a clean block blocks
// truncation of everything after it — retiring the newer record while the
// older one remains would let replay regress the block.
func TestTruncatePrefixOnly(t *testing.T) {
	eng, wb, l := rig()
	a := &Record{Ino: 2, Off: 0, LBNs: []int64{1, 2}, Data: make([]byte, 8192)}
	b := &Record{Ino: 2, Off: 4096, LBNs: []int64{2}, Data: make([]byte, 4096)}
	l.Append(a, nil)
	l.Append(b, nil)
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// LBN 1 still dirty: record a is pinned, so b must not retire either.
	dirty := map[int64]bool{1: true}
	if n := l.Truncate(func(lbn int64) bool { return dirty[lbn] }); n != 0 {
		t.Fatalf("truncated %d records past a dirty head", n)
	}
	if l.Depth() != 2 {
		t.Fatalf("depth = %d", l.Depth())
	}
	// Everything clean: both retire in order.
	if n := l.Truncate(func(int64) bool { return false }); n != 2 {
		t.Fatalf("truncated %d, want 2", n)
	}
	if l.Depth() != 0 || wb.WALDepth != 0 || wb.WALBytes != 0 {
		t.Fatalf("depth gauge not drained: %d/%d/%d", l.Depth(), wb.WALDepth, wb.WALBytes)
	}
	if wb.WALTruncates != 2 {
		t.Fatalf("truncates = %d", wb.WALTruncates)
	}
}

// TestCrashLosesOnlyUncommitted: a crash drops staged records (their acks
// never fired) and keeps durable ones; a commit in flight at the crash is
// lost too.
func TestCrashLosesOnlyUncommitted(t *testing.T) {
	eng, wb, l := rig()
	durableAcked := false
	l.Append(rec(0, 1), func() { durableAcked = true })
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !durableAcked {
		t.Fatal("first record never committed")
	}
	// Stage a second record and crash before its interval elapses.
	lateAcked := false
	l.Append(rec(1, 2), func() { lateAcked = true })
	// Force its group in flight, then crash mid-device-write.
	eng.RunFor(l.cfg.CommitInterval + l.cfg.CommitLatency/2)
	l.Crash()
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if lateAcked {
		t.Fatal("record in flight at the crash fired its ack")
	}
	got := l.DurableRecords()
	if len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("durable after crash = %+v", got)
	}
	if wb.WALDepth != 1 {
		t.Fatalf("depth gauge = %d, want 1", wb.WALDepth)
	}
	// Replay verifies the surviving payload checksum.
	if netbuf.Sum(got[0].Data) != got[0].Sum {
		t.Fatal("surviving record fails its checksum")
	}
}

// TestPipelinedGroups: appends arriving during an in-flight commit form the
// next group — two commits, no lost records, acks strictly ordered.
func TestPipelinedGroups(t *testing.T) {
	eng, wb, l := rig()
	var order []uint64
	ack := func(seq uint64) func() { return func() { order = append(order, seq) } }
	s1 := l.Append(rec(0, 1), ack(1))
	// Let the first group's commit start, then append into its shadow.
	eng.RunFor(l.cfg.CommitInterval + l.cfg.CommitLatency/2)
	s2 := l.Append(rec(1, 2), ack(2))
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s1 != 1 || s2 != 2 {
		t.Fatalf("seqs = %d,%d", s1, s2)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("ack order = %v", order)
	}
	if wb.WALCommits != 2 {
		t.Fatalf("commits = %d, want 2 pipelined groups", wb.WALCommits)
	}
}
