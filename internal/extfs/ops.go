package extfs

import (
	"fmt"

	"ncache/internal/buffercache"
)

// Read resolves [off, off+n) of a file into pinned cache-block extents,
// reading missing runs through the cache with request-sized read-ahead. The
// caller consumes the extents (copying or key-stamping per its
// configuration) and must call result.Done.
func (fs *FS) Read(ino uint32, off uint64, n int, done func(*ReadResult, error)) {
	fs.GetInode(ino, func(in Inode, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		if in.Mode != ModeFile {
			done(nil, ErrIsDir)
			return
		}
		attr := Attr{Mode: in.Mode, Links: in.Links, Size: in.Size}
		if off >= in.Size || n == 0 {
			done(&ReadResult{EOF: true, Attr: attr}, nil)
			return
		}
		if uint64(n) > in.Size-off {
			n = int(in.Size - off)
		}
		first := int64(off / BlockSize)
		last := int64((off + uint64(n) - 1) / BlockSize)
		count := int(last - first + 1)
		fs.bmapRange(&in, first, count, false, func(lbns []int64, _ []bool, _ bool, err error) {
			if err != nil {
				done(nil, err)
				return
			}
			fs.charge(count, func() {
				fs.readExtents(off, n, first, lbns, attr, done)
			})
		})
	})
}

// readExtents fetches the resolved blocks (coalescing contiguous device
// runs) and assembles the extent list.
func (fs *FS) readExtents(off uint64, n int, firstFbn int64, lbns []int64, attr Attr, done func(*ReadResult, error)) {
	res := &ReadResult{N: n, EOF: off+uint64(n) >= attr.Size, Attr: attr}
	type slot struct {
		blk *buffercache.Block
	}
	slots := make([]slot, len(lbns))
	waiting := 1
	var failed error
	finish := func(err error) {
		if err != nil && failed == nil {
			failed = err
		}
		waiting--
		if waiting != 0 {
			return
		}
		if failed != nil {
			for _, s := range slots {
				if s.blk != nil {
					fs.cache.Unpin(s.blk)
				}
			}
			done(nil, failed)
			return
		}
		// Build extents over the byte range.
		remaining := n
		pos := off
		for i := range lbns {
			blockOff := 0
			if i == 0 {
				blockOff = int(pos % BlockSize)
			}
			l := BlockSize - blockOff
			if l > remaining {
				l = remaining
			}
			res.Extents = append(res.Extents, Extent{Block: slots[i].blk, Off: blockOff, Len: l})
			remaining -= l
			pos += uint64(l)
		}
		done(res, nil)
	}

	i := 0
	for i < len(lbns) {
		if lbns[i] == 0 {
			// Hole: zero bytes, no block.
			i++
			continue
		}
		// Contiguous device run.
		start := i
		for i+1 < len(lbns) && lbns[i+1] == lbns[i]+1 {
			i++
		}
		i++
		runStart, runLen := start, i-start
		waiting++
		fs.cache.GetRange(lbns[runStart], runLen, false, func(bs []*buffercache.Block, err error) {
			if err != nil {
				finish(err)
				return
			}
			for j, b := range bs {
				slots[runStart+j].blk = b
			}
			finish(nil)
		})
	}
	finish(nil)
}

// Write applies a filler to [off, off+n) of a file, allocating blocks and
// growing the file as needed. Whole-block writes skip the read-fill; partial
// blocks are read first (read-modify-write).
func (fs *FS) Write(ino uint32, off uint64, n int, filler Filler, done func(error)) {
	if n == 0 {
		done(nil)
		return
	}
	fs.GetInode(ino, func(in Inode, err error) {
		if err != nil {
			done(err)
			return
		}
		if in.Mode != ModeFile {
			done(ErrIsDir)
			return
		}
		first := int64(off / BlockSize)
		last := int64((off + uint64(n) - 1) / BlockSize)
		count := int(last - first + 1)
		proceed := func() {
			fs.bmapRange(&in, first, count, true, func(lbns []int64, freshs []bool, changed bool, err error) {
				if err != nil {
					done(err)
					return
				}
				fs.charge(count, func() {
					fs.writeBlocks(&in, off, n, lbns, freshs, filler, func(err error) {
						if err != nil {
							done(err)
							return
						}
						end := off + uint64(n)
						if end > in.Size {
							in.Size = end
							changed = true
						}
						if changed {
							fs.putInode(ino, in, done)
							return
						}
						done(nil)
					})
				})
			})
		}
		// A write starting beyond a partial EOF block (and not touching
		// it) makes that block's stale tail readable: zero it first.
		if off > in.Size && in.Size%BlockSize != 0 && first > int64(in.Size/BlockSize) {
			fs.zeroTailBeyondEOF(&in, proceed, done)
			return
		}
		proceed()
	})
}

// zeroTailBeyondEOF zeroes the readable-after-extension tail of the old EOF
// boundary block, materializing logical blocks first.
func (fs *FS) zeroTailBeyondEOF(in *Inode, proceed func(), done func(error)) {
	boundary := int64(in.Size / BlockSize)
	fs.bmap(in, boundary, false, func(lbn int64, _, _ bool, err error) {
		if err != nil {
			done(err)
			return
		}
		if lbn == 0 {
			proceed()
			return
		}
		fs.cache.Get(lbn, false, func(b *buffercache.Block, err error) {
			if err != nil {
				done(err)
				return
			}
			fs.materialize(b)
			for j := int(in.Size % BlockSize); j < BlockSize; j++ {
				b.Data[j] = 0
			}
			fs.cache.MarkDirty(b)
			fs.cache.Unpin(b)
			proceed()
		})
	})
}

// writeBlocks walks the affected blocks, applying the filler.
func (fs *FS) writeBlocks(in *Inode, off uint64, n int, lbns []int64, freshs []bool, filler Filler, done func(error)) {
	srcOff := 0
	pos := off
	remaining := n
	var step func(i int)
	step = func(i int) {
		if i == len(lbns) {
			done(nil)
			return
		}
		blockOff := int(pos % BlockSize)
		l := BlockSize - blockOff
		if l > remaining {
			l = remaining
		}
		whole := blockOff == 0 && l == BlockSize
		// A whole-block overwrite needs no fill; neither does a block
		// lying entirely beyond the current end of file, nor a freshly
		// allocated block (whose on-disk content is stale — a reused
		// freed block must read back as zeros outside the written range).
		blockStart := pos - uint64(blockOff)
		beyond := blockStart >= in.Size
		fresh := freshs[i]
		apply := func(b *buffercache.Block, err error) {
			if err != nil {
				done(err)
				return
			}
			if (fresh || beyond) && !whole {
				// Stale content (reused freed block, or a no-fill
				// beyond-EOF block): anything the filler doesn't cover
				// must read back as zeros.
				for j := range b.Data {
					b.Data[j] = 0
				}
				b.Logical = false
			}
			filler(b, blockOff, l, srcOff)
			if !whole && !fresh && !beyond && blockStart < in.Size && in.Size < pos {
				// The write starts past the old EOF within this block:
				// the gap [oldEOF, writeStart) becomes file content and
				// must read as zeros. This runs after the filler, which
				// may have materialized a logical block's stale bytes.
				gapStart := int(in.Size - blockStart)
				for j := gapStart; j < blockOff; j++ {
					b.Data[j] = 0
				}
			}
			fs.cache.MarkDirty(b)
			fs.cache.Unpin(b)
			srcOff += l
			pos += uint64(l)
			remaining -= l
			step(i + 1)
		}
		if whole || beyond || fresh {
			fs.cache.GetForWrite(lbns[i], false, apply)
		} else {
			fs.cache.Get(lbns[i], false, apply)
		}
	}
	step(0)
}

// ---- directories ----

// dirScan walks a directory's entries. visit returns true to stop; stopped
// reports whether visit stopped the scan. visit may mutate the block (the
// scanner marks it dirty when mutate is returned true).
func (fs *FS) dirScan(in *Inode, visit func(d Dirent, b *buffercache.Block, slotOff int) (stop, mutate bool), done func(stopped bool, err error)) {
	nblocks := int64((in.Size + BlockSize - 1) / BlockSize)
	var step func(fbn int64)
	step = func(fbn int64) {
		if fbn == nblocks {
			done(false, nil)
			return
		}
		fs.bmap(in, fbn, false, func(lbn int64, _, _ bool, err error) {
			if err != nil {
				done(false, err)
				return
			}
			if lbn == 0 {
				step(fbn + 1)
				return
			}
			fs.cache.Get(lbn, true, func(b *buffercache.Block, err error) {
				if err != nil {
					done(false, err)
					return
				}
				limit := int(in.Size - uint64(fbn)*BlockSize)
				if limit > BlockSize {
					limit = BlockSize
				}
				for so := 0; so+DirentSize <= limit; so += DirentSize {
					d := DecodeDirent(b.Data[so : so+DirentSize])
					stop, mutate := visit(d, b, so)
					if mutate {
						fs.cache.MarkDirty(b)
					}
					if stop {
						fs.cache.Unpin(b)
						done(true, nil)
						return
					}
				}
				fs.cache.Unpin(b)
				step(fbn + 1)
			})
		})
	}
	step(0)
}

// Lookup resolves name within a directory.
func (fs *FS) Lookup(dirIno uint32, name string, done func(uint32, error)) {
	fs.GetInode(dirIno, func(in Inode, err error) {
		if err != nil {
			done(0, err)
			return
		}
		if in.Mode != ModeDir {
			done(0, ErrNotDir)
			return
		}
		var found uint32
		fs.dirScan(&in, func(d Dirent, _ *buffercache.Block, _ int) (bool, bool) {
			if d.Ino != 0 && d.Name == name {
				found = d.Ino
				return true, false
			}
			return false, false
		}, func(stopped bool, err error) {
			if err != nil {
				done(0, err)
				return
			}
			if !stopped {
				done(0, ErrNotFound)
				return
			}
			done(found, nil)
		})
	})
}

// Readdir lists a directory.
func (fs *FS) Readdir(dirIno uint32, done func([]Dirent, error)) {
	fs.GetInode(dirIno, func(in Inode, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		if in.Mode != ModeDir {
			done(nil, ErrNotDir)
			return
		}
		var out []Dirent
		fs.dirScan(&in, func(d Dirent, _ *buffercache.Block, _ int) (bool, bool) {
			if d.Ino != 0 {
				out = append(out, d)
			}
			return false, false
		}, func(_ bool, err error) {
			if err != nil {
				done(nil, err)
				return
			}
			done(out, nil)
		})
	})
}

// addDirent inserts an entry, reusing a free slot or extending the
// directory.
func (fs *FS) addDirent(dirIno uint32, in Inode, ent Dirent, done func(error)) {
	inserted := false
	fs.dirScan(&in, func(d Dirent, b *buffercache.Block, so int) (bool, bool) {
		if d.Ino == 0 {
			if err := EncodeDirent(ent, b.Data[so:so+DirentSize]); err != nil {
				return true, false
			}
			inserted = true
			return true, true
		}
		return false, false
	}, func(stopped bool, err error) {
		if err != nil {
			done(err)
			return
		}
		if inserted {
			done(nil)
			return
		}
		// Extend the directory by one block.
		fbn := int64(in.Size / BlockSize)
		fs.bmap(&in, fbn, true, func(lbn int64, _, _ bool, err error) {
			if err != nil {
				done(err)
				return
			}
			fs.cache.GetForWrite(lbn, true, func(b *buffercache.Block, err error) {
				if err != nil {
					done(err)
					return
				}
				for i := range b.Data {
					b.Data[i] = 0
				}
				if err := EncodeDirent(ent, b.Data[0:DirentSize]); err != nil {
					fs.cache.Unpin(b)
					done(err)
					return
				}
				fs.cache.MarkDirty(b)
				fs.cache.Unpin(b)
				in.Size += BlockSize
				fs.putInode(dirIno, in, done)
			})
		})
	})
}

// Create makes a new file or directory entry in dirIno.
func (fs *FS) Create(dirIno uint32, name string, mode uint16, done func(uint32, error)) {
	if len(name) > MaxNameLen {
		done(0, ErrNameTooLong)
		return
	}
	fs.Lookup(dirIno, name, func(_ uint32, err error) {
		if err == nil {
			done(0, ErrExists)
			return
		}
		if err != ErrNotFound {
			done(0, err)
			return
		}
		fs.GetInode(dirIno, func(dir Inode, err error) {
			if err != nil {
				done(0, err)
				return
			}
			if dir.Mode != ModeDir {
				done(0, ErrNotDir)
				return
			}
			fs.allocInode(func(ino uint32, err error) {
				if err != nil {
					done(0, err)
					return
				}
				fs.putInode(ino, Inode{Mode: mode, Links: 1}, func(err error) {
					if err != nil {
						done(0, err)
						return
					}
					fs.addDirent(dirIno, dir, Dirent{Ino: ino, Name: name}, func(err error) {
						if err != nil {
							done(0, err)
							return
						}
						done(ino, nil)
					})
				})
			})
		})
	})
}

// Truncate frees a file's blocks beyond newSize and updates its size.
func (fs *FS) Truncate(ino uint32, newSize uint64, done func(error)) {
	fs.GetInode(ino, func(in Inode, err error) {
		if err != nil {
			done(err)
			return
		}
		if in.Mode != ModeFile {
			done(ErrIsDir)
			return
		}
		keep := int64((newSize + BlockSize - 1) / BlockSize)
		nblocks := int64((in.Size + BlockSize - 1) / BlockSize)
		// Growing across a partial last block exposes its tail: zero it
		// for literal blocks. Logical (key-carrying) blocks are the data
		// path's business — the NFS backend grows them with a zero-write
		// through the mode's filler, which materializes first.
		if newSize > in.Size && in.Size%BlockSize != 0 {
			boundary := int64(in.Size / BlockSize)
			fs.bmap(&in, boundary, false, func(lbn int64, _, _ bool, err error) {
				if err != nil || lbn == 0 {
					fs.truncateTo(ino, in, keep, nblocks, newSize, done)
					return
				}
				fs.cache.Get(lbn, false, func(b *buffercache.Block, gerr error) {
					if gerr == nil {
						if !b.Logical {
							start := int(in.Size % BlockSize)
							end := int(newSize - uint64(boundary)*BlockSize)
							if end > BlockSize {
								end = BlockSize
							}
							for j := start; j < end; j++ {
								b.Data[j] = 0
							}
							fs.cache.MarkDirty(b)
						}
						fs.cache.Unpin(b)
					}
					fs.truncateTo(ino, in, keep, nblocks, newSize, done)
				})
			})
			return
		}
		fs.truncateTo(ino, in, keep, nblocks, newSize, done)
	})
}

// truncateTo frees blocks past keep and persists the new size.
func (fs *FS) truncateTo(ino uint32, in Inode, keep, nblocks int64, newSize uint64, done func(error)) {
	var step func(fbn int64)
	step = func(fbn int64) {
		if fbn >= nblocks {
			in.Size = newSize
			// Drop pointer blocks that are now entirely unused.
			if keep <= NDirect {
				if in.Indirect != 0 {
					fs.cache.Drop(int64(in.Indirect))
					ind := int64(in.Indirect)
					in.Indirect = 0
					fs.freeBlock(ind, func(error) {})
				}
				if in.DIndirect != 0 {
					fs.cache.Drop(int64(in.DIndirect))
					dind := int64(in.DIndirect)
					in.DIndirect = 0
					fs.freeBlock(dind, func(error) {})
				}
			}
			fs.putInode(ino, in, done)
			return
		}
		fs.bmap(&in, fbn, false, func(lbn int64, _, _ bool, err error) {
			if err != nil {
				done(err)
				return
			}
			if lbn == 0 {
				step(fbn + 1)
				return
			}
			if fbn < NDirect {
				in.Direct[fbn] = 0
			}
			fs.freeBlock(lbn, func(err error) {
				if err != nil {
					done(err)
					return
				}
				step(fbn + 1)
			})
		})
	}
	step(keep)
}

// Remove unlinks a name and frees its inode and blocks. Directories must be
// empty. Validation happens before the directory entry is cleared, so a
// failed removal leaves the tree intact.
func (fs *FS) Remove(dirIno uint32, name string, done func(error)) {
	fs.Lookup(dirIno, name, func(target uint32, err error) {
		if err != nil {
			done(err)
			return
		}
		fs.GetInode(target, func(in Inode, err error) {
			if err != nil {
				done(err)
				return
			}
			unlink := func() {
				fs.GetInode(dirIno, func(dir Inode, err error) {
					if err != nil {
						done(err)
						return
					}
					fs.dirScan(&dir, func(d Dirent, b *buffercache.Block, so int) (bool, bool) {
						if d.Ino == target && d.Name == name {
							for i := so; i < so+DirentSize; i++ {
								b.Data[i] = 0
							}
							return true, true
						}
						return false, false
					}, func(stopped bool, err error) {
						if err != nil {
							done(err)
							return
						}
						if !stopped {
							done(ErrNotFound)
							return
						}
						fs.destroyInode(target, in, done)
					})
				})
			}
			if in.Mode == ModeDir {
				fs.ensureDirEmpty(target, func(err error) {
					if err != nil {
						done(err)
						return
					}
					unlink()
				})
				return
			}
			unlink()
		})
	})
}

// ensureDirEmpty fails with ErrNotEmpty if the directory has live entries.
func (fs *FS) ensureDirEmpty(ino uint32, done func(error)) {
	fs.Readdir(ino, func(ents []Dirent, err error) {
		if err != nil {
			done(err)
			return
		}
		if len(ents) != 0 {
			done(ErrNotEmpty)
			return
		}
		done(nil)
	})
}

// destroyInode frees an inode's data blocks and the inode itself.
func (fs *FS) destroyInode(ino uint32, in Inode, done func(error)) {
	if in.Mode == ModeFile {
		fs.Truncate(ino, 0, func(err error) {
			if err != nil {
				done(err)
				return
			}
			fs.reapInode(ino, done)
		})
		return
	}
	// Directory: free its blocks directly.
	nblocks := int64((in.Size + BlockSize - 1) / BlockSize)
	var step func(fbn int64)
	step = func(fbn int64) {
		if fbn == nblocks {
			fs.reapInode(ino, done)
			return
		}
		fs.bmap(&in, fbn, false, func(lbn int64, _, _ bool, err error) {
			if err != nil {
				done(err)
				return
			}
			if lbn == 0 {
				step(fbn + 1)
				return
			}
			fs.freeBlock(lbn, func(err error) {
				if err != nil {
					done(err)
					return
				}
				step(fbn + 1)
			})
		})
	}
	step(0)
}

// reapInode marks an inode free on disk and in the bitmap.
func (fs *FS) reapInode(ino uint32, done func(error)) {
	fs.putInode(ino, Inode{}, func(err error) {
		if err != nil {
			done(err)
			return
		}
		fs.freeInode(ino, done)
	})
}

// Sync flushes all dirty cache state.
func (fs *FS) Sync(done func(error)) { fs.cache.Sync(done) }

// Map resolves the device blocks backing [off, off+n) of a file without
// allocating (holes come back as 0). The write-ahead log journals a write's
// resolved LBN list alongside its payload, so replay and truncation can
// speak the block layer's language.
func (fs *FS) Map(ino uint32, off uint64, n int, done func([]int64, error)) {
	if n <= 0 {
		done(nil, nil)
		return
	}
	fs.GetInode(ino, func(in Inode, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		first := int64(off / BlockSize)
		last := int64((off + uint64(n) - 1) / BlockSize)
		count := int(last - first + 1)
		fs.bmapRange(&in, first, count, false, func(lbns []int64, _ []bool, _ bool, err error) {
			if err != nil {
				done(nil, err)
				return
			}
			done(lbns, nil)
		})
	})
}

// Fsck sanity-checks reachable metadata (superblock bounds, inode modes).
// It is a testing aid, not a repair tool.
func (fs *FS) Fsck(done func(error)) {
	if fs.sb.DataStart <= 0 || fs.sb.DataStart >= fs.sb.NumBlocks {
		done(fmt.Errorf("extfs: corrupt layout: data start %d of %d", fs.sb.DataStart, fs.sb.NumBlocks))
		return
	}
	fs.GetInode(RootIno, func(in Inode, err error) {
		if err != nil {
			done(err)
			return
		}
		if in.Mode != ModeDir {
			done(fmt.Errorf("extfs: root inode is not a directory"))
			return
		}
		done(nil)
	})
}
