package extfs

import (
	"bytes"
	"errors"
	"testing"

	"ncache/internal/blockdev"
	"ncache/internal/buffercache"
	"ncache/internal/netbuf"
	"ncache/internal/sim"
	"ncache/internal/simnet"
)

// diskLower adapts a MemDisk as a buffer-cache Lower for isolated fs tests
// (the full stack goes through iSCSI; see the passthru package).
type diskLower struct {
	dev *blockdev.MemDisk
}

func (l *diskLower) BlockSize() int   { return l.dev.Geometry().BlockSize }
func (l *diskLower) NumBlocks() int64 { return l.dev.Geometry().NumBlocks }

func (l *diskLower) ReadAt(lbn int64, count int, meta bool, done func(*netbuf.Chain, error)) {
	l.dev.ReadBlocks(lbn, count, func(data []byte, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		done(netbuf.ChainFromBytes(data, netbuf.DefaultBufSize), nil)
	})
}

func (l *diskLower) WriteAt(lbn int64, data *netbuf.Chain, meta bool, done func(error)) {
	flat := data.Flatten()
	data.Release()
	l.dev.WriteBlocks(lbn, flat, done)
}

type fsRig struct {
	eng   *sim.Engine
	node  *simnet.Node
	disk  *blockdev.MemDisk
	cache *buffercache.Cache
	fs    *FS
}

func newFsRig(t *testing.T, cacheBlocks int) *fsRig {
	t.Helper()
	eng := sim.NewEngine()
	node := simnet.NewNode(eng, "app", simnet.DefaultProfile())
	disk := blockdev.NewMemDisk(eng, "d0", blockdev.Geometry{BlockSize: BlockSize, NumBlocks: 8192}, blockdev.Model{})
	if _, err := Format(disk, 512); err != nil {
		t.Fatalf("Format: %v", err)
	}
	cache := buffercache.New(node, &diskLower{dev: disk}, cacheBlocks)
	r := &fsRig{eng: eng, node: node, disk: disk, cache: cache}
	Mount(node, cache, func(fs *FS, err error) {
		if err != nil {
			t.Fatalf("Mount: %v", err)
		}
		r.fs = fs
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.fs == nil {
		t.Fatal("mount did not complete")
	}
	return r
}

// newCacheOver builds a second buffer cache over a rig's disk (remount
// support for durability tests).
func newCacheOver(r *fsRig) *buffercache.Cache {
	return buffercache.New(r.node, &diskLower{dev: r.disk}, 256)
}

// run drives the engine and fails the test on error.
func (r *fsRig) run(t *testing.T) {
	t.Helper()
	if err := r.eng.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
}

// copyFiller returns a Filler that physically copies from src.
func copyFiller(src []byte) Filler {
	return func(b *buffercache.Block, blockOff, count, srcOff int) {
		copy(b.Data[blockOff:blockOff+count], src[srcOff:srcOff+count])
		b.Logical = false
	}
}

// readAll reads [off, off+n) into a byte slice through the extent API.
func (r *fsRig) readAll(t *testing.T, ino uint32, off uint64, n int) ([]byte, bool) {
	t.Helper()
	var out []byte
	var eof bool
	ok := false
	r.fs.Read(ino, off, n, func(res *ReadResult, err error) {
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		for _, e := range res.Extents {
			if e.Block == nil {
				out = append(out, make([]byte, e.Len)...)
				continue
			}
			out = append(out, e.Block.Data[e.Off:e.Off+e.Len]...)
		}
		eof = res.EOF
		res.Done(r.fs)
		ok = true
	})
	r.run(t)
	if !ok {
		t.Fatal("read did not complete")
	}
	return out, eof
}

func (r *fsRig) create(t *testing.T, name string) uint32 {
	t.Helper()
	var ino uint32
	r.fs.Create(RootIno, name, ModeFile, func(i uint32, err error) {
		if err != nil {
			t.Fatalf("Create(%s): %v", name, err)
		}
		ino = i
	})
	r.run(t)
	return ino
}

func (r *fsRig) write(t *testing.T, ino uint32, off uint64, data []byte) {
	t.Helper()
	done := false
	r.fs.Write(ino, off, len(data), copyFiller(data), func(err error) {
		if err != nil {
			t.Fatalf("Write: %v", err)
		}
		done = true
	})
	r.run(t)
	if !done {
		t.Fatal("write did not complete")
	}
}

func TestFormatMountFsck(t *testing.T) {
	r := newFsRig(t, 256)
	ok := false
	r.fs.Fsck(func(err error) {
		if err != nil {
			t.Fatalf("Fsck: %v", err)
		}
		ok = true
	})
	r.run(t)
	if !ok {
		t.Fatal("fsck did not complete")
	}
	if r.fs.Super().Magic != Magic {
		t.Fatal("bad super")
	}
}

func TestFormattedFileVisibleAndReadable(t *testing.T) {
	eng := sim.NewEngine()
	node := simnet.NewNode(eng, "app", simnet.DefaultProfile())
	disk := blockdev.NewMemDisk(eng, "d0", blockdev.Geometry{BlockSize: BlockSize, NumBlocks: 8192}, blockdev.Model{})
	f, err := Format(disk, 512)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	content := func(off uint64, dst []byte) {
		for i := range dst {
			dst[i] = byte(off/BlockSize + uint64(i)%200)
		}
	}
	spec, err := f.AddFile("big.dat", 100*BlockSize, content)
	if err != nil {
		t.Fatalf("AddFile: %v", err)
	}
	if err := f.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	cache := buffercache.New(node, &diskLower{dev: disk}, 512)
	r := &fsRig{eng: eng, node: node, disk: disk, cache: cache}
	Mount(node, cache, func(fs *FS, err error) {
		if err != nil {
			t.Fatalf("Mount: %v", err)
		}
		r.fs = fs
	})
	r.run(t)

	var ino uint32
	r.fs.Lookup(RootIno, "big.dat", func(i uint32, err error) {
		if err != nil {
			t.Fatalf("Lookup: %v", err)
		}
		ino = i
	})
	r.run(t)
	if ino != spec.Ino {
		t.Fatalf("ino = %d, want %d", ino, spec.Ino)
	}

	// Read a range spanning direct→indirect pointers (blocks 8..12).
	got, _ := r.readAll(t, ino, 8*BlockSize, 5*BlockSize)
	want := make([]byte, 5*BlockSize)
	for i := 0; i < 5; i++ {
		content(uint64(8+i)*BlockSize, want[i*BlockSize:(i+1)*BlockSize])
	}
	if !bytes.Equal(got, want) {
		t.Fatal("formatted file content mismatch across direct/indirect boundary")
	}

	var attr Attr
	r.fs.Getattr(ino, func(a Attr, err error) {
		if err != nil {
			t.Fatalf("Getattr: %v", err)
		}
		attr = a
	})
	r.run(t)
	if attr.Size != 100*BlockSize || attr.Mode != ModeFile {
		t.Fatalf("attr = %+v", attr)
	}
}

func TestCreateWriteReadRoundTrip(t *testing.T) {
	r := newFsRig(t, 256)
	ino := r.create(t, "hello.txt")
	data := []byte("hello, network-centric world")
	r.write(t, ino, 0, data)
	got, eof := r.readAll(t, ino, 0, 1024)
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q, want %q", got, data)
	}
	if !eof {
		t.Fatal("expected EOF")
	}
}

func TestPartialAndCrossBlockWrites(t *testing.T) {
	r := newFsRig(t, 256)
	ino := r.create(t, "f")
	// Lay down two blocks, then overwrite a range crossing the boundary.
	base := make([]byte, 2*BlockSize)
	for i := range base {
		base[i] = 'A'
	}
	r.write(t, ino, 0, base)
	patch := bytes.Repeat([]byte{'B'}, 1000)
	r.write(t, ino, BlockSize-500, patch)

	got, _ := r.readAll(t, ino, 0, 2*BlockSize)
	want := append([]byte(nil), base...)
	copy(want[BlockSize-500:], patch)
	if !bytes.Equal(got, want) {
		t.Fatal("cross-block partial write corrupted data")
	}
}

func TestLargeFileIndirectAndDoubleIndirect(t *testing.T) {
	r := newFsRig(t, 2048)
	ino := r.create(t, "big")
	// Write one block past the single-indirect region (block NDirect +
	// PtrsPerBlock + 3 → double indirect).
	fbn := int64(NDirect + PtrsPerBlock + 3)
	data := bytes.Repeat([]byte{0xCD}, BlockSize)
	r.write(t, ino, uint64(fbn)*BlockSize, data)

	got, _ := r.readAll(t, ino, uint64(fbn)*BlockSize, BlockSize)
	if !bytes.Equal(got, data) {
		t.Fatal("double-indirect block round trip failed")
	}
	var attr Attr
	r.fs.Getattr(ino, func(a Attr, err error) { attr = a })
	r.run(t)
	if attr.Size != uint64(fbn+1)*BlockSize {
		t.Fatalf("size = %d", attr.Size)
	}
	// The blocks before it are holes and read as zeros.
	hole, _ := r.readAll(t, ino, 0, BlockSize)
	if !bytes.Equal(hole, make([]byte, BlockSize)) {
		t.Fatal("hole did not read as zeros")
	}
}

func TestReaddirAndRemove(t *testing.T) {
	r := newFsRig(t, 256)
	names := []string{"a", "b", "c"}
	for _, n := range names {
		r.create(t, n)
	}
	var ents []Dirent
	r.fs.Readdir(RootIno, func(es []Dirent, err error) {
		if err != nil {
			t.Fatalf("Readdir: %v", err)
		}
		ents = es
	})
	r.run(t)
	if len(ents) != 3 {
		t.Fatalf("entries = %v", ents)
	}

	removed := false
	r.fs.Remove(RootIno, "b", func(err error) {
		if err != nil {
			t.Fatalf("Remove: %v", err)
		}
		removed = true
	})
	r.run(t)
	if !removed {
		t.Fatal("remove did not complete")
	}
	r.fs.Lookup(RootIno, "b", func(_ uint32, err error) {
		if !errors.Is(err, ErrNotFound) {
			t.Fatalf("Lookup after remove: %v", err)
		}
	})
	r.run(t)
	// The slot is reused.
	r.create(t, "d")
	r.fs.Readdir(RootIno, func(es []Dirent, err error) { ents = es })
	r.run(t)
	if len(ents) != 3 {
		t.Fatalf("entries after reuse = %v", ents)
	}
}

func TestRemoveFreesBlocks(t *testing.T) {
	r := newFsRig(t, 256)
	ino := r.create(t, "victim")
	r.write(t, ino, 0, make([]byte, 20*BlockSize)) // spans indirect
	r.fs.Remove(RootIno, "victim", func(err error) {
		if err != nil {
			t.Fatalf("Remove: %v", err)
		}
	})
	r.run(t)
	// The inode is dead (checked before its number can be recycled).
	r.fs.Getattr(ino, func(_ Attr, err error) {
		if err == nil {
			t.Fatal("removed inode still live")
		}
	})
	r.run(t)
	// A new file can reuse the space; allocation succeeds repeatedly.
	ino2 := r.create(t, "next")
	r.write(t, ino2, 0, make([]byte, 20*BlockSize))
	var attr Attr
	r.fs.Getattr(ino2, func(a Attr, err error) {
		if err != nil {
			t.Fatalf("Getattr: %v", err)
		}
		attr = a
	})
	r.run(t)
	if attr.Size != 20*BlockSize {
		t.Fatalf("size = %d", attr.Size)
	}
}

func TestTruncateShrink(t *testing.T) {
	r := newFsRig(t, 256)
	ino := r.create(t, "t")
	r.write(t, ino, 0, bytes.Repeat([]byte{1}, 5*BlockSize))
	r.fs.Truncate(ino, BlockSize+10, func(err error) {
		if err != nil {
			t.Fatalf("Truncate: %v", err)
		}
	})
	r.run(t)
	var attr Attr
	r.fs.Getattr(ino, func(a Attr, err error) { attr = a })
	r.run(t)
	if attr.Size != BlockSize+10 {
		t.Fatalf("size = %d", attr.Size)
	}
	got, eof := r.readAll(t, ino, 0, 10*BlockSize)
	if len(got) != BlockSize+10 || !eof {
		t.Fatalf("read after truncate: %d bytes eof=%v", len(got), eof)
	}
}

func TestSyncPersistsToDisk(t *testing.T) {
	r := newFsRig(t, 256)
	ino := r.create(t, "durable")
	data := bytes.Repeat([]byte{0x5A}, BlockSize)
	r.write(t, ino, 0, data)
	r.fs.Sync(func(err error) {
		if err != nil {
			t.Fatalf("Sync: %v", err)
		}
	})
	r.run(t)
	// Find the data block via a second mount on the same disk.
	eng2 := sim.NewEngine()
	node2 := simnet.NewNode(eng2, "app2", simnet.DefaultProfile())
	// Transplant disk contents: reuse the same MemDisk but a new engine
	// is not possible (its arm belongs to the old engine) — instead
	// verify through the original rig after dropping the cache.
	_ = eng2
	_ = node2
	found := false
	for lbn := r.fs.Super().DataStart; lbn < r.fs.Super().DataStart+64; lbn++ {
		if bytes.Equal(r.disk.PeekBlock(lbn), data) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("synced data not on disk")
	}
}

func TestCreateDuplicateFails(t *testing.T) {
	r := newFsRig(t, 256)
	r.create(t, "dup")
	r.fs.Create(RootIno, "dup", ModeFile, func(_ uint32, err error) {
		if !errors.Is(err, ErrExists) {
			t.Fatalf("duplicate create: %v", err)
		}
	})
	r.run(t)
}

func TestLookupErrors(t *testing.T) {
	r := newFsRig(t, 256)
	r.fs.Lookup(RootIno, "ghost", func(_ uint32, err error) {
		if !errors.Is(err, ErrNotFound) {
			t.Fatalf("missing lookup: %v", err)
		}
	})
	ino := r.create(t, "plain")
	r.run(t)
	r.fs.Lookup(ino, "x", func(_ uint32, err error) {
		if !errors.Is(err, ErrNotDir) {
			t.Fatalf("lookup in file: %v", err)
		}
	})
	r.run(t)
}

func TestMkdirAndNestedFiles(t *testing.T) {
	r := newFsRig(t, 256)
	var dir uint32
	r.fs.Create(RootIno, "subdir", ModeDir, func(i uint32, err error) {
		if err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		dir = i
	})
	r.run(t)
	var ino uint32
	r.fs.Create(dir, "inner", ModeFile, func(i uint32, err error) {
		if err != nil {
			t.Fatalf("create nested: %v", err)
		}
		ino = i
	})
	r.run(t)
	r.write(t, ino, 0, []byte("nested"))
	got, _ := r.readAll(t, ino, 0, 100)
	if string(got) != "nested" {
		t.Fatalf("nested read = %q", got)
	}
	// Removing a non-empty directory fails.
	r.fs.Remove(RootIno, "subdir", func(err error) {
		if !errors.Is(err, ErrNotEmpty) {
			t.Fatalf("remove non-empty dir: %v", err)
		}
	})
	r.run(t)
	// Empty it, then remove.
	r.fs.Remove(dir, "inner", func(err error) {
		if err != nil {
			t.Fatalf("remove inner: %v", err)
		}
	})
	r.run(t)
	r.fs.Remove(RootIno, "subdir", func(err error) {
		if err != nil {
			t.Fatalf("remove empty dir: %v", err)
		}
	})
	r.run(t)
}

func TestManyFilesInRoot(t *testing.T) {
	r := newFsRig(t, 512)
	// Enough files to spill the root directory into a second block.
	for i := 0; i < DirentsPerBlock+10; i++ {
		r.create(t, fmtName(i))
	}
	var ents []Dirent
	r.fs.Readdir(RootIno, func(es []Dirent, err error) {
		if err != nil {
			t.Fatalf("Readdir: %v", err)
		}
		ents = es
	})
	r.run(t)
	if len(ents) != DirentsPerBlock+10 {
		t.Fatalf("entries = %d, want %d", len(ents), DirentsPerBlock+10)
	}
}

func fmtName(i int) string {
	return "file-" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}
