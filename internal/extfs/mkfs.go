package extfs

import (
	"fmt"

	"ncache/internal/blockdev"
)

// Formatter builds a volume offline through blockdev.DirectAccess: no
// virtual time passes, which is how experiments lay down multi-gigabyte
// file sets before the measured run starts.
type Formatter struct {
	dev blockdev.DirectAccess
	sb  SuperBlock

	// nextData is the contiguous-allocation cursor.
	nextData int64
	nextIno  uint32

	// rootEnts accumulates root directory entries until Flush.
	rootEnts []Dirent
}

// FileSpec records where a formatted file landed, so experiments can verify
// content end to end without reading through the stack.
type FileSpec struct {
	Name     string
	Ino      uint32
	Size     uint64
	StartLBN int64 // first data block; the file is contiguous
	Blocks   int64
}

// Format writes a fresh volume layout and returns a Formatter for
// populating it.
func Format(dev blockdev.DirectAccess, numInodes uint32) (*Formatter, error) {
	g := dev.Geometry()
	if g.BlockSize != BlockSize {
		return nil, fmt.Errorf("extfs: device block size %d, want %d", g.BlockSize, BlockSize)
	}
	sb := Layout(g.NumBlocks, numInodes)
	if sb.DataStart >= g.NumBlocks {
		return nil, fmt.Errorf("extfs: device too small: %d blocks", g.NumBlocks)
	}
	f := &Formatter{
		dev:      dev,
		sb:       sb,
		nextData: sb.DataStart,
		nextIno:  RootIno + 1,
	}
	blk := make([]byte, BlockSize)
	EncodeSuper(sb, blk)
	dev.PokeBlock(0, blk)

	// Zero bitmaps and inode table.
	zero := make([]byte, BlockSize)
	for b := sb.InodeBitmapStart; b < sb.DataStart; b++ {
		dev.PokeBlock(b, zero)
	}
	// Reserve: inode 0 (invalid) and the root inode.
	f.setBit(sb.InodeBitmapStart, 0)
	f.setBit(sb.InodeBitmapStart, int64(RootIno))
	// Mark all layout blocks allocated in the block bitmap.
	for b := int64(0); b < sb.DataStart; b++ {
		f.setBit(sb.BlockBitmapStart, b)
	}
	// Root directory: one empty block.
	rootBlk := f.allocData(1)
	dev.PokeBlock(rootBlk, zero)
	f.pokeInode(RootIno, Inode{
		Mode:   ModeDir,
		Links:  1,
		Size:   BlockSize,
		Direct: [NDirect]uint32{uint32(rootBlk)},
	})
	return f, nil
}

// Super returns the formatted layout.
func (f *Formatter) Super() SuperBlock { return f.sb }

// setBit marks one bitmap bit through direct access.
func (f *Formatter) setBit(regionStart, idx int64) {
	lbn := regionStart + idx/(BlockSize*8)
	blk := f.dev.PeekBlock(lbn)
	blk[(idx/8)%BlockSize] |= 1 << (idx % 8)
	f.dev.PokeBlock(lbn, blk)
}

// pokeInode writes an inode slot through direct access.
func (f *Formatter) pokeInode(ino uint32, in Inode) {
	lbn := f.sb.InodeTableStart + int64(ino)/InodesPerBlock
	off := (int64(ino) % InodesPerBlock) * InodeSize
	blk := f.dev.PeekBlock(lbn)
	EncodeInode(in, blk[off:off+InodeSize])
	f.dev.PokeBlock(lbn, blk)
}

// allocData reserves n contiguous data blocks and marks them in the bitmap.
func (f *Formatter) allocData(n int64) int64 {
	start := f.nextData
	for b := start; b < start+n; b++ {
		f.setBit(f.sb.BlockBitmapStart, b)
	}
	f.nextData += n
	return start
}

// AddFile creates a contiguous file in the root directory. content may be
// nil, in which case block contents come from the device's Synthesize
// function (deterministic, storage-free) — the standard arrangement for
// multi-gigabyte benchmark files.
func (f *Formatter) AddFile(name string, size uint64, content func(fileOff uint64, dst []byte)) (FileSpec, error) {
	if len(name) > MaxNameLen {
		return FileSpec{}, ErrNameTooLong
	}
	nblocks := int64((size + BlockSize - 1) / BlockSize)
	if nblocks > MaxFileBlocks {
		return FileSpec{}, ErrFileTooBig
	}
	ino := f.nextIno
	if ino >= f.sb.NumInodes {
		return FileSpec{}, ErrNoInodes
	}
	f.nextIno++
	f.setBit(f.sb.InodeBitmapStart, int64(ino))

	start := f.allocData(nblocks)
	if f.nextData > f.sb.NumBlocks {
		return FileSpec{}, ErrNoSpace
	}
	in := Inode{Mode: ModeFile, Links: 1, Size: size}

	// Wire block pointers: direct, then indirect, then double indirect.
	var indirect, dindirect int64
	ptr := func(i int64) uint32 { return uint32(start + i) }
	for i := int64(0); i < nblocks && i < NDirect; i++ {
		in.Direct[i] = ptr(i)
	}
	if nblocks > NDirect {
		indirect = f.allocData(1)
		in.Indirect = uint32(indirect)
		blk := make([]byte, BlockSize)
		for i := int64(0); i < PtrsPerBlock && NDirect+i < nblocks; i++ {
			putBE32(blk[i*4:], ptr(NDirect+i))
		}
		f.dev.PokeBlock(indirect, blk)
	}
	if nblocks > NDirect+PtrsPerBlock {
		dindirect = f.allocData(1)
		in.DIndirect = uint32(dindirect)
		outer := make([]byte, BlockSize)
		rem := nblocks - NDirect - PtrsPerBlock
		for o := int64(0); o*PtrsPerBlock < rem; o++ {
			ind := f.allocData(1)
			putBE32(outer[o*4:], uint32(ind))
			blk := make([]byte, BlockSize)
			for i := int64(0); i < PtrsPerBlock; i++ {
				fb := NDirect + PtrsPerBlock + o*PtrsPerBlock + i
				if fb >= nblocks {
					break
				}
				putBE32(blk[i*4:], ptr(fb))
			}
			f.dev.PokeBlock(ind, blk)
		}
		f.dev.PokeBlock(dindirect, outer)
	}
	f.pokeInode(ino, in)

	if content != nil {
		buf := make([]byte, BlockSize)
		for i := int64(0); i < nblocks; i++ {
			for j := range buf {
				buf[j] = 0
			}
			content(uint64(i)*BlockSize, buf)
			f.dev.PokeBlock(start+i, buf)
		}
	}
	f.rootEnts = append(f.rootEnts, Dirent{Ino: ino, Name: name})
	return FileSpec{Name: name, Ino: ino, Size: size, StartLBN: start, Blocks: nblocks}, nil
}

// Flush writes accumulated root directory entries, spilling into indirect
// blocks for large page sets. Call once after adding files.
func (f *Formatter) Flush() error {
	rootBlkData := f.dev.PeekBlock(f.sb.InodeTableStart + int64(RootIno)/InodesPerBlock)
	root := DecodeInode(rootBlkData[(int64(RootIno)%InodesPerBlock)*InodeSize:])

	needBlocks := (len(f.rootEnts) + DirentsPerBlock - 1) / DirentsPerBlock
	if needBlocks == 0 {
		needBlocks = 1
	}
	if needBlocks > NDirect+PtrsPerBlock {
		return fmt.Errorf("extfs: too many root entries (%d)", len(f.rootEnts))
	}
	// Resolve (allocating as needed) the LBN of each directory block.
	lbns := make([]int64, needBlocks)
	var indBlk []byte
	for i := 0; i < needBlocks; i++ {
		switch {
		case i < NDirect:
			if root.Direct[i] == 0 {
				root.Direct[i] = uint32(f.allocData(1))
			}
			lbns[i] = int64(root.Direct[i])
		default:
			if root.Indirect == 0 {
				root.Indirect = uint32(f.allocData(1))
				indBlk = make([]byte, BlockSize)
			} else if indBlk == nil {
				indBlk = f.dev.PeekBlock(int64(root.Indirect))
			}
			lbn := f.allocData(1)
			putBE32(indBlk[(i-NDirect)*4:], uint32(lbn))
			lbns[i] = lbn
		}
	}
	if indBlk != nil {
		f.dev.PokeBlock(int64(root.Indirect), indBlk)
	}
	root.Size = uint64(needBlocks) * BlockSize
	for bi := 0; bi < needBlocks; bi++ {
		blk := make([]byte, BlockSize)
		for si := 0; si < DirentsPerBlock; si++ {
			idx := bi*DirentsPerBlock + si
			if idx >= len(f.rootEnts) {
				break
			}
			if err := EncodeDirent(f.rootEnts[idx], blk[si*DirentSize:]); err != nil {
				return err
			}
		}
		f.dev.PokeBlock(lbns[bi], blk)
	}
	f.pokeInode(RootIno, root)
	return nil
}

// NextDataLBN reports the allocation cursor (where the next file would
// start), letting experiments reason about contiguity.
func (f *Formatter) NextDataLBN() int64 { return f.nextData }

// putBE32 writes a big-endian uint32.
func putBE32(dst []byte, v uint32) {
	dst[0] = byte(v >> 24)
	dst[1] = byte(v >> 16)
	dst[2] = byte(v >> 8)
	dst[3] = byte(v)
}
