package extfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"ncache/internal/sim"
)

// TestShadowModelRandomOps drives a long random operation sequence against
// the file system and an in-memory shadow model, checking full agreement:
// directory contents, file sizes, and every byte read.
func TestShadowModelRandomOps(t *testing.T) {
	r := newFsRig(t, 512)
	rng := sim.NewRNG(20260705)

	type shadowFile struct {
		ino  uint32
		data []byte
	}
	shadow := map[string]*shadowFile{}

	names := []string{"a", "b", "c", "d", "e", "f"}
	const ops = 400
	for step := 0; step < ops; step++ {
		name := names[rng.Intn(len(names))]
		switch rng.Intn(10) {
		case 0, 1: // create
			r.fs.Create(RootIno, name, ModeFile, func(ino uint32, err error) {
				if _, exists := shadow[name]; exists {
					if !errors.Is(err, ErrExists) {
						t.Fatalf("step %d: create %q = %v, want ErrExists", step, name, err)
					}
					return
				}
				if err != nil {
					t.Fatalf("step %d: create %q: %v", step, name, err)
				}
				shadow[name] = &shadowFile{ino: ino}
			})
			r.run(t)

		case 2: // remove
			r.fs.Remove(RootIno, name, func(err error) {
				if _, exists := shadow[name]; !exists {
					if !errors.Is(err, ErrNotFound) {
						t.Fatalf("step %d: remove %q = %v, want ErrNotFound", step, name, err)
					}
					return
				}
				if err != nil {
					t.Fatalf("step %d: remove %q: %v", step, name, err)
				}
				delete(shadow, name)
			})
			r.run(t)

		case 3, 4, 5: // write
			sf, exists := shadow[name]
			if !exists {
				continue
			}
			off := uint64(rng.Intn(6 * BlockSize))
			n := rng.Intn(2*BlockSize) + 1
			payload := make([]byte, n)
			rng.Fill(payload)
			r.write(t, sf.ino, off, payload)
			if need := off + uint64(n); uint64(len(sf.data)) < need {
				sf.data = append(sf.data, make([]byte, need-uint64(len(sf.data)))...)
			}
			copy(sf.data[off:], payload)

		case 6, 7, 8: // read + verify
			sf, exists := shadow[name]
			if !exists {
				continue
			}
			off := uint64(rng.Intn(8 * BlockSize))
			n := rng.Intn(3*BlockSize) + 1
			got, _ := r.readAll(t, sf.ino, off, n)
			var want []byte
			if off < uint64(len(sf.data)) {
				end := off + uint64(n)
				if end > uint64(len(sf.data)) {
					end = uint64(len(sf.data))
				}
				want = sf.data[off:end]
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("step %d: read %q [%d,+%d): got %d bytes, want %d (content mismatch=%v)",
					step, name, off, n, len(got), len(want), !bytes.Equal(got, want))
			}

		case 9: // truncate
			sf, exists := shadow[name]
			if !exists {
				continue
			}
			newSize := uint64(rng.Intn(4 * BlockSize))
			r.fs.Truncate(sf.ino, newSize, func(err error) {
				if err != nil {
					t.Fatalf("step %d: truncate %q: %v", step, name, err)
				}
			})
			r.run(t)
			if uint64(len(sf.data)) > newSize {
				sf.data = sf.data[:newSize]
			} else {
				sf.data = append(sf.data, make([]byte, newSize-uint64(len(sf.data)))...)
			}
		}
	}

	// Final audit: directory and attributes agree with the shadow.
	r.fs.Readdir(RootIno, func(ents []Dirent, err error) {
		if err != nil {
			t.Fatalf("final readdir: %v", err)
		}
		if len(ents) != len(shadow) {
			t.Fatalf("directory has %d entries, shadow has %d", len(ents), len(shadow))
		}
		for _, e := range ents {
			if _, ok := shadow[e.Name]; !ok {
				t.Fatalf("unexpected entry %q", e.Name)
			}
		}
	})
	r.run(t)
	for name, sf := range shadow {
		name, sf := name, sf
		r.fs.Getattr(sf.ino, func(a Attr, err error) {
			if err != nil {
				t.Fatalf("final getattr %q: %v", name, err)
			}
			if a.Size != uint64(len(sf.data)) {
				t.Fatalf("%q size = %d, shadow %d", name, a.Size, len(sf.data))
			}
		})
		r.run(t)
	}

	// And the whole tree still fsck-s after a sync.
	r.fs.Sync(func(err error) {
		if err != nil {
			t.Fatalf("final sync: %v", err)
		}
	})
	r.run(t)
	r.fs.Fsck(func(err error) {
		if err != nil {
			t.Fatalf("final fsck: %v", err)
		}
	})
	r.run(t)
}

// TestShadowModelSurvivesRemount syncs, then re-mounts the same disk with a
// fresh cache and verifies all content is durable.
func TestShadowModelSurvivesRemount(t *testing.T) {
	r := newFsRig(t, 256)
	rng := sim.NewRNG(7)
	content := map[string][]byte{}
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("file%d", i)
		ino := r.create(t, name)
		data := make([]byte, (i+1)*3000)
		rng.Fill(data)
		r.write(t, ino, 0, data)
		content[name] = data
	}
	r.fs.Sync(func(err error) {
		if err != nil {
			t.Fatalf("sync: %v", err)
		}
	})
	r.run(t)

	// Fresh cache over the same disk: all state must come from "disk".
	cache2 := newCacheOver(r)
	var fs2 *FS
	Mount(r.node, cache2, func(fs *FS, err error) {
		if err != nil {
			t.Fatalf("remount: %v", err)
		}
		fs2 = fs
	})
	r.run(t)
	for name, want := range content {
		name, want := name, want
		var ino uint32
		fs2.Lookup(RootIno, name, func(i uint32, err error) {
			if err != nil {
				t.Fatalf("lookup %q after remount: %v", name, err)
			}
			ino = i
		})
		r.run(t)
		r2 := &fsRig{eng: r.eng, node: r.node, disk: r.disk, cache: cache2, fs: fs2}
		got, _ := r2.readAll(t, ino, 0, len(want)+100)
		if !bytes.Equal(got, want) {
			t.Fatalf("%q content lost across remount", name)
		}
	}
}
