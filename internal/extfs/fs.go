package extfs

import (
	"fmt"

	"ncache/internal/buffercache"
	"ncache/internal/sim"
	"ncache/internal/simnet"
)

// FS is a mounted volume. All operations are asynchronous: they resolve
// through the buffer cache (and, on misses, the iSCSI initiator beneath it)
// and complete in simulation-event context. Per-block file system logic is
// charged to the node's CPU.
type FS struct {
	cache *buffercache.Cache
	node  *simnet.Node
	sb    SuperBlock

	blockHint int64
	inodeHint uint32

	// materializer converts a logical (key-carrying) block back to real
	// bytes when the file system must mutate it directly (EOF-boundary
	// zeroing). The pass-through assembly installs the NCache-aware
	// implementation; the default zero-fills.
	materializer func(*buffercache.Block)
}

// SetMaterializer installs the logical-block materializer.
func (fs *FS) SetMaterializer(fn func(*buffercache.Block)) { fs.materializer = fn }

// materialize turns a logical block into a real one.
func (fs *FS) materialize(b *buffercache.Block) {
	if !b.Logical {
		return
	}
	if fs.materializer != nil {
		fs.materializer(b)
		return
	}
	for i := range b.Data {
		b.Data[i] = 0
	}
	b.Logical = false
}

// Attr is the subset of file attributes NFS serves.
type Attr struct {
	Mode  uint16
	Links uint16
	Size  uint64
}

// Extent is one piece of a read result: a byte range within a pinned cache
// block, or a hole. The caller must Unpin non-hole extents via Done.
type Extent struct {
	// Block is nil for holes.
	Block *buffercache.Block
	// Off and Len locate the range within the block (or the hole length).
	Off, Len int
}

// ReadResult carries a completed read.
type ReadResult struct {
	Extents []Extent
	// N is the number of bytes covered (may be less than requested at EOF).
	N int
	// EOF reports that the read reached end of file.
	EOF bool
	// Attr carries the file's attributes (NFS replies include them).
	Attr Attr
}

// Done unpins every extent. Call exactly once when finished with the data.
func (r *ReadResult) Done(fs *FS) {
	for _, e := range r.Extents {
		if e.Block != nil {
			fs.cache.Unpin(e.Block)
		}
	}
	r.Extents = nil
}

// Filler moves payload into a cache block during a write: blockOff/count
// locate the destination range in b.Data, srcOff the source range in the
// caller's payload. The filler performs (and its caller charges) the actual
// data movement — physical copy, key stamp, or nothing, depending on the
// server configuration.
type Filler func(b *buffercache.Block, blockOff, count, srcOff int)

// Mount reads the superblock and returns a mounted FS.
func Mount(node *simnet.Node, cache *buffercache.Cache, done func(*FS, error)) {
	cache.Get(0, true, func(b *buffercache.Block, err error) {
		if err != nil {
			done(nil, fmt.Errorf("mount: %w", err))
			return
		}
		sb, serr := DecodeSuper(b.Data)
		cache.Unpin(b)
		if serr != nil {
			done(nil, serr)
			return
		}
		fs := &FS{
			cache:     cache,
			node:      node,
			sb:        sb,
			blockHint: sb.DataStart,
			inodeHint: RootIno + 1,
		}
		done(fs, nil)
	})
}

// Super returns the superblock.
func (fs *FS) Super() SuperBlock { return fs.sb }

// Cache returns the underlying buffer cache.
func (fs *FS) Cache() *buffercache.Cache { return fs.cache }

// charge bills per-block file system logic to the node CPU.
func (fs *FS) charge(blocks int, then func()) {
	fs.node.Charge(sim.Duration(blocks)*fs.node.Cost.FSBlockNs, then)
}

// ---- inode table access ----

// GetInode reads an inode.
func (fs *FS) GetInode(ino uint32, done func(Inode, error)) {
	if ino == 0 || ino >= fs.sb.NumInodes {
		done(Inode{}, fmt.Errorf("%w: %d", ErrBadIno, ino))
		return
	}
	blk := fs.sb.InodeTableStart + int64(ino)/InodesPerBlock
	off := (int64(ino) % InodesPerBlock) * InodeSize
	fs.cache.Get(blk, true, func(b *buffercache.Block, err error) {
		if err != nil {
			done(Inode{}, err)
			return
		}
		node := DecodeInode(b.Data[off : off+InodeSize])
		fs.cache.Unpin(b)
		done(node, nil)
	})
}

// putInode writes an inode back.
func (fs *FS) putInode(ino uint32, in Inode, done func(error)) {
	blk := fs.sb.InodeTableStart + int64(ino)/InodesPerBlock
	off := (int64(ino) % InodesPerBlock) * InodeSize
	fs.cache.Get(blk, true, func(b *buffercache.Block, err error) {
		if err != nil {
			done(err)
			return
		}
		EncodeInode(in, b.Data[off:off+InodeSize])
		fs.cache.MarkDirty(b)
		fs.cache.Unpin(b)
		done(nil)
	})
}

// Getattr returns a file's attributes.
func (fs *FS) Getattr(ino uint32, done func(Attr, error)) {
	fs.GetInode(ino, func(in Inode, err error) {
		if err != nil {
			done(Attr{}, err)
			return
		}
		if in.Mode == ModeFree {
			done(Attr{}, ErrNotFound)
			return
		}
		done(Attr{Mode: in.Mode, Links: in.Links, Size: in.Size}, nil)
	})
}

// ---- bitmap allocation ----

// bitSearch scans a bitmap region for a clear bit, sets it, and returns its
// index. hint is the index to start from.
type bitSearch struct {
	fs         *FS
	start, len int64 // bitmap region in blocks
	limit      int64 // number of valid bits
	hint       int64
	done       func(int64, error)
}

func (s *bitSearch) run() {
	startBlk := s.hint / (BlockSize * 8)
	s.tryBlock(startBlk, 0)
}

func (s *bitSearch) tryBlock(blkIdx, scanned int64) {
	if scanned >= s.len {
		s.done(0, ErrNoSpace)
		return
	}
	if blkIdx >= s.len {
		blkIdx = 0
	}
	lbn := s.start + blkIdx
	s.fs.cache.Get(lbn, true, func(b *buffercache.Block, err error) {
		if err != nil {
			s.done(0, err)
			return
		}
		base := blkIdx * BlockSize * 8
		for i, by := range b.Data {
			if by == 0xff {
				continue
			}
			for bit := 0; bit < 8; bit++ {
				if by&(1<<bit) == 0 {
					idx := base + int64(i)*8 + int64(bit)
					if idx >= s.limit {
						break
					}
					b.Data[i] |= 1 << bit
					s.fs.cache.MarkDirty(b)
					s.fs.cache.Unpin(b)
					s.done(idx, nil)
					return
				}
			}
		}
		s.fs.cache.Unpin(b)
		s.tryBlock(blkIdx+1, scanned+1)
	})
}

// clearBit frees one bitmap bit.
func (fs *FS) clearBit(start, idx int64, done func(error)) {
	lbn := start + idx/(BlockSize*8)
	fs.cache.Get(lbn, true, func(b *buffercache.Block, err error) {
		if err != nil {
			done(err)
			return
		}
		byteIdx := (idx / 8) % BlockSize
		b.Data[byteIdx] &^= 1 << (idx % 8)
		fs.cache.MarkDirty(b)
		fs.cache.Unpin(b)
		done(nil)
	})
}

// allocBlock reserves one data block.
func (fs *FS) allocBlock(done func(int64, error)) {
	s := &bitSearch{
		fs:    fs,
		start: fs.sb.BlockBitmapStart,
		len:   fs.sb.BlockBitmapLen,
		limit: fs.sb.NumBlocks,
		hint:  fs.blockHint,
		done: func(idx int64, err error) {
			if err == nil {
				fs.blockHint = idx + 1
			}
			done(idx, err)
		},
	}
	s.run()
}

// freeBlock releases a data block and invalidates its cache entry.
func (fs *FS) freeBlock(lbn int64, done func(error)) {
	fs.cache.Drop(lbn)
	fs.clearBit(fs.sb.BlockBitmapStart, lbn, done)
}

// allocInode reserves an inode number.
func (fs *FS) allocInode(done func(uint32, error)) {
	s := &bitSearch{
		fs:    fs,
		start: fs.sb.InodeBitmapStart,
		len:   fs.sb.InodeBitmapLen,
		limit: int64(fs.sb.NumInodes),
		hint:  int64(fs.inodeHint),
		done: func(idx int64, err error) {
			if err != nil {
				done(0, ErrNoInodes)
				return
			}
			fs.inodeHint = uint32(idx) + 1
			done(uint32(idx), nil)
		},
	}
	s.run()
}

// freeInode releases an inode number.
func (fs *FS) freeInode(ino uint32, done func(error)) {
	fs.clearBit(fs.sb.InodeBitmapStart, int64(ino), done)
}

// allocZeroedBlock reserves a block and zeroes it in cache (for indirect
// pointer blocks and new directory blocks).
func (fs *FS) allocZeroedBlock(done func(int64, error)) {
	fs.allocBlock(func(lbn int64, err error) {
		if err != nil {
			done(0, err)
			return
		}
		fs.cache.GetForWrite(lbn, true, func(b *buffercache.Block, err error) {
			if err != nil {
				done(0, err)
				return
			}
			for i := range b.Data {
				b.Data[i] = 0
			}
			b.Logical = false
			fs.cache.MarkDirty(b)
			fs.cache.Unpin(b)
			done(lbn, nil)
		})
	})
}

// ---- block mapping ----

// bmap resolves a file block number to a device block, optionally
// allocating. It returns (0, nil) for holes when alloc is false. The inode
// is updated in place; the caller persists it if modified (reported via
// changed). fresh reports that this call allocated the data block — its
// on-disk content is stale (possibly a freed block's old bytes) and the
// caller must not read-fill it.
func (fs *FS) bmap(in *Inode, fbn int64, alloc bool, done func(lbn int64, changed, fresh bool, err error)) {
	switch {
	case fbn < 0 || fbn >= MaxFileBlocks:
		done(0, false, false, fmt.Errorf("%w: block %d", ErrFileTooBig, fbn))

	case fbn < NDirect:
		cur := int64(in.Direct[fbn])
		if cur != 0 || !alloc {
			done(cur, false, false, nil)
			return
		}
		fs.allocBlock(func(lbn int64, err error) {
			if err != nil {
				done(0, false, false, err)
				return
			}
			in.Direct[fbn] = uint32(lbn)
			done(lbn, true, true, nil)
		})

	case fbn < NDirect+PtrsPerBlock:
		idx := fbn - NDirect
		fs.withPtrBlock(int64(in.Indirect), alloc, func(ind int64, inoChanged bool, err error) {
			if err != nil {
				done(0, false, false, err)
				return
			}
			if ind == 0 {
				done(0, false, false, nil) // hole
				return
			}
			if inoChanged {
				in.Indirect = uint32(ind)
			}
			fs.ptrEntry(ind, idx, alloc, func(lbn int64, fresh bool, err error) {
				done(lbn, inoChanged, fresh, err)
			})
		})

	default:
		idx := fbn - NDirect - PtrsPerBlock
		outer := idx / PtrsPerBlock
		inner := idx % PtrsPerBlock
		fs.withPtrBlock(int64(in.DIndirect), alloc, func(dind int64, inoChanged bool, err error) {
			if err != nil {
				done(0, false, false, err)
				return
			}
			if dind == 0 {
				done(0, false, false, nil)
				return
			}
			if inoChanged {
				in.DIndirect = uint32(dind)
			}
			fs.ptrEntryOrAlloc(dind, outer, alloc, func(ind int64, err error) {
				if err != nil {
					done(0, false, false, err)
					return
				}
				if ind == 0 {
					done(0, inoChanged, false, nil)
					return
				}
				fs.ptrEntry(ind, inner, alloc, func(lbn int64, fresh bool, err error) {
					done(lbn, inoChanged, fresh, err)
				})
			})
		})
	}
}

// withPtrBlock ensures a pointer block exists (allocating if requested).
func (fs *FS) withPtrBlock(cur int64, alloc bool, done func(lbn int64, changed bool, err error)) {
	if cur != 0 || !alloc {
		done(cur, false, nil)
		return
	}
	fs.allocZeroedBlock(func(lbn int64, err error) {
		done(lbn, true, err)
	})
}

// ptrEntry reads (and optionally allocates) entry idx of a pointer block.
// fresh reports a new allocation.
func (fs *FS) ptrEntry(ptrBlk, idx int64, alloc bool, done func(int64, bool, error)) {
	fs.cache.Get(ptrBlk, true, func(b *buffercache.Block, err error) {
		if err != nil {
			done(0, false, err)
			return
		}
		off := idx * 4
		cur := int64(uint32(b.Data[off])<<24 | uint32(b.Data[off+1])<<16 | uint32(b.Data[off+2])<<8 | uint32(b.Data[off+3]))
		if cur != 0 || !alloc {
			fs.cache.Unpin(b)
			done(cur, false, nil)
			return
		}
		fs.allocBlock(func(lbn int64, aerr error) {
			if aerr != nil {
				fs.cache.Unpin(b)
				done(0, false, aerr)
				return
			}
			v := uint32(lbn)
			b.Data[off] = byte(v >> 24)
			b.Data[off+1] = byte(v >> 16)
			b.Data[off+2] = byte(v >> 8)
			b.Data[off+3] = byte(v)
			fs.cache.MarkDirty(b)
			fs.cache.Unpin(b)
			done(lbn, true, nil)
		})
	})
}

// ptrEntryOrAlloc is ptrEntry but allocates a zeroed pointer block as the
// entry (for the outer level of double indirection).
func (fs *FS) ptrEntryOrAlloc(ptrBlk, idx int64, alloc bool, done func(int64, error)) {
	fs.cache.Get(ptrBlk, true, func(b *buffercache.Block, err error) {
		if err != nil {
			done(0, err)
			return
		}
		off := idx * 4
		cur := int64(uint32(b.Data[off])<<24 | uint32(b.Data[off+1])<<16 | uint32(b.Data[off+2])<<8 | uint32(b.Data[off+3]))
		if cur != 0 || !alloc {
			fs.cache.Unpin(b)
			done(cur, nil)
			return
		}
		fs.allocZeroedBlock(func(lbn int64, aerr error) {
			if aerr != nil {
				fs.cache.Unpin(b)
				done(0, aerr)
				return
			}
			v := uint32(lbn)
			b.Data[off] = byte(v >> 24)
			b.Data[off+1] = byte(v >> 16)
			b.Data[off+2] = byte(v >> 8)
			b.Data[off+3] = byte(v)
			fs.cache.MarkDirty(b)
			fs.cache.Unpin(b)
			done(lbn, nil)
		})
	})
}

// bmapRange resolves a run of file blocks to device blocks sequentially.
// freshs marks blocks allocated by this call (stale on-disk content).
func (fs *FS) bmapRange(in *Inode, fbn int64, count int, alloc bool, done func(lbns []int64, freshs []bool, changed bool, err error)) {
	lbns := make([]int64, count)
	freshs := make([]bool, count)
	anyChanged := false
	var step func(i int)
	step = func(i int) {
		if i == count {
			done(lbns, freshs, anyChanged, nil)
			return
		}
		fs.bmap(in, fbn+int64(i), alloc, func(lbn int64, changed, fresh bool, err error) {
			if err != nil {
				done(nil, nil, anyChanged, err)
				return
			}
			if changed {
				anyChanged = true
			}
			lbns[i] = lbn
			freshs[i] = fresh
			step(i + 1)
		})
	}
	step(0)
}
