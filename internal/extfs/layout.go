// Package extfs implements the simple inode-based file system (an ext2-lite)
// that the pass-through NFS server and kHTTPd serve from. It lives on a
// remote block device reached through the buffer cache and the iSCSI
// initiator, and — critically for NCache — it distinguishes metadata blocks
// (superblock, bitmaps, inode table, directories, indirect blocks) from
// regular file data on every block request, which is the classification
// signal §3.3 extracts from "the page data structure associated with iSCSI
// requests".
package extfs

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// On-disk constants.
const (
	// Magic identifies a formatted volume.
	Magic uint32 = 0x4e434653 // "NCFS"
	// BlockSize is the file system block size, matching the paper's
	// 4 KB buffer-cache chunks.
	BlockSize = 4096
	// InodeSize is the on-disk inode record size.
	InodeSize = 64
	// InodesPerBlock is how many inodes fit one block.
	InodesPerBlock = BlockSize / InodeSize
	// NDirect is the number of direct block pointers per inode.
	NDirect = 10
	// PtrsPerBlock is the number of block pointers in an indirect block.
	PtrsPerBlock = BlockSize / 4
	// DirentSize is the fixed directory record size.
	DirentSize = 64
	// DirentsPerBlock is how many records fit one directory block.
	DirentsPerBlock = BlockSize / DirentSize
	// MaxNameLen is the longest file name.
	MaxNameLen = DirentSize - 6
	// RootIno is the root directory's inode number.
	RootIno uint32 = 1
)

// Inode modes.
const (
	ModeFree uint16 = 0
	ModeFile uint16 = 1
	ModeDir  uint16 = 2
)

// Maximum file size addressable through direct + single + double indirect
// pointers.
const MaxFileBlocks = NDirect + PtrsPerBlock + PtrsPerBlock*PtrsPerBlock

// Errors surfaced by the file system.
var (
	ErrBadMagic    = errors.New("extfs: bad superblock magic")
	ErrNotDir      = errors.New("extfs: not a directory")
	ErrIsDir       = errors.New("extfs: is a directory")
	ErrNotFound    = errors.New("extfs: no such file")
	ErrExists      = errors.New("extfs: file exists")
	ErrNoSpace     = errors.New("extfs: out of space")
	ErrNoInodes    = errors.New("extfs: out of inodes")
	ErrNameTooLong = errors.New("extfs: name too long")
	ErrFileTooBig  = errors.New("extfs: file too large")
	ErrNotEmpty    = errors.New("extfs: directory not empty")
	ErrBadIno      = errors.New("extfs: bad inode number")
)

// SuperBlock describes the volume layout.
type SuperBlock struct {
	Magic            uint32
	BlockSize        uint32
	NumBlocks        int64
	NumInodes        uint32
	InodeBitmapStart int64
	InodeBitmapLen   int64
	BlockBitmapStart int64
	BlockBitmapLen   int64
	InodeTableStart  int64
	InodeTableLen    int64
	DataStart        int64
}

// EncodeSuper serializes the superblock into a block-sized buffer.
func EncodeSuper(sb SuperBlock, dst []byte) {
	binary.BigEndian.PutUint32(dst[0:], sb.Magic)
	binary.BigEndian.PutUint32(dst[4:], sb.BlockSize)
	binary.BigEndian.PutUint64(dst[8:], uint64(sb.NumBlocks))
	binary.BigEndian.PutUint32(dst[16:], sb.NumInodes)
	binary.BigEndian.PutUint64(dst[20:], uint64(sb.InodeBitmapStart))
	binary.BigEndian.PutUint64(dst[28:], uint64(sb.InodeBitmapLen))
	binary.BigEndian.PutUint64(dst[36:], uint64(sb.BlockBitmapStart))
	binary.BigEndian.PutUint64(dst[44:], uint64(sb.BlockBitmapLen))
	binary.BigEndian.PutUint64(dst[52:], uint64(sb.InodeTableStart))
	binary.BigEndian.PutUint64(dst[60:], uint64(sb.InodeTableLen))
	binary.BigEndian.PutUint64(dst[68:], uint64(sb.DataStart))
}

// DecodeSuper parses a superblock.
func DecodeSuper(src []byte) (SuperBlock, error) {
	if len(src) < 76 {
		return SuperBlock{}, fmt.Errorf("extfs: short superblock")
	}
	sb := SuperBlock{
		Magic:            binary.BigEndian.Uint32(src[0:]),
		BlockSize:        binary.BigEndian.Uint32(src[4:]),
		NumBlocks:        int64(binary.BigEndian.Uint64(src[8:])),
		NumInodes:        binary.BigEndian.Uint32(src[16:]),
		InodeBitmapStart: int64(binary.BigEndian.Uint64(src[20:])),
		InodeBitmapLen:   int64(binary.BigEndian.Uint64(src[28:])),
		BlockBitmapStart: int64(binary.BigEndian.Uint64(src[36:])),
		BlockBitmapLen:   int64(binary.BigEndian.Uint64(src[44:])),
		InodeTableStart:  int64(binary.BigEndian.Uint64(src[52:])),
		InodeTableLen:    int64(binary.BigEndian.Uint64(src[60:])),
		DataStart:        int64(binary.BigEndian.Uint64(src[68:])),
	}
	if sb.Magic != Magic {
		return SuperBlock{}, ErrBadMagic
	}
	return sb, nil
}

// Inode is the in-memory form of an on-disk inode.
type Inode struct {
	Mode   uint16
	Links  uint16
	Size   uint64
	Direct [NDirect]uint32
	// Indirect and DIndirect are single/double indirect pointer blocks
	// (0 = absent).
	Indirect  uint32
	DIndirect uint32
}

// EncodeInode serializes an inode into its 64-byte slot.
func EncodeInode(ino Inode, dst []byte) {
	binary.BigEndian.PutUint16(dst[0:], ino.Mode)
	binary.BigEndian.PutUint16(dst[2:], ino.Links)
	binary.BigEndian.PutUint64(dst[4:], ino.Size)
	for i := 0; i < NDirect; i++ {
		binary.BigEndian.PutUint32(dst[12+4*i:], ino.Direct[i])
	}
	binary.BigEndian.PutUint32(dst[52:], ino.Indirect)
	binary.BigEndian.PutUint32(dst[56:], ino.DIndirect)
}

// DecodeInode parses an inode slot.
func DecodeInode(src []byte) Inode {
	var ino Inode
	ino.Mode = binary.BigEndian.Uint16(src[0:])
	ino.Links = binary.BigEndian.Uint16(src[2:])
	ino.Size = binary.BigEndian.Uint64(src[4:])
	for i := 0; i < NDirect; i++ {
		ino.Direct[i] = binary.BigEndian.Uint32(src[12+4*i:])
	}
	ino.Indirect = binary.BigEndian.Uint32(src[52:])
	ino.DIndirect = binary.BigEndian.Uint32(src[56:])
	return ino
}

// Dirent is one directory record.
type Dirent struct {
	Ino  uint32
	Name string
}

// EncodeDirent serializes a directory record into its 64-byte slot.
func EncodeDirent(d Dirent, dst []byte) error {
	if len(d.Name) > MaxNameLen {
		return fmt.Errorf("%w: %q", ErrNameTooLong, d.Name)
	}
	for i := range dst[:DirentSize] {
		dst[i] = 0
	}
	binary.BigEndian.PutUint32(dst[0:], d.Ino)
	dst[4] = byte(len(d.Name))
	copy(dst[5:], d.Name)
	return nil
}

// DecodeDirent parses a directory slot. A zero inode marks a free slot.
func DecodeDirent(src []byte) Dirent {
	n := int(src[4])
	if n > MaxNameLen {
		n = MaxNameLen
	}
	return Dirent{
		Ino:  binary.BigEndian.Uint32(src[0:]),
		Name: string(src[5 : 5+n]),
	}
}

// Layout computes a volume layout for a device of numBlocks blocks with the
// given inode count.
func Layout(numBlocks int64, numInodes uint32) SuperBlock {
	inodeBitmapLen := (int64(numInodes) + BlockSize*8 - 1) / (BlockSize * 8)
	blockBitmapLen := (numBlocks + BlockSize*8 - 1) / (BlockSize * 8)
	inodeTableLen := (int64(numInodes) + InodesPerBlock - 1) / InodesPerBlock
	sb := SuperBlock{
		Magic:            Magic,
		BlockSize:        BlockSize,
		NumBlocks:        numBlocks,
		NumInodes:        numInodes,
		InodeBitmapStart: 1,
		InodeBitmapLen:   inodeBitmapLen,
	}
	sb.BlockBitmapStart = sb.InodeBitmapStart + inodeBitmapLen
	sb.BlockBitmapLen = blockBitmapLen
	sb.InodeTableStart = sb.BlockBitmapStart + blockBitmapLen
	sb.InodeTableLen = inodeTableLen
	sb.DataStart = sb.InodeTableStart + inodeTableLen
	return sb
}
