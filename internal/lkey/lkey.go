// Package lkey defines the in-band logical-copy keys at the heart of
// NCache. When the NCache module captures a payload into its network-centric
// cache, the upper layers (file-system buffer cache, NFS daemon, reply
// packets) carry only "a key and some junk data" (§3.2): a small marker
// stamped at the front of the otherwise meaningless block. Layers that do
// not interpret payloads move these markers around with 32-byte copies —
// the logical copying that replaces physical copying — and the driver-level
// hook recognizes them in outgoing packets to substitute the real data.
//
// A key can carry an LBN (storage block number), an FHO (file handle +
// offset), or both: a block that was written by a client (FHO) and later
// flushed to storage (LBN) keeps both identities, and substitution consults
// the FHO cache first so clients always see the freshest data (§3.4).
package lkey

import (
	"bytes"
	"encoding/binary"

	"ncache/internal/netbuf"
)

// Size is the encoded key size. Every logical block must be at least this
// large (file system blocks are 4 KB, so this never binds).
const Size = 40

// magic distinguishes key-carrying junk from real payload bytes. It is
// chosen to be vanishingly unlikely in real data; production NCache relies
// on out-of-band page flags instead, but the in-band form keeps this
// implementation self-contained and matches the paper's "key and junk"
// description.
var magic = [8]byte{'N', 'C', 'L', 'K', 'E', 'Y', '0', '1'}

// Flags marking which identities a key carries.
const (
	HasLBN uint8 = 1 << 0
	HasFHO uint8 = 1 << 1
)

// FH is a fixed-size NFS file handle.
type FH [8]byte

// Key identifies a cached payload.
type Key struct {
	Flags uint8
	// LBN is the storage logical block number (valid when HasLBN).
	LBN int64
	// FH and Off identify a file block (valid when HasFHO).
	FH  FH
	Off uint64
	// SubOff is a byte offset within the cached block, used when a reply
	// carries only part of a block (unaligned NFS reads): substitution
	// splices entry[SubOff : SubOff+len] instead of the block head.
	SubOff uint32
}

// WithSubOff returns a copy of k addressing a sub-range of the block.
func (k Key) WithSubOff(off uint32) Key {
	k.SubOff = off
	return k
}

// ForLBN returns a key carrying only a storage block identity.
func ForLBN(lbn int64) Key { return Key{Flags: HasLBN, LBN: lbn} }

// ForFHO returns a key carrying only a file-block identity.
func ForFHO(fh FH, off uint64) Key { return Key{Flags: HasFHO, FH: fh, Off: off} }

// WithLBN returns a copy of k that additionally carries an LBN identity
// (set on dirty FHO blocks when their storage location becomes known at
// flush/remap time).
func (k Key) WithLBN(lbn int64) Key {
	k.Flags |= HasLBN
	k.LBN = lbn
	return k
}

// Marshal encodes the key.
func (k Key) Marshal() [Size]byte {
	var out [Size]byte
	copy(out[0:8], magic[:])
	out[8] = k.Flags
	binary.BigEndian.PutUint32(out[12:16], k.SubOff)
	binary.BigEndian.PutUint64(out[16:24], uint64(k.LBN))
	copy(out[24:32], k.FH[:])
	binary.BigEndian.PutUint64(out[32:40], k.Off)
	return out
}

// Parse decodes a key from the front of p. It reports false when p does not
// start with a key marker.
func Parse(p []byte) (Key, bool) {
	if len(p) < Size || !bytes.Equal(p[0:8], magic[:]) {
		return Key{}, false
	}
	var k Key
	k.Flags = p[8]
	k.SubOff = binary.BigEndian.Uint32(p[12:16])
	k.LBN = int64(binary.BigEndian.Uint64(p[16:24]))
	copy(k.FH[:], p[24:32])
	k.Off = binary.BigEndian.Uint64(p[32:40])
	return k, true
}

// Stamp writes the key marker at the front of a block, turning it into a
// logical block. The rest of the block is left as junk.
func Stamp(dst []byte, k Key) {
	m := k.Marshal()
	copy(dst, m[:])
}

// Clear removes a key marker (used when a logical block is overwritten with
// real data).
func Clear(dst []byte) {
	if len(dst) >= 8 {
		for i := 0; i < 8; i++ {
			dst[i] = 0
		}
	}
}

// FromChain peeks for a key at the front of a payload chain without
// consuming it.
func FromChain(c *netbuf.Chain) (Key, bool) {
	if c.Len() < Size {
		return Key{}, false
	}
	bufs := c.Bufs()
	// Fast path: the key sits within the first non-empty buffer.
	for _, b := range bufs {
		if b.Len() == 0 {
			continue
		}
		if b.Len() >= Size {
			return Parse(b.Bytes())
		}
		break
	}
	head := make([]byte, Size)
	c.Gather(head)
	return Parse(head)
}

// StampChain builds a block-sized junk chain carrying the key, reusing a
// single buffer. It is what logical data looks like on the wire before
// driver-level substitution.
func StampChain(k Key, blockBytes int) *netbuf.Chain {
	if blockBytes < Size {
		blockBytes = Size
	}
	b := netbuf.New(netbuf.DefaultHeadroom, blockBytes)
	_ = b.Put(blockBytes)
	Stamp(b.Bytes(), k)
	return netbuf.ChainOf(b)
}

// StampChainPool is StampChain drawing the junk buffer from a pool (pooled
// buffers are zeroed on reuse, so the junk bytes match a fresh allocation).
// The single-buffer layout is load-bearing: the substitution hook parses one
// key per wire buffer, so a junk block must stay one buffer. It falls back
// to a fresh buffer when the block exceeds the pool's geometry or the pool
// is exhausted.
func StampChainPool(p *netbuf.Pool, k Key, blockBytes int) *netbuf.Chain {
	if blockBytes < Size {
		blockBytes = Size
	}
	if p == nil || blockBytes > p.BufSize() {
		return StampChain(k, blockBytes)
	}
	b, err := p.Get()
	if err != nil {
		return StampChain(k, blockBytes)
	}
	_ = b.Put(blockBytes)
	Stamp(b.Bytes(), k)
	return netbuf.ChainOf(b)
}
