package lkey

import (
	"testing"
	"testing/quick"

	"ncache/internal/netbuf"
)

func TestMarshalParseRoundTrip(t *testing.T) {
	cases := []Key{
		ForLBN(12345),
		ForFHO(FH{1, 2, 3, 4, 5, 6, 7, 8}, 1<<40),
		ForFHO(FH{9}, 4096).WithLBN(77),
		{},
	}
	for _, in := range cases {
		m := in.Marshal()
		out, ok := Parse(m[:])
		if !ok {
			t.Fatalf("Parse(%+v) failed", in)
		}
		if out != in {
			t.Fatalf("round trip: got %+v, want %+v", out, in)
		}
	}
}

func TestParseRejectsNonKeys(t *testing.T) {
	if _, ok := Parse(make([]byte, Size)); ok {
		t.Fatal("zero bytes parsed as key")
	}
	if _, ok := Parse([]byte("short")); ok {
		t.Fatal("short buffer parsed as key")
	}
	real := make([]byte, 4096)
	for i := range real {
		real[i] = byte(i)
	}
	if _, ok := Parse(real); ok {
		t.Fatal("payload bytes parsed as key")
	}
}

func TestStampAndClear(t *testing.T) {
	block := make([]byte, 4096)
	Stamp(block, ForLBN(9))
	k, ok := Parse(block)
	if !ok || k.LBN != 9 {
		t.Fatalf("stamped key = %+v, ok=%v", k, ok)
	}
	Clear(block)
	if _, ok := Parse(block); ok {
		t.Fatal("cleared block still parses as key")
	}
}

func TestFromChainAcrossBufferBoundaries(t *testing.T) {
	k := ForFHO(FH{0xaa}, 123).WithLBN(55)
	m := k.Marshal()
	block := make([]byte, 4096)
	copy(block, m[:])
	// Key split across tiny buffers.
	c := netbuf.ChainFromBytes(block, 7)
	got, ok := FromChain(c)
	if !ok || got != k {
		t.Fatalf("FromChain = %+v ok=%v", got, ok)
	}
	// Leading empty buffer.
	c2 := netbuf.ChainOf(netbuf.New(16, 0))
	for _, b := range netbuf.ChainFromBytes(block, 1500).Bufs() {
		c2.Append(b)
	}
	got2, ok := FromChain(c2)
	if !ok || got2 != k {
		t.Fatalf("FromChain with empty leader = %+v ok=%v", got2, ok)
	}
}

func TestStampChain(t *testing.T) {
	c := StampChain(ForLBN(3), 4096)
	if c.Len() != 4096 {
		t.Fatalf("Len = %d", c.Len())
	}
	k, ok := FromChain(c)
	if !ok || k.LBN != 3 {
		t.Fatalf("key = %+v ok=%v", k, ok)
	}
	// Tiny block sizes are padded up to the key size.
	c2 := StampChain(ForLBN(1), 8)
	if c2.Len() != Size {
		t.Fatalf("tiny StampChain len = %d, want %d", c2.Len(), Size)
	}
}

func TestWithLBNPreservesFHO(t *testing.T) {
	k := ForFHO(FH{5}, 999).WithLBN(42)
	if k.Flags != HasLBN|HasFHO {
		t.Fatalf("flags = %b", k.Flags)
	}
	if k.LBN != 42 || k.Off != 999 || k.FH != (FH{5}) {
		t.Fatalf("key = %+v", k)
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(flags uint8, lbn int64, fh [8]byte, off uint64) bool {
		in := Key{Flags: flags, LBN: lbn, FH: FH(fh), Off: off}
		m := in.Marshal()
		out, ok := Parse(m[:])
		return ok && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
