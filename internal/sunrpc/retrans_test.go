package sunrpc

import (
	"errors"
	"testing"

	"ncache/internal/fault"
	"ncache/internal/proto/eth"
	"ncache/internal/proto/ipv4"
	"ncache/internal/proto/udp"
	"ncache/internal/sim"
	"ncache/internal/simnet"
	"ncache/internal/xdr"
)

// faultRig is rig plus an armed fault injector on the network.
func faultRig(t *testing.T, spec string) (*sim.Engine, *host, *host) {
	t.Helper()
	eng := sim.NewEngine()
	nw := simnet.NewNetwork(eng, 5*sim.Microsecond)
	mk := func(name string, addr eth.Addr) *host {
		n := simnet.NewNode(eng, name, simnet.DefaultProfile())
		if _, err := nw.Attach(n, addr, simnet.Gbps); err != nil {
			t.Fatalf("attach: %v", err)
		}
		return &host{node: n, udp: udp.NewTransport(ipv4.NewStack(n)), addr: addr}
	}
	cl, sv := mk("client", 1), mk("server", 2)
	in, err := fault.NewFromSpec(eng, 1, spec)
	if err != nil {
		t.Fatalf("NewFromSpec: %v", err)
	}
	nw.SetFaults(in)
	in.Arm()
	return eng, cl, sv
}

// doubler registers the canonical test procedure and returns a pointer to
// its execution count (retransmitted calls execute server-side again: this
// minimal server has no duplicate-request cache).
func doubler(t *testing.T, sv *host) *int {
	t.Helper()
	srv, err := NewServer(sv.udp, 2049)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	execs := new(int)
	srv.Register(progTest, versTest, 7, func(c Call) {
		*execs++
		d := xdr.NewDecoder(c.Body.Flatten())
		c.Body.Release()
		v, _ := d.Uint32()
		e := xdr.NewEncoder(8)
		e.Uint32(v * 2)
		if err := c.Reply(e.Bytes(), nil); err != nil {
			t.Errorf("Reply: %v", err)
		}
	})
	return execs
}

// callOnce issues one doubling call and returns (replies seen, result, err).
func callOnce(t *testing.T, eng *sim.Engine, cl *host, dst eth.Addr, rpc *Client) (int, uint32, error) {
	t.Helper()
	e := xdr.NewEncoder(8)
	e.Uint32(21)
	replies, result := 0, uint32(0)
	var cerr error
	err := rpc.Call(dst, 2049, progTest, versTest, 7, e.Bytes(), nil, func(r Reply, err error) {
		replies++
		cerr = err
		if err == nil {
			d := xdr.NewDecoder(r.Body.Flatten())
			r.Body.Release()
			result, _ = d.Uint32()
		}
	})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return replies, result, cerr
}

// TestFaultRetransmitRecoversLoss drops the first two transmissions of the
// call; the client's RTO must fire twice (with backoff) and the third try
// completes the call transparently.
func TestFaultRetransmitRecoversLoss(t *testing.T) {
	eng, cl, sv := faultRig(t, "drop:client.tx:rate=1:count=2")
	execs := doubler(t, sv)
	rpc, err := NewClient(cl.udp, cl.addr, 700)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	rpc.SetRetransmit(sim.Millisecond, 4)

	replies, result, cerr := callOnce(t, eng, cl, sv.addr, rpc)
	if cerr != nil || replies != 1 || result != 42 {
		t.Fatalf("replies=%d result=%d err=%v", replies, result, cerr)
	}
	if rpc.Retransmits != 2 || rpc.Timeouts != 0 {
		t.Fatalf("retransmits=%d timeouts=%d, want 2/0", rpc.Retransmits, rpc.Timeouts)
	}
	if *execs != 1 {
		t.Fatalf("server executed %d times, want 1 (both drops were pre-delivery)", *execs)
	}
	if rpc.Pending() != 0 {
		t.Fatalf("pending = %d after completion", rpc.Pending())
	}
	// The recovery wait (two RTOs, the second doubled) elapsed on the clock.
	if eng.Now() < sim.Time(3*sim.Millisecond) {
		t.Fatalf("clock %v, want ≥3ms of backoff", eng.Now())
	}
}

// TestFaultRetransmitGivesUp drops every transmission: after maxTries the
// call must surface ErrTimeout exactly once and leave no pending state.
func TestFaultRetransmitGivesUp(t *testing.T) {
	eng, cl, sv := faultRig(t, "drop:client.tx:rate=1")
	execs := doubler(t, sv)
	rpc, err := NewClient(cl.udp, cl.addr, 700)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	rpc.SetRetransmit(sim.Millisecond, 3)

	replies, _, cerr := callOnce(t, eng, cl, sv.addr, rpc)
	if replies != 1 || !errors.Is(cerr, ErrTimeout) {
		t.Fatalf("replies=%d err=%v, want one ErrTimeout", replies, cerr)
	}
	if rpc.Retransmits != 2 || rpc.Timeouts != 1 {
		t.Fatalf("retransmits=%d timeouts=%d, want 2/1", rpc.Retransmits, rpc.Timeouts)
	}
	if *execs != 0 || rpc.Pending() != 0 {
		t.Fatalf("execs=%d pending=%d after giving up", *execs, rpc.Pending())
	}
}

// TestFaultDuplicateReplySuppressed delays the first reply beyond the RTO:
// the client retransmits, the server (no duplicate-request cache) executes
// again and both replies eventually arrive. The second-arriving reply must
// be suppressed as a duplicate — not surfaced, not counted as malformed.
func TestFaultDuplicateReplySuppressed(t *testing.T) {
	eng, cl, sv := faultRig(t, "delay:server.tx:rate=1:count=1:delay=2ms")
	execs := doubler(t, sv)
	rpc, err := NewClient(cl.udp, cl.addr, 700)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	rpc.SetRetransmit(sim.Millisecond, 4)

	replies, result, cerr := callOnce(t, eng, cl, sv.addr, rpc)
	if cerr != nil || replies != 1 || result != 42 {
		t.Fatalf("replies=%d result=%d err=%v, want exactly one success", replies, result, cerr)
	}
	if *execs != 2 {
		t.Fatalf("server executed %d times, want 2 (original + retransmit)", *execs)
	}
	if rpc.Retransmits != 1 {
		t.Fatalf("retransmits = %d, want 1", rpc.Retransmits)
	}
	if rpc.DupReplies != 1 {
		t.Fatalf("dup replies = %d, want 1", rpc.DupReplies)
	}
	if rpc.BadReplies != 0 {
		t.Fatalf("duplicate counted as malformed: BadReplies = %d", rpc.BadReplies)
	}
	if rpc.Pending() != 0 {
		t.Fatalf("pending = %d", rpc.Pending())
	}
}

// TestFaultRetransmitOffByDefault checks the no-fault contract: without
// SetRetransmit a lost call simply stays lost (the legacy at-most-once
// behaviour the seed baselines were measured under), with no timer state.
func TestFaultRetransmitOffByDefault(t *testing.T) {
	eng, cl, sv := faultRig(t, "drop:client.tx:rate=1:count=1")
	doubler(t, sv)
	rpc, err := NewClient(cl.udp, cl.addr, 700)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	replies, _, _ := callOnce(t, eng, cl, sv.addr, rpc)
	if replies != 0 {
		t.Fatalf("replies = %d, want 0 (no retransmission configured)", replies)
	}
	if rpc.Retransmits != 0 || rpc.Timeouts != 0 {
		t.Fatalf("retransmit machinery ran while disabled: %d/%d", rpc.Retransmits, rpc.Timeouts)
	}
	if rpc.Pending() != 1 {
		t.Fatalf("pending = %d, want the lost call still outstanding", rpc.Pending())
	}
}
