package sunrpc

import (
	"bytes"
	"testing"

	"ncache/internal/netbuf"
	"ncache/internal/proto/ipv4"
	"ncache/internal/proto/tcp"
	"ncache/internal/sim"
	"ncache/internal/simnet"
	"ncache/internal/xdr"
)

func TestRecordStreamFraming(t *testing.T) {
	// Three records of varying size, delivered in awkward chunks.
	var wire []byte
	var want [][]byte
	for i, n := range []int{1, 100, 4096} {
		payload := bytes.Repeat([]byte{byte('A' + i)}, n)
		want = append(want, payload)
		mark := make([]byte, 4)
		mark[0] = 0x80 | byte(n>>24)
		mark[1] = byte(n >> 16)
		mark[2] = byte(n >> 8)
		mark[3] = byte(n)
		wire = append(wire, mark...)
		wire = append(wire, payload...)
	}
	for _, chunk := range []int{1, 3, 7, 64, 5000} {
		var got [][]byte
		rs := newRecordStream(func(rec *netbuf.Chain) {
			got = append(got, rec.Flatten())
			rec.Release()
		})
		for off := 0; off < len(wire); off += chunk {
			end := off + chunk
			if end > len(wire) {
				end = len(wire)
			}
			rs.push(netbuf.ChainFromBytes(wire[off:end], 48))
		}
		if len(got) != 3 {
			t.Fatalf("chunk %d: records = %d, want 3", chunk, len(got))
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("chunk %d: record %d mismatch", chunk, i)
			}
		}
		if rs.Errors != 0 {
			t.Fatalf("chunk %d: errors = %d", chunk, rs.Errors)
		}
	}
}

func TestRecordStreamRejectsNonFinalFragment(t *testing.T) {
	rs := newRecordStream(func(rec *netbuf.Chain) { rec.Release() })
	// Mark without the last-fragment bit.
	rs.push(netbuf.ChainFromBytes([]byte{0x00, 0, 0, 4, 1, 2, 3, 4}, 8))
	if rs.Errors != 1 {
		t.Fatalf("errors = %d, want 1", rs.Errors)
	}
}

func TestStreamRPCEndToEnd(t *testing.T) {
	eng := sim.NewEngine()
	nw := simnet.NewNetwork(eng, 5*sim.Microsecond)
	sn := simnet.NewNode(eng, "server", simnet.DefaultProfile())
	cn := simnet.NewNode(eng, "client", simnet.DefaultProfile())
	if _, err := nw.Attach(sn, 1, simnet.Gbps); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Attach(cn, 2, simnet.Gbps); err != nil {
		t.Fatal(err)
	}
	sTCP := tcp.NewTransport(ipv4.NewStack(sn))
	cTCP := tcp.NewTransport(ipv4.NewStack(cn))

	srv, err := NewStreamServer(sn, sTCP, 111)
	if err != nil {
		t.Fatalf("NewStreamServer: %v", err)
	}
	srv.Register(7, 1, 3, func(c Call) {
		// Echo args and payload back, zero-copy.
		args := c.Body.Flatten()
		c.Body.Release()
		payload := netbuf.ChainFromBytes(bytes.Repeat([]byte{0xEE}, 10000), netbuf.DefaultBufSize)
		if err := c.Reply(args, payload); err != nil {
			t.Errorf("Reply: %v", err)
		}
	})

	var client *StreamClient
	DialStream(cn, cTCP.DialConn, 2, 1, 111, func(c *StreamClient, err error) {
		if err != nil {
			t.Fatalf("DialStream: %v", err)
		}
		client = c
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if client == nil {
		t.Fatal("no stream client")
	}

	e := xdr.NewEncoder(8)
	e.Uint32(0xfeedface)
	var gotHead uint32
	var gotBody int
	if err := client.Call(0, 0, 7, 1, 3, e.Bytes(), nil, func(r Reply, err error) {
		if err != nil {
			t.Fatalf("reply: %v", err)
		}
		d := xdr.NewDecoder(r.Body.Flatten())
		gotHead, _ = d.Uint32()
		gotBody = r.Body.Len() - 4
		r.Body.Release()
	}); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if gotHead != 0xfeedface {
		t.Fatalf("echoed head = %#x", gotHead)
	}
	if gotBody != 10000 {
		t.Fatalf("payload = %d, want 10000", gotBody)
	}
	if client.Pending() != 0 || srv.BadCalls != 0 || client.BadReplies != 0 {
		t.Fatalf("counters: pending=%d bad=%d/%d", client.Pending(), srv.BadCalls, client.BadReplies)
	}
}

func TestStreamRPCUnknownProc(t *testing.T) {
	eng := sim.NewEngine()
	nw := simnet.NewNetwork(eng, sim.Microsecond)
	sn := simnet.NewNode(eng, "server", simnet.DefaultProfile())
	cn := simnet.NewNode(eng, "client", simnet.DefaultProfile())
	if _, err := nw.Attach(sn, 1, simnet.Gbps); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Attach(cn, 2, simnet.Gbps); err != nil {
		t.Fatal(err)
	}
	sTCP := tcp.NewTransport(ipv4.NewStack(sn))
	cTCP := tcp.NewTransport(ipv4.NewStack(cn))
	srv, err := NewStreamServer(sn, sTCP, 111)
	if err != nil {
		t.Fatal(err)
	}
	srv.Register(7, 1, 1, func(c Call) { c.Body.Release() })
	var client *StreamClient
	DialStream(cn, cTCP.DialConn, 2, 1, 111, func(c *StreamClient, err error) { client = c })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	var accept uint32 = 999
	if err := client.Call(0, 0, 7, 1, 42, nil, nil, func(r Reply, err error) {
		if err == nil {
			accept = r.Accept
			if r.Body != nil {
				r.Body.Release()
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if accept != AcceptProcUnavail {
		t.Fatalf("accept = %d, want proc-unavail", accept)
	}
}
