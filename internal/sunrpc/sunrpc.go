// Package sunrpc implements ONC RPC v2 (RFC 5531) over the simulated UDP
// transport: call/reply framing with AUTH_NONE credentials, a client with
// xid matching, and a server with program/procedure dispatch.
//
// Bodies are netbuf chains, not byte slices: an NFS WRITE call arrives with
// its file data still in the original wire buffers (where the NCache module
// captures it), and an NFS READ reply is composed as a small XDR header
// chain plus a payload chain appended without copying.
package sunrpc

import (
	"errors"
	"fmt"

	"ncache/internal/netbuf"
	"ncache/internal/proto/eth"
	"ncache/internal/proto/udp"
	"ncache/internal/sim"
	"ncache/internal/simnet"
	"ncache/internal/trace"
	"ncache/internal/xdr"
)

// RPC constants.
const (
	rpcVersion = 2
	msgCall    = 0
	msgReply   = 1
)

// Accept status values in replies.
const (
	AcceptSuccess      = 0
	AcceptProgUnavail  = 1
	AcceptProgMismatch = 2
	AcceptProcUnavail  = 3
	AcceptGarbageArgs  = 4
	AcceptSystemErr    = 5
)

// callHeaderLen is the encoded size of a call header with AUTH_NONE:
// xid(4) mtype(4) rpcvers(4) prog(4) vers(4) proc(4) cred(8) verf(8).
const callHeaderLen = 40

// replyHeaderLen is the encoded size of an accepted reply header:
// xid(4) mtype(4) reply_stat(4) verf(8) accept_stat(4).
const replyHeaderLen = 24

// Errors surfaced by the layer.
var (
	ErrBadMessage = errors.New("sunrpc: malformed message")
	ErrNotReply   = errors.New("sunrpc: not a reply")
	// ErrTimeout reports a call abandoned after exhausting retransmissions.
	ErrTimeout = errors.New("sunrpc: call timed out")
)

// Call is an inbound RPC call presented to a server handler.
type Call struct {
	Xid  uint32
	Prog uint32
	Vers uint32
	Proc uint32
	// Src/SrcPort identify the caller; Dst is the local address the call
	// arrived on (replies are sourced from it).
	Src     eth.Addr
	SrcPort uint16
	Dst     eth.Addr
	// Body holds the argument bytes in the original wire buffers — on the
	// registered-receive path, buffers this node's RX ring adopted at
	// delivery. Ownership contract: the handler owns the references and
	// must either Release the chain or hand it to an API documented to
	// take ownership; retaining payload past the call (NCache capture)
	// requires aliasing via Slice/SubChain or Acquire.
	Body *netbuf.Chain

	// send transmits a composed reply on the call's transport (datagram
	// or record-marked stream).
	send func(*netbuf.Chain) error
	// pool recycles reply header buffers (the serving node's transmit pool).
	pool *netbuf.Pool
}

// poolBuf draws a header buffer from a transmit pool, falling back to a
// fresh allocation when no pool is set or the pool cannot serve the size.
func poolBuf(p *netbuf.Pool, capacity int) *netbuf.Buf {
	if p != nil && capacity <= p.BufSize() {
		if b, err := p.Get(); err == nil {
			return b
		}
	}
	return netbuf.New(netbuf.DefaultHeadroom, capacity)
}

// Reply sends a successful reply: header bytes (XDR-encoded result head)
// followed by an optional payload chain appended without copying. The
// callee takes ownership of payload.
func (c Call) Reply(header []byte, payload *netbuf.Chain) error {
	e := xdr.NewEncoder(replyHeaderLen + len(header))
	e.Uint32(c.Xid)
	e.Uint32(msgReply)
	e.Uint32(0) // MSG_ACCEPTED
	e.Uint32(0) // verf flavor AUTH_NONE
	e.Uint32(0) // verf length
	e.Uint32(AcceptSuccess)

	hb := poolBuf(c.pool, replyHeaderLen+len(header))
	if err := hb.Append(e.Bytes()); err != nil {
		hb.Release()
		if payload != nil {
			payload.Release()
		}
		return err
	}
	if err := hb.Append(header); err != nil {
		hb.Release()
		if payload != nil {
			payload.Release()
		}
		return err
	}
	out := netbuf.ChainOf(hb)
	var inherited netbuf.Partial
	inherit := false
	if payload != nil {
		if p, ok := payload.CachedPartial(); ok && hb.Len()%2 == 0 {
			// Propagate the inherited payload checksum across the RPC
			// header (even-length, so the partials compose).
			var hs netbuf.Partial
			hs.AddBytes(hb.Bytes())
			inherited = netbuf.Combine(hs, p)
			inherit = true
		}
		out.AppendChain(payload)
	}
	if inherit {
		out.SetPartial(inherited)
	}
	return c.send(out)
}

// ReplyError sends a non-success accepted reply.
func (c Call) ReplyError(acceptStat uint32) error {
	e := xdr.NewEncoder(replyHeaderLen)
	e.Uint32(c.Xid)
	e.Uint32(msgReply)
	e.Uint32(0)
	e.Uint32(0)
	e.Uint32(0)
	e.Uint32(acceptStat)
	hb := poolBuf(c.pool, replyHeaderLen)
	if err := hb.Append(e.Bytes()); err != nil {
		hb.Release()
		return err
	}
	return c.send(netbuf.ChainOf(hb))
}

// Handler processes one inbound call.
type Handler func(c Call)

// progVers identifies a registered program version.
type progVers struct {
	prog, vers uint32
}

// Server dispatches RPC calls arriving on one UDP port.
type Server struct {
	udp      *udp.Transport
	port     uint16
	programs map[progVers]map[uint32]Handler
	// BadCalls counts malformed or unroutable calls.
	BadCalls uint64
}

// NewServer binds an RPC server to the transport's port.
func NewServer(t *udp.Transport, port uint16) (*Server, error) {
	s := &Server{
		udp:      t,
		port:     port,
		programs: make(map[progVers]map[uint32]Handler),
	}
	if err := t.Bind(port, s.receive); err != nil {
		return nil, err
	}
	return s, nil
}

// Register installs the handler for (prog, vers, proc).
func (s *Server) Register(prog, vers, proc uint32, h Handler) {
	pv := progVers{prog, vers}
	if s.programs[pv] == nil {
		s.programs[pv] = make(map[uint32]Handler)
	}
	s.programs[pv][proc] = h
}

// receive parses the RPC call header and dispatches.
func (s *Server) receive(dg udp.Datagram) {
	body := dg.Payload
	if body.Len() < callHeaderLen {
		s.BadCalls++
		body.Release()
		return
	}
	raw, err := body.PullHeader(callHeaderLen)
	if err != nil {
		body.Release()
		return
	}
	d := xdr.NewDecoder(raw)
	xid, _ := d.Uint32()
	mtype, _ := d.Uint32()
	rpcv, _ := d.Uint32()
	prog, _ := d.Uint32()
	vers, _ := d.Uint32()
	proc, err := d.Uint32()
	if err != nil || mtype != msgCall || rpcv != rpcVersion {
		s.BadCalls++
		body.Release()
		return
	}
	call := Call{
		Xid: xid, Prog: prog, Vers: vers, Proc: proc,
		Src: dg.Src, SrcPort: dg.SrcPort, Dst: dg.Dst,
		Body: body,
		send: func(out *netbuf.Chain) error {
			return s.udp.SendChain(dg.Dst, s.port, dg.Src, dg.SrcPort, out)
		},
		pool: s.udp.Node().TxPool,
	}
	procs, ok := s.programs[progVers{prog, vers}]
	if !ok {
		s.BadCalls++
		_ = call.ReplyError(AcceptProgUnavail)
		body.Release()
		return
	}
	h, ok := procs[proc]
	if !ok {
		s.BadCalls++
		_ = call.ReplyError(AcceptProcUnavail)
		body.Release()
		return
	}
	// Per-message RPC processing cost (XDR walk, dispatch).
	node := s.udp.Node()
	trace.To(node.Eng, trace.LRPC)
	node.Charge(node.Cost.RPCNs, func() { h(call) })
}

// Reply is an inbound RPC reply presented to a client callback.
type Reply struct {
	Xid    uint32
	Accept uint32
	// Body holds the result bytes past the reply header, in the original
	// wire buffers. The callback owns the references.
	Body *netbuf.Chain
}

// Client issues RPC calls over one UDP port and matches replies by xid.
// By default it assumes a lossless fabric (the paper's testbed); call
// SetRetransmit to make it survive injected frame loss.
type Client struct {
	udp     *udp.Transport
	local   eth.Addr
	port    uint16
	nextXid uint32
	pending map[uint32]*pendingCall
	// BadReplies counts malformed or unmatched replies.
	BadReplies uint64

	// rto/maxTries configure retransmission (off while maxTries is zero).
	rto      sim.Duration
	maxTries int
	// Retransmits counts calls re-sent after a timeout; Timeouts counts
	// calls abandoned after the last try; DupReplies counts replies
	// suppressed because their call already completed (a retransmitted
	// call the server executed twice).
	Retransmits uint64
	Timeouts    uint64
	DupReplies  uint64
	// recent remembers completed xids (bounded FIFO) so late duplicate
	// replies are told apart from genuinely unmatched ones.
	recent  map[uint32]struct{}
	recentQ []uint32
}

// recentXids bounds the duplicate-suppression window.
const recentXids = 4096

// pendingCall is one outstanding RPC: its completion callback plus, when
// retransmission is on, everything needed to put the call back on the wire.
type pendingCall struct {
	done    func(Reply, error)
	wire    *netbuf.Chain
	dst     eth.Addr
	dstPort uint16
	timer   sim.EventID
	rto     sim.Duration
	tries   int
}

// release drops the retained wire image.
func (pc *pendingCall) release() {
	if pc.wire != nil {
		pc.wire.Release()
		pc.wire = nil
	}
}

// Node returns the node owning the client's transport.
func (c *Client) Node() *simnet.Node { return c.udp.Node() }

// NewClient binds an RPC client to a local address and port.
func NewClient(t *udp.Transport, local eth.Addr, port uint16) (*Client, error) {
	c := &Client{
		udp:     t,
		local:   local,
		port:    port,
		nextXid: 1,
		pending: make(map[uint32]*pendingCall),
	}
	if err := t.Bind(port, c.receive); err != nil {
		return nil, err
	}
	return c, nil
}

// SetRetransmit enables retransmission: an unanswered call is re-sent after
// rto (doubling each try) and fails with ErrTimeout after maxTries sends.
// Off by default so lossless-fabric results are untouched by the machinery.
func (c *Client) SetRetransmit(rto sim.Duration, maxTries int) {
	if rto <= 0 || maxTries < 1 {
		c.rto, c.maxTries = 0, 0
		return
	}
	c.rto, c.maxTries = rto, maxTries
	if c.recent == nil {
		c.recent = make(map[uint32]struct{})
	}
}

// Call issues one RPC. args is the XDR-encoded argument head; payload (may
// be nil) is appended without copying — how a zero-copy NFS WRITE travels.
// done fires when the matching reply arrives.
func (c *Client) Call(dst eth.Addr, dstPort uint16, prog, vers, proc uint32, args []byte, payload *netbuf.Chain, done func(Reply, error)) error {
	trace.To(c.udp.Node().Eng, trace.LRPC)
	xid := c.nextXid
	c.nextXid++

	e := xdr.NewEncoder(callHeaderLen)
	e.Uint32(xid)
	e.Uint32(msgCall)
	e.Uint32(rpcVersion)
	e.Uint32(prog)
	e.Uint32(vers)
	e.Uint32(proc)
	e.Uint32(0) // cred AUTH_NONE
	e.Uint32(0)
	e.Uint32(0) // verf AUTH_NONE
	e.Uint32(0)

	hb := poolBuf(c.udp.Node().TxPool, callHeaderLen+len(args))
	if err := hb.Append(e.Bytes()); err != nil {
		hb.Release()
		if payload != nil {
			payload.Release()
		}
		return err
	}
	if err := hb.Append(args); err != nil {
		hb.Release()
		if payload != nil {
			payload.Release()
		}
		return err
	}
	out := netbuf.ChainOf(hb)
	if payload != nil {
		out.AppendChain(payload)
	}
	pc := &pendingCall{done: done, dst: dst, dstPort: dstPort}
	if c.maxTries > 0 {
		// The retained wire image aliases the outgoing buffers via clone
		// descriptors; the roots stay pinned (and accounted to whoever
		// owns them) until the call completes and release() drops them.
		pc.wire = out.Clone()
		pc.wire.SetOwner("sunrpc.retransmit")
		pc.rto = c.rto
		pc.tries = 1
	}
	c.pending[xid] = pc
	if err := c.udp.SendChain(c.local, c.port, dst, dstPort, out); err != nil {
		delete(c.pending, xid)
		pc.release()
		return err
	}
	if c.maxTries > 0 {
		c.armTimer(xid, pc)
	}
	return nil
}

// armTimer schedules the retransmission timeout for one outstanding call.
// The timer event rides the caller's request context, so the waited-out RTO
// is booked as fault-attributed network time on the request's span.
func (c *Client) armTimer(xid uint32, pc *pendingCall) {
	eng := c.udp.Node().Eng
	pc.timer = eng.Schedule(pc.rto, func() {
		cur, ok := c.pending[xid]
		if !ok || cur != pc {
			return
		}
		trace.Fault(eng, trace.LNet, pc.rto)
		if pc.tries >= c.maxTries {
			delete(c.pending, xid)
			pc.release()
			c.Timeouts++
			pc.done(Reply{Xid: xid}, ErrTimeout)
			return
		}
		pc.tries++
		c.Retransmits++
		pc.rto *= 2
		_ = c.udp.SendChain(c.local, c.port, pc.dst, pc.dstPort, pc.wire.Clone())
		c.armTimer(xid, pc)
	})
}

// remember records a completed xid in the duplicate-suppression window.
func (c *Client) remember(xid uint32) {
	if c.recent == nil {
		return
	}
	if len(c.recentQ) >= recentXids {
		delete(c.recent, c.recentQ[0])
		c.recentQ = c.recentQ[1:]
	}
	c.recent[xid] = struct{}{}
	c.recentQ = append(c.recentQ, xid)
}

// receive matches a reply to its pending call.
func (c *Client) receive(dg udp.Datagram) {
	body := dg.Payload
	if body.Len() < replyHeaderLen {
		c.BadReplies++
		body.Release()
		return
	}
	raw, err := body.PullHeader(replyHeaderLen)
	if err != nil {
		body.Release()
		return
	}
	d := xdr.NewDecoder(raw)
	xid, _ := d.Uint32()
	mtype, _ := d.Uint32()
	replyStat, _ := d.Uint32()
	d.Uint32() // verf flavor
	d.Uint32() // verf len
	accept, err := d.Uint32()
	if err != nil || mtype != msgReply {
		c.BadReplies++
		body.Release()
		return
	}
	pc, ok := c.pending[xid]
	if !ok {
		if _, dup := c.recent[xid]; dup {
			// A retransmitted call the server answered twice: the
			// first reply already completed it. Drop silently.
			c.DupReplies++
			body.Release()
			return
		}
		c.BadReplies++
		body.Release()
		return
	}
	delete(c.pending, xid)
	node := c.udp.Node()
	node.Eng.Cancel(pc.timer)
	pc.release()
	c.remember(xid)
	trace.To(node.Eng, trace.LRPC)
	if replyStat != 0 {
		body.Release()
		node.Charge(node.Cost.RPCNs, func() {
			pc.done(Reply{Xid: xid}, fmt.Errorf("%w: denied", ErrBadMessage))
		})
		return
	}
	node.Charge(node.Cost.RPCNs, func() {
		pc.done(Reply{Xid: xid, Accept: accept, Body: body}, nil)
	})
}

// Pending reports outstanding calls (for tests and drain checks).
func (c *Client) Pending() int { return len(c.pending) }
