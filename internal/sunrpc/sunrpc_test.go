package sunrpc

import (
	"bytes"
	"testing"

	"ncache/internal/netbuf"
	"ncache/internal/proto/eth"
	"ncache/internal/proto/ipv4"
	"ncache/internal/proto/udp"
	"ncache/internal/sim"
	"ncache/internal/simnet"
	"ncache/internal/xdr"
)

type host struct {
	node *simnet.Node
	udp  *udp.Transport
	addr eth.Addr
}

func rig(t *testing.T) (*sim.Engine, *host, *host) {
	t.Helper()
	eng := sim.NewEngine()
	nw := simnet.NewNetwork(eng, 5*sim.Microsecond)
	mk := func(name string, addr eth.Addr) *host {
		n := simnet.NewNode(eng, name, simnet.DefaultProfile())
		if _, err := nw.Attach(n, addr, simnet.Gbps); err != nil {
			t.Fatalf("attach: %v", err)
		}
		return &host{node: n, udp: udp.NewTransport(ipv4.NewStack(n)), addr: addr}
	}
	return eng, mk("client", 1), mk("server", 2)
}

const (
	progTest = 100099
	versTest = 1
)

func TestCallReplyRoundTrip(t *testing.T) {
	eng, cl, sv := rig(t)
	srv, err := NewServer(sv.udp, 2049)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	srv.Register(progTest, versTest, 7, func(c Call) {
		args := c.Body.Flatten()
		c.Body.Release()
		d := xdr.NewDecoder(args)
		v, err := d.Uint32()
		if err != nil {
			t.Errorf("decode args: %v", err)
		}
		e := xdr.NewEncoder(8)
		e.Uint32(v * 2)
		if err := c.Reply(e.Bytes(), nil); err != nil {
			t.Errorf("Reply: %v", err)
		}
	})

	rpc, err := NewClient(cl.udp, cl.addr, 700)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	e := xdr.NewEncoder(8)
	e.Uint32(21)
	var result uint32
	err = rpc.Call(sv.addr, 2049, progTest, versTest, 7, e.Bytes(), nil, func(r Reply, err error) {
		if err != nil {
			t.Errorf("reply err: %v", err)
			return
		}
		if r.Accept != AcceptSuccess {
			t.Errorf("accept = %d", r.Accept)
		}
		d := xdr.NewDecoder(r.Body.Flatten())
		r.Body.Release()
		result, _ = d.Uint32()
	})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if result != 42 {
		t.Fatalf("result = %d, want 42", result)
	}
	if rpc.Pending() != 0 {
		t.Fatalf("pending = %d", rpc.Pending())
	}
}

func TestPayloadChainsTravelUncopied(t *testing.T) {
	eng, cl, sv := rig(t)
	srv, err := NewServer(sv.udp, 2049)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	blob := bytes.Repeat([]byte("D"), 8192)
	srv.Register(progTest, versTest, 1, func(c Call) {
		// Echo the call payload back as the reply payload, zero-copy.
		got := c.Body
		if got.Len() != len(blob) {
			t.Errorf("server got %d bytes", got.Len())
		}
		if err := c.Reply(nil, got); err != nil {
			t.Errorf("Reply: %v", err)
		}
	})
	rpc, err := NewClient(cl.udp, cl.addr, 700)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	payload := netbuf.ChainFromBytes(blob, netbuf.DefaultBufSize)
	var echoed []byte
	if err := rpc.Call(sv.addr, 2049, progTest, versTest, 1, nil, payload, func(r Reply, err error) {
		if err != nil {
			t.Errorf("reply err: %v", err)
			return
		}
		echoed = r.Body.Flatten()
		r.Body.Release()
	}); err != nil {
		t.Fatalf("Call: %v", err)
	}
	serverCopies := sv.node.Copies.PhysicalOps
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !bytes.Equal(echoed, blob) {
		t.Fatalf("echo corrupted: %d bytes", len(echoed))
	}
	if sv.node.Copies.PhysicalOps != serverCopies {
		t.Fatal("server physically copied the payload")
	}
}

func TestUnknownProgramAndProc(t *testing.T) {
	eng, cl, sv := rig(t)
	srv, err := NewServer(sv.udp, 2049)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	srv.Register(progTest, versTest, 1, func(c Call) { c.Body.Release() })
	rpc, err := NewClient(cl.udp, cl.addr, 700)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	var got []uint32
	record := func(r Reply, err error) {
		if err == nil {
			got = append(got, r.Accept)
			if r.Body != nil {
				r.Body.Release()
			}
		}
	}
	if err := rpc.Call(sv.addr, 2049, 999999, 1, 1, nil, nil, record); err != nil {
		t.Fatal(err)
	}
	if err := rpc.Call(sv.addr, 2049, progTest, versTest, 99, nil, nil, record); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 2 || got[0] != AcceptProgUnavail || got[1] != AcceptProcUnavail {
		t.Fatalf("accept stats = %v, want [prog_unavail proc_unavail]", got)
	}
	if srv.BadCalls != 2 {
		t.Fatalf("BadCalls = %d, want 2", srv.BadCalls)
	}
}

func TestGarbageDatagramCounted(t *testing.T) {
	eng, cl, sv := rig(t)
	srv, err := NewServer(sv.udp, 2049)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	// Raw junk straight at the RPC port: too short, then malformed.
	if err := cl.udp.Send(cl.addr, 99, sv.addr, 2049, []byte("short")); err != nil {
		t.Fatal(err)
	}
	bad := make([]byte, 64) // zeros: msgtype/rpcvers wrong
	if err := cl.udp.Send(cl.addr, 99, sv.addr, 2049, bad); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if srv.BadCalls != 2 {
		t.Fatalf("BadCalls = %d, want 2", srv.BadCalls)
	}
}

func TestUnmatchedReplyCounted(t *testing.T) {
	eng, cl, sv := rig(t)
	rpc, err := NewClient(cl.udp, cl.addr, 700)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	// Forge an accepted reply with an xid the client never issued.
	e := xdr.NewEncoder(24)
	e.Uint32(0xdeadbeef)
	e.Uint32(1) // reply
	e.Uint32(0)
	e.Uint32(0)
	e.Uint32(0)
	e.Uint32(AcceptSuccess)
	if err := sv.udp.Send(sv.addr, 2049, cl.addr, 700, e.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rpc.BadReplies != 1 {
		t.Fatalf("BadReplies = %d, want 1", rpc.BadReplies)
	}
	if rpc.Pending() != 0 {
		t.Fatalf("Pending = %d", rpc.Pending())
	}
}

func TestManyOutstandingCalls(t *testing.T) {
	eng, cl, sv := rig(t)
	srv, err := NewServer(sv.udp, 2049)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	srv.Register(progTest, versTest, 2, func(c Call) {
		body := c.Body.Flatten()
		c.Body.Release()
		if err := c.Reply(body, nil); err != nil { // echo args
			t.Errorf("Reply: %v", err)
		}
	})
	rpc, err := NewClient(cl.udp, cl.addr, 700)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	const n = 32
	results := map[uint32]bool{}
	for i := uint32(0); i < n; i++ {
		e := xdr.NewEncoder(4)
		e.Uint32(i)
		if err := rpc.Call(sv.addr, 2049, progTest, versTest, 2, e.Bytes(), nil, func(r Reply, err error) {
			if err != nil {
				t.Errorf("reply err: %v", err)
				return
			}
			d := xdr.NewDecoder(r.Body.Flatten())
			r.Body.Release()
			v, _ := d.Uint32()
			results[v] = true
		}); err != nil {
			t.Fatalf("Call %d: %v", i, err)
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(results) != n {
		t.Fatalf("distinct replies = %d, want %d", len(results), n)
	}
}
