// Package iscsi implements the storage transport between the pass-through
// server and the storage server: a faithful subset of iSCSI with 48-byte
// Basic Header Segments, login/logout, SCSI command PDUs with immediate
// write data, and Data-In PDUs carrying read payloads.
//
// Data segments are netbuf chains end to end: a Data-In payload arriving at
// the initiator is the original wire buffers, which is precisely what the
// NCache module captures into its LBN cache; a WRITE command's data segment
// is sent with the zero-copy socket extension.
package iscsi

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ncache/internal/netbuf"
)

// BHSLen is the Basic Header Segment length.
const BHSLen = 48

// Port is the well-known iSCSI target port.
const Port = 3260

// Opcodes (initiator-to-target carry no 0x20 bit; responses do).
const (
	OpNopOut     uint8 = 0x00
	OpSCSICmd    uint8 = 0x01
	OpLoginReq   uint8 = 0x03
	OpLogoutReq  uint8 = 0x06
	OpNopIn      uint8 = 0x20
	OpSCSIResp   uint8 = 0x21
	OpLoginResp  uint8 = 0x23
	OpDataIn     uint8 = 0x25
	OpLogoutResp uint8 = 0x26
)

// Flag bits in byte 1.
const (
	FlagFinal  uint8 = 0x80
	FlagStatus uint8 = 0x01 // Data-In carries status (phase collapse)
)

// Errors surfaced by the codec.
var (
	ErrShortPDU   = errors.New("iscsi: short PDU")
	ErrBadDataLen = errors.New("iscsi: data segment length mismatch")
)

// PDU is one iSCSI protocol data unit.
type PDU struct {
	Op        uint8
	Final     bool
	HasStatus bool
	Status    uint8
	LUN       uint64
	// ITT is the initiator task tag matching commands to responses.
	ITT uint32
	// ExpectedLen is the expected data transfer length of a command.
	ExpectedLen uint32
	// CmdSN orders commands; StatSN orders responses.
	CmdSN uint32
	// BufferOffset locates a Data-In segment within the transfer.
	BufferOffset uint32
	// CDB is the SCSI command block (commands only).
	CDB [16]byte
	// Data is the data segment; ownership transfers with the PDU. May be
	// nil.
	Data *netbuf.Chain
}

// DataLen returns the data segment length.
func (p *PDU) DataLen() int {
	if p.Data == nil {
		return 0
	}
	return p.Data.Len()
}

// Encode renders the PDU as a transmit chain: a fresh header buffer followed
// by the data segment's buffers (not copied). Data segments are padded to 4
// bytes; block-sized storage payloads are already aligned so padding is the
// exception, not the rule.
func (p *PDU) Encode() (*netbuf.Chain, error) { return p.EncodePool(nil) }

// poolBuf draws a buffer from a transmit pool, falling back to a fresh
// allocation when no pool is set or the pool cannot serve the size.
func poolBuf(pool *netbuf.Pool, capacity int) *netbuf.Buf {
	if pool != nil && capacity <= pool.BufSize() {
		if b, err := pool.Get(); err == nil {
			return b
		}
	}
	return netbuf.New(netbuf.DefaultHeadroom, capacity)
}

// EncodePool is Encode drawing the header (and pad) buffers from a transmit
// pool so the steady-state PDU path allocates nothing.
func (p *PDU) EncodePool(pool *netbuf.Pool) (*netbuf.Chain, error) {
	dlen := p.DataLen()
	if dlen > 0xffffff {
		return nil, fmt.Errorf("iscsi: data segment %d exceeds 16MB", dlen)
	}
	hb := poolBuf(pool, BHSLen)
	if err := hb.Put(BHSLen); err != nil {
		hb.Release()
		return nil, err
	}
	h := hb.Bytes()
	for i := range h {
		h[i] = 0
	}
	h[0] = p.Op
	if p.Final {
		h[1] |= FlagFinal
	}
	if p.HasStatus {
		h[1] |= FlagStatus
		h[3] = p.Status
	}
	h[4] = 0 // TotalAHSLength
	h[5] = byte(dlen >> 16)
	h[6] = byte(dlen >> 8)
	h[7] = byte(dlen)
	binary.BigEndian.PutUint64(h[8:16], p.LUN)
	binary.BigEndian.PutUint32(h[16:20], p.ITT)
	binary.BigEndian.PutUint32(h[20:24], p.ExpectedLen)
	binary.BigEndian.PutUint32(h[24:28], p.CmdSN)
	binary.BigEndian.PutUint32(h[28:32], p.BufferOffset)
	copy(h[32:48], p.CDB[:])

	out := netbuf.ChainOf(hb)
	if p.Data != nil {
		out.AppendChain(p.Data)
	}
	if pad := (4 - dlen%4) % 4; pad != 0 {
		pb := poolBuf(pool, pad)
		if err := pb.Put(pad); err != nil {
			pb.Release()
			out.Release()
			return nil, err
		}
		out.Append(pb)
	}
	return out, nil
}

// decodeBHS parses a 48-byte header.
func decodeBHS(h []byte) (PDU, int) {
	dlen := int(h[5])<<16 | int(h[6])<<8 | int(h[7])
	p := PDU{
		Op:           h[0],
		Final:        h[1]&FlagFinal != 0,
		HasStatus:    h[1]&FlagStatus != 0,
		Status:       h[3],
		LUN:          binary.BigEndian.Uint64(h[8:16]),
		ITT:          binary.BigEndian.Uint32(h[16:20]),
		ExpectedLen:  binary.BigEndian.Uint32(h[20:24]),
		CmdSN:        binary.BigEndian.Uint32(h[24:28]),
		BufferOffset: binary.BigEndian.Uint32(h[28:32]),
	}
	copy(p.CDB[:], h[32:48])
	return p, dlen
}

// Framer reassembles PDUs from a TCP byte stream without copying data
// segments: whole PDUs are carved out of the accumulated chain with
// PullChain.
type Framer struct {
	stream *netbuf.Chain
	// Emit receives each complete PDU; it owns pdu.Data.
	Emit func(p PDU)
	// Errors counts malformed stream states.
	Errors uint64

	pendingHdr     *PDU
	pendingDataLen int // unpadded data segment length
}

// NewFramer returns a framer delivering PDUs to emit.
func NewFramer(emit func(p PDU)) *Framer {
	return &Framer{stream: netbuf.NewChain(), Emit: emit}
}

// Buffered returns the bytes accumulated but not yet framed.
func (f *Framer) Buffered() int { return f.stream.Len() }

// Push appends stream data (ownership transfers) and emits any complete
// PDUs.
func (f *Framer) Push(data *netbuf.Chain) {
	f.stream.AppendChain(data)
	for {
		if f.pendingHdr == nil {
			if f.stream.Len() < BHSLen {
				return
			}
			raw, err := f.stream.PullHeader(BHSLen)
			if err != nil {
				f.Errors++
				return
			}
			p, dlen := decodeBHS(raw)
			f.pendingHdr = &p
			f.pendingDataLen = dlen
		}
		dlen := f.pendingDataLen
		padded := dlen + (4-dlen%4)%4
		if f.stream.Len() < padded {
			return
		}
		p := *f.pendingHdr
		f.pendingHdr = nil
		f.pendingDataLen = 0
		if dlen > 0 {
			seg, err := f.stream.PullChain(dlen)
			if err != nil {
				f.Errors++
				return
			}
			p.Data = seg
			if pad := padded - dlen; pad > 0 {
				padChain, err := f.stream.PullChain(pad)
				if err != nil {
					f.Errors++
					return
				}
				padChain.Release()
			}
		}
		f.Emit(p)
	}
}
