package iscsi

import (
	"bytes"
	"testing"
	"testing/quick"

	"ncache/internal/blockdev"
	"ncache/internal/netbuf"
	"ncache/internal/proto/eth"
	"ncache/internal/proto/ipv4"
	"ncache/internal/proto/tcp"
	"ncache/internal/sim"
	"ncache/internal/simnet"
	"ncache/internal/storage"
)

func TestPDUEncodeFrameRoundTrip(t *testing.T) {
	payload := []byte("data segment contents going over the stream!")
	in := PDU{
		Op: OpSCSICmd, Final: true, ITT: 77, ExpectedLen: 4096, CmdSN: 3,
		Data: netbuf.ChainFromBytes(payload, 16),
	}
	in.CDB = [16]byte{0x28, 0, 0, 0, 1, 2}
	wire, err := in.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	var got []PDU
	f := NewFramer(func(p PDU) { got = append(got, p) })
	f.Push(wire)
	if len(got) != 1 {
		t.Fatalf("framed %d PDUs, want 1", len(got))
	}
	p := got[0]
	if p.Op != in.Op || p.ITT != 77 || p.ExpectedLen != 4096 || p.CmdSN != 3 || !p.Final {
		t.Fatalf("header mismatch: %+v", p)
	}
	if p.CDB != in.CDB {
		t.Fatalf("CDB mismatch")
	}
	if !bytes.Equal(p.Data.Flatten(), payload) {
		t.Fatalf("data mismatch: %q", p.Data.Flatten())
	}
	if f.Errors != 0 || f.Buffered() != 0 {
		t.Fatalf("framer errors=%d buffered=%d", f.Errors, f.Buffered())
	}
}

func TestFramerHandlesFragmentedStream(t *testing.T) {
	// Three PDUs delivered in arbitrary-size stream chunks.
	var wire []byte
	var want []string
	for i := 0; i < 3; i++ {
		payload := bytes.Repeat([]byte{byte('a' + i)}, 100+i*37)
		want = append(want, string(payload))
		p := PDU{Op: OpDataIn, Final: true, ITT: uint32(i), Data: netbuf.ChainFromBytes(payload, 64)}
		c, err := p.Encode()
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		wire = append(wire, c.Flatten()...)
	}
	for _, chunk := range []int{1, 7, 48, 100, 1000} {
		var got []string
		f := NewFramer(func(p PDU) {
			if p.Data != nil {
				got = append(got, string(p.Data.Flatten()))
				p.Data.Release()
			}
		})
		for off := 0; off < len(wire); off += chunk {
			end := off + chunk
			if end > len(wire) {
				end = len(wire)
			}
			f.Push(netbuf.ChainFromBytes(wire[off:end], 32))
		}
		if len(got) != 3 {
			t.Fatalf("chunk %d: framed %d PDUs, want 3", chunk, len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("chunk %d: PDU %d payload mismatch", chunk, i)
			}
		}
	}
}

func TestFramerPropertyAnySplit(t *testing.T) {
	f := func(sizes []uint16, split uint8) bool {
		var wire []byte
		n := len(sizes)
		if n > 5 {
			n = 5
		}
		for i := 0; i < n; i++ {
			payload := make([]byte, int(sizes[i])%2000)
			p := PDU{Op: OpDataIn, ITT: uint32(i), Data: netbuf.ChainFromBytes(payload, 512)}
			c, err := p.Encode()
			if err != nil {
				return false
			}
			wire = append(wire, c.Flatten()...)
		}
		chunk := int(split)%512 + 1
		count := 0
		fr := NewFramer(func(p PDU) {
			if int(p.ITT) != count {
				return
			}
			count++
			if p.Data != nil {
				p.Data.Release()
			}
		})
		for off := 0; off < len(wire); off += chunk {
			end := off + chunk
			if end > len(wire) {
				end = len(wire)
			}
			fr.Push(netbuf.ChainFromBytes(wire[off:end], 256))
		}
		return count == n && fr.Errors == 0 && fr.Buffered() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPDUDataSegmentPadding(t *testing.T) {
	// Login-style text payloads are rarely 4-aligned; padding must be
	// emitted on the wire and stripped by the framer.
	for _, n := range []int{1, 2, 3, 5, 47, 49} {
		payload := bytes.Repeat([]byte{0xAB}, n)
		p := PDU{Op: OpLoginReq, Final: true, ITT: 9, Data: netbuf.ChainFromBytes(payload, 16)}
		wire, err := p.Encode()
		if err != nil {
			t.Fatalf("Encode(%d): %v", n, err)
		}
		if (wire.Len()-BHSLen)%4 != 0 {
			t.Fatalf("wire data segment for %d bytes not padded: total %d", n, wire.Len())
		}
		var got []byte
		f := NewFramer(func(q PDU) {
			if q.Data != nil {
				got = q.Data.Flatten()
				q.Data.Release()
			}
		})
		f.Push(wire)
		if !bytes.Equal(got, payload) {
			t.Fatalf("padding round trip failed for %d bytes", n)
		}
		if f.Buffered() != 0 {
			t.Fatalf("framer left %d bytes buffered", f.Buffered())
		}
	}
}

func TestPDURejectsOversizeSegment(t *testing.T) {
	big := netbuf.ChainFromBytes(nil, 16)
	// Fake an oversize length without allocating 16MB: use a tiny chain
	// but check the guard directly via DataLen path.
	p := PDU{Op: OpDataIn, Data: big}
	if _, err := p.Encode(); err != nil {
		t.Fatalf("small segment rejected: %v", err)
	}
}

func TestFramerBHSOnlyPDUs(t *testing.T) {
	// Back-to-back zero-payload PDUs (logout handshakes) frame cleanly.
	var wire []byte
	for i := 0; i < 4; i++ {
		p := PDU{Op: OpLogoutReq, Final: true, ITT: uint32(i)}
		c, err := p.Encode()
		if err != nil {
			t.Fatal(err)
		}
		wire = append(wire, c.Flatten()...)
	}
	count := 0
	f := NewFramer(func(p PDU) {
		if p.ITT != uint32(count) {
			t.Fatalf("PDU order broken: %d", p.ITT)
		}
		count++
	})
	f.Push(netbuf.ChainFromBytes(wire, 13))
	if count != 4 {
		t.Fatalf("framed %d, want 4", count)
	}
}

// rig builds initiator-node <-> target-node with a RAID-0 backing store.
type rig struct {
	eng       *sim.Engine
	initNode  *simnet.Node
	tgtNode   *simnet.Node
	initiator *Initiator
	target    *Target
	array     *storage.RAID0
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.NewEngine()
	nw := simnet.NewNetwork(eng, 5*sim.Microsecond)
	initNode := simnet.NewNode(eng, "app", simnet.DefaultProfile())
	tgtNode := simnet.NewNode(eng, "storage", simnet.DefaultProfile())
	if _, err := nw.Attach(initNode, 1, simnet.Gbps); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Attach(tgtNode, 2, simnet.Gbps); err != nil {
		t.Fatal(err)
	}
	initTCP := tcp.NewTransport(ipv4.NewStack(initNode))
	tgtTCP := tcp.NewTransport(ipv4.NewStack(tgtNode))

	disks := make([]*blockdev.MemDisk, 4)
	for i := range disks {
		disks[i] = blockdev.NewMemDisk(eng, "d", blockdev.Geometry{BlockSize: 4096, NumBlocks: 4096}, blockdev.IDE2000())
	}
	array, err := storage.NewRAID0(disks, 16)
	if err != nil {
		t.Fatal(err)
	}
	target, err := NewTarget(tgtNode, tgtTCP, array)
	if err != nil {
		t.Fatal(err)
	}
	ini := NewInitiator(initNode, initTCP.DialConn, eth.Addr(1))
	return &rig{
		eng: eng, initNode: initNode, tgtNode: tgtNode,
		initiator: ini, target: target, array: array,
	}
}

func (r *rig) connect(t *testing.T) {
	t.Helper()
	ok := false
	r.initiator.Connect(eth.Addr(2), func(err error) {
		if err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		ok = true
	})
	if err := r.eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ok {
		t.Fatal("login did not complete")
	}
}

func TestLoginDiscoversGeometry(t *testing.T) {
	r := newRig(t)
	r.connect(t)
	g := r.initiator.Geometry()
	if g.BlockSize != 4096 || g.NumBlocks != 4*4096 {
		t.Fatalf("geometry = %+v", g)
	}
}

func TestWriteThenReadRoundTrip(t *testing.T) {
	r := newRig(t)
	r.connect(t)
	want := make([]byte, 8*4096)
	sim.NewRNG(3).Fill(want)
	var got []byte
	r.initiator.Write(100, netbuf.ChainFromBytes(want, netbuf.DefaultBufSize), false, func(err error) {
		if err != nil {
			t.Errorf("Write: %v", err)
			return
		}
		r.initiator.Read(100, 8, false, func(data *netbuf.Chain, err error) {
			if err != nil {
				t.Errorf("Read: %v", err)
				return
			}
			got = data.Flatten()
			data.Release()
		})
	})
	if err := r.eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("round trip mismatch: got %d bytes", len(got))
	}
	if r.target.ReadCmds != 1 || r.target.WriteCmds != 1 {
		t.Fatalf("target cmds = %d/%d", r.target.ReadCmds, r.target.WriteCmds)
	}
	if r.initiator.Pending() != 0 {
		t.Fatalf("pending = %d", r.initiator.Pending())
	}
}

func TestReadSynthesizedBlocks(t *testing.T) {
	r := newRig(t)
	for _, d := range r.array.Disks() {
		d.Synthesize = func(lbn int64, dst []byte) {
			for i := range dst {
				dst[i] = byte(lbn * 7)
			}
		}
	}
	r.connect(t)
	var got []byte
	r.initiator.Read(0, 1, false, func(data *netbuf.Chain, err error) {
		if err != nil {
			t.Errorf("Read: %v", err)
			return
		}
		got = data.Flatten()
		data.Release()
	})
	if err := r.eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 4096 || got[0] != 0 {
		t.Fatalf("synthesized read wrong: %d bytes", len(got))
	}
}

func TestReadHookInterceptsRegularDataOnly(t *testing.T) {
	r := newRig(t)
	r.connect(t)
	var hooked []int64
	r.initiator.SetReadHook(func(lba int64, blocks int, data *netbuf.Chain) *netbuf.Chain {
		hooked = append(hooked, lba)
		return data
	})
	reads := 0
	readDone := func(data *netbuf.Chain, err error) {
		if err != nil {
			t.Errorf("Read: %v", err)
			return
		}
		reads++
		data.Release()
	}
	r.initiator.Read(10, 1, false, readDone) // regular data → hooked
	r.initiator.Read(20, 1, true, readDone)  // metadata → not hooked
	if err := r.eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if reads != 2 {
		t.Fatalf("reads completed = %d", reads)
	}
	if len(hooked) != 1 || hooked[0] != 10 {
		t.Fatalf("hooked = %v, want [10]", hooked)
	}
}

func TestWriteHookSubstitutesPayload(t *testing.T) {
	r := newRig(t)
	r.connect(t)
	real := bytes.Repeat([]byte{0xAA}, 4096)
	r.initiator.SetWriteHook(func(lba int64, blocks int, data *netbuf.Chain) *netbuf.Chain {
		data.Release()
		return netbuf.ChainFromBytes(real, netbuf.DefaultBufSize)
	})
	junk := make([]byte, 4096)
	var got []byte
	r.initiator.Write(50, netbuf.ChainFromBytes(junk, netbuf.DefaultBufSize), false, func(err error) {
		if err != nil {
			t.Errorf("Write: %v", err)
			return
		}
		r.initiator.Read(50, 1, false, func(data *netbuf.Chain, err error) {
			if err != nil {
				t.Errorf("Read: %v", err)
				return
			}
			got = data.Flatten()
			data.Release()
		})
	})
	if err := r.eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !bytes.Equal(got, real) {
		t.Fatal("write hook substitution did not reach the target")
	}
}

func TestOutOfRangeReadFails(t *testing.T) {
	r := newRig(t)
	r.connect(t)
	var gotErr error
	r.initiator.Read(1<<20, 1, false, func(data *netbuf.Chain, err error) {
		gotErr = err
		if data != nil {
			data.Release()
		}
	})
	if err := r.eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if gotErr == nil {
		t.Fatal("out-of-range read succeeded")
	}
}

func TestConcurrentCommands(t *testing.T) {
	r := newRig(t)
	r.connect(t)
	const n = 16
	done := 0
	for k := 0; k < n; k++ {
		k := k
		data := bytes.Repeat([]byte{byte(k)}, 4096)
		r.initiator.Write(int64(k*8), netbuf.ChainFromBytes(data, netbuf.DefaultBufSize), false, func(err error) {
			if err != nil {
				t.Errorf("Write %d: %v", k, err)
				return
			}
			r.initiator.Read(int64(k*8), 1, false, func(got *netbuf.Chain, err error) {
				if err != nil {
					t.Errorf("Read %d: %v", k, err)
					return
				}
				if got.Flatten()[0] != byte(k) {
					t.Errorf("block %d content wrong", k)
				}
				got.Release()
				done++
			})
		})
	}
	if err := r.eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if done != n {
		t.Fatalf("completed %d/%d", done, n)
	}
}
