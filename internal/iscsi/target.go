package iscsi

import (
	"ncache/internal/blockdev"
	"ncache/internal/netbuf"
	"ncache/internal/proto/tcp"
	"ncache/internal/scsi"
	"ncache/internal/sim"
	"ncache/internal/simnet"
	"ncache/internal/trace"
)

// Target is the storage server: it accepts iSCSI sessions and serves SCSI
// block commands from a backing device (the RAID-0 array in the paper's
// testbed). Its data path performs one physical copy in each direction —
// disk buffer to network buffers on reads, network buffers to disk buffer
// on writes — charged to the storage server's CPU, which is what saturates
// first in the paper's all-miss experiments beyond 16 KB requests.
type Target struct {
	node *simnet.Node
	dev  blockdev.Device

	// WireFormat models the paper's §6 future-work proposal: disk-resident
	// data kept in a network-ready format, so the target moves blocks
	// between disk and NIC by descriptor (DMA) with no CPU copies — only
	// command and per-block processing remain.
	WireFormat bool

	// Stats.
	ReadCmds, WriteCmds uint64
	BytesOut, BytesIn   uint64
	Sessions            uint64
}

// NewTarget creates a target serving dev and listens on the iSCSI port.
func NewTarget(node *simnet.Node, tcpT *tcp.Transport, dev blockdev.Device) (*Target, error) {
	t := &Target{node: node, dev: dev}
	if err := tcpT.Listen(Port, t.accept); err != nil {
		return nil, err
	}
	return t, nil
}

// accept wires a new session.
func (t *Target) accept(c *tcp.Conn) {
	t.Sessions++
	s := &session{target: t, conn: c}
	s.framer = NewFramer(s.handlePDU)
	c.SetReceiver(func(data *netbuf.Chain) { s.framer.Push(data) })
}

// session is one initiator connection.
type session struct {
	target *Target
	conn   *tcp.Conn
	framer *Framer
	statSN uint32
}

// reply encodes and sends a response PDU.
func (s *session) reply(p PDU) {
	chain, err := p.EncodePool(s.target.node.TxPool)
	if err != nil {
		return
	}
	if err := s.conn.SendChain(chain); err != nil {
		chain.Release()
	}
}

// handlePDU serves one command.
func (s *session) handlePDU(p PDU) {
	t := s.target
	node := t.node
	trace.To(node.Eng, trace.LISCSI)
	switch p.Op {
	case OpLoginReq:
		if p.Data != nil {
			p.Data.Release()
		}
		node.Charge(node.Cost.ISCSIOpNs, func() {
			s.reply(PDU{Op: OpLoginResp, Final: true, ITT: p.ITT})
		})
	case OpLogoutReq:
		if p.Data != nil {
			p.Data.Release()
		}
		node.Charge(node.Cost.ISCSIOpNs, func() {
			s.reply(PDU{Op: OpLogoutResp, Final: true, ITT: p.ITT})
		})
	case OpSCSICmd:
		s.handleCommand(p)
	default:
		if p.Data != nil {
			p.Data.Release()
		}
	}
}

// handleCommand dispatches a SCSI command.
func (s *session) handleCommand(p PDU) {
	t := s.target
	node := t.node
	cdb, err := scsi.DecodeCDB(p.CDB[:])
	if err != nil {
		s.checkCondition(p.ITT)
		if p.Data != nil {
			p.Data.Release()
		}
		return
	}
	switch cdb.Op {
	case scsi.OpReadCapacity10:
		if p.Data != nil {
			p.Data.Release()
		}
		g := t.dev.Geometry()
		capData := scsi.ReadCapacityData{
			LastLBA:   uint32(g.NumBlocks - 1),
			BlockSize: uint32(g.BlockSize),
		}.Encode()
		node.Charge(node.Cost.ISCSIOpNs, func() {
			cc, cerr := node.TxPool.GetChain(capData[:])
			if cerr != nil {
				s.checkCondition(p.ITT)
				return
			}
			s.reply(PDU{
				Op: OpDataIn, Final: true, HasStatus: true,
				Status: scsi.StatusGood, ITT: p.ITT,
				Data: cc,
			})
		})

	case scsi.OpRead10:
		if p.Data != nil {
			p.Data.Release()
		}
		t.ReadCmds++
		perBlock := sim.Duration(cdb.Blocks) * node.Cost.TargetBlockNs
		node.Charge(node.Cost.ISCSIOpNs+perBlock, func() {
			t.dev.ReadBlocks(int64(cdb.LBA), int(cdb.Blocks), func(data []byte, err error) {
				// Blocks are off the platters; the rest is target CPU.
				trace.To(node.Eng, trace.LISCSI)
				if err != nil {
					s.checkCondition(p.ITT)
					return
				}
				// Two physical copies, as in the reference target's
				// read()+send() data path: disk buffer into the
				// target's cache, then into network buffers. With
				// wire-format storage (§6 future work) both vanish —
				// the blocks leave the disk already network-ready.
				send := func() {
					payload, perr := node.TxPool.GetChain(data)
					if perr != nil {
						s.checkCondition(p.ITT)
						return
					}
					t.BytesOut += uint64(len(data))
					s.reply(PDU{
						Op: OpDataIn, Final: true, HasStatus: true,
						Status: scsi.StatusGood, ITT: p.ITT,
						Data: payload,
					})
				}
				if t.WireFormat {
					node.Charge(0, send)
					return
				}
				node.Copies.AddPhysical(len(data))
				node.Charge(node.Cost.CopyCost(len(data)), nil)
				node.ChargeCopy(len(data), send)
			})
		})

	case scsi.OpWrite10:
		t.WriteCmds++
		data := p.Data
		if data == nil {
			data = netbuf.NewChain()
		}
		perBlock := sim.Duration(cdb.Blocks) * node.Cost.TargetBlockNs
		node.Charge(node.Cost.ISCSIOpNs+perBlock, func() {
			// Two physical copies (recv()+write() in the reference
			// target): network buffers into the target's cache, then
			// into the disk buffer. Zero with wire-format storage.
			n := data.Len()
			store := func() {
				// Disk-image boundary: the device keeps a flat image, so
				// the one permitted copy gathers the wire chain here.
				slab := make([]byte, n)
				data.Gather(slab)
				data.Release()
				t.BytesIn += uint64(n)
				t.dev.WriteBlocks(int64(cdb.LBA), slab, func(err error) {
					trace.To(node.Eng, trace.LISCSI)
					status := scsi.StatusGood
					if err != nil {
						status = scsi.StatusCheckCondition
					}
					s.reply(PDU{
						Op: OpSCSIResp, Final: true, HasStatus: true,
						Status: status, ITT: p.ITT,
					})
				})
			}
			if t.WireFormat {
				node.Charge(0, store)
				return
			}
			node.Copies.AddPhysical(n)
			node.Charge(node.Cost.CopyCost(n), nil)
			node.ChargeCopy(n, store)
		})

	default:
		if p.Data != nil {
			p.Data.Release()
		}
		s.checkCondition(p.ITT)
	}
}

// checkCondition reports a command failure.
func (s *session) checkCondition(itt uint32) {
	s.reply(PDU{
		Op: OpSCSIResp, Final: true, HasStatus: true,
		Status: scsi.StatusCheckCondition, ITT: itt,
	})
}
