package iscsi

import (
	"errors"
	"fmt"

	"ncache/internal/blockdev"
	"ncache/internal/netbuf"
	"ncache/internal/proto"
	"ncache/internal/proto/eth"
	"ncache/internal/scsi"
	"ncache/internal/sim"
	"ncache/internal/simnet"
	"ncache/internal/trace"
)

// ReadHook intercepts the payload of a completed non-metadata READ before it
// is handed up to the file system. The NCache module installs one to capture
// the wire buffers into its LBN cache; the returned chain (possibly a
// key-carrying placeholder) is what the upper layer sees. This is the
// receive half of the "two functions invoking socket interface changed"
// modification (Table 1).
type ReadHook func(lba int64, blocks int, data *netbuf.Chain) *netbuf.Chain

// WriteHook intercepts the payload of a non-metadata WRITE before it goes to
// the target. The NCache module uses it to recognize key-carrying flush
// payloads, substitute the real cached data, and remap FHO entries to LBN
// entries. The returned chain is transmitted.
type WriteHook func(lba int64, blocks int, data *netbuf.Chain) *netbuf.Chain

// ReadCache can satisfy a non-metadata READ locally before any command is
// issued — the network-centric cache serving as a second level below the
// file-system buffer cache (§3.4). A true return means the chain is the
// payload and no storage traffic occurs.
type ReadCache func(lba int64, blocks int) (*netbuf.Chain, bool)

// Errors surfaced by the initiator.
var (
	ErrNotConnected = errors.New("iscsi: not connected")
	ErrCheckCond    = errors.New("iscsi: check condition")
)

// task tracks one outstanding command, with what is needed to re-issue it
// when the target reports a transient CHECK CONDITION.
type task struct {
	lba    int64
	blocks int
	meta   bool
	write  bool
	// payload is a retained image of the (post-hook) write data so a
	// retry re-sends exactly the bytes of the first attempt — the write
	// hook must not run twice.
	payload *netbuf.Chain
	tries   int
	onData  func(*netbuf.Chain, error)
	onDone  func(error)
}

// releasePayload drops the retained write image.
func (t *task) releasePayload() {
	if t.payload != nil {
		t.payload.Release()
		t.payload = nil
	}
}

// Initiator is the pass-through server's iSCSI client (the kernel
// initiator module analogue). It exposes block reads/writes whose payloads
// travel as netbuf chains, tagged with the metadata/regular-data
// classification the file system derives from the inode behind each request
// (§3.3: "the page data structure associated with iSCSI requests contains
// the inode type information").
type Initiator struct {
	node   *simnet.Node
	dial   proto.Dialer
	local  eth.Addr
	conn   proto.Conn
	framer *Framer

	nextITT uint32
	cmdSN   uint32
	pending map[uint32]*task
	geom    blockdev.Geometry

	readHook  ReadHook
	writeHook WriteHook
	readCache ReadCache

	// retryMax/retryBackoff configure CHECK CONDITION retries (off while
	// retryMax is zero).
	retryMax     int
	retryBackoff sim.Duration

	// Stats.
	ReadCmds, WriteCmds uint64
	// Retries counts commands re-issued after a transient target error.
	Retries uint64
}

// NewInitiator creates an initiator bound to a local address. The dialer
// picks the transport (iSCSI runs over TCP on the testbed, but the initiator
// only needs a proto.Conn).
func NewInitiator(node *simnet.Node, dial proto.Dialer, local eth.Addr) *Initiator {
	return &Initiator{
		node:    node,
		dial:    dial,
		local:   local,
		nextITT: 1,
		cmdSN:   1,
		pending: make(map[uint32]*task),
	}
}

// SetReadHook installs the receive-side interception point.
func (i *Initiator) SetReadHook(h ReadHook) { i.readHook = h }

// SetWriteHook installs the transmit-side interception point.
func (i *Initiator) SetWriteHook(h WriteHook) { i.writeHook = h }

// SetReadCache installs the local second-level read cache.
func (i *Initiator) SetReadCache(h ReadCache) { i.readCache = h }

// SetRetry makes the initiator re-issue a command up to max times when the
// target reports CHECK CONDITION, waiting backoff before each attempt. Off
// by default: the testbed's array never errors unless faults are injected.
func (i *Initiator) SetRetry(max int, backoff sim.Duration) {
	if max < 0 {
		max = 0
	}
	i.retryMax, i.retryBackoff = max, backoff
}

// Geometry returns the target device geometry (valid after Connect).
func (i *Initiator) Geometry() blockdev.Geometry { return i.geom }

// Connect logs in to the target and discovers its geometry.
func (i *Initiator) Connect(target eth.Addr, done func(error)) {
	i.dial(i.local, target, Port, func(c proto.Conn, err error) {
		if err != nil {
			done(err)
			return
		}
		i.conn = c
		i.framer = NewFramer(i.handlePDU)
		c.SetReceiver(func(data *netbuf.Chain) { i.framer.Push(data) })

		login := PDU{Op: OpLoginReq, Final: true, ITT: i.allocITT(nil)}
		i.pending[login.ITT] = &task{onDone: func(err error) {
			if err != nil {
				done(err)
				return
			}
			i.readCapacity(done)
		}}
		i.send(login)
	})
}

// readCapacity issues READ CAPACITY(10) and stores the geometry.
func (i *Initiator) readCapacity(done func(error)) {
	itt := i.allocITT(nil)
	i.pending[itt] = &task{onData: func(data *netbuf.Chain, err error) {
		if err != nil {
			done(err)
			return
		}
		var raw [8]byte
		data.Gather(raw[:])
		data.Release()
		cap10, err := scsi.DecodeReadCapacity(raw[:])
		if err != nil {
			done(err)
			return
		}
		i.geom = blockdev.Geometry{
			BlockSize: int(cap10.BlockSize),
			NumBlocks: int64(cap10.LastLBA) + 1,
		}
		done(nil)
	}}
	cdb := scsi.CDB{Op: scsi.OpReadCapacity10}.Encode()
	i.send(PDU{Op: OpSCSICmd, Final: true, ITT: itt, CmdSN: i.allocCmdSN(), CDB: cdb})
}

// Read fetches blocks from the target. meta marks file-system metadata
// (inodes, directories, bitmaps), which bypasses the NCache read hook. The
// callback owns the returned chain.
func (i *Initiator) Read(lba int64, blocks int, meta bool, done func(*netbuf.Chain, error)) {
	if i.conn == nil {
		done(nil, ErrNotConnected)
		return
	}
	if !meta && i.readCache != nil {
		if data, ok := i.readCache(lba, blocks); ok {
			// Served locally: no iSCSI command, no storage traffic.
			trace.To(i.node.Eng, trace.LNCache)
			i.node.Charge(i.node.Cost.NCacheLookupNs, func() {
				done(data, nil)
			})
			return
		}
	}
	trace.To(i.node.Eng, trace.LISCSI)
	i.ReadCmds++
	itt := i.allocITT(nil)
	i.pending[itt] = &task{lba: lba, blocks: blocks, meta: meta, onData: done}
	cdb := scsi.CDB{Op: scsi.OpRead10, LBA: uint32(lba), Blocks: uint16(blocks)}.Encode()
	i.send(PDU{
		Op: OpSCSICmd, Final: true, ITT: itt,
		ExpectedLen: uint32(blocks * i.geom.BlockSize),
		CmdSN:       i.allocCmdSN(), CDB: cdb,
	})
}

// Write stores a payload chain at lba. The initiator takes ownership of the
// chain; its length must be block-aligned. meta marks file-system metadata.
func (i *Initiator) Write(lba int64, data *netbuf.Chain, meta bool, done func(error)) {
	if i.conn == nil {
		data.Release()
		done(ErrNotConnected)
		return
	}
	trace.To(i.node.Eng, trace.LISCSI)
	i.WriteCmds++
	blocks := data.Len() / i.geom.BlockSize
	if !meta && i.writeHook != nil {
		data = i.writeHook(lba, blocks, data)
	}
	t := &task{lba: lba, blocks: blocks, meta: meta, write: true, onDone: done}
	if i.retryMax > 0 {
		t.payload = data.Clone()
		t.payload.SetOwner("iscsi.retry")
	}
	itt := i.allocITT(nil)
	i.pending[itt] = t
	cdb := scsi.CDB{Op: scsi.OpWrite10, LBA: uint32(lba), Blocks: uint16(blocks)}.Encode()
	i.send(PDU{
		Op: OpSCSICmd, Final: true, ITT: itt,
		ExpectedLen: uint32(data.Len()),
		CmdSN:       i.allocCmdSN(), CDB: cdb,
		Data: data,
	})
}

// send encodes and transmits one PDU, charging per-command CPU.
func (i *Initiator) send(p PDU) {
	chain, err := p.EncodePool(i.node.TxPool)
	if err != nil {
		i.fail(p.ITT, err)
		return
	}
	i.node.Charge(i.node.Cost.ISCSIOpNs, func() {
		if err := i.conn.SendChain(chain); err != nil {
			i.fail(p.ITT, err)
		}
	})
}

// fail completes a task with an error.
func (i *Initiator) fail(itt uint32, err error) {
	t, ok := i.pending[itt]
	if !ok {
		return
	}
	delete(i.pending, itt)
	t.releasePayload()
	if t.onData != nil {
		t.onData(nil, err)
	} else if t.onDone != nil {
		t.onDone(err)
	}
}

// retry re-issues a failed command under a fresh task tag after the
// configured backoff. The wait is booked as fault-attributed iSCSI time on
// the request's span (recovery latency, not injected delay).
func (i *Initiator) retry(t *task) {
	t.tries++
	i.Retries++
	trace.Fault(i.node.Eng, trace.LISCSI, i.retryBackoff)
	i.node.Eng.Schedule(i.retryBackoff, func() {
		itt := i.allocITT(nil)
		i.pending[itt] = t
		if t.write {
			cdb := scsi.CDB{Op: scsi.OpWrite10, LBA: uint32(t.lba), Blocks: uint16(t.blocks)}.Encode()
			data := t.payload.Clone()
			i.send(PDU{
				Op: OpSCSICmd, Final: true, ITT: itt,
				ExpectedLen: uint32(data.Len()),
				CmdSN:       i.allocCmdSN(), CDB: cdb,
				Data: data,
			})
			return
		}
		cdb := scsi.CDB{Op: scsi.OpRead10, LBA: uint32(t.lba), Blocks: uint16(t.blocks)}.Encode()
		i.send(PDU{
			Op: OpSCSICmd, Final: true, ITT: itt,
			ExpectedLen: uint32(t.blocks * i.geom.BlockSize),
			CmdSN:       i.allocCmdSN(), CDB: cdb,
		})
	})
}

// handlePDU processes one response PDU from the target.
func (i *Initiator) handlePDU(p PDU) {
	t, ok := i.pending[p.ITT]
	if !ok {
		if p.Data != nil {
			p.Data.Release()
		}
		return
	}
	trace.To(i.node.Eng, trace.LISCSI)
	i.node.Charge(i.node.Cost.ISCSIOpNs, func() {
		switch p.Op {
		case OpLoginResp, OpLogoutResp:
			delete(i.pending, p.ITT)
			if p.Data != nil {
				p.Data.Release()
			}
			if t.onDone != nil {
				t.onDone(nil)
			}
		case OpDataIn:
			delete(i.pending, p.ITT)
			data := p.Data
			if data == nil {
				data = netbuf.NewChain()
			}
			if p.HasStatus && p.Status != scsi.StatusGood {
				data.Release()
				if t.tries < i.retryMax {
					i.retry(t)
					return
				}
				t.onData(nil, fmt.Errorf("%w: status %#x", ErrCheckCond, p.Status))
				return
			}
			if !t.meta && i.readHook != nil {
				data = i.readHook(t.lba, t.blocks, data)
			}
			t.onData(data, nil)
		case OpSCSIResp:
			delete(i.pending, p.ITT)
			if p.Data != nil {
				p.Data.Release()
			}
			if p.Status != scsi.StatusGood {
				if t.tries < i.retryMax {
					i.retry(t)
					return
				}
				t.releasePayload()
				err := fmt.Errorf("%w: status %#x", ErrCheckCond, p.Status)
				if t.onDone != nil {
					t.onDone(err)
				} else if t.onData != nil {
					t.onData(nil, err)
				}
				return
			}
			t.releasePayload()
			if t.onDone != nil {
				t.onDone(nil)
			} else if t.onData != nil {
				t.onData(nil, nil)
			}
		default:
			if p.Data != nil {
				p.Data.Release()
			}
		}
	})
}

// allocITT reserves a task tag.
func (i *Initiator) allocITT(_ *task) uint32 {
	itt := i.nextITT
	i.nextITT++
	return itt
}

// allocCmdSN reserves a command sequence number.
func (i *Initiator) allocCmdSN() uint32 {
	sn := i.cmdSN
	i.cmdSN++
	return sn
}

// Pending reports outstanding commands.
func (i *Initiator) Pending() int { return len(i.pending) }
