package controlplane

import (
	"testing"

	"ncache/internal/proto"
	"ncache/internal/proto/eth"
	"ncache/internal/proto/ipv4"
	"ncache/internal/proto/tcp"
	"ncache/internal/proto/udp"
	"ncache/internal/sim"
	"ncache/internal/simnet"
)

// cpNet is a little control-plane testbed: the CP node serving both
// transports, two front-end agents, and one resolver host.
type cpNet struct {
	eng      *sim.Engine
	cp       *Server
	agents   []*Agent
	invals   [][]int64 // per-agent invalidated LBNs
	resolver *Resolver
}

const (
	tCPAddr     = eth.Addr(1)
	tServer0    = eth.Addr(0x10)
	tServer1    = eth.Addr(0x18)
	tClientAddr = eth.Addr(0x100)
)

// buildCPNet wires the testbed; stream selects TCP (vs UDP) for the agents
// and the resolver.
func buildCPNet(t *testing.T, stream bool) *cpNet {
	t.Helper()
	eng := sim.NewEngine()
	nw := simnet.NewNetwork(eng, 5*sim.Microsecond)
	n := &cpNet{eng: eng}

	cpNode := simnet.NewNode(eng, "cp", simnet.DefaultProfile())
	if _, err := nw.Attach(cpNode, tCPAddr, simnet.Gbps); err != nil {
		t.Fatal(err)
	}
	cpStack := ipv4.NewStack(cpNode)
	n.cp = NewServer(cpNode, Config{
		Servers:     []eth.Addr{tServer0, tServer1},
		NumTargets:  2,
		RangeBlocks: 8,
	})
	if err := n.cp.ServeUDP(udp.NewTransport(cpStack)); err != nil {
		t.Fatal(err)
	}
	if err := n.cp.ServeStream(tcp.NewTransport(cpStack)); err != nil {
		t.Fatal(err)
	}

	n.invals = make([][]int64, 2)
	for i, addr := range []eth.Addr{tServer0, tServer1} {
		node := simnet.NewNode(eng, "srv", simnet.DefaultProfile())
		if _, err := nw.Attach(node, addr, simnet.Gbps); err != nil {
			t.Fatal(err)
		}
		stack := ipv4.NewStack(node)
		var dial proto.Dialer
		if stream {
			dial = tcp.NewTransport(stack).DialConn
		} else {
			dial = udp.NewTransport(stack).DialConn
		}
		ag := NewAgent(node, dial, addr, tCPAddr, i)
		i := i
		ag.SetInvalidate(func(lbns []int64) {
			n.invals[i] = append(n.invals[i], lbns...)
		})
		n.agents = append(n.agents, ag)
	}

	clNode := simnet.NewNode(eng, "client", simnet.DefaultProfile())
	if _, err := nw.Attach(clNode, tClientAddr, simnet.Gbps); err != nil {
		t.Fatal(err)
	}
	clStack := ipv4.NewStack(clNode)
	var clDial proto.Dialer
	if stream {
		clDial = tcp.NewTransport(clStack).DialConn
	} else {
		clDial = udp.NewTransport(clStack).DialConn
	}
	n.resolver = NewResolver(clNode, clDial, tClientAddr, tCPAddr)
	return n
}

// register runs both agents' registration to completion.
func (n *cpNet) register(t *testing.T) {
	t.Helper()
	for i, ag := range n.agents {
		i := i
		ag.Register(func(err error) {
			if err != nil {
				t.Errorf("agent %d register: %v", i, err)
			}
		})
	}
	if err := n.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if n.cp.Stats.Registers < 2 {
		t.Fatalf("control plane saw %d registers, want >= 2", n.cp.Stats.Registers)
	}
}

// TestWireRoundTrip: every field of a message survives Encode → Framer,
// including a chunked LBN list, over a reassembly split mid-frame.
func TestWireRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	node := simnet.NewNode(eng, "n", simnet.DefaultProfile())
	in := Msg{
		Type:   MsgRemap,
		Status: 3,
		Server: 1,
		From:   1,
		Addr:   tServer1,
		Epoch:  7,
		Seq:    9,
		FH:     fhOf(0xdeadbeef),
		LBN:    12345,
		LBNs:   []int64{1, 5, 9, 1 << 40},
	}
	ch, err := Encode(node.TxPool, in)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	var got []Msg
	f := NewFramer(func(m Msg) { got = append(got, m) })
	f.Push(ch)
	if len(got) != 1 {
		t.Fatalf("framer produced %d messages, want 1", len(got))
	}
	out := got[0]
	if out.Type != in.Type || out.Status != in.Status || out.Server != in.Server ||
		out.From != in.From || out.Addr != in.Addr || out.Epoch != in.Epoch ||
		out.Seq != in.Seq || out.FH != in.FH || out.LBN != in.LBN {
		t.Fatalf("header mismatch: %+v != %+v", out, in)
	}
	if len(out.LBNs) != len(in.LBNs) {
		t.Fatalf("LBNs: %v != %v", out.LBNs, in.LBNs)
	}
	for i := range in.LBNs {
		if out.LBNs[i] != in.LBNs[i] {
			t.Fatalf("LBNs[%d]: %d != %d", i, out.LBNs[i], in.LBNs[i])
		}
	}
}

// runProtocol exercises register → lookup → remap → invalidate → ack over
// one transport.
func runProtocol(t *testing.T, stream bool) {
	n := buildCPNet(t, stream)
	n.register(t)

	// Routing lookups agree with the placement authority, and repeat
	// lookups hit the client-side cache.
	fh := fhOf(42)
	want := n.cp.Registry().ServerFor(fh)
	var gotServer = -2
	n.resolver.Resolve(fh, func(server int, addr eth.Addr, err error) {
		if err != nil {
			t.Errorf("resolve: %v", err)
		}
		if addr != n.cp.Registry().AddrOf(server) {
			t.Errorf("resolve addr %x != registry addr %x", addr, n.cp.Registry().AddrOf(server))
		}
		gotServer = server
	})
	if err := n.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if gotServer != want {
		t.Fatalf("resolver placed fh on %d, registry says %d", gotServer, want)
	}
	n.resolver.Resolve(fh, func(server int, _ eth.Addr, err error) {
		if err != nil || server != want {
			t.Errorf("cached resolve: server=%d err=%v", server, err)
		}
	})
	if n.resolver.Stats.CacheHits != 1 {
		t.Fatalf("second resolve missed the route cache (hits=%d)", n.resolver.Stats.CacheHits)
	}

	// A remap from server 0 must invalidate exactly its peers, then ack
	// the origin.
	n.agents[0].SendRemap([]int64{5, 6, 7})
	if err := n.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if n.cp.Stats.RemapsStarted != 1 {
		t.Fatalf("RemapsStarted = %d, want 1", n.cp.Stats.RemapsStarted)
	}
	if n.agents[0].Stats.RemapsAcked != 1 {
		t.Fatalf("origin acked %d remaps, want 1", n.agents[0].Stats.RemapsAcked)
	}
	if len(n.invals[0]) != 0 {
		t.Fatalf("origin invalidated its own blocks: %v", n.invals[0])
	}
	if got := n.invals[1]; len(got) != 3 || got[0] != 5 || got[1] != 6 || got[2] != 7 {
		t.Fatalf("peer invalidations = %v, want [5 6 7]", got)
	}
	if n.cp.PendingRemaps() != 0 {
		t.Fatalf("%d remaps still pending after drain", n.cp.PendingRemaps())
	}
}

func TestProtocolUDP(t *testing.T) { runProtocol(t, false) }
func TestProtocolTCP(t *testing.T) { runProtocol(t, true) }

// TestRemapDuplicateIdempotent: redelivering a completed remap (same
// server/epoch/seq triple) must re-ack without a second invalidation round.
func TestRemapDuplicateIdempotent(t *testing.T) {
	n := buildCPNet(t, false)
	n.register(t)
	n.agents[0].SendRemap([]int64{11, 12})
	if err := n.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if n.cp.Stats.RemapsStarted != 1 || n.cp.Stats.RemapDups != 0 {
		t.Fatalf("after first remap: started=%d dups=%d", n.cp.Stats.RemapsStarted, n.cp.Stats.RemapDups)
	}
	sent := n.cp.Stats.InvalidationsSent
	acked := n.cp.Stats.RemapAcksSent

	// Redeliver the identical remap straight into the dispatch path (the
	// wire would produce exactly this on a retransmission whose original
	// ack was lost). The re-ack rides the origin's registered route, not
	// the request's reply path.
	n.cp.dispatch(Msg{
		Type:   MsgRemap,
		Server: 0,
		Epoch:  n.agents[0].Epoch(),
		Seq:    1,
		LBNs:   []int64{11, 12},
	}, func(Msg) {})
	if err := n.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if n.cp.Stats.RemapDups != 1 {
		t.Fatalf("RemapDups = %d, want 1", n.cp.Stats.RemapDups)
	}
	if n.cp.Stats.RemapAcksSent != acked+1 {
		t.Fatalf("duplicate remap re-acked %d times, want 1", n.cp.Stats.RemapAcksSent-acked)
	}
	if n.cp.Stats.InvalidationsSent != sent {
		t.Fatalf("duplicate remap sent %d extra invalidations",
			n.cp.Stats.InvalidationsSent-sent)
	}
	if got := n.invals[1]; len(got) != 2 {
		t.Fatalf("peer applied %d invalidations, want 2 (no re-apply)", len(got))
	}
}

// TestResolverLocalRing: after one member-set bootstrap the resolver
// answers every cold lookup from its local ring replica — bit-identically
// to the registry — and the control plane never sees a per-FH lookup.
func TestResolverLocalRing(t *testing.T) {
	n := buildCPNet(t, false)
	n.register(t)
	const handles = 64
	got := make([]int, handles)
	for i := 0; i < handles; i++ {
		i := i
		n.resolver.Resolve(fhOf(uint64(i)), func(server int, addr eth.Addr, err error) {
			if err != nil {
				t.Errorf("resolve %d: %v", i, err)
			}
			if addr != n.cp.Registry().AddrOf(server) {
				t.Errorf("resolve %d: addr %x != registry addr %x", i, addr, n.cp.Registry().AddrOf(server))
			}
			got[i] = server
		})
	}
	if err := n.eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if want := n.cp.Registry().ServerFor(fhOf(uint64(i))); got[i] != want {
			t.Fatalf("handle %d placed on %d, registry says %d", i, got[i], want)
		}
	}
	if n.cp.Stats.LookupsFH != 0 {
		t.Fatalf("control plane served %d per-FH lookups, want 0 (ring replica)", n.cp.Stats.LookupsFH)
	}
	if n.cp.Stats.LookupsMembers != 1 {
		t.Fatalf("control plane served %d member fetches, want 1", n.cp.Stats.LookupsMembers)
	}
	if n.resolver.Stats.LocalHits != handles {
		t.Fatalf("LocalHits = %d, want %d", n.resolver.Stats.LocalHits, handles)
	}
	if n.resolver.Stats.MemberFetches != 1 {
		t.Fatalf("MemberFetches = %d, want 1", n.resolver.Stats.MemberFetches)
	}
}

// TestResolverOverridesFallback: a registry with placement overrides marks
// its member-set response non-authoritative, so the resolver falls back to
// per-FH lookups — and the override is honored.
func TestResolverOverridesFallback(t *testing.T) {
	n := buildCPNet(t, false)
	n.register(t)
	fh := fhOf(7)
	pinned := 1 - n.cp.Registry().ServerFor(fh) // force the non-hash answer
	n.cp.Registry().Pin(fh, pinned)
	gotServer := -2
	n.resolver.Resolve(fh, func(server int, _ eth.Addr, err error) {
		if err != nil {
			t.Errorf("resolve: %v", err)
		}
		gotServer = server
	})
	if err := n.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if gotServer != pinned {
		t.Fatalf("resolver placed pinned fh on %d, want %d", gotServer, pinned)
	}
	if n.cp.Stats.LookupsFH == 0 {
		t.Fatal("resolver answered an overridden placement locally")
	}
	if n.resolver.Stats.LocalHits != 0 {
		t.Fatalf("LocalHits = %d, want 0 under overrides", n.resolver.Stats.LocalHits)
	}
}

// TestResolverInvalidateRefetches: dropping a route after a topology
// change refetches the member set at the new epoch, and the rebuilt
// replica agrees with the shrunken registry.
func TestResolverInvalidateRefetches(t *testing.T) {
	n := buildCPNet(t, false)
	n.register(t)
	fh := fhOf(3)
	n.resolver.Resolve(fh, func(int, eth.Addr, error) {})
	if err := n.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if n.resolver.Stats.MemberFetches != 1 {
		t.Fatalf("MemberFetches = %d, want 1", n.resolver.Stats.MemberFetches)
	}
	// Topology change: server 1 leaves. The resolver's replica is stale
	// until a misroute (or any newer-epoch response) surfaces it.
	n.cp.Registry().SetActive([]int{0})
	n.resolver.Invalidate(fh)
	gotServer := -2
	n.resolver.Resolve(fh, func(server int, _ eth.Addr, err error) {
		if err != nil {
			t.Errorf("resolve after shrink: %v", err)
		}
		gotServer = server
	})
	if err := n.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if gotServer != 0 {
		t.Fatalf("post-shrink placement = %d, want 0 (only active member)", gotServer)
	}
	if n.resolver.Stats.MemberFetches != 2 {
		t.Fatalf("MemberFetches = %d, want 2 (refetch at new epoch)", n.resolver.Stats.MemberFetches)
	}
	if n.resolver.Epoch() != n.cp.Registry().Epoch() {
		t.Fatalf("resolver epoch %d != registry epoch %d", n.resolver.Epoch(), n.cp.Registry().Epoch())
	}
}
