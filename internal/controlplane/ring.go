// Package controlplane shards the pass-through tier: a registry of
// file-handle → front-end-server and LBN-range → iSCSI-target placements
// built on consistent hashing, a small control-plane service that answers
// routing lookups over the transport-neutral proto.Conn API (UDP and TCP),
// and the remap protocol that keeps FHO→LBN re-indexing coherent when the
// server flushing a block is not the server caching it: epoch-stamped remap
// messages fan out as invalidations, are acknowledged individually, and are
// retried idempotently under frame loss.
package controlplane

import (
	"encoding/binary"
	"sort"

	"ncache/internal/lkey"
)

// DefaultVNodes is the virtual-node count per ring member. 64 points per
// member keeps the max/min shard-load ratio comfortably under 2 for the
// member counts the testbed sweeps (1..8 servers, a handful of targets).
const DefaultVNodes = 64

// mix64 is the splitmix64 finalizer: a fixed, seedless avalanche function,
// so placement is a pure function of (member set, key) — identical across
// processes and runs, never dependent on map order or runtime randomness.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash   uint64
	member int
}

// Ring is a deterministic consistent-hash ring over integer member IDs.
type Ring struct {
	vnodes  int
	points  []ringPoint
	members map[int]bool
}

// NewRing creates an empty ring; vnodes <= 0 selects DefaultVNodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[int]bool)}
}

// pointHash places one (member, replica) virtual node on the circle.
func pointHash(member, replica int) uint64 {
	return mix64(uint64(member)<<32 | uint64(uint32(replica)))
}

// Add inserts a member's virtual nodes. Adding an existing member is a no-op.
func (r *Ring) Add(member int) {
	if r.members[member] {
		return
	}
	r.members[member] = true
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{hash: pointHash(member, v), member: member})
	}
	r.sortPoints()
}

// Remove deletes a member's virtual nodes; keys it served move to their
// circle successors, everything else stays put (the consistent-hash
// minimal-movement property).
func (r *Ring) Remove(member int) {
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// sortPoints orders the circle; ties (hash collisions) break by member ID so
// the ring is a pure function of the member set.
func (r *Ring) sortPoints() {
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
}

// Len reports the member count.
func (r *Ring) Len() int { return len(r.members) }

// VNodes reports the virtual-node count per member — replicas built with
// the same count (and member set) are point-for-point identical rings.
func (r *Ring) VNodes() int { return r.vnodes }

// Members returns the member IDs in ascending order.
func (r *Ring) Members() []int {
	out := make([]int, 0, len(r.members))
	for m := range r.members { // det: sorted
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}

// Lookup maps a pre-hashed key to the owning member: the first virtual node
// clockwise from the key's position. Returns -1 on an empty ring.
func (r *Ring) Lookup(key uint64) int {
	if len(r.points) == 0 {
		return -1
	}
	h := mix64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// LookupFH maps a file handle to its owning member.
func (r *Ring) LookupFH(fh lkey.FH) int {
	return r.Lookup(binary.BigEndian.Uint64(fh[:]))
}
