package controlplane

import (
	"ncache/internal/proto"
	"ncache/internal/proto/eth"
	"ncache/internal/proto/udp"
	"ncache/internal/sim"
	"ncache/internal/simnet"
)

// Config parameterizes a control-plane server.
type Config struct {
	// Servers lists the front-end servers' fabric addresses by index; the
	// index is the protocol's server ID.
	Servers []eth.Addr
	// NumTargets and RangeBlocks shape the LBN→target placement.
	NumTargets  int
	RangeBlocks int64
	// VNodes is the consistent-hash virtual-node count (0 = default).
	VNodes int
	// RetryRTO/RetryMax bound invalidation retransmission under frame
	// loss. Zero values select defaults.
	RetryRTO sim.Duration
	RetryMax int
}

// Stats counts control-plane activity.
type Stats struct {
	Registers           uint64
	LookupsFH           uint64
	LookupsLBN          uint64
	LookupsMembers      uint64
	RemapsStarted       uint64
	RemapDups           uint64
	RemapAcksSent       uint64
	InvalidationsSent   uint64
	InvalidationResends uint64
	InvalidationAcks    uint64
	// Abandoned counts invalidations given up after RetryMax tries; the
	// remap still completes (the sim has no permanently dead peers, so a
	// nonzero count under bounded loss indicates miscalibrated retries).
	Abandoned uint64
	Errors    uint64
}

// remapID names one remap exactly: retransmissions carry the same triple,
// which is what makes them idempotent at the server.
type remapID struct {
	server uint16
	epoch  uint64
	seq    uint64
}

// remapPeer tracks one peer's invalidation progress within a remap.
type remapPeer struct {
	idx   int
	acked bool
	tries int
}

// remapState is one in-flight (or completed) remap.
type remapState struct {
	id    remapID
	lbns  []int64
	peers []*remapPeer
	done  bool
}

// Server is the control-plane service: placement lookups for clients,
// registration and the remap/invalidate protocol for front-end servers.
// Single-homed on its own node so its CPU saturation is measurable.
type Server struct {
	node *simnet.Node
	cfg  Config
	reg  *Registry
	tm   *TargetMap

	// routes[i] sends one message to registered server i (nil until it
	// registers). Indexed by server ID so fan-out order is deterministic.
	routes []func(Msg)
	remaps map[remapID]*remapState

	udpT    *udp.Transport
	scratch []byte
	Stats   Stats
}

// Default retransmission bounds for the invalidation fan-out.
const (
	DefaultRetryRTO = 10 * sim.Millisecond
	DefaultRetryMax = 6
)

// NewServer creates the control-plane service on node.
func NewServer(node *simnet.Node, cfg Config) *Server {
	if cfg.RetryRTO <= 0 {
		cfg.RetryRTO = DefaultRetryRTO
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = DefaultRetryMax
	}
	return &Server{
		node:    node,
		cfg:     cfg,
		reg:     NewRegistry(cfg.Servers, cfg.VNodes),
		tm:      NewTargetMap(cfg.NumTargets, cfg.RangeBlocks, cfg.VNodes),
		routes:  make([]func(Msg), len(cfg.Servers)),
		remaps:  make(map[remapID]*remapState),
		scratch: make([]byte, frameLenBytes+headerLen+8*MaxLBNs),
	}
}

// Registry exposes the placement authority (tests and benches reconfigure
// placement through it).
func (s *Server) Registry() *Registry { return s.reg }

// Targets exposes the LBN→target placement shared with the data path.
func (s *Server) Targets() *TargetMap { return s.tm }

// Node returns the server's node.
func (s *Server) Node() *simnet.Node { return s.node }

// ServeUDP binds the datagram endpoint.
func (s *Server) ServeUDP(t *udp.Transport) error {
	s.udpT = t
	return t.Bind(Port, func(dg udp.Datagram) {
		n := dg.Payload.Len()
		if n > len(s.scratch) {
			dg.Payload.Release()
			s.Stats.Errors++
			return
		}
		dg.Payload.Gather(s.scratch[:n])
		dg.Payload.Release()
		if n < frameLenBytes+headerLen {
			s.Stats.Errors++
			return
		}
		m, err := unmarshal(s.scratch[frameLenBytes:n])
		if err != nil {
			s.Stats.Errors++
			return
		}
		src, srcPort, dst := dg.Src, dg.SrcPort, dg.Dst
		s.dispatch(m, func(r Msg) { s.sendUDP(dst, src, srcPort, r) })
	})
}

// sendUDP transmits one framed message from the service port.
func (s *Server) sendUDP(local, dst eth.Addr, dstPort uint16, m Msg) {
	ch, err := Encode(s.node.TxPool, m)
	if err != nil {
		s.Stats.Errors++
		return
	}
	if err := s.udpT.SendChain(local, Port, dst, dstPort, ch); err != nil {
		s.Stats.Errors++
	}
}

// ServeStream accepts framed control connections (the TCP path).
func (s *Server) ServeStream(ln proto.Listener) error {
	return ln.ListenConn(Port, func(c proto.Conn) {
		reply := func(r Msg) {
			ch, err := Encode(s.node.TxPool, r)
			if err != nil {
				s.Stats.Errors++
				return
			}
			if err := c.SendChain(ch); err != nil {
				s.Stats.Errors++
			}
		}
		f := NewFramer(func(m Msg) { s.dispatch(m, reply) })
		c.SetReceiver(f.Push)
	})
}

// dispatch charges the control CPU and handles one message. The charge
// models RPC decode plus one placement-table operation, so control-plane
// saturation shows up in the scale-out sweep like any other CPU.
func (s *Server) dispatch(m Msg, reply func(Msg)) {
	s.node.Charge(s.node.Cost.RPCNs+s.node.Cost.NCacheLookupNs, func() {
		s.handle(m, reply)
	})
}

// handle runs one message against the protocol state machine.
func (s *Server) handle(m Msg, reply func(Msg)) {
	switch m.Type {
	case MsgRegister:
		idx := int(m.Server)
		if idx < 0 || idx >= len(s.routes) {
			s.Stats.Errors++
			return
		}
		s.Stats.Registers++
		s.routes[idx] = reply
		reply(Msg{Type: MsgRegisterAck, Server: m.Server, Epoch: s.reg.Epoch()})

	case MsgLookupFH:
		s.Stats.LookupsFH++
		idx := s.reg.ServerFor(m.FH)
		r := Msg{Type: MsgLookupFHResp, FH: m.FH, Epoch: s.reg.Epoch(), Seq: m.Seq}
		if idx < 0 {
			r.Status = 1
		} else {
			r.Server = uint16(idx)
			r.Addr = s.reg.AddrOf(idx)
		}
		reply(r)

	case MsgMembers:
		s.Stats.LookupsMembers++
		r := Msg{Type: MsgMembersResp, Epoch: s.reg.Epoch(), Seq: m.Seq, LBN: int64(s.reg.VNodes())}
		members := s.reg.Members()
		if s.reg.HasOverrides() || len(members) > MaxLBNs {
			// The ring alone does not decide placement (or does not fit
			// one message): clients must keep asking per handle.
			r.Status |= StatusOverrides
		} else {
			for _, idx := range members {
				r.LBNs = append(r.LBNs, int64(uint64(idx)<<32|uint64(uint32(s.reg.AddrOf(idx)))))
			}
		}
		reply(r)

	case MsgLookupLBN:
		s.Stats.LookupsLBN++
		reply(Msg{
			Type:   MsgLookupLBNResp,
			Server: uint16(s.tm.TargetOf(m.LBN)),
			Epoch:  s.reg.Epoch(),
			LBN:    m.LBN,
			Seq:    m.Seq,
		})

	case MsgRemap:
		s.handleRemap(m)

	case MsgInvalidateAck:
		s.handleInvalidateAck(m)

	default:
		s.Stats.Errors++
	}
}

// handleRemap starts (or re-acknowledges) one remap: fan out epoch-stamped
// invalidations to every other registered server, ack the origin once all
// of them acknowledged.
func (s *Server) handleRemap(m Msg) {
	id := remapID{server: m.Server, epoch: m.Epoch, seq: m.Seq}
	if st, ok := s.remaps[id]; ok {
		// A retransmitted remap: if the protocol already completed the
		// ack was lost — re-ack; otherwise the fan-out is still running
		// and the origin's retry timer covers it.
		s.Stats.RemapDups++
		if st.done {
			s.ackOrigin(st)
		}
		return
	}
	st := &remapState{id: id, lbns: append([]int64(nil), m.LBNs...)}
	// Peers in ascending server-ID order: the fan-out sequence is part of
	// the deterministic replay surface.
	for idx := range s.routes {
		if idx == int(m.Server) || s.routes[idx] == nil {
			continue
		}
		st.peers = append(st.peers, &remapPeer{idx: idx})
	}
	s.remaps[id] = st
	s.Stats.RemapsStarted++
	if len(st.peers) == 0 {
		s.complete(st)
		return
	}
	for _, p := range st.peers {
		s.sendInvalidate(st, p)
	}
}

// invalidateMsg builds the fan-out message for one remap.
func (s *Server) invalidateMsg(st *remapState) Msg {
	return Msg{
		Type:   MsgInvalidate,
		Server: st.id.server,
		Epoch:  st.id.epoch,
		Seq:    st.id.seq,
		LBNs:   st.lbns,
	}
}

// sendInvalidate transmits one peer's invalidation and arms its retry
// timer. The timer never re-arms after the peer acked or the tries are
// exhausted, so a drained engine run always terminates.
func (s *Server) sendInvalidate(st *remapState, p *remapPeer) {
	if route := s.routes[p.idx]; route != nil {
		if p.tries == 0 {
			s.Stats.InvalidationsSent++
		} else {
			s.Stats.InvalidationResends++
		}
		route(s.invalidateMsg(st))
	}
	p.tries++
	s.node.Eng.Schedule(s.cfg.RetryRTO, func() {
		if st.done || p.acked {
			return
		}
		if p.tries >= s.cfg.RetryMax {
			s.Stats.Abandoned++
			p.acked = true
			s.completeIfAcked(st)
			return
		}
		s.sendInvalidate(st, p)
	})
}

// handleInvalidateAck records one peer's acknowledgement.
func (s *Server) handleInvalidateAck(m Msg) {
	id := remapID{server: m.Server, epoch: m.Epoch, seq: m.Seq}
	st, ok := s.remaps[id]
	if !ok {
		return
	}
	s.Stats.InvalidationAcks++
	for _, p := range st.peers {
		if p.idx == int(m.From) {
			p.acked = true
		}
	}
	s.completeIfAcked(st)
}

// completeIfAcked finishes the remap once every peer acknowledged.
func (s *Server) completeIfAcked(st *remapState) {
	if st.done {
		return
	}
	for _, p := range st.peers {
		if !p.acked {
			return
		}
	}
	s.complete(st)
}

// complete marks the remap done and acks its origin. Completed state is
// retained so retransmitted remaps re-ack instead of re-running the
// fan-out (the idempotence the loss tests assert).
func (s *Server) complete(st *remapState) {
	st.done = true
	s.ackOrigin(st)
}

// ackOrigin sends the remap acknowledgement back to the origin server.
func (s *Server) ackOrigin(st *remapState) {
	if route := s.routes[st.id.server]; route != nil {
		s.Stats.RemapAcksSent++
		route(Msg{Type: MsgRemapAck, Server: st.id.server, Epoch: st.id.epoch, Seq: st.id.seq})
	}
}

// PendingRemaps counts remaps whose fan-out has not completed (drain
// assertions in tests).
func (s *Server) PendingRemaps() int {
	n := 0
	for _, st := range s.remaps { // det: commutative (count)
		if !st.done {
			n++
		}
	}
	return n
}
