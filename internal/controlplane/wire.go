package controlplane

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"ncache/internal/lkey"
	"ncache/internal/netbuf"
	"ncache/internal/proto/eth"
)

// Port is the control-plane service's well-known port (UDP and TCP).
const Port uint16 = 964

// MsgType enumerates the control-plane protocol messages.
type MsgType uint8

// Protocol messages. Lookups are client-side routing; Register binds a
// front-end agent's return route; Remap/Invalidate/acks are the coherence
// protocol for FHO→LBN re-indexing across servers.
const (
	MsgRegister MsgType = iota + 1
	MsgRegisterAck
	MsgLookupFH
	MsgLookupFHResp
	MsgLookupLBN
	MsgLookupLBNResp
	MsgRemap
	MsgRemapAck
	MsgInvalidate
	MsgInvalidateAck
	// MsgMembers asks for the active member set; the response carries one
	// packed (serverID<<32 | fabricAddr) entry per member in LBNs, the
	// ring's virtual-node count in LBN, and the overrides-present flag in
	// Status — everything a client needs to replicate the placement ring
	// locally and answer FH lookups without a control-plane round trip.
	MsgMembers
	MsgMembersResp
)

// StatusOverrides flags a MsgMembersResp whose registry holds placement
// overrides (or more members than one message carries): the hash ring alone
// is not authoritative, so clients must keep using per-FH lookups.
const StatusOverrides uint8 = 1 << 0

// MaxLBNs bounds the block list of one remap/invalidate message; larger
// remap sets are chunked by the sender so every message fits one transmit
// buffer (and one datagram).
const MaxLBNs = 128

// headerLen is the fixed encoded prefix:
// type(1) status(1) server(2) from(2) pad(2) addr(4) epoch(8) seq(8) fh(8)
// lbn(8) count(4).
const headerLen = 48

// Msg is one control-plane message. Fields are a union over the message
// types; unused fields encode as zero.
type Msg struct {
	Type   MsgType
	Status uint8
	// Server is the message's subject server index: the origin of a
	// remap/invalidate, the owner in a lookup response, the registrant.
	Server uint16
	// From is the sending server's index on acknowledgements.
	From uint16
	// Addr is the owning server's fabric address on lookup responses.
	Addr eth.Addr
	// Epoch stamps placement authority; Seq orders one server's remaps
	// within an epoch. (Epoch, Seq, Server) identifies a remap exactly,
	// which is what makes retries idempotent.
	Epoch uint64
	Seq   uint64
	FH    lkey.FH
	LBN   int64
	LBNs  []int64
}

// encodedLen is the message's frame body size.
func (m *Msg) encodedLen() int { return headerLen + 8*len(m.LBNs) }

// marshal writes the message body into dst (len(dst) == m.encodedLen()).
func (m *Msg) marshal(dst []byte) {
	dst[0] = byte(m.Type)
	dst[1] = m.Status
	binary.BigEndian.PutUint16(dst[2:4], m.Server)
	binary.BigEndian.PutUint16(dst[4:6], m.From)
	dst[6], dst[7] = 0, 0
	binary.BigEndian.PutUint32(dst[8:12], uint32(m.Addr))
	binary.BigEndian.PutUint64(dst[12:20], m.Epoch)
	binary.BigEndian.PutUint64(dst[20:28], m.Seq)
	copy(dst[28:36], m.FH[:])
	binary.BigEndian.PutUint64(dst[36:44], uint64(m.LBN))
	binary.BigEndian.PutUint32(dst[44:48], uint32(len(m.LBNs)))
	for i, l := range m.LBNs {
		binary.BigEndian.PutUint64(dst[headerLen+8*i:], uint64(l))
	}
}

// errShortMsg reports a truncated or oversized frame.
var errShortMsg = errors.New("controlplane: short message")

// unmarshal parses one frame body.
func unmarshal(p []byte) (Msg, error) {
	if len(p) < headerLen {
		return Msg{}, errShortMsg
	}
	m := Msg{
		Type:   MsgType(p[0]),
		Status: p[1],
		Server: binary.BigEndian.Uint16(p[2:4]),
		From:   binary.BigEndian.Uint16(p[4:6]),
		Addr:   eth.Addr(binary.BigEndian.Uint32(p[8:12])),
		Epoch:  binary.BigEndian.Uint64(p[12:20]),
		Seq:    binary.BigEndian.Uint64(p[20:28]),
		LBN:    int64(binary.BigEndian.Uint64(p[36:44])),
	}
	copy(m.FH[:], p[28:36])
	count := int(binary.BigEndian.Uint32(p[44:48]))
	if count < 0 || count > MaxLBNs || len(p) < headerLen+8*count {
		return Msg{}, fmt.Errorf("%w: count %d in %d bytes", errShortMsg, count, len(p))
	}
	if count > 0 {
		m.LBNs = make([]int64, count)
		for i := range m.LBNs {
			m.LBNs[i] = int64(binary.BigEndian.Uint64(p[headerLen+8*i:]))
		}
	}
	return m, nil
}

// frameLenBytes prefixes every message on the wire (both transports carry
// the same framing: UDP datagrams hold exactly one frame, streams
// concatenate them).
const frameLenBytes = 4

// Encode renders a message as one length-prefixed frame in a pooled transmit
// buffer (owner "cp.msg" — transient control-message memory per the §9
// ownership table: the transport consumes and releases it on send).
func Encode(pool *netbuf.Pool, m Msg) (*netbuf.Chain, error) {
	n := m.encodedLen()
	var b *netbuf.Buf
	if pb, err := pool.Get(); err == nil {
		if pb.Tailroom() >= frameLenBytes+n {
			b = pb
		} else {
			pb.Release()
		}
	}
	if b == nil {
		b = netbuf.New(0, frameLenBytes+n)
	}
	if err := b.Put(frameLenBytes + n); err != nil {
		b.Release()
		return nil, err
	}
	p := b.Bytes()
	binary.BigEndian.PutUint32(p[0:4], uint32(n))
	m.marshal(p[4:])
	ch := netbuf.ChainOf(b)
	ch.SetOwner("cp.msg")
	return ch, nil
}

// Framer reassembles length-prefixed control messages from a transport
// receiver. Control messages are header-only (no payload data rides them),
// so the parse copies the few dozen bytes out of the wire buffers and
// releases them immediately — the zero-copy discipline applies to block
// payloads, not to the control plane.
type Framer struct {
	onMsg func(Msg)
	buf   bytes.Buffer
}

// NewFramer creates a framer delivering parsed messages to onMsg.
func NewFramer(onMsg func(Msg)) *Framer {
	return &Framer{onMsg: onMsg}
}

// Push consumes one received chain (a datagram payload or a stream segment),
// releasing it, and delivers every complete frame.
func (f *Framer) Push(data *netbuf.Chain) {
	if data != nil {
		_ = data.Range(0, data.Len(), func(p []byte) bool {
			f.buf.Write(p)
			return true
		})
		data.Release()
	}
	for {
		raw := f.buf.Bytes()
		if len(raw) < frameLenBytes {
			return
		}
		n := int(binary.BigEndian.Uint32(raw[0:4]))
		if n < headerLen || n > headerLen+8*MaxLBNs {
			// Corrupt framing: drop the buffered stream (a datagram
			// transport re-syncs on the next datagram).
			f.buf.Reset()
			return
		}
		if len(raw) < frameLenBytes+n {
			return
		}
		m, err := unmarshal(raw[frameLenBytes : frameLenBytes+n])
		f.buf.Next(frameLenBytes + n)
		if err != nil {
			continue
		}
		f.onMsg(m)
	}
}
