package controlplane

import (
	"fmt"

	"ncache/internal/proto"
	"ncache/internal/proto/eth"
	"ncache/internal/sim"
	"ncache/internal/simnet"
)

// AgentStats counts one front-end server's protocol activity.
type AgentStats struct {
	RemapsSent           uint64
	RemapRetries         uint64
	RemapsAcked          uint64
	RemapsAbandoned      uint64
	InvalidationsRcvd    uint64
	InvalidationsApplied uint64
	InvalidationDups     uint64
	Errors               uint64
}

// invalID dedups invalidations: retransmissions of (origin, epoch, seq) are
// applied once and re-acked every time.
type invalID struct {
	origin uint16
	epoch  uint64
	seq    uint64
}

// pendingRemap is one unacknowledged remap announcement.
type pendingRemap struct {
	seq   uint64
	lbns  []int64
	tries int
	acked bool
}

// Agent is a front-end server's control-plane endpoint: it registers the
// server's return route, announces completed FHO→LBN remaps, and applies
// (and acknowledges) invalidations for remaps other servers performed.
type Agent struct {
	node   *simnet.Node
	dial   proto.Dialer
	local  eth.Addr
	cpAddr eth.Addr
	server int

	conn     proto.Conn
	framer   *Framer
	onReady  func(error)
	regTries int

	// staged collects the LBNs the cache module re-indexed during the
	// current flush; the data path takes them after the write that carried
	// the blocks commits.
	staged []int64

	epoch   uint64
	seq     uint64
	pending map[uint64]*pendingRemap
	seen    map[invalID]bool

	invalidate func([]int64)

	// RetryRTO/RetryMax bound remap retransmission (defaults applied at
	// NewAgent).
	RetryRTO sim.Duration
	RetryMax int

	Stats AgentStats
}

// NewAgent creates the endpoint for server index `server`, dialing the
// control plane at cp over the given transport.
func NewAgent(node *simnet.Node, dial proto.Dialer, local, cp eth.Addr, server int) *Agent {
	return &Agent{
		node:     node,
		dial:     dial,
		local:    local,
		cpAddr:   cp,
		server:   server,
		pending:  make(map[uint64]*pendingRemap),
		seen:     make(map[invalID]bool),
		RetryRTO: DefaultRetryRTO,
		RetryMax: DefaultRetryMax,
	}
}

// SetInvalidate installs the callback that drops remapped blocks from this
// server's caches. Called once per applied invalidation, before the ack.
func (a *Agent) SetInvalidate(fn func([]int64)) { a.invalidate = fn }

// Epoch reports the highest placement epoch the agent has seen.
func (a *Agent) Epoch() uint64 { return a.epoch }

// Pending counts unacknowledged remap announcements (drain assertions).
func (a *Agent) Pending() int {
	n := 0
	for _, p := range a.pending { // det: commutative (count)
		if !p.acked {
			n++
		}
	}
	return n
}

// Register connects to the control plane and binds this server's route.
// done fires once the RegisterAck arrives (the registration itself rides
// the reliable path: a lost datagram register is retried on the remap
// timer granularity by re-calling Register — the passthru wiring runs it
// before any client traffic, so in practice one round trip).
func (a *Agent) Register(done func(error)) {
	a.onReady = done
	a.dial(a.local, a.cpAddr, Port, func(c proto.Conn, err error) {
		if err != nil {
			a.finishReady(err)
			return
		}
		a.conn = c
		a.framer = NewFramer(a.handle)
		c.SetReceiver(a.framer.Push)
		a.sendRegister()
	})
}

// sendRegister transmits the registration, re-arming a bounded retry until
// the ack lands (registration happens before measurement, so the timer dies
// young; the cap keeps engine drains finite if the control plane is down).
func (a *Agent) sendRegister() {
	if a.onReady == nil {
		return
	}
	if a.regTries >= a.RetryMax*4 {
		a.finishReady(fmt.Errorf("%s: register: no ack after %d tries", a, a.regTries))
		return
	}
	a.regTries++
	a.send(Msg{Type: MsgRegister, Server: uint16(a.server)})
	a.node.Eng.Schedule(a.RetryRTO, func() {
		if a.onReady != nil {
			a.sendRegister()
		}
	})
}

// finishReady fires the Register callback exactly once.
func (a *Agent) finishReady(err error) {
	if a.onReady != nil {
		done := a.onReady
		a.onReady = nil
		done(err)
	}
}

// send encodes and transmits one message on the agent's connection.
func (a *Agent) send(m Msg) {
	if a.conn == nil {
		a.Stats.Errors++
		return
	}
	ch, err := Encode(a.node.TxPool, m)
	if err != nil {
		a.Stats.Errors++
		return
	}
	if err := a.conn.SendChain(ch); err != nil {
		a.Stats.Errors++
	}
}

// ObserveRemap stages LBNs the cache module re-indexed; wired as the
// module's remap observer, it runs synchronously inside the flush write.
func (a *Agent) ObserveRemap(lbns []int64) {
	a.staged = append(a.staged, lbns...)
}

// TakeStaged returns and clears the staged set.
func (a *Agent) TakeStaged() []int64 {
	s := a.staged
	a.staged = nil
	return s
}

// SendRemap announces remapped LBNs to the control plane, chunked to the
// message limit, each chunk retried until acknowledged.
func (a *Agent) SendRemap(lbns []int64) {
	for len(lbns) > 0 {
		n := len(lbns)
		if n > MaxLBNs {
			n = MaxLBNs
		}
		a.seq++
		p := &pendingRemap{seq: a.seq, lbns: append([]int64(nil), lbns[:n]...)}
		a.pending[p.seq] = p
		a.transmitRemap(p)
		lbns = lbns[n:]
	}
}

// transmitRemap sends one chunk and arms its retry timer. The timer does
// not re-arm after the ack or after RetryMax tries, so engine drains
// terminate; exhausting the retries is counted, never silent.
func (a *Agent) transmitRemap(p *pendingRemap) {
	if p.tries == 0 {
		a.Stats.RemapsSent++
	} else {
		a.Stats.RemapRetries++
	}
	p.tries++
	a.send(Msg{Type: MsgRemap, Server: uint16(a.server), Epoch: a.epoch, Seq: p.seq, LBNs: p.lbns})
	a.node.Eng.Schedule(a.RetryRTO, func() {
		if p.acked {
			return
		}
		if p.tries >= a.RetryMax {
			a.Stats.RemapsAbandoned++
			p.acked = true
			return
		}
		a.transmitRemap(p)
	})
}

// handle runs one control-plane message against the agent.
func (a *Agent) handle(m Msg) {
	switch m.Type {
	case MsgRegisterAck:
		if m.Epoch > a.epoch {
			a.epoch = m.Epoch
		}
		a.finishReady(nil)

	case MsgRemapAck:
		if p, ok := a.pending[m.Seq]; ok && !p.acked {
			p.acked = true
			a.Stats.RemapsAcked++
		}

	case MsgInvalidate:
		a.handleInvalidate(m)

	default:
		a.Stats.Errors++
	}
}

// handleInvalidate applies one remote remap's invalidation and always acks
// it — retransmissions are deduplicated by (origin, epoch, seq), so the
// cache drop runs once while the lost-ack path still recovers.
func (a *Agent) handleInvalidate(m Msg) {
	a.Stats.InvalidationsRcvd++
	id := invalID{origin: m.Server, epoch: m.Epoch, seq: m.Seq}
	if a.seen[id] {
		a.Stats.InvalidationDups++
	} else {
		a.seen[id] = true
		if m.Epoch > a.epoch {
			a.epoch = m.Epoch
		}
		// Invalidation is monotone-safe: dropping a clean cached block is
		// always correct, so it applies regardless of epoch ordering.
		if a.invalidate != nil {
			a.invalidate(m.LBNs)
		}
		a.Stats.InvalidationsApplied++
	}
	a.send(Msg{
		Type:   MsgInvalidateAck,
		Server: m.Server,
		From:   uint16(a.server),
		Epoch:  m.Epoch,
		Seq:    m.Seq,
	})
}

// Close tears down the agent's connection.
func (a *Agent) Close() {
	if a.conn != nil {
		a.conn.Close()
		a.conn = nil
	}
}

// String identifies the agent in diagnostics.
func (a *Agent) String() string {
	return fmt.Sprintf("cp.agent(server=%d)", a.server)
}
