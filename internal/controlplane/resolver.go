package controlplane

import (
	"fmt"

	"ncache/internal/lkey"
	"ncache/internal/proto"
	"ncache/internal/proto/eth"
	"ncache/internal/sim"
	"ncache/internal/simnet"
)

// ResolverStats counts client-side routing activity.
type ResolverStats struct {
	Lookups     uint64
	CacheHits   uint64
	Retries     uint64
	Failures    uint64
	EpochFlush  uint64
	StaleEpochs uint64
	// LocalHits counts lookups answered by the client-local ring replica —
	// no control-plane round trip, no control CPU.
	LocalHits uint64
	// MemberFetches counts completed member-set bootstraps (one per epoch
	// the client observes, not one per lookup).
	MemberFetches uint64
}

// routeEntry is one cached FH→server binding, tagged with the epoch it was
// learned at.
type routeEntry struct {
	server int
	addr   eth.Addr
	epoch  uint64
}

// lookupWait is one in-flight lookup and its waiters.
type lookupWait struct {
	fh    lkey.FH
	seq   uint64
	tries int
	done  []func(server int, addr eth.Addr, err error)
}

// membersWait is the in-flight member-set bootstrap and its retry state.
type membersWait struct {
	seq   uint64
	tries int
}

// bootEntry is one lookup parked behind the member-set bootstrap.
type bootEntry struct {
	fh   lkey.FH
	done func(server int, addr eth.Addr, err error)
}

// Resolver is a client host's routing authority replica. On first use it
// bootstraps the control plane's member set once and rebuilds the
// consistent-hash ring locally (placement is a pure function of the member
// set, virtual-node count and key, so the replica answers bit-identically);
// from then on FH lookups are client-local and the control-plane CPU sees
// one message per client per placement epoch instead of one per cold
// route. Per-FH lookups remain the fallback whenever the ring is not
// authoritative — the registry holds overrides, the member set does not
// fit one message, or the bootstrap exhausted its retries. Responses carry
// the placement epoch; any response newer than the cache flushes both the
// route cache and the ring replica, so stale placements die on the next
// answer rather than lingering.
type Resolver struct {
	node   *simnet.Node
	dial   proto.Dialer
	local  eth.Addr
	cpAddr eth.Addr

	conn    proto.Conn
	dialErr error
	dialing bool
	framer  *Framer

	cache    map[lkey.FH]routeEntry
	epoch    uint64
	inflight map[lkey.FH]*lookupWait
	nextSeq  uint64

	// ring/addrs is the local placement replica (nil until bootstrapped,
	// or when the server said it is not authoritative).
	ring         *Ring
	addrs        map[int]eth.Addr
	hasOverrides bool
	bootFailed   bool
	members      *membersWait
	bootQ        []bootEntry

	RetryRTO sim.Duration
	RetryMax int

	Stats ResolverStats
}

// NewResolver creates a resolver on a client host dialing the control
// plane at cp.
func NewResolver(node *simnet.Node, dial proto.Dialer, local, cp eth.Addr) *Resolver {
	return &Resolver{
		node:     node,
		dial:     dial,
		local:    local,
		cpAddr:   cp,
		cache:    make(map[lkey.FH]routeEntry),
		inflight: make(map[lkey.FH]*lookupWait),
		RetryRTO: DefaultRetryRTO,
		RetryMax: DefaultRetryMax,
	}
}

// Epoch reports the highest placement epoch the resolver has seen.
func (r *Resolver) Epoch() uint64 { return r.epoch }

// Resolve answers the owning (server index, address) for fh: from the
// route cache, the local ring replica, or the control plane. done may fire
// synchronously on cache or ring hits.
func (r *Resolver) Resolve(fh lkey.FH, done func(server int, addr eth.Addr, err error)) {
	r.Stats.Lookups++
	r.answer(fh, done)
}

// answer routes one lookup without re-counting it (bootstrap-parked
// lookups re-enter here once the member set lands).
func (r *Resolver) answer(fh lkey.FH, done func(server int, addr eth.Addr, err error)) {
	if e, ok := r.cache[fh]; ok {
		r.Stats.CacheHits++
		done(e.server, e.addr, nil)
		return
	}
	if r.ring != nil && !r.hasOverrides {
		if idx := r.ring.LookupFH(fh); idx >= 0 {
			e := routeEntry{server: idx, addr: r.addrs[idx], epoch: r.epoch}
			r.cache[fh] = e
			r.Stats.LocalHits++
			done(e.server, e.addr, nil)
			return
		}
	}
	if r.ring == nil && !r.hasOverrides && !r.bootFailed {
		// Cold replica: park the lookup behind one member-set fetch.
		r.bootQ = append(r.bootQ, bootEntry{fh: fh, done: done})
		r.fetchMembers()
		return
	}
	r.lookupRemote(fh, done)
}

// lookupRemote asks the control plane for one handle's owner (the
// pre-replica path, and the permanent fallback when the ring is not
// authoritative).
func (r *Resolver) lookupRemote(fh lkey.FH, done func(server int, addr eth.Addr, err error)) {
	if w, ok := r.inflight[fh]; ok {
		w.done = append(w.done, done)
		return
	}
	r.nextSeq++
	w := &lookupWait{fh: fh, seq: r.nextSeq, done: []func(int, eth.Addr, error){done}}
	r.inflight[fh] = w
	r.ensureConn(func(err error) {
		if err != nil {
			r.fail(w, err)
			return
		}
		r.transmit(w)
	})
}

// fetchMembers starts (or joins) the member-set bootstrap.
func (r *Resolver) fetchMembers() {
	if r.members != nil {
		return
	}
	r.nextSeq++
	w := &membersWait{seq: r.nextSeq}
	r.members = w
	r.ensureConn(func(err error) {
		if err != nil {
			r.bootFallback(w)
			return
		}
		r.transmitMembers(w)
	})
}

// transmitMembers sends one member-set request and arms its retry timer;
// exhausting the tries falls back to per-FH lookups for good rather than
// failing the parked lookups (the per-FH path has its own retry budget).
func (r *Resolver) transmitMembers(w *membersWait) {
	if r.members != w {
		return
	}
	if w.tries >= r.RetryMax {
		r.bootFallback(w)
		return
	}
	if w.tries > 0 {
		r.Stats.Retries++
	}
	w.tries++
	ch, err := Encode(r.node.TxPool, Msg{Type: MsgMembers, Seq: w.seq})
	if err != nil {
		r.bootFallback(w)
		return
	}
	if err := r.conn.SendChain(ch); err != nil {
		r.bootFallback(w)
		return
	}
	r.node.Eng.Schedule(r.RetryRTO, func() { r.transmitMembers(w) })
}

// bootFallback abandons the replica and drains the parked lookups through
// the per-FH path.
func (r *Resolver) bootFallback(w *membersWait) {
	if r.members != w {
		return
	}
	r.members = nil
	r.bootFailed = true
	q := r.bootQ
	r.bootQ = nil
	for _, e := range q {
		r.lookupRemote(e.fh, e.done)
	}
}

// ensureConn dials the control plane once and reuses the connection.
func (r *Resolver) ensureConn(ready func(error)) {
	if r.conn != nil || r.dialErr != nil {
		ready(r.dialErr)
		return
	}
	if r.dialing {
		// A concurrent Resolve is already dialing; poll on the retry
		// granularity (dials in the sim complete quickly or not at all).
		r.node.Eng.Schedule(r.RetryRTO, func() { r.ensureConn(ready) })
		return
	}
	r.dialing = true
	r.dial(r.local, r.cpAddr, Port, func(c proto.Conn, err error) {
		r.dialing = false
		if err != nil {
			r.dialErr = err
			ready(err)
			return
		}
		r.conn = c
		r.framer = NewFramer(r.handle)
		c.SetReceiver(r.framer.Push)
		ready(nil)
	})
}

// transmit sends one lookup and arms its retry timer (bounded; a lookup
// that exhausts its tries fails rather than hanging its waiters).
func (r *Resolver) transmit(w *lookupWait) {
	if _, live := r.inflight[w.fh]; !live || r.inflight[w.fh] != w {
		return
	}
	if w.tries >= r.RetryMax {
		r.fail(w, fmt.Errorf("controlplane: lookup fh=%x: no response after %d tries", w.fh, w.tries))
		return
	}
	if w.tries > 0 {
		r.Stats.Retries++
	}
	w.tries++
	ch, err := Encode(r.node.TxPool, Msg{Type: MsgLookupFH, FH: w.fh, Seq: w.seq})
	if err != nil {
		r.fail(w, err)
		return
	}
	if err := r.conn.SendChain(ch); err != nil {
		r.fail(w, err)
		return
	}
	r.node.Eng.Schedule(r.RetryRTO, func() { r.transmit(w) })
}

// fail completes a lookup's waiters with an error.
func (r *Resolver) fail(w *lookupWait, err error) {
	if r.inflight[w.fh] == w {
		delete(r.inflight, w.fh)
	}
	r.Stats.Failures++
	for _, d := range w.done {
		d(-1, 0, err)
	}
}

// handle consumes one control-plane response.
func (r *Resolver) handle(m Msg) {
	switch m.Type {
	case MsgLookupFHResp:
		r.handleLookup(m)
	case MsgMembersResp:
		r.handleMembers(m)
	}
}

// advanceEpoch applies the epoch discipline to one response: a response
// from a newer placement epoch means every cached route — and the ring
// replica — may be stale: flush and relearn. Responses from older epochs
// (reordered datagrams) report false and must not install state over newer
// answers.
func (r *Resolver) advanceEpoch(epoch uint64) bool {
	if epoch > r.epoch {
		if len(r.cache) > 0 {
			r.Stats.EpochFlush++
		}
		r.cache = make(map[lkey.FH]routeEntry)
		r.ring, r.addrs, r.hasOverrides = nil, nil, false
		r.epoch = epoch
	} else if epoch < r.epoch {
		r.Stats.StaleEpochs++
		return false
	}
	return true
}

// handleMembers installs the member-set response as the local ring replica
// and drains the lookups parked behind the bootstrap.
func (r *Resolver) handleMembers(m Msg) {
	if r.members == nil || m.Seq != r.members.seq {
		return
	}
	if !r.advanceEpoch(m.Epoch) {
		return
	}
	r.members = nil
	r.Stats.MemberFetches++
	if m.Status&StatusOverrides != 0 {
		// Ring not authoritative: remember that and use per-FH lookups
		// until the next epoch bump.
		r.hasOverrides = true
	} else {
		ring := NewRing(int(m.LBN))
		addrs := make(map[int]eth.Addr, len(m.LBNs))
		for _, packed := range m.LBNs {
			idx := int(uint64(packed) >> 32)
			ring.Add(idx)
			addrs[idx] = eth.Addr(uint32(uint64(packed)))
		}
		r.ring, r.addrs = ring, addrs
	}
	q := r.bootQ
	r.bootQ = nil
	for _, e := range q {
		r.answer(e.fh, e.done)
	}
}

// handleLookup consumes one per-FH lookup response.
func (r *Resolver) handleLookup(m Msg) {
	if !r.advanceEpoch(m.Epoch) {
		return
	}
	w, ok := r.inflight[m.FH]
	if !ok {
		return
	}
	delete(r.inflight, m.FH)
	if m.Status != 0 {
		r.Stats.Failures++
		for _, d := range w.done {
			d(-1, 0, fmt.Errorf("controlplane: no server for fh=%x", m.FH))
		}
		return
	}
	e := routeEntry{server: int(m.Server), addr: m.Addr, epoch: m.Epoch}
	r.cache[m.FH] = e
	for _, d := range w.done {
		d(e.server, e.addr, nil)
	}
}

// Invalidate drops one cached route (callers that see a misroute can force
// a relearn without waiting for an epoch bump). A misroute also means the
// ring replica answered wrong, so it is dropped too — the refetch lands on
// the registry's current epoch.
func (r *Resolver) Invalidate(fh lkey.FH) {
	delete(r.cache, fh)
	r.ring, r.addrs = nil, nil
}

// Close tears down the resolver's connection.
func (r *Resolver) Close() {
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
	}
}
