package controlplane

import (
	"fmt"

	"ncache/internal/lkey"
	"ncache/internal/proto"
	"ncache/internal/proto/eth"
	"ncache/internal/sim"
	"ncache/internal/simnet"
)

// ResolverStats counts client-side routing activity.
type ResolverStats struct {
	Lookups     uint64
	CacheHits   uint64
	Retries     uint64
	Failures    uint64
	EpochFlush  uint64
	StaleEpochs uint64
}

// routeEntry is one cached FH→server binding, tagged with the epoch it was
// learned at.
type routeEntry struct {
	server int
	addr   eth.Addr
	epoch  uint64
}

// lookupWait is one in-flight lookup and its waiters.
type lookupWait struct {
	fh    lkey.FH
	seq   uint64
	tries int
	done  []func(server int, addr eth.Addr, err error)
}

// Resolver is a client host's routing cache: it answers "which front-end
// server owns this file handle" by asking the control plane once and
// caching the binding. Responses carry the placement epoch; any response
// newer than the cache flushes it, so stale routes die on the next answer
// rather than lingering.
type Resolver struct {
	node   *simnet.Node
	dial   proto.Dialer
	local  eth.Addr
	cpAddr eth.Addr

	conn    proto.Conn
	dialErr error
	dialing bool
	framer  *Framer

	cache    map[lkey.FH]routeEntry
	epoch    uint64
	inflight map[lkey.FH]*lookupWait
	nextSeq  uint64

	RetryRTO sim.Duration
	RetryMax int

	Stats ResolverStats
}

// NewResolver creates a resolver on a client host dialing the control
// plane at cp.
func NewResolver(node *simnet.Node, dial proto.Dialer, local, cp eth.Addr) *Resolver {
	return &Resolver{
		node:     node,
		dial:     dial,
		local:    local,
		cpAddr:   cp,
		cache:    make(map[lkey.FH]routeEntry),
		inflight: make(map[lkey.FH]*lookupWait),
		RetryRTO: DefaultRetryRTO,
		RetryMax: DefaultRetryMax,
	}
}

// Epoch reports the highest placement epoch the resolver has seen.
func (r *Resolver) Epoch() uint64 { return r.epoch }

// Resolve answers the owning (server index, address) for fh, from cache or
// the control plane. done may fire synchronously on a cache hit.
func (r *Resolver) Resolve(fh lkey.FH, done func(server int, addr eth.Addr, err error)) {
	r.Stats.Lookups++
	if e, ok := r.cache[fh]; ok {
		r.Stats.CacheHits++
		done(e.server, e.addr, nil)
		return
	}
	if w, ok := r.inflight[fh]; ok {
		w.done = append(w.done, done)
		return
	}
	r.nextSeq++
	w := &lookupWait{fh: fh, seq: r.nextSeq, done: []func(int, eth.Addr, error){done}}
	r.inflight[fh] = w
	r.ensureConn(func(err error) {
		if err != nil {
			r.fail(w, err)
			return
		}
		r.transmit(w)
	})
}

// ensureConn dials the control plane once and reuses the connection.
func (r *Resolver) ensureConn(ready func(error)) {
	if r.conn != nil || r.dialErr != nil {
		ready(r.dialErr)
		return
	}
	if r.dialing {
		// A concurrent Resolve is already dialing; poll on the retry
		// granularity (dials in the sim complete quickly or not at all).
		r.node.Eng.Schedule(r.RetryRTO, func() { r.ensureConn(ready) })
		return
	}
	r.dialing = true
	r.dial(r.local, r.cpAddr, Port, func(c proto.Conn, err error) {
		r.dialing = false
		if err != nil {
			r.dialErr = err
			ready(err)
			return
		}
		r.conn = c
		r.framer = NewFramer(r.handle)
		c.SetReceiver(r.framer.Push)
		ready(nil)
	})
}

// transmit sends one lookup and arms its retry timer (bounded; a lookup
// that exhausts its tries fails rather than hanging its waiters).
func (r *Resolver) transmit(w *lookupWait) {
	if _, live := r.inflight[w.fh]; !live || r.inflight[w.fh] != w {
		return
	}
	if w.tries >= r.RetryMax {
		r.fail(w, fmt.Errorf("controlplane: lookup fh=%x: no response after %d tries", w.fh, w.tries))
		return
	}
	if w.tries > 0 {
		r.Stats.Retries++
	}
	w.tries++
	ch, err := Encode(r.node.TxPool, Msg{Type: MsgLookupFH, FH: w.fh, Seq: w.seq})
	if err != nil {
		r.fail(w, err)
		return
	}
	if err := r.conn.SendChain(ch); err != nil {
		r.fail(w, err)
		return
	}
	r.node.Eng.Schedule(r.RetryRTO, func() { r.transmit(w) })
}

// fail completes a lookup's waiters with an error.
func (r *Resolver) fail(w *lookupWait, err error) {
	if r.inflight[w.fh] == w {
		delete(r.inflight, w.fh)
	}
	r.Stats.Failures++
	for _, d := range w.done {
		d(-1, 0, err)
	}
}

// handle consumes one control-plane response.
func (r *Resolver) handle(m Msg) {
	if m.Type != MsgLookupFHResp {
		return
	}
	// Epoch discipline: a response from a newer placement epoch means every
	// cached route may be stale — flush and relearn. Responses from older
	// epochs (reordered datagrams) must not install routes over newer ones.
	if m.Epoch > r.epoch {
		if len(r.cache) > 0 {
			r.Stats.EpochFlush++
		}
		r.cache = make(map[lkey.FH]routeEntry)
		r.epoch = m.Epoch
	} else if m.Epoch < r.epoch {
		r.Stats.StaleEpochs++
		return
	}
	w, ok := r.inflight[m.FH]
	if !ok {
		return
	}
	delete(r.inflight, m.FH)
	if m.Status != 0 {
		r.Stats.Failures++
		for _, d := range w.done {
			d(-1, 0, fmt.Errorf("controlplane: no server for fh=%x", m.FH))
		}
		return
	}
	e := routeEntry{server: int(m.Server), addr: m.Addr, epoch: m.Epoch}
	r.cache[m.FH] = e
	for _, d := range w.done {
		d(e.server, e.addr, nil)
	}
}

// Invalidate drops one cached route (callers that see a misroute can force
// a relearn without waiting for an epoch bump).
func (r *Resolver) Invalidate(fh lkey.FH) { delete(r.cache, fh) }

// Close tears down the resolver's connection.
func (r *Resolver) Close() {
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
	}
}
