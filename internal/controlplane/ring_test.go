package controlplane

import (
	"testing"

	"ncache/internal/lkey"
	"ncache/internal/proto/eth"
)

// fhOf builds a distinct file handle per index.
func fhOf(i uint64) lkey.FH {
	var fh lkey.FH
	fh[0] = byte(i >> 56)
	fh[1] = byte(i >> 48)
	fh[2] = byte(i >> 40)
	fh[3] = byte(i >> 32)
	fh[4] = byte(i >> 24)
	fh[5] = byte(i >> 16)
	fh[6] = byte(i >> 8)
	fh[7] = byte(i)
	return fh
}

// TestRingBalance: with 64 vnodes per member the keyspace must spread so no
// member carries more than twice the load of any other.
func TestRingBalance(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		r := NewRing(DefaultVNodes)
		for m := 0; m < n; m++ {
			r.Add(m)
		}
		counts := make([]int, n)
		const keys = 100_000
		for k := uint64(0); k < keys; k++ {
			m := r.Lookup(k)
			if m < 0 || m >= n {
				t.Fatalf("n=%d: lookup(%d) = %d out of range", n, k, m)
			}
			counts[m]++
		}
		min, max := counts[0], counts[0]
		for _, c := range counts[1:] {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if min == 0 || float64(max)/float64(min) > 2.0 {
			t.Fatalf("n=%d: imbalanced ring: member loads %v (max/min > 2)", n, counts)
		}
	}
}

// TestRingMinimalMovement: adding a member must only move keys onto the new
// member (about 1/n of them), never shuffle keys between old members; and
// removing it must restore the prior placement exactly.
func TestRingMinimalMovement(t *testing.T) {
	const n, keys = 4, 50_000
	r := NewRing(DefaultVNodes)
	for m := 0; m < n; m++ {
		r.Add(m)
	}
	before := make([]int, keys)
	for k := range before {
		before[k] = r.Lookup(uint64(k))
	}
	r.Add(n)
	moved := 0
	for k := range before {
		now := r.Lookup(uint64(k))
		if now == before[k] {
			continue
		}
		if now != n {
			t.Fatalf("key %d moved between old members: %d -> %d", k, before[k], now)
		}
		moved++
	}
	if moved == 0 {
		t.Fatalf("adding a member moved no keys onto it")
	}
	if frac := float64(moved) / keys; frac > 2.0/float64(n+1) {
		t.Fatalf("adding one member moved %.1f%% of keys (want about %.1f%%)",
			100*frac, 100.0/float64(n+1))
	}
	r.Remove(n)
	for k := range before {
		if got := r.Lookup(uint64(k)); got != before[k] {
			t.Fatalf("key %d: placement not restored after remove: %d != %d", k, got, before[k])
		}
	}
}

// TestRingDeterministic: the ring is a pure function of its member set —
// insertion order must not matter, and repeated lookups must agree.
func TestRingDeterministic(t *testing.T) {
	a := NewRing(DefaultVNodes)
	b := NewRing(DefaultVNodes)
	for _, m := range []int{0, 1, 2, 3} {
		a.Add(m)
	}
	for _, m := range []int{3, 1, 0, 2} {
		b.Add(m)
	}
	for k := uint64(0); k < 10_000; k++ {
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("key %d: placement depends on insertion order (%d vs %d)",
				k, a.Lookup(k), b.Lookup(k))
		}
	}
	if a.Lookup(42) != a.Lookup(42) {
		t.Fatalf("lookup not stable")
	}
	if NewRing(DefaultVNodes).Lookup(1) != -1 {
		t.Fatalf("empty ring must answer -1")
	}
}

// TestRegistryPlacement: overrides beat the ring, and the epoch bumps on
// every placement change so routing caches can tell stale answers apart.
func TestRegistryPlacement(t *testing.T) {
	addrs := []eth.Addr{0x0a000010, 0x0a000018, 0x0a000020, 0x0a000028}
	g := NewRegistry(addrs, DefaultVNodes)
	if g.Epoch() != 1 {
		t.Fatalf("fresh registry epoch = %d, want 1", g.Epoch())
	}
	fh := fhOf(7)
	hashed := g.ServerFor(fh)
	if hashed < 0 || hashed >= len(addrs) {
		t.Fatalf("ServerFor out of range: %d", hashed)
	}
	if g.AddrOf(hashed) != addrs[hashed] {
		t.Fatalf("AddrOf(%d) = %x, want %x", hashed, g.AddrOf(hashed), addrs[hashed])
	}
	pinTo := (hashed + 1) % len(addrs)
	g.Pin(fh, pinTo)
	if g.Epoch() != 2 {
		t.Fatalf("epoch after Pin = %d, want 2", g.Epoch())
	}
	if got := g.ServerFor(fh); got != pinTo {
		t.Fatalf("pinned ServerFor = %d, want %d", got, pinTo)
	}
	g.Unpin(fh)
	if g.Epoch() != 3 {
		t.Fatalf("epoch after Unpin = %d, want 3", g.Epoch())
	}
	if got := g.ServerFor(fh); got != hashed {
		t.Fatalf("ServerFor after Unpin = %d, want hash placement %d", got, hashed)
	}
	g.SetActive([]int{0, 1})
	if g.Epoch() != 4 {
		t.Fatalf("epoch after SetActive = %d, want 4", g.Epoch())
	}
	if got := g.ServerFor(fh); got != 0 && got != 1 {
		t.Fatalf("ServerFor after shrink = %d, want member of {0,1}", got)
	}
}

// TestTargetMapSplit: extents split exactly at range boundaries, adjacent
// same-target pieces merge, and every block lands on the target TargetOf
// names for it.
func TestTargetMapSplit(t *testing.T) {
	tm := NewTargetMap(4, 8, DefaultVNodes)
	const start, blocks = int64(3), 64
	exts := tm.Split(start, blocks)
	covered := int64(0)
	next := start
	for i, e := range exts {
		if e.LBN != next {
			t.Fatalf("extent %d starts at %d, want %d", i, e.LBN, next)
		}
		if e.Blocks <= 0 {
			t.Fatalf("extent %d empty", i)
		}
		for b := int64(0); b < int64(e.Blocks); b++ {
			if got := tm.TargetOf(e.LBN + b); got != e.Target {
				t.Fatalf("lbn %d: extent says target %d, TargetOf says %d",
					e.LBN+b, e.Target, got)
			}
		}
		if i > 0 && exts[i-1].Target == e.Target {
			t.Fatalf("adjacent extents %d and %d share target %d (not merged)",
				i-1, i, e.Target)
		}
		next += int64(e.Blocks)
		covered += int64(e.Blocks)
	}
	if covered != blocks {
		t.Fatalf("extents cover %d blocks, want %d", covered, blocks)
	}
	if tm.TargetOf(5) < 0 || tm.TargetOf(5) >= 4 {
		t.Fatalf("TargetOf out of range")
	}
	one := NewTargetMap(1, 8, DefaultVNodes)
	if got := one.Split(0, 100); len(got) != 1 || got[0].Target != 0 || got[0].Blocks != 100 {
		t.Fatalf("single-target split: %+v", got)
	}
}
