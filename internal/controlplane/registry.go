package controlplane

import (
	"ncache/internal/lkey"
	"ncache/internal/proto/eth"
)

// Registry is the control plane's placement authority: which front-end
// server owns each file handle, at which epoch. Placement is consistent
// hashing over the active member set by default, with a registry-driven
// override table on top (the pluggable policy: operators or rebalancers pin
// individual handles without touching the hash ring). Every change bumps the
// epoch; lookup responses carry it so client-side route caches built at an
// older epoch flush themselves.
type Registry struct {
	servers   []eth.Addr
	ring      *Ring
	overrides map[lkey.FH]int
	epoch     uint64
}

// NewRegistry places all servers as active members at epoch 1.
func NewRegistry(servers []eth.Addr, vnodes int) *Registry {
	g := &Registry{
		servers:   append([]eth.Addr(nil), servers...),
		ring:      NewRing(vnodes),
		overrides: make(map[lkey.FH]int),
		epoch:     1,
	}
	for i := range servers {
		g.ring.Add(i)
	}
	return g
}

// Epoch returns the current placement epoch.
func (g *Registry) Epoch() uint64 { return g.epoch }

// NumServers reports the configured server count (active or not).
func (g *Registry) NumServers() int { return len(g.servers) }

// AddrOf returns a server's fabric address.
func (g *Registry) AddrOf(idx int) eth.Addr {
	if idx < 0 || idx >= len(g.servers) {
		return 0
	}
	return g.servers[idx]
}

// Members returns the active member indices in ascending order.
func (g *Registry) Members() []int { return g.ring.Members() }

// VNodes reports the ring's virtual-node count (what a client replica must
// use to reproduce the placement exactly).
func (g *Registry) VNodes() int { return g.ring.VNodes() }

// HasOverrides reports whether any per-handle placement override is
// installed — if so, the hash ring alone is not authoritative.
func (g *Registry) HasOverrides() bool { return len(g.overrides) > 0 }

// ServerFor maps a file handle to its owning server index: the override
// table first, then the hash ring. Returns -1 when no server is active.
func (g *Registry) ServerFor(fh lkey.FH) int {
	if idx, ok := g.overrides[fh]; ok {
		return idx
	}
	return g.ring.LookupFH(fh)
}

// SetActive replaces the active member set (topology change: servers joining
// or leaving the placement). Bumps the epoch.
func (g *Registry) SetActive(members []int) {
	for _, m := range g.ring.Members() {
		g.ring.Remove(m)
	}
	for _, m := range members {
		if m >= 0 && m < len(g.servers) {
			g.ring.Add(m)
		}
	}
	g.epoch++
}

// Pin installs a registry-driven placement override for one handle.
func (g *Registry) Pin(fh lkey.FH, server int) {
	g.overrides[fh] = server
	g.epoch++
}

// Unpin removes an override, returning the handle to hash placement.
func (g *Registry) Unpin(fh lkey.FH) {
	if _, ok := g.overrides[fh]; ok {
		delete(g.overrides, fh)
		g.epoch++
	}
}

// DefaultRangeBlocks is the LBN-range granularity of target placement:
// 1024 file-system blocks (4 MB) per range.
const DefaultRangeBlocks = 1024

// Extent is one contiguous per-target run of a split block request.
type Extent struct {
	Target int
	LBN    int64
	Blocks int
}

// TargetMap places LBN ranges onto iSCSI targets by consistent hashing of
// the range index. Every target exports the full global geometry (the
// simulated disks are sparse), so a block's LBN is the same on every target
// and placement only selects which target serves it.
type TargetMap struct {
	numTargets  int
	rangeBlocks int64
	ring        *Ring
}

// NewTargetMap builds the placement for numTargets targets.
func NewTargetMap(numTargets int, rangeBlocks int64, vnodes int) *TargetMap {
	if numTargets <= 0 {
		numTargets = 1
	}
	if rangeBlocks <= 0 {
		rangeBlocks = DefaultRangeBlocks
	}
	m := &TargetMap{numTargets: numTargets, rangeBlocks: rangeBlocks, ring: NewRing(vnodes)}
	for t := 0; t < numTargets; t++ {
		m.ring.Add(t)
	}
	return m
}

// NumTargets reports the target count.
func (m *TargetMap) NumTargets() int { return m.numTargets }

// RangeBlocks reports the placement granularity.
func (m *TargetMap) RangeBlocks() int64 { return m.rangeBlocks }

// TargetOf maps one block to its serving target.
func (m *TargetMap) TargetOf(lbn int64) int {
	if m == nil || m.numTargets == 1 {
		return 0
	}
	return m.ring.Lookup(uint64(lbn / m.rangeBlocks))
}

// Split cuts a contiguous block run at range boundaries into per-target
// extents, in ascending LBN order.
func (m *TargetMap) Split(lbn int64, blocks int) []Extent {
	if m == nil || m.numTargets == 1 {
		return []Extent{{Target: 0, LBN: lbn, Blocks: blocks}}
	}
	var out []Extent
	for blocks > 0 {
		boundary := (lbn/m.rangeBlocks + 1) * m.rangeBlocks
		n := blocks
		if int64(n) > boundary-lbn {
			n = int(boundary - lbn)
		}
		t := m.TargetOf(lbn)
		// Merge with the previous extent when adjacent ranges land on the
		// same target.
		if len(out) > 0 && out[len(out)-1].Target == t &&
			out[len(out)-1].LBN+int64(out[len(out)-1].Blocks) == lbn {
			out[len(out)-1].Blocks += n
		} else {
			out = append(out, Extent{Target: t, LBN: lbn, Blocks: n})
		}
		lbn += int64(n)
		blocks -= n
	}
	return out
}
