package xdr

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	e := NewEncoder(64)
	e.Uint32(0xdeadbeef)
	e.Int32(-42)
	e.Uint64(1 << 60)
	e.Bool(true)
	e.Bool(false)

	d := NewDecoder(e.Bytes())
	if v, err := d.Uint32(); err != nil || v != 0xdeadbeef {
		t.Fatalf("Uint32 = %v, %v", v, err)
	}
	if v, err := d.Int32(); err != nil || v != -42 {
		t.Fatalf("Int32 = %v, %v", v, err)
	}
	if v, err := d.Uint64(); err != nil || v != 1<<60 {
		t.Fatalf("Uint64 = %v, %v", v, err)
	}
	if v, err := d.Bool(); err != nil || v != true {
		t.Fatalf("Bool = %v, %v", v, err)
	}
	if v, err := d.Bool(); err != nil || v != false {
		t.Fatalf("Bool = %v, %v", v, err)
	}
	if err := d.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestOpaquePadding(t *testing.T) {
	for n := 0; n <= 9; n++ {
		e := NewEncoder(32)
		payload := bytes.Repeat([]byte{0xab}, n)
		e.Opaque(payload)
		if e.Len()%4 != 0 {
			t.Fatalf("len(opaque %d) = %d, not 4-aligned", n, e.Len())
		}
		d := NewDecoder(e.Bytes())
		got, err := d.Opaque(0)
		if err != nil {
			t.Fatalf("Opaque(%d): %v", n, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("Opaque(%d) round trip failed", n)
		}
		if err := d.Done(); err != nil {
			t.Fatalf("Done after opaque %d: %v", n, err)
		}
	}
}

func TestFixedOpaque(t *testing.T) {
	e := NewEncoder(16)
	e.FixedOpaque([]byte("abcde")) // 5 bytes → 3 pad
	if e.Len() != 8 {
		t.Fatalf("Len = %d, want 8", e.Len())
	}
	d := NewDecoder(e.Bytes())
	got, err := d.FixedOpaque(5)
	if err != nil || string(got) != "abcde" {
		t.Fatalf("FixedOpaque = %q, %v", got, err)
	}
	if err := d.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestStringRoundTrip(t *testing.T) {
	e := NewEncoder(32)
	e.String("filename.txt")
	d := NewDecoder(e.Bytes())
	s, err := d.String(255)
	if err != nil || s != "filename.txt" {
		t.Fatalf("String = %q, %v", s, err)
	}
}

func TestDecodeErrors(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	if _, err := d.Uint32(); !errors.Is(err, ErrShort) {
		t.Fatalf("short Uint32 err = %v", err)
	}

	e := NewEncoder(8)
	e.Uint32(7)
	d = NewDecoder(e.Bytes())
	if _, err := d.Bool(); !errors.Is(err, ErrBadBool) {
		t.Fatalf("bad bool err = %v", err)
	}

	e = NewEncoder(16)
	e.Opaque([]byte("too long"))
	d = NewDecoder(e.Bytes())
	if _, err := d.Opaque(4); !errors.Is(err, ErrTooLong) {
		t.Fatalf("limit err = %v", err)
	}

	// Length prefix larger than remaining data.
	e = NewEncoder(8)
	e.Uint32(100)
	d = NewDecoder(e.Bytes())
	if _, err := d.Opaque(0); !errors.Is(err, ErrShort) {
		t.Fatalf("truncated opaque err = %v", err)
	}

	e = NewEncoder(8)
	e.Uint32(1)
	e.Uint32(2)
	d = NewDecoder(e.Bytes())
	if _, err := d.Uint32(); err != nil {
		t.Fatal(err)
	}
	if err := d.Done(); !errors.Is(err, ErrTrailing) {
		t.Fatalf("Done with trailing = %v", err)
	}
}

func TestPropertyOpaqueRoundTrip(t *testing.T) {
	f := func(p []byte, s string, a uint32, b uint64) bool {
		e := NewEncoder(len(p) + len(s) + 32)
		e.Opaque(p)
		e.String(s)
		e.Uint32(a)
		e.Uint64(b)
		d := NewDecoder(e.Bytes())
		gp, err := d.Opaque(0)
		if err != nil || !bytes.Equal(gp, p) {
			return false
		}
		gs, err := d.String(0)
		if err != nil || gs != s {
			return false
		}
		ga, err := d.Uint32()
		if err != nil || ga != a {
			return false
		}
		gb, err := d.Uint64()
		if err != nil || gb != b {
			return false
		}
		return d.Done() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
