// Package xdr implements External Data Representation (RFC 4506) encoding,
// the wire format of ONC RPC and NFS. Everything is big-endian and padded to
// 4-byte alignment.
package xdr

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Errors returned by the decoder.
var (
	ErrShort    = errors.New("xdr: buffer too short")
	ErrTooLong  = errors.New("xdr: variable-length item exceeds limit")
	ErrBadBool  = errors.New("xdr: boolean not 0 or 1")
	ErrTrailing = errors.New("xdr: trailing bytes")
)

// pad returns the number of padding bytes after n data bytes.
func pad(n int) int { return (4 - n%4) % 4 }

// Encoder serializes XDR items into a growing byte slice.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with the given capacity hint.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// Uint32 encodes a 32-bit unsigned integer.
func (e *Encoder) Uint32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// Int32 encodes a 32-bit signed integer.
func (e *Encoder) Int32(v int32) { e.Uint32(uint32(v)) }

// Uint64 encodes a 64-bit unsigned hyper integer.
func (e *Encoder) Uint64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// Bool encodes a boolean.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint32(1)
	} else {
		e.Uint32(0)
	}
}

// Opaque encodes variable-length opaque data (length prefix + padding).
func (e *Encoder) Opaque(p []byte) {
	e.Uint32(uint32(len(p)))
	e.buf = append(e.buf, p...)
	for i := 0; i < pad(len(p)); i++ {
		e.buf = append(e.buf, 0)
	}
}

// FixedOpaque encodes fixed-length opaque data (no length prefix).
func (e *Encoder) FixedOpaque(p []byte) {
	e.buf = append(e.buf, p...)
	for i := 0; i < pad(len(p)); i++ {
		e.buf = append(e.buf, 0)
	}
}

// String encodes a string as variable-length opaque data.
func (e *Encoder) String(s string) { e.Opaque([]byte(s)) }

// Decoder deserializes XDR items from a byte slice.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder returns a decoder over p.
func NewDecoder(p []byte) *Decoder { return &Decoder{buf: p} }

// Remaining returns the number of undecoded bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Offset returns the current decode position.
func (d *Decoder) Offset() int { return d.off }

// Uint32 decodes a 32-bit unsigned integer.
func (d *Decoder) Uint32() (uint32, error) {
	if d.Remaining() < 4 {
		return 0, fmt.Errorf("%w: uint32 at %d", ErrShort, d.off)
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

// Int32 decodes a 32-bit signed integer.
func (d *Decoder) Int32() (int32, error) {
	v, err := d.Uint32()
	return int32(v), err
}

// Uint64 decodes a 64-bit unsigned hyper integer.
func (d *Decoder) Uint64() (uint64, error) {
	if d.Remaining() < 8 {
		return 0, fmt.Errorf("%w: uint64 at %d", ErrShort, d.off)
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

// Bool decodes a boolean.
func (d *Decoder) Bool() (bool, error) {
	v, err := d.Uint32()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, ErrBadBool
	}
}

// Opaque decodes variable-length opaque data of at most limit bytes
// (0 = unlimited). The returned slice aliases the decoder's buffer.
func (d *Decoder) Opaque(limit int) ([]byte, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if limit > 0 && int(n) > limit {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooLong, n, limit)
	}
	total := int(n) + pad(int(n))
	if d.Remaining() < total {
		return nil, fmt.Errorf("%w: opaque %d at %d", ErrShort, n, d.off)
	}
	p := d.buf[d.off : d.off+int(n)]
	d.off += total
	return p, nil
}

// FixedOpaque decodes n bytes of fixed-length opaque data.
func (d *Decoder) FixedOpaque(n int) ([]byte, error) {
	total := n + pad(n)
	if d.Remaining() < total {
		return nil, fmt.Errorf("%w: fixed opaque %d at %d", ErrShort, n, d.off)
	}
	p := d.buf[d.off : d.off+n]
	d.off += total
	return p, nil
}

// String decodes a string of at most limit bytes (0 = unlimited).
func (d *Decoder) String(limit int) (string, error) {
	p, err := d.Opaque(limit)
	return string(p), err
}

// Done verifies the decoder consumed its entire buffer.
func (d *Decoder) Done() error {
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, d.Remaining())
	}
	return nil
}
