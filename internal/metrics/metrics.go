// Package metrics collects the data-path counters the paper's evaluation is
// built on: physical copy operations and bytes (the quantity NCache
// eliminates), logical copies (key movements), packet counts, and
// per-request accounting used to regenerate Table 2.
package metrics

import "fmt"

// Copies tallies data movement on one node's data path.
type Copies struct {
	// PhysicalOps counts payload memcpy operations (one per block moved
	// between layers, the unit Table 2 reports).
	PhysicalOps uint64
	// PhysicalBytes counts payload bytes physically copied.
	PhysicalBytes uint64
	// LogicalOps counts key-only ("logical") copies.
	LogicalOps uint64
	// ChecksumBytes counts payload bytes walked for software checksumming.
	ChecksumBytes uint64
	// Substitutions counts NCache packet-payload substitutions at transmit.
	Substitutions uint64
	// Remaps counts FHO→LBN cache re-indexing operations.
	Remaps uint64
}

// AddPhysical records one physical copy of n bytes.
func (c *Copies) AddPhysical(n int) {
	c.PhysicalOps++
	c.PhysicalBytes += uint64(n)
}

// AddLogical records one logical (key) copy.
func (c *Copies) AddLogical() { c.LogicalOps++ }

// Sub returns the difference c - o (counters since a snapshot o).
func (c Copies) Sub(o Copies) Copies {
	return Copies{
		PhysicalOps:   c.PhysicalOps - o.PhysicalOps,
		PhysicalBytes: c.PhysicalBytes - o.PhysicalBytes,
		LogicalOps:    c.LogicalOps - o.LogicalOps,
		ChecksumBytes: c.ChecksumBytes - o.ChecksumBytes,
		Substitutions: c.Substitutions - o.Substitutions,
		Remaps:        c.Remaps - o.Remaps,
	}
}

// String summarizes the counters.
func (c Copies) String() string {
	return fmt.Sprintf("copies{phys=%d (%d B) logical=%d subst=%d remap=%d}",
		c.PhysicalOps, c.PhysicalBytes, c.LogicalOps, c.Substitutions, c.Remaps)
}

// Net tallies wire-level traffic on one node.
type Net struct {
	PacketsTx uint64
	PacketsRx uint64
	BytesTx   uint64
	BytesRx   uint64
	// FaultDropTx counts frames discarded at transmit by injected faults.
	FaultDropTx uint64
	// FaultCorruptRx counts frames discarded on delivery because an
	// injected fault spoiled them in flight.
	FaultCorruptRx uint64
	// FaultDupTx counts extra frame copies injected at transmit.
	FaultDupTx uint64
}

// Sub returns the difference n - o.
func (n Net) Sub(o Net) Net {
	return Net{
		PacketsTx:      n.PacketsTx - o.PacketsTx,
		PacketsRx:      n.PacketsRx - o.PacketsRx,
		BytesTx:        n.BytesTx - o.BytesTx,
		BytesRx:        n.BytesRx - o.BytesRx,
		FaultDropTx:    n.FaultDropTx - o.FaultDropTx,
		FaultCorruptRx: n.FaultCorruptRx - o.FaultCorruptRx,
		FaultDupTx:     n.FaultDupTx - o.FaultDupTx,
	}
}

// Cache tallies hit/miss behaviour of a cache layer.
type Cache struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Writeback uint64
}

// HitRatio returns hits/(hits+misses), or 0 with no lookups.
func (c Cache) HitRatio() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// Sub returns the difference c - o.
func (c Cache) Sub(o Cache) Cache {
	return Cache{
		Hits:      c.Hits - o.Hits,
		Misses:    c.Misses - o.Misses,
		Evictions: c.Evictions - o.Evictions,
		Writeback: c.Writeback - o.Writeback,
	}
}

// Requests tallies application-level operations (NFS ops, HTTP requests).
type Requests struct {
	Ops       uint64
	OpBytes   uint64
	Errors    uint64
	ReadOps   uint64
	WriteOps  uint64
	MetaOps   uint64
	ReadBytes uint64
	// WriteBytes counts payload bytes written by clients.
	WriteBytes uint64
}

// Sub returns the difference r - o.
func (r Requests) Sub(o Requests) Requests {
	return Requests{
		Ops:        r.Ops - o.Ops,
		OpBytes:    r.OpBytes - o.OpBytes,
		Errors:     r.Errors - o.Errors,
		ReadOps:    r.ReadOps - o.ReadOps,
		WriteOps:   r.WriteOps - o.WriteOps,
		MetaOps:    r.MetaOps - o.MetaOps,
		ReadBytes:  r.ReadBytes - o.ReadBytes,
		WriteBytes: r.WriteBytes - o.WriteBytes,
	}
}
