// Package metrics collects the data-path counters the paper's evaluation is
// built on: physical copy operations and bytes (the quantity NCache
// eliminates), logical copies (key movements), packet counts, and
// per-request accounting used to regenerate Table 2.
package metrics

import "fmt"

// Copies tallies data movement on one node's data path.
type Copies struct {
	// PhysicalOps counts payload memcpy operations (one per block moved
	// between layers, the unit Table 2 reports).
	PhysicalOps uint64
	// PhysicalBytes counts payload bytes physically copied.
	PhysicalBytes uint64
	// LogicalOps counts key-only ("logical") copies.
	LogicalOps uint64
	// ChecksumBytes counts payload bytes walked for software checksumming.
	ChecksumBytes uint64
	// Substitutions counts NCache packet-payload substitutions at transmit.
	Substitutions uint64
	// Remaps counts FHO→LBN cache re-indexing operations.
	Remaps uint64
}

// AddPhysical records one physical copy of n bytes.
func (c *Copies) AddPhysical(n int) {
	c.PhysicalOps++
	c.PhysicalBytes += uint64(n)
}

// AddLogical records one logical (key) copy.
func (c *Copies) AddLogical() { c.LogicalOps++ }

// Sub returns the difference c - o (counters since a snapshot o).
func (c Copies) Sub(o Copies) Copies {
	return Copies{
		PhysicalOps:   c.PhysicalOps - o.PhysicalOps,
		PhysicalBytes: c.PhysicalBytes - o.PhysicalBytes,
		LogicalOps:    c.LogicalOps - o.LogicalOps,
		ChecksumBytes: c.ChecksumBytes - o.ChecksumBytes,
		Substitutions: c.Substitutions - o.Substitutions,
		Remaps:        c.Remaps - o.Remaps,
	}
}

// String summarizes the counters.
func (c Copies) String() string {
	return fmt.Sprintf("copies{phys=%d (%d B) logical=%d subst=%d remap=%d}",
		c.PhysicalOps, c.PhysicalBytes, c.LogicalOps, c.Substitutions, c.Remaps)
}

// Net tallies wire-level traffic on one node.
type Net struct {
	PacketsTx uint64
	PacketsRx uint64
	BytesTx   uint64
	BytesRx   uint64
	// FaultDropTx counts frames discarded at transmit by injected faults.
	FaultDropTx uint64
	// FaultCorruptRx counts frames discarded on delivery because an
	// injected fault spoiled them in flight.
	FaultCorruptRx uint64
	// FaultDupTx counts extra frame copies injected at transmit.
	FaultDupTx uint64
}

// Sub returns the difference n - o.
func (n Net) Sub(o Net) Net {
	return Net{
		PacketsTx:      n.PacketsTx - o.PacketsTx,
		PacketsRx:      n.PacketsRx - o.PacketsRx,
		BytesTx:        n.BytesTx - o.BytesTx,
		BytesRx:        n.BytesRx - o.BytesRx,
		FaultDropTx:    n.FaultDropTx - o.FaultDropTx,
		FaultCorruptRx: n.FaultCorruptRx - o.FaultCorruptRx,
		FaultDupTx:     n.FaultDupTx - o.FaultDupTx,
	}
}

// Cache tallies hit/miss behaviour of a cache layer.
type Cache struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Writeback uint64
}

// HitRatio returns hits/(hits+misses), or 0 with no lookups.
func (c Cache) HitRatio() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// Sub returns the difference c - o.
func (c Cache) Sub(o Cache) Cache {
	return Cache{
		Hits:      c.Hits - o.Hits,
		Misses:    c.Misses - o.Misses,
		Evictions: c.Evictions - o.Evictions,
		Writeback: c.Writeback - o.Writeback,
	}
}

// Writeback tallies the asynchronous dirty-data pipeline: bounded dirty
// memory in the buffer cache, the write-ahead log's depth, and the group
// commits and admission stalls that couple them. One instance is shared by
// a server's buffer-cache flusher and its WAL.
type Writeback struct {
	// DirtyBytes gauges dirty buffer-cache memory; DirtyPeakBytes is its
	// high-water mark over the run.
	DirtyBytes     int64
	DirtyPeakBytes int64
	// WALDepth gauges journaled-but-unretired records (staged + durable);
	// WALPeakDepth is its high-water mark, WALBytes the payload they hold.
	WALDepth     int64
	WALPeakDepth int64
	WALBytes     int64
	// WALAppends/WALCommits/WALTruncates count log operations;
	// CommitRecords totals the records made durable, so
	// CommitRecords/WALCommits is the mean group-commit size.
	WALAppends    uint64
	WALCommits    uint64
	WALTruncates  uint64
	CommitRecords uint64
	// CommitSizeHist is a log2 histogram of records per group commit:
	// bucket i counts commits of [2^i, 2^(i+1)) records.
	CommitSizeHist [16]uint64
	// FlushBatches/FlushBlocks count coalesced write-back I/Os and the
	// blocks they carried (FlushBlocks/FlushBatches = mean batch size).
	FlushBatches uint64
	FlushBlocks  uint64
	// Stalls counts admissions parked at the dirty high watermark;
	// StallNs sums the simulated time they spent queued.
	Stalls  uint64
	StallNs int64
}

// AddDirty moves the dirty-bytes gauge by delta, tracking the peak.
func (w *Writeback) AddDirty(delta int64) {
	w.DirtyBytes += delta
	if w.DirtyBytes > w.DirtyPeakBytes {
		w.DirtyPeakBytes = w.DirtyBytes
	}
}

// AddWALDepth moves the WAL record/byte gauges, tracking the peak depth.
func (w *Writeback) AddWALDepth(records, bytes int64) {
	w.WALDepth += records
	w.WALBytes += bytes
	if w.WALDepth > w.WALPeakDepth {
		w.WALPeakDepth = w.WALDepth
	}
}

// ObserveCommit records one group commit of n records.
func (w *Writeback) ObserveCommit(n int) {
	w.WALCommits++
	w.CommitRecords += uint64(n)
	b := 0
	for v := n; v > 1 && b < len(w.CommitSizeHist)-1; v >>= 1 {
		b++
	}
	w.CommitSizeHist[b]++
}

// MeanCommitSize returns the average records per group commit.
func (w *Writeback) MeanCommitSize() float64 {
	if w.WALCommits == 0 {
		return 0
	}
	return float64(w.CommitRecords) / float64(w.WALCommits)
}

// MeanBatchBlocks returns the average blocks per coalesced write-back I/O.
func (w *Writeback) MeanBatchBlocks() float64 {
	if w.FlushBatches == 0 {
		return 0
	}
	return float64(w.FlushBlocks) / float64(w.FlushBatches)
}

// String summarizes the pipeline counters.
func (w *Writeback) String() string {
	return fmt.Sprintf("writeback{dirty=%dB (peak %dB) wal=%d/%dB appends=%d commits=%d (mean %.1f) trunc=%d batches=%d (mean %.1f blk) stalls=%d}",
		w.DirtyBytes, w.DirtyPeakBytes, w.WALDepth, w.WALBytes,
		w.WALAppends, w.WALCommits, w.MeanCommitSize(), w.WALTruncates,
		w.FlushBatches, w.MeanBatchBlocks(), w.Stalls)
}

// Volume tallies the replicated lower storage path, aggregated over a
// volume's mirror arms: command traffic, breaker activity and recovery
// work. The fig-avail timeline samples it per bucket.
type Volume struct {
	Reads        uint64
	Writes       uint64
	Errors       uint64
	Ejections    uint64
	Probes       uint64
	Resyncs      uint64
	ResyncBlocks uint64
	// DirtyBlocks gauges outstanding dirty-region log entries (blocks an
	// ejected arm still owes).
	DirtyBlocks uint64
}

// Sub returns the difference v - o for the monotonic counters; the
// DirtyBlocks gauge is carried over as-is.
func (v Volume) Sub(o Volume) Volume {
	return Volume{
		Reads:        v.Reads - o.Reads,
		Writes:       v.Writes - o.Writes,
		Errors:       v.Errors - o.Errors,
		Ejections:    v.Ejections - o.Ejections,
		Probes:       v.Probes - o.Probes,
		Resyncs:      v.Resyncs - o.Resyncs,
		ResyncBlocks: v.ResyncBlocks - o.ResyncBlocks,
		DirtyBlocks:  v.DirtyBlocks,
	}
}

// String summarizes the volume counters.
func (v Volume) String() string {
	return fmt.Sprintf("volume{r=%d w=%d err=%d eject=%d probe=%d resync=%d (%d blk) dirty=%d}",
		v.Reads, v.Writes, v.Errors, v.Ejections, v.Probes, v.Resyncs, v.ResyncBlocks, v.DirtyBlocks)
}

// Requests tallies application-level operations (NFS ops, HTTP requests).
type Requests struct {
	Ops       uint64
	OpBytes   uint64
	Errors    uint64
	ReadOps   uint64
	WriteOps  uint64
	MetaOps   uint64
	ReadBytes uint64
	// WriteBytes counts payload bytes written by clients.
	WriteBytes uint64
}

// Sub returns the difference r - o.
func (r Requests) Sub(o Requests) Requests {
	return Requests{
		Ops:        r.Ops - o.Ops,
		OpBytes:    r.OpBytes - o.OpBytes,
		Errors:     r.Errors - o.Errors,
		ReadOps:    r.ReadOps - o.ReadOps,
		WriteOps:   r.WriteOps - o.WriteOps,
		MetaOps:    r.MetaOps - o.MetaOps,
		ReadBytes:  r.ReadBytes - o.ReadBytes,
		WriteBytes: r.WriteBytes - o.WriteBytes,
	}
}
