package metrics

import (
	"strings"
	"testing"
)

func TestCopiesAccounting(t *testing.T) {
	var c Copies
	c.AddPhysical(4096)
	c.AddPhysical(100)
	c.AddLogical()
	if c.PhysicalOps != 2 || c.PhysicalBytes != 4196 || c.LogicalOps != 1 {
		t.Fatalf("copies = %+v", c)
	}
	snap := c
	c.AddPhysical(1)
	d := c.Sub(snap)
	if d.PhysicalOps != 1 || d.PhysicalBytes != 1 || d.LogicalOps != 0 {
		t.Fatalf("delta = %+v", d)
	}
	if !strings.Contains(c.String(), "phys=3") {
		t.Fatalf("String = %q", c.String())
	}
}

func TestNetSub(t *testing.T) {
	a := Net{PacketsTx: 10, PacketsRx: 20, BytesTx: 100, BytesRx: 200}
	b := Net{PacketsTx: 4, PacketsRx: 5, BytesTx: 40, BytesRx: 50}
	d := a.Sub(b)
	if d.PacketsTx != 6 || d.PacketsRx != 15 || d.BytesTx != 60 || d.BytesRx != 150 {
		t.Fatalf("delta = %+v", d)
	}
}

func TestCacheHitRatio(t *testing.T) {
	c := Cache{Hits: 75, Misses: 25}
	if c.HitRatio() != 0.75 {
		t.Fatalf("ratio = %v", c.HitRatio())
	}
	if (Cache{}).HitRatio() != 0 {
		t.Fatal("empty cache ratio != 0")
	}
	d := Cache{Hits: 100, Misses: 30, Evictions: 5, Writeback: 2}.Sub(c)
	if d.Hits != 25 || d.Misses != 5 || d.Evictions != 5 || d.Writeback != 2 {
		t.Fatalf("delta = %+v", d)
	}
}

func TestRequestsSub(t *testing.T) {
	a := Requests{Ops: 10, ReadOps: 5, WriteOps: 2, MetaOps: 3, ReadBytes: 500, WriteBytes: 200}
	d := a.Sub(Requests{Ops: 4, ReadOps: 2, WriteOps: 1, MetaOps: 1, ReadBytes: 100, WriteBytes: 50})
	if d.Ops != 6 || d.ReadOps != 3 || d.WriteOps != 1 || d.MetaOps != 2 || d.ReadBytes != 400 || d.WriteBytes != 150 {
		t.Fatalf("delta = %+v", d)
	}
}
