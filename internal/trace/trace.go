// Package trace is the request-level tracing and latency-attribution
// subsystem. A Span follows one client request through the whole simulated
// data path — client, wire, RPC, server logic, file system, NCache, iSCSI,
// disk — on the engine's virtual clock, and attributes every nanosecond of
// its end-to-end latency to exactly one layer.
//
// Propagation needs no plumbing: spans ride the sim.Engine's event context,
// which is inherited by every event scheduled from the current one. A layer
// calls To just before starting asynchronous work (a CPU charge, a link
// serialization, a disk access) and the time until the next switch — queueing
// delay included — accrues to that layer. Because the segments partition
// [start, end] of each span, per-layer attribution sums to the end-to-end
// duration exactly, by construction.
//
// Tracing is zero-cost when disabled: a nil *Tracer produces nil *Spans, and
// every method is a nil-receiver no-op. Nothing here schedules events or
// charges costs, so enabling tracing never changes a simulation result.
package trace

import (
	"strings"

	"ncache/internal/sim"
)

// Layer identifies one stage of the data path for latency attribution.
type Layer uint8

// The attribution layers, ordered roughly top (client) to bottom (disk).
const (
	// LClient is time attributed to the requesting client itself:
	// request construction before the RPC send.
	LClient Layer = iota
	// LNet is wire time: NIC transmit serialization, switch forwarding,
	// propagation, and receive interrupt processing.
	LNet
	// LRPC is RPC/XDR processing on either side (SunRPC framing, reply
	// matching) including its CPU queueing.
	LRPC
	// LServer is per-operation server logic: NFS/HTTP dispatch, reply
	// composition, and the data-path copies charged at that level.
	LServer
	// LFS is file-system and buffer-cache work: mapping, cache lookup,
	// block assembly.
	LFS
	// LNCache is network-centric cache management on the request's
	// critical path (second-level hit service).
	LNCache
	// LISCSI is iSCSI command processing, initiator and target.
	LISCSI
	// LDisk is disk-arm service (positioning + media transfer) and its
	// queueing.
	LDisk
	// NumLayers bounds the enum.
	NumLayers
)

var layerNames = [NumLayers]string{
	"client", "net", "rpc", "server", "fs", "ncache", "iscsi", "disk",
}

// String names the layer.
func (l Layer) String() string {
	if int(l) < len(layerNames) {
		return layerNames[l]
	}
	return "?"
}

// ResClass classifies queueing resources for wait/service accounting.
type ResClass uint8

// Resource classes, derived from resource naming conventions.
const (
	ResCPU ResClass = iota
	ResNIC
	ResLink
	ResDisk
	ResOther
	NumResClasses
)

var resClassNames = [NumResClasses]string{"cpu", "nic", "link", "disk", "other"}

// String names the class.
func (c ResClass) String() string {
	if int(c) < len(resClassNames) {
		return resClassNames[c]
	}
	return "?"
}

// classifyResource maps a resource's diagnostic name to a class. Naming
// follows the simnet/blockdev conventions: "<node>.cpu", "<node>.<addr>.tx",
// "sw.<addr>.down", "disk<N>".
func classifyResource(name string) ResClass {
	switch {
	case strings.HasSuffix(name, ".cpu"):
		return ResCPU
	case strings.HasSuffix(name, ".tx"):
		return ResNIC
	case strings.HasSuffix(name, ".down"):
		return ResLink
	case strings.HasPrefix(name, "disk"):
		return ResDisk
	default:
		return ResOther
	}
}

// Phase is one contiguous segment of a span's timeline spent in one layer.
type Phase struct {
	Layer      Layer
	Start, End sim.Time
}

// Span is the trace of one request. All methods are safe on a nil receiver
// (the disabled-tracing fast path) and after Finish.
type Span struct {
	id    uint64
	op    string
	start sim.Time
	end   sim.Time

	tracer *Tracer
	// eng is the shard the span began on (where its requests issue and
	// complete). Mid-request attribution from other shards arrives via the
	// package-level helpers, which carry the acting shard's engine.
	eng        *sim.Engine
	cur        Layer
	lastSwitch sim.Time
	done       bool

	// layers partitions [start,end]: time the request spent with each
	// layer responsible for its progress (queueing included).
	layers [NumLayers]sim.Duration
	// charged tallies CPU demand billed on the request's behalf by fire-
	// and-forget charges (e.g. NCache LRU maintenance) — cost that delays
	// other requests rather than gating this one, so it is reported
	// separately and does not enter the timeline partition.
	charged [NumLayers]sim.Duration
	// wait/service accumulate per-resource-class queueing delay and
	// service demand admitted on this span (from the engine usage hook).
	wait    [NumResClasses]sim.Duration
	service [NumResClasses]sim.Duration
	// faults books injected-fault latency per layer: delays the fault
	// subsystem added on this request's critical path (disk latency
	// spikes, held-back frames) and the recovery waits its transports
	// spent (RPC retransmission timeouts, iSCSI retry backoffs). faultN
	// counts injections, including zero-delay ones (drops, transient
	// errors) whose cost shows up only through recovery.
	faults [NumLayers]sim.Duration
	faultN [NumLayers]uint64

	// phases is the explicit segment list, kept only when the tracer
	// retains spans for export.
	phases []Phase
}

// ID returns the span's sequence number (0 for nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Op returns the operation label ("" for nil).
func (s *Span) Op() string {
	if s == nil {
		return ""
	}
	return s.op
}

// Start returns the span's start time.
func (s *Span) Start() sim.Time {
	if s == nil {
		return 0
	}
	return s.start
}

// End returns the span's end time (valid after Finish).
func (s *Span) End() sim.Time {
	if s == nil {
		return 0
	}
	return s.end
}

// Duration returns the end-to-end latency (valid after Finish).
func (s *Span) Duration() sim.Duration {
	if s == nil {
		return 0
	}
	return s.end.Sub(s.start)
}

// Layers returns the per-layer timeline attribution.
func (s *Span) Layers() [NumLayers]sim.Duration {
	if s == nil {
		return [NumLayers]sim.Duration{}
	}
	return s.layers
}

// Phases returns the retained segment list (nil unless the tracer keeps
// spans).
func (s *Span) Phases() []Phase {
	if s == nil {
		return nil
	}
	return s.phases
}

// To attributes the timeline since the previous switch to the current layer
// and makes l the active layer. Call it just before starting asynchronous
// work on behalf of the request. No-op on nil or finished spans.
func (s *Span) To(l Layer) {
	if s == nil {
		return
	}
	s.toOn(s.eng, l)
}

// toOn is To with an explicit acting engine: the clock to read and, on a
// sharded tracer, the shard log to record into. Direct mutation is only
// legal single-threaded (legacy engines); sharded runs defer every span
// mutation into per-shard logs that the tracer merges at epoch barriers in
// (time, shard, sequence) order — the same canonical order the engine uses
// for staged events — so attribution is bit-identical for any worker count.
func (s *Span) toOn(eng *sim.Engine, l Layer) {
	if s == nil || s.done || l >= NumLayers {
		return
	}
	if s.tracer.par {
		s.tracer.log(eng, rec{span: s, kind: rTo, at: eng.Now(), layer: l})
		return
	}
	s.closeSegment(eng.Now())
	s.cur = l
}

// closeSegment accrues [lastSwitch, now) to the active layer.
func (s *Span) closeSegment(now sim.Time) {
	if now > s.lastSwitch {
		s.layers[s.cur] += now.Sub(s.lastSwitch)
		if s.phases != nil || s.tracer.keep {
			s.phases = append(s.phases, Phase{s.cur, s.lastSwitch, now})
		}
		s.lastSwitch = now
	}
}

// Account records fire-and-forget CPU demand billed for this request in
// layer l. It is bookkeeping only — no timeline impact.
func (s *Span) Account(l Layer, d sim.Duration) {
	if s == nil {
		return
	}
	s.accountOn(s.eng, l, d)
}

func (s *Span) accountOn(eng *sim.Engine, l Layer, d sim.Duration) {
	if s == nil || s.done || l >= NumLayers || d <= 0 {
		return
	}
	if s.tracer.par {
		s.tracer.log(eng, rec{span: s, kind: rAccount, at: eng.Now(), layer: l, d: d})
		return
	}
	s.charged[l] += d
}

// Fault books injected-fault latency d (possibly zero, for drops and
// transient errors) against layer l. Like Account it is bookkeeping only:
// the delay itself reaches the timeline through whatever the fault slowed
// down, so fault attribution never double-enters the layer partition.
func (s *Span) Fault(l Layer, d sim.Duration) {
	if s == nil {
		return
	}
	s.faultOn(s.eng, l, d)
}

func (s *Span) faultOn(eng *sim.Engine, l Layer, d sim.Duration) {
	if s == nil || s.done || l >= NumLayers || d < 0 {
		return
	}
	if s.tracer.par {
		s.tracer.log(eng, rec{span: s, kind: rFault, at: eng.Now(), layer: l, d: d})
		return
	}
	s.faults[l] += d
	s.faultN[l]++
}

// Faults returns per-layer injected-fault latency.
func (s *Span) Faults() [NumLayers]sim.Duration {
	if s == nil {
		return [NumLayers]sim.Duration{}
	}
	return s.faults
}

// FaultCounts returns per-layer injected-fault counts.
func (s *Span) FaultCounts() [NumLayers]uint64 {
	if s == nil {
		return [NumLayers]uint64{}
	}
	return s.faultN
}

// Finish closes the span at the current virtual time and hands it to its
// tracer. Further To/Account calls are no-ops.
func (s *Span) Finish() {
	if s == nil || s.done {
		return
	}
	if s.tracer.par {
		// Finish runs on the span's origin shard (requests complete back
		// at their issuing client); the record applies at the barrier.
		s.tracer.log(s.eng, rec{span: s, kind: rFinish, at: s.eng.Now()})
		return
	}
	now := s.eng.Now()
	s.closeSegment(now)
	s.end = now
	s.done = true
	s.tracer.finish(s)
}

// Active returns the span carried by the engine's current event context, or
// nil when tracing is off or the event is not part of a traced request.
func Active(eng *sim.Engine) *Span {
	s, _ := eng.Context().(*Span)
	return s
}

// To switches the active span (if any) to layer l, reading eng's clock.
func To(eng *sim.Engine, l Layer) {
	Active(eng).toOn(eng, l)
}

// Account books fire-and-forget CPU demand on the active span (if any).
func Account(eng *sim.Engine, l Layer, d sim.Duration) {
	Active(eng).accountOn(eng, l, d)
}

// Fault books injected-fault latency on the active span (if any).
func Fault(eng *sim.Engine, l Layer, d sim.Duration) {
	Active(eng).faultOn(eng, l, d)
}
