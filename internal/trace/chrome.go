package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace_event exporter: renders retained spans as the JSON object
// format understood by chrome://tracing and Perfetto. Each traced
// configuration becomes one "process"; concurrent requests are packed onto
// a minimal set of "threads" (lanes) by greedy interval assignment, so a
// run reads as a swimlane diagram. Timestamps are virtual-clock
// microseconds with nanosecond precision; output is deterministic.

// chromeEvent is one trace_event record.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts,omitempty"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the top-level trace object.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace accumulates spans from one or more tracers (one process per
// Add) for a combined export.
type ChromeTrace struct {
	procs []chromeProc
}

type chromeProc struct {
	label string
	spans []*Span
}

// NewChromeTrace returns an empty trace collection.
func NewChromeTrace() *ChromeTrace {
	return &ChromeTrace{}
}

// Add snapshots a tracer's retained spans as one process. Call after the
// tracer's run completes; the tracer needs SetKeepSpans(true).
func (ct *ChromeTrace) Add(t *Tracer) {
	if ct == nil || t == nil {
		return
	}
	ct.procs = append(ct.procs, chromeProc{label: t.Label(), spans: t.Spans()})
}

// usec converts virtual nanoseconds to trace microseconds.
func usec(ns int64) float64 { return float64(ns) / 1e3 }

// assignLanes packs spans (sorted by start) onto the fewest lanes such
// that no two overlapping spans share one — the visual equivalent of the
// workload's concurrency.
func assignLanes(spans []*Span) []int {
	lanes := []int64{} // end time per lane
	out := make([]int, len(spans))
	for i, s := range spans {
		placed := -1
		for l, end := range lanes {
			if end <= int64(s.Start()) {
				placed = l
				break
			}
		}
		if placed < 0 {
			placed = len(lanes)
			lanes = append(lanes, 0)
		}
		lanes[placed] = int64(s.End())
		out[i] = placed
	}
	return out
}

// WriteTo emits the collected processes as trace_event JSON.
func (ct *ChromeTrace) WriteTo(w io.Writer) (int64, error) {
	f := chromeFile{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for pid, proc := range ct.procs {
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": proc.label},
		})
		lanes := assignLanes(proc.spans)
		for i, s := range proc.spans {
			tid := lanes[i]
			args := map[string]any{"id": s.ID()}
			for l := Layer(0); l < NumLayers; l++ {
				if d := s.Layers()[l]; d > 0 {
					args[l.String()+"_ns"] = int64(d)
				}
			}
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: s.Op(), Ph: "X", Pid: pid, Tid: tid,
				Ts:   usec(int64(s.Start())),
				Dur:  usec(int64(s.Duration())),
				Args: args,
			})
			for _, ph := range s.Phases() {
				if ph.End <= ph.Start {
					continue
				}
				f.TraceEvents = append(f.TraceEvents, chromeEvent{
					Name: ph.Layer.String(), Ph: "X", Pid: pid, Tid: tid,
					Ts:  usec(int64(ph.Start)),
					Dur: usec(int64(ph.End.Sub(ph.Start))),
				})
			}
		}
	}
	// Stable global order: (pid, ts, tid, metadata first).
	sort.SliceStable(f.TraceEvents, func(i, j int) bool {
		a, b := f.TraceEvents[i], f.TraceEvents[j]
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if (a.Ph == "M") != (b.Ph == "M") {
			return a.Ph == "M"
		}
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		return a.Dur > b.Dur // parents before their sub-phases
	})
	enc, err := json.MarshalIndent(f, "", " ")
	if err != nil {
		return 0, fmt.Errorf("trace: encode chrome trace: %w", err)
	}
	n, err := w.Write(enc)
	return int64(n), err
}
