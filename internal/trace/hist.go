package trace

import (
	"math/bits"

	"ncache/internal/sim"
)

// Streaming latency histogram with logarithmic buckets: exact below
// histBase nanoseconds, then histBase sub-buckets per octave, giving a
// guaranteed relative quantile error of at most 1/histBase (< 1.6%) at
// constant memory. Recording and merging are exact integer operations, so
// histograms are deterministic and merge-associative.

const (
	histSubBits = 6
	histBase    = 1 << histSubBits // 64 sub-buckets per octave
	// histBuckets covers the full non-negative int64 range: histBase
	// exact buckets plus histBase per remaining octave.
	histBuckets = histBase + (64-histSubBits)*histBase
)

// Histogram is a fixed-size log-bucketed latency distribution. The zero
// value is NOT usable; construct with NewHistogram.
type Histogram struct {
	counts []uint64
	n      uint64
	sum    int64
	min    int64
	max    int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, histBuckets), min: -1}
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histBase {
		return int(u)
	}
	top := bits.Len64(u) // >= histSubBits+1
	octave := top - histSubBits - 1
	shift := uint(octave)
	return histBase + octave*histBase + int((u>>shift)-histBase)
}

// bucketMid returns the representative (midpoint) value of bucket i.
func bucketMid(i int) int64 {
	if i < histBase {
		return int64(i)
	}
	octave := (i - histBase) / histBase
	sub := (i - histBase) % histBase
	lo := int64(histBase+sub) << uint(octave)
	width := int64(1) << uint(octave)
	return lo + width/2
}

// Record adds one sample.
func (h *Histogram) Record(d sim.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.n++
	h.sum += v
	if h.min < 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.n }

// Mean returns the exact arithmetic mean of recorded samples.
func (h *Histogram) Mean() sim.Duration {
	if h.n == 0 {
		return 0
	}
	return sim.Duration(h.sum / int64(h.n))
}

// Min and Max return the exact extremes.
func (h *Histogram) Min() sim.Duration {
	if h.min < 0 {
		return 0
	}
	return sim.Duration(h.min)
}

// Max returns the largest recorded sample.
func (h *Histogram) Max() sim.Duration { return sim.Duration(h.max) }

// Quantile returns the q-quantile (0 < q <= 1) with relative error bounded
// by the bucket resolution, clamped to the observed [min, max].
func (h *Histogram) Quantile(q float64) sim.Duration {
	if h.n == 0 {
		return 0
	}
	rank := uint64(q * float64(h.n))
	if float64(rank) < q*float64(h.n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := bucketMid(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return sim.Duration(v)
		}
	}
	return sim.Duration(h.max)
}

// Merge folds o into h. Merging is exact: the result equals a histogram of
// the concatenated sample streams.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
	if o.n > 0 {
		if h.min < 0 || (o.min >= 0 && o.min < h.min) {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.n, h.sum, h.min, h.max = 0, 0, -1, 0
}

// Equal reports whether two histograms hold identical distributions.
func (h *Histogram) Equal(o *Histogram) bool {
	if h.n != o.n || h.sum != o.sum || h.min != o.min || h.max != o.max {
		return false
	}
	for i := range h.counts {
		if h.counts[i] != o.counts[i] {
			return false
		}
	}
	return true
}
