package trace

import (
	"math/rand"
	"sort"
	"testing"

	"ncache/internal/sim"
)

// exactQuantile computes the q-quantile by sorting (nearest-rank method,
// the same convention Histogram.Quantile uses).
func exactQuantile(samples []int64, q float64) int64 {
	s := append([]int64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(q * float64(len(s)))
	if float64(rank) < q*float64(len(s)) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// TestQuantileAccuracyBounds checks the log-bucketing error bound: every
// reported quantile is within 1/64 relative error of the exact
// sorted-sample quantile, across several sample distributions.
func TestQuantileAccuracyBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	distributions := map[string]func() int64{
		"uniform":  func() int64 { return rng.Int63n(10_000_000) },
		"exp-tail": func() int64 { return int64(1000 * (1 + rng.ExpFloat64()*5000)) },
		"bimodal": func() int64 {
			if rng.Intn(2) == 0 {
				return 50_000 + rng.Int63n(1000)
			}
			return 5_000_000 + rng.Int63n(100_000)
		},
		"tiny":      func() int64 { return rng.Int63n(64) }, // exact buckets
		"wide-span": func() int64 { return int64(1) << uint(rng.Intn(50)) },
	}
	quantiles := []float64{0.5, 0.9, 0.99, 0.999}
	for name, gen := range distributions {
		h := NewHistogram()
		samples := make([]int64, 20000)
		for i := range samples {
			samples[i] = gen()
			h.Record(sim.Duration(samples[i]))
		}
		for _, q := range quantiles {
			got := int64(h.Quantile(q))
			want := exactQuantile(samples, q)
			// Relative bound 1/64 plus 1 ns of integer slack.
			bound := want/64 + 1
			if got < want-bound || got > want+bound {
				t.Errorf("%s q=%v: got %d, exact %d (allowed ±%d)", name, q, got, want, bound)
			}
		}
		if h.Count() != uint64(len(samples)) {
			t.Errorf("%s: count = %d, want %d", name, h.Count(), len(samples))
		}
		if got, want := int64(h.Max()), exactQuantile(samples, 1); got != want {
			t.Errorf("%s: max = %d, want %d (exact)", name, got, want)
		}
	}
}

// TestHistogramMergeEquivalence checks merge correctness: merging two
// histograms is identical — bucket for bucket — to a histogram of the
// concatenated sample streams.
func TestHistogramMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		a, b, all := NewHistogram(), NewHistogram(), NewHistogram()
		na, nb := rng.Intn(3000), rng.Intn(3000)
		for i := 0; i < na; i++ {
			v := sim.Duration(rng.Int63n(1 << uint(10+rng.Intn(30))))
			a.Record(v)
			all.Record(v)
		}
		for i := 0; i < nb; i++ {
			v := sim.Duration(rng.Int63n(1 << uint(10+rng.Intn(30))))
			b.Record(v)
			all.Record(v)
		}
		a.Merge(b)
		if !a.Equal(all) {
			t.Fatalf("trial %d: merge(a,b) != hist(a++b) (na=%d nb=%d)", trial, na, nb)
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			if a.Quantile(q) != all.Quantile(q) {
				t.Fatalf("trial %d: quantile %v differs after merge", trial, q)
			}
		}
	}
	// Merging into an empty histogram preserves min/max exactly.
	e, x := NewHistogram(), NewHistogram()
	x.Record(100)
	x.Record(5000)
	e.Merge(x)
	if e.Min() != 100 || e.Max() != 5000 || e.Count() != 2 {
		t.Fatalf("empty-merge: min=%v max=%v n=%d", e.Min(), e.Max(), e.Count())
	}
}

// TestBucketIndexMonotone checks bucketing is monotone and within-bound
// over octave boundaries, where off-by-ones would hide.
func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 63, 64, 65, 127, 128, 129, 4095, 4096, 1 << 20, 1<<40 + 12345} {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, prev)
		}
		if i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		mid := bucketMid(i)
		bound := v/histBase + 1
		if mid < v-bound || mid > v+bound {
			t.Fatalf("bucketMid(%d)=%d too far from %d", i, mid, v)
		}
		prev = i
	}
	if h := NewHistogram(); h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}
