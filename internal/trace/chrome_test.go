package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"ncache/internal/sim"
)

// TestChromeTraceValidJSON builds a small two-request trace and validates
// the exported trace_event JSON structurally.
func TestChromeTraceValidJSON(t *testing.T) {
	eng := sim.NewEngine()
	tr := NewTracer(eng, "NFS-NCache/32KB")
	tr.SetKeepSpans(true)

	for i := 0; i < 2; i++ {
		sp := tr.Begin("read")
		eng.Schedule(100, func() {
			Active(eng).To(LNet)
			eng.Schedule(200, func() { Active(eng).Finish() })
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		_ = sp
	}

	ct := NewChromeTrace()
	ct.Add(tr)
	var buf bytes.Buffer
	if _, err := ct.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if f.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	// 1 metadata + per span: 1 complete event + 2 phases.
	var meta, complete int
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Args["name"] != "NFS-NCache/32KB" {
				t.Fatalf("process name = %v", ev.Args["name"])
			}
		case "X":
			complete++
			if ev.Dur < 0 || ev.Ts < 0 {
				t.Fatalf("negative ts/dur: %+v", ev)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 1 {
		t.Fatalf("metadata events = %d, want 1", meta)
	}
	if complete != 2*3 {
		t.Fatalf("complete events = %d, want 6", complete)
	}

	// Export is deterministic.
	var buf2 bytes.Buffer
	if _, err := ct.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("export not deterministic")
	}
}

// TestAssignLanes checks overlapping spans get distinct lanes and
// non-overlapping spans reuse them.
func TestAssignLanes(t *testing.T) {
	mk := func(start, end sim.Time) *Span {
		return &Span{start: start, end: end, done: true}
	}
	spans := []*Span{mk(0, 100), mk(50, 150), mk(120, 200), mk(160, 300)}
	lanes := assignLanes(spans)
	want := []int{0, 1, 0, 1}
	for i := range want {
		if lanes[i] != want[i] {
			t.Fatalf("lanes = %v, want %v", lanes, want)
		}
	}
}
