package trace

import (
	"sort"

	"ncache/internal/sim"
)

// Tracer creates and collects spans for one simulated configuration. A nil
// *Tracer is the disabled state: Begin returns nil spans and every other
// method is a no-op, so callers never branch on "tracing on?".
type Tracer struct {
	eng    *sim.Engine
	label  string
	nextID uint64
	keep   bool
	frozen bool

	spans []*Span
	agg   map[string]*opAgg
	// attrErrs counts spans whose layer attribution failed to sum to the
	// end-to-end duration — zero by construction; exported as a self-check.
	attrErrs uint64
}

// opAgg accumulates window statistics for one operation type.
type opAgg struct {
	hist    *Histogram
	total   sim.Duration
	layers  [NumLayers]sim.Duration
	charged [NumLayers]sim.Duration
	faults  [NumLayers]sim.Duration
	faultN  [NumLayers]uint64
	wait    [NumResClasses]sim.Duration
	service [NumResClasses]sim.Duration
}

// NewTracer attaches a tracer to an engine and installs the resource
// accounting hook. label names the configuration under test (it prefixes
// exported trace processes), e.g. "NFS-NCache/32KB".
func NewTracer(eng *sim.Engine, label string) *Tracer {
	t := &Tracer{eng: eng, label: label, agg: make(map[string]*opAgg)}
	eng.SetUsageObserver(t.observe)
	return t
}

// Label returns the configuration label.
func (t *Tracer) Label() string {
	if t == nil {
		return ""
	}
	return t.label
}

// SetKeepSpans retains finished spans (with their phase timelines) for
// export. Off by default: histograms alone are constant-memory.
func (t *Tracer) SetKeepSpans(keep bool) {
	if t != nil {
		t.keep = keep
	}
}

// Begin starts a span for one request and makes it the engine's current
// request context, so every event scheduled by the issuing code inherits
// it. Returns nil (a valid no-op span) on a nil tracer.
func (t *Tracer) Begin(op string) *Span {
	if t == nil {
		return nil
	}
	t.nextID++
	s := &Span{
		id:         t.nextID,
		op:         op,
		start:      t.eng.Now(),
		tracer:     t,
		cur:        LClient,
		lastSwitch: t.eng.Now(),
	}
	t.eng.SetContext(s)
	return s
}

// observe is the engine usage hook: queueing delay and service demand land
// on the admitting span, classified by resource kind.
func (t *Tracer) observe(r *sim.Resource, ctx any, wait, service sim.Duration) {
	s, ok := ctx.(*Span)
	if !ok || s == nil || s.done {
		return
	}
	c := classifyResource(r.Name())
	s.wait[c] += wait
	s.service[c] += service
}

// finish folds a completed span into the window aggregates.
func (t *Tracer) finish(s *Span) {
	if t.frozen {
		return
	}
	var sum sim.Duration
	for _, d := range s.layers {
		sum += d
	}
	if diff := sum - s.Duration(); diff > 1 || diff < -1 {
		t.attrErrs++
	}
	a := t.agg[s.op]
	if a == nil {
		a = &opAgg{hist: NewHistogram()}
		t.agg[s.op] = a
	}
	a.hist.Record(s.Duration())
	a.total += s.Duration()
	for i := range s.layers {
		a.layers[i] += s.layers[i]
		a.charged[i] += s.charged[i]
		a.faults[i] += s.faults[i]
		a.faultN[i] += s.faultN[i]
	}
	for i := range s.wait {
		a.wait[i] += s.wait[i]
		a.service[i] += s.service[i]
	}
	if t.keep {
		t.spans = append(t.spans, s)
	}
}

// ResetStats discards everything recorded so far (spans in flight continue
// and will record into the fresh window). Call at the start of the
// steady-state measurement window.
func (t *Tracer) ResetStats() {
	if t == nil {
		return
	}
	t.spans = nil
	t.agg = make(map[string]*opAgg)
	t.attrErrs = 0
	t.frozen = false
}

// Freeze stops recording: spans finishing later (the post-window drain) are
// dropped, bounding statistics to the measurement window.
func (t *Tracer) Freeze() {
	if t == nil {
		return
	}
	t.frozen = true
}

// AttributionErrors reports spans whose per-layer sums missed the
// end-to-end duration by more than 1 ns. Always zero; exported so tests and
// tools can assert the invariant.
func (t *Tracer) AttributionErrors() uint64 {
	if t == nil {
		return 0
	}
	return t.attrErrs
}

// Spans returns retained spans sorted by (start, id). Empty unless
// SetKeepSpans(true).
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	out := make([]*Span, len(t.spans))
	copy(out, t.spans)
	sort.Slice(out, func(i, j int) bool {
		if out[i].start != out[j].start {
			return out[i].start < out[j].start
		}
		return out[i].id < out[j].id
	})
	return out
}

// LayerStat is one layer's share of an operation's total latency.
type LayerStat struct {
	Layer Layer
	// Total is timeline time attributed to the layer across all requests.
	Total sim.Duration
	// Charged is fire-and-forget CPU demand booked to the layer.
	Charged sim.Duration
	// Fault is injected-fault latency booked to the layer (delays added
	// by the fault subsystem plus recovery waits), and FaultCount the
	// number of injections, including zero-delay drops and errors.
	Fault sim.Duration
	// FaultCount is the number of fault injections booked to the layer.
	FaultCount uint64
}

// ResStat is one resource class's aggregate queueing behaviour.
type ResStat struct {
	Class         ResClass
	Wait, Service sim.Duration
}

// OpSummary is the measurement-window latency summary for one operation.
type OpSummary struct {
	Op     string
	Count  uint64
	Mean   sim.Duration
	P50    sim.Duration
	P90    sim.Duration
	P99    sim.Duration
	P999   sim.Duration
	Max    sim.Duration
	Total  sim.Duration
	Layers []LayerStat
	Res    []ResStat
	Hist   *Histogram
}

// Summary is a tracer's full latency report.
type Summary struct {
	Label string
	Ops   []OpSummary
	// AttrErrors mirrors Tracer.AttributionErrors at summary time.
	AttrErrors uint64
}

// Summary snapshots the current window. Returns nil on a nil tracer.
func (t *Tracer) Summary() *Summary {
	if t == nil {
		return nil
	}
	ops := make([]string, 0, len(t.agg))
	for op := range t.agg {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	s := &Summary{Label: t.label, AttrErrors: t.attrErrs}
	for _, op := range ops {
		a := t.agg[op]
		o := OpSummary{
			Op:    op,
			Count: a.hist.Count(),
			Mean:  a.hist.Mean(),
			P50:   a.hist.Quantile(0.50),
			P90:   a.hist.Quantile(0.90),
			P99:   a.hist.Quantile(0.99),
			P999:  a.hist.Quantile(0.999),
			Max:   a.hist.Max(),
			Total: a.total,
			Hist:  a.hist,
		}
		for l := Layer(0); l < NumLayers; l++ {
			o.Layers = append(o.Layers, LayerStat{
				Layer: l, Total: a.layers[l], Charged: a.charged[l],
				Fault: a.faults[l], FaultCount: a.faultN[l],
			})
		}
		for c := ResClass(0); c < NumResClasses; c++ {
			o.Res = append(o.Res, ResStat{c, a.wait[c], a.service[c]})
		}
		s.Ops = append(s.Ops, o)
	}
	return s
}
