package trace

import (
	"sort"

	"ncache/internal/sim"
)

// Tracer creates and collects spans for one simulated configuration. A nil
// *Tracer is the disabled state: Begin returns nil spans and every other
// method is a no-op, so callers never branch on "tracing on?".
type Tracer struct {
	eng    *sim.Engine
	label  string
	nextID uint64
	keep   bool
	frozen bool

	// par marks a tracer attached to a sharded engine. Span mutations are
	// then deferred into per-shard logs (shards, indexed by ShardID) and
	// applied single-threaded at every epoch barrier in canonical
	// (time, shard, sequence) order, so the aggregates — and therefore the
	// histograms and percentiles — are identical for any worker count.
	par     bool
	shards  []*shardLog
	scratch []rec

	spans []*Span
	agg   map[string]*opAgg
	// attrErrs counts spans whose layer attribution failed to sum to the
	// end-to-end duration — zero by construction; exported as a self-check.
	attrErrs uint64
}

// shardLog is one shard's deferred span-mutation buffer. Only the owning
// shard appends (during its epoch slice); only the barrier drains.
type shardLog struct {
	recs   []rec
	nextID uint64
}

// rec is one deferred span mutation.
type rec struct {
	span  *Span
	at    sim.Time
	d, d2 sim.Duration
	seq   uint32
	shard int16
	kind  uint8
	layer Layer
	class ResClass
}

// Deferred mutation kinds.
const (
	rTo uint8 = iota
	rAccount
	rFault
	rUsage
	rFinish
)

// opAgg accumulates window statistics for one operation type.
type opAgg struct {
	hist    *Histogram
	total   sim.Duration
	layers  [NumLayers]sim.Duration
	charged [NumLayers]sim.Duration
	faults  [NumLayers]sim.Duration
	faultN  [NumLayers]uint64
	wait    [NumResClasses]sim.Duration
	service [NumResClasses]sim.Duration
}

// NewTracer attaches a tracer to an engine and installs the resource
// accounting hook. label names the configuration under test (it prefixes
// exported trace processes), e.g. "NFS-NCache/32KB".
func NewTracer(eng *sim.Engine, label string) *Tracer {
	t := &Tracer{eng: eng, label: label, agg: make(map[string]*opAgg)}
	if eng.Sharded() {
		t.par = true
		t.shards = make([]*shardLog, eng.ShardCount())
		for i := range t.shards {
			t.shards[i] = &shardLog{}
		}
		eng.OnBarrier(t.applyLogs)
	}
	eng.SetUsageObserver(t.observe)
	return t
}

// log appends a deferred mutation to the acting shard's buffer.
func (t *Tracer) log(eng *sim.Engine, r rec) {
	sl := t.shards[eng.ShardID()]
	r.shard = int16(eng.ShardID())
	r.seq = uint32(len(sl.recs))
	sl.recs = append(sl.recs, r)
}

// applyLogs runs at each epoch barrier (and at run end): it merges every
// shard's deferred mutations into (at, shard, seq) order and applies them.
// Per-shard buffers are already time-ordered, so the sort is near-linear;
// the canonical order makes span state a pure function of the simulated
// schedule, independent of worker interleaving.
func (t *Tracer) applyLogs() {
	t.scratch = t.scratch[:0]
	contributed := 0
	for _, sl := range t.shards {
		if len(sl.recs) > 0 {
			contributed++
		}
		t.scratch = append(t.scratch, sl.recs...)
		for i := range sl.recs {
			sl.recs[i].span = nil
		}
		sl.recs = sl.recs[:0]
	}
	if len(t.scratch) == 0 {
		return
	}
	if contributed == 1 {
		// Wide epochs often see a single shard burn a long local chain
		// between barriers; its buffer is already in (at, seq) order, so
		// the merge sort would be a no-op pass over a large slice.
		for i := range t.scratch {
			t.apply(&t.scratch[i])
			t.scratch[i].span = nil
		}
		return
	}
	sort.Slice(t.scratch, func(i, j int) bool {
		a, b := &t.scratch[i], &t.scratch[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.shard != b.shard {
			return a.shard < b.shard
		}
		return a.seq < b.seq
	})
	for i := range t.scratch {
		t.apply(&t.scratch[i])
		t.scratch[i].span = nil
	}
}

// apply replays one deferred mutation against its span. Mutations landing
// after the span's Finish (in canonical order) are dropped, mirroring the
// done-span no-ops of the direct path.
func (t *Tracer) apply(r *rec) {
	s := r.span
	if s == nil || s.done {
		return
	}
	switch r.kind {
	case rTo:
		s.closeSegment(r.at)
		s.cur = r.layer
	case rAccount:
		s.charged[r.layer] += r.d
	case rFault:
		s.faults[r.layer] += r.d
		s.faultN[r.layer]++
	case rUsage:
		s.wait[r.class] += r.d
		s.service[r.class] += r.d2
	case rFinish:
		s.closeSegment(r.at)
		s.end = r.at
		s.done = true
		t.finish(s)
	}
}

// Label returns the configuration label.
func (t *Tracer) Label() string {
	if t == nil {
		return ""
	}
	return t.label
}

// SetKeepSpans retains finished spans (with their phase timelines) for
// export. Off by default: histograms alone are constant-memory.
func (t *Tracer) SetKeepSpans(keep bool) {
	if t != nil {
		t.keep = keep
	}
}

// Begin starts a span for one request and makes it the engine's current
// request context, so every event scheduled by the issuing code inherits
// it. Returns nil (a valid no-op span) on a nil tracer.
func (t *Tracer) Begin(op string) *Span {
	if t == nil {
		return nil
	}
	return t.BeginOn(t.eng, op)
}

// BeginOn starts a span on a specific shard's engine — the one whose event
// is issuing the request. Shard-tagged span IDs (shard index in the high
// bits) keep IDs unique and deterministic without cross-shard coordination;
// on a non-sharded engine IDs are the plain sequence, as before.
func (t *Tracer) BeginOn(eng *sim.Engine, op string) *Span {
	if t == nil {
		return nil
	}
	var id uint64
	if t.par {
		sl := t.shards[eng.ShardID()]
		sl.nextID++
		id = uint64(eng.ShardID()+1)<<48 | sl.nextID
	} else {
		t.nextID++
		id = t.nextID
	}
	s := &Span{
		id:         id,
		op:         op,
		start:      eng.Now(),
		tracer:     t,
		eng:        eng,
		cur:        LClient,
		lastSwitch: eng.Now(),
	}
	eng.SetContext(s)
	return s
}

// observe is the engine usage hook: queueing delay and service demand land
// on the admitting span, classified by resource kind.
func (t *Tracer) observe(r *sim.Resource, ctx any, wait, service sim.Duration) {
	s, ok := ctx.(*Span)
	if !ok || s == nil || s.done {
		return
	}
	c := classifyResource(r.Name())
	if t.par {
		eng := r.Engine()
		t.log(eng, rec{span: s, kind: rUsage, at: eng.Now(), class: c, d: wait, d2: service})
		return
	}
	s.wait[c] += wait
	s.service[c] += service
}

// finish folds a completed span into the window aggregates.
func (t *Tracer) finish(s *Span) {
	if t.frozen {
		return
	}
	var sum sim.Duration
	for _, d := range s.layers {
		sum += d
	}
	if diff := sum - s.Duration(); diff > 1 || diff < -1 {
		t.attrErrs++
	}
	a := t.agg[s.op]
	if a == nil {
		a = &opAgg{hist: NewHistogram()}
		t.agg[s.op] = a
	}
	a.hist.Record(s.Duration())
	a.total += s.Duration()
	for i := range s.layers {
		a.layers[i] += s.layers[i]
		a.charged[i] += s.charged[i]
		a.faults[i] += s.faults[i]
		a.faultN[i] += s.faultN[i]
	}
	for i := range s.wait {
		a.wait[i] += s.wait[i]
		a.service[i] += s.service[i]
	}
	if t.keep {
		t.spans = append(t.spans, s)
	}
}

// ResetStats discards everything recorded so far (spans in flight continue
// and will record into the fresh window). Call at the start of the
// steady-state measurement window.
func (t *Tracer) ResetStats() {
	if t == nil {
		return
	}
	t.spans = nil
	t.agg = make(map[string]*opAgg)
	t.attrErrs = 0
	t.frozen = false
	for _, sl := range t.shards {
		sl.recs = sl.recs[:0]
	}
}

// Freeze stops recording: spans finishing later (the post-window drain) are
// dropped, bounding statistics to the measurement window.
func (t *Tracer) Freeze() {
	if t == nil {
		return
	}
	t.frozen = true
}

// AttributionErrors reports spans whose per-layer sums missed the
// end-to-end duration by more than 1 ns. Always zero; exported so tests and
// tools can assert the invariant.
func (t *Tracer) AttributionErrors() uint64 {
	if t == nil {
		return 0
	}
	return t.attrErrs
}

// Spans returns retained spans sorted by (start, id). Empty unless
// SetKeepSpans(true).
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	out := make([]*Span, len(t.spans))
	copy(out, t.spans)
	sort.Slice(out, func(i, j int) bool {
		if out[i].start != out[j].start {
			return out[i].start < out[j].start
		}
		return out[i].id < out[j].id
	})
	return out
}

// LayerStat is one layer's share of an operation's total latency.
type LayerStat struct {
	Layer Layer
	// Total is timeline time attributed to the layer across all requests.
	Total sim.Duration
	// Charged is fire-and-forget CPU demand booked to the layer.
	Charged sim.Duration
	// Fault is injected-fault latency booked to the layer (delays added
	// by the fault subsystem plus recovery waits), and FaultCount the
	// number of injections, including zero-delay drops and errors.
	Fault sim.Duration
	// FaultCount is the number of fault injections booked to the layer.
	FaultCount uint64
}

// ResStat is one resource class's aggregate queueing behaviour.
type ResStat struct {
	Class         ResClass
	Wait, Service sim.Duration
}

// OpSummary is the measurement-window latency summary for one operation.
type OpSummary struct {
	Op     string
	Count  uint64
	Mean   sim.Duration
	P50    sim.Duration
	P90    sim.Duration
	P99    sim.Duration
	P999   sim.Duration
	Max    sim.Duration
	Total  sim.Duration
	Layers []LayerStat
	Res    []ResStat
	Hist   *Histogram
}

// Summary is a tracer's full latency report.
type Summary struct {
	Label string
	Ops   []OpSummary
	// AttrErrors mirrors Tracer.AttributionErrors at summary time.
	AttrErrors uint64
}

// Summary snapshots the current window. Returns nil on a nil tracer.
func (t *Tracer) Summary() *Summary {
	if t == nil {
		return nil
	}
	ops := make([]string, 0, len(t.agg))
	for op := range t.agg { // det: sorted
		ops = append(ops, op)
	}
	sort.Strings(ops)
	s := &Summary{Label: t.label, AttrErrors: t.attrErrs}
	for _, op := range ops {
		a := t.agg[op]
		o := OpSummary{
			Op:    op,
			Count: a.hist.Count(),
			Mean:  a.hist.Mean(),
			P50:   a.hist.Quantile(0.50),
			P90:   a.hist.Quantile(0.90),
			P99:   a.hist.Quantile(0.99),
			P999:  a.hist.Quantile(0.999),
			Max:   a.hist.Max(),
			Total: a.total,
			Hist:  a.hist,
		}
		for l := Layer(0); l < NumLayers; l++ {
			o.Layers = append(o.Layers, LayerStat{
				Layer: l, Total: a.layers[l], Charged: a.charged[l],
				Fault: a.faults[l], FaultCount: a.faultN[l],
			})
		}
		for c := ResClass(0); c < NumResClasses; c++ {
			o.Res = append(o.Res, ResStat{c, a.wait[c], a.service[c]})
		}
		s.Ops = append(s.Ops, o)
	}
	return s
}
