package trace

import (
	"testing"

	"ncache/internal/sim"
)

// TestSpanTimelinePartition drives a span through layer switches separated
// by virtual time and checks the invariant the whole subsystem rests on:
// per-layer durations partition the end-to-end latency exactly.
func TestSpanTimelinePartition(t *testing.T) {
	eng := sim.NewEngine()
	tr := NewTracer(eng, "test")
	tr.SetKeepSpans(true)

	sp := tr.Begin("read")
	eng.Schedule(100, func() {
		Active(eng).To(LRPC)
		eng.Schedule(250, func() {
			Active(eng).To(LNet)
			eng.Schedule(50, func() {
				Active(eng).To(LServer)
				eng.Schedule(600, func() {
					Active(eng).Finish()
				})
			})
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if sp.Duration() != 1000 {
		t.Fatalf("duration = %v, want 1000", sp.Duration())
	}
	l := sp.Layers()
	want := map[Layer]sim.Duration{LClient: 100, LRPC: 250, LNet: 50, LServer: 600}
	var sum sim.Duration
	for layer := Layer(0); layer < NumLayers; layer++ {
		sum += l[layer]
		if l[layer] != want[layer] {
			t.Errorf("layer %v = %v, want %v", layer, l[layer], want[layer])
		}
	}
	if sum != sp.Duration() {
		t.Fatalf("layer sum %v != duration %v", sum, sp.Duration())
	}
	if tr.AttributionErrors() != 0 {
		t.Fatalf("attribution errors: %d", tr.AttributionErrors())
	}
	// Phases partition the span contiguously.
	phases := sp.Phases()
	if len(phases) != 4 {
		t.Fatalf("phases = %d, want 4", len(phases))
	}
	at := sp.Start()
	for _, ph := range phases {
		if ph.Start != at {
			t.Fatalf("phase gap: starts at %v, expected %v", ph.Start, at)
		}
		at = ph.End
	}
	if at != sp.End() {
		t.Fatalf("phases end at %v, span ends at %v", at, sp.End())
	}
}

// TestNilSafety exercises the disabled-tracing fast path: nil tracers and
// nil spans must be inert through the full API surface.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin("read")
	if sp != nil {
		t.Fatal("nil tracer must produce nil span")
	}
	sp.To(LDisk)
	sp.Account(LNCache, 100)
	sp.Finish()
	tr.ResetStats()
	tr.Freeze()
	if tr.Summary() != nil || tr.Spans() != nil || tr.AttributionErrors() != 0 {
		t.Fatal("nil tracer accessors must return zero values")
	}
	eng := sim.NewEngine()
	if Active(eng) != nil {
		t.Fatal("Active on context-free engine must be nil")
	}
	To(eng, LNet) // must not panic
	Account(eng, LNet, 5)
}

// TestFinishedSpanInert checks that late events carrying a finished span's
// context cannot corrupt its record.
func TestFinishedSpanInert(t *testing.T) {
	eng := sim.NewEngine()
	tr := NewTracer(eng, "test")
	sp := tr.Begin("read")
	eng.Schedule(10, func() { Active(eng).Finish() })
	eng.Schedule(20, func() { Active(eng).To(LDisk) }) // stale context
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if sp.Duration() != 10 {
		t.Fatalf("duration = %v, want 10", sp.Duration())
	}
	if sp.Layers()[LDisk] != 0 {
		t.Fatal("finished span accrued time")
	}
}

// TestResetAndFreezeWindow checks window semantics: ResetStats discards the
// warm-up, Freeze drops the drain.
func TestResetAndFreezeWindow(t *testing.T) {
	eng := sim.NewEngine()
	tr := NewTracer(eng, "test")
	finishAt := func(d sim.Duration) {
		sp := tr.Begin("op")
		eng.Schedule(d, func() { _ = sp; Active(eng).Finish() })
	}
	finishAt(5) // warm-up span
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	tr.ResetStats()
	finishAt(7) // window span
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	tr.Freeze()
	finishAt(9) // drain span
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	sum := tr.Summary()
	if len(sum.Ops) != 1 || sum.Ops[0].Count != 1 {
		t.Fatalf("summary = %+v, want exactly the window span", sum)
	}
	if sum.Ops[0].Mean != 7 {
		t.Fatalf("mean = %v, want 7", sum.Ops[0].Mean)
	}
}

// TestUsageAttribution checks resource wait/service lands on the span by
// class.
func TestUsageAttribution(t *testing.T) {
	eng := sim.NewEngine()
	tr := NewTracer(eng, "test")
	cpu := sim.NewResource(eng, "app.cpu")
	disk := sim.NewResource(eng, "disk0")

	sp := tr.Begin("read")
	cpu.Use(100, func() {
		disk.Use(300, func() { Active(eng).Finish() })
	})
	// A competing un-traced job queues the disk? Keep it simple: single job.
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if sp.service[ResCPU] != 100 || sp.service[ResDisk] != 300 {
		t.Fatalf("service cpu=%v disk=%v", sp.service[ResCPU], sp.service[ResDisk])
	}
	if sp.wait[ResCPU] != 0 || sp.wait[ResDisk] != 0 {
		t.Fatalf("unexpected waits: %+v %+v", sp.wait[ResCPU], sp.wait[ResDisk])
	}
	sum := tr.Summary()
	if sum.Ops[0].Res[ResCPU].Service != 100 {
		t.Fatalf("summary res stats wrong: %+v", sum.Ops[0].Res)
	}
}

// TestAccountCharges checks fire-and-forget cost bookkeeping.
func TestAccountCharges(t *testing.T) {
	eng := sim.NewEngine()
	tr := NewTracer(eng, "test")
	sp := tr.Begin("write")
	eng.Schedule(10, func() {
		Account(eng, LNCache, 2500)
		Account(eng, LNCache, 2500)
		Active(eng).Finish()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if sp.charged[LNCache] != 5000 {
		t.Fatalf("charged = %v, want 5000", sp.charged[LNCache])
	}
	sum := tr.Summary()
	if sum.Ops[0].Layers[LNCache].Charged != 5000 {
		t.Fatalf("summary charged = %v", sum.Ops[0].Layers[LNCache].Charged)
	}
}
