// Package nfs implements the NFS protocol (an NFSv2-shaped dialect with
// 64-bit offsets) over ONC RPC/UDP: wire codecs, a server that frames
// requests and replies, and a client for workload generators.
//
// The server is payload-agnostic by design: read replies are composed as a
// small XDR head plus a payload chain appended without copying, and write
// request payloads are handed to the backend still in their original wire
// buffers. Whether those chains carry real bytes or NCache logical keys is
// the backend's business — mirroring the paper's unmodified NFS daemon
// (Table 1: "NFS/Web server daemon: None").
package nfs

import (
	"errors"

	"ncache/internal/lkey"
)

// Program identity.
const (
	Prog = 100003
	Vers = 2
	Port = 2049
)

// Procedure numbers (NFSv2 numbering).
const (
	ProcNull    = 0
	ProcGetattr = 1
	ProcSetattr = 2
	ProcLookup  = 4
	ProcRead    = 6
	ProcWrite   = 8
	ProcCreate  = 9
	ProcRemove  = 10
	ProcMkdir   = 14
	ProcRmdir   = 15
	ProcReaddir = 16
)

// Status codes.
const (
	OK          uint32 = 0
	ErrPerm     uint32 = 1
	ErrNoEnt    uint32 = 2
	ErrIO       uint32 = 5
	ErrExist    uint32 = 17
	ErrNotDir   uint32 = 20
	ErrIsDir    uint32 = 21
	ErrFBig     uint32 = 27
	ErrNoSpc    uint32 = 28
	ErrNameLong uint32 = 63
	ErrNotEmpty uint32 = 66
)

// FH is the fixed-size file handle (the first 4 bytes carry the inode
// number; the rest is reserved).
type FH = lkey.FH

// FHLen is the encoded file handle size.
const FHLen = 8

// File types in attributes.
const (
	TypeFile uint32 = 1
	TypeDir  uint32 = 2
)

// Attr is the attribute subset the protocol carries.
type Attr struct {
	Type  uint32
	Links uint32
	Size  uint64
}

// AttrLen is the encoded attribute size.
const AttrLen = 16

// MaxReadSize bounds a single READ transfer (the paper sweeps 4–32 KB; the
// reply plus RPC/UDP headers must stay within one 64 KB UDP datagram).
const MaxReadSize = 32 * 1024

// ErrShortMessage reports a truncated request or reply.
var ErrShortMessage = errors.New("nfs: short message")

// StatusError converts an NFS status to a Go error (nil for OK).
func StatusError(st uint32) error {
	if st == OK {
		return nil
	}
	return &OpError{Status: st}
}

// OpError is a non-OK NFS reply status.
type OpError struct {
	Status uint32
}

func (e *OpError) Error() string {
	switch e.Status {
	case ErrNoEnt:
		return "nfs: no such file or directory"
	case ErrExist:
		return "nfs: file exists"
	case ErrNotDir:
		return "nfs: not a directory"
	case ErrIsDir:
		return "nfs: is a directory"
	case ErrNotEmpty:
		return "nfs: directory not empty"
	case ErrNoSpc:
		return "nfs: no space"
	case ErrIO:
		return "nfs: I/O error"
	default:
		return "nfs: error"
	}
}
