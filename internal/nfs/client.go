package nfs

import (
	"ncache/internal/netbuf"
	"ncache/internal/proto"
	"ncache/internal/proto/eth"
	"ncache/internal/proto/udp"
	"ncache/internal/sim"
	"ncache/internal/simnet"
	"ncache/internal/sunrpc"
	"ncache/internal/xdr"
)

// RootFH returns the well-known root directory handle.
func RootFH() FH {
	var fh FH
	fh[0], fh[1], fh[2], fh[3] = 0, 0, 0, 1
	return fh
}

// rpcCaller abstracts the datagram and stream RPC clients.
type rpcCaller interface {
	Call(dst eth.Addr, dstPort uint16, prog, vers, proc uint32, args []byte, payload *netbuf.Chain, done func(sunrpc.Reply, error)) error
	Pending() int
	Node() *simnet.Node
}

// Client issues NFS calls to one server.
type Client struct {
	rpc    rpcCaller
	server eth.Addr
}

// NewClient binds an NFS client on the UDP transport, talking to server.
func NewClient(t *udp.Transport, local eth.Addr, localPort uint16, server eth.Addr) (*Client, error) {
	rpc, err := sunrpc.NewClient(t, local, localPort)
	if err != nil {
		return nil, err
	}
	return &Client{rpc: rpc, server: server}, nil
}

// SetRetransmit enables RPC retransmission when the underlying transport
// supports it (the datagram client does; streams rely on TCP recovery).
func (c *Client) SetRetransmit(rto sim.Duration, maxTries int) {
	if r, ok := c.rpc.(interface {
		SetRetransmit(sim.Duration, int)
	}); ok {
		r.SetRetransmit(rto, maxTries)
	}
}

// Node returns the client host's node — workloads draw zero-copy write
// payloads from its pools.
func (c *Client) Node() *simnet.Node { return c.rpc.Node() }

// DatagramRPC returns the underlying datagram RPC client, or nil for stream
// transports. Fault tests inspect its retransmission counters.
func (c *Client) DatagramRPC() *sunrpc.Client {
	cl, _ := c.rpc.(*sunrpc.Client)
	return cl
}

// DialClientStream connects an NFS client over a stream transport
// (record-marked RPC) and hands it to done once the connection is
// established. Pass tcp.Transport.DialConn for the paper's TCP comparison.
func DialClientStream(node *simnet.Node, dial proto.Dialer, local, server eth.Addr, done func(*Client, error)) {
	sunrpc.DialStream(node, dial, local, server, Port, func(sc *sunrpc.StreamClient, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		done(&Client{rpc: sc, server: server}, nil)
	})
}

// call issues one NFS RPC.
func (c *Client) call(proc uint32, args []byte, payload *netbuf.Chain, done func(*netbuf.Chain, error)) {
	err := c.rpc.Call(c.server, Port, Prog, Vers, proc, args, payload, func(r sunrpc.Reply, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		if r.Accept != sunrpc.AcceptSuccess {
			if r.Body != nil {
				r.Body.Release()
			}
			done(nil, &OpError{Status: ErrIO})
			return
		}
		done(r.Body, nil)
	})
	if err != nil {
		done(nil, err)
	}
}

// statusOf pulls the leading status word from a reply body.
func statusOf(body *netbuf.Chain) (uint32, bool) {
	raw, err := body.PullHeader(4)
	if err != nil {
		return ErrIO, false
	}
	return be32(raw), true
}

// attrOf pulls an attribute block.
func attrOf(body *netbuf.Chain) (Attr, bool) {
	raw, err := body.PullHeader(AttrLen)
	if err != nil {
		return Attr{}, false
	}
	return Attr{Type: be32(raw), Links: be32(raw[4:]), Size: be64(raw[8:])}, true
}

// finishStatus releases the body and maps a status to an error.
func finishStatus(body *netbuf.Chain, st uint32, ok bool, done func(error)) {
	body.Release()
	if !ok {
		done(&OpError{Status: ErrIO})
		return
	}
	done(StatusError(st))
}

// Getattr fetches attributes.
func (c *Client) Getattr(fh FH, done func(Attr, error)) {
	c.call(ProcGetattr, fh[:], nil, func(body *netbuf.Chain, err error) {
		if err != nil {
			done(Attr{}, err)
			return
		}
		st, ok := statusOf(body)
		if !ok || st != OK {
			body.Release()
			done(Attr{}, orIO(st, ok))
			return
		}
		a, ok := attrOf(body)
		body.Release()
		if !ok {
			done(Attr{}, &OpError{Status: ErrIO})
			return
		}
		done(a, nil)
	})
}

// Setattr sets the file size (truncate).
func (c *Client) Setattr(fh FH, size uint64, done func(Attr, error)) {
	e := xdr.NewEncoder(FHLen + 8)
	e.FixedOpaque(fh[:])
	e.Uint64(size)
	c.call(ProcSetattr, e.Bytes(), nil, func(body *netbuf.Chain, err error) {
		if err != nil {
			done(Attr{}, err)
			return
		}
		st, ok := statusOf(body)
		if !ok || st != OK {
			body.Release()
			done(Attr{}, orIO(st, ok))
			return
		}
		a, ok := attrOf(body)
		body.Release()
		if !ok {
			done(Attr{}, &OpError{Status: ErrIO})
			return
		}
		done(a, nil)
	})
}

// Lookup resolves a name.
func (c *Client) Lookup(dir FH, name string, done func(FH, Attr, error)) {
	e := xdr.NewEncoder(FHLen + 4 + len(name) + 4)
	e.FixedOpaque(dir[:])
	e.String(name)
	c.call(ProcLookup, e.Bytes(), nil, func(body *netbuf.Chain, err error) {
		var fh FH
		if err != nil {
			done(fh, Attr{}, err)
			return
		}
		st, ok := statusOf(body)
		if !ok || st != OK {
			body.Release()
			done(fh, Attr{}, orIO(st, ok))
			return
		}
		raw, err := body.PullHeader(FHLen)
		if err != nil {
			body.Release()
			done(fh, Attr{}, &OpError{Status: ErrIO})
			return
		}
		copy(fh[:], raw)
		a, ok := attrOf(body)
		body.Release()
		if !ok {
			done(fh, Attr{}, &OpError{Status: ErrIO})
			return
		}
		done(fh, a, nil)
	})
}

// Read fetches [off, off+n). The returned chain holds the data portion of
// the reply in its original wire buffers; the caller owns it.
func (c *Client) Read(fh FH, off uint64, n int, done func(*netbuf.Chain, Attr, error)) {
	e := xdr.NewEncoder(FHLen + 12)
	e.FixedOpaque(fh[:])
	e.Uint64(off)
	e.Uint32(uint32(n))
	c.call(ProcRead, e.Bytes(), nil, func(body *netbuf.Chain, err error) {
		if err != nil {
			done(nil, Attr{}, err)
			return
		}
		st, ok := statusOf(body)
		if !ok || st != OK {
			body.Release()
			done(nil, Attr{}, orIO(st, ok))
			return
		}
		a, ok := attrOf(body)
		if !ok {
			body.Release()
			done(nil, Attr{}, &OpError{Status: ErrIO})
			return
		}
		lraw, err := body.PullHeader(4)
		if err != nil {
			body.Release()
			done(nil, Attr{}, &OpError{Status: ErrIO})
			return
		}
		dlen := int(be32(lraw))
		if body.Len() < dlen {
			body.Release()
			done(nil, Attr{}, &OpError{Status: ErrIO})
			return
		}
		data, err := body.PullChain(dlen)
		body.Release()
		if err != nil {
			done(nil, Attr{}, &OpError{Status: ErrIO})
			return
		}
		done(data, a, nil)
	})
}

// Write stores a payload chain at off. The client takes ownership of data.
func (c *Client) Write(fh FH, off uint64, data *netbuf.Chain, done func(int, Attr, error)) {
	n := data.Len()
	e := xdr.NewEncoder(FHLen + 16)
	e.FixedOpaque(fh[:])
	e.Uint64(off)
	e.Uint32(uint32(n))
	e.Uint32(uint32(n)) // XDR opaque length prefix
	c.call(ProcWrite, e.Bytes(), data, func(body *netbuf.Chain, err error) {
		if err != nil {
			done(0, Attr{}, err)
			return
		}
		st, ok := statusOf(body)
		if !ok || st != OK {
			body.Release()
			done(0, Attr{}, orIO(st, ok))
			return
		}
		a, ok := attrOf(body)
		if !ok {
			body.Release()
			done(0, Attr{}, &OpError{Status: ErrIO})
			return
		}
		nraw, err := body.PullHeader(4)
		body.Release()
		if err != nil {
			done(0, Attr{}, &OpError{Status: ErrIO})
			return
		}
		done(int(be32(nraw)), a, nil)
	})
}

// WriteBytes is Write with a plain byte payload (copied into pooled transmit
// buffers).
func (c *Client) WriteBytes(fh FH, off uint64, p []byte, done func(int, Attr, error)) {
	chain, err := c.rpc.Node().TxPool.GetChain(p)
	if err != nil {
		done(0, Attr{}, err)
		return
	}
	c.Write(fh, off, chain, done)
}

// Create makes a file (or directory via Mkdir).
func (c *Client) Create(dir FH, name string, done func(FH, Attr, error)) {
	c.createOrMkdir(ProcCreate, dir, name, done)
}

// Mkdir makes a directory.
func (c *Client) Mkdir(dir FH, name string, done func(FH, Attr, error)) {
	c.createOrMkdir(ProcMkdir, dir, name, done)
}

func (c *Client) createOrMkdir(proc uint32, dir FH, name string, done func(FH, Attr, error)) {
	e := xdr.NewEncoder(FHLen + 4 + len(name) + 4)
	e.FixedOpaque(dir[:])
	e.String(name)
	c.call(proc, e.Bytes(), nil, func(body *netbuf.Chain, err error) {
		var fh FH
		if err != nil {
			done(fh, Attr{}, err)
			return
		}
		st, ok := statusOf(body)
		if !ok || st != OK {
			body.Release()
			done(fh, Attr{}, orIO(st, ok))
			return
		}
		raw, err := body.PullHeader(FHLen)
		if err != nil {
			body.Release()
			done(fh, Attr{}, &OpError{Status: ErrIO})
			return
		}
		copy(fh[:], raw)
		a, ok := attrOf(body)
		body.Release()
		if !ok {
			done(fh, Attr{}, &OpError{Status: ErrIO})
			return
		}
		done(fh, a, nil)
	})
}

// Remove unlinks a file.
func (c *Client) Remove(dir FH, name string, done func(error)) {
	e := xdr.NewEncoder(FHLen + 4 + len(name) + 4)
	e.FixedOpaque(dir[:])
	e.String(name)
	c.call(ProcRemove, e.Bytes(), nil, func(body *netbuf.Chain, err error) {
		if err != nil {
			done(err)
			return
		}
		st, ok := statusOf(body)
		finishStatus(body, st, ok, done)
	})
}

// Readdir lists a directory.
func (c *Client) Readdir(dir FH, done func([]string, error)) {
	c.call(ProcReaddir, dir[:], nil, func(body *netbuf.Chain, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		st, ok := statusOf(body)
		if !ok || st != OK {
			body.Release()
			done(nil, orIO(st, ok))
			return
		}
		flat := make([]byte, body.Len())
		body.Gather(flat)
		body.Release()
		d := xdr.NewDecoder(flat)
		count, err := d.Uint32()
		if err != nil {
			done(nil, &OpError{Status: ErrIO})
			return
		}
		names := make([]string, 0, count)
		for i := uint32(0); i < count; i++ {
			s, err := d.String(MaxReadSize)
			if err != nil {
				done(nil, &OpError{Status: ErrIO})
				return
			}
			names = append(names, s)
		}
		done(names, nil)
	})
}

// Pending reports outstanding calls.
func (c *Client) Pending() int { return c.rpc.Pending() }

// orIO maps a parse failure or non-OK status to an error.
func orIO(st uint32, ok bool) error {
	if !ok {
		return &OpError{Status: ErrIO}
	}
	return StatusError(st)
}
