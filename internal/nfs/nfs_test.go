package nfs

import (
	"bytes"
	"errors"
	"testing"

	"ncache/internal/netbuf"
	"ncache/internal/proto/eth"
	"ncache/internal/proto/ipv4"
	"ncache/internal/proto/udp"
	"ncache/internal/sim"
	"ncache/internal/simnet"
)

// memBackend is an in-memory Backend for protocol-level tests, independent
// of the file system.
type memBackend struct {
	files map[uint32][]byte // ino → content
	names map[string]uint32
	next  uint32
}

func newMemBackend() *memBackend {
	return &memBackend{
		files: map[uint32][]byte{},
		names: map[string]uint32{},
		next:  2,
	}
}

func inoOf(fh FH) uint32 {
	return uint32(fh[0])<<24 | uint32(fh[1])<<16 | uint32(fh[2])<<8 | uint32(fh[3])
}

func fhOf(ino uint32) FH {
	var fh FH
	fh[0], fh[1], fh[2], fh[3] = byte(ino>>24), byte(ino>>16), byte(ino>>8), byte(ino)
	return fh
}

func (m *memBackend) attr(ino uint32) Attr {
	if ino == 1 {
		return Attr{Type: TypeDir, Links: 1}
	}
	return Attr{Type: TypeFile, Links: 1, Size: uint64(len(m.files[ino]))}
}

func (m *memBackend) Getattr(fh FH, done func(Attr, uint32)) {
	ino := inoOf(fh)
	if ino != 1 {
		if _, ok := m.files[ino]; !ok {
			done(Attr{}, ErrNoEnt)
			return
		}
	}
	done(m.attr(ino), OK)
}

func (m *memBackend) Setattr(fh FH, size uint64, done func(Attr, uint32)) {
	ino := inoOf(fh)
	f, ok := m.files[ino]
	if !ok {
		done(Attr{}, ErrNoEnt)
		return
	}
	if uint64(len(f)) > size {
		m.files[ino] = f[:size]
	} else {
		m.files[ino] = append(f, make([]byte, size-uint64(len(f)))...)
	}
	done(m.attr(ino), OK)
}

func (m *memBackend) Lookup(dir FH, name string, done func(FH, Attr, uint32)) {
	ino, ok := m.names[name]
	if !ok {
		done(FH{}, Attr{}, ErrNoEnt)
		return
	}
	done(fhOf(ino), m.attr(ino), OK)
}

func (m *memBackend) Read(fh FH, off uint64, n int, done func(*netbuf.Chain, Attr, uint32)) {
	ino := inoOf(fh)
	f, ok := m.files[ino]
	if !ok {
		done(nil, Attr{}, ErrNoEnt)
		return
	}
	if off > uint64(len(f)) {
		off = uint64(len(f))
	}
	end := off + uint64(n)
	if end > uint64(len(f)) {
		end = uint64(len(f))
	}
	done(netbuf.ChainFromBytes(f[off:end], netbuf.DefaultBufSize), m.attr(ino), OK)
}

func (m *memBackend) Write(fh FH, off uint64, data *netbuf.Chain, done func(int, Attr, uint32)) {
	ino := inoOf(fh)
	f, ok := m.files[ino]
	if !ok {
		data.Release()
		done(0, Attr{}, ErrNoEnt)
		return
	}
	p := data.Flatten()
	data.Release()
	need := off + uint64(len(p))
	if uint64(len(f)) < need {
		f = append(f, make([]byte, need-uint64(len(f)))...)
	}
	copy(f[off:], p)
	m.files[ino] = f
	done(len(p), m.attr(ino), OK)
}

func (m *memBackend) Create(dir FH, name string, isDir bool, done func(FH, Attr, uint32)) {
	if _, exists := m.names[name]; exists {
		done(FH{}, Attr{}, ErrExist)
		return
	}
	ino := m.next
	m.next++
	m.names[name] = ino
	m.files[ino] = nil
	done(fhOf(ino), m.attr(ino), OK)
}

func (m *memBackend) Remove(dir FH, name string, done func(uint32)) {
	ino, ok := m.names[name]
	if !ok {
		done(ErrNoEnt)
		return
	}
	delete(m.names, name)
	delete(m.files, ino)
	done(OK)
}

func (m *memBackend) Readdir(dir FH, done func([]string, uint32)) {
	out := make([]string, 0, len(m.names))
	for n := range m.names {
		out = append(out, n)
	}
	done(out, OK)
}

var _ Backend = (*memBackend)(nil)

// loop builds a client/server pair over the simulated fabric.
func loop(t *testing.T) (*sim.Engine, *Client, *memBackend, *Server) {
	t.Helper()
	eng := sim.NewEngine()
	nw := simnet.NewNetwork(eng, 5*sim.Microsecond)
	sn := simnet.NewNode(eng, "server", simnet.DefaultProfile())
	cn := simnet.NewNode(eng, "client", simnet.DefaultProfile())
	if _, err := nw.Attach(sn, 1, simnet.Gbps); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Attach(cn, 2, simnet.Gbps); err != nil {
		t.Fatal(err)
	}
	sUDP := udp.NewTransport(ipv4.NewStack(sn))
	cUDP := udp.NewTransport(ipv4.NewStack(cn))
	backend := newMemBackend()
	srv := NewServer(sn, backend)
	if err := srv.ServeUDP(sUDP); err != nil {
		t.Fatalf("ServeUDP: %v", err)
	}
	client, err := NewClient(cUDP, eth.Addr(2), 700, eth.Addr(1))
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	return eng, client, backend, srv
}

func TestProtocolLifecycle(t *testing.T) {
	eng, c, _, srv := loop(t)
	var fh FH
	c.Create(RootFH(), "f.txt", func(h FH, a Attr, err error) {
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		if a.Type != TypeFile {
			t.Fatalf("attr = %+v", a)
		}
		fh = h
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	payload := bytes.Repeat([]byte{0x42}, 10000)
	c.WriteBytes(fh, 0, payload, func(n int, a Attr, err error) {
		if err != nil || n != len(payload) {
			t.Fatalf("Write: n=%d err=%v", n, err)
		}
		if a.Size != uint64(len(payload)) {
			t.Fatalf("size = %d", a.Size)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	c.Read(fh, 100, 5000, func(data *netbuf.Chain, a Attr, err error) {
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		got := data.Flatten()
		data.Release()
		if !bytes.Equal(got, payload[100:5100]) {
			t.Fatal("read payload mismatch")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	c.Getattr(fh, func(a Attr, err error) {
		if err != nil || a.Size != 10000 {
			t.Fatalf("Getattr: %+v %v", a, err)
		}
	})
	c.Setattr(fh, 500, func(a Attr, err error) {
		if err != nil || a.Size != 500 {
			t.Fatalf("Setattr: %+v %v", a, err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	c.Lookup(RootFH(), "f.txt", func(h FH, _ Attr, err error) {
		if err != nil || h != fh {
			t.Fatalf("Lookup: %v %v", h, err)
		}
	})
	c.Readdir(RootFH(), func(names []string, err error) {
		if err != nil || len(names) != 1 || names[0] != "f.txt" {
			t.Fatalf("Readdir: %v %v", names, err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	c.Remove(RootFH(), "f.txt", func(err error) {
		if err != nil {
			t.Fatalf("Remove: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	c.Lookup(RootFH(), "f.txt", func(_ FH, _ Attr, err error) {
		var op *OpError
		if !errors.As(err, &op) || op.Status != ErrNoEnt {
			t.Fatalf("Lookup after remove: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if srv.Ops[ProcCreate] != 1 || srv.Ops[ProcRead] != 1 || srv.Ops[ProcWrite] != 1 {
		t.Fatalf("op counters: %+v", srv.Ops)
	}
}

func TestErrorStatuses(t *testing.T) {
	eng, c, _, _ := loop(t)
	ghost := fhOf(99)
	c.Getattr(ghost, func(_ Attr, err error) {
		var op *OpError
		if !errors.As(err, &op) || op.Status != ErrNoEnt {
			t.Fatalf("Getattr ghost: %v", err)
		}
	})
	c.Read(ghost, 0, 100, func(_ *netbuf.Chain, _ Attr, err error) {
		if err == nil {
			t.Fatal("Read ghost succeeded")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	c.Create(RootFH(), "dup", func(_ FH, _ Attr, err error) {
		if err != nil {
			t.Fatal(err)
		}
		c.Create(RootFH(), "dup", func(_ FH, _ Attr, err error) {
			var op *OpError
			if !errors.As(err, &op) || op.Status != ErrExist {
				t.Fatalf("dup create: %v", err)
			}
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReadClampsToMaxSize(t *testing.T) {
	eng, c, b, _ := loop(t)
	var fh FH
	c.Create(RootFH(), "big", func(h FH, _ Attr, err error) { fh = h })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	b.files[inoOf(fh)] = make([]byte, 2*MaxReadSize)
	var got int
	c.Read(fh, 0, 3*MaxReadSize, func(data *netbuf.Chain, _ Attr, err error) {
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		got = data.Len()
		data.Release()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got != MaxReadSize {
		t.Fatalf("read returned %d, want clamp to %d", got, MaxReadSize)
	}
}

func TestOpErrorMessages(t *testing.T) {
	for st, want := range map[uint32]string{
		ErrNoEnt:    "no such file",
		ErrExist:    "file exists",
		ErrNotDir:   "not a directory",
		ErrIsDir:    "is a directory",
		ErrNotEmpty: "not empty",
		ErrNoSpc:    "no space",
		ErrIO:       "I/O",
		999:         "error",
	} {
		err := StatusError(st)
		if err == nil {
			t.Fatalf("StatusError(%d) = nil", st)
		}
		if !bytes.Contains([]byte(err.Error()), []byte(want)) {
			t.Fatalf("StatusError(%d) = %q, want substring %q", st, err, want)
		}
	}
	if StatusError(OK) != nil {
		t.Fatal("StatusError(OK) != nil")
	}
}

func TestRootFH(t *testing.T) {
	if inoOf(RootFH()) != 1 {
		t.Fatalf("root fh = %v", RootFH())
	}
}
