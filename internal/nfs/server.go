package nfs

import (
	"ncache/internal/netbuf"
	"ncache/internal/proto"
	"ncache/internal/proto/udp"
	"ncache/internal/simnet"
	"ncache/internal/sunrpc"
	"ncache/internal/trace"
	"ncache/internal/xdr"
)

// Backend is the file service behind the protocol server. Payload chains
// flow through untouched: Read produces the reply payload (real bytes,
// logical keys, or baseline junk — the backend decides), Write consumes the
// request payload straight from the wire buffers.
type Backend interface {
	Getattr(fh FH, done func(Attr, uint32))
	Setattr(fh FH, size uint64, done func(Attr, uint32))
	Lookup(dir FH, name string, done func(FH, Attr, uint32))
	Read(fh FH, off uint64, n int, done func(*netbuf.Chain, Attr, uint32))
	Write(fh FH, off uint64, data *netbuf.Chain, done func(n int, attr Attr, st uint32))
	Create(dir FH, name string, isDir bool, done func(FH, Attr, uint32))
	Remove(dir FH, name string, done func(uint32))
	Readdir(dir FH, done func([]string, uint32))
}

// TxFilter rewrites a fully composed reply payload just before it enters
// the socket — the hook the NCache module substitutes cached data through.
type TxFilter func(*netbuf.Chain) *netbuf.Chain

// Server frames NFS requests and replies over an RPC server.
type Server struct {
	backend Backend
	node    *simnet.Node
	filter  TxFilter

	// Ops counts served calls by procedure.
	Ops map[uint32]uint64
}

// Registrar is any RPC dispatcher the server can attach to — the datagram
// and stream sunrpc servers both qualify.
type Registrar interface {
	Register(prog, vers, proc uint32, h sunrpc.Handler)
}

// NewServer creates the protocol server. It serves nothing until attached
// to one or more RPC dispatchers; a single server (and its single tx
// filter) can face several transports at once.
func NewServer(node *simnet.Node, backend Backend) *Server {
	return &Server{
		backend: backend,
		node:    node,
		Ops:     make(map[uint32]uint64),
	}
}

// Attach registers the NFS program's procedures on an RPC dispatcher.
func (s *Server) Attach(rpc Registrar) {
	for _, proc := range []uint32{
		ProcNull, ProcGetattr, ProcSetattr, ProcLookup, ProcRead,
		ProcWrite, ProcCreate, ProcRemove, ProcMkdir, ProcRmdir, ProcReaddir,
	} {
		proc := proc
		rpc.Register(Prog, Vers, proc, func(c sunrpc.Call) { s.dispatch(proc, c) })
	}
}

// ServeUDP binds a datagram RPC server on t at the NFS port and attaches
// (the paper's NFS transport).
func (s *Server) ServeUDP(t *udp.Transport) error {
	rpc, err := sunrpc.NewServer(t, Port)
	if err != nil {
		return err
	}
	s.Attach(rpc)
	return nil
}

// ServeStream listens for record-marked RPC connections at the NFS port —
// the transport-comparison extension (§5.5 notes TCP's higher per-packet
// overhead; this lets the same service run both ways).
func (s *Server) ServeStream(ln proto.Listener) error {
	rpc, err := sunrpc.NewStreamServer(s.node, ln, Port)
	if err != nil {
		return err
	}
	s.Attach(rpc)
	return nil
}

// SetTxFilter installs the reply-payload hook.
func (s *Server) SetTxFilter(f TxFilter) { s.filter = f }

// reply sends head+payload through the tx filter.
func (s *Server) reply(c sunrpc.Call, head []byte, payload *netbuf.Chain) {
	if s.filter != nil && payload != nil {
		payload = s.filter(payload)
	}
	_ = c.Reply(head, payload)
}

// replyStatus sends a bare status reply.
func (s *Server) replyStatus(c sunrpc.Call, st uint32) {
	e := xdr.NewEncoder(4)
	e.Uint32(st)
	s.reply(c, e.Bytes(), nil)
}

// encodeAttr appends an attribute block.
func encodeAttr(e *xdr.Encoder, a Attr) {
	e.Uint32(a.Type)
	e.Uint32(a.Links)
	e.Uint64(a.Size)
}

// dispatch decodes one call and invokes the backend. Per-operation server
// logic cost is charged here.
func (s *Server) dispatch(proc uint32, c sunrpc.Call) {
	s.Ops[proc]++
	s.node.Reqs.Ops++
	body := c.Body
	fail := func(st uint32) {
		body.Release()
		s.replyStatus(c, st)
	}
	trace.To(s.node.Eng, trace.LServer)
	s.node.Charge(s.node.Cost.NFSOpNs, func() {
		switch proc {
		case ProcNull:
			body.Release()
			s.reply(c, nil, nil)

		case ProcGetattr:
			fh, ok := pullFH(body)
			if !ok {
				fail(ErrIO)
				return
			}
			body.Release()
			s.node.Reqs.MetaOps++
			s.backend.Getattr(fh, func(a Attr, st uint32) {
				s.replyAttr(c, st, a)
			})

		case ProcSetattr:
			raw, err := body.PullHeader(FHLen + 8)
			if err != nil {
				fail(ErrIO)
				return
			}
			var fh FH
			copy(fh[:], raw[:FHLen])
			size := be64(raw[FHLen:])
			body.Release()
			s.node.Reqs.MetaOps++
			s.backend.Setattr(fh, size, func(a Attr, st uint32) {
				s.replyAttr(c, st, a)
			})

		case ProcLookup:
			fh, name, ok := pullFHName(body)
			body.Release()
			if !ok {
				s.replyStatus(c, ErrIO)
				return
			}
			s.node.Reqs.MetaOps++
			s.backend.Lookup(fh, name, func(child FH, a Attr, st uint32) {
				s.replyFHAttr(c, st, child, a)
			})

		case ProcRead:
			raw, err := body.PullHeader(FHLen + 12)
			if err != nil {
				fail(ErrIO)
				return
			}
			var fh FH
			copy(fh[:], raw[:FHLen])
			off := be64(raw[FHLen:])
			n := int(be32(raw[FHLen+8:]))
			body.Release()
			if n > MaxReadSize {
				n = MaxReadSize
			}
			s.node.Reqs.ReadOps++
			s.backend.Read(fh, off, n, func(data *netbuf.Chain, a Attr, st uint32) {
				if st != OK {
					if data != nil {
						data.Release()
					}
					s.replyStatus(c, st)
					return
				}
				e := xdr.NewEncoder(4 + AttrLen + 4)
				e.Uint32(OK)
				encodeAttr(e, a)
				dlen := 0
				if data != nil {
					dlen = data.Len()
				}
				e.Uint32(uint32(dlen))
				s.node.Reqs.ReadBytes += uint64(dlen)
				// XDR opaque padding (block payloads are 4-aligned).
				if pad := (4 - dlen%4) % 4; pad != 0 && data != nil {
					pb, perr := s.node.TxPool.Get()
					if perr != nil {
						pb = netbuf.New(0, pad)
					}
					_ = pb.Put(pad)
					data.Append(pb)
				}
				s.reply(c, e.Bytes(), data)
			})

		case ProcWrite:
			raw, err := body.PullHeader(FHLen + 16)
			if err != nil {
				fail(ErrIO)
				return
			}
			var fh FH
			copy(fh[:], raw[:FHLen])
			off := be64(raw[FHLen:])
			dlen := int(be32(raw[FHLen+8:]))
			// raw[FHLen+12:] is the XDR opaque length, equal to dlen.
			if body.Len() < dlen {
				fail(ErrIO)
				return
			}
			data, err := body.PullChain(dlen)
			if err != nil {
				fail(ErrIO)
				return
			}
			body.Release()
			s.node.Reqs.WriteOps++
			s.node.Reqs.WriteBytes += uint64(dlen)
			s.backend.Write(fh, off, data, func(n int, a Attr, st uint32) {
				if st != OK {
					s.replyStatus(c, st)
					return
				}
				e := xdr.NewEncoder(4 + AttrLen + 4)
				e.Uint32(OK)
				encodeAttr(e, a)
				e.Uint32(uint32(n))
				s.reply(c, e.Bytes(), nil)
			})

		case ProcCreate, ProcMkdir:
			fh, name, ok := pullFHName(body)
			body.Release()
			if !ok {
				s.replyStatus(c, ErrIO)
				return
			}
			s.node.Reqs.MetaOps++
			s.backend.Create(fh, name, proc == ProcMkdir, func(child FH, a Attr, st uint32) {
				s.replyFHAttr(c, st, child, a)
			})

		case ProcRemove, ProcRmdir:
			fh, name, ok := pullFHName(body)
			body.Release()
			if !ok {
				s.replyStatus(c, ErrIO)
				return
			}
			s.node.Reqs.MetaOps++
			s.backend.Remove(fh, name, func(st uint32) {
				s.replyStatus(c, st)
			})

		case ProcReaddir:
			fh, ok := pullFH(body)
			body.Release()
			if !ok {
				s.replyStatus(c, ErrIO)
				return
			}
			s.node.Reqs.MetaOps++
			s.backend.Readdir(fh, func(names []string, st uint32) {
				if st != OK {
					s.replyStatus(c, st)
					return
				}
				e := xdr.NewEncoder(64 * (len(names) + 1))
				e.Uint32(OK)
				e.Uint32(uint32(len(names)))
				for _, n := range names {
					e.String(n)
				}
				s.reply(c, e.Bytes(), nil)
			})

		default:
			fail(ErrIO)
		}
	})
}

// replyAttr sends status+attr.
func (s *Server) replyAttr(c sunrpc.Call, st uint32, a Attr) {
	if st != OK {
		s.replyStatus(c, st)
		return
	}
	e := xdr.NewEncoder(4 + AttrLen)
	e.Uint32(OK)
	encodeAttr(e, a)
	s.reply(c, e.Bytes(), nil)
}

// replyFHAttr sends status+fh+attr.
func (s *Server) replyFHAttr(c sunrpc.Call, st uint32, fh FH, a Attr) {
	if st != OK {
		s.replyStatus(c, st)
		return
	}
	e := xdr.NewEncoder(4 + FHLen + AttrLen)
	e.Uint32(OK)
	e.FixedOpaque(fh[:])
	encodeAttr(e, a)
	s.reply(c, e.Bytes(), nil)
}

// pullFH extracts a file handle from the argument chain.
func pullFH(body *netbuf.Chain) (FH, bool) {
	var fh FH
	raw, err := body.PullHeader(FHLen)
	if err != nil {
		return fh, false
	}
	copy(fh[:], raw)
	return fh, true
}

// pullFHName extracts fh + XDR string arguments.
func pullFHName(body *netbuf.Chain) (FH, string, bool) {
	fh, ok := pullFH(body)
	if !ok {
		return fh, "", false
	}
	lraw, err := body.PullHeader(4)
	if err != nil {
		return fh, "", false
	}
	n := int(be32(lraw))
	padded := n + (4-n%4)%4
	if n < 0 || body.Len() < padded {
		return fh, "", false
	}
	raw, err := body.PullHeader(padded)
	if err != nil {
		return fh, "", false
	}
	return fh, string(raw[:n]), true
}

// be32/be64 decode big-endian integers.
func be32(p []byte) uint32 {
	return uint32(p[0])<<24 | uint32(p[1])<<16 | uint32(p[2])<<8 | uint32(p[3])
}

func be64(p []byte) uint64 {
	return uint64(be32(p))<<32 | uint64(be32(p[4:]))
}
