package passthru

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"sync"

	"ncache/internal/controlplane"
	"ncache/internal/fault"
	"ncache/internal/netbuf"
	"ncache/internal/nfs"
	"ncache/internal/proto/eth"
	"ncache/internal/proto/ipv4"
	"ncache/internal/proto/tcp"
	"ncache/internal/proto/udp"
	"ncache/internal/sim"
	"ncache/internal/simnet"
	"ncache/internal/storage"
)

// ClientHost is one client machine: a node with full protocol stacks, an
// NFS client, and HTTP connections on demand.
type ClientHost struct {
	Node *simnet.Node
	UDP  *udp.Transport
	TCP  *tcp.Transport
	Addr eth.Addr
	NFS  *nfs.Client

	nextPort uint16
}

// NewClientHost builds and attaches a client over a link with the given
// one-way latency (the fabric floor for LAN-local clients; wider for
// clients reaching the cluster over a longer path).
func NewClientHost(eng *sim.Engine, nw *simnet.Network, name string, addr eth.Addr, cost simnet.CostProfile, bw simnet.Bandwidth, latency sim.Duration) (*ClientHost, error) {
	node := simnet.NewNode(eng, name, cost)
	if _, err := nw.AttachAt(node, addr, bw, latency); err != nil {
		return nil, err
	}
	ip := ipv4.NewStack(node)
	return &ClientHost{
		Node:     node,
		UDP:      udp.NewTransport(ip),
		TCP:      tcp.NewTransport(ip),
		Addr:     addr,
		nextPort: 700,
	}, nil
}

// MountNFS creates the host's NFS client against a server address.
func (c *ClientHost) MountNFS(server eth.Addr) error {
	port := c.nextPort
	c.nextPort++
	cl, err := nfs.NewClient(c.UDP, c.Addr, port, server)
	if err != nil {
		return err
	}
	c.NFS = cl
	return nil
}

// NewNFSClient creates an additional independent NFS client (its own port),
// used to model multiple client processes on one host.
func (c *ClientHost) NewNFSClient(server eth.Addr) (*nfs.Client, error) {
	port := c.nextPort
	c.nextPort++
	return nfs.NewClient(c.UDP, c.Addr, port, server)
}

// DialNFSTCP connects an NFS client over TCP (the transport-comparison
// extension) and hands it to done once established.
func (c *ClientHost) DialNFSTCP(server eth.Addr, done func(*nfs.Client, error)) {
	nfs.DialClientStream(c.Node, c.TCP.DialConn, c.Addr, server, done)
}

// HTTPConn is one persistent web connection issuing sequential GETs.
type HTTPConn struct {
	host *ClientHost
	conn *tcp.Conn

	buf      bytes.Buffer
	expected int // body bytes still outstanding for the current response
	inBody   bool
	done     func(int, error)
	bodyLen  int
}

// DialHTTP opens a persistent connection to the web server.
func (c *ClientHost) DialHTTP(server eth.Addr, done func(*HTTPConn, error)) {
	c.TCP.Connect(c.Addr, server, HTTPPort, func(conn *tcp.Conn, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		h := &HTTPConn{host: c, conn: conn}
		conn.SetReceiver(h.receive)
		done(h, nil)
	})
}

// Get requests a path; done receives the body length. One request may be
// outstanding per connection.
func (h *HTTPConn) Get(path string, done func(int, error)) {
	if h.done != nil {
		done(0, fmt.Errorf("http: request already outstanding"))
		return
	}
	h.done = done
	h.bodyLen = 0
	req := "GET /" + path + " HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"
	if err := h.conn.Send([]byte(req)); err != nil {
		h.done = nil
		done(0, err)
	}
}

// receive parses response framing. Body bytes are counted, not copied: the
// client does not interpret payloads (baseline junk must flow as happily as
// real data), matching §5.1.
func (h *HTTPConn) receive(data *netbuf.Chain) {
	for {
		if h.inBody {
			n := data.Len()
			if h.buf.Len() > 0 {
				// Leftover header-buffer bytes belong to the body.
				take := h.buf.Len()
				if take > h.expected {
					take = h.expected
				}
				h.buf.Next(take)
				h.expected -= take
				h.bodyLen += take
			}
			if n > 0 {
				take := n
				if take > h.expected {
					take = h.expected
				}
				consumed, err := data.PullChain(take)
				if err != nil {
					break
				}
				consumed.Release()
				h.expected -= take
				h.bodyLen += take
			}
			if h.expected > 0 {
				break
			}
			h.inBody = false
			done := h.done
			h.done = nil
			if done != nil {
				done(h.bodyLen, nil)
			}
			if data.Len() == 0 && h.buf.Len() == 0 {
				break
			}
			continue
		}
		// Header phase: accumulate until the blank line.
		if data.Len() > 0 {
			_ = data.Range(0, data.Len(), func(p []byte) bool {
				h.buf.Write(p)
				return true
			})
			rel, err := data.PullChain(data.Len())
			if err == nil {
				rel.Release()
			}
		}
		raw := h.buf.Bytes()
		end := bytes.Index(raw, []byte("\r\n\r\n"))
		if end < 0 {
			break
		}
		header := string(raw[:end])
		h.buf.Next(end + 4)
		h.expected = contentLength(header)
		h.bodyLen = 0
		h.inBody = true
	}
	data.Release()
}

// contentLength extracts the Content-Length header.
func contentLength(header string) int {
	const key = "Content-Length: "
	i := bytes.Index([]byte(header), []byte(key))
	if i < 0 {
		return 0
	}
	j := i + len(key)
	k := j
	for k < len(header) && header[k] >= '0' && header[k] <= '9' {
		k++
	}
	n, err := strconv.Atoi(header[j:k])
	if err != nil {
		return 0
	}
	return n
}

// FabricLatency is the switch's one-way port latency — and therefore the
// sharded engine's lookahead: no frame crosses nodes in less time.
const FabricLatency = 5 * sim.Microsecond

// Cluster bundles a full testbed: storage, app server(s), clients, fabric.
type Cluster struct {
	Eng *sim.Engine
	Net *simnet.Network
	// Storage/App are the first (or only) storage target and front-end
	// server — the 1×1 testbed's names. Storages/Apps hold the full
	// scale-out sets (length 1 on the classic testbed).
	Storage  *StorageServer
	App      *AppServer
	Storages []*StorageServer
	// StorageArms indexes the storage nodes as [target][arm]: arm 0 is the
	// primary (same object as Storages[target]), arms 1+ are mirror
	// replicas. Storages stays flat — primaries first, then arm 1 of every
	// target, then arm 2, ... — so Storages[t] keeps meaning target t.
	StorageArms [][]*StorageServer
	Apps        []*AppServer
	// Control is the control-plane service (nil unless NumServers > 1).
	Control *controlplane.Server
	Clients []*ClientHost
	// Targets routes LBN ranges to storage targets (nil on a single
	// target).
	Targets *controlplane.TargetMap
	// Faults is the injector wired into every data-path resource when the
	// config carries a fault spec (nil otherwise). It starts disarmed;
	// experiments call Faults.Arm() once setup is done and Faults.Quiesce()
	// before the final drain.
	Faults *fault.Injector

	statsNoted bool
}

// ClusterConfig sizes a testbed.
type ClusterConfig struct {
	Mode       Mode
	ServerNICs int
	// NumServers front-end pass-through servers share NumTargets iSCSI
	// targets (both default to 1 — the paper's testbed). More than one
	// server brings up the control plane for routing and remap coherence.
	NumServers int
	NumTargets int
	// RangeBlocks is the LBN→target placement granularity (0 = default).
	RangeBlocks int64
	// Arms replicates every iSCSI target across this many mirror arms
	// (default 1 = no replication). Each extra arm is its own storage
	// node; writes fan out to all healthy arms, reads pick one by
	// ArmPolicy, and a per-arm circuit breaker ejects and resyncs failed
	// arms while the cluster keeps serving.
	Arms int
	// ArmPolicy is the mirror read-selection policy: "primary-first"
	// (default), "round-robin" or "least-latency".
	ArmPolicy string
	// ArmQuorum is the mirror write quorum (0 = 1).
	ArmQuorum int
	// Breaker tunes the mirror circuit breaker (zero values = defaults).
	Breaker       storage.BreakerConfig
	NumClients    int
	BlocksPerDisk int64
	FSCacheBlocks int // 0 = mode default
	NCacheBytes   int64
	DisableRemap  bool
	EnableWeb     bool
	Cost          simnet.CostProfile
	// FaultSpec installs a fault-injection schedule (see fault.ParseSpec);
	// empty means a fault-free testbed. FaultSeed selects the replayable
	// random streams (zero means seed 1).
	FaultSpec string
	FaultSeed uint64
	// Workers selects the parallel discrete-event engine: every node gets
	// its own shard, executed by this many workers under conservative
	// epoch synchronization (default lookahead = FabricLatency, widened
	// per shard pair from the link topology). Workers == 1 is the
	// sequential oracle of the same sharded semantics; 0 keeps the
	// classic single engine.
	Workers int
	// ClientLinkLatency is the one-way latency of every client's link into
	// the fabric (0 = FabricLatency). Slower client links model clients one
	// LAN hop away — and widen the parallel engine's epochs between client
	// and server shards by the same factor.
	ClientLinkLatency sim.Duration
	// ControlLinkLatency is the one-way latency of the control-plane node's
	// link (0 = FabricLatency). The control plane is a management node off
	// the data path — its protocol is idempotent and retried on a 10 ms
	// RTO — so placing it a LAN hop away costs nothing and keeps its shard's
	// message stream from capping every server's epoch at the fabric floor.
	ControlLinkLatency sim.Duration
	// UniformLookahead disables the topology-derived per-pair lookahead
	// matrix on the parallel engine, pinning every shard pair to the
	// FabricLatency floor (the PR 7 epoch schedule). Differential-testing
	// knob; also forced by NCACHE_UNIFORM_LOOKAHEAD=1.
	UniformLookahead bool
	// Writeback enables the asynchronous write-back pipeline on every
	// front-end server (see WritebackConfig).
	Writeback WritebackConfig
}

// Fault-recovery calibration used when a fault spec is present: NFS clients
// retransmit on a 20 ms timer (doubling, 5 tries) and the iSCSI initiator
// retries CHECK CONDITION commands 3 times after 500 µs.
const (
	faultRPCRTO     = 20 * sim.Millisecond
	faultRPCTries   = 5
	faultISCSITries = 3
	faultISCSIRetry = 500 * sim.Microsecond
)

// Well-known fabric addresses.
const (
	StorageAddr eth.Addr = 0x0a000001 // +1 per extra target
	ServerAddr  eth.Addr = 0x0a000010 // +ServerAddrStride per server, +1 per extra NIC
	ControlAddr eth.Addr = 0x0a0000f0 // the control-plane service
	ClientAddr0 eth.Addr = 0x0a000100 // +1 per client
)

// ServerAddrStride spaces front-end servers' address blocks (bounding a
// server to 8 NICs).
const ServerAddrStride = 8

// ServerAddrOf returns front-end server i's first NIC address.
func ServerAddrOf(i int) eth.Addr { return ServerAddr + eth.Addr(i*ServerAddrStride) }

// NewCluster assembles the testbed of §5.2 — or, with NumServers/NumTargets
// above one, the scale-out cluster: N front-end servers over M sharded
// targets coordinated by a control-plane node. Call Start to log in and
// mount.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.ServerNICs <= 0 {
		cfg.ServerNICs = 1
	}
	if cfg.ServerNICs > ServerAddrStride {
		return nil, fmt.Errorf("passthru: at most %d NICs per server", ServerAddrStride)
	}
	if cfg.NumServers <= 0 {
		cfg.NumServers = 1
	}
	if cfg.NumTargets <= 0 {
		cfg.NumTargets = 1
	}
	if cfg.NumClients <= 0 {
		cfg.NumClients = 2
	}
	if cfg.BlocksPerDisk <= 0 {
		cfg.BlocksPerDisk = 256 * 1024 // 1 GB per disk, 4 GB array
	}
	if cfg.Cost == (simnet.CostProfile{}) {
		cfg.Cost = simnet.DefaultProfile()
	}
	if cfg.ClientLinkLatency <= 0 {
		cfg.ClientLinkLatency = FabricLatency
	}
	if cfg.ControlLinkLatency <= 0 {
		cfg.ControlLinkLatency = FabricLatency
	}
	if os.Getenv("NCACHE_UNIFORM_LOOKAHEAD") == "1" {
		cfg.UniformLookahead = true
	}
	var eng *sim.Engine
	if cfg.Workers > 0 {
		eng = sim.NewSharded(sim.Config{Workers: cfg.Workers, Lookahead: FabricLatency})
	} else {
		eng = sim.NewEngine()
	}
	// nodeEng returns the engine a node's events run on: its own shard on a
	// parallel cluster, the shared engine otherwise.
	nodeEng := func(name string) *sim.Engine {
		if cfg.Workers > 0 {
			return eng.NewShard(name)
		}
		return eng
	}
	nw := simnet.NewNetwork(eng, FabricLatency)

	cl := &Cluster{Eng: eng, Net: nw}
	if cfg.NumServers > 1 || cfg.NumTargets > 1 {
		cl.Targets = controlplane.NewTargetMap(cfg.NumTargets, cfg.RangeBlocks, 0)
	}

	if cfg.Arms <= 0 {
		cfg.Arms = 1
	}
	armPolicy, err := storage.ParsePolicy(cfg.ArmPolicy)
	if err != nil {
		return nil, err
	}
	storageAddrs := make([]eth.Addr, cfg.NumTargets)
	cl.StorageArms = make([][]*StorageServer, cfg.NumTargets)
	for j := 0; j < cfg.NumTargets; j++ {
		storageAddrs[j] = StorageAddr + eth.Addr(j)
		scfg := DefaultStorageConfig(storageAddrs[j], cfg.BlocksPerDisk)
		scfg.Cost = cfg.Cost
		if j > 0 {
			scfg.Name = fmt.Sprintf("storage%d", j)
			scfg.DiskPrefix = fmt.Sprintf("s%d.disk", j)
		}
		ss, err := NewStorageServer(nodeEng(scfg.Name), nw, scfg)
		if err != nil {
			return nil, err
		}
		cl.Storages = append(cl.Storages, ss)
		cl.StorageArms[j] = []*StorageServer{ss}
	}
	cl.Storage = cl.Storages[0]
	// Mirror arms: every extra arm is a full storage node of its own
	// (disks, target, fabric port), named storage<t>m<a> with fault sites
	// s<t>m<a>.disk* so injection can kill one replica precisely.
	var mirrorAddrs [][]eth.Addr
	if cfg.Arms > 1 {
		mirrorAddrs = make([][]eth.Addr, cfg.NumTargets)
		for a := 1; a < cfg.Arms; a++ {
			for j := 0; j < cfg.NumTargets; j++ {
				addr := StorageAddr + eth.Addr(j+cfg.NumTargets*a)
				scfg := DefaultStorageConfig(addr, cfg.BlocksPerDisk)
				scfg.Cost = cfg.Cost
				scfg.Name = fmt.Sprintf("storage%dm%d", j, a)
				scfg.DiskPrefix = fmt.Sprintf("s%dm%d.disk", j, a)
				ss, err := NewStorageServer(nodeEng(scfg.Name), nw, scfg)
				if err != nil {
					return nil, err
				}
				cl.Storages = append(cl.Storages, ss)
				cl.StorageArms[j] = append(cl.StorageArms[j], ss)
				mirrorAddrs[j] = append(mirrorAddrs[j], addr)
			}
		}
	}

	serverAddrs := make([]eth.Addr, cfg.NumServers)
	for i := range serverAddrs {
		serverAddrs[i] = ServerAddrOf(i)
	}
	if cfg.NumServers > 1 {
		// The control plane comes up before any server so registrations
		// land on a bound port.
		cpNode := simnet.NewNode(nodeEng("cp"), "cp", cfg.Cost)
		if _, err := nw.AttachAt(cpNode, ControlAddr, simnet.Gbps, cfg.ControlLinkLatency); err != nil {
			return nil, fmt.Errorf("cp attach: %w", err)
		}
		cpIP := ipv4.NewStack(cpNode)
		cpUDP := udp.NewTransport(cpIP)
		cpTCP := tcp.NewTransport(cpIP)
		cl.Control = controlplane.NewServer(cpNode, controlplane.Config{
			Servers:     serverAddrs,
			NumTargets:  cfg.NumTargets,
			RangeBlocks: cfg.RangeBlocks,
		})
		if err := cl.Control.ServeUDP(cpUDP); err != nil {
			return nil, err
		}
		if err := cl.Control.ServeStream(cpTCP); err != nil {
			return nil, err
		}
	}

	for i := 0; i < cfg.NumServers; i++ {
		addrs := make([]eth.Addr, cfg.ServerNICs)
		for n := range addrs {
			addrs[n] = serverAddrs[i] + eth.Addr(n)
		}
		acfg := DefaultServerConfig(cfg.Mode, addrs[0], storageAddrs[0])
		acfg.Addrs = addrs
		acfg.StorageAddrs = storageAddrs
		acfg.Targets = cl.Targets
		acfg.MirrorAddrs = mirrorAddrs
		acfg.ArmPolicy = armPolicy
		acfg.ArmQuorum = cfg.ArmQuorum
		acfg.Breaker = cfg.Breaker
		acfg.Cost = cfg.Cost
		acfg.EnableWeb = cfg.EnableWeb
		acfg.DisableRemap = cfg.DisableRemap
		acfg.Writeback = cfg.Writeback
		if cfg.NumServers > 1 {
			acfg.Name = fmt.Sprintf("app%d", i)
			acfg.ControlAddr = ControlAddr
			acfg.ServerIndex = i
		}
		if cfg.FSCacheBlocks > 0 {
			acfg.FSCacheBlocks = cfg.FSCacheBlocks
		}
		if cfg.NCacheBytes > 0 {
			acfg.NCacheBytes = cfg.NCacheBytes
		}
		app, err := NewAppServer(nodeEng(acfg.Name), nw, acfg)
		if err != nil {
			return nil, err
		}
		cl.Apps = append(cl.Apps, app)
	}
	cl.App = cl.Apps[0]

	for i := 0; i < cfg.NumClients; i++ {
		host, err := NewClientHost(nodeEng(fmt.Sprintf("client%d", i)), nw, fmt.Sprintf("client%d", i),
			ClientAddr0+eth.Addr(i), cfg.Cost, simnet.Gbps, cfg.ClientLinkLatency)
		if err != nil {
			return nil, err
		}
		cl.Clients = append(cl.Clients, host)
	}
	if cfg.Workers > 0 && !cfg.UniformLookahead {
		cl.wireLookahead()
	}
	if cfg.FaultSpec != "" {
		if _, err := cl.InstallFaults(cfg.FaultSeed, cfg.FaultSpec); err != nil {
			return nil, err
		}
	}
	return cl, nil
}

// InstallFaults wires a fault-injection schedule into every data-path
// resource: the fabric, each storage node's disks and CPU (mirror arms
// included), each app server's CPU, kill hook and iSCSI retry policy, the
// control plane and the clients. NewCluster calls it when the config
// carries a FaultSpec; experiments that need injection windows anchored
// after setup call it directly once setup's virtual time is known (a
// schedule's start/end are absolute). The injector starts disarmed; NFS
// clients already mounted get their retransmission timers here, later
// mounts get them in Start.
func (c *Cluster) InstallFaults(seed uint64, spec string) (*fault.Injector, error) {
	in, err := fault.NewFromSpec(c.Eng, seed, spec)
	if err != nil {
		return nil, err
	}
	if in == nil {
		return nil, nil
	}
	c.Net.SetFaults(in)
	for _, ss := range c.Storages {
		for _, d := range ss.Array.Disks() {
			d.SetFaults(in)
		}
		in.AttachCPU(ss.Node.Name+".cpu", ss.Node.CPU)
	}
	for _, app := range c.Apps {
		app := app
		in.AttachCPU(app.Node.Name+".cpu", app.Node.CPU)
		in.AttachKill(app.Node.Name, app.Node.Eng, app.Crash)
		for _, ini := range app.Initiators {
			ini.SetRetry(faultISCSITries, faultISCSIRetry)
		}
	}
	if c.Control != nil {
		in.AttachCPU("cp.cpu", c.Control.Node().CPU)
	}
	for _, host := range c.Clients {
		in.AttachCPU(host.Node.Name+".cpu", host.Node.CPU)
		if host.NFS != nil {
			host.NFS.SetRetransmit(faultRPCRTO, faultRPCTries)
		}
	}
	c.Faults = in
	return in, nil
}

// wireLookahead derives the parallel engine's per-pair lookahead matrix
// from the link topology AND the protocol flow graph. Every cross-shard
// event is a frame leaving the source through one of its NICs and landing
// through one of the destination's, so (src min uplink latency + dst min
// downlink latency) lower-bounds the pair's signal delay — NIC.launch pays
// both on the shard crossing. Pairs that exchange no frames at all are
// NoPost and drop out of the horizon minimum entirely: the testbed's flows
// are clients↔servers, clients↔control, servers↔storage and
// servers↔control; storage nodes never address each other, clients never
// address storage, and servers never address servers. Self-pairs are
// NoPost too (local schedules never cross the fabric), as is the harness
// control shard's whole row (RunExclusive synchronizes at barriers, not
// through the fabric). A frame on a NoPost pair — a model change breaking
// these invariants — panics loudly in PostTo rather than corrupting the
// schedule.
func (c *Cluster) wireLookahead() {
	type role int
	const (
		rStorage role = iota
		rControl
		rApp
		rClient
	)
	type row struct {
		eng  *sim.Engine
		la   sim.Duration // min attach latency across the node's NICs
		role role
	}
	var rows []row
	addNode := func(n *simnet.Node, ro role) {
		min := sim.NoPost
		for _, nic := range n.NICs() {
			if l := nic.Latency(); l < min {
				min = l
			}
		}
		rows = append(rows, row{n.Eng, min, ro})
	}
	for _, s := range c.Storages {
		addNode(s.Node, rStorage)
	}
	if c.Control != nil {
		addNode(c.Control.Node(), rControl)
	}
	for _, a := range c.Apps {
		addNode(a.Node, rApp)
	}
	for _, h := range c.Clients {
		addNode(h.Node, rClient)
	}
	talks := func(a, b role) bool {
		if a > b {
			a, b = b, a
		}
		switch {
		case a == rStorage && b == rApp: // iSCSI
			return true
		case a == rControl && b == rApp: // register/remap/invalidate
			return true
		case a == rControl && b == rClient: // routing lookups
			return true
		case a == rApp && b == rClient: // NFS / HTTP
			return true
		}
		return false
	}
	for _, r := range rows {
		c.Eng.SetLookahead(c.Eng, r.eng, sim.NoPost)
		c.Eng.SetLookahead(r.eng, c.Eng, sim.NoPost)
	}
	c.Eng.SetLookahead(c.Eng, c.Eng, sim.NoPost)
	for i, src := range rows {
		for j, dst := range rows {
			if i == j || !talks(src.role, dst.role) {
				c.Eng.SetLookahead(src.eng, dst.eng, sim.NoPost)
				continue
			}
			c.Eng.SetLookahead(src.eng, dst.eng, src.la+dst.la)
		}
	}
}

// Start completes the asynchronous bring-up and runs the engine until every
// server is serving (and, on scale-out clusters, registered with the
// control plane).
func (c *Cluster) Start() error {
	// The completion callbacks fire on each app server's shard; the mutex
	// makes the tallies safe under the parallel engine (counts are
	// commutative, so the outcome stays deterministic).
	var mu sync.Mutex
	pending := len(c.Apps)
	var startErr error
	for _, app := range c.Apps {
		app.Start(func(err error) {
			mu.Lock()
			if err != nil && startErr == nil {
				startErr = err
			}
			pending--
			mu.Unlock()
		})
	}
	if err := c.Eng.Run(); err != nil {
		return err
	}
	if pending != 0 {
		return fmt.Errorf("passthru: server bring-up did not complete (%d pending)", pending)
	}
	if startErr != nil {
		return startErr
	}
	for i, host := range c.Clients {
		// Spread clients across the servers and their NICs (Fig 5(b)).
		app := c.Apps[i%len(c.Apps)]
		nic := app.Node.NICs()[(i/len(c.Apps))%len(app.Node.NICs())]
		if err := host.MountNFS(nic.Addr); err != nil {
			return err
		}
		if c.Faults != nil {
			// Injected frame loss would hang calls forever on the
			// testbed's lossless-fabric default.
			host.NFS.SetRetransmit(faultRPCRTO, faultRPCTries)
		}
	}
	return nil
}

// engineStats tallies sharded-engine run statistics across every cluster
// closed since the last TakeEngineStats call, so the bench harness can
// report epoch counts per experiment without threading engine handles
// through every Run* signature.
var engineStats struct {
	sync.Mutex
	stats    sim.RunStats
	clusters int
}

// TakeEngineStats returns the RunStats accumulated over every cluster
// closed since the previous call (and how many clusters contributed), then
// resets the tally.
func TakeEngineStats() (sim.RunStats, int) {
	engineStats.Lock()
	defer engineStats.Unlock()
	st, n := engineStats.stats, engineStats.clusters
	engineStats.stats, engineStats.clusters = sim.RunStats{}, 0
	return st, n
}

// Close releases the parallel engine's worker pool and folds the engine's
// run statistics into the process-wide tally (see TakeEngineStats). It is
// safe to call more than once; the statistics count once.
func (c *Cluster) Close() {
	if !c.statsNoted {
		c.statsNoted = true
		st := c.Eng.RunStats()
		engineStats.Lock()
		s := &engineStats.stats
		s.Epochs += st.Epochs
		s.Events += st.Events
		s.StagedAdmits += st.StagedAdmits
		s.ExclusiveRuns += st.ExclusiveRuns
		s.Wakes += st.Wakes
		s.BarrierNs += st.BarrierNs
		engineStats.clusters++
		engineStats.Unlock()
	}
	c.Eng.Close()
}

// FaultCounters aggregates recovery activity across the testbed: RPC
// retransmissions, abandoned calls and suppressed duplicate replies over all
// NFS clients, plus iSCSI command retries at the app server.
func (c *Cluster) FaultCounters() (retrans, timeouts, dups, iscsiRetries uint64) {
	for _, host := range c.Clients {
		if host.NFS == nil {
			continue
		}
		if rpc := host.NFS.DatagramRPC(); rpc != nil {
			retrans += rpc.Retransmits
			timeouts += rpc.Timeouts
			dups += rpc.DupReplies
		}
	}
	for _, app := range c.Apps {
		for _, ini := range app.Initiators {
			iscsiRetries += ini.Retries
		}
	}
	return
}

// TCPCounters aggregates TCP loss-recovery activity across every transport
// in the testbed (storage, app server, clients): segments retransmitted,
// RTO and fast-retransmit events, plus the counters that must stay zero on
// a correct run — true protocol errors and aborted connections.
func (c *Cluster) TCPCounters() (retrans, rtos, fastrtx, protoErrs, aborted uint64) {
	add := func(t *tcp.Transport) {
		if t == nil {
			return
		}
		retrans += t.Retransmits
		rtos += t.RTOEvents
		fastrtx += t.FastRetransmits
		protoErrs += t.ProtocolErrors
		aborted += t.AbortedConns
	}
	for _, storage := range c.Storages {
		add(storage.TCP)
	}
	for _, app := range c.Apps {
		add(app.TCP)
	}
	for _, host := range c.Clients {
		add(host.TCP)
	}
	return
}
