package passthru

import (
	"fmt"

	"ncache/internal/blockdev"
	"ncache/internal/controlplane"
	"ncache/internal/nfs"
	"ncache/internal/proto/eth"
	"ncache/internal/sim"
)

// shardedDirect presents the sharded targets' arrays as one zero-time setup
// device: every target exports the full global geometry (the disks are
// sparse), so mkfs and prefill write each block only to the target that
// will serve it.
type shardedDirect struct {
	arrays []blockdev.DirectAccess
	tm     *controlplane.TargetMap
}

func (d *shardedDirect) Geometry() blockdev.Geometry { return d.arrays[0].Geometry() }

func (d *shardedDirect) PeekBlock(lbn int64) []byte {
	return d.arrays[d.tm.TargetOf(lbn)].PeekBlock(lbn)
}

func (d *shardedDirect) PokeBlock(lbn int64, data []byte) {
	d.arrays[d.tm.TargetOf(lbn)].PokeBlock(lbn, data)
}

// mirroredDirect is one mirrored target's zero-time setup device: peeks
// come from the primary arm, pokes land on every arm so the replicas start
// (and stay, under setup writes) identical.
type mirroredDirect struct {
	arms []*StorageServer
}

func (d *mirroredDirect) Geometry() blockdev.Geometry { return d.arms[0].Array.Geometry() }

func (d *mirroredDirect) PeekBlock(lbn int64) []byte { return d.arms[0].Array.PeekBlock(lbn) }

func (d *mirroredDirect) PokeBlock(lbn int64, data []byte) {
	for _, a := range d.arms {
		a.Array.PokeBlock(lbn, data)
	}
}

// DirectAccess returns the cluster's zero-time setup device: the single
// array on the classic testbed, mirrored-arm fan-out on a replicated
// target, the placement-routed shard set on a scale-out cluster.
func (c *Cluster) DirectAccess() blockdev.DirectAccess {
	perTarget := make([]blockdev.DirectAccess, len(c.StorageArms))
	for t, arms := range c.StorageArms {
		if len(arms) == 1 {
			perTarget[t] = arms[0].Array
		} else {
			perTarget[t] = &mirroredDirect{arms: arms}
		}
	}
	if len(perTarget) == 1 {
		return perTarget[0]
	}
	return &shardedDirect{arrays: perTarget, tm: c.Targets}
}

// SetSynthesize installs a content function on every target's array (see
// blockdev.RAID0.SetSynthesize).
func (c *Cluster) SetSynthesize(fn func(arrayLBN int64, dst []byte)) {
	for _, s := range c.Storages {
		s.Array.SetSynthesize(fn)
	}
}

// ScaleClient is one client host's routed view of the cluster: an NFS
// client per front-end server plus the control-plane resolver that picks
// which one serves each file handle.
type ScaleClient struct {
	Host *ClientHost
	// NFS[i] talks to server i (its first NIC).
	NFS []*nfs.Client
	// Resolver is the routing cache (nil on a single-server cluster, where
	// Route always answers NFS[0]).
	Resolver *controlplane.Resolver
}

// NewScaleClient builds the routed client set on one host.
func (c *Cluster) NewScaleClient(host *ClientHost) (*ScaleClient, error) {
	sc := &ScaleClient{Host: host}
	for _, app := range c.Apps {
		nc, err := host.NewNFSClient(app.Node.NICs()[0].Addr)
		if err != nil {
			return nil, err
		}
		sc.NFS = append(sc.NFS, nc)
	}
	if len(c.Apps) > 1 {
		sc.Resolver = controlplane.NewResolver(host.Node, host.UDP.DialConn, host.Addr, ControlAddr)
	}
	return sc, nil
}

// Route answers the NFS client owning fh. On multi-server clusters the
// lookup may complete asynchronously (one control-plane round trip on a
// cold route cache); done can fire synchronously on cache hits.
func (sc *ScaleClient) Route(fh nfs.FH, done func(*nfs.Client, error)) {
	if sc.Resolver == nil {
		done(sc.NFS[0], nil)
		return
	}
	sc.Resolver.Resolve(fh, func(server int, _ eth.Addr, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		if server < 0 || server >= len(sc.NFS) {
			done(nil, fmt.Errorf("passthru: fh=%x routed to unknown server %d", fh, server))
			return
		}
		done(sc.NFS[server], nil)
	})
}

// SetRetransmit applies datagram RPC retransmission to every per-server
// client (lossy-fabric runs).
func (sc *ScaleClient) SetRetransmit(rto sim.Duration, tries int) {
	for _, nc := range sc.NFS {
		nc.SetRetransmit(rto, tries)
	}
}
