package passthru

import (
	"ncache/internal/buffercache"
	"ncache/internal/extfs"
	"ncache/internal/lkey"
	"ncache/internal/ncache"
	"ncache/internal/netbuf"
	"ncache/internal/nfs"
	"ncache/internal/sim"
	"ncache/internal/simnet"
	"ncache/internal/trace"
)

// dataPath encapsulates the mode-specific regular-data movement of the
// server daemons. It is the only place in the assembly that knows which of
// the three configurations is running; everything above and below moves
// chains and keys obliviously.
type dataPath struct {
	mode Mode
	node *simnet.Node
	mod  *ncache.Module // non-nil only in NCache mode
	bs   int
}

// chargePhysical records n bytes moved in `stages` copy operations (the
// per-request stage count Table 2 reports) and bills the CPU.
func (p *dataPath) chargePhysical(stages, nbytes int) {
	p.node.Copies.PhysicalOps += uint64(stages)
	p.node.Copies.PhysicalBytes += uint64(nbytes)
	cost := p.node.Cost.CopyCost(nbytes)
	trace.Account(p.node.Eng, trace.LServer, cost)
	p.node.Charge(cost, nil)
}

// chargeLogical records n key copies and bills the CPU.
func (p *dataPath) chargeLogical(n int) {
	p.node.Copies.LogicalOps += uint64(n)
	cost := sim.Duration(n) * p.node.Cost.LogicalCopyNs
	trace.Account(p.node.Eng, trace.LServer, cost)
	p.node.Charge(cost, nil)
}

// replyChain converts read extents into a transmit payload chain.
//
//   - real blocks: physical copies — two stages for the NFS daemon path
//     (read() into the daemon buffer, then sendto() into the stack), one
//     stage for the kHTTPd sendfile path (Table 2);
//   - logical blocks: a key copy per extent — the stamped junk travels and
//     the driver-level hook substitutes later;
//   - holes: zero-filled buffers, uncharged.
func (p *dataPath) replyChain(res *extfs.ReadResult, sendfile bool) *netbuf.Chain {
	out := netbuf.NewChain()
	physBytes := 0
	logical := 0
	stages := 1
	if !sendfile {
		stages = 2
	}
	for _, e := range res.Extents {
		switch {
		case e.Block == nil:
			if zc, err := p.node.BlkPool.GetZeroChain(e.Len); err == nil {
				out.AppendChain(zc)
			} else {
				zb := netbuf.New(0, e.Len)
				_ = zb.Put(e.Len)
				out.Append(zb)
			}

		case e.Block.Logical:
			key, ok := e.Block.Key()
			if !ok {
				key = lkey.Key{}
			}
			if e.Off > 0 {
				key = key.WithSubOff(uint32(e.Off))
			}
			out.AppendChain(lkey.StampChainPool(p.node.BlkPool, key, e.Len))
			logical++

		default:
			// Physical: the daemon-buffer copy and the socket copy
			// both walk the bytes; the pooled-chain build is the second.
			pc, err := p.node.TxPool.GetChain(e.Block.Data[e.Off : e.Off+e.Len])
			if err != nil {
				continue
			}
			out.AppendChain(pc)
			physBytes += e.Len
		}
	}
	if physBytes > 0 {
		p.chargePhysical(stages, physBytes*stages)
	}
	if logical > 0 {
		p.chargeLogical(logical)
	}
	return out
}

// applyWrite routes a write payload into the file system with the mode's
// data movement, then calls done. It owns the payload chain.
func (p *dataPath) applyWrite(fs *extfs.FS, ino uint32, fh nfs.FH, off uint64, data *netbuf.Chain, done func(n int, st uint32)) {
	n := data.Len()
	aligned := off%uint64(p.bs) == 0 && n%p.bs == 0 && n > 0

	finish := func(err error) {
		if err != nil {
			done(0, mapErr(err))
			return
		}
		done(n, nfs.OK)
	}

	switch {
	case p.mode == NCache && aligned:
		// Capture the wire payload into the FHO cache; the file system
		// receives only keys (one logical copy per block).
		blocks := n / p.bs
		junk := p.mod.CaptureFHO(fh, off, data)
		junk.Release()
		p.chargeLogical(blocks)
		filler := func(b *buffercache.Block, blockOff, count, srcOff int) {
			lkey.Stamp(b.Data, lkey.ForFHO(fh, off+uint64(srcOff)))
			b.Logical = true
		}
		fs.Write(ino, off, n, filler, finish)

	case p.mode == Baseline:
		// Ideal zero-copy: drop the payload, store junk markers.
		data.Release()
		filler := func(b *buffercache.Block, blockOff, count, srcOff int) {
			if blockOff == 0 {
				lkey.Stamp(b.Data, lkey.Key{})
				b.Logical = true
			}
		}
		fs.Write(ino, off, n, filler, finish)

	default:
		// Physical path (Original, or unaligned writes in NCache mode):
		// one copy from the wire buffers into the buffer cache
		// (Table 2: "overwritten" = 1). The wire chain is scattered
		// straight into cache blocks — no flattened intermediate — and
		// stays referenced until the last filler has run.
		p.chargePhysical(1, n)
		filler := func(b *buffercache.Block, blockOff, count, srcOff int) {
			if b.Logical {
				// A partial overwrite of a key-carrying block must
				// materialize the real bytes first.
				p.materialize(b)
			}
			data.GatherRange(srcOff, b.Data[blockOff:blockOff+count])
		}
		fs.Write(ino, off, n, filler, func(err error) {
			data.Release()
			finish(err)
		})
	}
}

// materialize turns a logical block back into a real one by pulling the
// payload out of the NCache module (charging the copy). On a miss the block
// is zero-filled and counted.
func (p *dataPath) materialize(b *buffercache.Block) {
	key, ok := b.Key()
	if p.mod != nil && ok && key.Flags != 0 {
		if p.mod.Materialize(key, b.Data) {
			b.Logical = false
			p.chargePhysical(1, len(b.Data))
			return
		}
	}
	for i := range b.Data {
		b.Data[i] = 0
	}
	b.Logical = false
}

// mapErr converts file system errors to NFS statuses.
func mapErr(err error) uint32 {
	switch err {
	case nil:
		return nfs.OK
	case extfs.ErrNotFound:
		return nfs.ErrNoEnt
	case extfs.ErrExists:
		return nfs.ErrExist
	case extfs.ErrNotDir:
		return nfs.ErrNotDir
	case extfs.ErrIsDir:
		return nfs.ErrIsDir
	case extfs.ErrNoSpace:
		return nfs.ErrNoSpc
	case extfs.ErrNoInodes:
		return nfs.ErrNoSpc
	case extfs.ErrNotEmpty:
		return nfs.ErrNotEmpty
	case extfs.ErrNameTooLong:
		return nfs.ErrNameLong
	case extfs.ErrFileTooBig:
		return nfs.ErrFBig
	default:
		return nfs.ErrIO
	}
}
