package passthru

import (
	"bytes"
	"testing"

	"ncache/internal/extfs"
	"ncache/internal/netbuf"
	"ncache/internal/nfs"
	"ncache/internal/sim"
	"ncache/internal/simnet"
)

// writebackCluster brings up a single-server NCache cluster with the
// write-back pipeline on and a disarmed fault injector.
func writebackCluster(t *testing.T, spec string) (*Cluster, extfs.FileSpec) {
	t.Helper()
	cl, err := NewCluster(ClusterConfig{
		Mode:          NCache,
		NumClients:    1,
		BlocksPerDisk: 16 * 1024,
		FaultSpec:     spec,
		FaultSeed:     7,
		Writeback: WritebackConfig{
			Enabled:       true,
			FlushInterval: 2 * sim.Millisecond,
		},
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	fmtr, err := extfs.Format(cl.Storage.Array, 1024)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	fs, err := fmtr.AddFile("data.bin", 64*extfs.BlockSize, fileContent)
	if err != nil {
		t.Fatalf("AddFile: %v", err)
	}
	if err := fmtr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := cl.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return cl, fs
}

// ackChain drives a closed loop of block-sized WRITEs round-robin over
// nblocks blocks, each carrying a distinct marker byte, until one write
// fails or never completes (the crash under test). It reports, per block,
// the marker of the last acknowledged write and whether a later write to the
// block was issued but never acknowledged.
type ackChain struct {
	lastAcked  map[int]byte // block -> marker of the newest acked write
	lastIssued map[int]byte // block -> marker of the newest issued write
	acks       int
}

func driveAckChain(cl *Cluster, c *nfs.Client, fh nfs.FH, nblocks, maxWrites int) *ackChain {
	ch := &ackChain{lastAcked: map[int]byte{}, lastIssued: map[int]byte{}}
	bs := extfs.BlockSize
	var issue func(i int)
	issue = func(i int) {
		if i >= maxWrites {
			return
		}
		block := i % nblocks
		marker := byte(i%250 + 1)
		ch.lastIssued[block] = marker
		payload := bytes.Repeat([]byte{marker}, bs)
		c.WriteBytes(fh, uint64(block)*uint64(bs), payload, func(n int, _ nfs.Attr, err error) {
			if err != nil {
				return // the kill ate it; the loop ends here
			}
			ch.lastAcked[block] = marker
			ch.acks++
			issue(i + 1)
		})
	}
	issue(0)
	return ch
}

// settledBlocks returns the blocks whose newest issued write was acked — the
// blocks with no in-flight write at the crash, for which the durability
// invariant pins the exact content.
func (ch *ackChain) settledBlocks() map[int]byte {
	out := map[int]byte{}
	for b, m := range ch.lastAcked {
		if ch.lastIssued[b] == m {
			out[b] = m
		}
	}
	return out
}

// TestFaultWritebackKillReplayDurability is the write-back pipeline's
// durability property: a deterministic node kill lands mid-stream — after
// some writes were journaled, group-committed and acked, with flushed
// batches, unflushed durable WAL records and uncommitted stages all in
// play — and after restart-with-WAL-replay every acknowledged write's bytes
// are served back and sit on the physical disks. Writes caught by the crash
// before their commit never acked and carry no guarantee.
func TestFaultWritebackKillReplayDurability(t *testing.T) {
	cl, spec := writebackCluster(t, "kill:app:start=30ms")
	fh := lookupFile(t, cl, "data.bin")

	const nblocks = 32
	cl.Faults.Arm()
	ch := driveAckChain(cl, cl.Clients[0].NFS, fh, nblocks, 4000)
	run(t, cl)
	cl.Faults.Quiesce()

	if ch.acks == 0 {
		t.Fatal("no write acked before the kill; the crash window missed the stream")
	}
	if len(ch.lastIssued) == len(ch.settledBlocks()) && ch.acks >= 4000 {
		t.Fatal("every write acked; the kill never fired")
	}
	app := cl.App
	if !app.crashed {
		t.Fatal("server did not crash")
	}
	durable := len(app.WAL.DurableRecords())
	t.Logf("at the crash: %d acks, %d durable WAL records pending replay", ch.acks, durable)
	if durable == 0 {
		t.Fatal("no durable WAL records survived the crash; replay is not exercised")
	}

	restarted := false
	app.Restart(func(err error) {
		if err != nil {
			t.Fatalf("Restart: %v", err)
		}
		restarted = true
	})
	run(t, cl)
	if !restarted {
		t.Fatal("restart did not complete")
	}
	if got := app.WAL.Depth(); got != 0 {
		t.Fatalf("WAL depth = %d after replay, want 0", got)
	}

	// Every settled block serves its acked bytes through the full stack and
	// holds them on the physical disks. (A block with an unacked write in
	// flight at the crash may legitimately hold either version.)
	settled := ch.settledBlocks()
	if len(settled) == 0 {
		t.Fatal("no settled blocks to verify")
	}
	bs := extfs.BlockSize
	for block, marker := range settled {
		want := bytes.Repeat([]byte{marker}, bs)
		got := readFile(t, cl, fh, uint64(block)*uint64(bs), bs)
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d: acked marker %#x lost after replay (got %#x...)", block, marker, got[0])
		}
		if disk := cl.Storage.Array.PeekBlock(spec.StartLBN + int64(block)); !bytes.Equal(disk, want) {
			t.Fatalf("block %d: acked marker %#x not on disk after replay", block, marker)
		}
	}
}

// TestFaultWritebackKillPoolsDrain extends the netbuf leak discipline over
// the new paths: journaled writes, group commits, coalesced flush batches,
// a mid-flush kill, replay, and post-replay reads must return every pooled
// buffer on every node (CI re-runs this under NCACHE_NETBUF_DEBUG=1).
func TestFaultWritebackKillPoolsDrain(t *testing.T) {
	cl, _ := writebackCluster(t, "kill:app:start=30ms")
	fh := lookupFile(t, cl, "data.bin")

	cl.Faults.Arm()
	driveAckChain(cl, cl.Clients[0].NFS, fh, 32, 4000)
	run(t, cl)
	cl.Faults.Quiesce()

	ok := false
	cl.App.Restart(func(err error) {
		if err != nil {
			t.Fatalf("Restart: %v", err)
		}
		ok = true
	})
	run(t, cl)
	if !ok {
		t.Fatal("restart did not complete")
	}
	readFile(t, cl, fh, 0, 32*extfs.BlockSize)

	if cl.App.Module != nil {
		cl.App.Module.DropClean()
	}
	nodes := []*simnet.Node{cl.App.Node, cl.Storage.Node}
	for _, h := range cl.Clients {
		nodes = append(nodes, h.Node)
	}
	for _, n := range nodes {
		checkPoolDrained(t, n.RxPool)
		checkPoolDrained(t, n.TxPool)
		checkPoolDrained(t, n.BlkPool)
		for _, nic := range n.NICs() {
			if got := nic.Ring().Outstanding(); got != 0 {
				t.Errorf("%s %s: RX ring %d credits outstanding", n.Name, nic.Addr, got)
			}
		}
	}
	if df := netbuf.GlobalDoubleFrees(); df != 0 {
		t.Errorf("global double frees = %d", df)
	}
}

// TestFaultWritebackKillNoStaleCrossServerReads is the scale-out half of the
// durability property: server B journals and acks writes, dies mid-flush,
// and replays its WAL on restart. The replay re-announces every replayed LBN
// to the control plane, so a peer that cached the old bytes must serve the
// fresh ones afterwards — zero stale cross-server reads for acknowledged
// writes.
func TestFaultWritebackKillNoStaleCrossServerReads(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{
		Mode:          NCache,
		NumServers:    2,
		NumTargets:    2,
		RangeBlocks:   8,
		NumClients:    2,
		BlocksPerDisk: 16 * 1024,
		FaultSpec:     "kill:app1:start=40ms",
		FaultSeed:     7,
		Writeback: WritebackConfig{
			Enabled:       true,
			FlushInterval: 2 * sim.Millisecond,
		},
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	fmtr, err := extfs.Format(cl.DirectAccess(), 1024)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	if _, err := fmtr.AddFile("data.bin", 64*extfs.BlockSize, fileContent); err != nil {
		t.Fatalf("AddFile: %v", err)
	}
	if err := fmtr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := cl.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(cl.Close)
	fh := lookupFile(t, cl, "data.bin")

	scA, err := cl.NewScaleClient(cl.Clients[0])
	if err != nil {
		t.Fatalf("NewScaleClient: %v", err)
	}
	scA.SetRetransmit(faultRPCRTO, faultRPCTries)
	viaA, viaB := scA.NFS[0], scA.NFS[1]
	appB := cl.Apps[1]

	const nblocks = 16
	const span = nblocks * extfs.BlockSize

	// A caches the old bytes (buffer cache + LBN-indexed ncache entries),
	// chunked under the protocol's 32 KB READ ceiling.
	for off := 0; off < span; off += span / 2 {
		if got := readVia(t, cl, viaA, fh, uint64(off), span/2); !bytes.Equal(got, expect(uint64(off), span/2)) {
			t.Fatalf("server A served wrong initial bytes at %d", off)
		}
	}

	cl.Faults.Arm()
	ch := driveAckChain(cl, viaB, fh, nblocks, 4000)
	run(t, cl)
	cl.Faults.Quiesce()

	if ch.acks == 0 {
		t.Fatal("no write acked via B before the kill")
	}
	if !appB.crashed {
		t.Fatal("app1 did not crash")
	}

	restarted := false
	appB.Restart(func(err error) {
		if err != nil {
			t.Fatalf("Restart: %v", err)
		}
		restarted = true
	})
	run(t, cl)
	if !restarted {
		t.Fatal("restart did not complete")
	}

	// The remap/invalidate protocol must have converged with nothing
	// abandoned, and B's flush batching must announce remaps per batch,
	// not per block: far fewer messages than remapped LBNs.
	if appB.Agent.Stats.RemapsSent == 0 {
		t.Fatal("B announced no remaps")
	}
	if got, want := appB.Agent.Stats.RemapsAcked, appB.Agent.Stats.RemapsSent; got != want {
		t.Fatalf("remaps acked %d of %d", got, want)
	}
	if appB.Agent.Stats.RemapsAbandoned != 0 || cl.Control.Stats.Abandoned != 0 {
		t.Fatalf("remap protocol abandoned work: agent=%d cp=%d",
			appB.Agent.Stats.RemapsAbandoned, cl.Control.Stats.Abandoned)
	}

	// The invariant: for every block whose newest write was acked, A serves
	// the acked bytes — no stale cached copy survives the crash + replay.
	bs := extfs.BlockSize
	for block, marker := range ch.settledBlocks() {
		want := bytes.Repeat([]byte{marker}, bs)
		got := readVia(t, cl, viaA, fh, uint64(block)*uint64(bs), bs)
		if !bytes.Equal(got, want) {
			t.Fatalf("server A serves stale block %d after B's replay (want marker %#x, got %#x)",
				block, marker, got[0])
		}
	}
}

// TestScaleoutRemapBatchedPerFlush pins the control-plane batching win: one
// coalesced flush batch announces its remapped LBNs in one message, where
// the per-block flush path used to send one message per block.
func TestScaleoutRemapBatchedPerFlush(t *testing.T) {
	cl, _ := scaleCluster(t, 2, 2, "")
	fh := lookupFile(t, cl, "data.bin")
	scA, err := cl.NewScaleClient(cl.Clients[0])
	if err != nil {
		t.Fatalf("NewScaleClient: %v", err)
	}
	viaB := scA.NFS[1]
	appB := cl.Apps[1]

	const blocks = 8
	for i := 0; i < blocks; i++ {
		writeVia(t, cl, viaB, fh, uint64(i)*extfs.BlockSize,
			bytes.Repeat([]byte{0xD0 + byte(i)}, extfs.BlockSize))
	}
	if err := syncApp(t, cl, appB); err != nil {
		t.Fatalf("sync via B: %v", err)
	}
	run(t, cl)

	if appB.Agent.Stats.RemapsSent == 0 {
		t.Fatal("flush announced no remaps")
	}
	// 8 adjacent dirty blocks coalesce into one batch; with two targets the
	// batch splits into at most one extent per target. Per-block messaging
	// would send 8.
	if got := appB.Agent.Stats.RemapsSent; got > 2 {
		t.Fatalf("RemapsSent = %d messages for one %d-block flush, want per-batch fan-out (<= 2)", got, blocks)
	}
}
