package passthru

import (
	"fmt"

	"ncache/internal/blockdev"
	"ncache/internal/iscsi"
	"ncache/internal/proto/eth"
	"ncache/internal/proto/ipv4"
	"ncache/internal/proto/tcp"
	"ncache/internal/sim"
	"ncache/internal/simnet"
	"ncache/internal/storage"
)

// StorageConfig sizes the storage server (the paper's PIII-1GHz node with a
// 4-disk RAID-0).
type StorageConfig struct {
	Addr             eth.Addr
	NumDisks         int
	BlocksPerDisk    int64
	StripeUnitBlocks int
	DiskModel        blockdev.Model
	Cost             simnet.CostProfile
	LinkBandwidth    simnet.Bandwidth
	// Name and DiskPrefix label the node and its disks; empty keeps the
	// single-target testbed's "storage"/"disk" names, scale-out targets
	// pass "storage1"/"s1.disk" etc. so fault sites and metrics stay
	// distinguishable.
	Name       string
	DiskPrefix string
}

// DefaultStorageConfig mirrors the testbed: 4 IDE disks, RAID-0, gigabit.
func DefaultStorageConfig(addr eth.Addr, blocksPerDisk int64) StorageConfig {
	return StorageConfig{
		Addr:             addr,
		NumDisks:         4,
		BlocksPerDisk:    blocksPerDisk,
		StripeUnitBlocks: 16, // 64 KB stripes
		DiskModel:        blockdev.IDE2000(),
		Cost:             simnet.DefaultProfile(),
		LinkBandwidth:    simnet.Gbps,
	}
}

// StorageServer is the iSCSI storage node.
type StorageServer struct {
	Node   *simnet.Node
	Target *iscsi.Target
	Array  *storage.RAID0
	Addr   eth.Addr
	TCP    *tcp.Transport
}

// NewStorageServer builds and attaches the storage node to the fabric.
func NewStorageServer(eng *sim.Engine, nw *simnet.Network, cfg StorageConfig) (*StorageServer, error) {
	if cfg.Name == "" {
		cfg.Name = "storage"
	}
	if cfg.DiskPrefix == "" {
		cfg.DiskPrefix = "disk"
	}
	node := simnet.NewNode(eng, cfg.Name, cfg.Cost)
	if _, err := nw.Attach(node, cfg.Addr, cfg.LinkBandwidth); err != nil {
		return nil, fmt.Errorf("storage attach: %w", err)
	}
	ip := ipv4.NewStack(node)
	tcpT := tcp.NewTransport(ip)

	disks := make([]*blockdev.MemDisk, cfg.NumDisks)
	for i := range disks {
		disks[i] = blockdev.NewMemDisk(eng, fmt.Sprintf("%s%d", cfg.DiskPrefix, i), blockdev.Geometry{
			BlockSize: 4096,
			NumBlocks: cfg.BlocksPerDisk,
		}, cfg.DiskModel)
	}
	array, err := storage.NewRAID0(disks, cfg.StripeUnitBlocks)
	if err != nil {
		return nil, err
	}
	target, err := iscsi.NewTarget(node, tcpT, array)
	if err != nil {
		return nil, err
	}
	return &StorageServer{Node: node, Target: target, Array: array, Addr: cfg.Addr, TCP: tcpT}, nil
}
