// Package passthru assembles the paper's systems under test: the
// NFS-over-iSCSI pass-through server and the in-kernel static web server
// (kHTTPd), each in the three configurations the evaluation compares —
// Original (standard physical-copy data path), Baseline (the "ideal"
// modification with every regular-data copy removed, serving junk), and
// NCache (the network-centric cache with logical copying). It also provides
// the storage server and client hosts, so an experiment is one Cluster.
package passthru

// Mode selects the server's data-path configuration (§5.1).
type Mode int

// The three configurations of §5.
const (
	// Original is the unmodified server: regular data is physically
	// copied between the network stack, the buffer cache and the daemon.
	Original Mode = iota + 1
	// Baseline is the ideal zero-copy comparator: all regular-data
	// copies are simply removed and clients receive junk payloads. It
	// bounds the possible gain; data integrity is sacrificed by design.
	Baseline
	// NCache runs the network-centric buffer cache: payloads stay in
	// wire buffers, keys move between layers, and the transmit hooks
	// substitute real data back in.
	NCache
)

// String names the mode as the paper does.
func (m Mode) String() string {
	switch m {
	case Original:
		return "original"
	case Baseline:
		return "baseline"
	case NCache:
		return "ncache"
	default:
		return "unknown"
	}
}
