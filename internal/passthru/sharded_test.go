package passthru_test

import (
	"reflect"
	"testing"

	"ncache/internal/extfs"
	"ncache/internal/metrics"
	"ncache/internal/nfs"
	"ncache/internal/passthru"
	"ncache/internal/sim"
	"ncache/internal/workload"
)

// shardedContent is the deterministic content function for the smoke file.
func shardedContent(off uint64, dst []byte) {
	for i := range dst {
		dst[i] = byte((off + uint64(i)) * 2654435761 >> 16)
	}
}

// shardedRunResult is everything a sharded smoke run observes: if any of it
// varied with the worker count, the parallel engine would not be a drop-in
// replacement for its own sequential oracle.
type shardedRunResult struct {
	Ops, Bytes, Errs uint64
	CacheStats       metrics.Cache
	NetRx, NetTx     uint64
	Processed        uint64
	Now              sim.Time
}

// runShardedSmoke brings up a Workers=w cluster (every node its own shard),
// reads through one file with two client hosts, and snapshots the run.
func runShardedSmoke(t *testing.T, workers int) shardedRunResult {
	t.Helper()
	cl, err := passthru.NewCluster(passthru.ClusterConfig{
		Mode:          passthru.NCache,
		NumClients:    2,
		BlocksPerDisk: 16 * 1024,
		Workers:       workers,
	})
	if err != nil {
		t.Fatalf("NewCluster(workers=%d): %v", workers, err)
	}
	defer cl.Close()
	fmtr, err := extfs.Format(cl.Storage.Array, 1024)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	if _, err := fmtr.AddFile("data.bin", 64*extfs.BlockSize, shardedContent); err != nil {
		t.Fatalf("AddFile: %v", err)
	}
	if err := fmtr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := cl.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}

	var fh nfs.FH
	got := false
	cl.Clients[0].NFS.Lookup(nfs.RootFH(), "data.bin", func(h nfs.FH, _ nfs.Attr, err error) {
		if err != nil {
			t.Errorf("Lookup: %v", err)
		}
		fh = h
		got = true
	})
	if err := cl.Eng.Run(); err != nil {
		t.Fatalf("lookup run: %v", err)
	}
	if !got {
		t.Fatal("lookup did not complete")
	}

	clients := make([]*nfs.Client, 0, len(cl.Clients))
	for _, host := range cl.Clients {
		clients = append(clients, host.NFS)
	}
	load := &workload.NFSReadLoad{
		Clients:     clients,
		FH:          fh,
		FileSize:    64 * extfs.BlockSize,
		RequestSize: 8 * 1024,
		Pattern:     workload.HotSet,
		Concurrency: 4,
	}
	runner := &workload.Runner{
		Eng:    cl.Eng,
		Warmup: 5 * sim.Millisecond,
		Window: 40 * sim.Millisecond,
	}
	m, err := runner.Run(load, nil, nil)
	if err != nil {
		t.Fatalf("run(workers=%d): %v", workers, err)
	}
	res := shardedRunResult{
		Ops:        m.Ops,
		Bytes:      m.Bytes,
		Errs:       m.Errors,
		CacheStats: cl.App.Cache.Stats,
		Processed:  cl.Eng.Processed(),
		Now:        cl.Eng.Now(),
	}
	for _, nic := range cl.App.Node.NICs() {
		res.NetRx += nic.Stats.PacketsRx
		res.NetTx += nic.Stats.PacketsTx
	}
	// The drain must leave no buffer behind on any node, same as the
	// sequential cluster guarantees.
	for _, host := range cl.Clients {
		host.Node.RxPool.MustBeDrained()
		host.Node.TxPool.MustBeDrained()
	}
	return res
}

// TestShardedClusterDeterministic is the end-to-end determinism smoke: a
// full NFS pass-through cluster on the parallel engine produces identical
// results for any worker count, including the sequential oracle Workers=1.
func TestShardedClusterDeterministic(t *testing.T) {
	want := runShardedSmoke(t, 1)
	if want.Ops == 0 {
		t.Fatal("sharded smoke run completed no operations")
	}
	if want.Errs != 0 {
		t.Fatalf("sharded smoke run saw %d errors", want.Errs)
	}
	for _, w := range []int{2, 4} {
		got := runShardedSmoke(t, w)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverges from workers=1:\n got %+v\nwant %+v", w, got, want)
		}
	}
}
