package passthru

import (
	"bytes"
	"fmt"
	"strconv"

	"ncache/internal/extfs"
	"ncache/internal/netbuf"
	"ncache/internal/proto/tcp"
)

// HTTPPort is the web service port.
const HTTPPort = 80

// webChunk is the sendfile granularity: how much file data each
// fs-read/transmit cycle moves.
const webChunk = 64 * 1024

// WebServer is the kHTTPd analogue: an in-kernel static web server that
// serves files straight from the buffer cache with the sendfile path (one
// copy in the Original configuration; key moves under NCache/Baseline).
// Only static GETs are supported, as in the paper (§4.3).
type WebServer struct {
	srv *AppServer

	// Requests/BytesOut count completed requests and body bytes.
	Requests uint64
	BytesOut uint64
	// Errors counts requests that failed (404s, parse errors).
	Errors uint64

	// fhCache memoizes name → (ino, size), as kHTTPd's dentry lookups
	// would hit the dcache.
	fhCache map[string]webFile
}

type webFile struct {
	ino  uint32
	size uint64
}

// NewWebServer starts the web service on the app server.
func NewWebServer(s *AppServer) (*WebServer, error) {
	w := &WebServer{srv: s, fhCache: make(map[string]webFile)}
	if err := s.TCP.Listen(HTTPPort, w.accept); err != nil {
		return nil, err
	}
	return w, nil
}

// accept wires a persistent connection.
func (w *WebServer) accept(c *tcp.Conn) {
	conn := &webConn{server: w, conn: c}
	c.SetReceiver(conn.receive)
}

// webConn handles one client connection: requests are processed
// sequentially; responses stream as header + sendfile chunks.
type webConn struct {
	server *WebServer
	conn   *tcp.Conn
	reqBuf bytes.Buffer
	busy   bool
}

// receive accumulates request bytes and kicks processing.
func (wc *webConn) receive(data *netbuf.Chain) {
	_ = data.Range(0, data.Len(), func(p []byte) bool {
		wc.reqBuf.Write(p)
		return true
	})
	data.Release()
	wc.pump()
}

// pump serves the next complete request if idle.
func (wc *webConn) pump() {
	if wc.busy {
		return
	}
	raw := wc.reqBuf.Bytes()
	end := bytes.Index(raw, []byte("\r\n\r\n"))
	if end < 0 {
		return
	}
	req := string(raw[:end])
	wc.reqBuf.Next(end + 4)
	wc.busy = true
	wc.serve(req)
}

// serve processes one request line.
func (wc *webConn) serve(req string) {
	w := wc.server
	srv := w.srv
	node := srv.Node
	node.Reqs.Ops++
	node.Charge(node.Cost.HTTPOpNs, func() {
		var method, path string
		if n, err := fmt.Sscanf(req, "%s %s", &method, &path); n != 2 || err != nil || method != "GET" {
			w.Errors++
			wc.sendError(400, "Bad Request")
			return
		}
		name := path
		if len(name) > 0 && name[0] == '/' {
			name = name[1:]
		}
		if f, ok := w.fhCache[name]; ok {
			wc.sendFile(f)
			return
		}
		srv.FS.Lookup(extfs.RootIno, name, func(ino uint32, err error) {
			if err != nil {
				w.Errors++
				wc.sendError(404, "Not Found")
				return
			}
			srv.FS.Getattr(ino, func(a extfs.Attr, err error) {
				if err != nil || a.Mode != extfs.ModeFile {
					w.Errors++
					wc.sendError(404, "Not Found")
					return
				}
				f := webFile{ino: ino, size: a.Size}
				w.fhCache[name] = f
				wc.sendFile(f)
			})
		})
	})
}

// sendError emits a minimal error response and resumes.
func (wc *webConn) sendError(code int, text string) {
	body := text + "\n"
	head := "HTTP/1.0 " + strconv.Itoa(code) + " " + text +
		"\r\nContent-Length: " + strconv.Itoa(len(body)) + "\r\n\r\n" + body
	_ = wc.conn.Send([]byte(head))
	wc.busy = false
	wc.pump()
}

// sendFile streams the response header and then the file body in sendfile
// chunks, applying the NCache substitution hook to each outgoing chain.
func (wc *webConn) sendFile(f webFile) {
	w := wc.server
	srv := w.srv
	head := "HTTP/1.0 200 OK\r\nContent-Length: " +
		strconv.FormatUint(f.size, 10) + "\r\nConnection: keep-alive\r\n\r\n"
	// Headers are metadata: they go through the normal copy path and are
	// never substituted (§4.3: "packets carrying HTTP reply headers go
	// through without any action").
	if err := wc.conn.Send([]byte(head)); err != nil {
		wc.busy = false
		return
	}
	var stream func(off uint64)
	stream = func(off uint64) {
		if off >= f.size {
			w.Requests++
			srv.Node.Reqs.ReadOps++
			wc.busy = false
			wc.pump()
			return
		}
		n := webChunk
		if remaining := f.size - off; uint64(n) > remaining {
			n = int(remaining)
		}
		srv.FS.Read(f.ino, off, n, func(res *extfs.ReadResult, err error) {
			if err != nil {
				w.Errors++
				wc.busy = false
				return
			}
			chain := srv.path.replyChain(res, true)
			res.Done(srv.FS)
			if srv.Mode == NCache {
				chain = srv.Module.SubstituteMessage(chain)
			}
			got := chain.Len()
			w.BytesOut += uint64(got)
			srv.Node.Reqs.ReadBytes += uint64(got)
			if err := wc.conn.SendChain(chain); err != nil {
				wc.busy = false
				return
			}
			stream(off + uint64(got))
		})
	}
	stream(0)
}
