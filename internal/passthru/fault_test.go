package passthru

import (
	"bytes"
	"testing"

	"ncache/internal/extfs"
)

// faultCluster brings up an NCache cluster with a disarmed fault injector.
func faultCluster(t *testing.T, spec string) (*Cluster, extfs.FileSpec) {
	t.Helper()
	cl, err := NewCluster(ClusterConfig{
		Mode:          NCache,
		NumClients:    1,
		BlocksPerDisk: 16 * 1024,
		FaultSpec:     spec,
		FaultSeed:     7,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	fmtr, err := extfs.Format(cl.Storage.Array, 1024)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	fs, err := fmtr.AddFile("data.bin", 64*extfs.BlockSize, fileContent)
	if err != nil {
		t.Fatalf("AddFile: %v", err)
	}
	if err := fmtr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := cl.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return cl, fs
}

// sync flushes the server's buffer cache and returns the completion error.
func syncCache(t *testing.T, cl *Cluster) error {
	t.Helper()
	var serr error
	done := false
	cl.App.Cache.Sync(func(err error) { serr, done = err, true })
	run(t, cl)
	if !done {
		t.Fatal("sync did not complete")
	}
	return serr
}

// TestFaultFlushRetryRemapIntegrity is clause (b) of the degradation suite:
// when flush-path iSCSI writes are failed by injected transient disk errors
// and retried, the FHO→LBN remap invariants must hold — the retries carry
// the same substituted payload, the dirty entries unpin exactly once, and
// both the caches and the physical disks end up with the written bytes.
//
// The schedule rate=1:count=3 deterministically fails the first three disk
// write attempts (within the initiator's retry budget) and nothing after.
func TestFaultFlushRetryRemapIntegrity(t *testing.T) {
	cl, spec := faultCluster(t, "diskerr:disk*:rate=1:count=3")
	fh := lookupFile(t, cl, "data.bin")

	const blocks = 8
	fresh := make([][]byte, blocks)
	for i := range fresh {
		fresh[i] = bytes.Repeat([]byte{0xA0 + byte(i)}, extfs.BlockSize)
		writeFile(t, cl, fh, uint64(i)*extfs.BlockSize, fresh[i])
	}
	if cl.App.Module.Stats.Captures == 0 || cl.App.Module.PinnedBytes() == 0 {
		t.Fatalf("writes not captured as dirty FHO entries: %+v", cl.App.Module.Stats)
	}

	cl.Faults.Arm()
	if err := syncCache(t, cl); err != nil {
		t.Fatalf("sync under transient disk errors: %v", err)
	}
	cl.Faults.Quiesce()

	if cl.App.Initiator.Retries == 0 {
		t.Fatal("no iSCSI retries despite injected write errors")
	}
	var faulted uint64
	for _, d := range cl.Storage.Array.Disks() {
		faulted += d.FaultErrors
	}
	if faulted != 3 {
		t.Fatalf("injected disk errors = %d, want 3", faulted)
	}
	if got := cl.App.Module.Stats.Remaps; got < blocks {
		t.Fatalf("remaps = %d, want ≥%d (every flushed block re-indexed)", got, blocks)
	}
	if p := cl.App.Module.PinnedBytes(); p != 0 {
		t.Fatalf("%d bytes still pinned after sync (retry double-remapped or lost an entry)", p)
	}

	// Every remapped block must serve the fresh bytes through the stack...
	got := readFile(t, cl, fh, 0, blocks*extfs.BlockSize)
	for i := 0; i < blocks; i++ {
		if !bytes.Equal(got[i*extfs.BlockSize:(i+1)*extfs.BlockSize], fresh[i]) {
			t.Fatalf("block %d stale after flush retries", i)
		}
	}
	// ...and the retried writes must have landed the same bytes on disk.
	for i := 0; i < blocks; i++ {
		if !bytes.Equal(cl.Storage.Array.PeekBlock(spec.StartLBN+int64(i)), fresh[i]) {
			t.Fatalf("disk block %d does not hold the flushed payload", i)
		}
	}
}

// TestFaultFlushGivesUpCleanly checks the failure path terminates: with
// every disk write erroring forever, the initiator exhausts its retry
// budget and Sync reports the error instead of hanging or corrupting state.
func TestFaultFlushGivesUpCleanly(t *testing.T) {
	cl, _ := faultCluster(t, "diskerr:disk*:rate=1")
	fh := lookupFile(t, cl, "data.bin")
	writeFile(t, cl, fh, 0, bytes.Repeat([]byte{0x5A}, extfs.BlockSize))

	cl.Faults.Arm()
	err := syncCache(t, cl)
	cl.Faults.Quiesce()
	if err == nil {
		t.Fatal("sync succeeded with a 100% disk error rate")
	}
	if cl.App.Initiator.Retries == 0 {
		t.Fatal("initiator gave up without retrying")
	}
}
