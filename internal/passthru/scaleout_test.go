package passthru

import (
	"bytes"
	"testing"

	"ncache/internal/extfs"
	"ncache/internal/netbuf"
	"ncache/internal/nfs"
	"ncache/internal/simnet"
)

// scaleCluster brings up an N-server × M-target NCache cluster with one
// preformatted file and a disarmed fault injector.
func scaleCluster(t *testing.T, servers, targets int, faultSpec string) (*Cluster, extfs.FileSpec) {
	t.Helper()
	return scaleClusterW(t, servers, targets, faultSpec, 0)
}

// scaleClusterW is scaleCluster on the parallel engine (workers > 0 shards
// the cluster one node per shard; 0 keeps the classic sequential engine).
func scaleClusterW(t *testing.T, servers, targets int, faultSpec string, workers int) (*Cluster, extfs.FileSpec) {
	t.Helper()
	cl, err := NewCluster(ClusterConfig{
		Mode:          NCache,
		NumServers:    servers,
		NumTargets:    targets,
		RangeBlocks:   8, // small ranges so one file spans both targets
		NumClients:    2,
		BlocksPerDisk: 16 * 1024,
		FaultSpec:     faultSpec,
		FaultSeed:     7,
		Workers:       workers,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	fmtr, err := extfs.Format(cl.DirectAccess(), 1024)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	fs, err := fmtr.AddFile("data.bin", 64*extfs.BlockSize, fileContent)
	if err != nil {
		t.Fatalf("AddFile: %v", err)
	}
	if err := fmtr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := cl.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(cl.Close)
	return cl, fs
}

// readVia reads through a specific front-end server's client.
func readVia(t *testing.T, cl *Cluster, c *nfs.Client, fh nfs.FH, off uint64, n int) []byte {
	t.Helper()
	var data []byte
	c.Read(fh, off, n, func(ch *netbuf.Chain, _ nfs.Attr, err error) {
		if err != nil {
			t.Fatalf("Read via %v: %v", c, err)
		}
		data = ch.Flatten()
		ch.Release()
	})
	run(t, cl)
	return data
}

// writeVia writes through a specific front-end server's client.
func writeVia(t *testing.T, cl *Cluster, c *nfs.Client, fh nfs.FH, off uint64, p []byte) {
	t.Helper()
	okd := false
	c.WriteBytes(fh, off, p, func(n int, _ nfs.Attr, err error) {
		if err != nil {
			t.Fatalf("Write: %v", err)
		}
		if n != len(p) {
			t.Fatalf("short write: %d", n)
		}
		okd = true
	})
	run(t, cl)
	if !okd {
		t.Fatal("write did not complete")
	}
}

// syncApp flushes one server's buffer cache to completion.
func syncApp(t *testing.T, cl *Cluster, app *AppServer) error {
	t.Helper()
	var serr error
	done := false
	app.Cache.Sync(func(err error) { serr, done = err, true })
	run(t, cl)
	if !done {
		t.Fatal("sync did not complete")
	}
	return serr
}

// testRemapInvariant drives the cross-server staleness scenario: server A
// caches blocks (by LBN, via reads), server B dirties and flushes the same
// blocks (FHO→LBN re-indexing on flush). After the remap protocol drains,
// A must serve the new bytes — a stale cached mapping surviving the remap
// is the bug the epoch-stamped invalidation protocol exists to prevent.
func testRemapInvariant(t *testing.T, faultSpec string) {
	cl, _ := scaleCluster(t, 2, 2, faultSpec)
	fh := lookupFile(t, cl, "data.bin")

	scA, err := cl.NewScaleClient(cl.Clients[0])
	if err != nil {
		t.Fatalf("NewScaleClient: %v", err)
	}
	viaA, viaB := scA.NFS[0], scA.NFS[1]
	appA, appB := cl.Apps[0], cl.Apps[1]

	const blocks = 8
	const span = blocks * extfs.BlockSize

	// A caches the old bytes (buffer cache + LBN-indexed ncache entries);
	// so does B.
	old := readVia(t, cl, viaA, fh, 0, span)
	if !bytes.Equal(old, expect(0, span)) {
		t.Fatalf("server A served wrong initial bytes")
	}
	if got := readVia(t, cl, viaB, fh, 0, span); !bytes.Equal(got, old) {
		t.Fatalf("server B disagrees with A before the write")
	}

	if cl.Faults != nil {
		cl.Faults.Arm()
	}

	// B overwrites every block and flushes: the write-out re-indexes the
	// dirty FHO entries by LBN and announces the remap only after the
	// iSCSI writes commit.
	fresh := make([][]byte, blocks)
	for i := range fresh {
		fresh[i] = bytes.Repeat([]byte{0xC0 + byte(i)}, extfs.BlockSize)
		writeVia(t, cl, viaB, fh, uint64(i)*extfs.BlockSize, fresh[i])
	}
	if err := syncApp(t, cl, appB); err != nil {
		t.Fatalf("sync via B: %v", err)
	}
	// Let retried remaps/invalidations drain fully before judging state.
	run(t, cl)
	if cl.Faults != nil {
		cl.Faults.Quiesce()
		run(t, cl)
	}

	if appB.Agent.Stats.RemapsSent == 0 {
		t.Fatal("flush announced no remaps")
	}
	if got, want := appB.Agent.Stats.RemapsAcked, appB.Agent.Stats.RemapsSent; got != want {
		t.Fatalf("remaps acked %d of %d", got, want)
	}
	if appB.Agent.Stats.RemapsAbandoned != 0 || cl.Control.Stats.Abandoned != 0 {
		t.Fatalf("remap protocol abandoned work: agent=%d cp=%d",
			appB.Agent.Stats.RemapsAbandoned, cl.Control.Stats.Abandoned)
	}
	if appA.Agent.Stats.InvalidationsApplied == 0 {
		t.Fatal("server A applied no invalidations")
	}
	if faultSpec != "" {
		retried := appB.Agent.Stats.RemapRetries + cl.Control.Stats.InvalidationResends
		if retried == 0 {
			t.Fatal("frame loss injected but no remap/invalidation retries observed")
		}
		t.Logf("under %q: remap retries=%d invalidation resends=%d dups=%d",
			faultSpec, appB.Agent.Stats.RemapRetries,
			cl.Control.Stats.InvalidationResends, appA.Agent.Stats.InvalidationDups)
	}

	// The invariant: A serves the new bytes — no stale FHO→LBN mapping
	// (or stale buffer-cache block) survives the remap.
	got := readVia(t, cl, viaA, fh, 0, span)
	for i := 0; i < blocks; i++ {
		if !bytes.Equal(got[i*extfs.BlockSize:(i+1)*extfs.BlockSize], fresh[i]) {
			t.Fatalf("server A served stale block %d after the remap", i)
		}
	}
	// And B agrees with itself, trivially fresh.
	if got := readVia(t, cl, viaB, fh, 0, span); !bytes.Equal(got[:extfs.BlockSize], fresh[0]) {
		t.Fatalf("server B lost its own write")
	}
}

func TestScaleoutRemapInvariant(t *testing.T) {
	testRemapInvariant(t, "")
}

// TestScaleoutRemapInvariantUnderFrameLoss re-runs the staleness scenario
// with frames dropped on the control-plane node's links: remaps and
// invalidations must be retried (idempotently — duplicate deliveries
// re-ack without re-applying) and still converge to the fresh bytes.
func TestScaleoutRemapInvariantUnderFrameLoss(t *testing.T) {
	testRemapInvariant(t, "drop:cp*:rate=0.25")
}

// TestScaleoutPoolsDrain is the scale-out leak check behind the CI
// NCACHE_NETBUF_DEBUG pass: after routed traffic, cross-server flushes and
// the remap/invalidate exchange, every node in the 2×2 cluster — both
// front-ends, both targets, the control-plane node and the clients — must
// return every pooled buffer.
func TestScaleoutPoolsDrain(t *testing.T) {
	cl, _ := scaleCluster(t, 2, 2, "")
	fh := lookupFile(t, cl, "data.bin")
	scA, err := cl.NewScaleClient(cl.Clients[0])
	if err != nil {
		t.Fatalf("NewScaleClient: %v", err)
	}

	// Routed reads (cold route cache exercises the resolver), direct reads
	// via both servers, writes and flushes via both servers.
	routedRead := func(off uint64, n int) {
		scA.Route(fh, func(c *nfs.Client, err error) {
			if err != nil {
				t.Errorf("route: %v", err)
				return
			}
			c.Read(fh, off, n, func(ch *netbuf.Chain, _ nfs.Attr, err error) {
				if err != nil {
					t.Errorf("routed read: %v", err)
					return
				}
				ch.Release()
			})
		})
	}
	routedRead(0, 16384)
	routedRead(32768, 16384)
	run(t, cl)
	for i, c := range scA.NFS {
		readVia(t, cl, c, fh, uint64(i)*8192, 16384)
		writeVia(t, cl, c, fh, uint64(i)*8192, bytes.Repeat([]byte{byte(0x30 + i)}, 8192))
	}
	for _, app := range cl.Apps {
		if err := syncApp(t, cl, app); err != nil {
			t.Fatalf("sync: %v", err)
		}
	}
	run(t, cl)

	for _, app := range cl.Apps {
		if app.Module != nil {
			app.Module.DropClean()
		}
		if app.InvalDropGiveups != 0 {
			t.Errorf("%s: %d invalidations gave up on pinned blocks", app.Node.Name, app.InvalDropGiveups)
		}
	}
	nodes := []*simnet.Node{cl.Control.Node()}
	for _, app := range cl.Apps {
		nodes = append(nodes, app.Node)
	}
	for _, st := range cl.Storages {
		nodes = append(nodes, st.Node)
	}
	for _, h := range cl.Clients {
		nodes = append(nodes, h.Node)
	}
	for _, n := range nodes {
		checkPoolDrained(t, n.RxPool)
		checkPoolDrained(t, n.TxPool)
		checkPoolDrained(t, n.BlkPool)
		for _, nic := range n.NICs() {
			if got := nic.Ring().Outstanding(); got != 0 {
				t.Errorf("%s %s: RX ring %d credits outstanding", n.Name, nic.Addr, got)
			}
		}
	}
	if df := netbuf.GlobalDoubleFrees(); df != 0 {
		t.Errorf("global double frees = %d", df)
	}
}

// TestScaleoutPoolsDrainParallelFaults is the parallel-engine leak check
// the determinism harness gates on: a Workers=4 sharded 2×2 cluster under
// injected frame loss — datagram RPC retransmission, TCP loss recovery and
// the remap protocol all crossing shards — must still return every pooled
// buffer and every RX-ring credit on every node after the drain.
func TestScaleoutPoolsDrainParallelFaults(t *testing.T) {
	cl, _ := scaleClusterW(t, 2, 2, "drop:app*:rate=0.05", 4)
	fh := lookupFile(t, cl, "data.bin")
	scA, err := cl.NewScaleClient(cl.Clients[0])
	if err != nil {
		t.Fatalf("NewScaleClient: %v", err)
	}
	scA.SetRetransmit(faultRPCRTO, faultRPCTries)
	cl.Faults.Arm()

	routedRead := func(off uint64, n int) {
		scA.Route(fh, func(c *nfs.Client, err error) {
			if err != nil {
				t.Errorf("route: %v", err)
				return
			}
			c.Read(fh, off, n, func(ch *netbuf.Chain, _ nfs.Attr, err error) {
				if err != nil {
					t.Errorf("routed read: %v", err)
					return
				}
				ch.Release()
			})
		})
	}
	routedRead(0, 16384)
	routedRead(32768, 16384)
	run(t, cl)
	for i, c := range scA.NFS {
		readVia(t, cl, c, fh, uint64(i)*8192, 16384)
		writeVia(t, cl, c, fh, uint64(i)*8192, bytes.Repeat([]byte{byte(0x40 + i)}, 8192))
	}
	for _, app := range cl.Apps {
		if err := syncApp(t, cl, app); err != nil {
			t.Fatalf("sync: %v", err)
		}
	}
	cl.Faults.Quiesce()
	run(t, cl)

	var injected uint64
	for _, r := range cl.Faults.Report() {
		injected += r.Injected
	}
	if injected == 0 {
		t.Error("the injector dropped no frames; the faulted phase did not run")
	}
	_, _, _, _, aborted := cl.TCPCounters()
	if aborted != 0 {
		t.Errorf("loss recovery aborted %d connections", aborted)
	}

	for _, app := range cl.Apps {
		if app.Module != nil {
			app.Module.DropClean()
		}
	}
	nodes := []*simnet.Node{cl.Control.Node()}
	for _, app := range cl.Apps {
		nodes = append(nodes, app.Node)
	}
	for _, st := range cl.Storages {
		nodes = append(nodes, st.Node)
	}
	for _, h := range cl.Clients {
		nodes = append(nodes, h.Node)
	}
	for _, n := range nodes {
		checkPoolDrained(t, n.RxPool)
		checkPoolDrained(t, n.TxPool)
		checkPoolDrained(t, n.BlkPool)
		for _, nic := range n.NICs() {
			if got := nic.Ring().Outstanding(); got != 0 {
				t.Errorf("%s %s: RX ring %d credits outstanding", n.Name, nic.Addr, got)
			}
		}
	}
	if df := netbuf.GlobalDoubleFrees(); df != 0 {
		t.Errorf("global double frees = %d", df)
	}
}
