package passthru

import (
	"encoding/binary"
	"fmt"

	"ncache/internal/buffercache"
	"ncache/internal/controlplane"
	"ncache/internal/extfs"
	"ncache/internal/iscsi"
	"ncache/internal/lkey"
	"ncache/internal/metrics"
	"ncache/internal/ncache"
	"ncache/internal/netbuf"
	"ncache/internal/nfs"
	"ncache/internal/proto/eth"
	"ncache/internal/proto/ipv4"
	"ncache/internal/proto/tcp"
	"ncache/internal/proto/udp"
	"ncache/internal/sim"
	"ncache/internal/simnet"
	"ncache/internal/storage"
	"ncache/internal/trace"
	"ncache/internal/wal"
)

// WritebackConfig enables the asynchronous write-back pipeline: NFS WRITEs
// are journaled to a write-ahead log and acknowledged at group commit, while
// a batching flusher coalesces dirty blocks into large scatter-gather iSCSI
// writes behind the ack. Zero value = the classic synchronous path.
type WritebackConfig struct {
	Enabled bool
	// WriteThrough keeps the WAL machinery off even when Enabled is set —
	// the equal-durability comparison arm: every aligned WRITE applies and
	// syncs before its ack.
	WriteThrough bool
	// CommitInterval / CommitBytes / CommitLatency tune the WAL's group
	// commit (zero = wal package defaults).
	CommitInterval sim.Duration
	CommitBytes    int
	CommitLatency  sim.Duration
	// FlushInterval is the background flusher period (0 = 500 µs).
	FlushInterval sim.Duration
	// MaxBatchBlocks caps one coalesced flush write (0 = 64).
	MaxBatchBlocks int
	// DirtyHighBlocks / DirtyLowBlocks are the dirty-memory watermarks:
	// admission stalls at high and resumes at low (0 = FSCacheBlocks/4
	// and high/2).
	DirtyHighBlocks int
	DirtyLowBlocks  int
}

// ServerConfig sizes the pass-through application server.
type ServerConfig struct {
	Mode        Mode
	Addrs       []eth.Addr // one NIC per address (Fig 5(b) uses two)
	StorageAddr eth.Addr
	// StorageAddrs lists every iSCSI target for a sharded backend; empty
	// means the single target at StorageAddr. Targets() routes blocks.
	StorageAddrs []eth.Addr
	// Targets places LBN ranges onto StorageAddrs (nil = single target).
	Targets *controlplane.TargetMap
	// MirrorAddrs lists additional replica targets per entry of
	// StorageAddrs: MirrorAddrs[t] are target t's extra mirror arms.
	// Empty (or a short list) means the corresponding target is a plain
	// single-arm volume.
	MirrorAddrs [][]eth.Addr
	// ArmPolicy selects which healthy mirror arm serves reads.
	ArmPolicy storage.Policy
	// ArmQuorum is the mirror write quorum (0 = 1).
	ArmQuorum int
	// Breaker tunes the per-arm circuit breaker (zero values = defaults).
	Breaker storage.BreakerConfig
	// ControlAddr, when nonzero, is the control-plane service this server
	// registers with (scale-out clusters); ServerIndex is its protocol ID.
	ControlAddr eth.Addr
	ServerIndex int
	// Name labels the node ("app" when empty — the single-server testbed).
	Name string
	// FSCacheBlocks bounds the file-system buffer cache. The paper keeps
	// it small under NCache to control double buffering (§3.4).
	FSCacheBlocks int
	// NCacheBytes sizes the network-centric cache (NCache mode only).
	NCacheBytes int64
	// DisableRemap is the remapping ablation switch.
	DisableRemap  bool
	Cost          simnet.CostProfile
	LinkBandwidth simnet.Bandwidth
	// EnableWeb starts the kHTTPd service alongside NFS.
	EnableWeb bool
	// Writeback configures the asynchronous dirty-data pipeline.
	Writeback WritebackConfig
}

// DefaultServerConfig mirrors the testbed's application server.
func DefaultServerConfig(mode Mode, addr, storage eth.Addr) ServerConfig {
	cfg := ServerConfig{
		Mode:          mode,
		Addrs:         []eth.Addr{addr},
		StorageAddr:   storage,
		FSCacheBlocks: 32768, // 128 MB page cache
		Cost:          simnet.DefaultProfile(),
		LinkBandwidth: simnet.Gbps,
	}
	if mode == NCache {
		// Small FS cache, large network-centric cache (§3.4/§4.1).
		cfg.FSCacheBlocks = 4096 // 16 MB
		cfg.NCacheBytes = 512 << 20
	}
	return cfg
}

// AppServer is the pass-through server under test.
type AppServer struct {
	Node *simnet.Node
	Mode Mode
	UDP  *udp.Transport
	TCP  *tcp.Transport
	// Initiator is the first (or only) target's primary session;
	// Initiators flattens every session — targets in order, each target's
	// mirror arms in order — for fault wiring and stats.
	Initiator  *iscsi.Initiator
	Initiators []*iscsi.Initiator
	// Volume is the storage lower tier: per-target single-arm or mirror
	// volumes, sharded by the TargetMap when the backend has several
	// targets. Everything above (buffer cache, WAL replay) writes here.
	Volume storage.Volume
	// Mirrors holds each target's mirror volume (nil entries for
	// single-arm targets), for health stats and tests.
	Mirrors []*storage.Mirror
	Cache   *buffercache.Cache
	FS      *extfs.FS
	// NFS is one protocol server facing both transports: datagram RPC over
	// UDP and record-marked RPC over TCP (the transport-comparison
	// extension). One tx filter covers both.
	NFS    *nfs.Server
	Web    *WebServer
	Module *ncache.Module
	// Agent is this server's control-plane endpoint (nil outside
	// scale-out clusters).
	Agent *controlplane.Agent
	// WAL journals write intent ahead of the ack when the write-back
	// pipeline is on (nil otherwise); WB carries its shared counters.
	WAL *wal.Log
	WB  *metrics.Writeback

	// InvalDeferred / InvalDropGiveups count remote-invalidation retries
	// against pinned buffer-cache blocks and the (pathological) give-ups.
	InvalDeferred    uint64
	InvalDropGiveups uint64

	cfg          ServerConfig
	path         *dataPath
	connectAddrs []eth.Addr
	crashed      bool
}

// NewAppServer builds and attaches the application server; Start completes
// the iSCSI login and mount.
func NewAppServer(eng *sim.Engine, nw *simnet.Network, cfg ServerConfig) (*AppServer, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("passthru: server needs at least one address")
	}
	name := cfg.Name
	if name == "" {
		name = "app"
	}
	node := simnet.NewNode(eng, name, cfg.Cost)
	for _, a := range cfg.Addrs {
		if _, err := nw.Attach(node, a, cfg.LinkBandwidth); err != nil {
			return nil, fmt.Errorf("app attach: %w", err)
		}
	}
	ip := ipv4.NewStack(node)
	udpT := udp.NewTransport(ip)
	tcpT := tcp.NewTransport(ip)
	storageAddrs := cfg.StorageAddrs
	if len(storageAddrs) == 0 {
		storageAddrs = []eth.Addr{cfg.StorageAddr}
	}
	// One session per (target, arm): sessions[t][0] talks to the primary
	// target, sessions[t][1:] to its mirror arms. connectAddrs parallels
	// the flat Initiators list for login.
	sessions := make([][]*iscsi.Initiator, len(storageAddrs))
	var flat []*iscsi.Initiator
	var connectAddrs []eth.Addr
	for t, addr := range storageAddrs {
		armAddrs := []eth.Addr{addr}
		if t < len(cfg.MirrorAddrs) {
			armAddrs = append(armAddrs, cfg.MirrorAddrs[t]...)
		}
		for _, aa := range armAddrs {
			ini := iscsi.NewInitiator(node, tcpT.DialConn, cfg.Addrs[0])
			sessions[t] = append(sessions[t], ini)
			flat = append(flat, ini)
			connectAddrs = append(connectAddrs, aa)
		}
	}

	s := &AppServer{
		Node:         node,
		Mode:         cfg.Mode,
		UDP:          udpT,
		TCP:          tcpT,
		Initiator:    flat[0],
		Initiators:   flat,
		cfg:          cfg,
		connectAddrs: connectAddrs,
	}
	s.cfg.StorageAddrs = storageAddrs
	if cfg.Mode == NCache {
		s.Module = ncache.New(node, ncache.Config{
			CapacityBytes: cfg.NCacheBytes,
			BlockSize:     extfs.BlockSize,
			DisableRemap:  cfg.DisableRemap,
		})
	}
	// junkHook is the Baseline comparator's receive filter: regular-data
	// payloads are dropped at the socket boundary; identity-free junk
	// flows instead.
	junkHook := func(lba int64, blocks int, data *netbuf.Chain) *netbuf.Chain {
		if blocks <= 0 {
			return data
		}
		data.Release()
		out := netbuf.NewChain()
		for i := 0; i < blocks; i++ {
			out.AppendChain(lkey.StampChainPool(node.BlkPool, lkey.Key{}, extfs.BlockSize))
		}
		return out
	}
	// Build the per-target volumes. A single-arm target keeps its hooks on
	// the initiator — byte-identical to the pre-volume path. A mirrored
	// target hoists them to the volume so they run exactly once per
	// logical I/O regardless of arm fan-out (the write hook remaps
	// FHO->LBN entries and must not run per arm).
	s.Mirrors = make([]*storage.Mirror, len(storageAddrs))
	vols := make([]storage.Volume, len(storageAddrs))
	for t := range storageAddrs {
		if len(sessions[t]) == 1 {
			ini := sessions[t][0]
			switch cfg.Mode {
			case NCache:
				ini.SetReadHook(s.Module.CaptureLBN)
				ini.SetWriteHook(s.Module.WriteOut)
				ini.SetReadCache(s.Module.ServeRead)
			case Baseline:
				ini.SetReadHook(junkHook)
			}
			vols[t] = storage.NewSingleArm(fmt.Sprintf("t%d", t), ini)
		} else {
			names := make([]string, len(sessions[t]))
			arms := make([]storage.Initiator, len(sessions[t]))
			for a, ini := range sessions[t] {
				names[a] = fmt.Sprintf("t%dm%d", t, a)
				arms[a] = ini
			}
			m, err := storage.NewMirror(node, names, arms, storage.MirrorConfig{
				Quorum:  cfg.ArmQuorum,
				Policy:  cfg.ArmPolicy,
				Breaker: cfg.Breaker,
			})
			if err != nil {
				return nil, err
			}
			switch cfg.Mode {
			case NCache:
				m.SetReadHook(s.Module.CaptureLBN)
				m.SetWriteHook(s.Module.WriteOut)
				m.SetReadCache(s.Module.ServeRead)
			case Baseline:
				m.SetReadHook(junkHook)
			}
			s.Mirrors[t] = m
			vols[t] = m
		}
		// The control-plane decorator announces each extent's remapped
		// LBNs after its write commits, per target — below the shard
		// router, preserving the pre-volume announcement granularity.
		vols[t] = &agentVolume{Volume: vols[t], srv: s}
	}
	if len(vols) == 1 {
		s.Volume = vols[0]
	} else {
		tm := cfg.Targets
		s.Volume = storage.NewSharded(vols, func(lbn int64, blocks int) []storage.Extent {
			exts := tm.Split(lbn, blocks)
			out := make([]storage.Extent, len(exts))
			for i, e := range exts {
				out[i] = storage.Extent{Member: e.Target, LBN: e.LBN, Blocks: e.Blocks}
			}
			return out
		})
	}
	s.path = &dataPath{mode: cfg.Mode, node: node, mod: s.Module, bs: extfs.BlockSize}
	if cfg.ControlAddr != 0 {
		s.Agent = controlplane.NewAgent(node, udpT.DialConn, cfg.Addrs[0], cfg.ControlAddr, cfg.ServerIndex)
		s.Agent.SetInvalidate(s.ApplyInvalidate)
		if s.Module != nil {
			s.Module.SetRemapObserver(s.Agent.ObserveRemap)
		}
	}
	return s, nil
}

// ApplyInvalidate drops remotely-remapped blocks from this server's caches
// (the control-plane invalidation path). NCache entries go at once; a
// buffer-cache block that is pinned or mid-flush is retried briefly — the
// pin is a transient read in flight, and the retry preserves "no stale
// mapping outlives the remap ack" without wedging the protocol.
func (s *AppServer) ApplyInvalidate(lbns []int64) {
	for _, lbn := range lbns {
		s.dropInvalid(lbn, 0)
	}
	s.Node.Charge(sim.Duration(len(lbns))*s.Node.Cost.NCacheMgmtNs, nil)
}

// invalDropTries bounds the pinned-block retry loop.
const invalDropTries = 8

func (s *AppServer) dropInvalid(lbn int64, tries int) {
	if s.Module != nil {
		s.Module.InvalidateLBN(lbn)
	}
	if s.Cache == nil || s.Cache.Drop(lbn) {
		return
	}
	if tries >= invalDropTries {
		s.InvalDropGiveups++
		return
	}
	s.InvalDeferred++
	s.Node.Eng.Schedule(sim.Millisecond, func() { s.dropInvalid(lbn, tries+1) })
}

// Start logs in to the storage targets, mounts the file system, and brings
// up the NFS (and optionally web) services; in a scale-out cluster it then
// registers with the control plane.
func (s *AppServer) Start(done func(error)) {
	s.connectTargets(0, func(err error) {
		if err != nil {
			done(fmt.Errorf("iscsi connect: %w", err))
			return
		}
		s.startServices(done)
	})
}

// connectTargets logs in to every iSCSI session (targets and their mirror
// arms) in order.
func (s *AppServer) connectTargets(i int, done func(error)) {
	if i >= len(s.Initiators) {
		done(nil)
		return
	}
	s.Initiators[i].Connect(s.connectAddrs[i], func(err error) {
		if err != nil {
			done(err)
			return
		}
		s.connectTargets(i+1, done)
	})
}

// startServices mounts the file system and brings up the protocol servers.
func (s *AppServer) startServices(done func(error)) {
	s.Cache = buffercache.New(s.Node, s.Volume, s.cfg.FSCacheBlocks)
	s.Cache.LogicalCopyNs = s.Node.Cost.LogicalCopyNs
	if wbc := s.cfg.Writeback; wbc.Enabled {
		s.WB = &metrics.Writeback{}
		s.Cache.SetWritebackStats(s.WB)
		flushEvery := wbc.FlushInterval
		if flushEvery <= 0 {
			flushEvery = 500 * sim.Microsecond
		}
		high := wbc.DirtyHighBlocks
		if high <= 0 {
			high = s.cfg.FSCacheBlocks / 4
		}
		s.Cache.EnableFlusher(buffercache.FlusherConfig{
			Interval:        flushEvery,
			MaxBatchBlocks:  wbc.MaxBatchBlocks,
			HighWaterBlocks: high,
			LowWaterBlocks:  wbc.DirtyLowBlocks,
		})
		if !wbc.WriteThrough {
			s.WAL = wal.New(s.Node.Eng, wal.Config{
				CommitInterval: wbc.CommitInterval,
				CommitBytes:    wbc.CommitBytes,
				CommitLatency:  wbc.CommitLatency,
			}, s.WB)
			// Each landed batch retires the WAL prefix whose blocks are
			// all clean again.
			s.Cache.SetFlushObserver(func() { s.WAL.Truncate(s.Cache.IsDirty) })
		}
	}
	extfs.Mount(s.Node, s.Cache, func(fs *extfs.FS, err error) {
		if err != nil {
			done(fmt.Errorf("mount: %w", err))
			return
		}
		s.FS = fs
		fs.SetMaterializer(s.path.materialize)
		backend := &fsBackend{srv: s}
		nfsSrv := nfs.NewServer(s.Node, backend)
		if err := nfsSrv.ServeUDP(s.UDP); err != nil {
			done(err)
			return
		}
		if err := nfsSrv.ServeStream(s.TCP); err != nil {
			done(err)
			return
		}
		if s.Mode == NCache {
			nfsSrv.SetTxFilter(s.Module.SubstituteMessage)
		}
		s.NFS = nfsSrv
		if s.cfg.EnableWeb {
			web, err := NewWebServer(s)
			if err != nil {
				done(err)
				return
			}
			s.Web = web
		}
		if s.Agent != nil {
			s.Agent.Register(func(err error) {
				if err != nil {
					done(fmt.Errorf("controlplane register: %w", err))
					return
				}
				done(nil)
			})
			return
		}
		done(nil)
	})
}

// Crash models a deterministic process kill of the application server: the
// buffer cache, NCache module, and the WAL's volatile state (staged and
// in-flight groups — their acks never fired) vanish; durable WAL groups
// survive for replay. In-flight network and disk I/O issued before the kill
// completes normally — the crash is a process death, not a partition — but
// generation guards discard the completions and the crashed flag drops every
// later NFS request on the floor, so clients fall back to RPC retransmit
// until Restart.
func (s *AppServer) Crash() {
	if s.crashed {
		return
	}
	s.crashed = true
	if s.Cache != nil {
		s.Cache.Reset()
	}
	if s.Module != nil {
		s.Module.Reset()
	}
	if s.WAL != nil {
		s.WAL.Crash()
	}
}

// Restart recovers a crashed server: every durable WAL record is replayed to
// storage strictly in sequence order (record N's writes land before N+1
// issues, preserving overlap ordering), its payload verified against the
// journaled checksum. Replay writes raw bytes — the FHO cache died with the
// process — and once all land, the replayed LBNs are announced to the
// control plane so no peer serves a pre-crash version of them, the log is
// truncated, and the server resumes serving. The iSCSI sessions and mounted
// super-block are reused (a real restart would re-login and re-read the
// super-block; neither changes any modeled outcome).
func (s *AppServer) Restart(done func(error)) {
	if !s.crashed {
		done(fmt.Errorf("passthru: restart of a live server"))
		return
	}
	if s.WAL == nil {
		s.crashed = false
		done(nil)
		return
	}
	recs := s.WAL.DurableRecords()
	bs := extfs.BlockSize
	var replayed []int64
	var next func(i int)
	next = func(i int) {
		if i >= len(recs) {
			if s.Agent != nil && len(replayed) > 0 {
				s.Agent.SendRemap(replayed)
			}
			s.WAL.Truncate(func(int64) bool { return false })
			s.crashed = false
			done(nil)
			return
		}
		rec := recs[i]
		if netbuf.Sum(rec.Data) != rec.Sum {
			done(fmt.Errorf("passthru: wal record %d fails its checksum on replay", rec.Seq))
			return
		}
		// Coalesce the record's adjacent LBNs into runs and rewrite them.
		var writeRun func(start int)
		writeRun = func(start int) {
			if start >= len(rec.LBNs) {
				next(i + 1)
				return
			}
			end := start + 1
			for end < len(rec.LBNs) && rec.LBNs[end] == rec.LBNs[end-1]+1 {
				end++
			}
			chain, err := s.Node.TxPool.GetChain(rec.Data[start*bs : end*bs])
			if err != nil {
				done(err)
				return
			}
			replayed = append(replayed, rec.LBNs[start:end]...)
			s.Volume.WriteAt(rec.LBNs[start], chain, false, func(err error) {
				if err != nil {
					done(err)
					return
				}
				writeRun(end)
			})
		}
		writeRun(0)
	}
	next(0)
}

// agentVolume decorates one target's volume with the control-plane remap
// handshake: the write hook runs synchronously inside WriteAt, so the LBNs
// the cache module remapped within this write are staged by the time
// WriteAt returns, and they are announced only after the write carrying the
// data committed — a peer acting on the invalidation can never re-read
// stale bytes from storage. Wrapping per target (below the shard router)
// preserves the pre-volume per-extent announcement granularity.
type agentVolume struct {
	storage.Volume
	srv *AppServer
}

func (v *agentVolume) WriteAt(lbn int64, data *netbuf.Chain, meta bool, done func(error)) {
	srv := v.srv
	ag := srv.Agent
	if ag == nil {
		v.Volume.WriteAt(lbn, data, meta, done)
		return
	}
	var staged []int64
	v.Volume.WriteAt(lbn, data, meta, func(err error) {
		if err == nil && len(staged) > 0 && !srv.crashed {
			ag.SendRemap(staged)
		}
		done(err)
	})
	staged = ag.TakeStaged()
}

// inoFH converts an inode number to a file handle.
func inoFH(ino uint32) nfs.FH {
	var fh nfs.FH
	binary.BigEndian.PutUint32(fh[0:4], ino)
	return fh
}

// fhIno extracts the inode number.
func fhIno(fh nfs.FH) uint32 { return binary.BigEndian.Uint32(fh[0:4]) }

// attrOf converts file system attributes to protocol attributes.
func attrOf(a extfs.Attr) nfs.Attr {
	t := nfs.TypeFile
	if a.Mode == extfs.ModeDir {
		t = nfs.TypeDir
	}
	return nfs.Attr{Type: t, Links: uint32(a.Links), Size: a.Size}
}

// fsBackend implements the NFS backend over the mounted file system with
// the mode's data path.
type fsBackend struct {
	srv *AppServer
}

var _ nfs.Backend = (*fsBackend)(nil)

func (b *fsBackend) Getattr(fh nfs.FH, done func(nfs.Attr, uint32)) {
	if b.srv.crashed {
		return
	}
	b.srv.FS.Getattr(fhIno(fh), func(a extfs.Attr, err error) {
		if err != nil {
			done(nfs.Attr{}, mapErr(err))
			return
		}
		done(attrOf(a), nfs.OK)
	})
}

func (b *fsBackend) Setattr(fh nfs.FH, size uint64, done func(nfs.Attr, uint32)) {
	if b.srv.crashed {
		return
	}
	ino := fhIno(fh)
	b.srv.FS.Truncate(ino, size, func(err error) {
		if err != nil {
			done(nfs.Attr{}, mapErr(err))
			return
		}
		b.Getattr(fh, done)
	})
}

func (b *fsBackend) Lookup(dir nfs.FH, name string, done func(nfs.FH, nfs.Attr, uint32)) {
	if b.srv.crashed {
		return
	}
	b.srv.FS.Lookup(fhIno(dir), name, func(ino uint32, err error) {
		if err != nil {
			done(nfs.FH{}, nfs.Attr{}, mapErr(err))
			return
		}
		b.srv.FS.Getattr(ino, func(a extfs.Attr, err error) {
			if err != nil {
				done(nfs.FH{}, nfs.Attr{}, mapErr(err))
				return
			}
			done(inoFH(ino), attrOf(a), nfs.OK)
		})
	})
}

func (b *fsBackend) Read(fh nfs.FH, off uint64, n int, done func(*netbuf.Chain, nfs.Attr, uint32)) {
	srv := b.srv
	if srv.crashed {
		return
	}
	trace.To(srv.Node.Eng, trace.LFS)
	srv.FS.Read(fhIno(fh), off, n, func(res *extfs.ReadResult, err error) {
		if srv.crashed {
			if res != nil {
				res.Done(srv.FS)
			}
			return
		}
		if err != nil {
			done(nil, nfs.Attr{}, mapErr(err))
			return
		}
		// Back in the daemon: compose and transmit the reply.
		trace.To(srv.Node.Eng, trace.LServer)
		chain := srv.path.replyChain(res, false)
		res.Done(srv.FS)
		done(chain, attrOf(res.Attr), nfs.OK)
	})
}

func (b *fsBackend) Write(fh nfs.FH, off uint64, data *netbuf.Chain, done func(int, nfs.Attr, uint32)) {
	srv := b.srv
	if srv.crashed {
		data.Release()
		return
	}
	ino := fhIno(fh)
	if srv.WAL != nil {
		b.writeJournaled(fh, ino, off, data, done)
		return
	}
	if srv.cfg.Writeback.Enabled && srv.cfg.Writeback.WriteThrough {
		// The equal-durability comparison arm: every WRITE applies and
		// flushes before its ack, through the same batching flusher.
		b.writeSyncThrough(fh, ino, off, data, done)
		return
	}
	trace.To(srv.Node.Eng, trace.LFS)
	srv.path.applyWrite(srv.FS, ino, fh, off, data, func(n int, st uint32) {
		trace.To(srv.Node.Eng, trace.LServer)
		if srv.crashed {
			return
		}
		if st != nfs.OK {
			done(0, nfs.Attr{}, st)
			return
		}
		b.finishWrite(ino, n, done)
	})
}

// writeSyncThrough applies a WRITE and flushes the cache before the ack —
// the synchronous durability path. It serves the write-through comparison
// arm and the journaled path's unaligned fallback (the WAL is a logical redo
// log over whole blocks, so a sub-block write is made durable the slow way
// instead of being journaled).
func (b *fsBackend) writeSyncThrough(fh nfs.FH, ino uint32, off uint64, data *netbuf.Chain, done func(int, nfs.Attr, uint32)) {
	srv := b.srv
	trace.To(srv.Node.Eng, trace.LFS)
	srv.path.applyWrite(srv.FS, ino, fh, off, data, func(wn int, st uint32) {
		trace.To(srv.Node.Eng, trace.LServer)
		if srv.crashed {
			return
		}
		if st != nfs.OK {
			done(0, nfs.Attr{}, st)
			return
		}
		srv.FS.Sync(func(err error) {
			if srv.crashed {
				return
			}
			if err != nil {
				done(0, nfs.Attr{}, mapErr(err))
				return
			}
			b.finishWrite(ino, wn, done)
		})
	})
}

// finishWrite refreshes the post-write attributes and acks the WRITE.
func (b *fsBackend) finishWrite(ino uint32, n int, done func(int, nfs.Attr, uint32)) {
	b.srv.FS.Getattr(ino, func(a extfs.Attr, err error) {
		if err != nil {
			done(0, nfs.Attr{}, mapErr(err))
			return
		}
		done(n, attrOf(a), nfs.OK)
	})
}

// writeJournaled is the write-back pipeline's WRITE path: the payload is
// copied into a WAL record (its checksum and resolved LBN list alongside),
// applied to the cache as dirty blocks, and acknowledged only when the log's
// group commit lands — the data itself flushes to storage later, in
// coalesced batches. Admission is gated by the cache's dirty-memory
// watermarks, so a flooded flusher backpressures the NFS path here.
// Unaligned writes (never issued by the block-aligned workloads; the WAL is
// a logical redo log over whole blocks) fall back to apply+sync before the
// ack — equal durability, no journal entry.
func (b *fsBackend) writeJournaled(fh nfs.FH, ino uint32, off uint64, data *netbuf.Chain, done func(int, nfs.Attr, uint32)) {
	srv := b.srv
	n := data.Len()
	bs := extfs.BlockSize
	if off%uint64(bs) != 0 || n%bs != 0 || n == 0 {
		b.writeSyncThrough(fh, ino, off, data, done)
		return
	}
	run := func() {
		if srv.crashed {
			data.Release()
			return
		}
		// Capture the payload for the journal before applyWrite consumes
		// the chain (NCache mode keeps only logical keys in the cache).
		buf := make([]byte, n)
		data.GatherRange(0, buf)
		trace.To(srv.Node.Eng, trace.LFS)
		srv.path.applyWrite(srv.FS, ino, fh, off, data, func(wn int, st uint32) {
			trace.To(srv.Node.Eng, trace.LServer)
			if srv.crashed {
				return
			}
			if st != nfs.OK {
				done(0, nfs.Attr{}, st)
				return
			}
			srv.FS.Map(ino, off, wn, func(lbns []int64, err error) {
				if srv.crashed {
					return
				}
				if err != nil {
					done(0, nfs.Attr{}, mapErr(err))
					return
				}
				var epoch uint64
				if srv.Agent != nil {
					epoch = srv.Agent.Epoch()
				}
				srv.WAL.Append(&wal.Record{
					Ino:   ino,
					Off:   off,
					Epoch: epoch,
					Sum:   netbuf.Sum(buf),
					LBNs:  lbns,
					Data:  buf,
				}, func() {
					if srv.crashed {
						return
					}
					b.finishWrite(ino, wn, done)
				})
			})
		})
	}
	srv.Cache.Admit(run, func() { data.Release() })
}

func (b *fsBackend) Create(dir nfs.FH, name string, isDir bool, done func(nfs.FH, nfs.Attr, uint32)) {
	if b.srv.crashed {
		return
	}
	mode := extfs.ModeFile
	if isDir {
		mode = extfs.ModeDir
	}
	b.srv.FS.Create(fhIno(dir), name, mode, func(ino uint32, err error) {
		if err != nil {
			done(nfs.FH{}, nfs.Attr{}, mapErr(err))
			return
		}
		b.Getattr(inoFH(ino), func(a nfs.Attr, st uint32) {
			done(inoFH(ino), a, st)
		})
	})
}

func (b *fsBackend) Remove(dir nfs.FH, name string, done func(uint32)) {
	if b.srv.crashed {
		return
	}
	b.srv.FS.Remove(fhIno(dir), name, func(err error) {
		done(mapErr(err))
	})
}

func (b *fsBackend) Readdir(dir nfs.FH, done func([]string, uint32)) {
	if b.srv.crashed {
		return
	}
	b.srv.FS.Readdir(fhIno(dir), func(ents []extfs.Dirent, err error) {
		if err != nil {
			done(nil, mapErr(err))
			return
		}
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name
		}
		done(names, nfs.OK)
	})
}
