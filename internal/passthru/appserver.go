package passthru

import (
	"encoding/binary"
	"fmt"

	"ncache/internal/buffercache"
	"ncache/internal/extfs"
	"ncache/internal/iscsi"
	"ncache/internal/lkey"
	"ncache/internal/ncache"
	"ncache/internal/netbuf"
	"ncache/internal/nfs"
	"ncache/internal/proto/eth"
	"ncache/internal/proto/ipv4"
	"ncache/internal/proto/tcp"
	"ncache/internal/proto/udp"
	"ncache/internal/sim"
	"ncache/internal/simnet"
	"ncache/internal/trace"
)

// ServerConfig sizes the pass-through application server.
type ServerConfig struct {
	Mode        Mode
	Addrs       []eth.Addr // one NIC per address (Fig 5(b) uses two)
	StorageAddr eth.Addr
	// FSCacheBlocks bounds the file-system buffer cache. The paper keeps
	// it small under NCache to control double buffering (§3.4).
	FSCacheBlocks int
	// NCacheBytes sizes the network-centric cache (NCache mode only).
	NCacheBytes int64
	// DisableRemap is the remapping ablation switch.
	DisableRemap  bool
	Cost          simnet.CostProfile
	LinkBandwidth simnet.Bandwidth
	// EnableWeb starts the kHTTPd service alongside NFS.
	EnableWeb bool
}

// DefaultServerConfig mirrors the testbed's application server.
func DefaultServerConfig(mode Mode, addr, storage eth.Addr) ServerConfig {
	cfg := ServerConfig{
		Mode:          mode,
		Addrs:         []eth.Addr{addr},
		StorageAddr:   storage,
		FSCacheBlocks: 32768, // 128 MB page cache
		Cost:          simnet.DefaultProfile(),
		LinkBandwidth: simnet.Gbps,
	}
	if mode == NCache {
		// Small FS cache, large network-centric cache (§3.4/§4.1).
		cfg.FSCacheBlocks = 4096 // 16 MB
		cfg.NCacheBytes = 512 << 20
	}
	return cfg
}

// AppServer is the pass-through server under test.
type AppServer struct {
	Node      *simnet.Node
	Mode      Mode
	UDP       *udp.Transport
	TCP       *tcp.Transport
	Initiator *iscsi.Initiator
	Cache     *buffercache.Cache
	FS        *extfs.FS
	// NFS is one protocol server facing both transports: datagram RPC over
	// UDP and record-marked RPC over TCP (the transport-comparison
	// extension). One tx filter covers both.
	NFS    *nfs.Server
	Web    *WebServer
	Module *ncache.Module

	cfg  ServerConfig
	path *dataPath
}

// NewAppServer builds and attaches the application server; Start completes
// the iSCSI login and mount.
func NewAppServer(eng *sim.Engine, nw *simnet.Network, cfg ServerConfig) (*AppServer, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("passthru: server needs at least one address")
	}
	node := simnet.NewNode(eng, "app", cfg.Cost)
	for _, a := range cfg.Addrs {
		if _, err := nw.Attach(node, a, cfg.LinkBandwidth); err != nil {
			return nil, fmt.Errorf("app attach: %w", err)
		}
	}
	ip := ipv4.NewStack(node)
	udpT := udp.NewTransport(ip)
	tcpT := tcp.NewTransport(ip)
	ini := iscsi.NewInitiator(node, tcpT.DialConn, cfg.Addrs[0])

	s := &AppServer{
		Node:      node,
		Mode:      cfg.Mode,
		UDP:       udpT,
		TCP:       tcpT,
		Initiator: ini,
		cfg:       cfg,
	}
	switch cfg.Mode {
	case NCache:
		s.Module = ncache.New(node, ncache.Config{
			CapacityBytes: cfg.NCacheBytes,
			BlockSize:     extfs.BlockSize,
			DisableRemap:  cfg.DisableRemap,
		})
		ini.SetReadHook(s.Module.CaptureLBN)
		ini.SetWriteHook(s.Module.WriteOut)
		ini.SetReadCache(s.Module.ServeRead)
	case Baseline:
		// The ideal comparator: regular-data payloads are dropped at
		// the socket boundary; identity-free junk flows instead.
		ini.SetReadHook(func(lba int64, blocks int, data *netbuf.Chain) *netbuf.Chain {
			if blocks <= 0 {
				return data
			}
			data.Release()
			out := netbuf.NewChain()
			for i := 0; i < blocks; i++ {
				out.AppendChain(lkey.StampChainPool(node.BlkPool, lkey.Key{}, extfs.BlockSize))
			}
			return out
		})
	}
	s.path = &dataPath{mode: cfg.Mode, node: node, mod: s.Module, bs: extfs.BlockSize}
	return s, nil
}

// Start logs in to the storage server, mounts the file system, and brings
// up the NFS (and optionally web) services.
func (s *AppServer) Start(done func(error)) {
	s.Initiator.Connect(s.cfg.StorageAddr, func(err error) {
		if err != nil {
			done(fmt.Errorf("iscsi connect: %w", err))
			return
		}
		lower := &initiatorLower{ini: s.Initiator}
		s.Cache = buffercache.New(s.Node, lower, s.cfg.FSCacheBlocks)
		s.Cache.LogicalCopyNs = s.Node.Cost.LogicalCopyNs
		extfs.Mount(s.Node, s.Cache, func(fs *extfs.FS, err error) {
			if err != nil {
				done(fmt.Errorf("mount: %w", err))
				return
			}
			s.FS = fs
			fs.SetMaterializer(s.path.materialize)
			backend := &fsBackend{srv: s}
			nfsSrv := nfs.NewServer(s.Node, backend)
			if err := nfsSrv.ServeUDP(s.UDP); err != nil {
				done(err)
				return
			}
			if err := nfsSrv.ServeStream(s.TCP); err != nil {
				done(err)
				return
			}
			if s.Mode == NCache {
				nfsSrv.SetTxFilter(s.Module.SubstituteMessage)
			}
			s.NFS = nfsSrv
			if s.cfg.EnableWeb {
				web, err := NewWebServer(s)
				if err != nil {
					done(err)
					return
				}
				s.Web = web
			}
			done(nil)
		})
	})
}

// initiatorLower adapts the iSCSI initiator as the buffer cache's block
// store.
type initiatorLower struct {
	ini *iscsi.Initiator
}

func (l *initiatorLower) BlockSize() int   { return l.ini.Geometry().BlockSize }
func (l *initiatorLower) NumBlocks() int64 { return l.ini.Geometry().NumBlocks }

func (l *initiatorLower) Read(lbn int64, count int, meta bool, done func(*netbuf.Chain, error)) {
	l.ini.Read(lbn, count, meta, done)
}

func (l *initiatorLower) Write(lbn int64, data *netbuf.Chain, meta bool, done func(error)) {
	l.ini.Write(lbn, data, meta, done)
}

// inoFH converts an inode number to a file handle.
func inoFH(ino uint32) nfs.FH {
	var fh nfs.FH
	binary.BigEndian.PutUint32(fh[0:4], ino)
	return fh
}

// fhIno extracts the inode number.
func fhIno(fh nfs.FH) uint32 { return binary.BigEndian.Uint32(fh[0:4]) }

// attrOf converts file system attributes to protocol attributes.
func attrOf(a extfs.Attr) nfs.Attr {
	t := nfs.TypeFile
	if a.Mode == extfs.ModeDir {
		t = nfs.TypeDir
	}
	return nfs.Attr{Type: t, Links: uint32(a.Links), Size: a.Size}
}

// fsBackend implements the NFS backend over the mounted file system with
// the mode's data path.
type fsBackend struct {
	srv *AppServer
}

var _ nfs.Backend = (*fsBackend)(nil)

func (b *fsBackend) Getattr(fh nfs.FH, done func(nfs.Attr, uint32)) {
	b.srv.FS.Getattr(fhIno(fh), func(a extfs.Attr, err error) {
		if err != nil {
			done(nfs.Attr{}, mapErr(err))
			return
		}
		done(attrOf(a), nfs.OK)
	})
}

func (b *fsBackend) Setattr(fh nfs.FH, size uint64, done func(nfs.Attr, uint32)) {
	ino := fhIno(fh)
	b.srv.FS.Truncate(ino, size, func(err error) {
		if err != nil {
			done(nfs.Attr{}, mapErr(err))
			return
		}
		b.Getattr(fh, done)
	})
}

func (b *fsBackend) Lookup(dir nfs.FH, name string, done func(nfs.FH, nfs.Attr, uint32)) {
	b.srv.FS.Lookup(fhIno(dir), name, func(ino uint32, err error) {
		if err != nil {
			done(nfs.FH{}, nfs.Attr{}, mapErr(err))
			return
		}
		b.srv.FS.Getattr(ino, func(a extfs.Attr, err error) {
			if err != nil {
				done(nfs.FH{}, nfs.Attr{}, mapErr(err))
				return
			}
			done(inoFH(ino), attrOf(a), nfs.OK)
		})
	})
}

func (b *fsBackend) Read(fh nfs.FH, off uint64, n int, done func(*netbuf.Chain, nfs.Attr, uint32)) {
	srv := b.srv
	trace.To(srv.Node.Eng, trace.LFS)
	srv.FS.Read(fhIno(fh), off, n, func(res *extfs.ReadResult, err error) {
		if err != nil {
			done(nil, nfs.Attr{}, mapErr(err))
			return
		}
		// Back in the daemon: compose and transmit the reply.
		trace.To(srv.Node.Eng, trace.LServer)
		chain := srv.path.replyChain(res, false)
		res.Done(srv.FS)
		done(chain, attrOf(res.Attr), nfs.OK)
	})
}

func (b *fsBackend) Write(fh nfs.FH, off uint64, data *netbuf.Chain, done func(int, nfs.Attr, uint32)) {
	srv := b.srv
	ino := fhIno(fh)
	trace.To(srv.Node.Eng, trace.LFS)
	srv.path.applyWrite(srv.FS, ino, fh, off, data, func(n int, st uint32) {
		trace.To(srv.Node.Eng, trace.LServer)
		if st != nfs.OK {
			done(0, nfs.Attr{}, st)
			return
		}
		srv.FS.Getattr(ino, func(a extfs.Attr, err error) {
			if err != nil {
				done(0, nfs.Attr{}, mapErr(err))
				return
			}
			done(n, attrOf(a), nfs.OK)
		})
	})
}

func (b *fsBackend) Create(dir nfs.FH, name string, isDir bool, done func(nfs.FH, nfs.Attr, uint32)) {
	mode := extfs.ModeFile
	if isDir {
		mode = extfs.ModeDir
	}
	b.srv.FS.Create(fhIno(dir), name, mode, func(ino uint32, err error) {
		if err != nil {
			done(nfs.FH{}, nfs.Attr{}, mapErr(err))
			return
		}
		b.Getattr(inoFH(ino), func(a nfs.Attr, st uint32) {
			done(inoFH(ino), a, st)
		})
	})
}

func (b *fsBackend) Remove(dir nfs.FH, name string, done func(uint32)) {
	b.srv.FS.Remove(fhIno(dir), name, func(err error) {
		done(mapErr(err))
	})
}

func (b *fsBackend) Readdir(dir nfs.FH, done func([]string, uint32)) {
	b.srv.FS.Readdir(fhIno(dir), func(ents []extfs.Dirent, err error) {
		if err != nil {
			done(nil, mapErr(err))
			return
		}
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name
		}
		done(names, nfs.OK)
	})
}
