package passthru

import (
	"bytes"
	"testing"

	"ncache/internal/extfs"
	"ncache/internal/simnet"
	"ncache/internal/storage"
)

// mirrorCluster brings up a single-target cluster replicated across two
// mirror arms, with a disarmed fault schedule aimed at the second arm's
// disks. count bounds the injected errors so recovery can complete and the
// event queue can drain (an arm failing forever keeps probing forever).
func mirrorCluster(t *testing.T, mode Mode, spec string) (*Cluster, extfs.FileSpec) {
	t.Helper()
	cl, err := NewCluster(ClusterConfig{
		Mode:          mode,
		NumClients:    1,
		BlocksPerDisk: 16 * 1024,
		Arms:          2,
		FaultSpec:     spec,
		FaultSeed:     7,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	// Format through the cluster's direct-access device so the replicas
	// start identical (pokes fan to every arm).
	fmtr, err := extfs.Format(cl.DirectAccess(), 1024)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	fs, err := fmtr.AddFile("data.bin", 64*extfs.BlockSize, fileContent)
	if err != nil {
		t.Fatalf("AddFile: %v", err)
	}
	if err := fmtr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := cl.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return cl, fs
}

// armStats extracts the named arm's stats from the app server's volume.
func armStats(t *testing.T, cl *Cluster, name string) storage.ArmStats {
	t.Helper()
	for _, s := range cl.App.Volume.Stats() {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("no arm %q in %+v", name, cl.App.Volume.Stats())
	return storage.ArmStats{}
}

// TestFaultMirrorFailoverNoLostAcks is the availability clause of the
// mirrored lower path: with the second arm's disks failing hard, every
// client operation must still succeed off the surviving arm — the breaker
// ejects the dead arm, no acked write is lost, and no error escapes to the
// NFS client (every t.Fatalf inside writeFile/readFile enforces that).
func TestFaultMirrorFailoverNoLostAcks(t *testing.T) {
	cl, spec := mirrorCluster(t, NCache, "diskerr:s0m1.disk*:rate=1:count=60")
	fh := lookupFile(t, cl, "data.bin")

	const blocks = 8
	fresh := make([][]byte, blocks)
	cl.Faults.Arm()
	// Sync after every write: the flusher coalesces contiguous dirty blocks
	// into one lower write, and the breaker needs several distinct failing
	// legs to trip.
	for i := range fresh {
		fresh[i] = bytes.Repeat([]byte{0xC0 + byte(i)}, extfs.BlockSize)
		writeFile(t, cl, fh, uint64(i)*extfs.BlockSize, fresh[i])
		if err := syncCache(t, cl); err != nil {
			t.Fatalf("sync %d during arm outage: %v", i, err)
		}
	}
	st := armStats(t, cl, "t0m1")
	if st.Ejections == 0 {
		t.Fatalf("failing arm never ejected: %+v", st)
	}
	if got := armStats(t, cl, "t0m0"); got.Ejections != 0 {
		t.Fatalf("healthy arm ejected: %+v", got)
	}
	// Reads during the outage serve from the healthy arm.
	got := readFile(t, cl, fh, 0, blocks*extfs.BlockSize)
	for i := 0; i < blocks; i++ {
		if !bytes.Equal(got[i*extfs.BlockSize:(i+1)*extfs.BlockSize], fresh[i]) {
			t.Fatalf("block %d stale during outage", i)
		}
	}
	// The acked bytes sit on the healthy arm's physical disks.
	for i := 0; i < blocks; i++ {
		if !bytes.Equal(cl.StorageArms[0][0].Array.PeekBlock(spec.StartLBN+int64(i)), fresh[i]) {
			t.Fatalf("healthy arm missing acked block %d", i)
		}
	}

	cl.Faults.Quiesce()
	run(t, cl) // drains probes + resync now that the errors are spent
	if st = armStats(t, cl, "t0m1"); st.State != storage.ArmClosed {
		t.Fatalf("arm did not recover after fault quiesce: %+v", st)
	}
}

// TestMirrorResyncConverges checks the recovery protocol end to end: blocks
// written while an arm is ejected are dirty-logged, and once the arm heals
// the catch-up copy replays exactly those blocks so both physical replicas
// hold the acked bytes.
func TestMirrorResyncConverges(t *testing.T) {
	cl, spec := mirrorCluster(t, NCache, "diskerr:s0m1.disk*:rate=1:count=40")
	fh := lookupFile(t, cl, "data.bin")

	const blocks = 12
	fresh := make([][]byte, blocks)
	cl.Faults.Arm()
	for i := range fresh {
		fresh[i] = bytes.Repeat([]byte{0x80 + byte(i)}, extfs.BlockSize)
		writeFile(t, cl, fh, uint64(i)*extfs.BlockSize, fresh[i])
		if err := syncCache(t, cl); err != nil {
			t.Fatalf("sync %d during arm outage: %v", i, err)
		}
	}
	before := armStats(t, cl, "t0m1")
	if before.Ejections == 0 {
		t.Fatalf("outage never ejected the mirror arm: %+v", before)
	}

	cl.Faults.Quiesce()
	run(t, cl)
	after := armStats(t, cl, "t0m1")
	if after.State != storage.ArmClosed || after.DirtyBlocks != 0 {
		t.Fatalf("resync did not converge: %+v", after)
	}
	if after.Resyncs == 0 || after.ResyncBlocks == 0 {
		t.Fatalf("recovery closed the arm without copying: %+v", after)
	}
	// Both replicas now hold the bytes acked during the outage.
	for i := 0; i < blocks; i++ {
		lbn := spec.StartLBN + int64(i)
		for a := 0; a < 2; a++ {
			if !bytes.Equal(cl.StorageArms[0][a].Array.PeekBlock(lbn), fresh[i]) {
				t.Fatalf("arm %d block %d diverged after resync", a, i)
			}
		}
	}
}

// TestPoolsDrainMirror re-runs the buffer-leak check over the mirrored
// path: write fan-out and resync copies clone chains under the
// "storage.mirror" owner tag, and after failover + recovery every pool on
// every node (arm storage nodes included) must drain to zero.
func TestPoolsDrainMirror(t *testing.T) {
	cl, _ := mirrorCluster(t, NCache, "diskerr:s0m1.disk*:rate=1:count=40")
	fh := lookupFile(t, cl, "data.bin")

	cl.Faults.Arm()
	for i := 0; i < 6; i++ {
		writeFile(t, cl, fh, uint64(i)*extfs.BlockSize, bytes.Repeat([]byte{0xAB}, extfs.BlockSize))
	}
	if err := syncCache(t, cl); err != nil {
		t.Fatalf("sync: %v", err)
	}
	for i := 0; i < 6; i++ {
		readFile(t, cl, fh, uint64(i)*20000, 20000)
	}
	cl.Faults.Quiesce()
	run(t, cl)

	if cl.App.Module != nil {
		if n := cl.App.Module.DropClean(); n == 0 {
			t.Fatal("ncache cached nothing during the workload")
		}
	}
	nodes := []*simnet.Node{cl.App.Node}
	for _, arms := range cl.StorageArms {
		for _, ss := range arms {
			nodes = append(nodes, ss.Node)
		}
	}
	for _, h := range cl.Clients {
		nodes = append(nodes, h.Node)
	}
	for _, n := range nodes {
		checkPoolDrained(t, n.RxPool)
		checkPoolDrained(t, n.TxPool)
		checkPoolDrained(t, n.BlkPool)
	}
}
