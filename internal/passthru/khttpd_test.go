package passthru

import (
	"strings"
	"testing"

	"ncache/internal/extfs"
	"ncache/internal/nfs"
)

func TestContentLengthParsing(t *testing.T) {
	cases := []struct {
		header string
		want   int
	}{
		{"HTTP/1.0 200 OK\r\nContent-Length: 12345\r\nX: y", 12345},
		{"HTTP/1.0 200 OK\r\nContent-Length: 0", 0},
		{"HTTP/1.0 200 OK\r\nX: y", 0},
		{"HTTP/1.0 200 OK\r\nContent-Length: abc", 0},
	}
	for _, c := range cases {
		if got := contentLength(c.header); got != c.want {
			t.Fatalf("contentLength(%q) = %d, want %d", c.header, got, c.want)
		}
	}
}

func TestWebServerBadMethod(t *testing.T) {
	cl, _ := testCluster(t, Original, true)
	var conn *HTTPConn
	cl.Clients[0].DialHTTP(ServerAddr, func(h *HTTPConn, err error) { conn = h })
	run(t, cl)
	if conn == nil {
		t.Fatal("no connection")
	}
	// Hand-roll a POST; the server must answer 400 and keep serving.
	if err := conn.conn.Send([]byte("POST /x HTTP/1.0\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	got := -1
	conn.done = func(n int, err error) { got = n }
	run(t, cl)
	if got < 0 {
		t.Fatal("no response to bad method")
	}
	if cl.App.Web.Errors != 1 {
		t.Fatalf("Errors = %d, want 1", cl.App.Web.Errors)
	}
	// The connection still works for a proper GET.
	ok := false
	conn.Get("data.bin", func(n int, err error) { ok = err == nil && n == 64*extfs.BlockSize })
	run(t, cl)
	if !ok {
		t.Fatal("connection unusable after 400")
	}
}

func TestWebServerSplitRequestAcrossSegments(t *testing.T) {
	cl, _ := testCluster(t, Original, true)
	var conn *HTTPConn
	cl.Clients[0].DialHTTP(ServerAddr, func(h *HTTPConn, err error) { conn = h })
	run(t, cl)
	// Send the request in two fragments with a virtual-time gap.
	if err := conn.conn.Send([]byte("GET /data.bin HT")); err != nil {
		t.Fatal(err)
	}
	run(t, cl)
	got := -1
	conn.done = func(n int, err error) { got = n }
	conn.inBody = false
	if err := conn.conn.Send([]byte("TP/1.0\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	run(t, cl)
	if got != 64*extfs.BlockSize {
		t.Fatalf("split request body = %d", got)
	}
}

func TestWebServerPipelinedRequests(t *testing.T) {
	// Two GETs written back-to-back into the stream; the server must
	// serve them in order on the same connection.
	cl, _ := testCluster(t, Original, true)
	var conn *HTTPConn
	cl.Clients[0].DialHTTP(ServerAddr, func(h *HTTPConn, err error) { conn = h })
	run(t, cl)

	var sizes []int
	first := true
	conn.done = func(n int, err error) {
		sizes = append(sizes, n)
		if first {
			first = false
			conn.done = func(n int, err error) { sizes = append(sizes, n) }
		}
	}
	req := "GET /data.bin HTTP/1.0\r\n\r\nGET /data.bin HTTP/1.0\r\n\r\n"
	if err := conn.conn.Send([]byte(req)); err != nil {
		t.Fatal(err)
	}
	run(t, cl)
	if len(sizes) != 2 || sizes[0] != 64*extfs.BlockSize || sizes[1] != 64*extfs.BlockSize {
		t.Fatalf("pipelined responses = %v", sizes)
	}
	if cl.App.Web.Requests != 2 {
		t.Fatalf("server requests = %d", cl.App.Web.Requests)
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		Original: "original",
		Baseline: "baseline",
		NCache:   "ncache",
		Mode(99): "unknown",
	} {
		if m.String() != want {
			t.Fatalf("%d.String() = %q", m, m.String())
		}
	}
}

func TestNCacheUnalignedReadUsesSubOff(t *testing.T) {
	// A read that starts mid-block forces substitution at a sub-block
	// offset (lkey.SubOff); the bytes must still be exact.
	cl, _ := testCluster(t, NCache, false)
	fh := lookupFile(t, cl, "data.bin")
	readFile(t, cl, fh, 0, 4*extfs.BlockSize) // prime the cache

	got := readFile(t, cl, fh, 1000, 6000)
	want := expect(1000, 6000)
	if string(got) != string(want) {
		t.Fatal("unaligned NCache read returned wrong bytes")
	}
}

func TestWebFHCacheMemoizesLookups(t *testing.T) {
	cl, _ := testCluster(t, Original, true)
	var conn *HTTPConn
	cl.Clients[0].DialHTTP(ServerAddr, func(h *HTTPConn, err error) { conn = h })
	run(t, cl)
	for i := 0; i < 3; i++ {
		done := false
		conn.Get("data.bin", func(n int, err error) { done = err == nil })
		run(t, cl)
		if !done {
			t.Fatalf("GET %d failed", i)
		}
	}
	if len(cl.App.Web.fhCache) != 1 {
		t.Fatalf("fhCache entries = %d", len(cl.App.Web.fhCache))
	}
}

func TestHTTPConnRejectsConcurrentGet(t *testing.T) {
	cl, _ := testCluster(t, Original, true)
	var conn *HTTPConn
	cl.Clients[0].DialHTTP(ServerAddr, func(h *HTTPConn, err error) { conn = h })
	run(t, cl)
	conn.Get("data.bin", func(n int, err error) {})
	errSeen := false
	conn.Get("data.bin", func(n int, err error) {
		if err != nil && strings.Contains(err.Error(), "outstanding") {
			errSeen = true
		}
	})
	if !errSeen {
		t.Fatal("second in-flight GET was not rejected")
	}
	run(t, cl)
}

func TestReplyChainHoleExtents(t *testing.T) {
	// Holes (sparse file regions) read back as zeros through the mode
	// data path.
	cl, _ := testCluster(t, NCache, false)
	client := cl.Clients[0].NFS
	var fh nfs.FH
	client.Create(nfs.RootFH(), "sparse", func(h nfs.FH, _ nfs.Attr, err error) {
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		fh = h
	})
	run(t, cl)
	// Write one block at offset 8 blocks, leaving a hole before it.
	writeFile(t, cl, fh, 8*extfs.BlockSize, make([]byte, extfs.BlockSize))
	got := readFile(t, cl, fh, 0, 2*extfs.BlockSize)
	for i, b := range got {
		if b != 0 {
			t.Fatalf("hole byte %d = %#x, want 0", i, b)
		}
	}
}
