package passthru

import (
	"testing"

	"ncache/internal/nfs"
)

// getattrFile issues one NFS GETATTR and returns the attributes.
func getattrFile(t *testing.T, cl *Cluster, c *nfs.Client, fh nfs.FH) nfs.Attr {
	t.Helper()
	var attr nfs.Attr
	got := false
	c.Getattr(fh, func(a nfs.Attr, err error) {
		if err != nil {
			t.Fatalf("Getattr: %v", err)
		}
		attr = a
		got = true
	})
	run(t, cl)
	if !got {
		t.Fatal("getattr did not complete")
	}
	return attr
}

// readdirRoot lists the root directory and asserts name is present.
func readdirRoot(t *testing.T, cl *Cluster, c *nfs.Client, name string) {
	t.Helper()
	got := false
	c.Readdir(nfs.RootFH(), func(names []string, err error) {
		if err != nil {
			t.Fatalf("Readdir: %v", err)
		}
		for _, n := range names {
			if n == name {
				got = true
			}
		}
	})
	run(t, cl)
	if !got {
		t.Fatalf("readdir did not list %q", name)
	}
}

// TestFaultControlPlaneLookupMount arms frame loss against the client link
// while only control-plane NFS traffic is in flight: repeated LOOKUP and
// GETATTR calls plus a fresh mount sequence (new client instance, root
// GETATTR, READDIR, LOOKUP) — the traffic the degradation suite previously
// left unarmed, exercising only the steady-state data path. Every call must
// be recovered by sunrpc retransmission with zero escaped errors: no
// timeouts, no wrong results, no calls left pending.
func TestFaultControlPlaneLookupMount(t *testing.T) {
	// 10% per-frame loss in both directions on the client link. Each RPC
	// try needs the request and the reply frames to survive, so roughly
	// one call in five loses a frame and must be retransmitted; with the
	// deterministic seed the retry budget (faultRPCTries) is never
	// exhausted.
	cl, _ := faultCluster(t, "drop:client0*:rate=0.1")
	host := cl.Clients[0]

	// Mount and resolve once loss-free to establish the expected handle.
	fh := lookupFile(t, cl, "data.bin")
	cleanAttr := getattrFile(t, cl, host.NFS, fh)
	firstRPC := host.NFS.DatagramRPC()

	cl.Faults.Arm()

	// Repeated control-plane traffic under loss: every LOOKUP must resolve
	// to the same handle and every GETATTR must return the clean result.
	const rounds = 24
	for i := 0; i < rounds; i++ {
		if h := lookupFile(t, cl, "data.bin"); h != fh {
			t.Fatalf("round %d: lookup under frame loss returned %v, want %v", i, h, fh)
		}
		if a := getattrFile(t, cl, host.NFS, fh); a != cleanAttr {
			t.Fatalf("round %d: getattr under frame loss returned %+v, want %+v", i, a, cleanAttr)
		}
	}

	// Fresh mount sequence under loss: a brand-new client against the same
	// server NIC, then the mount-time control traffic — root GETATTR,
	// READDIR of the export, and the initial LOOKUP.
	nic := cl.App.Node.NICs()[0]
	if err := host.MountNFS(nic.Addr); err != nil {
		t.Fatalf("MountNFS under frame loss: %v", err)
	}
	host.NFS.SetRetransmit(faultRPCRTO, faultRPCTries)
	getattrFile(t, cl, host.NFS, nfs.RootFH())
	readdirRoot(t, cl, host.NFS, "data.bin")
	if h := lookupFile(t, cl, "data.bin"); h != fh {
		t.Fatal("fresh mount resolved a different file handle")
	}

	cl.Faults.Quiesce()

	// The injector must actually have dropped frames on the armed link...
	dropped := cl.Net.FaultDropped()
	for _, n := range host.Node.NICs() {
		dropped += n.Stats.FaultDropTx
	}
	if dropped == 0 {
		t.Fatal("frame-loss schedule armed but no frames were dropped")
	}
	// ...recovery must have gone through RPC retransmission, and no call
	// may have escaped as a timeout or been left pending. FaultCounters
	// only sees the current client, so sum both mounts explicitly.
	secondRPC := host.NFS.DatagramRPC()
	retrans := firstRPC.Retransmits + secondRPC.Retransmits
	timeouts := firstRPC.Timeouts + secondRPC.Timeouts
	if retrans == 0 {
		t.Fatal("no RPC retransmissions despite dropped control-plane frames")
	}
	if timeouts != 0 {
		t.Fatalf("%d control-plane calls escaped as timeouts", timeouts)
	}
	if p := firstRPC.Pending() + secondRPC.Pending(); p != 0 {
		t.Fatalf("%d control-plane calls still pending after quiesce", p)
	}
}
