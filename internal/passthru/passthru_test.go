package passthru

import (
	"bytes"
	"testing"

	"ncache/internal/extfs"
	"ncache/internal/netbuf"
	"ncache/internal/nfs"
	"ncache/internal/sim"
)

// testCluster brings up a small cluster with one preformatted file.
func testCluster(t *testing.T, mode Mode, web bool) (*Cluster, extfs.FileSpec) {
	t.Helper()
	return testClusterFaults(t, mode, web, "")
}

// testClusterFaults is testCluster with a fault schedule wired in. The
// injector starts disarmed; the caller arms it around the faulted phase.
func testClusterFaults(t *testing.T, mode Mode, web bool, faultSpec string) (*Cluster, extfs.FileSpec) {
	t.Helper()
	cl, err := NewCluster(ClusterConfig{
		Mode:          mode,
		NumClients:    1,
		BlocksPerDisk: 16 * 1024, // 64 MB array
		EnableWeb:     web,
		FaultSpec:     faultSpec,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	fmtr, err := extfs.Format(cl.Storage.Array, 1024)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	spec, err := fmtr.AddFile("data.bin", 64*extfs.BlockSize, fileContent)
	if err != nil {
		t.Fatalf("AddFile: %v", err)
	}
	if err := fmtr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := cl.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return cl, spec
}

// fileContent is the deterministic content function for formatted files.
func fileContent(off uint64, dst []byte) {
	for i := range dst {
		dst[i] = byte((off + uint64(i)) * 2654435761 >> 16)
	}
}

// expect computes expected file bytes.
func expect(off uint64, n int) []byte {
	out := make([]byte, n)
	bs := uint64(extfs.BlockSize)
	// fileContent is applied per block by the formatter.
	start := off / bs * bs
	for b := start; b < off+uint64(n); b += bs {
		blk := make([]byte, bs)
		fileContent(b, blk)
		for i := uint64(0); i < bs; i++ {
			p := b + i
			if p >= off && p < off+uint64(n) {
				out[p-off] = blk[i]
			}
		}
	}
	return out
}

// lookupFile resolves the test file handle.
func lookupFile(t *testing.T, cl *Cluster, name string) nfs.FH {
	t.Helper()
	client := cl.Clients[0].NFS
	var fh nfs.FH
	got := false
	client.Lookup(nfs.RootFH(), name, func(h nfs.FH, a nfs.Attr, err error) {
		if err != nil {
			t.Fatalf("Lookup: %v", err)
		}
		fh = h
		got = true
	})
	run(t, cl)
	if !got {
		t.Fatal("lookup did not complete")
	}
	return fh
}

func run(t *testing.T, cl *Cluster) {
	t.Helper()
	if err := cl.Eng.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
}

// readFile issues one NFS read and returns the payload.
func readFile(t *testing.T, cl *Cluster, fh nfs.FH, off uint64, n int) []byte {
	t.Helper()
	var data []byte
	cl.Clients[0].NFS.Read(fh, off, n, func(c *netbuf.Chain, a nfs.Attr, err error) {
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		data = c.Flatten()
		c.Release()
	})
	run(t, cl)
	return data
}

func writeFile(t *testing.T, cl *Cluster, fh nfs.FH, off uint64, p []byte) {
	t.Helper()
	okd := false
	cl.Clients[0].NFS.WriteBytes(fh, off, p, func(n int, a nfs.Attr, err error) {
		if err != nil {
			t.Fatalf("Write: %v", err)
		}
		if n != len(p) {
			t.Fatalf("short write: %d", n)
		}
		okd = true
	})
	run(t, cl)
	if !okd {
		t.Fatal("write did not complete")
	}
}

func TestOriginalEndToEndIntegrity(t *testing.T) {
	cl, _ := testCluster(t, Original, false)
	fh := lookupFile(t, cl, "data.bin")

	// Cold read (miss), then warm read (hit): both must return the
	// formatted content.
	for pass := 0; pass < 2; pass++ {
		got := readFile(t, cl, fh, 8192, 16*1024)
		if !bytes.Equal(got, expect(8192, 16*1024)) {
			t.Fatalf("pass %d: content mismatch", pass)
		}
	}

	// Write then read back.
	patch := bytes.Repeat([]byte{0xAB}, 8192)
	writeFile(t, cl, fh, 0, patch)
	if got := readFile(t, cl, fh, 0, 8192); !bytes.Equal(got, patch) {
		t.Fatal("read-your-write failed")
	}
}

func TestNCacheEndToEndIntegrity(t *testing.T) {
	cl, spec := testCluster(t, NCache, false)
	fh := lookupFile(t, cl, "data.bin")

	// Reads return real data even though the FS cache holds junk+keys.
	for pass := 0; pass < 2; pass++ {
		got := readFile(t, cl, fh, 4096, 32*1024)
		if !bytes.Equal(got, expect(4096, 32*1024)) {
			t.Fatalf("pass %d: content mismatch (substitution broken)", pass)
		}
	}
	// The FS cache really does hold logical blocks.
	if cl.App.Module.Len() == 0 {
		t.Fatal("NCache captured nothing")
	}
	if cl.App.Module.Stats.Substitutions == 0 {
		t.Fatal("no substitutions on the read path")
	}

	// Read-your-writes before any flush: served from the FHO cache.
	patch := bytes.Repeat([]byte{0xCD}, 2*extfs.BlockSize)
	writeFile(t, cl, fh, 16*extfs.BlockSize, patch)
	if got := readFile(t, cl, fh, 16*extfs.BlockSize, len(patch)); !bytes.Equal(got, patch) {
		t.Fatal("read-your-write (FHO path) failed")
	}
	if cl.App.Module.Stats.FHOHits == 0 {
		t.Fatal("FHO cache not consulted")
	}

	// Flush: remap must substitute real data on the wire so the storage
	// server persists the actual bytes.
	synced := false
	cl.App.FS.Sync(func(err error) {
		if err != nil {
			t.Fatalf("Sync: %v", err)
		}
		synced = true
	})
	run(t, cl)
	if !synced {
		t.Fatal("sync did not complete")
	}
	if cl.App.Module.Stats.Remaps == 0 {
		t.Fatal("no remaps on flush")
	}
	// Verify the bytes physically on the array: the file is contiguous
	// from spec.StartLBN.
	lbn := spec.StartLBN + 16
	onDisk := append(cl.Storage.Array.PeekBlock(lbn), cl.Storage.Array.PeekBlock(lbn+1)...)
	if !bytes.Equal(onDisk, patch) {
		t.Fatal("flushed data on storage is not the client's data (remap/substitution broken)")
	}

	// After remap, reads still return the fresh data (now via LBN).
	if got := readFile(t, cl, fh, 16*extfs.BlockSize, len(patch)); !bytes.Equal(got, patch) {
		t.Fatal("post-remap read failed")
	}
}

func TestNCacheZeroPayloadCopies(t *testing.T) {
	cl, _ := testCluster(t, NCache, false)
	fh := lookupFile(t, cl, "data.bin")
	readFile(t, cl, fh, 0, 32*1024) // warm metadata + data

	before := cl.App.Node.Copies
	got := readFile(t, cl, fh, 0, 32*1024) // warm hit
	delta := cl.App.Node.Copies.Sub(before)
	if len(got) != 32*1024 {
		t.Fatalf("short read: %d", len(got))
	}
	if delta.PhysicalOps != 0 {
		t.Fatalf("NCache warm read performed %d physical copies (%d bytes)",
			delta.PhysicalOps, delta.PhysicalBytes)
	}
	if delta.LogicalOps == 0 {
		t.Fatal("no logical copies recorded")
	}
	if delta.Substitutions == 0 {
		t.Fatal("no substitutions recorded")
	}
}

func TestBaselineServesJunkWithZeroCopies(t *testing.T) {
	cl, _ := testCluster(t, Baseline, false)
	fh := lookupFile(t, cl, "data.bin")
	readFile(t, cl, fh, 0, 16*1024)

	before := cl.App.Node.Copies
	got := readFile(t, cl, fh, 0, 16*1024)
	delta := cl.App.Node.Copies.Sub(before)
	if len(got) != 16*1024 {
		t.Fatalf("baseline read returned %d bytes", len(got))
	}
	if delta.PhysicalOps != 0 {
		t.Fatalf("baseline performed %d physical copies", delta.PhysicalOps)
	}
	// Baseline data is junk by design; just confirm it is NOT the real
	// content (the copies were truly skipped, not hidden).
	if bytes.Equal(got, expect(0, 16*1024)) {
		t.Fatal("baseline returned real data; copies were not eliminated")
	}
}

func TestTable2CopyCounts(t *testing.T) {
	cl, _ := testCluster(t, Original, false)
	fh := lookupFile(t, cl, "data.bin")

	// Warm the metadata (inode blocks) so deltas below are pure data-path.
	readFile(t, cl, fh, 0, 4096)

	// Read miss: 3 copies (fill + daemon read() + sendto()).
	before := cl.App.Node.Copies
	readFile(t, cl, fh, 8*4096, 4096)
	if d := cl.App.Node.Copies.Sub(before); d.PhysicalOps != 3 {
		t.Fatalf("read-miss copies = %d, want 3 (Table 2)", d.PhysicalOps)
	}

	// Read hit: 2 copies.
	before = cl.App.Node.Copies
	readFile(t, cl, fh, 8*4096, 4096)
	if d := cl.App.Node.Copies.Sub(before); d.PhysicalOps != 2 {
		t.Fatalf("read-hit copies = %d, want 2 (Table 2)", d.PhysicalOps)
	}

	// Write (overwritten, never flushed): 1 copy. Block 5 is reached
	// through direct pointers, so no metadata I/O pollutes the delta.
	before = cl.App.Node.Copies
	writeFile(t, cl, fh, 5*4096, make([]byte, 4096))
	if d := cl.App.Node.Copies.Sub(before); d.PhysicalOps != 1 {
		t.Fatalf("write copies = %d, want 1 (Table 2)", d.PhysicalOps)
	}

	// Flush: +1 copy (buffer cache → network stack) = 2 total.
	before = cl.App.Node.Copies
	cl.App.FS.Sync(func(err error) {
		if err != nil {
			t.Fatalf("Sync: %v", err)
		}
	})
	run(t, cl)
	d := cl.App.Node.Copies.Sub(before)
	if d.PhysicalOps < 1 {
		t.Fatalf("flush copies = %d, want >= 1 (Table 2: flushed = write+flush = 2)", d.PhysicalOps)
	}
}

func TestWebServerEndToEnd(t *testing.T) {
	cl, _ := testCluster(t, Original, true)
	var conn *HTTPConn
	cl.Clients[0].DialHTTP(ServerAddr, func(h *HTTPConn, err error) {
		if err != nil {
			t.Fatalf("DialHTTP: %v", err)
		}
		conn = h
	})
	run(t, cl)
	if conn == nil {
		t.Fatal("no HTTP connection")
	}
	for i := 0; i < 3; i++ {
		got := -1
		conn.Get("data.bin", func(n int, err error) {
			if err != nil {
				t.Fatalf("Get: %v", err)
			}
			got = n
		})
		run(t, cl)
		if got != 64*extfs.BlockSize {
			t.Fatalf("request %d: body = %d bytes, want %d", i, got, 64*extfs.BlockSize)
		}
	}
	if cl.App.Web.Requests != 3 {
		t.Fatalf("server requests = %d", cl.App.Web.Requests)
	}
	// 404 handling.
	code := -1
	conn.Get("missing.html", func(n int, err error) { code = n })
	run(t, cl)
	if code <= 0 {
		t.Fatal("404 response not delivered")
	}
}

func TestWebServerTable2Copies(t *testing.T) {
	// kHTTPd sendfile path: miss = 2 copies, hit = 1 copy (Table 2).
	cl, _ := testCluster(t, Original, true)
	var conn *HTTPConn
	cl.Clients[0].DialHTTP(ServerAddr, func(h *HTTPConn, err error) { conn = h })
	run(t, cl)

	get := func() {
		t.Helper()
		fin := false
		conn.Get("data.bin", func(n int, err error) {
			if err != nil {
				t.Fatalf("Get: %v", err)
			}
			fin = true
		})
		run(t, cl)
		if !fin {
			t.Fatal("GET did not complete")
		}
	}
	get() // cold: metadata + data miss

	before := cl.App.Node.Copies
	get() // warm hit
	d := cl.App.Node.Copies.Sub(before)
	// The file is served in webChunk chunks; each chunk is one sendfile
	// stage — copies-per-request normalized by chunks must be 1.
	chunks := uint64((64*extfs.BlockSize + webChunk - 1) / webChunk)
	if d.PhysicalOps != chunks {
		t.Fatalf("web hit copies = %d, want %d (1 per sendfile chunk)", d.PhysicalOps, chunks)
	}
}

func TestNCacheWebIntegrity(t *testing.T) {
	cl, _ := testCluster(t, NCache, true)
	var conn *HTTPConn
	cl.Clients[0].DialHTTP(ServerAddr, func(h *HTTPConn, err error) { conn = h })
	run(t, cl)
	if conn == nil {
		t.Fatal("no connection")
	}
	done := false
	conn.Get("data.bin", func(n int, err error) {
		if err != nil || n != 64*extfs.BlockSize {
			t.Fatalf("Get: n=%d err=%v", n, err)
		}
		done = true
	})
	run(t, cl)
	if !done {
		t.Fatal("GET did not complete")
	}
	if cl.App.Module.Stats.Substitutions == 0 {
		t.Fatal("web path performed no substitutions")
	}
}

func TestTwoNICClusterServesBothAddresses(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{
		Mode:          Original,
		ServerNICs:    2,
		NumClients:    2,
		BlocksPerDisk: 8 * 1024,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	fmtr, err := extfs.Format(cl.Storage.Array, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fmtr.AddFile("f", 8*extfs.BlockSize, fileContent); err != nil {
		t.Fatal(err)
	}
	if err := fmtr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Each client mounted a different NIC; both must work.
	for i, host := range cl.Clients {
		got := false
		host.NFS.Lookup(nfs.RootFH(), "f", func(h nfs.FH, a nfs.Attr, err error) {
			if err != nil {
				t.Fatalf("client %d lookup: %v", i, err)
			}
			got = true
		})
		run(t, cl)
		if !got {
			t.Fatalf("client %d: no reply", i)
		}
	}
	if cl.App.Node.NICs()[1].Stats.PacketsRx == 0 {
		t.Fatal("second NIC saw no traffic")
	}
}

func TestNFSCreateWriteRemoveLifecycle(t *testing.T) {
	cl, _ := testCluster(t, NCache, false)
	client := cl.Clients[0].NFS

	var fh nfs.FH
	client.Create(nfs.RootFH(), "newfile", func(h nfs.FH, a nfs.Attr, err error) {
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		fh = h
	})
	run(t, cl)

	payload := bytes.Repeat([]byte{0x77}, 3*extfs.BlockSize)
	writeFile(t, cl, fh, 0, payload)
	if got := readFile(t, cl, fh, 0, len(payload)); !bytes.Equal(got, payload) {
		t.Fatal("new file round trip failed")
	}

	var names []string
	client.Readdir(nfs.RootFH(), func(ns []string, err error) {
		if err != nil {
			t.Fatalf("Readdir: %v", err)
		}
		names = ns
	})
	run(t, cl)
	found := false
	for _, n := range names {
		if n == "newfile" {
			found = true
		}
	}
	if !found {
		t.Fatalf("newfile missing from readdir: %v", names)
	}

	client.Remove(nfs.RootFH(), "newfile", func(err error) {
		if err != nil {
			t.Fatalf("Remove: %v", err)
		}
	})
	run(t, cl)
	client.Lookup(nfs.RootFH(), "newfile", func(_ nfs.FH, _ nfs.Attr, err error) {
		if err == nil {
			t.Fatal("removed file still visible")
		}
	})
	run(t, cl)
}

func TestUnalignedWriteFallsBackSafely(t *testing.T) {
	cl, _ := testCluster(t, NCache, false)
	fh := lookupFile(t, cl, "data.bin")
	// Prime the block through the NCache path.
	readFile(t, cl, fh, 0, extfs.BlockSize)
	// Partial overwrite inside block 0: forces materialization.
	patch := bytes.Repeat([]byte{0xEF}, 100)
	writeFile(t, cl, fh, 50, patch)
	got := readFile(t, cl, fh, 0, extfs.BlockSize)
	want := expect(0, extfs.BlockSize)
	copy(want[50:], patch)
	if !bytes.Equal(got, want) {
		t.Fatal("partial overwrite of a logical block corrupted data")
	}
}

func TestNCacheL2AvoidsStorageTraffic(t *testing.T) {
	// With a tiny FS cache, re-reads miss it — but the NCache L2 must
	// serve them locally (§3.4), with no new iSCSI commands.
	cl, err := NewCluster(ClusterConfig{
		Mode:          NCache,
		NumClients:    1,
		BlocksPerDisk: 16 * 1024,
		FSCacheBlocks: 16, // absurdly small: every data read misses it
		NCacheBytes:   64 << 20,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	fmtr, err := extfs.Format(cl.Storage.Array, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fmtr.AddFile("hot", 64*extfs.BlockSize, fileContent); err != nil {
		t.Fatal(err)
	}
	if err := fmtr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	fh := lookupFile(t, cl, "hot")

	// Pass 1: populate the LBN cache (storage traffic expected).
	for off := uint64(0); off < 64*extfs.BlockSize; off += 32 * 1024 {
		readFile(t, cl, fh, off, 32*1024)
	}
	cmdsAfterWarm := cl.App.Initiator.ReadCmds
	l2Before := cl.App.Module.Stats.L2Hits
	l2MissBefore := cl.App.Module.Stats.L2Misses

	// Pass 2: the FS cache (16 blocks) has long evicted the early blocks;
	// reads must be served by the L2, not the network.
	for off := uint64(0); off < 64*extfs.BlockSize; off += 32 * 1024 {
		got := readFile(t, cl, fh, off, 32*1024)
		if !bytes.Equal(got, expect(off, 32*1024)) {
			t.Fatalf("L2-served read at %d corrupted", off)
		}
	}
	// Metadata blocks (inodes) legitimately bypass the L2 — the paper's
	// cache holds regular data only. Allow a handful of metadata reads
	// but no data-path L2 misses.
	if extra := cl.App.Initiator.ReadCmds - cmdsAfterWarm; extra > 4 {
		t.Fatalf("warm pass issued %d new iSCSI reads; L2 not serving", extra)
	}
	if miss := cl.App.Module.Stats.L2Misses - l2MissBefore; miss != 0 {
		t.Fatalf("warm pass had %d data-path L2 misses", miss)
	}
	if cl.App.Module.Stats.L2Hits == l2Before {
		t.Fatal("no L2 hits recorded")
	}
}

func TestNFSOverTCPIntegrity(t *testing.T) {
	// The same service over record-marked RPC/TCP: full integrity in both
	// Original and NCache modes, including substitution on the TCP path.
	for _, mode := range []Mode{Original, NCache} {
		cl, _ := testCluster(t, mode, false)
		var client *nfs.Client
		cl.Clients[0].DialNFSTCP(ServerAddr, func(c *nfs.Client, err error) {
			if err != nil {
				t.Fatalf("%s: dial: %v", mode, err)
			}
			client = c
		})
		run(t, cl)
		if client == nil {
			t.Fatalf("%s: no TCP NFS client", mode)
		}
		var fh nfs.FH
		client.Lookup(nfs.RootFH(), "data.bin", func(h nfs.FH, _ nfs.Attr, err error) {
			if err != nil {
				t.Fatalf("%s: lookup: %v", mode, err)
			}
			fh = h
		})
		run(t, cl)
		var got []byte
		client.Read(fh, 4096, 32*1024, func(c *netbuf.Chain, _ nfs.Attr, err error) {
			if err != nil {
				t.Fatalf("%s: read: %v", mode, err)
			}
			got = c.Flatten()
			c.Release()
		})
		run(t, cl)
		if !bytes.Equal(got, expect(4096, 32*1024)) {
			t.Fatalf("%s: NFS-over-TCP content mismatch", mode)
		}
		// Writes too.
		patch := bytes.Repeat([]byte{0x5B}, extfs.BlockSize)
		wrote := false
		client.WriteBytes(fh, 0, patch, func(n int, _ nfs.Attr, err error) {
			wrote = err == nil && n == len(patch)
		})
		run(t, cl)
		if !wrote {
			t.Fatalf("%s: TCP write failed", mode)
		}
		client.Read(fh, 0, extfs.BlockSize, func(c *netbuf.Chain, _ nfs.Attr, err error) {
			if err != nil {
				t.Fatalf("%s: re-read: %v", mode, err)
			}
			if !bytes.Equal(c.Flatten(), patch) {
				t.Fatalf("%s: TCP read-your-write failed", mode)
			}
			c.Release()
		})
		run(t, cl)
	}
}

func TestNCacheEvictionPressureIntegrity(t *testing.T) {
	// A tiny FS cache forces continuous eviction and flush/remap while a
	// client writes and reads back; every byte must survive the churn.
	cl, err := NewCluster(ClusterConfig{
		Mode:          NCache,
		NumClients:    1,
		BlocksPerDisk: 16 * 1024,
		FSCacheBlocks: 48, // 192 KB: far smaller than the working set
		NCacheBytes:   64 << 20,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	fmtr, err := extfs.Format(cl.Storage.Array, 256)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := fmtr.AddFile("churn", 256*extfs.BlockSize, fileContent) // 1 MB
	if err != nil {
		t.Fatal(err)
	}
	if err := fmtr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	fh := lookupFile(t, cl, "churn")

	// Overwrite many scattered blocks, interleaved with reads.
	rng := sim.NewRNG(31)
	written := map[uint64][]byte{}
	for i := 0; i < 160; i++ {
		blk := uint64(rng.Intn(int(spec.Blocks)))
		payload := make([]byte, extfs.BlockSize)
		rng.Fill(payload)
		writeFile(t, cl, fh, blk*extfs.BlockSize, payload)
		written[blk] = payload
		if i%8 == 7 {
			// Interleaved read of a previously written block.
			for b, want := range written {
				got := readFile(t, cl, fh, b*extfs.BlockSize, extfs.BlockSize)
				if !bytes.Equal(got, want) {
					t.Fatalf("iteration %d: block %d corrupted under eviction pressure", i, b)
				}
				break
			}
		}
	}
	if cl.App.Cache.Stats.Evictions == 0 {
		t.Fatal("no evictions — the test exerted no pressure")
	}
	if cl.App.Module.Stats.Remaps == 0 {
		t.Fatal("no remaps — flushes did not go through the write hook")
	}
	// Final audit of every written block, plus an untouched one.
	for b, want := range written {
		got := readFile(t, cl, fh, b*extfs.BlockSize, extfs.BlockSize)
		if !bytes.Equal(got, want) {
			t.Fatalf("final audit: block %d corrupted", b)
		}
	}
	for b := uint64(0); b < uint64(spec.Blocks); b++ {
		if _, ok := written[b]; !ok {
			got := readFile(t, cl, fh, b*extfs.BlockSize, extfs.BlockSize)
			if !bytes.Equal(got, expect(b*extfs.BlockSize, extfs.BlockSize)) {
				t.Fatalf("untouched block %d corrupted", b)
			}
			break
		}
	}
}

func TestCrossClientVisibility(t *testing.T) {
	// NFS has no client-side caching here: a write by client 0 is
	// immediately visible to client 1 (served from the server's caches).
	cl, _ := testCluster(t, NCache, false)
	cl2, err := NewCluster(ClusterConfig{Mode: Original, NumClients: 2, BlocksPerDisk: 8 * 1024})
	_ = cl2
	_ = err
	fh := lookupFile(t, cl, "data.bin")

	host1 := cl.Clients[0]
	// Attach a second client host on the same fabric.
	if len(cl.Clients) < 2 {
		// testCluster builds one client; write/read through two distinct
		// NFS client instances on the same host instead.
		second, err := host1.NewNFSClient(ServerAddr)
		if err != nil {
			t.Fatal(err)
		}
		payload := bytes.Repeat([]byte{0x3C}, extfs.BlockSize)
		writeFile(t, cl, fh, 0, payload)
		var got []byte
		second.Read(fh, 0, extfs.BlockSize, func(c *netbuf.Chain, _ nfs.Attr, err error) {
			if err != nil {
				t.Fatalf("second client read: %v", err)
			}
			got = c.Flatten()
			c.Release()
		})
		run(t, cl)
		if !bytes.Equal(got, payload) {
			t.Fatal("write by one client not visible to another")
		}
	}
}

func TestChecksumInheritanceWithoutOffload(t *testing.T) {
	// With NIC checksum offload disabled, the original server pays a
	// software checksum walk per transmitted payload byte. NCache's
	// substituted replies carry partials inherited from the data's
	// arrival, so its read path charges no checksum bytes — and the
	// clients still verify every datagram's checksum end to end.
	cl, _ := testCluster(t, NCache, false)
	for _, nic := range cl.App.Node.NICs() {
		nic.ChecksumOffload = false
	}
	fh := lookupFile(t, cl, "data.bin")
	readFile(t, cl, fh, 0, 32*1024) // warm

	before := cl.App.Node.Copies.ChecksumBytes
	got := readFile(t, cl, fh, 0, 32*1024)
	if !bytes.Equal(got, expect(0, 32*1024)) {
		t.Fatal("content mismatch (inherited checksum must still verify)")
	}
	delta := cl.App.Node.Copies.ChecksumBytes - before
	// The only software checksum work left is verifying the tiny inbound
	// request (~60 B); the 32 KB reply payload must not be re-walked.
	if delta > 256 {
		t.Fatalf("NCache read walked %d checksum bytes despite inheritance", delta)
	}
	if cl.Clients[0].UDP.BadChecksums != 0 {
		t.Fatalf("client saw %d bad checksums — inherited partial is wrong", cl.Clients[0].UDP.BadChecksums)
	}
}

func TestOriginalPaysChecksumWithoutOffload(t *testing.T) {
	cl, _ := testCluster(t, Original, false)
	for _, nic := range cl.App.Node.NICs() {
		nic.ChecksumOffload = false
	}
	fh := lookupFile(t, cl, "data.bin")
	readFile(t, cl, fh, 0, 32*1024)
	before := cl.App.Node.Copies.ChecksumBytes
	readFile(t, cl, fh, 0, 32*1024)
	delta := cl.App.Node.Copies.ChecksumBytes - before
	if delta < 32*1024 {
		t.Fatalf("original walked only %d checksum bytes, want >= payload", delta)
	}
}

func TestClusterDeterminism(t *testing.T) {
	runOnce := func() (uint64, sim.Time) {
		cl, _ := testCluster(t, NCache, false)
		fh := lookupFile(t, cl, "data.bin")
		for i := 0; i < 5; i++ {
			readFile(t, cl, fh, uint64(i)*8192, 8192)
		}
		return cl.App.Node.Reqs.Ops, cl.Eng.Now()
	}
	ops1, t1 := runOnce()
	ops2, t2 := runOnce()
	if ops1 != ops2 || t1 != t2 {
		t.Fatalf("nondeterministic: ops %d/%d, time %v/%v", ops1, ops2, t1, t2)
	}
}
