package passthru

import (
	"bytes"
	"testing"

	"ncache/internal/netbuf"
	"ncache/internal/simnet"
)

// TestPoolsDrainAfterWorkload is the leak check for the pooled zero-copy
// data path: after a mixed read/write workload drains, every node's
// transmit and block pools must have zero buffers outstanding (whatever the
// hot path borrowed, it gave back) and no pool may have seen a
// double-release. The RxPool is exempt from the drain check under NCache,
// where cached payloads deliberately pin receive buffers (§4.1).
func TestPoolsDrainAfterWorkload(t *testing.T) {
	for _, mode := range []Mode{Original, NCache, Baseline} {
		t.Run(mode.String(), func(t *testing.T) {
			cl, _ := testCluster(t, mode, false)
			fh := lookupFile(t, cl, "data.bin")
			for i := 0; i < 6; i++ {
				readFile(t, cl, fh, uint64(i)*20000, 20000)
			}
			if mode == Original {
				// Writes mutate the disk image; exercise them where the
				// payload is real data end to end.
				writeFile(t, cl, fh, 8192, bytes.Repeat([]byte{0xAB}, 12288))
				readFile(t, cl, fh, 8192, 12288)
			}
			if cl.App.Module != nil {
				// The cache deliberately pins the wire buffers it captured
				// (frames cross the simulated fabric by reference, so those
				// are the sender's pool buffers). Drop the clean entries so
				// anything still outstanding is a true leak.
				if n := cl.App.Module.DropClean(); n == 0 {
					t.Fatal("ncache cached nothing during the workload")
				}
			}
			nodes := []*simnet.Node{cl.App.Node, cl.Storage.Node}
			for _, h := range cl.Clients {
				nodes = append(nodes, h.Node)
			}
			for _, n := range nodes {
				checkPoolDrained(t, n.TxPool)
				checkPoolDrained(t, n.BlkPool)
				if n.RxPool.DoubleFrees() != 0 {
					t.Errorf("%s: RxPool double frees = %d", n.Name, n.RxPool.DoubleFrees())
				}
			}
		})
	}
}

func checkPoolDrained(t *testing.T, p *netbuf.Pool) {
	t.Helper()
	if got := p.Outstanding(); got != 0 {
		t.Errorf("pool %s leaked %d buffers (peak %d, allocs %d, reuses %d)",
			p.Name(), got, p.Peak(), p.Allocs(), p.Reuses())
	}
	if df := p.DoubleFrees(); df != 0 {
		t.Errorf("pool %s double frees = %d", p.Name(), df)
	}
}
