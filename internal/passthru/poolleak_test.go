package passthru

import (
	"bytes"
	"testing"

	"ncache/internal/netbuf"
	"ncache/internal/simnet"
)

// TestPoolsDrainAfterWorkload is the leak check for the pooled zero-copy
// data path: after a mixed read/write workload drains, every node's pools —
// receive, transmit and block — must have zero buffers outstanding
// (whatever the hot path borrowed, it gave back), every NIC's registered RX
// ring must have all its credits reposted, and no pool may have seen a
// double-release. Under NCache the cache deliberately pins receive buffers
// (§4.1) — these are the app server's own RxPool buffers, adopted at
// delivery — so the check drops the clean entries first; anything still
// outstanding after that is a true leak.
func TestPoolsDrainAfterWorkload(t *testing.T) {
	for _, mode := range []Mode{Original, NCache, Baseline} {
		t.Run(mode.String(), func(t *testing.T) {
			testPoolsDrain(t, mode, "")
		})
	}
}

// TestPoolsDrainUnderTCPLoss re-runs the leak check with frame loss on the
// app server's links. Every iSCSI segment rides TCP, so drops force the
// connection's retransmission queue to clone payload chains (owner
// "tcp.retransmit") and release them as acks advance; UDP RPC recovers via
// datagram retransmission at the same time. Zero outstanding buffers after
// the drain proves loss recovery never leaks.
func TestPoolsDrainUnderTCPLoss(t *testing.T) {
	for _, mode := range []Mode{Original, NCache} {
		t.Run(mode.String(), func(t *testing.T) {
			testPoolsDrain(t, mode, "drop:app*:rate=0.01")
		})
	}
}

func testPoolsDrain(t *testing.T, mode Mode, faultSpec string) {
	cl, _ := testClusterFaults(t, mode, false, faultSpec)
	fh := lookupFile(t, cl, "data.bin")
	if cl.Faults != nil {
		cl.Faults.Arm()
	}
	for i := 0; i < 6; i++ {
		readFile(t, cl, fh, uint64(i)*20000, 20000)
	}
	if mode == Original {
		// Writes mutate the disk image; exercise them where the
		// payload is real data end to end.
		writeFile(t, cl, fh, 8192, bytes.Repeat([]byte{0xAB}, 12288))
		readFile(t, cl, fh, 8192, 12288)
	}
	if cl.Faults != nil {
		cl.Faults.Quiesce()
		if err := cl.Eng.Run(); err != nil {
			t.Fatalf("drain after quiesce: %v", err)
		}
		retrans, rtos, fastrtx, protoErrs, aborted := cl.TCPCounters()
		if retrans == 0 {
			t.Error("frame loss on the app links produced no TCP retransmissions")
		}
		t.Logf("tcp recovery: retrans=%d rtos=%d fastrtx=%d protoErrs=%d aborted=%d",
			retrans, rtos, fastrtx, protoErrs, aborted)
		if aborted != 0 {
			t.Errorf("loss recovery aborted %d connections", aborted)
		}
	}
	if cl.App.Module != nil {
		// Captured chains pin their buffers until eviction; drop the
		// clean entries so anything still outstanding is a true leak.
		if n := cl.App.Module.DropClean(); n == 0 {
			t.Fatal("ncache cached nothing during the workload")
		}
	}
	nodes := []*simnet.Node{cl.App.Node, cl.Storage.Node}
	for _, h := range cl.Clients {
		nodes = append(nodes, h.Node)
	}
	adoptions := uint64(0)
	for _, n := range nodes {
		checkPoolDrained(t, n.RxPool)
		checkPoolDrained(t, n.TxPool)
		checkPoolDrained(t, n.BlkPool)
		for _, nic := range n.NICs() {
			ring := nic.Ring()
			if got := ring.Outstanding(); got != 0 {
				t.Errorf("%s %s: RX ring %d credits outstanding (adopted %d frames/%d bufs)",
					n.Name, nic.Addr, got, ring.FramesAdopted, ring.BufsAdopted)
			}
			adoptions += ring.BufsAdopted
		}
	}
	if adoptions == 0 {
		t.Error("registered ingress adopted no buffers over a full workload")
	}
	if df := netbuf.GlobalDoubleFrees(); df != 0 {
		t.Errorf("global (unpooled) double frees = %d", df)
	}
}

func checkPoolDrained(t *testing.T, p *netbuf.Pool) {
	t.Helper()
	if got := p.Outstanding(); got != 0 {
		t.Errorf("pool %s leaked %d buffers (peak %d, allocs %d, reuses %d, adopted %d, owners %v)",
			p.Name(), got, p.Peak(), p.Allocs(), p.Reuses(), p.Adopted(), p.LeakReport())
	}
	checkNoDoubleFrees(t, p)
}

func checkNoDoubleFrees(t *testing.T, p *netbuf.Pool) {
	t.Helper()
	if df := p.DoubleFrees(); df != 0 {
		t.Errorf("pool %s double frees = %d", p.Name(), df)
	}
}
