// Package blockdev models the storage hardware behind the iSCSI target: an
// in-memory block store with a disk service-time model. RAID-0 striping
// across several disks (the paper's array of four IDE drives) lives in
// internal/storage, which composes these disks into volumes.
//
// Block contents are real bytes (integrity checks compare them end to end),
// but blocks never explicitly written are synthesized on demand from a
// deterministic function of the block number, so a "2 GB file system" costs
// only the blocks actually dirtied.
package blockdev

import (
	"errors"
	"fmt"

	"ncache/internal/fault"
	"ncache/internal/sim"
	"ncache/internal/trace"
)

// Geometry describes a device's addressing.
type Geometry struct {
	BlockSize int
	NumBlocks int64
}

// Bytes returns the device capacity in bytes.
func (g Geometry) Bytes() int64 { return g.NumBlocks * int64(g.BlockSize) }

// Errors returned by devices.
var (
	ErrOutOfRange = errors.New("blockdev: block out of range")
	ErrBadLength  = errors.New("blockdev: data length not block-aligned")
	// ErrTransient is an injected transient device error: the medium is
	// fine and a retry of the same I/O is expected to succeed.
	ErrTransient = errors.New("blockdev: transient device error")
)

// Device is an asynchronous block store. Completion callbacks fire in
// simulation-event context after the modeled service time elapses.
type Device interface {
	Geometry() Geometry
	// ReadBlocks delivers count blocks starting at lbn as one slab.
	ReadBlocks(lbn int64, count int, done func([]byte, error))
	// WriteBlocks stores block-aligned data starting at lbn.
	WriteBlocks(lbn int64, data []byte, done func(error))
}

// Model is a disk service-time model: a fixed per-request overhead (seek +
// rotation + command processing) plus media transfer at a streaming rate.
type Model struct {
	// PerRequest is charged once per I/O.
	PerRequest sim.Duration
	// BytesPerSec is the media streaming rate.
	BytesPerSec int64
}

// IDE2000 approximates the paper's IBM DTLA-307075 drives: ~37 MB/s media
// rate, ~1 ms average positioning overhead under the mixed loads used here.
func IDE2000() Model {
	return Model{PerRequest: sim.Millisecond, BytesPerSec: 37_000_000}
}

// ServiceTime returns the modeled duration of one n-byte transfer.
func (m Model) ServiceTime(n int) sim.Duration {
	d := m.PerRequest
	if m.BytesPerSec > 0 {
		d += sim.Duration(int64(n) * int64(sim.Second) / m.BytesPerSec)
	}
	return d
}

// MemDisk is one simulated disk: sparse in-memory content plus a service
// queue (one outstanding I/O at a time, FIFO — a disk arm).
type MemDisk struct {
	eng    *sim.Engine
	name   string
	geom   Geometry
	model  Model
	arm    *sim.Resource
	faults *fault.Injector
	blocks map[int64][]byte
	// lastEnd tracks the block after the previous I/O: a request starting
	// exactly there is sequential and skips the positioning overhead
	// (track buffer + read-ahead make streaming transfers seek-free).
	lastEnd int64
	// Synthesize provides content for never-written blocks. Nil means
	// zero-filled.
	Synthesize func(lbn int64, dst []byte)

	// Reads/Writes count completed operations.
	Reads, Writes uint64
	// BytesRead/BytesWritten count payload volume.
	BytesRead, BytesWritten uint64
	// FaultErrors counts I/Os failed by injected transient errors.
	FaultErrors uint64
}

var _ Device = (*MemDisk)(nil)

// NewMemDisk creates a disk with the given geometry and timing model.
func NewMemDisk(eng *sim.Engine, name string, geom Geometry, model Model) *MemDisk {
	return &MemDisk{
		eng:     eng,
		name:    name,
		geom:    geom,
		model:   model,
		arm:     sim.NewResource(eng, name),
		blocks:  make(map[int64][]byte),
		lastEnd: -1,
	}
}

// SetFaults installs the fault injector consulted on every I/O (the disk's
// injection site is its name, e.g. "disk0"). Nil disables injection.
func (d *MemDisk) SetFaults(in *fault.Injector) { d.faults = in }

// Geometry returns the disk's addressing.
func (d *MemDisk) Geometry() Geometry { return d.geom }

// Utilization reports the arm's busy fraction since stats reset.
func (d *MemDisk) Utilization() float64 { return d.arm.Utilization() }

// ResetStats restarts the arm's measurement window.
func (d *MemDisk) ResetStats() {
	d.arm.ResetStats()
	d.Reads, d.Writes, d.BytesRead, d.BytesWritten = 0, 0, 0, 0
}

// check validates a block range.
func (d *MemDisk) check(lbn int64, count int) error {
	if lbn < 0 || count < 0 || lbn+int64(count) > d.geom.NumBlocks {
		return fmt.Errorf("%w: [%d,+%d) of %d", ErrOutOfRange, lbn, count, d.geom.NumBlocks)
	}
	return nil
}

// serviceTime models one transfer, charging the positioning overhead only
// for non-sequential access.
func (d *MemDisk) serviceTime(lbn int64, n int) sim.Duration {
	t := d.model.ServiceTime(n)
	if lbn == d.lastEnd {
		t -= d.model.PerRequest
	}
	d.lastEnd = lbn + int64((n+d.geom.BlockSize-1)/d.geom.BlockSize)
	return t
}

// ReadBlocks implements Device.
func (d *MemDisk) ReadBlocks(lbn int64, count int, done func([]byte, error)) {
	if err := d.check(lbn, count); err != nil {
		done(nil, err)
		return
	}
	n := count * d.geom.BlockSize
	trace.To(d.eng, trace.LDisk)
	fd := d.faults.Disk(d.eng, d.name)
	d.arm.Use(d.serviceTime(lbn, n)+fd.Delay, func() {
		if fd.Err {
			d.FaultErrors++
			done(nil, ErrTransient)
			return
		}
		out := make([]byte, n)
		for i := 0; i < count; i++ {
			b := lbn + int64(i)
			dst := out[i*d.geom.BlockSize : (i+1)*d.geom.BlockSize]
			if stored, ok := d.blocks[b]; ok {
				copy(dst, stored)
			} else if d.Synthesize != nil {
				d.Synthesize(b, dst)
			}
		}
		d.Reads++
		d.BytesRead += uint64(n)
		done(out, nil)
	})
}

// WriteBlocks implements Device.
func (d *MemDisk) WriteBlocks(lbn int64, data []byte, done func(error)) {
	if len(data)%d.geom.BlockSize != 0 {
		done(fmt.Errorf("%w: %d", ErrBadLength, len(data)))
		return
	}
	count := len(data) / d.geom.BlockSize
	if err := d.check(lbn, count); err != nil {
		done(err)
		return
	}
	trace.To(d.eng, trace.LDisk)
	fd := d.faults.Disk(d.eng, d.name)
	d.arm.Use(d.serviceTime(lbn, len(data))+fd.Delay, func() {
		if fd.Err {
			d.FaultErrors++
			done(ErrTransient)
			return
		}
		for i := 0; i < count; i++ {
			b := make([]byte, d.geom.BlockSize)
			copy(b, data[i*d.geom.BlockSize:(i+1)*d.geom.BlockSize])
			d.blocks[lbn+int64(i)] = b
		}
		d.Writes++
		d.BytesWritten += uint64(len(data))
		done(nil)
	})
}

// PeekBlock returns a block's current content without charging service time
// (setup and verification hook, not a data-path operation).
func (d *MemDisk) PeekBlock(lbn int64) []byte {
	out := make([]byte, d.geom.BlockSize)
	if stored, ok := d.blocks[lbn]; ok {
		copy(out, stored)
	} else if d.Synthesize != nil {
		d.Synthesize(lbn, out)
	}
	return out
}

// PokeBlock stores a block's content without charging service time (setup
// hook used by mkfs; not a data-path operation).
func (d *MemDisk) PokeBlock(lbn int64, data []byte) {
	b := make([]byte, d.geom.BlockSize)
	copy(b, data)
	d.blocks[lbn] = b
}

// DirectAccess is the zero-time setup interface mkfs and experiment
// verifiers use: it bypasses the service-time model entirely.
type DirectAccess interface {
	Geometry() Geometry
	PeekBlock(lbn int64) []byte
	PokeBlock(lbn int64, data []byte)
}

var _ DirectAccess = (*MemDisk)(nil)
