package blockdev

import (
	"bytes"
	"errors"
	"testing"

	"ncache/internal/sim"
)

func newDisk(eng *sim.Engine, blocks int64) *MemDisk {
	return NewMemDisk(eng, "d0", Geometry{BlockSize: 512, NumBlocks: blocks}, Model{
		PerRequest:  sim.Millisecond,
		BytesPerSec: 37_000_000,
	})
}

func TestMemDiskWriteReadRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	d := newDisk(eng, 1000)
	data := bytes.Repeat([]byte("AB"), 512) // 2 blocks
	wrote := false
	d.WriteBlocks(10, data, func(err error) {
		if err != nil {
			t.Errorf("Write: %v", err)
		}
		wrote = true
		d.ReadBlocks(10, 2, func(got []byte, err error) {
			if err != nil {
				t.Errorf("Read: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Error("read-back mismatch")
			}
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !wrote {
		t.Fatal("write never completed")
	}
	if d.Reads != 1 || d.Writes != 1 {
		t.Fatalf("ops = %d/%d", d.Reads, d.Writes)
	}
}

func TestMemDiskSynthesizedContent(t *testing.T) {
	eng := sim.NewEngine()
	d := newDisk(eng, 1000)
	d.Synthesize = func(lbn int64, dst []byte) {
		for i := range dst {
			dst[i] = byte(lbn)
		}
	}
	d.ReadBlocks(7, 1, func(got []byte, err error) {
		if err != nil {
			t.Errorf("Read: %v", err)
		}
		if got[0] != 7 || got[511] != 7 {
			t.Error("synthesized content wrong")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Written blocks override synthesis.
	d.WriteBlocks(7, make([]byte, 512), func(err error) {
		d.ReadBlocks(7, 1, func(got []byte, err error) {
			if got[0] != 0 {
				t.Error("written block did not override synthesis")
			}
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMemDiskServiceTime(t *testing.T) {
	eng := sim.NewEngine()
	d := newDisk(eng, 1_000_000)
	var doneAt sim.Time
	d.ReadBlocks(0, 72, func(_ []byte, err error) { doneAt = eng.Now() }) // 36864 bytes
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := sim.Time(sim.Millisecond) + sim.Time(int64(72*512)*int64(sim.Second)/37_000_000)
	if doneAt != want {
		t.Fatalf("service time = %v, want %v", doneAt, want)
	}
}

func TestMemDiskSerializesRequests(t *testing.T) {
	eng := sim.NewEngine()
	d := newDisk(eng, 1000)
	var finish []sim.Time
	// Non-sequential requests: each pays the positioning overhead.
	for _, lbn := range []int64{0, 100, 200} {
		d.ReadBlocks(lbn, 1, func(_ []byte, err error) {
			finish = append(finish, eng.Now())
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(finish) != 3 {
		t.Fatalf("completions = %d", len(finish))
	}
	per := sim.Duration(sim.Millisecond) + sim.Duration(int64(512)*int64(sim.Second)/37_000_000)
	if finish[2].Sub(finish[1]) != per || finish[1].Sub(finish[0]) != per {
		t.Fatalf("requests not serialized: %v", finish)
	}
}

func TestMemDiskSequentialSkipsSeek(t *testing.T) {
	eng := sim.NewEngine()
	d := newDisk(eng, 1000)
	var finish []sim.Time
	// Block 0, then 1, then 2: streaming — only the first pays the seek.
	for i := int64(0); i < 3; i++ {
		d.ReadBlocks(i, 1, func(_ []byte, err error) {
			finish = append(finish, eng.Now())
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	media := sim.Duration(int64(512) * int64(sim.Second) / 37_000_000)
	if finish[1].Sub(finish[0]) != media || finish[2].Sub(finish[1]) != media {
		t.Fatalf("sequential reads charged seek: %v", finish)
	}
	if finish[0] != sim.Time(sim.Millisecond+media) {
		t.Fatalf("first read skipped the seek: %v", finish[0])
	}
}

func TestMemDiskBoundsAndAlignment(t *testing.T) {
	eng := sim.NewEngine()
	d := newDisk(eng, 10)
	d.ReadBlocks(9, 2, func(_ []byte, err error) {
		if !errors.Is(err, ErrOutOfRange) {
			t.Errorf("out-of-range read err = %v", err)
		}
	})
	d.WriteBlocks(0, make([]byte, 100), func(err error) {
		if !errors.Is(err, ErrBadLength) {
			t.Errorf("misaligned write err = %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}
