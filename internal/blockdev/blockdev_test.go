package blockdev

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"ncache/internal/sim"
)

func newDisk(eng *sim.Engine, blocks int64) *MemDisk {
	return NewMemDisk(eng, "d0", Geometry{BlockSize: 512, NumBlocks: blocks}, Model{
		PerRequest:  sim.Millisecond,
		BytesPerSec: 37_000_000,
	})
}

func TestMemDiskWriteReadRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	d := newDisk(eng, 1000)
	data := bytes.Repeat([]byte("AB"), 512) // 2 blocks
	wrote := false
	d.WriteBlocks(10, data, func(err error) {
		if err != nil {
			t.Errorf("Write: %v", err)
		}
		wrote = true
		d.ReadBlocks(10, 2, func(got []byte, err error) {
			if err != nil {
				t.Errorf("Read: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Error("read-back mismatch")
			}
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !wrote {
		t.Fatal("write never completed")
	}
	if d.Reads != 1 || d.Writes != 1 {
		t.Fatalf("ops = %d/%d", d.Reads, d.Writes)
	}
}

func TestMemDiskSynthesizedContent(t *testing.T) {
	eng := sim.NewEngine()
	d := newDisk(eng, 1000)
	d.Synthesize = func(lbn int64, dst []byte) {
		for i := range dst {
			dst[i] = byte(lbn)
		}
	}
	d.ReadBlocks(7, 1, func(got []byte, err error) {
		if err != nil {
			t.Errorf("Read: %v", err)
		}
		if got[0] != 7 || got[511] != 7 {
			t.Error("synthesized content wrong")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Written blocks override synthesis.
	d.WriteBlocks(7, make([]byte, 512), func(err error) {
		d.ReadBlocks(7, 1, func(got []byte, err error) {
			if got[0] != 0 {
				t.Error("written block did not override synthesis")
			}
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMemDiskServiceTime(t *testing.T) {
	eng := sim.NewEngine()
	d := newDisk(eng, 1_000_000)
	var doneAt sim.Time
	d.ReadBlocks(0, 72, func(_ []byte, err error) { doneAt = eng.Now() }) // 36864 bytes
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := sim.Time(sim.Millisecond) + sim.Time(int64(72*512)*int64(sim.Second)/37_000_000)
	if doneAt != want {
		t.Fatalf("service time = %v, want %v", doneAt, want)
	}
}

func TestMemDiskSerializesRequests(t *testing.T) {
	eng := sim.NewEngine()
	d := newDisk(eng, 1000)
	var finish []sim.Time
	// Non-sequential requests: each pays the positioning overhead.
	for _, lbn := range []int64{0, 100, 200} {
		d.ReadBlocks(lbn, 1, func(_ []byte, err error) {
			finish = append(finish, eng.Now())
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(finish) != 3 {
		t.Fatalf("completions = %d", len(finish))
	}
	per := sim.Duration(sim.Millisecond) + sim.Duration(int64(512)*int64(sim.Second)/37_000_000)
	if finish[2].Sub(finish[1]) != per || finish[1].Sub(finish[0]) != per {
		t.Fatalf("requests not serialized: %v", finish)
	}
}

func TestMemDiskSequentialSkipsSeek(t *testing.T) {
	eng := sim.NewEngine()
	d := newDisk(eng, 1000)
	var finish []sim.Time
	// Block 0, then 1, then 2: streaming — only the first pays the seek.
	for i := int64(0); i < 3; i++ {
		d.ReadBlocks(i, 1, func(_ []byte, err error) {
			finish = append(finish, eng.Now())
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	media := sim.Duration(int64(512) * int64(sim.Second) / 37_000_000)
	if finish[1].Sub(finish[0]) != media || finish[2].Sub(finish[1]) != media {
		t.Fatalf("sequential reads charged seek: %v", finish)
	}
	if finish[0] != sim.Time(sim.Millisecond+media) {
		t.Fatalf("first read skipped the seek: %v", finish[0])
	}
}

func TestMemDiskBoundsAndAlignment(t *testing.T) {
	eng := sim.NewEngine()
	d := newDisk(eng, 10)
	d.ReadBlocks(9, 2, func(_ []byte, err error) {
		if !errors.Is(err, ErrOutOfRange) {
			t.Errorf("out-of-range read err = %v", err)
		}
	})
	d.WriteBlocks(0, make([]byte, 100), func(err error) {
		if !errors.Is(err, ErrBadLength) {
			t.Errorf("misaligned write err = %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func newArray(t *testing.T, eng *sim.Engine, ndisks int, stripeUnit int) *RAID0 {
	t.Helper()
	disks := make([]*MemDisk, ndisks)
	for i := range disks {
		disks[i] = NewMemDisk(eng, "d", Geometry{BlockSize: 512, NumBlocks: 1000}, IDE2000())
	}
	r, err := NewRAID0(disks, stripeUnit)
	if err != nil {
		t.Fatalf("NewRAID0: %v", err)
	}
	return r
}

func TestRAID0RoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	r := newArray(t, eng, 4, 8)
	if r.Geometry().NumBlocks != 4000 {
		t.Fatalf("NumBlocks = %d", r.Geometry().NumBlocks)
	}
	data := make([]byte, 512*50) // spans many stripe units
	sim.NewRNG(5).Fill(data)
	r.WriteBlocks(13, data, func(err error) {
		if err != nil {
			t.Errorf("Write: %v", err)
		}
		r.ReadBlocks(13, 50, func(got []byte, err error) {
			if err != nil {
				t.Errorf("Read: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Error("raid0 read-back mismatch")
			}
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRAID0DistributesAcrossDisks(t *testing.T) {
	eng := sim.NewEngine()
	r := newArray(t, eng, 4, 8)
	// 64 blocks starting at 0 covers stripes 0..7: 16 blocks per disk,
	// coalesced into exactly one member request each.
	r.ReadBlocks(0, 64, func(_ []byte, err error) {
		if err != nil {
			t.Errorf("Read: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, d := range r.Disks() {
		if d.Reads != 1 {
			t.Fatalf("disk %d reads = %d, want 1 (coalesced)", i, d.Reads)
		}
		if d.BytesRead != 16*512 {
			t.Fatalf("disk %d bytes = %d, want %d", i, d.BytesRead, 16*512)
		}
	}
}

func TestRAID0ParallelismBeatsSingleDisk(t *testing.T) {
	eng := sim.NewEngine()
	single := NewMemDisk(eng, "s", Geometry{BlockSize: 512, NumBlocks: 4000}, IDE2000())
	array := newArray(t, eng, 4, 8)

	var tSingle, tArray sim.Duration
	start := eng.Now()
	n := 512 // 256 KB
	single.ReadBlocks(0, n, func(_ []byte, err error) { tSingle = eng.Now().Sub(start) })
	array.ReadBlocks(0, n, func(_ []byte, err error) { tArray = eng.Now().Sub(start) })
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if tArray >= tSingle {
		t.Fatalf("raid0 (%v) not faster than single disk (%v)", tArray, tSingle)
	}
}

func TestRAID0ValidatesConstruction(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewRAID0(nil, 8); err == nil {
		t.Fatal("empty raid accepted")
	}
	d1 := NewMemDisk(eng, "a", Geometry{BlockSize: 512, NumBlocks: 10}, IDE2000())
	d2 := NewMemDisk(eng, "b", Geometry{BlockSize: 4096, NumBlocks: 10}, IDE2000())
	if _, err := NewRAID0([]*MemDisk{d1, d2}, 8); err == nil {
		t.Fatal("mismatched members accepted")
	}
	if _, err := NewRAID0([]*MemDisk{d1}, 0); err == nil {
		t.Fatal("zero stripe unit accepted")
	}
}

func TestRAID0PropertyRoundTrip(t *testing.T) {
	f := func(seed uint64, lbn16 uint16, count8, unit8 uint8) bool {
		eng := sim.NewEngine()
		unit := int(unit8)%16 + 1
		disks := make([]*MemDisk, 3)
		for i := range disks {
			disks[i] = NewMemDisk(eng, "d", Geometry{BlockSize: 64, NumBlocks: 512}, Model{})
		}
		r, err := NewRAID0(disks, unit)
		if err != nil {
			return false
		}
		lbn := int64(lbn16) % 1000
		count := int(count8)%32 + 1
		if lbn+int64(count) > r.Geometry().NumBlocks {
			lbn = 0
		}
		data := make([]byte, count*64)
		sim.NewRNG(seed).Fill(data)
		ok := false
		r.WriteBlocks(lbn, data, func(err error) {
			if err != nil {
				return
			}
			r.ReadBlocks(lbn, count, func(got []byte, err error) {
				ok = err == nil && bytes.Equal(got, data)
			})
		})
		if err := eng.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
