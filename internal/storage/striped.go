package storage

import (
	"fmt"

	"ncache/internal/netbuf"
)

// Striped is RAID-0 at the volume layer: it spreads the address space over
// member volumes in stripe-unit chunks using the same coalescing extent
// math as the RAID0 device, but over Volume members — so the members can
// themselves be single initiators, mirrors, or nested stripes. Payloads are
// sliced and reassembled as chains (refcount bumps, never copies).
type Striped struct {
	members []Volume
	unit    int // stripe unit in blocks
}

var _ Volume = (*Striped)(nil)

// NewStriped builds a striped volume over identically-sized members.
func NewStriped(members []Volume, stripeUnitBlocks int) (*Striped, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("storage: striped needs at least one member")
	}
	if stripeUnitBlocks <= 0 {
		return nil, fmt.Errorf("storage: stripe unit must be positive")
	}
	return &Striped{members: members, unit: stripeUnitBlocks}, nil
}

// BlockSize implements Volume.
func (s *Striped) BlockSize() int { return s.members[0].BlockSize() }

// NumBlocks implements Volume.
func (s *Striped) NumBlocks() int64 {
	var min int64 = -1
	for _, m := range s.members {
		if n := m.NumBlocks(); min < 0 || n < min {
			min = n
		}
	}
	return min * int64(len(s.members))
}

// ReadAt implements Volume by fanning the request out per member and
// reassembling the segments in request order.
func (s *Striped) ReadAt(lbn int64, blocks int, meta bool, done func(*netbuf.Chain, error)) {
	exts := stripeExtents(len(s.members), s.unit, lbn, blocks)
	if len(exts) == 1 {
		s.members[exts[0].disk].ReadAt(exts[0].lbn, exts[0].count, meta, done)
		return
	}
	bs := s.BlockSize()
	parts := make([]*netbuf.Chain, len(exts))
	remaining := len(exts)
	var firstErr error
	for i, ex := range exts {
		i, ex := i, ex
		s.members[ex.disk].ReadAt(ex.lbn, ex.count, meta, func(data *netbuf.Chain, err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			parts[i] = data
			remaining--
			if remaining > 0 {
				return
			}
			if firstErr != nil {
				for _, p := range parts {
					if p != nil {
						p.Release()
					}
				}
				done(nil, firstErr)
				return
			}
			// Segments interleave across members: slice each member's
			// result back into request order.
			type piece struct {
				reqStart int
				sub      *netbuf.Chain
			}
			pieces := make([]piece, 0, len(exts)*2)
			for j, ex := range exts {
				for _, sg := range ex.segs {
					sub, serr := parts[j].Slice(sg.memberOff*bs, sg.count*bs)
					if serr != nil && firstErr == nil {
						firstErr = serr
					}
					if sub != nil {
						pieces = append(pieces, piece{sg.reqStart, sub})
					}
				}
			}
			for _, p := range parts {
				p.Release()
			}
			if firstErr != nil {
				for _, pc := range pieces {
					pc.sub.Release()
				}
				done(nil, firstErr)
				return
			}
			// Insertion order by reqStart (seg lists are per-member
			// sorted; merge is tiny).
			for a := 1; a < len(pieces); a++ {
				for b := a; b > 0 && pieces[b].reqStart < pieces[b-1].reqStart; b-- {
					pieces[b], pieces[b-1] = pieces[b-1], pieces[b]
				}
			}
			out := netbuf.NewChain()
			for _, pc := range pieces {
				out.AppendChain(pc.sub)
			}
			done(out, nil)
		})
	}
}

// WriteAt implements Volume by slicing the payload per member extent.
func (s *Striped) WriteAt(lbn int64, data *netbuf.Chain, meta bool, done func(error)) {
	bs := s.BlockSize()
	blocks := data.Len() / bs
	exts := stripeExtents(len(s.members), s.unit, lbn, blocks)
	if len(exts) == 1 {
		s.members[exts[0].disk].WriteAt(exts[0].lbn, data, meta, done)
		return
	}
	remaining := len(exts)
	var firstErr error
	sub := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		remaining--
		if remaining == 0 {
			done(firstErr)
		}
	}
	for _, ex := range exts {
		member := netbuf.NewChain()
		for _, sg := range ex.segs {
			piece, err := data.Slice(sg.reqStart*bs, sg.count*bs)
			if err != nil {
				member.Release()
				data.Release()
				done(err)
				return
			}
			member.AppendChain(piece)
		}
		s.members[ex.disk].WriteAt(ex.lbn, member, meta, sub)
	}
	data.Release()
}

// Probe implements Volume: every member must answer.
func (s *Striped) Probe(done func(error)) {
	remaining := len(s.members)
	var firstErr error
	for _, m := range s.members {
		m.Probe(func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			remaining--
			if remaining == 0 {
				done(firstErr)
			}
		})
	}
}

// Stats implements Volume by concatenating member stats.
func (s *Striped) Stats() []ArmStats {
	var out []ArmStats
	for _, m := range s.members {
		out = append(out, m.Stats()...)
	}
	return out
}
