// Package storage is the transport-neutral lower tier of the pass-through
// server: everything above it (the buffer-cache flusher, WAL replay, the
// sync write-through arm) talks to a Volume, and everything below it (one
// iSCSI initiator, a mirrored pair, a striped set, a sharded fan-out) is an
// implementation detail. The redesign collapses the three near-duplicate
// lower-write paths that used to talk to iscsi.Initiator directly onto this
// one call surface, and is what makes multi-arm volumes (replication,
// initiator failover, circuit breaking) possible without the upper layers
// knowing.
package storage

import (
	"ncache/internal/blockdev"
	"ncache/internal/netbuf"
)

// Volume is the lower storage tier seen by the buffer cache and WAL replay.
// Payloads travel as netbuf chains (zero-copy: implementations clone, never
// flatten); meta marks file-system metadata, which bypasses NCache hooks.
// All completion callbacks run on the owning node's event shard.
type Volume interface {
	// BlockSize returns the device block size in bytes (valid once the
	// underlying initiators are connected).
	BlockSize() int
	// NumBlocks returns the addressable size of the volume in blocks.
	NumBlocks() int64
	// ReadAt fetches blocks starting at lbn. The callback owns the chain.
	ReadAt(lbn int64, blocks int, meta bool, done func(*netbuf.Chain, error))
	// WriteAt stores a block-aligned payload at lbn, taking ownership of
	// the chain.
	WriteAt(lbn int64, data *netbuf.Chain, meta bool, done func(error))
	// Probe issues a minimal health check (one metadata block read) and
	// reports whether the volume can serve it.
	Probe(done func(error))
	// Stats returns a per-arm health/traffic snapshot, one entry per
	// backend arm in a fixed order.
	Stats() []ArmStats
}

// ArmState is the circuit-breaker state of one backend arm.
type ArmState int

const (
	// ArmClosed: healthy, serving reads and writes.
	ArmClosed ArmState = iota
	// ArmOpen: ejected after the error/latency threshold tripped; no
	// traffic except the scheduled half-open probe.
	ArmOpen
	// ArmHalfOpen: a probe is in flight deciding open vs resync.
	ArmHalfOpen
	// ArmResync: probe succeeded; catch-up copy of the dirty-region log is
	// draining. Writes flow through; reads still avoid the arm.
	ArmResync
)

// String names the state for stats tables.
func (s ArmState) String() string {
	switch s {
	case ArmClosed:
		return "closed"
	case ArmOpen:
		return "open"
	case ArmHalfOpen:
		return "half-open"
	case ArmResync:
		return "resync"
	}
	return "?"
}

// ArmStats is one arm's health and traffic snapshot.
type ArmStats struct {
	Name   string
	State  ArmState
	Reads  uint64
	Writes uint64
	// Errors counts failed commands (after initiator-level retries).
	Errors uint64
	// Ejections counts closed->open transitions.
	Ejections uint64
	// Probes counts half-open probe attempts.
	Probes uint64
	// Resyncs counts completed resync->closed recoveries.
	Resyncs uint64
	// ResyncBlocks counts blocks copied by catch-up resync.
	ResyncBlocks uint64
	// DirtyBlocks is the current dirty-region log depth.
	DirtyBlocks int
	// EWMALatencyUs is the smoothed command latency in microseconds.
	EWMALatencyUs float64
}

// Initiator is the slice of iscsi.Initiator a volume arm needs; keeping it
// structural (rather than importing iscsi) lets the iscsi package's own
// tests use storage arrays without an import cycle.
type Initiator interface {
	Geometry() blockdev.Geometry
	Read(lba int64, blocks int, meta bool, done func(*netbuf.Chain, error))
	Write(lba int64, data *netbuf.Chain, meta bool, done func(error))
}

// ReadHook mirrors iscsi.ReadHook at the volume level: it intercepts a
// completed non-metadata read exactly once per logical read, regardless of
// how many arms served or retried it.
type ReadHook func(lba int64, blocks int, data *netbuf.Chain) *netbuf.Chain

// WriteHook mirrors iscsi.WriteHook at the volume level: it runs exactly
// once per logical write, before the payload fans out to arms. This is the
// invariant that makes mirroring safe — the NCache module's write-out hook
// remaps FHO entries to LBN entries and must not run per-arm.
type WriteHook func(lba int64, blocks int, data *netbuf.Chain) *netbuf.Chain

// ReadCache mirrors iscsi.ReadCache at the volume level: a true return
// serves the read locally and no arm traffic occurs.
type ReadCache func(lba int64, blocks int) (*netbuf.Chain, bool)
