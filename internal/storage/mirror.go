package storage

import (
	"errors"
	"fmt"
	"sort"

	"ncache/internal/netbuf"
	"ncache/internal/sim"
	"ncache/internal/simnet"
	"ncache/internal/trace"
)

// ErrNoArms reports a write or read arriving while every arm is ejected:
// nothing durable can be promised, so the request fails rather than lies.
var ErrNoArms = errors.New("storage: no healthy mirror arms")

// Policy selects which healthy arm serves a read.
type Policy int

const (
	// PolicyPrimaryFirst always reads from the lowest-indexed healthy arm
	// (the classic active/passive pair).
	PolicyPrimaryFirst Policy = iota
	// PolicyRoundRobin rotates reads across healthy arms.
	PolicyRoundRobin
	// PolicyLeastLatency reads from the arm with the lowest EWMA command
	// latency — the NetCAS-style dynamic selection that routes around a
	// slow (but not erroring) arm.
	PolicyLeastLatency
)

// ParsePolicy maps the -armpolicy flag spelling to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "primary-first":
		return PolicyPrimaryFirst, nil
	case "round-robin":
		return PolicyRoundRobin, nil
	case "least-latency":
		return PolicyLeastLatency, nil
	}
	return 0, fmt.Errorf("storage: unknown arm policy %q", s)
}

// String names the policy for stats tables.
func (p Policy) String() string {
	switch p {
	case PolicyRoundRobin:
		return "round-robin"
	case PolicyLeastLatency:
		return "least-latency"
	}
	return "primary-first"
}

// BreakerConfig tunes the per-arm circuit breaker.
type BreakerConfig struct {
	// ErrorThreshold opens the breaker after this many consecutive
	// command failures (each already past initiator-level retries).
	ErrorThreshold int
	// OpenTimeout is how long an open arm waits before a half-open probe,
	// and how long a stalled resync waits before retrying.
	OpenTimeout sim.Duration
	// LatencyOpenUs opens the breaker when the EWMA command latency
	// exceeds this many microseconds. Zero disables latency ejection.
	LatencyOpenUs float64
	// EWMAAlpha is the smoothing factor for the latency estimate.
	EWMAAlpha float64
	// ResyncBatchBlocks bounds one catch-up copy round.
	ResyncBatchBlocks int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.ErrorThreshold <= 0 {
		c.ErrorThreshold = 3
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = 5 * sim.Millisecond
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = 0.2
	}
	if c.ResyncBatchBlocks <= 0 {
		c.ResyncBatchBlocks = 64
	}
	return c
}

// MirrorConfig assembles a mirror volume.
type MirrorConfig struct {
	// Quorum is how many primary (closed-at-issue) arm writes must
	// succeed for a logical write to succeed. Default 1.
	Quorum int
	// Policy selects the read arm.
	Policy Policy
	// Breaker tunes ejection and recovery.
	Breaker BreakerConfig
}

// arm is one mirror leg with its breaker state and dirty-region log.
type arm struct {
	name string
	ini  Initiator

	state      ArmState
	consecErrs int
	ewmaUs     float64

	// dirty maps LBN -> generation of the write that dirtied it; a resync
	// copy only clears an entry whose generation is unchanged since the
	// copy started, so a block re-dirtied mid-copy stays in the log.
	dirty map[int64]uint64
	// inflight marks blocks with a catch-up copy outstanding: a
	// write-through landing on such a block must not clear the dirty
	// entry, because the in-flight copy may overwrite it with older data.
	inflight map[int64]int

	stats ArmStats
}

// Mirror replicates one LBN range across N arms. Writes fan out to every
// closed (and resyncing) arm as cloned chains — tagged "storage.mirror" so
// pool-leak attribution can see them — and succeed at write-quorum, though
// completion waits for all issued legs to settle so a subsequent read can
// never observe a half-landed write. Reads pick one healthy arm by policy
// and fail over on error. A per-arm circuit breaker (closed -> open ->
// half-open probe -> resync -> closed) ejects dead or slow arms so the
// cluster keeps serving from the surviving arm plus cache; the dirty-region
// log accumulated while an arm is out drives the catch-up copy that brings
// it back.
//
// All state is mutated in event callbacks on the owning node's shard, so
// the mirror is deterministic under the parallel engine for any worker
// count.
type Mirror struct {
	node *simnet.Node
	arms []*arm
	cfg  MirrorConfig
	rr   int
	gen  uint64

	readHook  ReadHook
	writeHook WriteHook
	readCache ReadCache
}

var _ Volume = (*Mirror)(nil)

// NewMirror builds a mirror over connected initiators. names label the arms
// in stats and must parallel inis.
func NewMirror(node *simnet.Node, names []string, inis []Initiator, cfg MirrorConfig) (*Mirror, error) {
	if len(inis) == 0 {
		return nil, errors.New("storage: mirror needs at least one arm")
	}
	if len(names) != len(inis) {
		return nil, errors.New("storage: mirror arm names must parallel initiators")
	}
	if cfg.Quorum <= 0 {
		cfg.Quorum = 1
	}
	if cfg.Quorum > len(inis) {
		return nil, fmt.Errorf("storage: quorum %d exceeds %d arms", cfg.Quorum, len(inis))
	}
	cfg.Breaker = cfg.Breaker.withDefaults()
	m := &Mirror{node: node, cfg: cfg}
	for i, ini := range inis {
		m.arms = append(m.arms, &arm{
			name:     names[i],
			ini:      ini,
			dirty:    make(map[int64]uint64),
			inflight: make(map[int64]int),
		})
	}
	return m, nil
}

// SetReadHook installs the volume-level receive interception (runs once per
// logical read; per-arm initiators must have no hooks of their own).
func (m *Mirror) SetReadHook(h ReadHook) { m.readHook = h }

// SetWriteHook installs the volume-level transmit interception (runs once
// per logical write, before fan-out).
func (m *Mirror) SetWriteHook(h WriteHook) { m.writeHook = h }

// SetReadCache installs the volume-level local read cache.
func (m *Mirror) SetReadCache(h ReadCache) { m.readCache = h }

// Policy reports the configured read-selection policy.
func (m *Mirror) Policy() Policy { return m.cfg.Policy }

// BlockSize implements Volume.
func (m *Mirror) BlockSize() int { return m.arms[0].ini.Geometry().BlockSize }

// NumBlocks implements Volume (arms are identical replicas).
func (m *Mirror) NumBlocks() int64 { return m.arms[0].ini.Geometry().NumBlocks }

// readEligible returns the arms a read may use, in preference tiers:
// closed arms; failing that, resyncing arms that are current for the whole
// range (nothing dirty or mid-copy in it); failing that, any arm at all as
// a last resort.
func (m *Mirror) readEligible(lbn int64, blocks int) []int {
	var out []int
	for i, a := range m.arms {
		if a.state == ArmClosed {
			out = append(out, i)
		}
	}
	if len(out) > 0 {
		return out
	}
	for i, a := range m.arms {
		if a.state != ArmResync {
			continue
		}
		current := true
		for b := lbn; b < lbn+int64(blocks); b++ {
			if _, dirty := a.dirty[b]; dirty {
				current = false
				break
			}
			if a.inflight[b] > 0 {
				current = false
				break
			}
		}
		if current {
			out = append(out, i)
		}
	}
	if len(out) > 0 {
		return out
	}
	for i := range m.arms {
		out = append(out, i)
	}
	return out
}

// pick applies the selection policy over an eligible set.
func (m *Mirror) pick(eligible []int) int {
	switch m.cfg.Policy {
	case PolicyRoundRobin:
		idx := eligible[m.rr%len(eligible)]
		m.rr++
		return idx
	case PolicyLeastLatency:
		best := eligible[0]
		for _, i := range eligible[1:] {
			if m.arms[i].ewmaUs < m.arms[best].ewmaUs {
				best = i
			}
		}
		return best
	}
	return eligible[0]
}

// sample folds one command latency into the arm's EWMA and applies the
// latency ejection threshold.
func (m *Mirror) sample(a *arm, start sim.Time) {
	us := float64(m.node.Eng.Now()-start) / 1e3
	if a.ewmaUs == 0 {
		a.ewmaUs = us
	} else {
		al := m.cfg.Breaker.EWMAAlpha
		a.ewmaUs = al*us + (1-al)*a.ewmaUs
	}
	if th := m.cfg.Breaker.LatencyOpenUs; th > 0 && a.state == ArmClosed && a.ewmaUs > th {
		m.eject(a)
	}
}

// armError books one failed command and trips the breaker at the threshold.
func (m *Mirror) armError(a *arm) {
	a.stats.Errors++
	if a.state != ArmClosed && a.state != ArmResync {
		return
	}
	a.consecErrs++
	if a.consecErrs >= m.cfg.Breaker.ErrorThreshold {
		m.eject(a)
	}
}

// eject moves an arm to open and schedules the half-open probe. The wait is
// booked as fault-attributed iSCSI time: it is recovery latency the
// injected fault caused, not modeled work.
func (m *Mirror) eject(a *arm) {
	a.state = ArmOpen
	a.consecErrs = 0
	a.stats.Ejections++
	trace.Fault(m.node.Eng, trace.LISCSI, 0)
	m.node.Eng.Schedule(m.cfg.Breaker.OpenTimeout, func() { m.probe(a) })
}

// probe is the half-open attempt: one metadata block read decides whether
// the arm re-enters service (via resync) or stays open another timeout.
func (m *Mirror) probe(a *arm) {
	if a.state != ArmOpen {
		return
	}
	a.state = ArmHalfOpen
	a.stats.Probes++
	start := m.node.Eng.Now()
	a.ini.Read(0, 1, true, func(data *netbuf.Chain, err error) {
		if data != nil {
			data.Release()
		}
		if err != nil {
			a.stats.Errors++
			a.state = ArmOpen
			m.node.Eng.Schedule(m.cfg.Breaker.OpenTimeout, func() { m.probe(a) })
			return
		}
		m.sample(a, start)
		a.state = ArmResync
		a.consecErrs = 0
		m.resyncStep(a)
	})
}

// resyncStep drains one batch of the dirty-region log: coalesced runs are
// read from a closed source arm and written back (both as metadata, so no
// NCache hooks fire on raw replica copies). A dirty entry is cleared only
// if its generation is unchanged since the copy started; concurrent
// write-throughs re-dirty blocks, and the next step picks them up. When the
// log is empty the arm closes.
func (m *Mirror) resyncStep(a *arm) {
	if a.state != ArmResync {
		return
	}
	if len(a.dirty) == 0 {
		a.state = ArmClosed
		a.consecErrs = 0
		a.stats.Resyncs++
		return
	}
	src := -1
	for i, other := range m.arms {
		if other != a && other.state == ArmClosed {
			src = i
			break
		}
	}
	if src == -1 {
		// No current source right now; hold the resync and retry.
		m.node.Eng.Schedule(m.cfg.Breaker.OpenTimeout, func() { m.resyncStep(a) })
		return
	}
	lbns := make([]int64, 0, len(a.dirty))
	for b := range a.dirty { // det: collected keys are sorted before use
		lbns = append(lbns, b)
	}
	sort.Slice(lbns, func(i, j int) bool { return lbns[i] < lbns[j] })
	if len(lbns) > m.cfg.Breaker.ResyncBatchBlocks {
		lbns = lbns[:m.cfg.Breaker.ResyncBatchBlocks]
	}
	// Coalesce adjacent LBNs into runs, one copy I/O per run.
	type run struct {
		lbn  int64
		n    int
		gens []uint64
	}
	var runs []run
	for _, b := range lbns {
		if len(runs) > 0 && runs[len(runs)-1].lbn+int64(runs[len(runs)-1].n) == b {
			r := &runs[len(runs)-1]
			r.n++
			r.gens = append(r.gens, a.dirty[b])
		} else {
			runs = append(runs, run{lbn: b, n: 1, gens: []uint64{a.dirty[b]}})
		}
	}
	remaining := len(runs)
	settle := func() {
		remaining--
		if remaining == 0 {
			m.resyncStep(a)
		}
	}
	srcArm := m.arms[src]
	for _, r := range runs {
		r := r
		for i := 0; i < r.n; i++ {
			a.inflight[r.lbn+int64(i)]++
		}
		clear := func() {
			for i := 0; i < r.n; i++ {
				b := r.lbn + int64(i)
				if a.inflight[b]--; a.inflight[b] == 0 {
					delete(a.inflight, b)
				}
			}
		}
		srcArm.ini.Read(r.lbn, r.n, true, func(data *netbuf.Chain, err error) {
			if err != nil {
				clear()
				m.armError(srcArm)
				settle()
				return
			}
			data.SetOwner("storage.mirror")
			a.ini.Write(r.lbn, data, true, func(werr error) {
				clear()
				if werr != nil {
					m.armError(a)
					settle()
					return
				}
				a.stats.ResyncBlocks += uint64(r.n)
				for i := 0; i < r.n; i++ {
					b := r.lbn + int64(i)
					if g, ok := a.dirty[b]; ok && g == r.gens[i] {
						delete(a.dirty, b)
					}
				}
				settle()
			})
		})
	}
}

// markDirty logs a block range the arm missed (or may hold stale).
func (m *Mirror) markDirty(a *arm, lbn int64, blocks int) {
	for b := lbn; b < lbn+int64(blocks); b++ {
		m.gen++
		a.dirty[b] = m.gen
	}
}

// ReadAt implements Volume: consult the local cache, then read from the
// policy-selected arm, failing over to the remaining eligible arms.
func (m *Mirror) ReadAt(lbn int64, blocks int, meta bool, done func(*netbuf.Chain, error)) {
	if !meta && m.readCache != nil {
		if data, ok := m.readCache(lbn, blocks); ok {
			trace.To(m.node.Eng, trace.LNCache)
			m.node.Charge(m.node.Cost.NCacheLookupNs, func() {
				done(data, nil)
			})
			return
		}
	}
	eligible := m.readEligible(lbn, blocks)
	first := m.pick(eligible)
	order := []int{first}
	for _, i := range eligible {
		if i != first {
			order = append(order, i)
		}
	}
	m.readFrom(order, 0, lbn, blocks, meta, done)
}

// readFrom issues the read on order[at], failing over down the list.
func (m *Mirror) readFrom(order []int, at int, lbn int64, blocks int, meta bool, done func(*netbuf.Chain, error)) {
	a := m.arms[order[at]]
	a.stats.Reads++
	start := m.node.Eng.Now()
	a.ini.Read(lbn, blocks, meta, func(data *netbuf.Chain, err error) {
		if err != nil {
			m.armError(a)
			if at+1 < len(order) {
				// Failover: the failed attempt's wait is recovery
				// latency attributable to the fault.
				trace.Fault(m.node.Eng, trace.LISCSI, 0)
				m.readFrom(order, at+1, lbn, blocks, meta, done)
				return
			}
			done(nil, err)
			return
		}
		a.consecErrs = 0
		m.sample(a, start)
		if !meta && m.readHook != nil {
			data = m.readHook(lbn, blocks, data)
		}
		done(data, nil)
	})
}

// WriteAt implements Volume: run the write hook once, fan clones out to
// every closed and resyncing arm, log dirty regions for ejected arms, and
// complete once every issued leg settles — success if the closed-arm
// quorum held.
func (m *Mirror) WriteAt(lbn int64, data *netbuf.Chain, meta bool, done func(error)) {
	bs := m.BlockSize()
	blocks := data.Len() / bs
	if !meta && m.writeHook != nil {
		data = m.writeHook(lbn, blocks, data)
	}
	var primaries, secondaries []*arm
	for _, a := range m.arms {
		switch a.state {
		case ArmClosed:
			primaries = append(primaries, a)
		case ArmResync:
			secondaries = append(secondaries, a)
		default:
			m.markDirty(a, lbn, blocks)
		}
	}
	if len(primaries)+len(secondaries) == 0 {
		data.Release()
		done(ErrNoArms)
		return
	}
	remaining := len(primaries) + len(secondaries)
	successes := 0
	var firstErr error
	settle := func() {
		remaining--
		if remaining > 0 {
			return
		}
		if successes >= m.cfg.Quorum {
			done(nil)
			return
		}
		if firstErr == nil {
			firstErr = ErrNoArms
		}
		done(firstErr)
	}
	for _, a := range primaries {
		a := a
		a.stats.Writes++
		c := data.Clone()
		c.SetOwner("storage.mirror")
		start := m.node.Eng.Now()
		a.ini.Write(lbn, c, meta, func(err error) {
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				// The acked bytes now live on fewer arms than
				// configured: log the range so recovery re-replicates
				// it, then trip the breaker accounting.
				m.markDirty(a, lbn, blocks)
				m.armError(a)
				settle()
				return
			}
			a.consecErrs = 0
			successes++
			m.sample(a, start)
			settle()
		})
	}
	for _, a := range secondaries {
		a := a
		a.stats.Writes++
		// Write-through during resync keeps the arm converging; the
		// block is logged first so a failed or raced-with-copy leg is
		// re-copied, and cleared only when this write lands with no
		// copy in flight underneath it.
		m.markDirty(a, lbn, blocks)
		gens := make([]uint64, blocks)
		for i := 0; i < blocks; i++ {
			gens[i] = a.dirty[lbn+int64(i)]
		}
		c := data.Clone()
		c.SetOwner("storage.mirror")
		a.ini.Write(lbn, c, meta, func(err error) {
			if err != nil {
				m.armError(a)
				settle()
				return
			}
			for i := 0; i < blocks; i++ {
				b := lbn + int64(i)
				if a.inflight[b] > 0 {
					continue
				}
				if g, ok := a.dirty[b]; ok && g == gens[i] {
					delete(a.dirty, b)
				}
			}
			settle()
		})
	}
	data.Release()
}

// Probe implements Volume with a metadata read on the preferred arm.
func (m *Mirror) Probe(done func(error)) {
	order := m.readEligible(0, 1)
	a := m.arms[m.pick(order)]
	a.ini.Read(0, 1, true, func(data *netbuf.Chain, err error) {
		if data != nil {
			data.Release()
		}
		done(err)
	})
}

// Stats implements Volume.
func (m *Mirror) Stats() []ArmStats {
	out := make([]ArmStats, len(m.arms))
	for i, a := range m.arms {
		s := a.stats
		s.Name = a.name
		s.State = a.state
		s.DirtyBlocks = len(a.dirty)
		s.EWMALatencyUs = a.ewmaUs
		out[i] = s
	}
	return out
}
