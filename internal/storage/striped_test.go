package storage

import (
	"bytes"
	"testing"

	"ncache/internal/netbuf"
	"ncache/internal/sim"
)

// volWrite/volRead drive a Volume synchronously under the test engine.
func volWrite(t *testing.T, eng *sim.Engine, v Volume, lbn int64, p []byte) {
	t.Helper()
	done := false
	v.WriteAt(lbn, netbuf.ChainFromBytes(p, netbuf.DefaultBufSize), false, func(err error) {
		if err != nil {
			t.Fatalf("WriteAt: %v", err)
		}
		done = true
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !done {
		t.Fatal("write did not complete")
	}
}

func volRead(t *testing.T, eng *sim.Engine, v Volume, lbn int64, blocks int) []byte {
	t.Helper()
	var flat []byte
	v.ReadAt(lbn, blocks, false, func(data *netbuf.Chain, err error) {
		if err != nil {
			t.Fatalf("ReadAt: %v", err)
		}
		flat = data.Flatten()
		data.Release()
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return flat
}

func TestStripedRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	var members []Volume
	var backs []*fakeIni
	for i := 0; i < 3; i++ {
		f := newFakeIni(eng, 128, 10*sim.Microsecond)
		backs = append(backs, f)
		members = append(members, NewSingleArm("m", f))
	}
	st, err := NewStriped(members, 4)
	if err != nil {
		t.Fatalf("NewStriped: %v", err)
	}
	if st.NumBlocks() != 3*128 {
		t.Fatalf("NumBlocks = %d", st.NumBlocks())
	}
	// 30 blocks from LBN 5 spans several stripe units on every member.
	data := make([]byte, 30*512)
	sim.NewRNG(9).Fill(data)
	volWrite(t, eng, st, 5, data)
	if got := volRead(t, eng, st, 5, 30); !bytes.Equal(got, data) {
		t.Fatal("striped read-back mismatch")
	}
	for i, b := range backs {
		if b.writes == 0 || b.reads == 0 {
			t.Fatalf("member %d untouched: %d writes, %d reads", i, b.writes, b.reads)
		}
	}
}

func TestShardedRoutesBySplit(t *testing.T) {
	eng := sim.NewEngine()
	a := newFakeIni(eng, 256, 10*sim.Microsecond)
	b := newFakeIni(eng, 256, 10*sim.Microsecond)
	// Every member exports the global geometry; placement cuts at LBN 100.
	sh := NewSharded(
		[]Volume{NewSingleArm("a", a), NewSingleArm("b", b)},
		func(lbn int64, blocks int) []Extent {
			var out []Extent
			if lbn < 100 {
				n := int(min64(100-lbn, int64(blocks)))
				out = append(out, Extent{Member: 0, LBN: lbn, Blocks: n})
				lbn += int64(n)
				blocks -= n
			}
			if blocks > 0 {
				out = append(out, Extent{Member: 1, LBN: lbn, Blocks: blocks})
			}
			return out
		})
	data := make([]byte, 8*512)
	sim.NewRNG(4).Fill(data)
	volWrite(t, eng, sh, 96, data) // 4 blocks on member 0, 4 on member 1
	if got := volRead(t, eng, sh, 96, 8); !bytes.Equal(got, data) {
		t.Fatal("sharded read-back mismatch")
	}
	if a.writes != 1 || b.writes != 1 {
		t.Fatalf("split writes = %d/%d, want 1/1", a.writes, b.writes)
	}
	if !bytes.Equal(a.dat[96*512:100*512], data[:4*512]) {
		t.Fatal("member 0 holds wrong extent")
	}
	if !bytes.Equal(b.dat[100*512:104*512], data[4*512:]) {
		t.Fatal("member 1 holds wrong extent")
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
