package storage

import "ncache/internal/netbuf"

// SingleArm adapts one connected initiator to the Volume surface with no
// behavioral change: every existing single-target config routes through it
// and stays byte-identical to the direct-initiator path (hooks, retries and
// the NCache read-cache consult all remain inside the initiator).
type SingleArm struct {
	name string
	ini  Initiator

	reads, writes, errors uint64
}

var _ Volume = (*SingleArm)(nil)

// NewSingleArm wraps a connected initiator. name labels the arm in stats.
func NewSingleArm(name string, ini Initiator) *SingleArm {
	return &SingleArm{name: name, ini: ini}
}

// BlockSize implements Volume.
func (s *SingleArm) BlockSize() int { return s.ini.Geometry().BlockSize }

// NumBlocks implements Volume.
func (s *SingleArm) NumBlocks() int64 { return s.ini.Geometry().NumBlocks }

// ReadAt implements Volume by pure delegation.
func (s *SingleArm) ReadAt(lbn int64, blocks int, meta bool, done func(*netbuf.Chain, error)) {
	s.reads++
	s.ini.Read(lbn, blocks, meta, func(data *netbuf.Chain, err error) {
		if err != nil {
			s.errors++
		}
		done(data, err)
	})
}

// WriteAt implements Volume by pure delegation.
func (s *SingleArm) WriteAt(lbn int64, data *netbuf.Chain, meta bool, done func(error)) {
	s.writes++
	s.ini.Write(lbn, data, meta, func(err error) {
		if err != nil {
			s.errors++
		}
		done(err)
	})
}

// Probe implements Volume with a one-block metadata read of LBA 0.
func (s *SingleArm) Probe(done func(error)) {
	s.ini.Read(0, 1, true, func(data *netbuf.Chain, err error) {
		if data != nil {
			data.Release()
		}
		done(err)
	})
}

// Stats implements Volume.
func (s *SingleArm) Stats() []ArmStats {
	return []ArmStats{{
		Name: s.name, State: ArmClosed,
		Reads: s.reads, Writes: s.writes, Errors: s.errors,
	}}
}
