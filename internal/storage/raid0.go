package storage

import (
	"errors"
	"fmt"

	"ncache/internal/blockdev"
)

// RAID0 stripes blocks across member disks in stripe-unit chunks, like the
// paper's 4-disk array. Requests spanning stripe units fan out to the
// member disks concurrently; completion is the slowest member's completion,
// which is what gives RAID-0 its aggregate streaming bandwidth.
//
// It lives in the storage package (migrated from blockdev) because striping
// is a volume-layout concern, not a device-model one: the same extent math
// backs the Striped volume below, and the iSCSI target serves a RAID0 as
// its backing Device.
type RAID0 struct {
	disks      []*blockdev.MemDisk
	stripeUnit int // in blocks
	geom       blockdev.Geometry
	// Requests counts top-level I/Os (not per-member operations).
	Requests uint64
}

var (
	_ blockdev.Device       = (*RAID0)(nil)
	_ blockdev.DirectAccess = (*RAID0)(nil)
)

// NewRAID0 builds an array over identical member disks with the given
// stripe unit in blocks.
func NewRAID0(disks []*blockdev.MemDisk, stripeUnitBlocks int) (*RAID0, error) {
	if len(disks) == 0 {
		return nil, errors.New("storage: raid0 needs at least one disk")
	}
	if stripeUnitBlocks <= 0 {
		return nil, errors.New("storage: stripe unit must be positive")
	}
	g := disks[0].Geometry()
	for _, d := range disks[1:] {
		if d.Geometry() != g {
			return nil, errors.New("storage: raid0 members must be identical")
		}
	}
	return &RAID0{
		disks:      disks,
		stripeUnit: stripeUnitBlocks,
		geom: blockdev.Geometry{
			BlockSize: g.BlockSize,
			NumBlocks: g.NumBlocks * int64(len(disks)),
		},
	}, nil
}

// Geometry returns the array's aggregate addressing.
func (r *RAID0) Geometry() blockdev.Geometry { return r.geom }

// Disks returns the member disks (for stats).
func (r *RAID0) Disks() []*blockdev.MemDisk { return r.disks }

// PeekBlock implements DirectAccess over the striped address space.
func (r *RAID0) PeekBlock(lbn int64) []byte {
	disk, member := r.locate(lbn)
	return r.disks[disk].PeekBlock(member)
}

// PokeBlock implements DirectAccess over the striped address space.
func (r *RAID0) PokeBlock(lbn int64, data []byte) {
	disk, member := r.locate(lbn)
	r.disks[disk].PokeBlock(member, data)
}

// SetSynthesize installs a content function over array block numbers,
// translating each member disk's block addresses back to array addresses.
// Used by experiments that need huge deterministic files without storing
// their bytes.
func (r *RAID0) SetSynthesize(fn func(arrayLBN int64, dst []byte)) {
	n := int64(len(r.disks))
	unit := int64(r.stripeUnit)
	for idx, d := range r.disks {
		idx := int64(idx)
		d.Synthesize = func(memberLBN int64, dst []byte) {
			memberStripe := memberLBN / unit
			within := memberLBN % unit
			arrayStripe := memberStripe*n + idx
			fn(arrayStripe*unit+within, dst)
		}
	}
}

// locate maps an array block to (disk index, member block).
func (r *RAID0) locate(lbn int64) (int, int64) {
	stripe := lbn / int64(r.stripeUnit)
	within := lbn % int64(r.stripeUnit)
	disk := int(stripe % int64(len(r.disks)))
	memberStripe := stripe / int64(len(r.disks))
	return disk, memberStripe*int64(r.stripeUnit) + within
}

// seg maps a run of blocks within a member request back to its position in
// the array request.
type seg struct {
	memberOff int // offset within the member request, in blocks
	reqStart  int // offset within the array request, in blocks
	count     int
}

// extent is one coalesced per-member request: successive stripe units on the
// same member are contiguous in member-LBN space, so a large sequential
// array request becomes exactly one I/O per member (each paying the
// positioning overhead once) — the coalescing a real striping driver does.
type extent struct {
	disk  int
	lbn   int64
	count int
	segs  []seg
}

// stripeExtents splits an array request into one coalesced request per
// member, for a stripe layout of n members with the given unit.
func stripeExtents(n, unit int, lbn int64, count int) []extent {
	perDisk := make([]*extent, n)
	var order []*extent
	i := 0
	for i < count {
		at := lbn + int64(i)
		stripe := at / int64(unit)
		within := at % int64(unit)
		disk := int(stripe % int64(n))
		member := (stripe/int64(n))*int64(unit) + within
		run := int(int64(unit) - within)
		if run > count-i {
			run = count - i
		}
		ex := perDisk[disk]
		if ex == nil {
			ex = &extent{disk: disk, lbn: member}
			perDisk[disk] = ex
			order = append(order, ex)
		}
		// Member runs for a contiguous array request are contiguous on
		// each member by construction.
		ex.segs = append(ex.segs, seg{memberOff: ex.count, reqStart: i, count: run})
		ex.count += run
		i += run
	}
	out := make([]extent, len(order))
	for j, ex := range order {
		out[j] = *ex
	}
	return out
}

// extents splits an array request into one coalesced request per member.
func (r *RAID0) extents(lbn int64, count int) []extent {
	return stripeExtents(len(r.disks), r.stripeUnit, lbn, count)
}

// ReadBlocks implements Device by fanning out to member disks.
func (r *RAID0) ReadBlocks(lbn int64, count int, done func([]byte, error)) {
	if lbn < 0 || count < 0 || lbn+int64(count) > r.geom.NumBlocks {
		done(nil, fmt.Errorf("%w: [%d,+%d) of %d", blockdev.ErrOutOfRange, lbn, count, r.geom.NumBlocks))
		return
	}
	r.Requests++
	if count == 0 {
		done(nil, nil)
		return
	}
	exts := r.extents(lbn, count)
	out := make([]byte, count*r.geom.BlockSize)
	remaining := len(exts)
	var firstErr error
	for _, ex := range exts {
		ex := ex
		r.disks[ex.disk].ReadBlocks(ex.lbn, ex.count, func(data []byte, err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			if err == nil {
				for _, sg := range ex.segs {
					copy(out[sg.reqStart*r.geom.BlockSize:(sg.reqStart+sg.count)*r.geom.BlockSize],
						data[sg.memberOff*r.geom.BlockSize:])
				}
			}
			remaining--
			if remaining == 0 {
				if firstErr != nil {
					done(nil, firstErr)
					return
				}
				done(out, nil)
			}
		})
	}
}

// WriteBlocks implements Device by fanning out to member disks.
func (r *RAID0) WriteBlocks(lbn int64, data []byte, done func(error)) {
	if len(data)%r.geom.BlockSize != 0 {
		done(fmt.Errorf("%w: %d", blockdev.ErrBadLength, len(data)))
		return
	}
	count := len(data) / r.geom.BlockSize
	if lbn < 0 || lbn+int64(count) > r.geom.NumBlocks {
		done(fmt.Errorf("%w: [%d,+%d) of %d", blockdev.ErrOutOfRange, lbn, count, r.geom.NumBlocks))
		return
	}
	r.Requests++
	if count == 0 {
		done(nil)
		return
	}
	exts := r.extents(lbn, count)
	remaining := len(exts)
	var firstErr error
	for _, ex := range exts {
		ex := ex
		chunk := make([]byte, ex.count*r.geom.BlockSize)
		for _, sg := range ex.segs {
			copy(chunk[sg.memberOff*r.geom.BlockSize:],
				data[sg.reqStart*r.geom.BlockSize:(sg.reqStart+sg.count)*r.geom.BlockSize])
		}
		r.disks[ex.disk].WriteBlocks(ex.lbn, chunk, func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			remaining--
			if remaining == 0 {
				done(firstErr)
			}
		})
	}
}
