package storage

import "ncache/internal/netbuf"

// Extent is one member's portion of a split request.
type Extent struct {
	Member int
	LBN    int64
	Blocks int
}

// SplitFunc places a block range onto members (the cluster's TargetMap,
// adapted). Extents come back in request order.
type SplitFunc func(lbn int64, blocks int) []Extent

// Sharded routes each request's extents to per-member volumes — the
// scale-out backend, where every member exports the full global geometry
// and placement only picks the session. Members are themselves volumes, so
// a sharded backend of mirrored pairs composes for free.
type Sharded struct {
	members []Volume
	split   SplitFunc
}

var _ Volume = (*Sharded)(nil)

// NewSharded builds the routing volume.
func NewSharded(members []Volume, split SplitFunc) *Sharded {
	return &Sharded{members: members, split: split}
}

// BlockSize implements Volume.
func (s *Sharded) BlockSize() int { return s.members[0].BlockSize() }

// NumBlocks implements Volume (members export the global geometry).
func (s *Sharded) NumBlocks() int64 { return s.members[0].NumBlocks() }

// ReadAt implements Volume: scatter the extents across their members and
// reassemble the chains in LBN order once all complete.
func (s *Sharded) ReadAt(lbn int64, count int, meta bool, done func(*netbuf.Chain, error)) {
	exts := s.split(lbn, count)
	if len(exts) == 1 {
		s.members[exts[0].Member].ReadAt(lbn, count, meta, done)
		return
	}
	parts := make([]*netbuf.Chain, len(exts))
	remaining := len(exts)
	var firstErr error
	for i, ext := range exts {
		i, ext := i, ext
		s.members[ext.Member].ReadAt(ext.LBN, ext.Blocks, meta, func(data *netbuf.Chain, err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			parts[i] = data
			remaining--
			if remaining > 0 {
				return
			}
			if firstErr != nil {
				for _, p := range parts {
					if p != nil {
						p.Release()
					}
				}
				done(nil, firstErr)
				return
			}
			out := netbuf.NewChain()
			for _, p := range parts {
				out.AppendChain(p)
			}
			done(out, nil)
		})
	}
}

// WriteAt implements Volume: slice the payload per extent (descriptor
// clones, no copies) and fan out to the members.
func (s *Sharded) WriteAt(lbn int64, data *netbuf.Chain, meta bool, done func(error)) {
	bs := s.BlockSize()
	exts := s.split(lbn, data.Len()/bs)
	if len(exts) == 1 {
		s.members[exts[0].Member].WriteAt(lbn, data, meta, done)
		return
	}
	remaining := len(exts)
	var firstErr error
	finish := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		remaining--
		if remaining == 0 {
			done(firstErr)
		}
	}
	off := 0
	for _, ext := range exts {
		n := ext.Blocks * bs
		sub, err := data.Slice(off, n)
		if err != nil {
			finish(err)
			off += n
			continue
		}
		s.members[ext.Member].WriteAt(ext.LBN, sub, meta, finish)
		off += n
	}
	data.Release()
}

// Probe implements Volume: every member must answer.
func (s *Sharded) Probe(done func(error)) {
	remaining := len(s.members)
	var firstErr error
	for _, m := range s.members {
		m.Probe(func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			remaining--
			if remaining == 0 {
				done(firstErr)
			}
		})
	}
}

// Stats implements Volume by concatenating member stats.
func (s *Sharded) Stats() []ArmStats {
	var out []ArmStats
	for _, m := range s.members {
		out = append(out, m.Stats()...)
	}
	return out
}
