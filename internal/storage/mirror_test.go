package storage

import (
	"bytes"
	"testing"

	"ncache/internal/blockdev"
	"ncache/internal/netbuf"
	"ncache/internal/sim"
	"ncache/internal/simnet"
)

// fakeIni is an in-memory Initiator: a flat byte image with a fixed command
// latency and switchable failure injection, so breaker transitions can be
// driven precisely.
type fakeIni struct {
	eng *sim.Engine
	geo blockdev.Geometry
	dat []byte
	lat sim.Duration

	failReads  bool
	failWrites bool
	reads      int
	writes     int
}

func newFakeIni(eng *sim.Engine, blocks int64, lat sim.Duration) *fakeIni {
	return &fakeIni{
		eng: eng,
		geo: blockdev.Geometry{BlockSize: 512, NumBlocks: blocks},
		dat: make([]byte, blocks*512),
		lat: lat,
	}
}

func (f *fakeIni) Geometry() blockdev.Geometry { return f.geo }

func (f *fakeIni) Read(lba int64, blocks int, meta bool, done func(*netbuf.Chain, error)) {
	f.reads++
	f.eng.Schedule(f.lat, func() {
		if f.failReads {
			done(nil, blockdev.ErrTransient)
			return
		}
		bs := int64(f.geo.BlockSize)
		p := f.dat[lba*bs : lba*bs+int64(blocks)*bs]
		done(netbuf.ChainFromBytes(p, netbuf.DefaultBufSize), nil)
	})
}

func (f *fakeIni) Write(lba int64, data *netbuf.Chain, meta bool, done func(error)) {
	f.writes++
	flat := data.Flatten()
	data.Release()
	f.eng.Schedule(f.lat, func() {
		if f.failWrites {
			done(blockdev.ErrTransient)
			return
		}
		copy(f.dat[lba*int64(f.geo.BlockSize):], flat)
		done(nil)
	})
}

// mirrorRig is a two-arm mirror over fake initiators.
type mirrorRig struct {
	eng  *sim.Engine
	node *simnet.Node
	arms []*fakeIni
	m    *Mirror
}

func newMirrorRig(t *testing.T, cfg MirrorConfig, lats ...sim.Duration) *mirrorRig {
	t.Helper()
	eng := sim.NewEngine()
	node := simnet.NewNode(eng, "app", simnet.DefaultProfile())
	var arms []*fakeIni
	var inis []Initiator
	var names []string
	for i, lat := range lats {
		a := newFakeIni(eng, 256, lat)
		arms = append(arms, a)
		inis = append(inis, a)
		names = append(names, string(rune('a'+i)))
	}
	m, err := NewMirror(node, names, inis, cfg)
	if err != nil {
		t.Fatalf("NewMirror: %v", err)
	}
	return &mirrorRig{eng: eng, node: node, arms: arms, m: m}
}

// step advances far enough for any in-flight commands, probes and resync
// rounds to settle without draining the queue (an erroring arm's breaker
// keeps rescheduling probes forever, so Run would never return).
func (r *mirrorRig) step(t *testing.T, d sim.Duration) {
	t.Helper()
	if err := r.eng.RunFor(d); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
}

// write issues one mirror write and steps until it completes.
func (r *mirrorRig) write(t *testing.T, lbn int64, fill byte, blocks int) error {
	t.Helper()
	p := bytes.Repeat([]byte{fill}, blocks*512)
	var got error
	done := false
	r.m.WriteAt(lbn, netbuf.ChainFromBytes(p, netbuf.DefaultBufSize), false, func(err error) {
		got, done = err, true
	})
	r.step(t, 5*sim.Millisecond)
	if !done {
		t.Fatal("write did not complete")
	}
	return got
}

// read issues one mirror read and steps until it completes.
func (r *mirrorRig) read(t *testing.T, lbn int64, blocks int) ([]byte, error) {
	t.Helper()
	var flat []byte
	var got error
	done := false
	r.m.ReadAt(lbn, blocks, false, func(data *netbuf.Chain, err error) {
		if data != nil {
			flat = data.Flatten()
			data.Release()
		}
		got, done = err, true
	})
	r.step(t, 5*sim.Millisecond)
	if !done {
		t.Fatal("read did not complete")
	}
	return flat, got
}

func TestMirrorWriteFansOutBothArms(t *testing.T) {
	r := newMirrorRig(t, MirrorConfig{}, 10*sim.Microsecond, 10*sim.Microsecond)
	if err := r.write(t, 7, 0x5A, 3); err != nil {
		t.Fatalf("write: %v", err)
	}
	want := bytes.Repeat([]byte{0x5A}, 3*512)
	for i, a := range r.arms {
		if !bytes.Equal(a.dat[7*512:7*512+3*512], want) {
			t.Fatalf("arm %d missing replicated write", i)
		}
	}
	got, err := r.read(t, 7, 3)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("read back: err=%v, %d bytes", err, len(got))
	}
}

func TestMirrorReadFailsOverWithoutClientError(t *testing.T) {
	r := newMirrorRig(t, MirrorConfig{}, 10*sim.Microsecond, 10*sim.Microsecond)
	if err := r.write(t, 0, 0x11, 2); err != nil {
		t.Fatalf("write: %v", err)
	}
	r.arms[0].failReads = true
	got, err := r.read(t, 0, 2)
	if err != nil {
		t.Fatalf("read with one dead arm: %v", err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{0x11}, 2*512)) {
		t.Fatal("failover read returned wrong bytes")
	}
	st := r.m.Stats()
	if st[0].Errors != 1 {
		t.Fatalf("arm a errors = %d, want 1", st[0].Errors)
	}
	if st[0].State != ArmClosed {
		t.Fatalf("one error tripped the breaker early: %v", st[0].State)
	}
}

func TestMirrorBreakerLifecycleAndResync(t *testing.T) {
	// OpenTimeout well past the per-step window, so the half-open probe
	// cannot fire until the test heals the arm and runs the clock forward.
	r := newMirrorRig(t, MirrorConfig{Breaker: BreakerConfig{OpenTimeout: 100 * sim.Millisecond}},
		10*sim.Microsecond, 10*sim.Microsecond)
	if err := r.write(t, 0, 0x01, 4); err != nil {
		t.Fatalf("seed write: %v", err)
	}

	// Three consecutive failed legs trip arm b's breaker; every logical
	// write still succeeds off arm a.
	r.arms[1].failWrites = true
	for i := 0; i < 3; i++ {
		if err := r.write(t, int64(10+i), 0x20+byte(i), 1); err != nil {
			t.Fatalf("write %d during arm failure: %v", i, err)
		}
	}
	st := r.m.Stats()
	if st[1].State != ArmOpen || st[1].Ejections != 1 {
		t.Fatalf("arm b = %v ejections=%d, want open/1", st[1].State, st[1].Ejections)
	}

	// Writes while the arm is open only land on a and are logged dirty.
	for i := 0; i < 4; i++ {
		if err := r.write(t, int64(20+i), 0x30+byte(i), 1); err != nil {
			t.Fatalf("write %d during outage: %v", i, err)
		}
	}
	if st = r.m.Stats(); st[1].DirtyBlocks == 0 {
		t.Fatal("outage writes not logged in the dirty-region map")
	}

	// Heal, let the half-open probe pass and the resync drain the log.
	r.arms[1].failWrites = false
	r.step(t, sim.Second)
	st = r.m.Stats()
	if st[1].State != ArmClosed {
		t.Fatalf("arm b did not close after resync: %v", st[1].State)
	}
	if st[1].Probes == 0 || st[1].Resyncs != 1 || st[1].DirtyBlocks != 0 || st[1].ResyncBlocks == 0 {
		t.Fatalf("recovery stats = %+v", st[1])
	}
	if !bytes.Equal(r.arms[0].dat, r.arms[1].dat) {
		t.Fatal("arm images diverge after resync")
	}
}

func TestMirrorAllArmsDownFailsFast(t *testing.T) {
	r := newMirrorRig(t, MirrorConfig{Breaker: BreakerConfig{OpenTimeout: 100 * sim.Millisecond}},
		10*sim.Microsecond, 10*sim.Microsecond)
	r.arms[0].failWrites = true
	r.arms[1].failWrites = true
	r.arms[0].failReads = true
	r.arms[1].failReads = true
	for i := 0; i < 3; i++ {
		if err := r.write(t, int64(i), 0xFF, 1); err == nil {
			t.Fatalf("write %d succeeded with zero quorum", i)
		}
	}
	st := r.m.Stats()
	if st[0].State != ArmOpen || st[1].State != ArmOpen {
		t.Fatalf("arms = %v/%v, want both open", st[0].State, st[1].State)
	}
	if err := r.write(t, 50, 0xFF, 1); err != ErrNoArms {
		t.Fatalf("write with no arms = %v, want ErrNoArms", err)
	}
}

func TestMirrorRoundRobinPolicy(t *testing.T) {
	r := newMirrorRig(t, MirrorConfig{Policy: PolicyRoundRobin},
		10*sim.Microsecond, 10*sim.Microsecond)
	for i := 0; i < 4; i++ {
		if _, err := r.read(t, 0, 1); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	if r.arms[0].reads != 2 || r.arms[1].reads != 2 {
		t.Fatalf("round-robin split = %d/%d, want 2/2", r.arms[0].reads, r.arms[1].reads)
	}
}

func TestMirrorLeastLatencyPolicyPrefersFastArm(t *testing.T) {
	r := newMirrorRig(t, MirrorConfig{Policy: PolicyLeastLatency},
		sim.Millisecond, 10*sim.Microsecond)
	for i := 0; i < 6; i++ {
		if _, err := r.read(t, 0, 1); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	if r.arms[1].reads <= r.arms[0].reads {
		t.Fatalf("least-latency split = %d/%d, want fast arm to dominate",
			r.arms[0].reads, r.arms[1].reads)
	}
}

func TestMirrorLatencyEjection(t *testing.T) {
	r := newMirrorRig(t, MirrorConfig{
		Policy:  PolicyRoundRobin,
		Breaker: BreakerConfig{LatencyOpenUs: 100},
	}, 10*sim.Microsecond, sim.Millisecond)
	for i := 0; i < 6; i++ {
		if _, err := r.read(t, 0, 1); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	// The slow arm may already have probed back in by the time the test
	// looks (its dirty log is empty, so resync closes immediately); the
	// ejection counter is the durable evidence.
	st := r.m.Stats()
	if st[1].Ejections == 0 {
		t.Fatalf("slow arm never ejected (ewma %.1fus)", st[1].EWMALatencyUs)
	}
	if st[0].Ejections != 0 {
		t.Fatalf("fast arm ejected %d times", st[0].Ejections)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Policy
	}{
		{"", PolicyPrimaryFirst},
		{"primary-first", PolicyPrimaryFirst},
		{"round-robin", PolicyRoundRobin},
		{"least-latency", PolicyLeastLatency},
	} {
		got, err := ParsePolicy(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParsePolicy("fastest"); err == nil {
		t.Fatal("bad policy accepted")
	}
}
