package storage

import (
	"bytes"
	"testing"
	"testing/quick"

	"ncache/internal/blockdev"
	"ncache/internal/sim"
)

func newArray(t *testing.T, eng *sim.Engine, ndisks int, stripeUnit int) *RAID0 {
	t.Helper()
	disks := make([]*blockdev.MemDisk, ndisks)
	for i := range disks {
		disks[i] = blockdev.NewMemDisk(eng, "d", blockdev.Geometry{BlockSize: 512, NumBlocks: 1000}, blockdev.IDE2000())
	}
	r, err := NewRAID0(disks, stripeUnit)
	if err != nil {
		t.Fatalf("NewRAID0: %v", err)
	}
	return r
}

func TestRAID0RoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	r := newArray(t, eng, 4, 8)
	if r.Geometry().NumBlocks != 4000 {
		t.Fatalf("NumBlocks = %d", r.Geometry().NumBlocks)
	}
	data := make([]byte, 512*50) // spans many stripe units
	sim.NewRNG(5).Fill(data)
	r.WriteBlocks(13, data, func(err error) {
		if err != nil {
			t.Errorf("Write: %v", err)
		}
		r.ReadBlocks(13, 50, func(got []byte, err error) {
			if err != nil {
				t.Errorf("Read: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Error("raid0 read-back mismatch")
			}
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRAID0DistributesAcrossDisks(t *testing.T) {
	eng := sim.NewEngine()
	r := newArray(t, eng, 4, 8)
	// 64 blocks starting at 0 covers stripes 0..7: 16 blocks per disk,
	// coalesced into exactly one member request each.
	r.ReadBlocks(0, 64, func(_ []byte, err error) {
		if err != nil {
			t.Errorf("Read: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, d := range r.Disks() {
		if d.Reads != 1 {
			t.Fatalf("disk %d reads = %d, want 1 (coalesced)", i, d.Reads)
		}
		if d.BytesRead != 16*512 {
			t.Fatalf("disk %d bytes = %d, want %d", i, d.BytesRead, 16*512)
		}
	}
}

func TestRAID0ParallelismBeatsSingleDisk(t *testing.T) {
	eng := sim.NewEngine()
	single := blockdev.NewMemDisk(eng, "s", blockdev.Geometry{BlockSize: 512, NumBlocks: 4000}, blockdev.IDE2000())
	array := newArray(t, eng, 4, 8)

	var tSingle, tArray sim.Duration
	start := eng.Now()
	n := 512 // 256 KB
	single.ReadBlocks(0, n, func(_ []byte, err error) { tSingle = eng.Now().Sub(start) })
	array.ReadBlocks(0, n, func(_ []byte, err error) { tArray = eng.Now().Sub(start) })
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if tArray >= tSingle {
		t.Fatalf("raid0 (%v) not faster than single disk (%v)", tArray, tSingle)
	}
}

func TestRAID0ValidatesConstruction(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewRAID0(nil, 8); err == nil {
		t.Fatal("empty raid accepted")
	}
	d1 := blockdev.NewMemDisk(eng, "a", blockdev.Geometry{BlockSize: 512, NumBlocks: 10}, blockdev.IDE2000())
	d2 := blockdev.NewMemDisk(eng, "b", blockdev.Geometry{BlockSize: 4096, NumBlocks: 10}, blockdev.IDE2000())
	if _, err := NewRAID0([]*blockdev.MemDisk{d1, d2}, 8); err == nil {
		t.Fatal("mismatched members accepted")
	}
	if _, err := NewRAID0([]*blockdev.MemDisk{d1}, 0); err == nil {
		t.Fatal("zero stripe unit accepted")
	}
}

func TestRAID0PropertyRoundTrip(t *testing.T) {
	f := func(seed uint64, lbn16 uint16, count8, unit8 uint8) bool {
		eng := sim.NewEngine()
		unit := int(unit8)%16 + 1
		disks := make([]*blockdev.MemDisk, 3)
		for i := range disks {
			disks[i] = blockdev.NewMemDisk(eng, "d", blockdev.Geometry{BlockSize: 64, NumBlocks: 512}, blockdev.Model{})
		}
		r, err := NewRAID0(disks, unit)
		if err != nil {
			return false
		}
		lbn := int64(lbn16) % 1000
		count := int(count8)%32 + 1
		if lbn+int64(count) > r.Geometry().NumBlocks {
			lbn = 0
		}
		data := make([]byte, count*64)
		sim.NewRNG(seed).Fill(data)
		ok := false
		r.WriteBlocks(lbn, data, func(err error) {
			if err != nil {
				return
			}
			r.ReadBlocks(lbn, count, func(got []byte, err error) {
				ok = err == nil && bytes.Equal(got, data)
			})
		})
		if err := eng.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
