package sim

// Resource models a single-server FIFO queueing station: a CPU, a disk arm,
// or a NIC transmit serializer. Work submitted with Use is serviced in
// arrival order, one item at a time, each occupying the server for its stated
// duration. The resource tracks cumulative busy time so experiments can
// report utilization, the central quantity in the paper's Figures 4 and 5.
type Resource struct {
	eng  *Engine
	name string

	// availAt is the virtual time at which the server next becomes free.
	availAt Time

	// busy accumulates total service time granted since the last ResetStats.
	busy Duration
	// statsSince is when stats collection (re)started.
	statsSince Time
	// jobs counts completed service grants since the last ResetStats.
	jobs uint64
	// queued tracks the number of jobs admitted but not yet completed.
	queued int
	// maxQueue records the high-water mark of queued.
	maxQueue int
}

// NewResource returns a resource attached to the engine. The name appears in
// diagnostics only.
func NewResource(eng *Engine, name string) *Resource {
	return &Resource{eng: eng, name: name, statsSince: eng.Now()}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Engine returns the engine (shard) this resource lives on.
func (r *Resource) Engine() *Engine { return r.eng }

// Use enqueues a job needing d of service time and invokes done when the job
// completes. A non-positive d completes after any queued work with zero
// service time. done may be nil.
func (r *Resource) Use(d Duration, done func()) {
	if d < 0 {
		d = 0
	}
	now := r.eng.Now()
	start := r.availAt
	if start < now {
		start = now
	}
	if r.eng.usage != nil {
		// Report admission before scheduling: wait is the queueing delay
		// this job will experience, d its service demand. Pure observation.
		r.eng.usage(r, r.eng.cur, start.Sub(now), d)
	}
	finish := start.Add(d)
	r.availAt = finish
	r.busy += d
	r.queued++
	if r.queued > r.maxQueue {
		r.maxQueue = r.queued
	}
	r.eng.At(finish, func() {
		r.queued--
		r.jobs++
		if done != nil {
			done()
		}
	})
}

// Busy returns the cumulative service time granted since the last ResetStats.
// Work already admitted counts in full, mirroring how the paper's saturated
// CPUs report 100% utilization while a backlog exists.
func (r *Resource) Busy() Duration { return r.busy }

// Jobs returns the number of completed jobs since the last ResetStats.
func (r *Resource) Jobs() uint64 { return r.jobs }

// QueueLen returns the number of jobs admitted but not yet completed.
func (r *Resource) QueueLen() int { return r.queued }

// MaxQueueLen returns the high-water mark of the queue since ResetStats.
func (r *Resource) MaxQueueLen() int { return r.maxQueue }

// Utilization returns busy time divided by elapsed time since the last
// ResetStats, clamped to [0, 1]. It returns 0 before any time has elapsed.
func (r *Resource) Utilization() float64 {
	elapsed := r.eng.Now().Sub(r.statsSince)
	if elapsed <= 0 {
		return 0
	}
	u := float64(r.busy) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// ResetStats zeroes the busy-time and job counters and restarts the
// measurement window at the current virtual time. Queued work remains queued.
// Experiments call this after warm-up so reported utilization reflects only
// the steady-state window.
func (r *Resource) ResetStats() {
	r.busy = 0
	r.jobs = 0
	r.maxQueue = r.queued
	r.statsSince = r.eng.Now()
	// Busy time for in-flight work past this instant is intentionally
	// credited to the new window only via availAt: if the server is
	// committed beyond now, count that residue as busy.
	if r.availAt > r.statsSince {
		r.busy = r.availAt.Sub(r.statsSince)
	}
}
