// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine drives every experiment in this repository: protocol stacks,
// CPUs, NICs and disks are modeled as event callbacks and queueing resources
// on a shared virtual clock. Determinism comes from a total order on events
// (time, then insertion sequence) and from seeded random sources; running the
// same experiment twice yields byte-identical results.
//
// The scheduler is a concrete binary min-heap over *event (no container/heap,
// no interface boxing) with a free list of event objects: in steady state a
// schedule/fire cycle performs zero heap allocations, which is what lets the
// macro experiments run millions of simulated requests at wall-clock speeds
// bounded by the model, not the allocator.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. Virtual time has no relation to wall-clock time.
type Time int64

// Duration is a span of virtual time in nanoseconds. It deliberately mirrors
// time.Duration so that literals such as 5*sim.Microsecond read naturally.
type Duration int64

// Convenient duration units, mirroring package time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time.
const MaxTime = Time(math.MaxInt64)

// Std converts a virtual duration to a time.Duration for display.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// String formats the duration using time.Duration notation.
func (d Duration) String() string { return time.Duration(d).String() }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats the time as an offset from the simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// Seconds returns the time as a floating-point number of seconds since the
// simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// event is a scheduled callback. Events are pooled: once fired or canceled
// the object returns to the engine's free list and its generation counter
// advances, so a stale EventID can never cancel the object's next tenant.
type event struct {
	at  Time
	seq uint64 // tiebreaker: FIFO among events at the same instant
	fn  func()
	ctx any    // request context captured at scheduling time
	idx int    // heap index, -1 once popped or canceled
	gen uint64 // incarnation counter, bumped on every recycle
}

// EventID identifies a scheduled event so it can be canceled. It pins the
// event's incarnation: after the event fires (or is canceled) and its object
// is reused for a later schedule, the stale ID no longer matches.
type EventID struct {
	ev  *event
	gen uint64
}

// Engine is a discrete-event simulation loop. The zero value is not usable;
// construct one with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  []*event // binary min-heap ordered by (at, seq)
	free    []*event // recycled event objects
	stopped bool
	// processed counts events executed, for diagnostics and runaway guards.
	processed uint64
	// limit aborts Run after this many events (0 = unlimited).
	limit uint64
	// cur is the request context of the event currently executing. Every
	// event scheduled while it runs inherits it, so a context set once at
	// request issue propagates across the whole causal chain of events —
	// through protocol stacks, queues and even "wire" hops — without any
	// signature changes. Observation only: it never affects event order.
	cur any
	// usage, when set, observes every Resource.Use admission (queueing
	// delay and service demand, together with the admitting context).
	usage UsageObserver

	// Sharded-mode fields (nil/zero on a plain NewEngine engine; see
	// shard.go). co links every shard of one parallel cluster; id is this
	// shard's index; out holds cross-shard sends awaiting the next barrier,
	// one outbox per destination shard — only this shard appends (during
	// its own event execution) and only the coordinator drains (at
	// barriers), so no lock is needed; postSeq numbers this shard's PostTo
	// calls for the deterministic admission order.
	co      *coord
	id      int
	name    string
	out     [][]staged
	postSeq uint64
}

// UsageObserver sees each job admitted to a Resource: the resource itself,
// the request context active at admission, the time the job will wait for
// the server, and its service demand. Observers must only record — they run
// synchronously inside Use and must not schedule or mutate the engine.
type UsageObserver func(r *Resource, ctx any, wait, service Duration)

// SetUsageObserver installs the resource accounting hook (nil to remove).
// On a sharded engine the hook is installed on every shard; it then runs
// concurrently from worker goroutines and must be shard-safe (e.g. append
// to per-shard state keyed by r.Engine().ShardID()).
func (e *Engine) SetUsageObserver(o UsageObserver) {
	if e.co != nil {
		for _, s := range e.co.shards {
			s.usage = o
		}
		return
	}
	e.usage = o
}

// Context returns the request context of the currently executing event, or
// nil outside event execution (and for events scheduled outside one).
func (e *Engine) Context() any { return e.cur }

// SetContext replaces the current request context. Events scheduled from
// this point on (until the enclosing event returns, or a further call)
// carry the new context. Typically called once per request at issue time.
func (e *Engine) SetContext(ctx any) { e.cur = ctx }

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed reports how many events have been executed so far. On a
// sharded engine it aggregates across all shards (call between runs).
func (e *Engine) Processed() uint64 {
	if e.co != nil {
		var total uint64
		for _, s := range e.co.shards {
			total += s.processed
		}
		return total
	}
	return e.processed
}

// SetEventLimit aborts Run after n events. Zero means unlimited. It exists
// as a guard against accidental non-terminating experiment loops. On a
// sharded engine the limit applies to the aggregate count, checked at
// epoch barriers.
func (e *Engine) SetEventLimit(n uint64) {
	if e.co != nil {
		e.co.limit = n
		return
	}
	e.limit = n
}

// Schedule runs fn after delay d. A negative delay is treated as zero.
// Events scheduled for the same instant run in scheduling order.
func (e *Engine) Schedule(d Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// At runs fn at absolute time t. If t is in the past, fn runs at the current
// time (but never before events already due).
func (e *Engine) At(t Time, fn func()) EventID {
	return e.insertAt(t, fn, e.cur)
}

// Cancel removes a pending event. Canceling an already-fired or canceled
// event is a no-op and reports false.
func (e *Engine) Cancel(id EventID) bool {
	ev := id.ev
	if ev == nil || ev.gen != id.gen || ev.idx < 0 {
		return false
	}
	e.removeAt(ev.idx)
	e.recycle(ev)
	return true
}

// Stop makes Run return after the current event completes. On a sharded
// engine the request is honored at the next epoch barrier (the epoch
// completes in full so the stopping point is deterministic).
func (e *Engine) Stop() {
	if e.co != nil {
		e.co.stopReq.Store(true)
		return
	}
	e.stopped = true
}

// Pending reports the number of events waiting to fire, including staged
// cross-shard sends on a sharded engine (call between runs).
func (e *Engine) Pending() int {
	if e.co != nil {
		n := 0
		for _, s := range e.co.shards {
			n += len(s.events)
			for _, q := range s.out {
				n += len(q)
			}
		}
		return n
	}
	return len(e.events)
}

// recycle resets a popped or canceled event and returns it to the free list.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.ctx = nil
	ev.idx = -1
	ev.gen++
	e.free = append(e.free, ev)
}

// less orders the heap by (at, seq).
func (e *Engine) less(i, j int) bool {
	a, b := e.events[i], e.events[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts an event and restores the heap invariant bottom-up.
func (e *Engine) push(ev *event) {
	ev.idx = len(e.events)
	e.events = append(e.events, ev)
	e.siftUp(ev.idx)
}

// pop removes and returns the earliest event.
func (e *Engine) pop() *event {
	h := e.events
	root := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[0].idx = 0
	h[n] = nil
	e.events = h[:n]
	if n > 0 {
		e.siftDown(0)
	}
	root.idx = -1
	return root
}

// removeAt deletes the event at heap index i.
func (e *Engine) removeAt(i int) {
	h := e.events
	n := len(h) - 1
	removed := h[i]
	if i != n {
		h[i] = h[n]
		h[i].idx = i
		h[n] = nil
		e.events = h[:n]
		if !e.siftDown(i) {
			e.siftUp(i)
		}
	} else {
		h[n] = nil
		e.events = h[:n]
	}
	removed.idx = -1
}

// siftUp moves the event at index i toward the root until ordered.
func (e *Engine) siftUp(i int) {
	h := e.events
	ev := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := h[parent]
		if p.at < ev.at || (p.at == ev.at && p.seq < ev.seq) {
			break
		}
		h[i] = p
		p.idx = i
		i = parent
	}
	h[i] = ev
	ev.idx = i
}

// siftDown moves the event at index i toward the leaves until ordered. It
// reports whether the event moved.
func (e *Engine) siftDown(i int) bool {
	h := e.events
	n := len(h)
	ev := h[i]
	start := i
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		l := h[left]
		la, ls := l.at, l.seq
		if right := left + 1; right < n {
			r := h[right]
			if r.at < la || (r.at == la && r.seq < ls) {
				least = right
				la, ls = r.at, r.seq
			}
		}
		if ev.at < la || (ev.at == la && ev.seq < ls) {
			break
		}
		h[i] = h[least]
		h[i].idx = i
		i = least
	}
	h[i] = ev
	ev.idx = i
	return i != start
}

// step executes the earliest pending event. It reports false when no events
// remain or the engine is stopped.
func (e *Engine) step(until Time) (bool, error) {
	if e.stopped || len(e.events) == 0 {
		return false, nil
	}
	if e.events[0].at > until {
		// Advance the clock to the horizon without firing the event.
		e.now = until
		return false, nil
	}
	popped := e.pop()
	e.now = popped.at
	e.processed++
	if e.limit > 0 && e.processed > e.limit {
		e.recycle(popped)
		return false, fmt.Errorf("sim: event limit %d exceeded at t=%s", e.limit, e.now)
	}
	fn, ctx := popped.fn, popped.ctx
	// Recycle before running fn: the common schedule-from-an-event pattern
	// then reuses the same object, and any stale EventID is fenced off by
	// the generation bump.
	e.recycle(popped)
	if fn != nil {
		e.cur = ctx
		fn()
		e.cur = nil
	}
	return true, nil
}

// Run executes events until none remain or Stop is called. On a sharded
// engine it drives all shards through the epoch loop.
func (e *Engine) Run() error {
	if e.co != nil {
		return e.co.runEpochs(MaxTime)
	}
	e.stopped = false
	for {
		more, err := e.step(MaxTime)
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled beyond t remain pending. On a sharded engine
// every shard's clock lands on exactly t, so experiment boundaries observe
// uniform time.
func (e *Engine) RunUntil(t Time) error {
	if e.co != nil {
		return e.co.runEpochs(t)
	}
	e.stopped = false
	for {
		more, err := e.step(t)
		if err != nil {
			return err
		}
		if !more {
			if !e.stopped && e.now < t {
				e.now = t
			}
			return nil
		}
	}
}

// RunFor executes events for a span d of virtual time from now.
func (e *Engine) RunFor(d Duration) error {
	return e.RunUntil(e.now.Add(d))
}
