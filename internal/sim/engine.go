// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine drives every experiment in this repository: protocol stacks,
// CPUs, NICs and disks are modeled as event callbacks and queueing resources
// on a shared virtual clock. Determinism comes from a total order on events
// (time, then insertion sequence) and from seeded random sources; running the
// same experiment twice yields byte-identical results.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. Virtual time has no relation to wall-clock time.
type Time int64

// Duration is a span of virtual time in nanoseconds. It deliberately mirrors
// time.Duration so that literals such as 5*sim.Microsecond read naturally.
type Duration int64

// Convenient duration units, mirroring package time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time.
const MaxTime = Time(math.MaxInt64)

// Std converts a virtual duration to a time.Duration for display.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// String formats the duration using time.Duration notation.
func (d Duration) String() string { return time.Duration(d).String() }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats the time as an offset from the simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// Seconds returns the time as a floating-point number of seconds since the
// simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tiebreaker: FIFO among events at the same instant
	fn  func()
	ctx any // request context captured at scheduling time
	idx int // heap index, -1 once popped or canceled
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		return
	}
	ev.idx = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// EventID identifies a scheduled event so it can be canceled.
type EventID struct {
	ev *event
}

// Engine is a discrete-event simulation loop. The zero value is not usable;
// construct one with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	// processed counts events executed, for diagnostics and runaway guards.
	processed uint64
	// limit aborts Run after this many events (0 = unlimited).
	limit uint64
	// cur is the request context of the event currently executing. Every
	// event scheduled while it runs inherits it, so a context set once at
	// request issue propagates across the whole causal chain of events —
	// through protocol stacks, queues and even "wire" hops — without any
	// signature changes. Observation only: it never affects event order.
	cur any
	// usage, when set, observes every Resource.Use admission (queueing
	// delay and service demand, together with the admitting context).
	usage UsageObserver
}

// UsageObserver sees each job admitted to a Resource: the resource itself,
// the request context active at admission, the time the job will wait for
// the server, and its service demand. Observers must only record — they run
// synchronously inside Use and must not schedule or mutate the engine.
type UsageObserver func(r *Resource, ctx any, wait, service Duration)

// SetUsageObserver installs the resource accounting hook (nil to remove).
func (e *Engine) SetUsageObserver(o UsageObserver) { e.usage = o }

// Context returns the request context of the currently executing event, or
// nil outside event execution (and for events scheduled outside one).
func (e *Engine) Context() any { return e.cur }

// SetContext replaces the current request context. Events scheduled from
// this point on (until the enclosing event returns, or a further call)
// carry the new context. Typically called once per request at issue time.
func (e *Engine) SetContext(ctx any) { e.cur = ctx }

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed reports how many events have been executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// SetEventLimit aborts Run after n events. Zero means unlimited. It exists
// as a guard against accidental non-terminating experiment loops.
func (e *Engine) SetEventLimit(n uint64) { e.limit = n }

// Schedule runs fn after delay d. A negative delay is treated as zero.
// Events scheduled for the same instant run in scheduling order.
func (e *Engine) Schedule(d Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// At runs fn at absolute time t. If t is in the past, fn runs at the current
// time (but never before events already due).
func (e *Engine) At(t Time, fn func()) EventID {
	if t < e.now {
		t = e.now
	}
	ev := &event{at: t, seq: e.seq, fn: fn, ctx: e.cur}
	e.seq++
	heap.Push(&e.events, ev)
	return EventID{ev: ev}
}

// Cancel removes a pending event. Canceling an already-fired or canceled
// event is a no-op and reports false.
func (e *Engine) Cancel(id EventID) bool {
	if id.ev == nil || id.ev.idx < 0 {
		return false
	}
	heap.Remove(&e.events, id.ev.idx)
	id.ev.fn = nil
	return true
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of events waiting to fire.
func (e *Engine) Pending() int { return len(e.events) }

// step executes the earliest pending event. It reports false when no events
// remain or the engine is stopped.
func (e *Engine) step(until Time) (bool, error) {
	if e.stopped || len(e.events) == 0 {
		return false, nil
	}
	next := e.events[0]
	if next.at > until {
		// Advance the clock to the horizon without firing the event.
		e.now = until
		return false, nil
	}
	popped, ok := heap.Pop(&e.events).(*event)
	if !ok {
		return false, fmt.Errorf("sim: corrupt event heap")
	}
	e.now = popped.at
	e.processed++
	if e.limit > 0 && e.processed > e.limit {
		return false, fmt.Errorf("sim: event limit %d exceeded at t=%s", e.limit, e.now)
	}
	if popped.fn != nil {
		e.cur = popped.ctx
		popped.fn()
		e.cur = nil
	}
	return true, nil
}

// Run executes events until none remain or Stop is called.
func (e *Engine) Run() error {
	e.stopped = false
	for {
		more, err := e.step(MaxTime)
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t Time) error {
	e.stopped = false
	for {
		more, err := e.step(t)
		if err != nil {
			return err
		}
		if !more {
			if !e.stopped && e.now < t {
				e.now = t
			}
			return nil
		}
	}
}

// RunFor executes events for a span d of virtual time from now.
func (e *Engine) RunFor(d Duration) error {
	return e.RunUntil(e.now.Add(d))
}
