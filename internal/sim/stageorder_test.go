package sim

import (
	"encoding/binary"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// admitOrder simulates one barrier admission: the staged batch arrives in
// an arbitrary interleaving (the worker-dependent append order) and must
// admit in the canonical (at, srcShard, srcSeq) order. It returns the pop
// order a destination heap would observe.
func admitOrder(batch []staged) []staged {
	dst := NewEngine()
	out := make([]staged, 0, len(batch))
	// Admit exactly the way admitStaged does, then drain the heap.
	dst.staging = append(dst.staging, batch...)
	idx := make(map[*event]staged, len(batch))
	// Sort a copy for admission; record each event's source tuple so the
	// pop order can be compared tuple-by-tuple.
	cp := append([]staged(nil), dst.staging...)
	dst.staging = dst.staging[:0]
	sort.Slice(cp, func(i, j int) bool { return stagedLess(&cp[i], &cp[j]) })
	for i := range cp {
		id := dst.insertAt(cp[i].at, nil, nil)
		idx[id.ev] = cp[i]
	}
	for len(dst.events) > 0 {
		ev := dst.pop()
		out = append(out, idx[ev])
	}
	return out
}

// TestStagedAdmissionOrderProperty: for random batches under random
// interleavings, the admitted pop order is a pure function of the batch's
// contents — independent of arrival order — and respects (at, srcShard,
// srcSeq). This is the quick.Check form of the tentpole's tie-break rule.
func TestStagedAdmissionOrderProperty(t *testing.T) {
	type wireEvent struct {
		At    uint16 // small domain to force heavy time collisions
		Shard uint8
		Seq   uint8
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}
	prop := func(events []wireEvent, shuffleSeed int64) bool {
		// Build a batch with unique (shard, seq) per source, as PostTo
		// guarantees: re-key seqs per shard in arrival order.
		seqs := map[uint8]uint64{}
		batch := make([]staged, len(events))
		for i, w := range events {
			batch[i] = staged{
				at:       Time(w.At),
				srcShard: int32(w.Shard % 8),
				srcSeq:   seqs[w.Shard%8],
			}
			seqs[w.Shard%8]++
		}
		ref := admitOrder(batch)
		// Any interleaving of the same batch admits identically.
		sh := append([]staged(nil), batch...)
		rand.New(rand.NewSource(shuffleSeed)).Shuffle(len(sh), func(i, j int) { sh[i], sh[j] = sh[j], sh[i] })
		got := admitOrder(sh)
		if !reflect.DeepEqual(got, ref) {
			return false
		}
		// And the order respects the canonical comparator.
		for i := 1; i < len(ref); i++ {
			if stagedLess(&ref[i], &ref[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestStagedLessTotalOrder: the comparator is a strict weak ordering and,
// on the unique keys PostTo produces, a total order (trichotomy).
func TestStagedLessTotalOrder(t *testing.T) {
	prop := func(a1, a2 uint16, s1, s2 uint8, q1, q2 uint8) bool {
		a := &staged{at: Time(a1), srcShard: int32(s1), srcSeq: uint64(q1)}
		b := &staged{at: Time(a2), srcShard: int32(s2), srcSeq: uint64(q2)}
		equal := a.at == b.at && a.srcShard == b.srcShard && a.srcSeq == b.srcSeq
		switch {
		case equal:
			return !stagedLess(a, b) && !stagedLess(b, a)
		default:
			return stagedLess(a, b) != stagedLess(b, a)
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// decodeBatch turns fuzz bytes into a staged batch with PostTo-valid keys
// (per-shard sequential seqs).
func decodeBatch(data []byte) []staged {
	var batch []staged
	seqs := map[int32]uint64{}
	for len(data) >= 3 {
		at := Time(binary.LittleEndian.Uint16(data))
		shard := int32(data[2] % 16)
		batch = append(batch, staged{at: at, srcShard: shard, srcSeq: seqs[shard]})
		seqs[shard]++
		data = data[3:]
	}
	return batch
}

// FuzzStagedAdmissionOrder fuzzes the barrier tie-break: for any encoded
// batch, admission must be invariant under reversal and rotation of the
// arrival order (stand-ins for arbitrary worker interleavings), and the
// pop order must be sorted by the canonical comparator.
func FuzzStagedAdmissionOrder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 1, 0, 1, 2, 0, 0})
	f.Add([]byte{0, 0, 3, 0, 0, 3, 0, 0, 2, 5, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 3*512 {
			data = data[:3*512]
		}
		batch := decodeBatch(data)
		ref := admitOrder(batch)
		for i := 1; i < len(ref); i++ {
			if stagedLess(&ref[i], &ref[i-1]) {
				t.Fatalf("pop order violates canonical comparator at %d", i)
			}
		}
		rev := make([]staged, len(batch))
		for i := range batch {
			rev[len(batch)-1-i] = batch[i]
		}
		if !reflect.DeepEqual(admitOrder(rev), ref) {
			t.Fatal("admission order depends on arrival order (reversal)")
		}
		if len(batch) > 1 {
			rot := append(append([]staged(nil), batch[1:]...), batch[0])
			if !reflect.DeepEqual(admitOrder(rot), ref) {
				t.Fatal("admission order depends on arrival order (rotation)")
			}
		}
	})
}
