package sim

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// tagged is the test-side identity of one staged cross-shard send: the
// canonical admission key (at, srcShard, srcSeq).
type tagged struct {
	at  Time
	src int32
	seq uint64
}

// taggedLess is the canonical admission order the old global-sort
// admission used — the oracle the k-way merge must reproduce.
func taggedLess(a, b *tagged) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// admitOrder runs one barrier admission through the real outbox machinery:
// each source's sends land in its per-destination outbox in srcSeq order
// (the PostTo invariant — a shard's own posts are never reordered), the
// coordinator's admitStagedTo sorts and k-way merges the runs into the
// destination heap, and the heap's pop order is returned.
func admitOrder(batch []tagged) []tagged {
	maxSrc := 0
	for i := range batch {
		if int(batch[i].src) > maxSrc {
			maxSrc = int(batch[i].src)
		}
	}
	ctl := NewSharded(Config{Workers: 1, Lookahead: 1})
	defer ctl.Close()
	shards := []*Engine{ctl}
	for i := 1; i <= maxSrc; i++ {
		shards = append(shards, ctl.NewShard(fmt.Sprintf("s%d", i)))
	}
	dst := ctl
	for _, s := range shards {
		for len(s.out) <= dst.id {
			s.out = append(s.out, nil)
		}
	}
	// Distribute into per-source runs and append each run in srcSeq order;
	// the cross-source interleaving of the original batch is irrelevant by
	// construction (separate outboxes), which is exactly the worker-
	// independence argument.
	runs := make([][]tagged, maxSrc+1)
	for _, tg := range batch {
		runs[tg.src] = append(runs[tg.src], tg)
	}
	var out []tagged
	for src := range runs {
		r := append([]tagged(nil), runs[src]...)
		sort.Slice(r, func(i, j int) bool { return r[i].seq < r[j].seq })
		for _, tg := range r {
			tg := tg
			shards[src].out[dst.id] = append(shards[src].out[dst.id], staged{
				at:     tg.at,
				srcSeq: tg.seq,
				fn:     func() { out = append(out, tg) },
			})
		}
	}
	ctl.co.admitStagedTo(dst)
	for len(dst.events) > 0 {
		ev := dst.pop()
		fn := ev.fn
		dst.recycle(ev)
		if fn != nil {
			fn()
		}
	}
	return out
}

// oracle is the old admission semantics: one global sort of the batch by
// (at, srcShard, srcSeq).
func oracle(batch []tagged) []tagged {
	cp := append([]tagged(nil), batch...)
	sort.SliceStable(cp, func(i, j int) bool { return taggedLess(&cp[i], &cp[j]) })
	return cp
}

// TestStagedAdmissionOrderProperty: for random batches under random
// arrival interleavings, the merged admission order equals the global-sort
// oracle — the k-way merge over per-source runs is a pure function of the
// batch's contents and reproduces the canonical (at, srcShard, srcSeq)
// order exactly.
func TestStagedAdmissionOrderProperty(t *testing.T) {
	type wireEvent struct {
		At    uint16 // small domain to force heavy time collisions
		Shard uint8
		Seq   uint8
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}
	prop := func(events []wireEvent, shuffleSeed int64) bool {
		// Build a batch with unique (shard, seq) per source, as PostTo
		// guarantees: re-key seqs per shard in arrival order.
		seqs := map[uint8]uint64{}
		batch := make([]tagged, len(events))
		for i, w := range events {
			batch[i] = tagged{
				at:  Time(w.At),
				src: int32(w.Shard % 8),
				seq: seqs[w.Shard%8],
			}
			seqs[w.Shard%8]++
		}
		ref := oracle(batch)
		if got := admitOrder(batch); !reflect.DeepEqual(got, ref) {
			return false
		}
		// Any interleaving of the same batch admits identically.
		sh := append([]tagged(nil), batch...)
		rand.New(rand.NewSource(shuffleSeed)).Shuffle(len(sh), func(i, j int) { sh[i], sh[j] = sh[j], sh[i] })
		return reflect.DeepEqual(admitOrder(sh), ref)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestTaggedLessTotalOrder: the canonical comparator is a strict weak
// ordering and, on the unique keys PostTo produces, a total order.
func TestTaggedLessTotalOrder(t *testing.T) {
	prop := func(a1, a2 uint16, s1, s2 uint8, q1, q2 uint8) bool {
		a := &tagged{at: Time(a1), src: int32(s1), seq: uint64(q1)}
		b := &tagged{at: Time(a2), src: int32(s2), seq: uint64(q2)}
		equal := a.at == b.at && a.src == b.src && a.seq == b.seq
		switch {
		case equal:
			return !taggedLess(a, b) && !taggedLess(b, a)
		default:
			return taggedLess(a, b) != taggedLess(b, a)
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// decodeBatch turns fuzz bytes into a staged batch with PostTo-valid keys
// (per-shard sequential seqs).
func decodeBatch(data []byte) []tagged {
	var batch []tagged
	seqs := [16]uint64{}
	for len(data) >= 3 {
		at := Time(binary.LittleEndian.Uint16(data))
		shard := int32(data[2] % 16)
		batch = append(batch, tagged{at: at, src: shard, seq: seqs[shard]})
		seqs[shard]++
		data = data[3:]
	}
	return batch
}

// FuzzStagedAdmissionOrder fuzzes the barrier tie-break: for any encoded
// batch, the merged admission equals the global-sort oracle and is
// invariant under reversal and rotation of the arrival order (stand-ins
// for arbitrary worker interleavings).
func FuzzStagedAdmissionOrder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 1, 0, 1, 2, 0, 0})
	f.Add([]byte{0, 0, 3, 0, 0, 3, 0, 0, 2, 5, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 3*512 {
			data = data[:3*512]
		}
		batch := decodeBatch(data)
		ref := oracle(batch)
		if !reflect.DeepEqual(admitOrder(batch), ref) {
			t.Fatal("merged admission diverges from the global-sort oracle")
		}
		rev := make([]tagged, len(batch))
		for i := range batch {
			rev[len(batch)-1-i] = batch[i]
		}
		if !reflect.DeepEqual(admitOrder(rev), ref) {
			t.Fatal("admission order depends on arrival order (reversal)")
		}
		if len(batch) > 1 {
			rot := append(append([]tagged(nil), batch[1:]...), batch[0])
			if !reflect.DeepEqual(admitOrder(rot), ref) {
				t.Fatal("admission order depends on arrival order (rotation)")
			}
		}
	})
}

// FuzzPostToPairBound fuzzes the per-pair PostTo validation: a send is
// accepted exactly when its delay meets the pair's lookahead bound, and a
// NoPost pair rejects every delay.
func FuzzPostToPairBound(f *testing.F) {
	f.Add(uint32(5000), uint32(7000), uint32(6000), false)
	f.Add(uint32(5000), uint32(5000), uint32(4999), false)
	f.Add(uint32(5000), uint32(1), uint32(0), true)
	f.Fuzz(func(t *testing.T, laDef, laPair, d uint32, noPost bool) {
		def := Duration(laDef%1_000_000) + 1
		pair := Duration(laPair%1_000_000) + 1
		if noPost {
			pair = NoPost
		}
		delay := Duration(d % 2_000_000)
		ctl := NewSharded(Config{Workers: 1, Lookahead: def})
		defer ctl.Close()
		a := ctl.NewShard("a")
		b := ctl.NewShard("b")
		ctl.SetLookahead(a, b, pair)
		if got := ctl.PairLookahead(a, b); got != pair {
			t.Fatalf("PairLookahead = %v, want %v", got, pair)
		}
		if got := ctl.PairLookahead(b, a); got != def {
			t.Fatalf("untouched pair lookahead = %v, want default %v", got, def)
		}
		want := delay >= pair
		a.Schedule(0, func() {
			defer func() {
				r := recover()
				if want && r != nil {
					t.Fatalf("PostTo(%v) with pair bound %v panicked: %v", delay, pair, r)
				}
				if !want && r == nil {
					t.Fatalf("PostTo(%v) below pair bound %v did not panic", delay, pair)
				}
			}()
			a.PostTo(b, delay, func() {})
		})
		if err := ctl.Run(); err != nil {
			t.Fatal(err)
		}
	})
}
