package sim

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// This file implements the sharded (parallel) engine: a conservative
// parallel discrete-event simulation over per-shard event heaps,
// synchronized with epoch barriers whose width is the cluster's lookahead
// (the minimum cross-shard signal delay, in practice the simnet switch
// latency). Each shard is a full *Engine — same heap, free list, clock and
// context machinery as the sequential engine — so model code is oblivious
// to which mode it runs in.
//
// Protocol, per epoch:
//
//  1. The coordinator finds m, the earliest pending event time across all
//     shards, and sets the horizon H = m + lookahead.
//  2. The control shard (shard 0) executes its events in [m, H) alone,
//     with every other shard idle. Control events may therefore touch any
//     shard's state directly — this is where experiment harness code
//     (background flushers, samplers) lives.
//  3. A worker pool executes every other shard's events in [m, H)
//     concurrently. A shard only ever touches its own state; cross-shard
//     sends go through PostTo, which appends to the destination's staging
//     queue and never mutates a foreign heap.
//  4. Barrier: staged events are admitted into their destination heaps in
//     (at, srcShard, srcSeq) order — a total order independent of worker
//     interleaving — and barrier hooks (trace log merging) run.
//
// Because admission order is canonical and each shard is internally
// sequential, the schedule is a pure function of the initial state and the
// seeds: Workers=1 and Workers=N produce bit-identical runs, which the
// differential replay suite asserts.

// Config describes a sharded engine cluster.
type Config struct {
	// Workers is the number of goroutines executing non-control shards
	// each epoch. 1 is the sequential oracle (same sharded semantics,
	// zero concurrency); values above the shard count are clamped.
	Workers int
	// Lookahead is the minimum cross-shard delay: PostTo with a shorter
	// delay panics. It bounds the epoch width. Derive it from the
	// network's switch latency (the shortest path between nodes).
	Lookahead Duration
}

// staged is a cross-shard event parked in the destination's staging queue
// until the next barrier. The (at, srcShard, srcSeq) triple is the
// deterministic admission key.
type staged struct {
	at       Time
	srcShard int32
	srcSeq   uint64
	fn       func()
	ctx      any
}

// coord synchronizes the shards of one sharded engine cluster.
type coord struct {
	shards    []*Engine
	lookahead Duration
	workers   int

	// limit aborts a run once the aggregate processed count exceeds it.
	limit uint64
	// stopReq is set by Stop from any shard; honored at the next barrier.
	stopReq atomic.Bool
	// next is the work-stealing cursor over shards[1:] within an epoch.
	next atomic.Int64
	// horizon is the current epoch's exclusive event-time bound, read by
	// worker goroutines.
	horizon Time
	// bound is the inclusive RunUntil bound for the current run.
	bound Time
	// onBarrier hooks run single-threaded at every barrier (and at run
	// end), in registration order. The trace subsystem merges its
	// per-shard span logs here.
	onBarrier []func()

	// persistent worker pool, started lazily on the first parallel run.
	workCh  []chan Time
	doneCh  chan int
	started bool
	closed  bool

	// epochs counts barriers, for diagnostics and tests.
	epochs uint64
}

// NewSharded returns the control shard (shard 0) of a new sharded engine
// cluster. The control shard's events run exclusively — no other shard
// executes concurrently with them — so harness code scheduled there may
// touch any shard's state. Create model shards with NewShard; drive the
// whole cluster through the control handle's Run/RunUntil/RunFor.
func NewSharded(cfg Config) *Engine {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Lookahead <= 0 {
		panic("sim: sharded engine needs a positive lookahead")
	}
	co := &coord{lookahead: cfg.Lookahead, workers: cfg.Workers}
	ctl := &Engine{co: co, id: 0, name: "control"}
	co.shards = []*Engine{ctl}
	return ctl
}

// NewShard adds a model shard to the cluster and returns its engine
// handle. All shards must be created before the first run. The name
// appears in diagnostics only.
func (e *Engine) NewShard(name string) *Engine {
	co := e.co
	if co == nil {
		panic("sim: NewShard on a non-sharded engine")
	}
	if co.started {
		panic("sim: NewShard after the first run")
	}
	s := &Engine{co: co, id: len(co.shards), name: name, now: e.now}
	co.shards = append(co.shards, s)
	return s
}

// ShardID returns this engine's shard index (0 for the control shard and
// for non-sharded engines).
func (e *Engine) ShardID() int { return e.id }

// ShardCount returns the number of shards in the cluster (1 for a
// non-sharded engine).
func (e *Engine) ShardCount() int {
	if e.co == nil {
		return 1
	}
	return len(e.co.shards)
}

// Sharded reports whether this engine is a shard of a parallel cluster.
func (e *Engine) Sharded() bool { return e.co != nil }

// Workers returns the configured worker count (1 for non-sharded).
func (e *Engine) Workers() int {
	if e.co == nil {
		return 1
	}
	return e.co.workers
}

// Lookahead returns the cluster's lookahead (0 for non-sharded).
func (e *Engine) Lookahead() Duration {
	if e.co == nil {
		return 0
	}
	return e.co.lookahead
}

// ShardStat is a per-shard diagnostic snapshot (see ShardStats).
type ShardStat struct {
	Name      string
	Now       Time
	Processed uint64
	Pending   int
}

// ShardStats snapshots every shard's clock and counters. Only coherent when
// no epoch is executing — from an OnBarrier hook or between runs. On a
// non-sharded engine it returns a single element describing the engine.
func (e *Engine) ShardStats() []ShardStat {
	if e.co == nil {
		return []ShardStat{{Name: e.name, Now: e.now, Processed: e.processed, Pending: len(e.events)}}
	}
	out := make([]ShardStat, len(e.co.shards))
	for i, s := range e.co.shards {
		out[i] = ShardStat{Name: s.name, Now: s.now, Processed: s.processed, Pending: len(s.events)}
	}
	return out
}

// Epochs returns how many barriers the cluster has crossed.
func (e *Engine) Epochs() uint64 {
	if e.co == nil {
		return 0
	}
	return e.co.epochs
}

// OnBarrier registers fn to run single-threaded at every epoch barrier and
// once more when a run completes. On a non-sharded engine it is a no-op
// (there are no barriers; callers apply their state eagerly instead).
func (e *Engine) OnBarrier(fn func()) {
	if e.co != nil {
		e.co.onBarrier = append(e.co.onBarrier, fn)
	}
}

// PostTo schedules fn on shard dst after delay d, carrying the calling
// shard's current event context. It is the only legal way for one shard's
// event to reach another shard: the event lands in dst's staging queue and
// becomes visible at the next barrier, so d must be at least the cluster
// lookahead. On a non-sharded engine (or when dst == e) it degenerates to
// dst.Schedule with the source context.
func (e *Engine) PostTo(dst *Engine, d Duration, fn func()) {
	if e.co == nil || dst == e {
		if d < 0 {
			d = 0
		}
		dst.insertAt(dst.now.Add(d), fn, e.cur)
		return
	}
	if dst.co != e.co {
		panic("sim: PostTo across engine clusters")
	}
	if d < e.co.lookahead {
		panic(fmt.Sprintf("sim: PostTo delay %s below lookahead %s (%s -> %s)",
			d, e.co.lookahead, e.name, dst.name))
	}
	dst.stageMu.Lock()
	dst.staging = append(dst.staging, staged{
		at:       e.now.Add(d),
		srcShard: int32(e.id),
		srcSeq:   e.postSeq,
		fn:       fn,
		ctx:      e.cur,
	})
	dst.stageMu.Unlock()
	e.postSeq++
}

// insertAt is At with an explicit context (At captures e.cur; staged
// admissions must preserve the posting shard's context instead).
func (e *Engine) insertAt(t Time, fn func(), ctx any) EventID {
	if t < e.now {
		t = e.now
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	ev.ctx = ctx
	e.seq++
	e.push(ev)
	return EventID{ev: ev, gen: ev.gen}
}

// earliest returns the earliest pending event time on this shard,
// including staged admissions, or MaxTime when idle.
func (e *Engine) earliest() Time {
	t := MaxTime
	if len(e.events) > 0 {
		t = e.events[0].at
	}
	e.stageMu.Lock()
	for i := range e.staging {
		if e.staging[i].at < t {
			t = e.staging[i].at
		}
	}
	e.stageMu.Unlock()
	return t
}

// stagedLess is the cross-shard admission tie-break: (at, srcShard,
// srcSeq). The triple is unique per staged event — a shard numbers its
// PostTo calls sequentially — so the order is total, and therefore
// independent of the worker interleaving that built the batch.
func stagedLess(a, b *staged) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.srcShard != b.srcShard {
		return a.srcShard < b.srcShard
	}
	return a.srcSeq < b.srcSeq
}

// admitStaged drains the staging queue into the heap in canonical
// (at, srcShard, srcSeq) order. Barrier-phase only: no lock contention by
// construction, the lock just publishes the slice.
func (e *Engine) admitStaged() {
	e.stageMu.Lock()
	batch := e.staging
	e.staging = e.staging[:0]
	e.stageMu.Unlock()
	if len(batch) == 0 {
		return
	}
	sort.Slice(batch, func(i, j int) bool { return stagedLess(&batch[i], &batch[j]) })
	for i := range batch {
		e.insertAt(batch[i].at, batch[i].fn, batch[i].ctx)
		batch[i].fn = nil
		batch[i].ctx = nil
	}
}

// runShard executes this shard's events with at < horizon and at <= bound,
// leaving the clock at the last executed event. Local schedules join the
// same pass; cross-shard sends stage for the next epoch.
func (e *Engine) runShard(horizon, bound Time) {
	for len(e.events) > 0 {
		top := e.events[0]
		if top.at >= horizon || top.at > bound {
			return
		}
		popped := e.pop()
		e.now = popped.at
		e.processed++
		fn, ctx := popped.fn, popped.ctx
		e.recycle(popped)
		if fn != nil {
			e.cur = ctx
			fn()
			e.cur = nil
		}
	}
}

// runEpochs is the coordinator loop shared by Run and RunUntil on a
// sharded cluster: execute epochs until no event at or before bound
// remains (or Stop, or the event limit trips). It returns with every
// shard's clock advanced to exactly bound when bound is finite.
func (co *coord) runEpochs(bound Time) error {
	co.stopReq.Store(false)
	co.ensureWorkers()
	for {
		m := MaxTime
		for _, s := range co.shards {
			if t := s.earliest(); t < m {
				m = t
			}
		}
		if m == MaxTime || m > bound {
			break
		}
		// Horizon: no event in [m, m+lookahead) can be affected by a
		// cross-shard send from this epoch (which arrives at >= m+L).
		h := m.Add(co.lookahead)
		co.horizon = h
		co.bound = bound
		co.epochs++

		// Staged admissions first, so this epoch sees every send from
		// the previous one.
		for _, s := range co.shards {
			s.admitStaged()
		}

		// Phase A: control shard, exclusively.
		co.shards[0].runShard(h, bound)

		// Phase B: model shards on the worker pool. The calling
		// goroutine acts as worker 0.
		co.next.Store(1)
		n := co.workers
		if max := len(co.shards) - 1; n > max {
			n = max
		}
		for w := 1; w < n; w++ {
			co.workCh[w] <- h
		}
		co.drainShards(h, bound)
		for w := 1; w < n; w++ {
			<-co.doneCh
		}

		// Barrier hooks (trace log merge) and deterministic checks.
		for _, fn := range co.onBarrier {
			fn()
		}
		if co.limit > 0 {
			var total uint64
			for _, s := range co.shards {
				total += s.processed
			}
			if total > co.limit {
				return fmt.Errorf("sim: event limit %d exceeded at t=%s", co.limit, co.horizon)
			}
		}
		if co.stopReq.Load() {
			return nil
		}
	}
	// Final barrier flush so observers see a complete log even when the
	// run ends without crossing another epoch boundary.
	for _, s := range co.shards {
		s.admitStaged()
	}
	for _, fn := range co.onBarrier {
		fn()
	}
	if bound < MaxTime && !co.stopReq.Load() {
		for _, s := range co.shards {
			if s.now < bound {
				s.now = bound
			}
		}
	}
	return nil
}

// drainShards claims model shards off the work-stealing cursor and runs
// each to the horizon.
func (co *coord) drainShards(h, bound Time) {
	for {
		i := int(co.next.Add(1)) - 1
		if i >= len(co.shards) {
			return
		}
		co.shards[i].runShard(h, bound)
	}
}

// ensureWorkers starts the persistent worker goroutines on first use.
func (co *coord) ensureWorkers() {
	if co.started {
		return
	}
	co.started = true
	n := co.workers
	if max := len(co.shards) - 1; n > max {
		n = max
	}
	if n < 1 {
		n = 1
	}
	co.workers = n
	co.workCh = make([]chan Time, n)
	co.doneCh = make(chan int, n)
	for w := 1; w < n; w++ {
		co.workCh[w] = make(chan Time)
		go func(w int) {
			for h := range co.workCh[w] {
				co.drainShards(h, co.bound)
				co.doneCh <- w
			}
		}(w)
	}
}

// Close releases the cluster's worker goroutines. Safe to call on any
// shard handle, more than once, and on non-sharded engines (no-op).
func (e *Engine) Close() {
	co := e.co
	if co == nil || !co.started || co.closed {
		if co != nil {
			co.closed = true
		}
		return
	}
	co.closed = true
	for w := 1; w < co.workers; w++ {
		close(co.workCh[w])
	}
}
