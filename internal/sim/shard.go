package sim

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync/atomic"
	"time"
)

// This file implements the sharded (parallel) engine: a conservative
// parallel discrete-event simulation over per-shard event heaps,
// synchronized with epoch barriers whose width is derived from a lookahead
// matrix — the minimum cross-shard signal delay per (source, destination)
// shard pair, in practice each node's uplink latency into the simnet
// switch. Each shard is a full *Engine — same heap, free list, clock and
// context machinery as the sequential engine — so model code is oblivious
// to which mode it runs in.
//
// Protocol, per epoch:
//
//  1. Barrier admission: every cross-shard send staged during the previous
//     epoch is admitted into its destination heap in canonical
//     (at, srcShard, srcSeq) order — a total order independent of worker
//     interleaving. Each source's per-destination outbox is merged k-way
//     (one sorted run per source) and bulk-inserted: append at the heap
//     tail, then one sift pass.
//  2. The coordinator computes each shard's horizon
//     H_s = min over sources r of (E_r + la[r][s]), where E_r is the
//     earliest time shard r could possibly execute anything, this epoch or
//     any later one: the fixed point E_r = min(heapTop(r),
//     min over q of (E_q + la[q][r])) — a multi-source shortest path over
//     the lookahead graph seeded with heap tops. Heap tops alone are not
//     enough once self-pairs stop constraining a shard: an idle shard can
//     receive a staged event and answer later, so its earliest send is
//     bounded through the shards that can reach it. No event below H_s
//     can be affected by any cross-shard send, now or later, because a
//     send from shard r departs no earlier than E_r and arrives no sooner
//     than la[r][s] later — and E never retreats across barriers.
//     Self-pairs follow the same rule — a pair set to NoPost (shards that
//     never exchange events, including a node shard with itself: local
//     schedules never cross the fabric) drops out of the minimum, so a
//     shard may burn through its entire local event chain in one epoch.
//     Since the earliest shard's horizon strictly exceeds its next event
//     time, every epoch makes progress, and idle gaps are skipped in one
//     barrier: the horizon is anchored at the globally earliest pending
//     event, wherever it is.
//  3. A worker pool executes every runnable shard's events below its
//     horizon concurrently. A shard only ever touches its own state;
//     cross-shard sends go through PostTo, which appends to the sender's
//     per-destination outbox and never mutates a foreign heap. Only shards
//     with events below their horizon are dispatched, and at most
//     min(Workers, runnable, GOMAXPROCS) goroutines wake.
//  4. Barrier hooks (trace log merging) run single-threaded.
//
// Exclusive callbacks (RunExclusive) replace the old always-exclusive
// control shard: harness code that must touch many shards at once runs
// between epochs, with every shard quiescent; the coordinator caps the
// horizons at the callback's due time. Ordinary control-shard events run on
// the worker pool like any other shard's.
//
// Because admission order is canonical, horizons are a pure function of
// shard state at the barrier, and each shard is internally sequential, the
// schedule is a pure function of the initial state and the seeds:
// Workers=1 and Workers=N produce bit-identical runs, which the
// differential replay suite asserts.

// Config describes a sharded engine cluster.
type Config struct {
	// Workers is the number of goroutines executing runnable shards each
	// epoch. 1 is the sequential oracle (same sharded semantics, zero
	// concurrency); values above the shard count or GOMAXPROCS are clamped
	// at the first run — extra workers add wake latency without adding
	// parallelism.
	Workers int
	// Lookahead is the default minimum cross-shard delay for every
	// (src, dst) shard pair: PostTo with a shorter delay panics, and it
	// bounds the epoch width between pairs left at the default. Derive it
	// from the network's switch latency (the shortest path between nodes);
	// widen individual pairs with SetLookahead where the topology allows.
	Lookahead Duration
}

// NoPost marks a (src, dst) shard pair with no communication path: PostTo
// on the pair panics, and the pair places no bound on epoch horizons. Set
// it on a shard's self-pair (local schedules never cross the fabric) so the
// shard can run its whole local event chain inside one epoch.
const NoPost = Duration(math.MaxInt64 / 4)

// staged is a cross-shard event parked in the sending shard's
// per-destination outbox until the next barrier. srcSeq numbers the
// sender's PostTo calls; together with the send time and the sender's shard
// index it forms the deterministic admission key (at, srcShard, srcSeq).
type staged struct {
	at     Time
	srcSeq uint64
	fn     func()
	ctx    any
}

// exclusive is one RunExclusive callback awaiting its barrier.
type exclusive struct {
	at  Time
	seq uint64
	fn  func()
	ctx any
}

// RunStats aggregates coordinator diagnostics for a sharded engine,
// accumulated across runs. Everything except BarrierNs and Wakes is a pure
// function of the simulated schedule, so it is bit-identical for any worker
// count — replay suites compare these fields too.
type RunStats struct {
	// Epochs counts barriers crossed (parallel execution rounds).
	Epochs uint64
	// Events counts events executed across all shards.
	Events uint64
	// StagedAdmits counts cross-shard events admitted at barriers.
	StagedAdmits uint64
	// ExclusiveRuns counts RunExclusive callbacks executed.
	ExclusiveRuns uint64
	// Wakes counts worker wake signals sent (host-dependent: clamped by
	// GOMAXPROCS).
	Wakes uint64
	// BarrierNs is wall-clock time spent in single-threaded barrier work
	// (admission, horizon computation, hooks). Host-dependent.
	BarrierNs int64
}

// runCursor walks one source's sorted outbox run during the k-way
// admission merge.
type runCursor struct {
	q   []staged
	src int32
	i   int
}

// coord synchronizes the shards of one sharded engine cluster.
type coord struct {
	shards    []*Engine
	lookahead Duration // default pair lookahead (the uniform floor)
	workers   int

	// pairLA holds SetLookahead overrides until the first run freezes them
	// into the flat matrix; keys are src<<32|dst.
	pairLA map[int64]Duration
	// la is the frozen S×S lookahead matrix, row-major by source shard.
	la []Duration
	// fastRows marks a matrix whose every row is constant off the
	// diagonal — true for switch topologies, where a node's minimum signal
	// delay to every peer is its uplink latency. Horizons then cost O(S)
	// per epoch (two-minimum trick) instead of O(S²).
	fastRows bool
	rowOff   []Duration // per-source off-diagonal lookahead (fastRows)
	rowDiag  []Duration // per-source self-pair lookahead (fastRows)

	hz   []Time  // per-shard horizons for the current epoch
	est  []Time  // per-shard earliest possible send time (fixed point)
	estP []bool  // scratch: shards finalized by the earliest() pass
	runq []int32 // shards with events below their horizon this epoch

	// exq holds pending RunExclusive callbacks (unordered; the coordinator
	// scans for the (at, seq) minimum — the queue stays tiny).
	exq   []exclusive
	exSeq uint64

	// limit aborts a run once the aggregate processed count exceeds it.
	limit uint64
	// stopReq is set by Stop from any shard; honored at the next barrier.
	stopReq atomic.Bool
	// next is the work-claiming cursor over runq within an epoch.
	next atomic.Int64
	// bound is the inclusive RunUntil bound for the current run.
	bound Time
	// onBarrier hooks run single-threaded at every barrier (and at run
	// end), in registration order. The trace subsystem merges its
	// per-shard span logs here.
	onBarrier []func()

	// persistent worker pool, started at the first run.
	workCh []chan struct{}
	doneCh chan int
	frozen bool
	closed bool

	mergeRuns []runCursor // admission scratch
	stats     RunStats
}

// NewSharded returns the control shard (shard 0) of a new sharded engine
// cluster. The control shard is an ordinary shard — its events run on the
// worker pool and must touch only its own state; harness code that needs
// the old exclusivity uses RunExclusive. Create model shards with NewShard;
// drive the whole cluster through the control handle's Run/RunUntil/RunFor.
func NewSharded(cfg Config) *Engine {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Lookahead <= 0 {
		panic("sim: sharded engine needs a positive lookahead")
	}
	co := &coord{
		lookahead: cfg.Lookahead,
		workers:   cfg.Workers,
		pairLA:    make(map[int64]Duration),
	}
	ctl := &Engine{co: co, id: 0, name: "control"}
	co.shards = []*Engine{ctl}
	return ctl
}

// NewShard adds a model shard to the cluster and returns its engine
// handle. All shards must be created before the first run. The name
// appears in diagnostics only.
func (e *Engine) NewShard(name string) *Engine {
	co := e.co
	if co == nil {
		panic("sim: NewShard on a non-sharded engine")
	}
	if co.frozen {
		panic("sim: NewShard after the first run")
	}
	s := &Engine{co: co, id: len(co.shards), name: name, now: e.now}
	co.shards = append(co.shards, s)
	return s
}

// SetLookahead overrides the minimum cross-shard delay for the (src, dst)
// shard pair: PostTo from src to dst with a shorter delay panics, and the
// coordinator uses the pair bound when computing epoch horizons, so pairs
// separated by long links get proportionally wider epochs. Pass NoPost for
// pairs that never exchange events (a shard's self-pair in particular).
// Must be called before the first run.
func (e *Engine) SetLookahead(src, dst *Engine, d Duration) {
	co := e.co
	if co == nil {
		panic("sim: SetLookahead on a non-sharded engine")
	}
	if src.co != co || dst.co != co {
		panic("sim: SetLookahead across engine clusters")
	}
	if co.frozen {
		panic("sim: SetLookahead after the first run")
	}
	if d <= 0 {
		panic("sim: lookahead must be positive")
	}
	co.pairLA[int64(src.id)<<32|int64(dst.id)] = d
}

// PairLookahead reports the minimum PostTo delay from src to dst (the
// configured default unless SetLookahead overrode the pair).
func (e *Engine) PairLookahead(src, dst *Engine) Duration {
	if e.co == nil {
		return 0
	}
	return e.co.laFor(src.id, dst.id)
}

// laFor returns the lookahead bound for one shard pair, before or after
// the matrix freezes.
func (co *coord) laFor(src, dst int) Duration {
	if co.la != nil {
		return co.la[src*len(co.shards)+dst]
	}
	if d, ok := co.pairLA[int64(src)<<32|int64(dst)]; ok {
		return d
	}
	return co.lookahead
}

// ShardID returns this engine's shard index (0 for the control shard and
// for non-sharded engines).
func (e *Engine) ShardID() int { return e.id }

// ShardCount returns the number of shards in the cluster (1 for a
// non-sharded engine).
func (e *Engine) ShardCount() int {
	if e.co == nil {
		return 1
	}
	return len(e.co.shards)
}

// Sharded reports whether this engine is a shard of a parallel cluster.
func (e *Engine) Sharded() bool { return e.co != nil }

// Workers returns the configured worker count (1 for non-sharded). After
// the first run it reports the effective count — clamped to the shard
// count and GOMAXPROCS.
func (e *Engine) Workers() int {
	if e.co == nil {
		return 1
	}
	return e.co.workers
}

// Lookahead returns the cluster's default pair lookahead (0 for
// non-sharded).
func (e *Engine) Lookahead() Duration {
	if e.co == nil {
		return 0
	}
	return e.co.lookahead
}

// ShardStat is a per-shard diagnostic snapshot (see ShardStats).
type ShardStat struct {
	Name      string
	Now       Time
	Processed uint64
	Pending   int
}

// ShardStats snapshots every shard's clock and counters. Only coherent when
// no epoch is executing — from an OnBarrier hook or between runs. On a
// non-sharded engine it returns a single element describing the engine.
func (e *Engine) ShardStats() []ShardStat {
	if e.co == nil {
		return []ShardStat{{Name: e.name, Now: e.now, Processed: e.processed, Pending: len(e.events)}}
	}
	out := make([]ShardStat, len(e.co.shards))
	for i, s := range e.co.shards {
		out[i] = ShardStat{Name: s.name, Now: s.now, Processed: s.processed, Pending: len(s.events)}
	}
	return out
}

// Epochs returns how many barriers the cluster has crossed.
func (e *Engine) Epochs() uint64 {
	if e.co == nil {
		return 0
	}
	return e.co.stats.Epochs
}

// RunStats snapshots the coordinator's counters (see RunStats fields). On a
// non-sharded engine only Events is populated. Call between runs.
func (e *Engine) RunStats() RunStats {
	if e.co == nil {
		return RunStats{Events: e.processed}
	}
	st := e.co.stats
	for _, s := range e.co.shards {
		st.Events += s.processed
	}
	return st
}

// OnBarrier registers fn to run single-threaded at every epoch barrier and
// once more when a run completes. On a non-sharded engine it is a no-op
// (there are no barriers; callers apply their state eagerly instead).
func (e *Engine) OnBarrier(fn func()) {
	if e.co != nil {
		e.co.onBarrier = append(e.co.onBarrier, fn)
	}
}

// RunExclusive schedules fn to run after delay d with the whole cluster
// quiescent at an epoch barrier: no shard executes concurrently, so fn may
// read or mutate any shard's state and schedule events on any shard — the
// escape hatch for harness code (samplers, cross-shard assertions) that
// previously relied on the control shard's exclusivity. The coordinator
// caps every shard's horizon at the callback's due time, so fn observes no
// event at or beyond it; timing is otherwise quantized to barriers. Only
// the control shard may call it (from its events, from another exclusive
// callback, or between runs); on a non-sharded engine it degenerates to
// Schedule.
func (e *Engine) RunExclusive(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	if e.co == nil {
		e.Schedule(d, fn)
		return
	}
	if e.id != 0 {
		panic("sim: RunExclusive from a model shard (only the control shard may request exclusivity)")
	}
	co := e.co
	co.exq = append(co.exq, exclusive{at: e.now.Add(d), seq: co.exSeq, fn: fn, ctx: e.cur})
	co.exSeq++
}

// PostTo schedules fn on shard dst after delay d, carrying the calling
// shard's current event context. It is the only legal way for one shard's
// event to reach another shard: the event lands in the sender's
// per-destination outbox and becomes visible at the next barrier, so d must
// be at least the pair's lookahead. On a non-sharded engine (or when
// dst == e) it degenerates to dst.Schedule with the source context.
func (e *Engine) PostTo(dst *Engine, d Duration, fn func()) {
	if e.co == nil || dst == e {
		if d < 0 {
			d = 0
		}
		dst.insertAt(dst.now.Add(d), fn, e.cur)
		return
	}
	if dst.co != e.co {
		panic("sim: PostTo across engine clusters")
	}
	if need := e.co.laFor(e.id, dst.id); d < need {
		if need >= NoPost {
			panic(fmt.Sprintf("sim: PostTo on a NoPost pair (%s -> %s)", e.name, dst.name))
		}
		panic(fmt.Sprintf("sim: PostTo delay %s below pair lookahead %s (%s -> %s)",
			d, need, e.name, dst.name))
	}
	for len(e.out) <= dst.id {
		e.out = append(e.out, nil)
	}
	e.out[dst.id] = append(e.out[dst.id], staged{
		at:     e.now.Add(d),
		srcSeq: e.postSeq,
		fn:     fn,
		ctx:    e.cur,
	})
	e.postSeq++
}

// insertAt is At with an explicit context (At captures e.cur; staged
// admissions must preserve the posting shard's context instead).
func (e *Engine) insertAt(t Time, fn func(), ctx any) EventID {
	if t < e.now {
		t = e.now
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	ev.ctx = ctx
	e.seq++
	e.push(ev)
	return EventID{ev: ev, gen: ev.gen}
}

// top returns the earliest pending event time on this shard's heap, or
// MaxTime when idle. Staged sends live in source outboxes until the
// barrier admits them, so between admission and the next epoch the heap is
// the complete pending set.
func (e *Engine) top() Time {
	if len(e.events) > 0 {
		return e.events[0].at
	}
	return MaxTime
}

// appendEvent places one admitted staged event at the heap tail (bulk
// insertion: the caller runs the sift pass after the whole batch lands).
func (e *Engine) appendEvent(s *staged) {
	t := s.at
	if t < e.now {
		// Horizon soundness guarantees every admitted event lands at or
		// after the shard's clock; tripping this means the lookahead
		// matrix or the earliest() fixed point is wrong.
		panic(fmt.Sprintf("sim: causality violation: admitted event at %s into shard %d past (now %s)", t, e.id, e.now))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at = t
	ev.seq = e.seq
	ev.fn = s.fn
	ev.ctx = s.ctx
	e.seq++
	ev.idx = len(e.events)
	e.events = append(e.events, ev)
}

// sortRun orders one source's outbox run by (at, srcSeq). Appends already
// arrive in srcSeq order — delays vary per post, so a stable sort on the
// arrival time alone restores the canonical order.
func sortRun(q []staged) {
	slices.SortStableFunc(q, func(a, b staged) int {
		switch {
		case a.at < b.at:
			return -1
		case a.at > b.at:
			return 1
		default:
			return 0
		}
	})
}

// admitStagedTo drains every source's outbox for dst into dst's heap in
// canonical (at, srcShard, srcSeq) order: each run is sorted (small,
// per-source), the runs are merged k-way, and the merged batch is
// bulk-inserted — appended at the heap tail, then one sift pass. Barrier
// phase only; no shard executes concurrently.
func (co *coord) admitStagedTo(dst *Engine) {
	runs := co.mergeRuns[:0]
	for _, src := range co.shards {
		if dst.id >= len(src.out) {
			continue
		}
		q := src.out[dst.id]
		if len(q) == 0 {
			continue
		}
		sortRun(q)
		runs = append(runs, runCursor{q: q, src: int32(src.id)})
	}
	if len(runs) == 0 {
		return
	}
	n := 0
	for i := range runs {
		n += len(runs[i].q)
	}
	co.stats.StagedAdmits += uint64(n)
	start := len(dst.events)
	if len(runs) == 1 {
		for i := range runs[0].q {
			dst.appendEvent(&runs[0].q[i])
		}
	} else {
		// K-way merge: runs sit in ascending source order, so on ties the
		// first candidate (lowest srcShard) wins — the stagedLess order.
		for left := n; left > 0; left-- {
			best := -1
			for i := range runs {
				r := &runs[i]
				if r.i >= len(r.q) {
					continue
				}
				if best < 0 || r.q[r.i].at < runs[best].q[runs[best].i].at {
					best = i
				}
			}
			r := &runs[best]
			dst.appendEvent(&r.q[r.i])
			r.i++
		}
	}
	for i := start; i < len(dst.events); i++ {
		dst.siftUp(i)
	}
	for i := range runs {
		q := runs[i].q
		for j := range q {
			q[j].fn = nil
			q[j].ctx = nil
		}
		co.shards[runs[i].src].out[dst.id] = q[:0]
	}
	co.mergeRuns = runs[:0]
}

// runShard executes this shard's events with at < horizon and at <= bound,
// leaving the clock at the last executed event. Local schedules join the
// same pass; cross-shard sends stage for the next epoch.
func (e *Engine) runShard(horizon, bound Time) {
	for len(e.events) > 0 {
		top := e.events[0]
		if top.at >= horizon || top.at > bound {
			return
		}
		popped := e.pop()
		e.now = popped.at
		e.processed++
		fn, ctx := popped.fn, popped.ctx
		e.recycle(popped)
		if fn != nil {
			e.cur = ctx
			fn()
			e.cur = nil
		}
	}
}

// addSat is saturating time-plus-duration (idle shards sit at MaxTime).
func addSat(t Time, d Duration) Time {
	if t >= MaxTime-Time(d) {
		return MaxTime
	}
	return t + Time(d)
}

// peekExclusive returns the index of the earliest pending exclusive
// callback by (at, seq), or -1.
func (co *coord) peekExclusive() int {
	best := -1
	for i := range co.exq {
		if best < 0 || co.exq[i].at < co.exq[best].at ||
			(co.exq[i].at == co.exq[best].at && co.exq[i].seq < co.exq[best].seq) {
			best = i
		}
	}
	return best
}

// earliest computes each shard's earliest possible future send time: the
// fixed point E_r = min(top(r), min over q of (E_q + la[q][r])). Heap tops
// alone are NOT a safe source bound once self-pairs stop constraining a
// shard: an idle shard (top = MaxTime) can receive a staged event this
// epoch and answer next epoch, so its true earliest send is bounded by the
// senders that can reach it, transitively. E is exactly the multi-source
// shortest-path distance over the lookahead graph seeded with heap tops,
// computed Dijkstra-style (all lookaheads are positive): repeatedly
// finalize the unfinalized shard with the smallest estimate and relax its
// outgoing row. O(S²) per barrier; ties break on shard id, so est is a
// pure function of (tops, matrix) — worker-count invariant.
func (co *coord) earliest() {
	shards := co.shards
	S := len(shards)
	for i, s := range shards {
		co.est[i] = s.top()
		co.estP[i] = false
	}
	for range shards {
		u, best := -1, MaxTime
		for i := range shards {
			if !co.estP[i] && co.est[i] < best {
				best, u = co.est[i], i
			}
		}
		if u < 0 {
			break
		}
		co.estP[u] = true
		if co.fastRows {
			v := addSat(best, co.rowOff[u])
			for i := range co.est {
				if i != u && !co.estP[i] && v < co.est[i] {
					co.est[i] = v
				}
			}
			continue
		}
		for i := range co.est {
			if i != u && !co.estP[i] {
				if v := addSat(best, co.la[u*S+i]); v < co.est[i] {
					co.est[i] = v
				}
			}
		}
	}
}

// computeHorizons fills co.hz with each shard's conservative execution
// bound H_s = min over sources r of (E_r + la[r][s]) — where E_r is the
// earliest() fixed point, not the raw heap top — capped at the next
// exclusive callback's due time, and collects the runnable shards (events
// below horizon and bound) into co.runq. Any event that ever reaches s, in
// this epoch or a later one, was sent by some r executing at ≥ E_r and
// paid ≥ la[r][s], so it lands at ≥ H_s; and E never retreats across
// barriers, so horizons only advance. For fastRows matrices the horizon
// step is O(S) via the two-minimum trick: the off-diagonal contribution
// min over r != s of (E_r + rowOff[r]) is min1 — or min2 exactly when s
// itself holds min1.
func (co *coord) computeHorizons(tx, bound Time) {
	shards := co.shards
	co.runq = co.runq[:0]
	co.earliest()
	if co.fastRows {
		min1, min2 := MaxTime, MaxTime
		arg1 := -1
		for i := range shards {
			v := addSat(co.est[i], co.rowOff[i])
			if v < min1 {
				min2, min1, arg1 = min1, v, i
			} else if v < min2 {
				min2 = v
			}
		}
		for i, s := range shards {
			h := min1
			if i == arg1 {
				h = min2
			}
			if d := addSat(co.est[i], co.rowDiag[i]); d < h {
				h = d
			}
			if h > tx {
				h = tx
			}
			co.hz[i] = h
			if t := s.top(); t < h && t <= bound {
				co.runq = append(co.runq, int32(i))
			}
		}
		return
	}
	S := len(shards)
	for si := range shards {
		h := MaxTime
		for r := range shards {
			if v := addSat(co.est[r], co.la[r*S+si]); v < h {
				h = v
			}
		}
		if h > tx {
			h = tx
		}
		co.hz[si] = h
		if t := shards[si].top(); t < h && t <= bound {
			co.runq = append(co.runq, int32(si))
		}
	}
}

// freeze finalizes the cluster at the first run: clamps the worker count,
// sizes the outboxes, builds the lookahead matrix (detecting the
// constant-row fast path) and starts the persistent worker pool.
func (co *coord) freeze() {
	if co.frozen {
		return
	}
	co.frozen = true
	S := len(co.shards)
	n := co.workers
	if g := runtime.GOMAXPROCS(0); n > g {
		n = g
	}
	if n > S {
		n = S
	}
	if n < 1 {
		n = 1
	}
	co.workers = n
	for _, s := range co.shards {
		for len(s.out) < S {
			s.out = append(s.out, nil)
		}
	}
	co.la = make([]Duration, S*S)
	for i := range co.la {
		co.la[i] = co.lookahead
	}
	for k, d := range co.pairLA { // det: commutative (distinct matrix cells)
		co.la[int(k>>32)*S+int(k&0xffffffff)] = d
	}
	co.pairLA = nil
	co.rowOff = make([]Duration, S)
	co.rowDiag = make([]Duration, S)
	co.fastRows = true
	for r := 0; r < S && co.fastRows; r++ {
		off := Duration(-1)
		for s := 0; s < S; s++ {
			if s == r {
				continue
			}
			v := co.la[r*S+s]
			if off < 0 {
				off = v
			} else if v != off {
				co.fastRows = false
				break
			}
		}
		if off < 0 {
			off = co.lookahead // single-shard cluster
		}
		co.rowOff[r] = off
		co.rowDiag[r] = co.la[r*S+r]
	}
	co.hz = make([]Time, S)
	co.est = make([]Time, S)
	co.estP = make([]bool, S)
	co.runq = make([]int32, 0, S)
	co.workCh = make([]chan struct{}, n)
	co.doneCh = make(chan int, n)
	for w := 1; w < n; w++ {
		co.workCh[w] = make(chan struct{})
		go func(w int) {
			for range co.workCh[w] {
				co.drainShards()
				co.doneCh <- w
			}
		}(w)
	}
}

// runEpochs is the coordinator loop shared by Run and RunUntil on a
// sharded cluster: execute epochs until no event at or before bound
// remains (or Stop, or the event limit trips). It returns with every
// shard's clock advanced to exactly bound when bound is finite.
func (co *coord) runEpochs(bound Time) error {
	co.stopReq.Store(false)
	co.freeze()
	for {
		t0 := time.Now()
		for _, s := range co.shards {
			co.admitStagedTo(s)
		}
		m := MaxTime
		for _, s := range co.shards {
			if t := s.top(); t < m {
				m = t
			}
		}
		tx := Time(MaxTime)
		xi := co.peekExclusive()
		if xi >= 0 {
			tx = co.exq[xi].at
		}
		if (m == MaxTime && tx == MaxTime) || (m > bound && tx > bound) {
			co.stats.BarrierNs += time.Since(t0).Nanoseconds()
			break
		}
		if tx <= m {
			// Exclusive callback: every shard is quiescent and no event
			// below tx is pending anywhere, so fn may touch any shard.
			ex := co.exq[xi]
			co.exq[xi] = exclusive{}
			co.exq = append(co.exq[:xi], co.exq[xi+1:]...)
			ctl := co.shards[0]
			if ctl.now < ex.at {
				ctl.now = ex.at
			}
			co.stats.ExclusiveRuns++
			co.stats.BarrierNs += time.Since(t0).Nanoseconds()
			ctl.cur = ex.ctx
			ex.fn()
			ctl.cur = nil
			if co.stopReq.Load() {
				return nil
			}
			continue
		}
		co.computeHorizons(tx, bound)
		co.stats.Epochs++
		co.bound = bound
		co.stats.BarrierNs += time.Since(t0).Nanoseconds()
		if n := len(co.runq); n > 0 {
			// Wake only as many workers as there are runnable shards: the
			// calling goroutine is worker 0, extras park on their channel.
			w := co.workers
			if w > n {
				w = n
			}
			if w > 1 {
				co.next.Store(0)
				co.stats.Wakes += uint64(w - 1)
				for i := 1; i < w; i++ {
					co.workCh[i] <- struct{}{}
				}
				co.drainShards()
				for i := 1; i < w; i++ {
					<-co.doneCh
				}
			} else {
				for _, si := range co.runq {
					co.shards[si].runShard(co.hz[si], bound)
				}
			}
		}
		t1 := time.Now()
		for _, fn := range co.onBarrier {
			fn()
		}
		co.stats.BarrierNs += time.Since(t1).Nanoseconds()
		if co.limit > 0 {
			var total uint64
			for _, s := range co.shards {
				total += s.processed
			}
			if total > co.limit {
				return fmt.Errorf("sim: event limit %d exceeded at t=%s", co.limit, m)
			}
		}
		if co.stopReq.Load() {
			return nil
		}
	}
	// Final barrier flush so observers see a complete log even when the
	// run ends without crossing another epoch boundary.
	for _, fn := range co.onBarrier {
		fn()
	}
	if !co.stopReq.Load() {
		// Synchronize every shard's clock at the quiescent point: bound for
		// RunUntil, the globally latest event for Run — the same value a
		// sequential engine's Now() reports after draining. Without this,
		// wide epochs leave shard clocks arbitrarily far apart, and harness
		// code scheduling fresh work between runs (relative to one shard's
		// now) would post into another shard's past.
		sync := bound
		if sync == MaxTime {
			sync = 0
			for _, s := range co.shards {
				if s.now > sync {
					sync = s.now
				}
			}
		}
		for _, s := range co.shards {
			if s.now < sync {
				s.now = sync
			}
		}
	}
	return nil
}

// drainShards claims runnable shards off the work cursor and runs each to
// its horizon.
func (co *coord) drainShards() {
	for {
		i := int(co.next.Add(1)) - 1
		if i >= len(co.runq) {
			return
		}
		si := co.runq[i]
		co.shards[si].runShard(co.hz[si], co.bound)
	}
}

// Close releases the cluster's worker goroutines. Safe to call on any
// shard handle, more than once, and on non-sharded engines (no-op).
func (e *Engine) Close() {
	co := e.co
	if co == nil || !co.frozen || co.closed {
		if co != nil {
			co.closed = true
		}
		return
	}
	co.closed = true
	for w := 1; w < co.workers; w++ {
		close(co.workCh[w])
	}
}
