package sim

import (
	"fmt"
	"reflect"
	"testing"
)

const testLookahead = 5 * Microsecond

// buildPingPong wires a small sharded cluster: nShards model shards that
// bounce timestamped messages between each other via PostTo, each bounce
// recording (shard, time, payload) into a per-run log. The log is the
// observational trace the determinism tests compare.
func buildPingPong(t *testing.T, workers, nShards, rounds int) []string {
	t.Helper()
	ctl := NewSharded(Config{Workers: workers, Lookahead: testLookahead})
	defer ctl.Close()
	shards := make([]*Engine, nShards)
	for i := range shards {
		shards[i] = ctl.NewShard(fmt.Sprintf("node%d", i))
	}
	// Per-shard logs: a shard only appends to its own slice, so recording
	// is race-free under any worker count.
	logs := make([][]string, nShards+1)
	record := func(s *Engine, what string) {
		logs[s.id] = append(logs[s.id], fmt.Sprintf("%s@%s:%s", s.name, s.Now(), what))
	}
	// Each shard i sends round-robin to (i+1)%n, plus local busywork that
	// interleaves with the arrivals.
	var hop func(from, to, left int)
	hop = func(from, to, left int) {
		src := shards[from]
		src.PostTo(shards[to], testLookahead+Duration(from+1)*Microsecond, func() {
			record(shards[to], fmt.Sprintf("recv<-%d(left=%d)", from, left))
			if left > 0 {
				hop(to, (to+1)%nShards, left-1)
			}
		})
	}
	for i := range shards {
		i := i
		shards[i].Schedule(Duration(i)*Microsecond, func() {
			record(shards[i], "start")
			hop(i, (i+1)%nShards, rounds)
			var tick func()
			n := 0
			tick = func() {
				record(shards[i], fmt.Sprintf("tick%d", n))
				n++
				if n < rounds {
					shards[i].Schedule(3*Microsecond, tick)
				}
			}
			shards[i].Schedule(Microsecond, tick)
		})
	}
	if err := ctl.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	// The per-shard sublogs are deterministic; their global interleaving
	// is not observable, so canonicalize by sorting the concatenation —
	// each entry embeds shard and time, making the sorted view total.
	var sorted []string
	for _, l := range logs {
		sorted = append(sorted, l...)
	}
	sortStrings(sorted)
	return sorted
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestShardedDeterministicAcrossWorkers is the core tentpole property: the
// observable trace of a sharded run is identical for any worker count.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	want := buildPingPong(t, 1, 5, 40)
	for _, w := range []int{2, 3, 4, 8} {
		got := buildPingPong(t, w, 5, 40)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d trace diverges from workers=1 (%d vs %d entries)", w, len(got), len(want))
		}
	}
}

// TestPostToVisibleNextEpoch checks the staging protocol: a cross-shard
// send fires at exactly src.now + delay on the destination's clock.
func TestPostToVisibleNextEpoch(t *testing.T) {
	ctl := NewSharded(Config{Workers: 2, Lookahead: testLookahead})
	defer ctl.Close()
	a := ctl.NewShard("a")
	b := ctl.NewShard("b")
	var at Time
	a.Schedule(7*Microsecond, func() {
		a.PostTo(b, testLookahead, func() { at = b.Now() })
	})
	if err := ctl.Run(); err != nil {
		t.Fatal(err)
	}
	if want := Time(12 * Microsecond); at != want {
		t.Fatalf("cross-shard event fired at %s, want %s", at, want)
	}
}

// TestPostToBelowLookaheadPanics enforces the conservative contract.
func TestPostToBelowLookaheadPanics(t *testing.T) {
	ctl := NewSharded(Config{Workers: 1, Lookahead: testLookahead})
	defer ctl.Close()
	a := ctl.NewShard("a")
	b := ctl.NewShard("b")
	a.Schedule(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("PostTo below lookahead did not panic")
			}
		}()
		a.PostTo(b, testLookahead-1, func() {})
	})
	if err := ctl.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestPostToCarriesContext verifies the request context crosses shards
// with the staged event, like ctx inheritance on a local schedule.
func TestPostToCarriesContext(t *testing.T) {
	ctl := NewSharded(Config{Workers: 2, Lookahead: testLookahead})
	defer ctl.Close()
	a := ctl.NewShard("a")
	b := ctl.NewShard("b")
	var got any
	a.Schedule(0, func() {
		a.SetContext("req-42")
		a.PostTo(b, testLookahead, func() {
			got = b.Context()
			// And it keeps propagating locally on the new shard.
			b.Schedule(Microsecond, func() {
				if b.Context() != "req-42" {
					t.Error("context lost on post-arrival schedule")
				}
			})
		})
	})
	if err := ctl.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "req-42" {
		t.Fatalf("staged context = %v, want req-42", got)
	}
}

// TestRunUntilUniformClocks: after RunUntil every shard's clock must sit
// at exactly the bound, so experiment boundaries (warmup/window ends) read
// consistent utilization denominators.
func TestRunUntilUniformClocks(t *testing.T) {
	ctl := NewSharded(Config{Workers: 2, Lookahead: testLookahead})
	defer ctl.Close()
	shards := []*Engine{ctl.NewShard("a"), ctl.NewShard("b"), ctl.NewShard("c")}
	shards[0].Schedule(3*Microsecond, func() {})
	shards[1].Schedule(900*Microsecond, func() {}) // beyond the bound
	bound := Time(100 * Microsecond)
	if err := ctl.RunUntil(bound); err != nil {
		t.Fatal(err)
	}
	for _, s := range append(shards, ctl) {
		if s.Now() != bound {
			t.Fatalf("shard %s clock %s, want %s", s.name, s.Now(), bound)
		}
	}
	// The event beyond the bound is still pending and fires on resume.
	if ctl.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", ctl.Pending())
	}
	if err := ctl.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestControlShardExclusive: a control-shard event may touch another
// shard's engine directly (the harness privilege); the touched shard sees
// the scheduled work in the same run.
func TestControlShardExclusive(t *testing.T) {
	ctl := NewSharded(Config{Workers: 4, Lookahead: testLookahead})
	defer ctl.Close()
	model := ctl.NewShard("m")
	ran := 0
	var tick func()
	n := 0
	tick = func() {
		// Control event scheduling directly onto the model shard.
		model.Schedule(Microsecond, func() { ran++ })
		n++
		if n < 10 {
			ctl.Schedule(10*Microsecond, tick)
		}
	}
	ctl.Schedule(0, tick)
	// Keep the model shard busy so the epochs overlap.
	var busy func()
	b := 0
	busy = func() {
		b++
		if b < 200 {
			model.Schedule(Microsecond/2, busy)
		}
	}
	model.Schedule(0, busy)
	if err := ctl.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 10 {
		t.Fatalf("control-injected events ran %d times, want 10", ran)
	}
}

// TestShardedStopAtBarrier: Stop from a model shard ends the run at the
// next barrier, deterministically.
func TestShardedStopAtBarrier(t *testing.T) {
	ctl := NewSharded(Config{Workers: 2, Lookahead: testLookahead})
	defer ctl.Close()
	a := ctl.NewShard("a")
	count := 0
	var tick func()
	tick = func() {
		count++
		if count == 50 {
			a.Stop()
		}
		a.Schedule(Microsecond, tick)
	}
	a.Schedule(0, tick)
	if err := ctl.Run(); err != nil {
		t.Fatal(err)
	}
	if count < 50 {
		t.Fatalf("stopped after %d events, want >= 50", count)
	}
	if ctl.Pending() == 0 {
		t.Fatal("Stop drained the queue; events should remain pending")
	}
}

// TestShardedEventLimit: the aggregate limit trips at a barrier.
func TestShardedEventLimit(t *testing.T) {
	ctl := NewSharded(Config{Workers: 2, Lookahead: testLookahead})
	defer ctl.Close()
	a := ctl.NewShard("a")
	ctl.SetEventLimit(100)
	var tick func()
	tick = func() { a.Schedule(Microsecond, tick) }
	a.Schedule(0, tick)
	if err := ctl.Run(); err == nil {
		t.Fatal("runaway loop did not trip the event limit")
	}
}

// TestShardedProcessedAggregates checks the cross-shard counters.
func TestShardedProcessedAggregates(t *testing.T) {
	ctl := NewSharded(Config{Workers: 2, Lookahead: testLookahead})
	defer ctl.Close()
	a := ctl.NewShard("a")
	b := ctl.NewShard("b")
	for i := 0; i < 5; i++ {
		a.Schedule(Duration(i)*Microsecond, func() {})
		b.Schedule(Duration(i)*Microsecond, func() {})
	}
	ctl.Schedule(0, func() {})
	if err := ctl.Run(); err != nil {
		t.Fatal(err)
	}
	if got := ctl.Processed(); got != 11 {
		t.Fatalf("Processed() = %d, want 11", got)
	}
}

// TestOnBarrierRunsEachEpoch: barrier hooks observe every epoch plus the
// final flush.
func TestOnBarrierRunsEachEpoch(t *testing.T) {
	ctl := NewSharded(Config{Workers: 1, Lookahead: testLookahead})
	defer ctl.Close()
	a := ctl.NewShard("a")
	barriers := 0
	ctl.OnBarrier(func() { barriers++ })
	for i := 0; i < 4; i++ {
		// Spread events so they cannot share one epoch window.
		a.Schedule(Duration(i)*100*Microsecond, func() {})
	}
	if err := ctl.Run(); err != nil {
		t.Fatal(err)
	}
	if barriers < 4 {
		t.Fatalf("barrier hook ran %d times, want >= 4", barriers)
	}
}

// TestLegacyEngineUnaffected guards the non-sharded fast path: a plain
// NewEngine must report itself unsharded and keep PostTo-to-self local.
func TestLegacyEngineUnaffected(t *testing.T) {
	e := NewEngine()
	if e.Sharded() || e.ShardCount() != 1 || e.Workers() != 1 || e.Lookahead() != 0 {
		t.Fatal("legacy engine misreports shard metadata")
	}
	fired := false
	e.Schedule(0, func() { e.PostTo(e, Microsecond, func() { fired = true }) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("PostTo on a legacy engine did not degrade to Schedule")
	}
}
