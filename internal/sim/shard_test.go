package sim

import (
	"fmt"
	"reflect"
	"testing"
)

const testLookahead = 5 * Microsecond

// buildPingPong wires a small sharded cluster: nShards model shards that
// bounce timestamped messages between each other via PostTo, each bounce
// recording (shard, time, payload) into a per-run log. The log is the
// observational trace the determinism tests compare.
func buildPingPong(t *testing.T, workers, nShards, rounds int) []string {
	t.Helper()
	ctl := NewSharded(Config{Workers: workers, Lookahead: testLookahead})
	defer ctl.Close()
	shards := make([]*Engine, nShards)
	for i := range shards {
		shards[i] = ctl.NewShard(fmt.Sprintf("node%d", i))
	}
	// Per-shard logs: a shard only appends to its own slice, so recording
	// is race-free under any worker count.
	logs := make([][]string, nShards+1)
	record := func(s *Engine, what string) {
		logs[s.id] = append(logs[s.id], fmt.Sprintf("%s@%s:%s", s.name, s.Now(), what))
	}
	// Each shard i sends round-robin to (i+1)%n, plus local busywork that
	// interleaves with the arrivals.
	var hop func(from, to, left int)
	hop = func(from, to, left int) {
		src := shards[from]
		src.PostTo(shards[to], testLookahead+Duration(from+1)*Microsecond, func() {
			record(shards[to], fmt.Sprintf("recv<-%d(left=%d)", from, left))
			if left > 0 {
				hop(to, (to+1)%nShards, left-1)
			}
		})
	}
	for i := range shards {
		i := i
		shards[i].Schedule(Duration(i)*Microsecond, func() {
			record(shards[i], "start")
			hop(i, (i+1)%nShards, rounds)
			var tick func()
			n := 0
			tick = func() {
				record(shards[i], fmt.Sprintf("tick%d", n))
				n++
				if n < rounds {
					shards[i].Schedule(3*Microsecond, tick)
				}
			}
			shards[i].Schedule(Microsecond, tick)
		})
	}
	if err := ctl.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	// The per-shard sublogs are deterministic; their global interleaving
	// is not observable, so canonicalize by sorting the concatenation —
	// each entry embeds shard and time, making the sorted view total.
	var sorted []string
	for _, l := range logs {
		sorted = append(sorted, l...)
	}
	sortStrings(sorted)
	return sorted
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestShardedDeterministicAcrossWorkers is the core tentpole property: the
// observable trace of a sharded run is identical for any worker count.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	want := buildPingPong(t, 1, 5, 40)
	for _, w := range []int{2, 3, 4, 8} {
		got := buildPingPong(t, w, 5, 40)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d trace diverges from workers=1 (%d vs %d entries)", w, len(got), len(want))
		}
	}
}

// TestPostToVisibleNextEpoch checks the staging protocol: a cross-shard
// send fires at exactly src.now + delay on the destination's clock.
func TestPostToVisibleNextEpoch(t *testing.T) {
	ctl := NewSharded(Config{Workers: 2, Lookahead: testLookahead})
	defer ctl.Close()
	a := ctl.NewShard("a")
	b := ctl.NewShard("b")
	var at Time
	a.Schedule(7*Microsecond, func() {
		a.PostTo(b, testLookahead, func() { at = b.Now() })
	})
	if err := ctl.Run(); err != nil {
		t.Fatal(err)
	}
	if want := Time(12 * Microsecond); at != want {
		t.Fatalf("cross-shard event fired at %s, want %s", at, want)
	}
}

// TestPostToBelowLookaheadPanics enforces the conservative contract.
func TestPostToBelowLookaheadPanics(t *testing.T) {
	ctl := NewSharded(Config{Workers: 1, Lookahead: testLookahead})
	defer ctl.Close()
	a := ctl.NewShard("a")
	b := ctl.NewShard("b")
	a.Schedule(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("PostTo below lookahead did not panic")
			}
		}()
		a.PostTo(b, testLookahead-1, func() {})
	})
	if err := ctl.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestPostToCarriesContext verifies the request context crosses shards
// with the staged event, like ctx inheritance on a local schedule.
func TestPostToCarriesContext(t *testing.T) {
	ctl := NewSharded(Config{Workers: 2, Lookahead: testLookahead})
	defer ctl.Close()
	a := ctl.NewShard("a")
	b := ctl.NewShard("b")
	var got any
	a.Schedule(0, func() {
		a.SetContext("req-42")
		a.PostTo(b, testLookahead, func() {
			got = b.Context()
			// And it keeps propagating locally on the new shard.
			b.Schedule(Microsecond, func() {
				if b.Context() != "req-42" {
					t.Error("context lost on post-arrival schedule")
				}
			})
		})
	})
	if err := ctl.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "req-42" {
		t.Fatalf("staged context = %v, want req-42", got)
	}
}

// TestRunUntilUniformClocks: after RunUntil every shard's clock must sit
// at exactly the bound, so experiment boundaries (warmup/window ends) read
// consistent utilization denominators.
func TestRunUntilUniformClocks(t *testing.T) {
	ctl := NewSharded(Config{Workers: 2, Lookahead: testLookahead})
	defer ctl.Close()
	shards := []*Engine{ctl.NewShard("a"), ctl.NewShard("b"), ctl.NewShard("c")}
	shards[0].Schedule(3*Microsecond, func() {})
	shards[1].Schedule(900*Microsecond, func() {}) // beyond the bound
	bound := Time(100 * Microsecond)
	if err := ctl.RunUntil(bound); err != nil {
		t.Fatal(err)
	}
	for _, s := range append(shards, ctl) {
		if s.Now() != bound {
			t.Fatalf("shard %s clock %s, want %s", s.name, s.Now(), bound)
		}
	}
	// The event beyond the bound is still pending and fires on resume.
	if ctl.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", ctl.Pending())
	}
	if err := ctl.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestRunExclusive: exclusive callbacks run with the whole cluster
// quiescent and may schedule directly onto model shards — the harness
// privilege the old always-exclusive control shard provided.
func TestRunExclusive(t *testing.T) {
	ctl := NewSharded(Config{Workers: 4, Lookahead: testLookahead})
	defer ctl.Close()
	model := ctl.NewShard("m")
	ran := 0
	var tick func()
	n := 0
	tick = func() {
		// Exclusive callback scheduling directly onto the model shard.
		model.Schedule(Microsecond, func() { ran++ })
		n++
		if n < 10 {
			ctl.RunExclusive(10*Microsecond, tick)
		}
	}
	ctl.RunExclusive(0, tick)
	// Keep the model shard busy so the callbacks land between busy epochs.
	var busy func()
	b := 0
	busy = func() {
		b++
		if b < 200 {
			model.Schedule(Microsecond/2, busy)
		}
	}
	model.Schedule(0, busy)
	if err := ctl.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 10 {
		t.Fatalf("exclusive-injected events ran %d times, want 10", ran)
	}
	if got := ctl.RunStats().ExclusiveRuns; got != 10 {
		t.Fatalf("ExclusiveRuns = %d, want 10", got)
	}
}

// TestRunExclusiveOrdering: an exclusive callback due at time T runs
// before any shard event at T (the old phase-A-first order), and the
// control clock lands on the callback's due time.
func TestRunExclusiveOrdering(t *testing.T) {
	ctl := NewSharded(Config{Workers: 2, Lookahead: testLookahead})
	defer ctl.Close()
	a := ctl.NewShard("a")
	var order []string
	a.Schedule(10*Microsecond, func() { order = append(order, "event") })
	ctl.RunExclusive(10*Microsecond, func() {
		order = append(order, "exclusive")
		if ctl.Now() != Time(10*Microsecond) {
			t.Errorf("control clock %s inside exclusive, want 10µs", ctl.Now())
		}
	})
	if err := ctl.Run(); err != nil {
		t.Fatal(err)
	}
	if want := []string{"exclusive", "event"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// TestRunExclusiveFromModelPanics: only the control shard may request
// cluster-wide exclusivity.
func TestRunExclusiveFromModelPanics(t *testing.T) {
	ctl := NewSharded(Config{Workers: 1, Lookahead: testLookahead})
	defer ctl.Close()
	m := ctl.NewShard("m")
	m.Schedule(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("RunExclusive from a model shard did not panic")
			}
		}()
		m.RunExclusive(0, func() {})
	})
	if err := ctl.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedStopAtBarrier: Stop from a model shard ends the run at the
// next barrier, deterministically.
func TestShardedStopAtBarrier(t *testing.T) {
	ctl := NewSharded(Config{Workers: 2, Lookahead: testLookahead})
	defer ctl.Close()
	a := ctl.NewShard("a")
	count := 0
	var tick func()
	tick = func() {
		count++
		if count == 50 {
			a.Stop()
		}
		a.Schedule(Microsecond, tick)
	}
	a.Schedule(0, tick)
	if err := ctl.Run(); err != nil {
		t.Fatal(err)
	}
	if count < 50 {
		t.Fatalf("stopped after %d events, want >= 50", count)
	}
	if ctl.Pending() == 0 {
		t.Fatal("Stop drained the queue; events should remain pending")
	}
}

// TestShardedEventLimit: the aggregate limit trips at a barrier.
func TestShardedEventLimit(t *testing.T) {
	ctl := NewSharded(Config{Workers: 2, Lookahead: testLookahead})
	defer ctl.Close()
	a := ctl.NewShard("a")
	ctl.SetEventLimit(100)
	var tick func()
	tick = func() { a.Schedule(Microsecond, tick) }
	a.Schedule(0, tick)
	if err := ctl.Run(); err == nil {
		t.Fatal("runaway loop did not trip the event limit")
	}
}

// TestShardedProcessedAggregates checks the cross-shard counters.
func TestShardedProcessedAggregates(t *testing.T) {
	ctl := NewSharded(Config{Workers: 2, Lookahead: testLookahead})
	defer ctl.Close()
	a := ctl.NewShard("a")
	b := ctl.NewShard("b")
	for i := 0; i < 5; i++ {
		a.Schedule(Duration(i)*Microsecond, func() {})
		b.Schedule(Duration(i)*Microsecond, func() {})
	}
	ctl.Schedule(0, func() {})
	if err := ctl.Run(); err != nil {
		t.Fatal(err)
	}
	if got := ctl.Processed(); got != 11 {
		t.Fatalf("Processed() = %d, want 11", got)
	}
}

// TestOnBarrierRunsEachEpoch: barrier hooks observe every epoch plus the
// final flush.
func TestOnBarrierRunsEachEpoch(t *testing.T) {
	ctl := NewSharded(Config{Workers: 1, Lookahead: testLookahead})
	defer ctl.Close()
	a := ctl.NewShard("a")
	barriers := 0
	ctl.OnBarrier(func() { barriers++ })
	for i := 0; i < 4; i++ {
		// Spread events so they cannot share one epoch window.
		a.Schedule(Duration(i)*100*Microsecond, func() {})
	}
	if err := ctl.Run(); err != nil {
		t.Fatal(err)
	}
	if barriers < 4 {
		t.Fatalf("barrier hook ran %d times, want >= 4", barriers)
	}
}

// buildPingPongLA is buildPingPong with a wiring hook that may install
// per-pair lookaheads before the run; it also returns the epoch count.
func buildPingPongLA(t *testing.T, workers, nShards, rounds int, wire func(ctl *Engine, shards []*Engine)) ([]string, uint64) {
	t.Helper()
	ctl := NewSharded(Config{Workers: workers, Lookahead: testLookahead})
	defer ctl.Close()
	shards := make([]*Engine, nShards)
	for i := range shards {
		shards[i] = ctl.NewShard(fmt.Sprintf("node%d", i))
	}
	if wire != nil {
		wire(ctl, shards)
	}
	logs := make([][]string, nShards+1)
	record := func(s *Engine, what string) {
		logs[s.id] = append(logs[s.id], fmt.Sprintf("%s@%s:%s", s.name, s.Now(), what))
	}
	var hop func(from, to, left int)
	hop = func(from, to, left int) {
		src := shards[from]
		src.PostTo(shards[to], testLookahead+Duration(from+1)*Microsecond, func() {
			record(shards[to], fmt.Sprintf("recv<-%d(left=%d)", from, left))
			if left > 0 {
				hop(to, (to+1)%nShards, left-1)
			}
		})
	}
	for i := range shards {
		i := i
		shards[i].Schedule(Duration(i)*Microsecond, func() {
			record(shards[i], "start")
			hop(i, (i+1)%nShards, rounds)
			var tick func()
			n := 0
			tick = func() {
				record(shards[i], fmt.Sprintf("tick%d", n))
				n++
				if n < rounds {
					shards[i].Schedule(3*Microsecond, tick)
				}
			}
			shards[i].Schedule(Microsecond, tick)
		})
	}
	if err := ctl.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	var sorted []string
	for _, l := range logs {
		sorted = append(sorted, l...)
	}
	sortStrings(sorted)
	return sorted, ctl.Epochs()
}

// TestUniformMatrixMatchesScalar is the bit-compat property: explicitly
// setting every pair — self-pairs included — to the configured scalar
// lookahead reproduces the default (global-scalar) schedule and epoch
// structure exactly. The scalar configuration IS the uniform matrix.
func TestUniformMatrixMatchesScalar(t *testing.T) {
	want, wantEpochs := buildPingPongLA(t, 1, 5, 40, nil)
	got, gotEpochs := buildPingPongLA(t, 1, 5, 40, func(ctl *Engine, shards []*Engine) {
		all := append([]*Engine{ctl}, shards...)
		for _, src := range all {
			for _, dst := range all {
				ctl.SetLookahead(src, dst, testLookahead)
			}
		}
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("uniform matrix diverges from scalar schedule (%d vs %d entries)", len(got), len(want))
	}
	if gotEpochs != wantEpochs {
		t.Fatalf("uniform matrix epochs = %d, scalar = %d", gotEpochs, wantEpochs)
	}
}

// wirePairMatrix installs a deliberately non-uniform matrix (so the O(S²)
// slow path is exercised): pair bounds vary per (src, dst) but stay at or
// below every delay the ping-pong posts, and self-pairs are NoPost.
func wirePairMatrix(ctl *Engine, shards []*Engine) {
	for i, src := range shards {
		ctl.SetLookahead(src, src, NoPost)
		for j, dst := range shards {
			if i == j {
				continue
			}
			ctl.SetLookahead(src, dst, testLookahead+Duration((i+j)%2)*Microsecond)
		}
	}
}

// TestShardedDeterministicAcrossWorkersMatrix: the tentpole invariant with
// a non-uniform lookahead matrix — for a FIXED matrix, the observable
// trace is identical for any worker count.
func TestShardedDeterministicAcrossWorkersMatrix(t *testing.T) {
	want, wantEpochs := buildPingPongLA(t, 1, 5, 40, wirePairMatrix)
	for _, w := range []int{2, 4} {
		got, gotEpochs := buildPingPongLA(t, w, 5, 40, wirePairMatrix)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d trace diverges under pair matrix (%d vs %d entries)", w, len(got), len(want))
		}
		if gotEpochs != wantEpochs {
			t.Fatalf("workers=%d epochs = %d, want %d (epoch structure must be worker-independent)", w, gotEpochs, wantEpochs)
		}
	}
}

// TestNoPostDiagonalWidensEpochs: with self-pairs at NoPost and a wide
// cross-pair bound, two shards grinding long local event chains that only
// rarely talk must synchronize orders of magnitude less often than under
// the uniform 5µs floor.
func TestNoPostDiagonalWidensEpochs(t *testing.T) {
	const ticks = 2000
	run := func(wire func(ctl *Engine, shards []*Engine)) uint64 {
		ctl := NewSharded(Config{Workers: 1, Lookahead: testLookahead})
		defer ctl.Close()
		a := ctl.NewShard("a")
		b := ctl.NewShard("b")
		if wire != nil {
			wire(ctl, []*Engine{a, b})
		}
		for _, s := range []*Engine{a, b} {
			s := s
			n := 0
			var tick func()
			tick = func() {
				n++
				if n < ticks {
					s.Schedule(Microsecond, tick)
				}
			}
			s.Schedule(0, tick)
		}
		// One cross-shard exchange so the pair is genuinely connected.
		a.Schedule(0, func() { a.PostTo(b, Millisecond, func() {}) })
		if err := ctl.Run(); err != nil {
			t.Fatal(err)
		}
		return ctl.Epochs()
	}
	scalar := run(nil)
	wide := run(func(ctl *Engine, shards []*Engine) {
		a, b := shards[0], shards[1]
		ctl.SetLookahead(a, a, NoPost)
		ctl.SetLookahead(b, b, NoPost)
		// The idle control shard's whole row must be NoPost too: the
		// horizon fixed point propagates transitively, so a control row
		// left at the scalar default would cap every horizon at one
		// round trip through it (default + default), not the wide
		// cross-pair bound.
		ctl.SetLookahead(ctl, ctl, NoPost)
		ctl.SetLookahead(ctl, a, NoPost)
		ctl.SetLookahead(ctl, b, NoPost)
		ctl.SetLookahead(a, b, Millisecond)
		ctl.SetLookahead(b, a, Millisecond)
	})
	if wide*10 > scalar {
		t.Fatalf("NoPost diagonal epochs = %d, scalar = %d; want >= 10x reduction", wide, scalar)
	}
}

// TestWorkersClampedAtFreeze: the effective worker count never exceeds the
// shard count or GOMAXPROCS, whatever the config asks for.
func TestWorkersClampedAtFreeze(t *testing.T) {
	ctl := NewSharded(Config{Workers: 64, Lookahead: testLookahead})
	defer ctl.Close()
	a := ctl.NewShard("a")
	a.Schedule(0, func() {})
	if err := ctl.Run(); err != nil {
		t.Fatal(err)
	}
	if got, max := ctl.Workers(), 2; got > max {
		t.Fatalf("effective workers = %d, want <= shard count %d", got, max)
	}
}

// TestRunStatsDeterministic: the schedule-derived RunStats fields are
// identical across worker counts.
func TestRunStatsDeterministic(t *testing.T) {
	stats := func(workers int) RunStats {
		ctl := NewSharded(Config{Workers: workers, Lookahead: testLookahead})
		defer ctl.Close()
		shards := []*Engine{ctl.NewShard("a"), ctl.NewShard("b"), ctl.NewShard("c")}
		for i, s := range shards {
			s := s
			next := shards[(i+1)%len(shards)]
			n := 0
			var tick func()
			tick = func() {
				n++
				if n%3 == 0 {
					s.PostTo(next, testLookahead, func() {})
				}
				if n < 50 {
					s.Schedule(Microsecond, tick)
				}
			}
			s.Schedule(Duration(i)*Microsecond, tick)
		}
		if err := ctl.Run(); err != nil {
			t.Fatal(err)
		}
		st := ctl.RunStats()
		st.Wakes, st.BarrierNs = 0, 0 // host-dependent fields
		return st
	}
	want := stats(1)
	if want.Epochs == 0 || want.Events == 0 || want.StagedAdmits == 0 {
		t.Fatalf("degenerate stats: %+v", want)
	}
	for _, w := range []int{2, 4} {
		if got := stats(w); got != want {
			t.Fatalf("workers=%d stats %+v, want %+v", w, got, want)
		}
	}
}

// TestLegacyEngineUnaffected guards the non-sharded fast path: a plain
// NewEngine must report itself unsharded and keep PostTo-to-self local.
func TestLegacyEngineUnaffected(t *testing.T) {
	e := NewEngine()
	if e.Sharded() || e.ShardCount() != 1 || e.Workers() != 1 || e.Lookahead() != 0 {
		t.Fatal("legacy engine misreports shard metadata")
	}
	fired := false
	e.Schedule(0, func() { e.PostTo(e, Microsecond, func() { fired = true }) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("PostTo on a legacy engine did not degrade to Schedule")
	}
}
