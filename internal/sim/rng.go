package sim

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift128+). Experiments seed one RNG per stochastic component so that
// adding a new consumer of randomness does not perturb existing streams.
//
// math/rand would work, but its generator changed defaults across Go
// releases; a self-contained generator keeps results reproducible across
// toolchains, which matters for regression-testing experiment output.
type RNG struct {
	s0, s1 uint64
}

// NewRNG returns a generator seeded from seed. Seed zero is remapped so the
// generator never starts in the all-zero (degenerate) state.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	r := &RNG{}
	// SplitMix64 scrambles the seed into two well-mixed words.
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0 = next()
	r.s1 = next()
	return r
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Intn returns a uniform integer in [0, n). It returns 0 when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It returns 0 when n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Fill writes pseudo-random bytes into b. It is used to generate
// recognizable but incompressible file contents for integrity checks.
func (r *RNG) Fill(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := r.Uint64()
		b[i] = byte(v)
		b[i+1] = byte(v >> 8)
		b[i+2] = byte(v >> 16)
		b[i+3] = byte(v >> 24)
		b[i+4] = byte(v >> 32)
		b[i+5] = byte(v >> 40)
		b[i+6] = byte(v >> 48)
		b[i+7] = byte(v >> 56)
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}
