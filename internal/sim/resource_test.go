package sim

import (
	"testing"
	"testing/quick"
)

func TestResourceSerializesWork(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu")
	var done []Time
	r.Use(10, func() { done = append(done, e.Now()) })
	r.Use(10, func() { done = append(done, e.Now()) })
	r.Use(5, func() { done = append(done, e.Now()) })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Time{10, 20, 25}
	for i, w := range want {
		if done[i] != w {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
}

func TestResourceIdleGap(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu")
	var finish Time
	r.Use(10, nil)
	e.Schedule(50, func() {
		r.Use(10, func() { finish = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if finish != 60 {
		t.Fatalf("finish = %v, want 60 (service starts when submitted)", finish)
	}
	if r.Busy() != 20 {
		t.Fatalf("Busy = %v, want 20", r.Busy())
	}
	// 20ns busy over 60ns elapsed.
	if u := r.Utilization(); u < 0.33 || u > 0.34 {
		t.Fatalf("Utilization = %v, want ~0.333", u)
	}
}

func TestResourceSaturatedUtilization(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu")
	for i := 0; i < 100; i++ {
		r.Use(10, nil)
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if u := r.Utilization(); u != 1.0 {
		t.Fatalf("Utilization = %v, want 1.0 for back-to-back work", u)
	}
	if r.Jobs() != 100 {
		t.Fatalf("Jobs = %d, want 100", r.Jobs())
	}
}

func TestResourceZeroDuration(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu")
	ran := false
	r.Use(0, func() { ran = true })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Fatal("zero-duration job did not complete")
	}
	if e.Now() != 0 {
		t.Fatalf("Now = %v, want 0", e.Now())
	}
}

func TestResourceResetStats(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu")
	r.Use(100, nil)
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	r.ResetStats()
	e.Schedule(100, func() {})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if u := r.Utilization(); u != 0 {
		t.Fatalf("Utilization after reset+idle = %v, want 0", u)
	}
	if r.Jobs() != 0 {
		t.Fatalf("Jobs after reset = %d, want 0", r.Jobs())
	}
}

func TestResourceResetStatsMidJob(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu")
	r.Use(100, nil)
	if err := e.RunUntil(50); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	r.ResetStats()
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The remaining 50ns of the in-flight job belong to the new window.
	if r.Busy() != 50 {
		t.Fatalf("Busy = %v, want 50 (residual in-flight work)", r.Busy())
	}
	if u := r.Utilization(); u != 1.0 {
		t.Fatalf("Utilization = %v, want 1.0", u)
	}
}

func TestResourceQueueHighWater(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu")
	for i := 0; i < 5; i++ {
		r.Use(10, nil)
	}
	if r.QueueLen() != 5 {
		t.Fatalf("QueueLen = %d, want 5", r.QueueLen())
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.QueueLen() != 0 {
		t.Fatalf("QueueLen = %d, want 0 after drain", r.QueueLen())
	}
	if r.MaxQueueLen() != 5 {
		t.Fatalf("MaxQueueLen = %d, want 5", r.MaxQueueLen())
	}
}

func TestResourcePropertyBusyEqualsSumOfService(t *testing.T) {
	f := func(durs []uint8) bool {
		e := NewEngine()
		r := NewResource(e, "x")
		var sum Duration
		for _, d := range durs {
			r.Use(Duration(d), nil)
			sum += Duration(d)
		}
		if err := e.Run(); err != nil {
			return false
		}
		return r.Busy() == sum && e.Now() == Time(sum)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced diverging streams")
		}
	}
	c := NewRNG(43)
	same := true
	for i := 0; i < 10; i++ {
		if NewRNG(42).Uint64() == c.Uint64() {
			continue
		}
		same = false
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
	if r.Intn(0) != 0 || r.Intn(-5) != 0 {
		t.Fatal("Intn of non-positive bound must return 0")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGFill(t *testing.T) {
	r := NewRNG(13)
	b := make([]byte, 37)
	r.Fill(b)
	allZero := true
	for _, v := range b {
		if v != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		t.Fatal("Fill left buffer all zero")
	}
	// Determinism.
	b2 := make([]byte, 37)
	NewRNG(13).Fill(b2)
	for i := range b {
		if b[i] != b2[i] {
			t.Fatal("Fill not deterministic for same seed")
		}
	}
}
