package sim

import "testing"

// TestEventDispatchZeroAllocs is the CI allocation-regression gate for the
// scheduler: once the free list is primed, a schedule/fire cycle must not
// touch the heap at all. A regression here shows up as GC pressure on every
// macro experiment, so it fails loudly.
func TestEventDispatchZeroAllocs(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	// Prime the free list and the heap slice.
	for i := 0; i < 64; i++ {
		e.Schedule(Duration(i), fn)
	}
	if err := e.Run(); err != nil {
		t.Fatalf("prime Run: %v", err)
	}
	avg := testing.AllocsPerRun(1000, func() {
		e.Schedule(1, fn)
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state event dispatch allocates %.1f objects/op, want 0", avg)
	}
}

// TestEventCancelZeroAllocs extends the gate to the timer pattern sunrpc
// retransmission leans on: schedule, cancel, reschedule.
func TestEventCancelZeroAllocs(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.Schedule(Duration(i), fn)
	}
	if err := e.Run(); err != nil {
		t.Fatalf("prime Run: %v", err)
	}
	avg := testing.AllocsPerRun(1000, func() {
		id := e.Schedule(1000, fn)
		e.Schedule(1, fn)
		if !e.Cancel(id) {
			t.Fatal("Cancel failed")
		}
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
	})
	if avg != 0 {
		t.Fatalf("schedule+cancel cycle allocates %.1f objects/op, want 0", avg)
	}
}

// TestEventIDStaleAfterReuse pins the ABA guarantee the free list depends
// on: an EventID from a fired event must not cancel the object's next
// tenant.
func TestEventIDStaleAfterReuse(t *testing.T) {
	e := NewEngine()
	var stale EventID
	stale = e.Schedule(1, func() {})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The freed object is reused for the next schedule.
	ran := false
	e.Schedule(1, func() { ran = true })
	if e.Cancel(stale) {
		t.Fatal("stale EventID canceled a recycled event")
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Fatal("recycled event did not run")
	}
}

func BenchmarkEventDispatch(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.Schedule(Duration(i), fn)
	}
	if err := e.Run(); err != nil {
		b.Fatalf("prime Run: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(1, fn)
		if err := e.Run(); err != nil {
			b.Fatalf("Run: %v", err)
		}
	}
}

// BenchmarkEventHeap64 exercises dispatch with a populated heap (64 timers
// in flight), the regime the macro experiments run in.
func BenchmarkEventHeap64(b *testing.B) {
	e := NewEngine()
	pending := 0
	tick := func() {
		pending--
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for pending < 64 {
			e.Schedule(Duration(1+pending%37), tick)
			pending++
		}
		if err := e.RunFor(5); err != nil {
			b.Fatalf("RunFor: %v", err)
		}
	}
}

func BenchmarkEventCancel(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.Schedule(Duration(i), fn)
	}
	if err := e.Run(); err != nil {
		b.Fatalf("prime Run: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := e.Schedule(1000, fn)
		e.Cancel(id)
		if err := e.Run(); err != nil {
			b.Fatalf("Run: %v", err)
		}
	}
}
