package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineEmptyRun(t *testing.T) {
	e := NewEngine()
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if e.Now() != 0 {
		t.Fatalf("clock moved on empty run: %v", e.Now())
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestEngineSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.Schedule(10, func() {
		fired = append(fired, e.Now())
		e.Schedule(5, func() {
			fired = append(fired, e.Now())
		})
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("fired = %v, want [10 15]", fired)
	}
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	if err := e.RunUntil(10); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	ran := false
	e.Schedule(-5, func() { ran = true })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Fatal("negative-delay event did not run")
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %v, want 10 (negative delay must not rewind)", e.Now())
	}
}

func TestEngineRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func() {})
	if err := e.RunUntil(40); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if e.Now() != 40 {
		t.Fatalf("Now = %v, want 40", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if e.Now() != 100 {
		t.Fatalf("Now = %v, want 100", e.Now())
	}
}

func TestEngineRunFor(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		e.Schedule(10, tick)
	}
	e.Schedule(10, tick)
	if err := e.RunFor(95); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if count != 9 {
		t.Fatalf("ticks = %d, want 9", count)
	}
	if e.Now() != 95 {
		t.Fatalf("Now = %v, want 95", e.Now())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	id := e.Schedule(10, func() { ran = true })
	if !e.Cancel(id) {
		t.Fatal("Cancel reported failure for pending event")
	}
	if e.Cancel(id) {
		t.Fatal("double Cancel reported success")
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran {
		t.Fatal("canceled event ran")
	}
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(10, func() { order = append(order, 1) })
	id := e.Schedule(20, func() { order = append(order, 2) })
	e.Schedule(30, func() { order = append(order, 3) })
	e.Cancel(id)
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("order = %v, want [1 3]", order)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(1, func() { count++; e.Stop() })
	e.Schedule(2, func() { count++ })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 1 {
		t.Fatalf("count = %d, want 1 (Stop must halt the loop)", count)
	}
	// A subsequent Run resumes.
	if err := e.Run(); err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if count != 2 {
		t.Fatalf("count = %d, want 2 after resume", count)
	}
}

func TestEngineEventLimit(t *testing.T) {
	e := NewEngine()
	e.SetEventLimit(10)
	var tick func()
	tick = func() { e.Schedule(1, tick) }
	e.Schedule(1, tick)
	if err := e.Run(); err == nil {
		t.Fatal("Run with runaway loop did not hit event limit")
	}
}

func TestEnginePropertyEventsFireInTimeOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			e.Schedule(Duration(d), func() { fired = append(fired, e.Now()) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDurationString(t *testing.T) {
	if got := (1500 * Microsecond).String(); got != "1.5ms" {
		t.Fatalf("String = %q, want 1.5ms", got)
	}
	if got := Time(2 * Second).Seconds(); got != 2.0 {
		t.Fatalf("Seconds = %v, want 2", got)
	}
}
