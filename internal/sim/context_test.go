package sim

import "testing"

// TestContextPropagation verifies that a request context set during one
// event is inherited by every event scheduled from it, transitively, and
// that it never leaks into unrelated events.
func TestContextPropagation(t *testing.T) {
	eng := NewEngine()
	type req struct{ id int }
	a := &req{1}
	b := &req{2}

	var got []any
	record := func() { got = append(got, eng.Context()) }

	eng.Schedule(0, func() {
		eng.SetContext(a)
		eng.Schedule(10, func() {
			record()
			// Grandchild inherits too.
			eng.Schedule(5, record)
		})
	})
	eng.Schedule(1, func() {
		eng.SetContext(b)
		eng.Schedule(10, record)
	})
	// Scheduled outside any event: no context.
	eng.Schedule(50, record)

	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := []any{a, b, a, nil}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestContextClearedBetweenEvents checks the engine resets the context when
// an event completes, so top-level scheduling stays context-free.
func TestContextClearedBetweenEvents(t *testing.T) {
	eng := NewEngine()
	eng.Schedule(0, func() { eng.SetContext("x") })
	fired := false
	eng.Schedule(1, func() {
		fired = true
		if eng.Context() != nil {
			t.Errorf("context leaked across events: %v", eng.Context())
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("second event did not fire")
	}
}

// TestUsageObserver verifies the resource accounting hook sees queueing
// delay, service demand and the admitting context, without changing the
// simulation outcome.
func TestUsageObserver(t *testing.T) {
	type rec struct {
		name          string
		ctx           any
		wait, service Duration
	}
	run := func(observe bool) ([]rec, Time) {
		eng := NewEngine()
		var recs []rec
		if observe {
			eng.SetUsageObserver(func(r *Resource, ctx any, wait, service Duration) {
				recs = append(recs, rec{r.Name(), ctx, wait, service})
			})
		}
		cpu := NewResource(eng, "cpu")
		eng.Schedule(0, func() {
			eng.SetContext("req1")
			cpu.Use(10, nil)
		})
		eng.Schedule(0, func() {
			eng.SetContext("req2")
			cpu.Use(7, nil) // queued behind req1: waits 10
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return recs, eng.Now()
	}

	recs, end := run(true)
	want := []rec{
		{"cpu", "req1", 0, 10},
		{"cpu", "req2", 10, 7},
	}
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if recs[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, recs[i], want[i])
		}
	}

	_, endOff := run(false)
	if end != endOff {
		t.Fatalf("observer changed simulation end time: %v vs %v", end, endOff)
	}
}
