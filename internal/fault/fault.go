// Package fault is the deterministic fault-injection subsystem. An Injector
// carries a set of declarative Schedules — frame drop/corruption/delay on
// simnet links, latency spikes and transient errors on disk arms, CPU
// contention bursts on node schedulers — and is consulted by each resource
// on the data path at its injection point. Every decision is drawn from a
// seeded per-schedule random stream on the engine's deterministic event
// order, so a fault run is bit-for-bit replayable from its seed.
//
// Faults annotate the request-level traces of package trace: a delay
// injected while a request's span is active is booked as fault-attributed
// latency in the layer where it was injected (disk spikes at LDisk, frame
// delays at LNet), and recovery costs booked by the transports (RPC
// retransmission waits, iSCSI retry backoffs) use the same channel. Ambient
// faults that cannot be pinned on one request (CPU contention bursts) are
// accounted on the injector itself and surface in its Report.
//
// A nil *Injector is the disabled state: every query method returns the
// zero Decision, so data-path code never branches on "faults on?".
package fault

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"ncache/internal/sim"
	"ncache/internal/trace"
)

// Class identifies one kind of injected fault.
type Class uint8

// The fault classes, ordered by the layer they strike.
const (
	// FrameDrop discards a frame at a NIC transmit queue or a switch
	// downlink before it reaches the wire.
	FrameDrop Class = iota
	// FrameCorrupt lets the frame burn wire time but spoils it, so the
	// receiver's checksum verification discards it on delivery. (The
	// frame is flagged rather than byte-flipped: wire buffers are
	// refcount-shared with cache entries, which must stay pristine.)
	FrameCorrupt
	// FrameDelay holds a frame back for the schedule's Delay before it is
	// forwarded — past later frames, so it also exercises reordering.
	FrameDelay
	// FrameDup transmits a frame twice; the duplicate burns wire time like
	// a real frame and exercises receiver duplicate suppression.
	FrameDup
	// DiskSlow adds the schedule's Delay to one disk-arm service (a
	// latency spike: thermal recalibration, a long seek, a bad-sector
	// retry inside the drive).
	DiskSlow
	// DiskError completes one disk I/O with a transient error after its
	// service time; the iSCSI target reports CHECK CONDITION and the
	// initiator retries.
	DiskError
	// CPUBurst occupies a node's CPU for the schedule's Delay once per
	// Period while the schedule is active — contention from work outside
	// the measured data path.
	CPUBurst
	// NodeKill crashes a registered node at the schedule's Start instant:
	// its volatile caches are discarded and its services stop answering
	// until the harness restarts it (with WAL replay). The kill is a
	// one-shot event at a virtual timestamp, so a crash "mid-flush" is a
	// deterministic, replayable point in the schedule.
	NodeKill
	// NumClasses bounds the enum.
	NumClasses
)

var classNames = [NumClasses]string{
	"drop", "corrupt", "delay", "dup", "slowdisk", "diskerr", "cpuburst", "kill",
}

// String names the class (the same token the spec grammar uses).
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "?"
}

// layerOf maps a fault class to the trace layer its latency is booked in.
func layerOf(c Class) trace.Layer {
	switch c {
	case FrameDrop, FrameCorrupt, FrameDelay, FrameDup:
		return trace.LNet
	case DiskSlow, DiskError:
		return trace.LDisk
	default:
		// CPUBurst and NodeKill are ambient; never booked on spans.
		return trace.LClient
	}
}

// Schedule is one declarative fault description. Rate-based schedules fire
// with probability Rate at each opportunity (each frame, each disk I/O);
// CPUBurst schedules fire once per Period. Start/End bound the active window
// in virtual time (End zero means no deadline), and Count caps the total
// injections (zero means unlimited) — Count 1 with a Start is a one-shot
// fault at a virtual timestamp.
type Schedule struct {
	Class Class
	// Target selects injection sites by name: "" or "*" match every
	// site, a trailing "*" matches by prefix, anything else must match
	// exactly. Sites are named "<node>.tx" (NIC transmit), "<node>.rx"
	// (switch downlink toward the node), "disk<N>" (arms), and
	// "<node>.cpu" (schedulers).
	Target string
	// Rate is the per-opportunity injection probability (frame and disk
	// classes).
	Rate float64
	// Delay is the injected magnitude for FrameDelay, DiskSlow and
	// CPUBurst.
	Delay sim.Duration
	// Period is the CPUBurst cadence (each burst lands at a uniformly
	// jittered offset within its period, so bursts never phase-lock with
	// the workload).
	Period sim.Duration
	// Start and End bound the active window; End zero means forever.
	Start, End sim.Time
	// Count caps total injections; zero means unlimited.
	Count uint64
}

// String renders the schedule in the spec grammar (parseable round-trip).
func (s Schedule) String() string {
	var b strings.Builder
	b.WriteString(s.Class.String())
	b.WriteByte(':')
	if s.Target == "" {
		b.WriteByte('*')
	} else {
		b.WriteString(s.Target)
	}
	if s.Rate > 0 {
		fmt.Fprintf(&b, ":rate=%g", s.Rate)
	}
	if s.Delay > 0 {
		fmt.Fprintf(&b, ":delay=%s", s.Delay)
	}
	if s.Period > 0 {
		fmt.Fprintf(&b, ":period=%s", s.Period)
	}
	if s.Start > 0 {
		fmt.Fprintf(&b, ":start=%s", sim.Duration(s.Start))
	}
	if s.End > 0 {
		fmt.Fprintf(&b, ":end=%s", sim.Duration(s.End))
	}
	if s.Count > 0 {
		fmt.Fprintf(&b, ":count=%d", s.Count)
	}
	return b.String()
}

// matches reports whether the schedule selects a site.
func (s Schedule) matches(site string) bool {
	t := s.Target
	if t == "" || t == "*" {
		return true
	}
	if strings.HasSuffix(t, "*") {
		return strings.HasPrefix(site, t[:len(t)-1])
	}
	return site == t
}

// fstate is one random stream plus its injection counters: a schedule has
// exactly one on a sequential engine, and one per injection site on a
// sharded engine (each site belongs to one shard, so its stream advances
// deterministically regardless of what other shards do concurrently).
type fstate struct {
	rng *sim.RNG
	// injected counts faults fired from this stream.
	injected uint64
	// delayed accumulates the virtual time this stream injected.
	delayed sim.Duration
	// burst tracks the pending CPU-burst event for Quiesce, together with
	// the engine (shard) it was scheduled on.
	burst    sim.EventID
	burstEng *sim.Engine
}

// schedState is one schedule plus its random-stream state.
type schedState struct {
	Schedule
	// seed is this schedule's stream seed (per-site streams derive from it
	// by hashing the site name, so stream identity is independent of the
	// order sites first fire).
	seed uint64
	// legacy is the single shared stream used on sequential engines — the
	// original per-schedule stream, byte-identical to prior releases.
	legacy fstate
	// sites holds the per-site streams of a sharded run. mu guards only
	// the map shape (lazy creation); each entry is owned by its site's
	// shard afterwards.
	mu    sync.RWMutex
	sites map[string]*fstate
}

// state returns the stream that decides for site: the schedule's shared
// stream on a sequential engine, the site's own stream on a sharded one.
func (st *schedState) state(site string, sharded bool) *fstate {
	if !sharded {
		return &st.legacy
	}
	st.mu.RLock()
	fs := st.sites[site]
	st.mu.RUnlock()
	if fs != nil {
		return fs
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if fs = st.sites[site]; fs != nil {
		return fs
	}
	h := fnv.New64a()
	h.Write([]byte(site))
	fs = &fstate{rng: sim.NewRNG(st.seed ^ h.Sum64())}
	if st.sites == nil {
		st.sites = make(map[string]*fstate)
	}
	st.sites[site] = fs
	return fs
}

// active reports whether the schedule may fire at time now from stream fs
// (the Count cap is per stream: per schedule sequentially, per site on a
// sharded engine).
func (st *schedState) active(now sim.Time, fs *fstate) bool {
	if now < st.Start {
		return false
	}
	if st.End > 0 && now > st.End {
		return false
	}
	if st.Count > 0 && fs.injected >= st.Count {
		return false
	}
	return true
}

// Decision is the outcome of one injection-point query. The zero value means
// "no fault".
type Decision struct {
	// Drop discards the frame before it costs wire time.
	Drop bool
	// Corrupt lets the frame travel but spoils it for delivery.
	Corrupt bool
	// Dup transmits an extra copy of the frame.
	Dup bool
	// Delay is extra latency to add at the injection point.
	Delay sim.Duration
	// Err fails the operation with a transient error.
	Err bool
}

// cpuSite is one scheduler resource registered for CPU-burst schedules.
type cpuSite struct {
	site string
	cpu  *sim.Resource
}

// killSite is one node registered for NodeKill schedules: fn crashes the
// node, on its own engine (shard).
type killSite struct {
	site string
	eng  *sim.Engine
	fn   func()
}

// Injector owns the schedules for one simulated configuration. A nil
// injector declines every query. An injector starts disarmed so testbed
// bring-up, formatting and prefill run fault-free; Arm starts injection and
// Quiesce stops it again before the post-window drain.
type Injector struct {
	eng  *sim.Engine
	seed uint64
	// sharded mirrors eng.Sharded(): per-site random streams and per-shard
	// burst scheduling, so decisions stay deterministic under the parallel
	// engine.
	sharded bool
	scheds  []*schedState
	cpus    []cpuSite
	kills   []killSite
	// armed gates all injection; quiesced is the terminal off state (set
	// before the post-window drain so recovery completes and the event
	// loop terminates).
	armed    bool
	quiesced bool
}

// New creates an injector on the engine. Each schedule added later draws
// from its own random stream derived from seed, so schedules never perturb
// one another's decisions.
func New(eng *sim.Engine, seed uint64) *Injector {
	if seed == 0 {
		seed = 1
	}
	return &Injector{eng: eng, seed: seed, sharded: eng.Sharded()}
}

// Seed returns the injector's seed.
func (in *Injector) Seed() uint64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Add installs one schedule.
func (in *Injector) Add(s Schedule) {
	if in == nil {
		return
	}
	idx := uint64(len(in.scheds))
	seed := in.seed ^ (0x9e3779b97f4a7c15 * (idx + 1))
	st := &schedState{Schedule: s, seed: seed}
	st.legacy.rng = sim.NewRNG(seed)
	in.scheds = append(in.scheds, st)
}

// Schedules returns copies of the installed schedules.
func (in *Injector) Schedules() []Schedule {
	if in == nil {
		return nil
	}
	out := make([]Schedule, len(in.scheds))
	for i, st := range in.scheds {
		out[i] = st.Schedule
	}
	return out
}

// Enabled reports whether injection is armed and not quiesced.
func (in *Injector) Enabled() bool {
	return in != nil && in.armed && !in.quiesced && len(in.scheds) > 0
}

// Arm starts injection: rate queries begin drawing and the CPU-burst loops
// of every registered scheduler are scheduled. Experiments call it once the
// testbed is set up, at the start of the driven load.
func (in *Injector) Arm() {
	if in == nil || in.armed || in.quiesced {
		return
	}
	in.armed = true
	for _, cs := range in.cpus {
		for _, st := range in.scheds {
			if st.Class != CPUBurst || !st.matches(cs.site) {
				continue
			}
			if st.Period <= 0 || st.Delay <= 0 {
				continue
			}
			in.scheduleBurst(st, cs, st.Start)
		}
	}
	for _, ks := range in.kills {
		for _, st := range in.scheds {
			if st.Class != NodeKill || !st.matches(ks.site) {
				continue
			}
			in.scheduleKill(st, ks)
		}
	}
}

// Quiesce stops all injection: rate queries return the zero Decision and
// pending CPU-burst events are canceled. Experiments call it at the end of
// the measurement window so the drain completes fault-free.
func (in *Injector) Quiesce() {
	if in == nil {
		return
	}
	in.quiesced = true
	for _, st := range in.scheds {
		if in.eng.Cancel(st.legacy.burst) {
			st.legacy.burst = sim.EventID{}
		}
		st.mu.RLock()
		for _, fs := range st.sites { // det:commutative — independent cancels
			if fs.burstEng != nil && fs.burstEng.Cancel(fs.burst) {
				fs.burst = sim.EventID{}
			}
		}
		st.mu.RUnlock()
	}
}

// decide runs the rate draw for every matching schedule of the given
// classes and folds the outcomes into one Decision. Each matching schedule
// draws exactly once per opportunity whether or not it fires, keeping each
// stream's consumption independent of other schedules' outcomes.
func (in *Injector) decide(eng *sim.Engine, site string, classes ...Class) Decision {
	var d Decision
	if in == nil || !in.armed || in.quiesced {
		return d
	}
	now := eng.Now()
	for _, st := range in.scheds {
		wanted := false
		for _, c := range classes {
			if st.Class == c {
				wanted = true
				break
			}
		}
		if !wanted || !st.matches(site) {
			continue
		}
		fs := st.state(site, in.sharded)
		if !st.active(now, fs) {
			continue
		}
		if st.Rate <= 0 || fs.rng.Float64() >= st.Rate {
			continue
		}
		fs.injected++
		switch st.Class {
		case FrameDrop:
			d.Drop = true
			trace.Fault(eng, trace.LNet, 0)
		case FrameCorrupt:
			d.Corrupt = true
			trace.Fault(eng, trace.LNet, 0)
		case FrameDup:
			d.Dup = true
			trace.Fault(eng, trace.LNet, 0)
		case FrameDelay, DiskSlow:
			d.Delay += st.Delay
			fs.delayed += st.Delay
			trace.Fault(eng, layerOf(st.Class), st.Delay)
		case DiskError:
			d.Err = true
			trace.Fault(eng, trace.LDisk, 0)
		}
	}
	return d
}

// FrameTx is consulted by a NIC for each outgoing frame; site is
// "<node>.tx". eng is the shard the query runs on (the NIC's node engine).
func (in *Injector) FrameTx(eng *sim.Engine, site string) Decision {
	return in.decide(eng, site, FrameDrop, FrameCorrupt, FrameDelay, FrameDup)
}

// FrameRx is consulted by the switch for each frame heading to a port; site
// is "<node>.rx", eng the destination node's engine.
func (in *Injector) FrameRx(eng *sim.Engine, site string) Decision {
	return in.decide(eng, site, FrameDrop, FrameCorrupt, FrameDelay, FrameDup)
}

// Disk is consulted by a disk arm for each I/O; site is the disk name, eng
// the arm's engine.
func (in *Injector) Disk(eng *sim.Engine, site string) Decision {
	return in.decide(eng, site, DiskSlow, DiskError)
}

// AttachCPU registers a node's scheduler resource as a CPU-burst site; site
// is "<node>.cpu". Call once per node at testbed assembly — the burst loops
// themselves start at Arm.
func (in *Injector) AttachCPU(site string, cpu *sim.Resource) {
	if in == nil {
		return
	}
	in.cpus = append(in.cpus, cpuSite{site: site, cpu: cpu})
}

// AttachKill registers a node as a NodeKill site; site is the node's name,
// eng its engine (shard) and fn its crash handler. Call once per killable
// node at testbed assembly — the one-shot kill event is armed at Arm.
func (in *Injector) AttachKill(site string, eng *sim.Engine, fn func()) {
	if in == nil {
		return
	}
	in.kills = append(in.kills, killSite{site: site, eng: eng, fn: fn})
}

// scheduleKill arms one deterministic crash at the schedule's Start instant
// on the victim's own shard. The event is tracked in the site's stream
// state so Quiesce cancels a kill that has not fired yet.
func (in *Injector) scheduleKill(st *schedState, ks killSite) {
	fs := st.state(ks.site, in.sharded)
	at := st.Start
	if at < ks.eng.Now() {
		at = ks.eng.Now()
	}
	fs.burstEng = ks.eng
	fs.burst = ks.eng.At(at, func() {
		if in.quiesced || !st.active(ks.eng.Now(), fs) {
			return
		}
		fs.injected++
		ks.fn()
	})
}

// scheduleBurst arms one burst at a jittered offset within the period
// starting at from. Bursts run on the CPU's own shard, drawing from the
// site's stream.
func (in *Injector) scheduleBurst(st *schedState, cs cpuSite, from sim.Time) {
	if !in.armed || in.quiesced {
		return
	}
	eng := cs.cpu.Engine()
	fs := st.state(cs.site, in.sharded)
	if from < eng.Now() {
		from = eng.Now()
	}
	at := from.Add(sim.Duration(float64(st.Period) * fs.rng.Float64()))
	if st.End > 0 && at > st.End {
		return
	}
	if st.Count > 0 && fs.injected >= st.Count {
		return
	}
	fs.burstEng = eng
	fs.burst = eng.At(at, func() {
		if in.quiesced || !st.active(eng.Now(), fs) {
			return
		}
		fs.injected++
		fs.delayed += st.Delay
		cs.cpu.Use(st.Delay, nil)
		in.scheduleBurst(st, cs, from.Add(st.Period))
	})
}

// ScheduleReport is one schedule's injection tally.
type ScheduleReport struct {
	Spec     string
	Injected uint64
	// Delayed is the total virtual time this schedule injected (delay
	// classes only; drops and errors report zero here — their cost
	// surfaces as recovery latency on the affected requests).
	Delayed sim.Duration
}

// Report tallies every schedule, sorted by spec for deterministic output.
func (in *Injector) Report() []ScheduleReport {
	if in == nil {
		return nil
	}
	out := make([]ScheduleReport, 0, len(in.scheds))
	for _, st := range in.scheds {
		r := ScheduleReport{
			Spec:     st.Schedule.String(),
			Injected: st.legacy.injected,
			Delayed:  st.legacy.delayed,
		}
		st.mu.RLock()
		for _, fs := range st.sites { // det:commutative — summing counters
			r.Injected += fs.injected
			r.Delayed += fs.delayed
		}
		st.mu.RUnlock()
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec < out[j].Spec })
	return out
}

// FormatReport renders a report as one line per schedule.
func FormatReport(rs []ScheduleReport) string {
	if len(rs) == 0 {
		return "no faults injected\n"
	}
	var b strings.Builder
	for _, r := range rs {
		fmt.Fprintf(&b, "  %-48s injected=%-8d delay=%s\n", r.Spec, r.Injected, r.Delayed)
	}
	return b.String()
}
