package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"ncache/internal/sim"
)

// Presets name the canonical degradation schedules the fig-fault experiment
// sweeps. Targets use the testbed's site names: "client*" selects both
// directions of every client link, "disk*" every arm in the array, "app.cpu"
// the application server's scheduler.
var Presets = map[string]string{
	// frame-loss drops ~0.2% of frames on the client links — enough that
	// a multi-frame NFS reply is regularly holed and the RPC layer must
	// retransmit.
	"frame-loss": "drop:client*:rate=0.002",
	// slow-disk gives one in five disk I/Os a 2 ms latency spike
	// (in-drive retry / recalibration territory for the paper's IDE
	// arms).
	"slow-disk": "slowdisk:disk*:rate=0.2:delay=2ms",
	// cpu-burst steals the application server's CPU for 500 µs roughly
	// every 2 ms — ~25% contention from outside the data path.
	"cpu-burst": "cpuburst:app.cpu:period=2ms:delay=500us",
	// arm-outage hard-fails every disk I/O on the second mirror arm of
	// target 0 (site prefix s0m1.disk) until the error budget is spent —
	// the canonical failover → circuit-open → recovery → resync schedule
	// for mirrored volumes. Requires a cluster built with Arms ≥ 2.
	"arm-outage": "diskerr:s0m1.disk*:rate=1:count=120",
}

// ParseSpec parses a fault specification: either a preset name or a
// comma-separated list of schedules, each
//
//	<class>:<target>[:key=value]...
//
// with classes drop, corrupt, delay, slowdisk, diskerr, cpuburst, kill and
// keys rate (probability), delay/period/start/end (Go durations, virtual
// time) and count (max injections). kill is rate-free: it crashes the
// matching registered node(s) once, exactly at start=. Example:
//
//	drop:client*:rate=0.01,slowdisk:disk0:rate=0.5:delay=5ms:start=100ms
func ParseSpec(spec string) ([]Schedule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	if p, ok := Presets[spec]; ok {
		spec = p
	}
	var out []Schedule
	for _, item := range strings.Split(spec, ",") {
		s, err := parseItem(strings.TrimSpace(item))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// parseItem parses one schedule clause.
func parseItem(item string) (Schedule, error) {
	var s Schedule
	parts := strings.Split(item, ":")
	if len(parts) < 2 {
		return s, fmt.Errorf("fault: %q: want <class>:<target>[:key=value]...", item)
	}
	cls, err := parseClass(parts[0])
	if err != nil {
		return s, err
	}
	s.Class = cls
	s.Target = parts[1]
	for _, kv := range parts[2:] {
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			return s, fmt.Errorf("fault: %q: option %q is not key=value", item, kv)
		}
		key, val := kv[:eq], kv[eq+1:]
		switch key {
		case "rate":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil || r < 0 || r > 1 {
				return s, fmt.Errorf("fault: %q: rate %q must be in [0,1]", item, val)
			}
			s.Rate = r
		case "delay":
			d, err := parseDur(val)
			if err != nil {
				return s, fmt.Errorf("fault: %q: %v", item, err)
			}
			s.Delay = d
		case "period":
			d, err := parseDur(val)
			if err != nil {
				return s, fmt.Errorf("fault: %q: %v", item, err)
			}
			s.Period = d
		case "start":
			d, err := parseDur(val)
			if err != nil {
				return s, fmt.Errorf("fault: %q: %v", item, err)
			}
			s.Start = sim.Time(d)
		case "end":
			d, err := parseDur(val)
			if err != nil {
				return s, fmt.Errorf("fault: %q: %v", item, err)
			}
			s.End = sim.Time(d)
		case "count":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return s, fmt.Errorf("fault: %q: bad count %q", item, val)
			}
			s.Count = n
		default:
			return s, fmt.Errorf("fault: %q: unknown option %q", item, key)
		}
	}
	return s, validate(item, s)
}

// parseClass maps a grammar token to a Class.
func parseClass(tok string) (Class, error) {
	for c := Class(0); c < NumClasses; c++ {
		if classNames[c] == tok {
			return c, nil
		}
	}
	return 0, fmt.Errorf("fault: unknown class %q (want one of %s)",
		tok, strings.Join(classNames[:], ", "))
}

// parseDur parses a Go duration into virtual time.
func parseDur(val string) (sim.Duration, error) {
	d, err := time.ParseDuration(val)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("bad duration %q", val)
	}
	return sim.Duration(d), nil
}

// validate rejects schedules that can never fire or would misbehave.
func validate(item string, s Schedule) error {
	switch s.Class {
	case CPUBurst:
		if s.Period <= 0 || s.Delay <= 0 {
			return fmt.Errorf("fault: %q: cpuburst needs period= and delay=", item)
		}
	case FrameDelay, DiskSlow:
		if s.Rate <= 0 || s.Delay <= 0 {
			return fmt.Errorf("fault: %q: %s needs rate= and delay=", item, s.Class)
		}
	case NodeKill:
		if s.Start <= 0 {
			return fmt.Errorf("fault: %q: kill needs start= (the crash instant)", item)
		}
		if s.Rate != 0 {
			return fmt.Errorf("fault: %q: kill is deterministic — no rate=", item)
		}
	default:
		if s.Rate <= 0 {
			return fmt.Errorf("fault: %q: %s needs rate=", item, s.Class)
		}
	}
	if s.End > 0 && s.End < s.Start {
		return fmt.Errorf("fault: %q: end before start", item)
	}
	return nil
}

// MustParseSpec is ParseSpec for known-good literals in tests and presets.
func MustParseSpec(spec string) []Schedule {
	ss, err := ParseSpec(spec)
	if err != nil {
		panic(err)
	}
	return ss
}

// NewFromSpec builds an injector with every schedule in spec installed.
func NewFromSpec(eng *sim.Engine, seed uint64, spec string) (*Injector, error) {
	ss, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	if len(ss) == 0 {
		return nil, nil
	}
	in := New(eng, seed)
	for _, s := range ss {
		in.Add(s)
	}
	return in, nil
}
