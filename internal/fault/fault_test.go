package fault

import (
	"strings"
	"testing"

	"ncache/internal/sim"
)

// TestParseSpecRoundTrip checks that every parsed schedule re-renders to a
// string that parses back to the same schedule.
func TestParseSpecRoundTrip(t *testing.T) {
	specs := []string{
		"drop:client*:rate=0.01",
		"corrupt:*:rate=0.5",
		"delay:app.rx:rate=0.1:delay=100µs",
		"slowdisk:disk0:rate=0.5:delay=5ms:start=100ms",
		"diskerr:disk*:rate=0.02:count=3",
		"cpuburst:app.cpu:delay=500µs:period=2ms:end=1s",
		"drop:client0.tx:rate=0.1,slowdisk:disk1:rate=1:delay=1ms",
	}
	for _, spec := range specs {
		ss, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
		for _, s := range ss {
			again, err := ParseSpec(s.String())
			if err != nil {
				t.Fatalf("re-parse %q (from %q): %v", s.String(), spec, err)
			}
			if len(again) != 1 || again[0] != s {
				t.Errorf("round trip %q: got %+v, want %+v", s.String(), again, s)
			}
		}
	}
}

// TestParseSpecPresets checks every preset parses.
func TestParseSpecPresets(t *testing.T) {
	for name, spec := range Presets {
		ss, err := ParseSpec(name)
		if err != nil {
			t.Errorf("preset %s (%q): %v", name, spec, err)
		}
		if len(ss) == 0 {
			t.Errorf("preset %s parsed empty", name)
		}
	}
}

// TestParseSpecErrors checks malformed specs are rejected with an error, not
// a panic or a silent zero schedule.
func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"drop",                            // no target
		"nonsense:disk0:rate=0.5",         // unknown class
		"drop:disk0:rate=1.5",             // rate out of range
		"drop:disk0:rate=-1",              // negative rate
		"drop:disk0:rate",                 // not key=value
		"drop:disk0:bogus=1",              // unknown key
		"drop:disk0",                      // missing rate
		"delay:disk0:rate=0.5",            // delay class without delay=
		"slowdisk:disk0:delay=1ms",        // slowdisk without rate
		"cpuburst:app.cpu:period=1ms",     // cpuburst without delay
		"cpuburst:app.cpu:delay=1ms",      // cpuburst without period
		"drop:d:rate=0.1:delay=zzz",       // bad duration
		"drop:d:rate=0.1:count=-2",        // bad count
		"drop:d:rate=0.1:start=2s:end=1s", // end before start
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q): want error, got nil", spec)
		}
	}
}

// TestNilInjector checks the disabled state declines everything safely.
func TestNilInjector(t *testing.T) {
	var in *Injector
	eng := sim.NewEngine()
	if in.Enabled() {
		t.Error("nil injector reports enabled")
	}
	if d := in.FrameTx(eng, "x.tx"); d != (Decision{}) {
		t.Errorf("nil FrameTx = %+v", d)
	}
	if d := in.Disk(eng, "disk0"); d != (Decision{}) {
		t.Errorf("nil Disk = %+v", d)
	}
	in.Arm()
	in.Quiesce()
	in.AttachCPU("x.cpu", nil)
	if r := in.Report(); r != nil {
		t.Errorf("nil Report = %v", r)
	}
}

// drain runs every decision opportunity of one frame-drop run and returns
// the firing pattern.
func dropPattern(seed uint64, n int) string {
	eng := sim.NewEngine()
	in := New(eng, seed)
	in.Add(MustParseSpec("drop:*:rate=0.3")[0])
	in.Arm()
	var b strings.Builder
	for i := 0; i < n; i++ {
		if in.FrameTx(eng, "app.tx").Drop {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// TestDeterministicFromSeed checks a fault run replays bit-for-bit from its
// seed and diverges for a different seed.
func TestDeterministicFromSeed(t *testing.T) {
	a := dropPattern(42, 4096)
	b := dropPattern(42, 4096)
	if a != b {
		t.Fatal("same seed produced different decision streams")
	}
	if a == dropPattern(43, 4096) {
		t.Fatal("different seeds produced identical decision streams")
	}
	if !strings.Contains(a, "1") || !strings.Contains(a, "0") {
		t.Fatalf("degenerate stream at rate 0.3: %.64s", a)
	}
}

// TestSchedulesIndependent checks adding a second schedule does not perturb
// the first schedule's stream (per-schedule RNG isolation).
func TestSchedulesIndependent(t *testing.T) {
	run := func(extra bool) string {
		eng := sim.NewEngine()
		in := New(eng, 7)
		in.Add(MustParseSpec("drop:app.tx:rate=0.3")[0])
		if extra {
			in.Add(MustParseSpec("slowdisk:disk0:rate=0.9:delay=1ms")[0])
		}
		in.Arm()
		var b strings.Builder
		for i := 0; i < 512; i++ {
			if in.FrameTx(eng, "app.tx").Drop {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
			in.Disk(eng, "disk0") // interleave opportunities for the other class
		}
		return b.String()
	}
	if run(false) != run(true) {
		t.Fatal("installing an unrelated schedule changed the drop stream")
	}
}

// TestTargetMatching checks site selection: exact, prefix and wildcard.
func TestTargetMatching(t *testing.T) {
	cases := []struct {
		target, site string
		want         bool
	}{
		{"", "anything", true},
		{"*", "anything", true},
		{"client*", "client0.tx", true},
		{"client*", "client7.rx", true},
		{"client*", "app.tx", false},
		{"disk0", "disk0", true},
		{"disk0", "disk1", false},
		{"app.tx", "app.tx", true},
		{"app.tx", "app.rx", false},
	}
	for _, c := range cases {
		s := Schedule{Target: c.target}
		if got := s.matches(c.site); got != c.want {
			t.Errorf("target %q vs site %q: got %v, want %v", c.target, c.site, got, c.want)
		}
	}
}

// TestWindowAndCount checks Start/End bounds and the Count cap.
func TestWindowAndCount(t *testing.T) {
	eng := sim.NewEngine()
	in := New(eng, 1)
	in.Add(MustParseSpec("drop:*:rate=1:start=1ms:end=2ms")[0])
	in.Add(MustParseSpec("diskerr:disk0:rate=1:count=2")[0])
	in.Arm()

	if in.FrameTx(eng, "a.tx").Drop {
		t.Error("schedule fired before its start")
	}
	eng.Schedule(sim.Duration(1500*sim.Microsecond), func() {
		if !in.FrameTx(eng, "a.tx").Drop {
			t.Error("schedule inactive inside its window")
		}
	})
	eng.Schedule(sim.Duration(3*sim.Millisecond), func() {
		if in.FrameTx(eng, "a.tx").Drop {
			t.Error("schedule fired after its end")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	fired := 0
	for i := 0; i < 10; i++ {
		if in.Disk(eng, "disk0").Err {
			fired++
		}
	}
	if fired != 2 {
		t.Errorf("count=2 schedule fired %d times", fired)
	}
}

// TestCPUBurstLifecycle checks bursts occupy the CPU only between Arm and
// Quiesce, and that Quiesce lets the event loop drain.
func TestCPUBurstLifecycle(t *testing.T) {
	eng := sim.NewEngine()
	cpu := sim.NewResource(eng, "app.cpu")
	in := New(eng, 3)
	in.Add(MustParseSpec("cpuburst:app.cpu:period=1ms:delay=200µs")[0])
	in.AttachCPU("app.cpu", cpu)

	// Not armed: nothing scheduled, Run returns immediately.
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if eng.Now() != 0 {
		t.Fatalf("disarmed injector advanced the clock to %v", eng.Now())
	}

	in.Arm()
	if err := eng.RunFor(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	rep := in.Report()
	if len(rep) != 1 || rep[0].Injected < 5 {
		t.Fatalf("want ~10 bursts over 10ms, got %+v", rep)
	}
	if rep[0].Delayed != sim.Duration(rep[0].Injected)*200*sim.Microsecond {
		t.Errorf("delayed %v inconsistent with %d bursts", rep[0].Delayed, rep[0].Injected)
	}

	// Quiesce must cancel the pending burst so the drain terminates.
	in.Quiesce()
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if in.Enabled() {
		t.Error("quiesced injector reports enabled")
	}
}

// TestNewFromSpec checks the constructor wiring, including the empty spec.
func TestNewFromSpec(t *testing.T) {
	eng := sim.NewEngine()
	in, err := NewFromSpec(eng, 0, "")
	if err != nil || in != nil {
		t.Fatalf("empty spec: got (%v, %v), want (nil, nil)", in, err)
	}
	if _, err := NewFromSpec(eng, 0, "garbage"); err == nil {
		t.Fatal("bad spec accepted")
	}
	in, err = NewFromSpec(eng, 0, "frame-loss")
	if err != nil || in == nil {
		t.Fatalf("preset: got (%v, %v)", in, err)
	}
	if in.Seed() != 1 {
		t.Errorf("zero seed not normalized: %d", in.Seed())
	}
	if got := len(in.Schedules()); got != 1 {
		t.Errorf("schedules = %d, want 1", got)
	}
}
