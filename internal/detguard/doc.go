// Package detguard holds the repository's map-iteration determinism guard.
//
// Go randomizes map iteration order. On the simulation's event path an
// unordered iteration that schedules events, mutates model state, or formats
// replay-compared output silently breaks the bit-for-bit replay guarantee —
// the hardest class of bug to bisect, because every run "passes" alone and
// only pairs diverge.
//
// The guard (in detguard_test.go) type-checks every internal package and
// fails if any `for ... range` over a map lacks a `// det:` annotation on
// the same or the preceding line. The annotation is a claim the author
// makes about why the unordered iteration is safe:
//
//	// det: sorted       — keys are collected and sorted before use
//	// det: commutative  — the fold is order-independent (sums, max, set-insert)
//	// det: unordered    — output is explicitly unordered (debug, diagnostics)
//	// det: setup        — runs before/after the replayed window, not during it
//
// New map ranges without an annotation fail the guard, forcing the claim to
// be stated — and reviewed — where the iteration happens.
package detguard
