package detguard

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// listPackages resolves every internal package's directory and the export
// data of the full dependency graph, using the go tool itself so the guard
// sees exactly what the build sees.
func listPackages(t *testing.T) (pkgDirs map[string]string, exports map[string]string) {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	root := filepath.Dir(strings.TrimSpace(string(out)))

	cmd := exec.Command("go", "list", "-deps", "-export",
		"-f", "{{.ImportPath}}\t{{.Dir}}\t{{.Export}}", "./...")
	cmd.Dir = root
	cmd.Stderr = os.Stderr
	out, err = cmd.Output()
	if err != nil {
		t.Fatalf("go list -deps -export: %v", err)
	}
	pkgDirs = map[string]string{}
	exports = map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		parts := strings.Split(line, "\t")
		if len(parts) != 3 {
			continue
		}
		path, dir, export := parts[0], parts[1], parts[2]
		if export != "" {
			exports[path] = export
		}
		if strings.HasPrefix(path, "ncache/internal/") {
			pkgDirs[path] = dir
		}
	}
	if len(pkgDirs) == 0 {
		t.Fatal("go list resolved no ncache/internal packages")
	}
	return pkgDirs, exports
}

// TestNoUnannotatedMapRanges is the determinism guard: every `for ... range`
// over a map in every internal package must carry a `// det:` annotation on
// its own or the preceding line, stating why the unordered iteration cannot
// perturb the replayed schedule (see the package comment for the
// vocabulary). The check is type-based — renaming a variable or aliasing a
// map type does not evade it.
func TestNoUnannotatedMapRanges(t *testing.T) {
	pkgDirs, exports := listPackages(t)

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	paths := make([]string, 0, len(pkgDirs))
	for p := range pkgDirs {
		paths = append(paths, p) // det: sorted
	}
	sort.Strings(paths)

	var violations []string
	for _, path := range paths {
		dir := pkgDirs[path]
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		var files []*ast.File
		// detLines[filename] holds the lines carrying a det: annotation.
		detLines := map[string]map[int]bool{}
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			full := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatalf("parse %s: %v", full, err)
			}
			files = append(files, f)
			lines := map[int]bool{}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if strings.Contains(c.Text, "det:") {
						lines[fset.Position(c.Pos()).Line] = true
					}
				}
			}
			detLines[full] = lines
		}
		if len(files) == 0 {
			continue
		}
		info := &types.Info{Types: map[ast.Expr]types.TypeAndValue{}}
		conf := types.Config{Importer: imp, FakeImportC: true}
		if _, err := conf.Check(path, fset, files, info); err != nil {
			t.Fatalf("typecheck %s: %v", path, err)
		}
		for _, f := range files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := info.Types[rs.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				pos := fset.Position(rs.Pos())
				annotated := detLines[pos.Filename][pos.Line] || detLines[pos.Filename][pos.Line-1]
				if !annotated {
					rel := pos.Filename
					if i := strings.Index(rel, "internal"+string(filepath.Separator)); i >= 0 {
						rel = rel[i:]
					}
					violations = append(violations, fmt.Sprintf("%s:%d", rel, pos.Line))
				}
				return true
			})
		}
	}
	if len(violations) > 0 {
		t.Errorf("map iterations without a `// det:` determinism annotation "+
			"(unordered map ranges on the event path break bit-for-bit replay; "+
			"annotate why this one is safe — see internal/detguard/doc.go):\n  %s",
			strings.Join(violations, "\n  "))
	}
}
