package bench

import (
	"fmt"
	"strings"
	"time"

	"ncache/internal/extfs"
	"ncache/internal/metrics"
	"ncache/internal/nfs"
	"ncache/internal/passthru"
	"ncache/internal/sim"
	"ncache/internal/storage"
	"ncache/internal/trace"
	"ncache/internal/workload"
)

// AvailPolicies are the mirror read-selection policies the NetCAS-style
// comparison table sweeps.
var AvailPolicies = []string{"primary-first", "round-robin", "least-latency"}

// AvailBucket is one timeline sample of the fig-avail experiment.
type AvailBucket struct {
	// StartMs/EndMs bound the bucket relative to the measurement start.
	StartMs float64
	EndMs   float64
	// OpsPerSec/MBs are the mixed read+write service rate in the bucket.
	OpsPerSec float64
	MBs       float64
	// ReadP99Us/WriteP99Us are the bucket's client-observed tails.
	ReadP99Us  float64
	WriteP99Us float64
	// Errors are client-escaped operation failures (must stay 0).
	Errors uint64
	// States snapshots each arm's breaker state at the bucket edge.
	States []string
	// Vol is the per-bucket delta of the volume counters (DirtyBlocks is
	// the gauge at the bucket edge).
	Vol metrics.Volume
}

// AvailPolicyPoint is one row of the read-policy comparison: the same
// slow-primary-arm schedule served under a different selection policy.
type AvailPolicyPoint struct {
	Policy        string
	ThroughputMBs float64
	OpsPerSec     float64
	ReadP99Us     float64
	// ArmReads is the read split across the two arms.
	ArmReads []uint64
	Errors   uint64
}

// AvailReport is the fig-avail output: the failure → circuit-open →
// recovery → resync timeline on a two-arm mirror, phase averages for the
// acceptance check, and the policy table.
type AvailReport struct {
	Buckets []AvailBucket
	// OutageStartMs/OutageEndMs mark the injected disk-error window
	// relative to the measurement start.
	OutageStartMs float64
	OutageEndMs   float64
	// HealthyOps/OutageOps/RecoveredOps are phase-average service rates:
	// before the failure, during the open-circuit window, and after
	// recovery + resync.
	HealthyOps   float64
	OutageOps    float64
	RecoveredOps float64
	// TotalErrors counts client-escaped errors over the whole timeline.
	TotalErrors uint64
	// FinalStates/FinalVol snapshot the mirror after the post-run drain;
	// Resynced reports full recovery (all arms closed, dirty log empty,
	// at least one completed resync).
	FinalStates []string
	FinalVol    metrics.Volume
	Resynced    bool
	Policies    []AvailPolicyPoint
}

// volCounters aggregates a volume's per-arm stats into the metrics struct.
func volCounters(stats []storage.ArmStats) metrics.Volume {
	var v metrics.Volume
	for _, s := range stats {
		v.Reads += s.Reads
		v.Writes += s.Writes
		v.Errors += s.Errors
		v.Ejections += s.Ejections
		v.Probes += s.Probes
		v.Resyncs += s.Resyncs
		v.ResyncBlocks += s.ResyncBlocks
		v.DirtyBlocks += uint64(s.DirtyBlocks)
	}
	return v
}

// armStates lists each arm's breaker state.
func armStates(stats []storage.ArmStats) []string {
	out := make([]string, len(stats))
	for i, s := range stats {
		out[i] = s.State.String()
	}
	return out
}

// opP99Us extracts one op's p99 from a summary, in microseconds.
func opP99Us(s *trace.Summary, op string) float64 {
	if s == nil {
		return 0
	}
	for _, o := range s.Ops {
		if o.Op == op {
			return float64(o.P99) / 1e3
		}
	}
	return 0
}

// availBuckets is the timeline resolution; the outage window spans buckets
// [availBuckets/6, availBuckets/2).
const availBuckets = 24

// RunAvail measures availability through an arm failure on a two-arm
// mirrored target: a mixed read/write load runs continuously while the
// second arm's disks hard-fail for a third of the window — the breaker
// ejects the arm, the survivor keeps serving, and when the errors stop the
// half-open probe readmits the arm through a dirty-region resync. The
// timeline is sampled in buckets; a NetCAS-style policy comparison under a
// slow (not failing) arm follows.
func RunAvail(opt Options) (AvailReport, error) {
	opt = opt.withDefaults()
	fileBlocks := int64(96*1024) / int64(opt.Scale)
	cs := clusterSpec{
		mode:          passthru.NCache,
		nics:          1,
		clients:       2,
		blocksPerDisk: fileBlocks/4 + 8192,
		fsCacheBlocks: 8192,
		ncacheBytes:   64 << 20,
		workers:       opt.Workers,
		arms:          2,
		// The async write-back pipeline streams dirty blocks to the mirror
		// continuously — that lower-write traffic is what the breaker sees
		// failing during the arm outage.
		writeback: passthru.WritebackConfig{Enabled: true},
	}
	var spec extfs.FileSpec
	cl, err := cs.build(func(f *extfs.Formatter) error {
		var err error
		spec, err = f.AddFile("bigfile", uint64(fileBlocks)*extfs.BlockSize, nil)
		return err
	})
	if err != nil {
		return AvailReport{}, err
	}
	defer cl.Close()
	fh, err := lookupFH(cl, 0, "bigfile")
	if err != nil {
		return AvailReport{}, err
	}
	clients := make([]*nfs.Client, 0, len(cl.Clients))
	for _, h := range cl.Clients {
		clients = append(clients, h.NFS)
	}
	tr := trace.NewTracer(cl.Eng, "fig-avail")
	reads := &workload.NFSReadLoad{
		Clients:     clients,
		FH:          fh,
		FileSize:    spec.Size,
		RequestSize: 16 * 1024,
		Pattern:     workload.Sequential,
		Concurrency: opt.Concurrency,
		Tracer:      tr,
	}
	wc := opt.Concurrency / 4
	if wc == 0 {
		wc = 1
	}
	writes := &workload.NFSWriteLoad{
		Clients:     clients,
		FH:          fh,
		FileSize:    spec.Size,
		RequestSize: 16 * 1024,
		Concurrency: wc,
		Tracer:      tr,
	}
	reads.Start()
	writes.Start()
	if err := cl.Eng.RunFor(opt.Warmup); err != nil {
		return AvailReport{}, fmt.Errorf("warmup: %w", err)
	}

	// Anchor the outage window in absolute virtual time now that warm-up
	// has consumed its (deterministic) share of the clock.
	t0 := cl.Eng.Now()
	bucket := opt.Window / availBuckets
	outStart := t0 + sim.Time(bucket*(availBuckets/6))
	outEnd := t0 + sim.Time(bucket*(availBuckets/2))
	faultSpec := fmt.Sprintf("diskerr:s0m1.disk*:rate=1:start=%s:end=%s",
		time.Duration(outStart), time.Duration(outEnd))
	seed := opt.FaultSeed
	if seed == 0 {
		seed = 1
	}
	in, err := cl.InstallFaults(seed, faultSpec)
	if err != nil {
		return AvailReport{}, err
	}
	in.Arm()

	rep := AvailReport{
		OutageStartMs: float64(outStart-t0) / 1e6,
		OutageEndMs:   float64(outEnd-t0) / 1e6,
	}
	ops0, bytes0, errs0 := countersSum(reads, writes)
	vol0 := volCounters(cl.App.Volume.Stats())
	for i := 0; i < availBuckets; i++ {
		tr.ResetStats()
		if err := cl.Eng.RunFor(bucket); err != nil {
			return AvailReport{}, fmt.Errorf("bucket %d: %w", i, err)
		}
		ops1, bytes1, errs1 := countersSum(reads, writes)
		vol1 := volCounters(cl.App.Volume.Stats())
		sum := tr.Summary()
		b := AvailBucket{
			StartMs:    float64(bucket) * float64(i) / 1e6,
			EndMs:      float64(bucket) * float64(i+1) / 1e6,
			OpsPerSec:  float64(ops1-ops0) / bucket.Seconds(),
			MBs:        float64(bytes1-bytes0) / bucket.Seconds() / 1e6,
			ReadP99Us:  opP99Us(sum, "read"),
			WriteP99Us: opP99Us(sum, "write"),
			Errors:     errs1 - errs0,
			States:     armStates(cl.App.Volume.Stats()),
			Vol:        vol1.Sub(vol0),
		}
		rep.Buckets = append(rep.Buckets, b)
		rep.TotalErrors += b.Errors
		ops0, bytes0, errs0 = ops1, bytes1, errs1
		vol0 = vol1
	}
	reads.Stop()
	writes.Stop()
	in.Quiesce()
	if err := cl.Eng.Run(); err != nil {
		return AvailReport{}, fmt.Errorf("drain: %w", err)
	}

	final := cl.App.Volume.Stats()
	rep.FinalStates = armStates(final)
	rep.FinalVol = volCounters(final)
	rep.Resynced = rep.FinalVol.Resyncs >= 1 && rep.FinalVol.DirtyBlocks == 0
	for _, s := range final {
		if s.State != storage.ArmClosed {
			rep.Resynced = false
		}
	}
	rep.HealthyOps = phaseOps(rep.Buckets, 0, availBuckets/6)
	rep.OutageOps = phaseOps(rep.Buckets, availBuckets/6, availBuckets/2)
	rep.RecoveredOps = phaseOps(rep.Buckets, availBuckets*3/4, availBuckets)

	// Policy comparison: same mirror, primary arm slowed (2 ms per disk
	// I/O) instead of failed — the regime where selection policy, not the
	// breaker, decides service quality.
	for _, pol := range AvailPolicies {
		p, err := runAvailPolicyPoint(opt, pol)
		if err != nil {
			return AvailReport{}, fmt.Errorf("fig-avail policy %s: %w", pol, err)
		}
		rep.Policies = append(rep.Policies, p)
	}
	return rep, nil
}

// countersSum totals two loads' counters.
func countersSum(a, b workload.Load) (uint64, uint64, uint64) {
	ao, ab, ae := a.Counters()
	bo, bb, be := b.Counters()
	return ao + bo, ab + bb, ae + be
}

// phaseOps averages bucket service rates over [from, to).
func phaseOps(buckets []AvailBucket, from, to int) float64 {
	if to > len(buckets) {
		to = len(buckets)
	}
	if from >= to {
		return 0
	}
	sum := 0.0
	for _, b := range buckets[from:to] {
		sum += b.OpsPerSec
	}
	return sum / float64(to-from)
}

// runAvailPolicyPoint measures an all-miss read point on a two-arm mirror
// whose primary arm's disks carry a 2 ms injected latency.
func runAvailPolicyPoint(opt Options, policy string) (AvailPolicyPoint, error) {
	opt.Latency = true
	fileBlocks := int64(96*1024) / int64(opt.Scale)
	cs := clusterSpec{
		mode:          passthru.NCache,
		nics:          1,
		clients:       2,
		blocksPerDisk: fileBlocks/4 + 8192,
		fsCacheBlocks: 8192,
		ncacheBytes:   64 << 20,
		workers:       opt.Workers,
		arms:          2,
		armPolicy:     policy,
		faultSpec:     "slowdisk:disk*:rate=1:delay=2ms",
		faultSeed:     opt.FaultSeed,
	}
	var spec extfs.FileSpec
	cl, err := cs.build(func(f *extfs.Formatter) error {
		var err error
		spec, err = f.AddFile("bigfile", uint64(fileBlocks)*extfs.BlockSize, nil)
		return err
	})
	if err != nil {
		return AvailPolicyPoint{}, err
	}
	defer cl.Close()
	fh, err := lookupFH(cl, 0, "bigfile")
	if err != nil {
		return AvailPolicyPoint{}, err
	}
	clients := make([]*nfs.Client, 0, len(cl.Clients))
	for _, h := range cl.Clients {
		clients = append(clients, h.NFS)
	}
	load := &workload.NFSReadLoad{
		Clients:     clients,
		FH:          fh,
		FileSize:    spec.Size,
		RequestSize: 16 * 1024,
		Pattern:     workload.Sequential,
		Concurrency: opt.Concurrency,
	}
	np, err := runNFSLoad(cl, load, opt, 16)
	if err != nil {
		return AvailPolicyPoint{}, err
	}
	p := AvailPolicyPoint{
		Policy:        policy,
		ThroughputMBs: np.ThroughputMBs,
		OpsPerSec:     np.OpsPerSec,
		ReadP99Us:     readP99(np),
		Errors:        np.Errors,
	}
	for _, s := range cl.App.Volume.Stats() {
		p.ArmReads = append(p.ArmReads, s.Reads)
	}
	return p, nil
}

// FormatAvail renders the fig-avail timeline, phase summary and policy
// table.
func FormatAvail(r AvailReport) string {
	var b strings.Builder
	b.WriteString("fig-avail: service through arm failure, circuit-open, recovery and resync\n")
	fmt.Fprintf(&b, "two-arm mirror, mixed 16KB read+write load; arm m1 disks hard-fail %.0f–%.0f ms\n\n",
		r.OutageStartMs, r.OutageEndMs)
	fmt.Fprintf(&b, "%7s %9s %8s %10s %10s %5s %-15s %7s %7s %7s\n",
		"t_ms", "ops/s", "MB/s", "rd_p99µs", "wr_p99µs", "errs", "arms", "ejects", "resync", "dirty")
	for _, bk := range r.Buckets {
		fmt.Fprintf(&b, "%7.1f %9.0f %8.1f %10.1f %10.1f %5d %-15s %7d %7d %7d\n",
			bk.EndMs, bk.OpsPerSec, bk.MBs, bk.ReadP99Us, bk.WriteP99Us, bk.Errors,
			strings.Join(bk.States, "/"), bk.Vol.Ejections, bk.Vol.ResyncBlocks, bk.Vol.DirtyBlocks)
	}
	outagePct := 0.0
	if r.HealthyOps > 0 {
		outagePct = 100 * r.OutageOps / r.HealthyOps
	}
	recoveredPct := 0.0
	if r.HealthyOps > 0 {
		recoveredPct = 100 * r.RecoveredOps / r.HealthyOps
	}
	fmt.Fprintf(&b, "\nphase averages: healthy %.0f ops/s | outage %.0f ops/s (%.0f%% of healthy) | recovered %.0f ops/s (%.0f%%)\n",
		r.HealthyOps, r.OutageOps, outagePct, r.RecoveredOps, recoveredPct)
	fmt.Fprintf(&b, "escaped client errors: %d\n", r.TotalErrors)
	fmt.Fprintf(&b, "final mirror state: %s, %s, resynced=%v\n",
		strings.Join(r.FinalStates, "/"), r.FinalVol, r.Resynced)

	b.WriteString("\nread-policy comparison (primary arm +2ms per disk I/O, all-miss 16KB reads):\n")
	fmt.Fprintf(&b, "%-14s %9s %9s %10s %6s %s\n",
		"policy", "MB/s", "ops/s", "rd_p99µs", "errs", "arm reads m0/m1")
	for _, p := range r.Policies {
		split := make([]string, len(p.ArmReads))
		for i, n := range p.ArmReads {
			split[i] = fmt.Sprintf("%d", n)
		}
		fmt.Fprintf(&b, "%-14s %9.1f %9.0f %10.1f %6d %s\n",
			p.Policy, p.ThroughputMBs, p.OpsPerSec, p.ReadP99Us, p.Errors,
			strings.Join(split, "/"))
	}
	return b.String()
}
