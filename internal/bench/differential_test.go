package bench

import (
	"reflect"
	"testing"
)

// The registered-receive ingress path (RX-ring buffer adoption at NIC
// delivery) must be a pure host-side memory optimization: at equal seeds and
// flags, every simulated quantity — throughput, CPU, link utilization,
// latency summaries, fault-recovery counters — must be bit-identical to the
// legacy path that leaves arriving buffers in their sender's pools. These
// differential tests hold the two paths against each other for one release,
// until the legacy path is removed.

// diffPoints fails the test if two point slices are not exactly equal.
func diffPoints(t *testing.T, what string, registered, legacy interface{}) {
	t.Helper()
	if !reflect.DeepEqual(registered, legacy) {
		t.Fatalf("%s: registered-RX ingress diverged from legacy ingress\nregistered: %+v\nlegacy:     %+v",
			what, registered, legacy)
	}
}

func TestLegacyIngressDifferentialFig5b(t *testing.T) {
	opt := quickOpts()
	registered, err := RunFig5b(opt)
	if err != nil {
		t.Fatalf("fig5b registered ingress: %v", err)
	}
	opt.LegacyIngress = true
	legacy, err := RunFig5b(opt)
	if err != nil {
		t.Fatalf("fig5b legacy ingress: %v", err)
	}
	diffPoints(t, "fig5b", registered, legacy)
}

func TestLegacyIngressDifferentialFigFault(t *testing.T) {
	opt := faultOpts(t, "") // RunFigFault installs its own scenario specs
	registered, err := RunFigFault(opt)
	if err != nil {
		t.Fatalf("fig-fault registered ingress: %v", err)
	}
	opt.LegacyIngress = true
	legacy, err := RunFigFault(opt)
	if err != nil {
		t.Fatalf("fig-fault legacy ingress: %v", err)
	}
	diffPoints(t, "fig-fault", registered, legacy)
}
