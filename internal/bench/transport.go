package bench

import (
	"fmt"
	"strings"

	"ncache/internal/extfs"
	"ncache/internal/nfs"
	"ncache/internal/passthru"
	"ncache/internal/workload"
)

// TransportPoint is one measured transport-comparison point.
type TransportPoint struct {
	Mode          passthru.Mode
	Transport     string // an NFSTransports name
	ThroughputMBs float64
	OpsPerSec     float64
	ServerCPU     float64
	ServerPkts    float64 // packets per request (tx+rx), the §5.5 quantity
	Errors        uint64
	// Recovery activity when the run injects faults: TCP segment
	// retransmissions (RTO firings and fast retransmits broken out) and
	// datagram-RPC retransmissions. Zero on fault-free runs.
	TCPRetransmits uint64
	TCPRTOs        uint64
	TCPFastRtx     uint64
	RPCRetransmits uint64
}

// NFSTransport is one way to reach the NFS service: a report name and a
// constructor building the per-host clients. The comparison adds a
// transport by adding an entry here, not by branching on a name.
type NFSTransport struct {
	Name    string
	Connect func(cl *passthru.Cluster) ([]*nfs.Client, error)
}

// NFSTransports lists the compared transports in report order.
var NFSTransports = []NFSTransport{
	{Name: "udp", Connect: connectNFSUDP},
	{Name: "tcp", Connect: connectNFSTCP},
}

// connectNFSUDP uses each host's mounted datagram client (the paper's NFS
// transport).
func connectNFSUDP(cl *passthru.Cluster) ([]*nfs.Client, error) {
	clients := make([]*nfs.Client, 0, len(cl.Clients))
	for _, h := range cl.Clients {
		clients = append(clients, h.NFS)
	}
	return clients, nil
}

// connectNFSTCP dials a record-marked stream client per host, spread across
// the server NICs like the datagram clients are.
func connectNFSTCP(cl *passthru.Cluster) ([]*nfs.Client, error) {
	clients := make([]*nfs.Client, 0, len(cl.Clients))
	var dialErr error
	for i, h := range cl.Clients {
		nic := cl.App.Node.NICs()[i%len(cl.App.Node.NICs())]
		h.DialNFSTCP(nic.Addr, func(c *nfs.Client, err error) {
			if err != nil {
				if dialErr == nil {
					dialErr = err
				}
				return
			}
			clients = append(clients, c)
		})
	}
	if err := cl.Eng.Run(); err != nil {
		return nil, err
	}
	if dialErr != nil {
		return nil, dialErr
	}
	return clients, nil
}

// RunTransportComparison measures the all-hit 32 KB workload over each
// NFSTransports entry in the Original and NCache configurations. The paper
// explains kHTTPd's smaller gains partly by TCP's higher per-packet overhead
// (§5.5); running the *same* NFS service over both transports isolates
// exactly that effect. With Options.FaultSpec set the run additionally
// exercises loss recovery: datagram RPC retransmission over UDP against TCP
// RTO/fast-retransmit, with every escaped error counted.
func RunTransportComparison(opt Options) ([]TransportPoint, error) {
	opt = opt.withDefaults()
	var out []TransportPoint
	for _, mode := range []passthru.Mode{passthru.Original, passthru.NCache} {
		for _, tr := range NFSTransports {
			p, err := runTransportPoint(opt, mode, tr)
			if err != nil {
				return nil, fmt.Errorf("transport %s/%s: %w", mode, tr.Name, err)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

func runTransportPoint(opt Options, mode passthru.Mode, tr NFSTransport) (TransportPoint, error) {
	const hotBytes = 5 << 20
	cs := clusterSpec{
		mode:          mode,
		nics:          2,
		clients:       2,
		blocksPerDisk: 16 * 1024,
		fsCacheBlocks: 8192,
		ncacheBytes:   64 << 20,
		faultSpec:     opt.FaultSpec,
		faultSeed:     opt.FaultSeed,
		workers:       opt.Workers,
	}
	cl, err := cs.build(func(f *extfs.Formatter) error {
		_, err := f.AddFile("hotfile", hotBytes, nil)
		return err
	})
	if err != nil {
		return TransportPoint{}, err
	}
	defer cl.Close()
	fh, err := lookupFH(cl, 0, "hotfile")
	if err != nil {
		return TransportPoint{}, err
	}
	if err := prefill(cl, fh, hotBytes); err != nil {
		return TransportPoint{}, err
	}

	// Connections are established fault-free; injection covers the load.
	clients, err := tr.Connect(cl)
	if err != nil {
		return TransportPoint{}, err
	}

	load := &workload.NFSReadLoad{
		Clients:     clients,
		FH:          fh,
		FileSize:    hotBytes,
		RequestSize: 32 * 1024,
		Pattern:     workload.HotSet,
		Concurrency: opt.Concurrency,
	}
	runner := &workload.Runner{Eng: cl.Eng, Warmup: opt.Warmup, Window: opt.Window}
	p := TransportPoint{Mode: mode, Transport: tr.Name}
	var pktsBefore uint64
	cl.Faults.Arm()
	m, err := runner.Run(load,
		func() {
			resetClusterStats(cl)
			t := cl.App.Node.NetTotals()
			pktsBefore = t.PacketsTx + t.PacketsRx
		},
		func() {
			p.ServerCPU = cl.App.Node.CPU.Utilization()
			t := cl.App.Node.NetTotals()
			if ops, _, _ := load.Counters(); ops > 0 {
				// Approximate per-request packets over the window.
				p.ServerPkts = float64(t.PacketsTx+t.PacketsRx-pktsBefore) / float64(ops)
			}
			cl.Faults.Quiesce()
		})
	if err != nil {
		return TransportPoint{}, err
	}
	p.ThroughputMBs = m.Throughput() / 1e6
	p.OpsPerSec = m.OpsPerSec()
	p.Errors = m.Errors
	if m.Ops > 0 && p.ServerPkts > 0 {
		// Correct the per-request packet estimate using the measured op
		// count (the load counter is cumulative; window ops are m.Ops).
		t := cl.App.Node.NetTotals()
		p.ServerPkts = float64(t.PacketsTx+t.PacketsRx-pktsBefore) / float64(m.Ops)
	}
	if cl.Faults != nil {
		p.TCPRetransmits, p.TCPRTOs, p.TCPFastRtx, _, _ = cl.TCPCounters()
		p.RPCRetransmits, _, _, _ = cl.FaultCounters()
	}
	return p, nil
}

// FormatTransportPoints renders the comparison.
func FormatTransportPoints(points []TransportPoint) string {
	base := map[passthru.Mode]map[string]TransportPoint{}
	faulty := false
	for _, p := range points {
		if base[p.Mode] == nil {
			base[p.Mode] = map[string]TransportPoint{}
		}
		base[p.Mode][p.Transport] = p
		if p.TCPRetransmits+p.RPCRetransmits+p.Errors > 0 {
			faulty = true
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Transport comparison: NFS all-hit 32 KB over UDP vs TCP (§5.5 extension)\n")
	fmt.Fprintf(&b, "%-10s %-5s %12s %9s %9s %12s\n", "config", "xport", "MB/s", "ops/s", "srvCPU%", "pkts/req")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10s %-5s %12.1f %9.0f %9.1f %12.1f\n",
			p.Mode, p.Transport, p.ThroughputMBs, p.OpsPerSec, p.ServerCPU*100, p.ServerPkts)
	}
	for _, mode := range []passthru.Mode{passthru.Original, passthru.NCache} {
		u, okU := base[mode]["udp"]
		t, okT := base[mode]["tcp"]
		if okU && okT && t.ThroughputMBs > 0 {
			fmt.Fprintf(&b, "%s: TCP costs %.1f%% of UDP throughput (%.1f vs %.1f pkts/req)\n",
				mode, (1-t.ThroughputMBs/u.ThroughputMBs)*100, t.ServerPkts, u.ServerPkts)
		}
	}
	if faulty {
		b.WriteString("\nloss recovery (injected faults):\n")
		fmt.Fprintf(&b, "%-10s %-5s %9s %7s %8s %9s %6s\n",
			"config", "xport", "tcpRtx", "rtos", "fastRtx", "rpcRtx", "errs")
		for _, p := range points {
			fmt.Fprintf(&b, "%-10s %-5s %9d %7d %8d %9d %6d\n",
				p.Mode, p.Transport, p.TCPRetransmits, p.TCPRTOs, p.TCPFastRtx,
				p.RPCRetransmits, p.Errors)
		}
	}
	return b.String()
}
