package bench

import (
	"fmt"
	"strings"

	"ncache/internal/extfs"
	"ncache/internal/nfs"
	"ncache/internal/passthru"
	"ncache/internal/workload"
)

// TransportPoint is one measured transport-comparison point.
type TransportPoint struct {
	Mode          passthru.Mode
	Transport     string // "udp" or "tcp"
	ThroughputMBs float64
	OpsPerSec     float64
	ServerCPU     float64
	ServerPkts    float64 // packets per request (tx+rx), the §5.5 quantity
}

// RunTransportComparison measures the all-hit 32 KB workload over NFS/UDP
// and NFS/TCP in the Original and NCache configurations. The paper explains
// kHTTPd's smaller gains partly by TCP's higher per-packet overhead (§5.5);
// running the *same* NFS service over both transports isolates exactly that
// effect.
func RunTransportComparison(opt Options) ([]TransportPoint, error) {
	opt = opt.withDefaults()
	var out []TransportPoint
	for _, mode := range []passthru.Mode{passthru.Original, passthru.NCache} {
		for _, transport := range []string{"udp", "tcp"} {
			p, err := runTransportPoint(opt, mode, transport)
			if err != nil {
				return nil, fmt.Errorf("transport %s/%s: %w", mode, transport, err)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

func runTransportPoint(opt Options, mode passthru.Mode, transport string) (TransportPoint, error) {
	const hotBytes = 5 << 20
	cs := clusterSpec{
		mode:          mode,
		nics:          2,
		clients:       2,
		blocksPerDisk: 16 * 1024,
		fsCacheBlocks: 8192,
		ncacheBytes:   64 << 20,
	}
	cl, err := cs.build(func(f *extfs.Formatter) error {
		_, err := f.AddFile("hotfile", hotBytes, nil)
		return err
	})
	if err != nil {
		return TransportPoint{}, err
	}
	fh, err := lookupFH(cl, 0, "hotfile")
	if err != nil {
		return TransportPoint{}, err
	}
	if err := prefill(cl, fh, hotBytes); err != nil {
		return TransportPoint{}, err
	}

	clients := make([]*nfs.Client, 0, len(cl.Clients))
	switch transport {
	case "udp":
		for _, h := range cl.Clients {
			clients = append(clients, h.NFS)
		}
	case "tcp":
		var dialErr error
		for i, h := range cl.Clients {
			nic := cl.App.Node.NICs()[i%len(cl.App.Node.NICs())]
			h.DialNFSTCP(nic.Addr, func(c *nfs.Client, err error) {
				if err != nil && dialErr == nil {
					dialErr = err
					return
				}
				clients = append(clients, c)
			})
		}
		if err := cl.Eng.Run(); err != nil {
			return TransportPoint{}, err
		}
		if dialErr != nil {
			return TransportPoint{}, dialErr
		}
	default:
		return TransportPoint{}, fmt.Errorf("unknown transport %q", transport)
	}

	load := &workload.NFSReadLoad{
		Clients:     clients,
		FH:          fh,
		FileSize:    hotBytes,
		RequestSize: 32 * 1024,
		Pattern:     workload.HotSet,
		Concurrency: opt.Concurrency,
	}
	runner := &workload.Runner{Eng: cl.Eng, Warmup: opt.Warmup, Window: opt.Window}
	p := TransportPoint{Mode: mode, Transport: transport}
	var pktsBefore uint64
	m, err := runner.Run(load,
		func() {
			resetClusterStats(cl)
			t := cl.App.Node.NetTotals()
			pktsBefore = t.PacketsTx + t.PacketsRx
		},
		func() {
			p.ServerCPU = cl.App.Node.CPU.Utilization()
			t := cl.App.Node.NetTotals()
			if ops, _, _ := load.Counters(); ops > 0 {
				// Approximate per-request packets over the window.
				p.ServerPkts = float64(t.PacketsTx+t.PacketsRx-pktsBefore) / float64(ops)
			}
		})
	if err != nil {
		return TransportPoint{}, err
	}
	p.ThroughputMBs = m.Throughput() / 1e6
	p.OpsPerSec = m.OpsPerSec()
	if m.Ops > 0 && p.ServerPkts > 0 {
		// Correct the per-request packet estimate using the measured op
		// count (the load counter is cumulative; window ops are m.Ops).
		t := cl.App.Node.NetTotals()
		p.ServerPkts = float64(t.PacketsTx+t.PacketsRx-pktsBefore) / float64(m.Ops)
	}
	return p, nil
}

// FormatTransportPoints renders the comparison.
func FormatTransportPoints(points []TransportPoint) string {
	base := map[passthru.Mode]map[string]TransportPoint{}
	for _, p := range points {
		if base[p.Mode] == nil {
			base[p.Mode] = map[string]TransportPoint{}
		}
		base[p.Mode][p.Transport] = p
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Transport comparison: NFS all-hit 32 KB over UDP vs TCP (§5.5 extension)\n")
	fmt.Fprintf(&b, "%-10s %-5s %12s %9s %9s %12s\n", "config", "xport", "MB/s", "ops/s", "srvCPU%", "pkts/req")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10s %-5s %12.1f %9.0f %9.1f %12.1f\n",
			p.Mode, p.Transport, p.ThroughputMBs, p.OpsPerSec, p.ServerCPU*100, p.ServerPkts)
	}
	for _, mode := range []passthru.Mode{passthru.Original, passthru.NCache} {
		u, okU := base[mode]["udp"]
		t, okT := base[mode]["tcp"]
		if okU && okT && t.ThroughputMBs > 0 {
			fmt.Fprintf(&b, "%s: TCP costs %.1f%% of UDP throughput (%.1f vs %.1f pkts/req)\n",
				mode, (1-t.ThroughputMBs/u.ThroughputMBs)*100, t.ServerPkts, u.ServerPkts)
		}
	}
	return b.String()
}
