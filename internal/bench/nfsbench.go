package bench

import (
	"fmt"

	"ncache/internal/extfs"
	"ncache/internal/nfs"
	"ncache/internal/passthru"
	"ncache/internal/workload"
)

// RequestSizesKB is the request-size sweep of Figures 4 and 5.
var RequestSizesKB = []int{4, 8, 16, 32}

// RunFig4 reproduces Figure 4: the all-miss workload (sequential read of a
// file far larger than any cache) across the three configurations,
// sweeping the NFS request size. Reported: throughput (a) and NFS server
// CPU utilization (b); storage CPU shows who saturates.
func RunFig4(opt Options) ([]NFSPoint, error) {
	opt = opt.withDefaults()
	// File large enough that the measured window never wraps into cached
	// territory; caches deliberately small relative to it.
	const fileBlocks = 96 * 1024 // 384 MB
	var out []NFSPoint
	for _, mode := range Modes {
		for _, kb := range RequestSizesKB {
			p, err := runFig4Point(opt, mode, kb, fileBlocks)
			if err != nil {
				return nil, fmt.Errorf("fig4 %s %dKB: %w", mode, kb, err)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

func runFig4Point(opt Options, mode passthru.Mode, reqKB int, fileBlocks int64) (NFSPoint, error) {
	cs := clusterSpec{
		mode:          mode,
		nics:          1,
		clients:       2,
		blocksPerDisk: fileBlocks/4 + 8192,
		fsCacheBlocks: 8192,     // 32 MB: all-miss regardless of mode
		ncacheBytes:   64 << 20, // misses don't reuse it; keep memory low
		faultSpec:     opt.FaultSpec,
		faultSeed:     opt.FaultSeed,
		workers:       opt.Workers,
	}
	var spec extfs.FileSpec
	cl, err := cs.build(func(f *extfs.Formatter) error {
		var err error
		spec, err = f.AddFile("bigfile", uint64(fileBlocks)*extfs.BlockSize, nil)
		return err
	})
	if err != nil {
		return NFSPoint{}, err
	}
	defer cl.Close()
	fh, err := lookupFH(cl, 0, "bigfile")
	if err != nil {
		return NFSPoint{}, err
	}
	clients := make([]*nfs.Client, 0, len(cl.Clients))
	for _, h := range cl.Clients {
		clients = append(clients, h.NFS)
	}
	load := &workload.NFSReadLoad{
		Clients:     clients,
		FH:          fh,
		FileSize:    spec.Size,
		RequestSize: reqKB * 1024,
		Pattern:     workload.Sequential,
		Concurrency: opt.Concurrency,
	}
	return runNFSLoad(cl, load, opt, reqKB)
}

// RunFig5a reproduces Figure 5(a): the all-hit workload (5 MB hot file)
// with a single NIC — the link is the bottleneck; the interesting output is
// the server CPU utilization saved by each configuration.
func RunFig5a(opt Options) ([]NFSPoint, error) {
	return runFig5(opt, 1)
}

// RunFig5b reproduces Figure 5(b): the same all-hit workload with two NICs
// (and clients split across them) — the CPU becomes the bottleneck and the
// copy savings convert into throughput.
func RunFig5b(opt Options) ([]NFSPoint, error) {
	return runFig5(opt, 2)
}

func runFig5(opt Options, nics int) ([]NFSPoint, error) {
	opt = opt.withDefaults()
	var out []NFSPoint
	for _, mode := range Modes {
		for _, kb := range RequestSizesKB {
			p, err := runFig5Point(opt, mode, kb, nics)
			if err != nil {
				return nil, fmt.Errorf("fig5 %s %dKB nics=%d: %w", mode, kb, nics, err)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

func runFig5Point(opt Options, mode passthru.Mode, reqKB, nics int) (NFSPoint, error) {
	const hotBytes = 5 << 20 // the paper's 5 MB hot set
	cs := clusterSpec{
		mode:          mode,
		nics:          nics,
		clients:       2,
		blocksPerDisk: 16 * 1024,
		fsCacheBlocks: 8192, // 32 MB: the hot set always fits
		ncacheBytes:   64 << 20,
		faultSpec:     opt.FaultSpec,
		faultSeed:     opt.FaultSeed,
		workers:       opt.Workers,
	}
	cl, err := cs.build(func(f *extfs.Formatter) error {
		_, err := f.AddFile("hotfile", hotBytes, nil)
		return err
	})
	if err != nil {
		return NFSPoint{}, err
	}
	defer cl.Close()
	fh, err := lookupFH(cl, 0, "hotfile")
	if err != nil {
		return NFSPoint{}, err
	}
	if err := prefill(cl, fh, hotBytes); err != nil {
		return NFSPoint{}, err
	}
	clients := make([]*nfs.Client, 0, len(cl.Clients))
	for _, h := range cl.Clients {
		clients = append(clients, h.NFS)
	}
	load := &workload.NFSReadLoad{
		Clients:     clients,
		FH:          fh,
		FileSize:    hotBytes,
		RequestSize: reqKB * 1024,
		Pattern:     workload.HotSet,
		Concurrency: opt.Concurrency,
	}
	return runNFSLoad(cl, load, opt, reqKB)
}
