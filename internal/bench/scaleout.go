package bench

import (
	"fmt"
	"strings"
	"sync"

	"ncache/internal/extfs"
	"ncache/internal/netbuf"
	"ncache/internal/nfs"
	"ncache/internal/passthru"
	"ncache/internal/sim"
	"ncache/internal/trace"
	"ncache/internal/workload"
)

// ScaleoutCounts is the server-count sweep of the -exp scaleout experiment.
var ScaleoutCounts = []int{1, 2, 4, 8}

// ScaleoutTargets is the iSCSI shard count every sweep point runs over.
const ScaleoutTargets = 2

// scaleoutFlushPeriod paces the per-server background Cache.Sync that
// drives FHO→LBN re-indexing (and thus remap/invalidate traffic) during
// the measurement window.
const scaleoutFlushPeriod = 40 * sim.Millisecond

// ScaleoutPoint is one measured server count of the scale-out sweep. All
// fields are plain scalars so seed-replay tests can compare points with
// reflect.DeepEqual.
type ScaleoutPoint struct {
	Servers int
	Targets int
	// Streams is the number of concurrent closed-loop request streams
	// (hosts × client processes × workers per process).
	Streams       int
	ThroughputMBs float64
	OpsPerSec     float64
	ReadP99Us     float64
	WriteP99Us    float64
	// ServerCPUMax is the hottest front-end server's utilization;
	// ControlCPU is the control-plane node's (0 on one server).
	ServerCPUMax float64
	ControlCPU   float64
	LinkUtil     float64
	Errors       uint64
	RouteErrors  uint64
	// Control-plane activity over the whole run. CPLookups counts per-FH
	// lookups served by the control node; CPMembers counts member-set
	// bootstraps; LocalRouteHits counts routes the clients answered from
	// their ring replicas without touching the control plane.
	CPLookups       uint64
	CPMembers       uint64
	LocalRouteHits  uint64
	RemapsStarted   uint64
	RemapsSent      uint64
	RemapRetries    uint64
	RemapsAbandoned uint64
	InvalsApplied   uint64
	ResolverRetries uint64
	EpochFlushes    uint64
	// Epochs/SimEvents are this point's sharded-engine barrier count and
	// executed-event count over the whole run (zero on the legacy engine).
	// Both are pure functions of the schedule, so replay suites may compare
	// them; Epochs/point is the per-topology view of the epoch-count gate.
	Epochs    uint64
	SimEvents uint64
}

// RunScaleout sweeps the pass-through cluster across ScaleoutCounts
// front-end servers over ScaleoutTargets shards, reporting aggregate
// throughput and latency per server count (the scale-out figure).
func RunScaleout(opt Options) ([]ScaleoutPoint, error) {
	return RunScaleoutCounts(opt, ScaleoutCounts, ScaleoutTargets)
}

// RunScaleoutCounts runs the sweep over an explicit server-count list
// (tests use small lists at short windows).
func RunScaleoutCounts(opt Options, counts []int, targets int) ([]ScaleoutPoint, error) {
	opt = opt.withDefaults()
	var out []ScaleoutPoint
	for _, n := range counts {
		p, err := runScaleoutPoint(opt, n, targets)
		if err != nil {
			return nil, fmt.Errorf("scaleout %d servers: %w", n, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// runScaleoutPoint measures one (server count, target count) topology: a
// hot-set read/write mix routed per file handle through each client host's
// control-plane resolver, with client population scaled with the server
// count (the paper's scale-out methodology: offered load grows with the
// tier, so a flat curve means the tier does not scale).
func runScaleoutPoint(opt Options, servers, targets int) (ScaleoutPoint, error) {
	hosts := 2 * servers
	procsPerHost := 32 / opt.Scale
	if procsPerHost < 1 {
		procsPerHost = 1
	}
	const (
		reqSize   = 16 * 1024
		writeSize = 8 * 1024
		writePct  = 10
	)
	// The hot set grows with the tier (8 files per server) and shrinks with
	// Options.Scale so short test windows still reach cache steady state.
	fileSize := uint64(1<<20) / uint64(opt.Scale)
	if fileSize < 64*1024 {
		fileSize = 64 * 1024
	}
	numFiles := 8 * servers
	fileBlocks := int64(fileSize / extfs.BlockSize)
	cs := clusterSpec{
		mode:          passthru.NCache,
		nics:          1,
		servers:       servers,
		targets:       targets,
		clients:       hosts,
		blocksPerDisk: int64(numFiles)*fileBlocks + 8192,
		fsCacheBlocks: 4096,
		ncacheBytes:   64 << 20,
		faultSpec:     opt.FaultSpec,
		faultSeed:     opt.FaultSeed,
		workers:       opt.Workers,
		// Clients reach the testbed over a LAN hop, not a fabric port:
		// 50µs of access latency (vs the 5µs switch) is the paper's
		// client RTT scale, and hands every client shard 10× the
		// lookahead of a fabric link. The control-plane node sits on the
		// same LAN tier — it is management traffic with a 10 ms retry
		// protocol, not data path — which keeps its busy message stream
		// from capping every server shard's epoch at the fabric floor.
		clientLinkLatency:  50 * sim.Microsecond,
		controlLinkLatency: 50 * sim.Microsecond,
	}
	names := make([]string, numFiles)
	cl, err := cs.build(func(f *extfs.Formatter) error {
		for i := range names {
			names[i] = fmt.Sprintf("hot%03d", i)
			if _, err := f.AddFile(names[i], fileSize, nil); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return ScaleoutPoint{}, err
	}
	defer cl.Close()
	files := make([]nfs.FH, numFiles)
	for i, name := range names {
		if files[i], err = lookupFH(cl, i%hosts, name); err != nil {
			return ScaleoutPoint{}, err
		}
	}

	// One routed client set per host; each simulated client process on the
	// host shares the host's route cache, as processes on one machine share
	// the kernel's.
	scs := make([]*passthru.ScaleClient, hosts)
	var routes []workload.RouteFn
	for i := range scs {
		if scs[i], err = cl.NewScaleClient(cl.Clients[i]); err != nil {
			return ScaleoutPoint{}, err
		}
		for p := 0; p < procsPerHost; p++ {
			routes = append(routes, scs[i].Route)
		}
	}

	// Warm every file through its owning server (one routed sequential pass
	// per file, spread across hosts) so the measured window starts from
	// cache steady state on every topology — and every host's route cache
	// is populated the same way a long-running deployment's would be.
	if err := prefillRouted(cl, scs, files, fileSize, reqSize); err != nil {
		return ScaleoutPoint{}, err
	}

	load := &workload.RoutedMixLoad{
		Routes:      routes,
		Files:       files,
		FileSize:    fileSize,
		RequestSize: reqSize,
		WriteSize:   writeSize,
		WritePct:    writePct,
		Concurrency: opt.Concurrency,
		Seed:        0x5ca1e0a7,
	}
	tr := trace.NewTracer(cl.Eng, fmt.Sprintf("scaleout/%dsrv", servers))
	tr.SetKeepSpans(opt.Chrome != nil)
	load.SetTracer(tr)

	// Background flushers: every server syncs its dirty buffer cache on a
	// staggered period, so dirty FHO-indexed blocks get written out (and
	// re-indexed by LBN) while the window runs — the remap protocol is on
	// the measured path, not just an idle-time cleanup. Each flusher ticks
	// on its own server's shard (the Sync must mutate that server's cache
	// from its own event stream under the parallel engine); the harness
	// control shard stays off the per-epoch critical path. flushing is only
	// written between runs, with every shard quiescent, so the app shards
	// read it barrier-ordered.
	flushing := true
	for i, app := range cl.Apps {
		app := app
		eng := app.Node.Eng
		var tick func()
		tick = func() {
			if !flushing {
				return
			}
			app.Cache.Sync(func(error) {})
			eng.Schedule(scaleoutFlushPeriod, tick)
		}
		eng.Schedule(scaleoutFlushPeriod+sim.Duration(i)*sim.Millisecond, tick)
	}

	p := ScaleoutPoint{
		Servers: servers,
		Targets: targets,
		Streams: len(routes) * opt.Concurrency,
	}
	runner := &workload.Runner{Eng: cl.Eng, Warmup: opt.Warmup, Window: opt.Window}
	cl.Faults.Arm()
	m, err := runner.Run(load,
		func() {
			resetClusterStats(cl)
			tr.ResetStats()
		},
		func() {
			for _, app := range cl.Apps {
				if u := app.Node.CPU.Utilization(); u > p.ServerCPUMax {
					p.ServerCPUMax = u
				}
			}
			if cl.Control != nil {
				p.ControlCPU = cl.Control.Node().CPU.Utilization()
			}
			p.LinkUtil = maxLinkUtil(cl)
			tr.Freeze()
			cl.Faults.Quiesce()
			// Stop the flushers so the post-window drain terminates.
			flushing = false
		})
	if err != nil {
		return ScaleoutPoint{}, err
	}
	p.ThroughputMBs = m.Throughput() / 1e6
	p.OpsPerSec = m.OpsPerSec()
	p.Errors = m.Errors
	p.RouteErrors = load.RouteErrors()
	if s := tr.Summary(); s != nil {
		for _, op := range s.Ops {
			switch op.Op {
			case "read":
				p.ReadP99Us = float64(op.P99) / 1e3
			case "write":
				p.WriteP99Us = float64(op.P99) / 1e3
			}
		}
	}
	if cl.Control != nil {
		p.CPLookups = cl.Control.Stats.LookupsFH
		p.CPMembers = cl.Control.Stats.LookupsMembers
		p.RemapsStarted = cl.Control.Stats.RemapsStarted
	}
	for _, app := range cl.Apps {
		if app.Agent != nil {
			p.RemapsSent += app.Agent.Stats.RemapsSent
			p.RemapRetries += app.Agent.Stats.RemapRetries
			p.RemapsAbandoned += app.Agent.Stats.RemapsAbandoned
			p.InvalsApplied += app.Agent.Stats.InvalidationsApplied
		}
	}
	for _, sc := range scs {
		if sc.Resolver != nil {
			p.LocalRouteHits += sc.Resolver.Stats.LocalHits
			p.ResolverRetries += sc.Resolver.Stats.Retries
			p.EpochFlushes += sc.Resolver.Stats.EpochFlush
		}
	}
	// Read the engine's own counters (not the package tally, which ncbench
	// drains per record): per-point epoch counts survive alongside the
	// sweep-wide aggregate.
	st := cl.Eng.RunStats()
	p.Epochs, p.SimEvents = st.Epochs, st.Events
	opt.Chrome.Add(tr)
	return p, nil
}

// prefillRouted streams every file once through its owning server. The
// completion tallies are mutex-guarded: each file's chain of callbacks runs
// on its issuing host's shard under the parallel engine.
func prefillRouted(cl *passthru.Cluster, scs []*passthru.ScaleClient, files []nfs.FH, fileSize uint64, reqSize int) error {
	var mu sync.Mutex
	pending := len(files)
	var werr error
	fileDone := func(err error) {
		mu.Lock()
		if err != nil && werr == nil {
			werr = err
		}
		pending--
		mu.Unlock()
	}
	for i, fh := range files {
		fh := fh
		sc := scs[i%len(scs)]
		sc.Route(fh, func(c *nfs.Client, err error) {
			if err != nil {
				fileDone(err)
				return
			}
			off := uint64(0)
			var step func()
			step = func() {
				if off >= fileSize {
					fileDone(nil)
					return
				}
				o := off
				off += uint64(reqSize)
				c.Read(fh, o, reqSize, func(data *netbuf.Chain, _ nfs.Attr, err error) {
					if data != nil {
						data.Release()
					}
					if err != nil {
						fileDone(err)
						return
					}
					step()
				})
			}
			step()
		})
	}
	if err := cl.Eng.Run(); err != nil {
		return err
	}
	if werr != nil {
		return fmt.Errorf("scaleout prefill: %w", werr)
	}
	if pending != 0 {
		return fmt.Errorf("scaleout prefill: %d files did not complete", pending)
	}
	return nil
}

// FormatScaleoutPoints renders the scale-out figure: aggregate throughput
// and tail latency vs front-end server count, with speedup relative to the
// one-server run and the control-plane activity that kept the tier
// coherent while it scaled.
func FormatScaleoutPoints(points []ScaleoutPoint) string {
	var base float64
	for _, p := range points {
		if p.Servers == 1 {
			base = p.ThroughputMBs
		}
	}
	var b strings.Builder
	b.WriteString("fig-scaleout: pass-through tier scale-out (hot-set mix, 10% writes, routed clients)\n")
	fmt.Fprintf(&b, "%-7s %-7s %7s %9s %9s %7s %9s %10s %6s %6s %5s\n",
		"servers", "targets", "streams", "MB/s", "ops/s", "speedup",
		"read_p99", "write_p99", "srvCPU", "cpCPU", "errs")
	for _, p := range points {
		speedup := ""
		if base > 0 {
			speedup = fmt.Sprintf("%.2fx", p.ThroughputMBs/base)
		}
		fmt.Fprintf(&b, "%-7d %-7d %7d %9.1f %9.0f %7s %7.1fµs %8.1fµs %5.0f%% %5.0f%% %5d\n",
			p.Servers, p.Targets, p.Streams, p.ThroughputMBs, p.OpsPerSec, speedup,
			p.ReadP99Us, p.WriteP99Us, 100*p.ServerCPUMax, 100*p.ControlCPU,
			p.Errors+p.RouteErrors)
	}
	b.WriteString("\ncontrol-plane activity (whole run):\n")
	fmt.Fprintf(&b, "%-7s %9s %8s %9s %7s %7s %8s %8s %7s %7s %9s\n",
		"servers", "lookups", "members", "ringHits", "remaps", "sent", "retries", "invals", "rslvRtr", "epFlush", "epochs")
	for _, p := range points {
		fmt.Fprintf(&b, "%-7d %9d %8d %9d %7d %7d %8d %8d %7d %7d %9d\n",
			p.Servers, p.CPLookups, p.CPMembers, p.LocalRouteHits,
			p.RemapsStarted, p.RemapsSent,
			p.RemapRetries, p.InvalsApplied, p.ResolverRetries, p.EpochFlushes,
			p.Epochs)
	}
	return b.String()
}
