package bench

import (
	"os"
	"strconv"
	"strings"
	"testing"

	"ncache/internal/passthru"
	"ncache/internal/trace"
)

// testFaultSeed reads the CI seed-matrix override (NCACHE_FAULT_SEED); the
// default seed 1 matches the results/fig-fault.txt artifact.
func testFaultSeed(t *testing.T) uint64 {
	t.Helper()
	s := os.Getenv("NCACHE_FAULT_SEED")
	if s == "" {
		return 1
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		t.Fatalf("NCACHE_FAULT_SEED=%q: %v", s, err)
	}
	return v
}

// faultOpts is the quick-scale configuration of the degradation tests; the
// traced run carries per-layer fault attribution.
func faultOpts(t *testing.T, spec string) Options {
	opt := quickOpts()
	opt.Latency = true
	opt.FaultSpec = spec
	opt.FaultSeed = testFaultSeed(t)
	return opt
}

// layerFaults returns (count, delay) of fault injections booked to one layer
// of the read op.
func layerFaults(p NFSPoint, l trace.Layer) (uint64, float64) {
	if p.Lat == nil {
		return 0, 0
	}
	for _, op := range p.Lat.Ops {
		if op.Op != "read" {
			continue
		}
		for _, ls := range op.Layers {
			if ls.Layer == l {
				return ls.FaultCount, float64(ls.Fault)
			}
		}
	}
	return 0, 0
}

// TestFaultDegradation is the headline assertion of the fault subsystem:
// under every fault class NCache degrades no worse than Original — faulted
// NCache throughput stays at or above faulted Original throughput (with a
// small slack for scheduling noise), and neither mode surfaces request
// errors (all injected faults are absorbed by recovery, not by clients).
//
// Note the comparison is absolute, not relative-slowdown: NCache's higher
// fault-free throughput means a rate-based schedule injects MORE faults into
// it per window, so its percentage slowdown can legitimately exceed
// Original's while its absolute service level remains strictly better.
func TestFaultDegradation(t *testing.T) {
	for _, sc := range FaultScenarios {
		if sc == "none" {
			continue
		}
		spec := sc
		t.Run(sc, func(t *testing.T) {
			pts := make(map[passthru.Mode]NFSPoint)
			for _, mode := range FaultModes {
				p, err := runFaultPoint(faultOpts(t, spec), mode)
				if err != nil {
					t.Fatal(err)
				}
				if p.Errors != 0 {
					t.Errorf("%s under %s: %d request errors escaped recovery", mode, sc, p.Errors)
				}
				if p.RPCTimeouts != 0 {
					t.Errorf("%s under %s: %d RPC calls abandoned", mode, sc, p.RPCTimeouts)
				}
				injected := uint64(0)
				for _, r := range p.FaultReport {
					injected += r.Injected
				}
				if injected == 0 {
					t.Errorf("%s under %s: schedule never fired", mode, sc)
				}
				pts[mode] = p
			}
			orig, nc := pts[passthru.Original], pts[passthru.NCache]
			if nc.ThroughputMBs < orig.ThroughputMBs*0.95 {
				t.Errorf("NCache degrades worse than Original under %s: %.1f MB/s vs %.1f MB/s",
					sc, nc.ThroughputMBs, orig.ThroughputMBs)
			}
		})
	}
}

// TestFaultBaselineUnperturbed checks a wired-but-fault-free cluster (the
// "none" scenario builds no injector at all) matches a run that never heard
// of the fault subsystem: recovery machinery is strictly opt-in.
func TestFaultBaselineUnperturbed(t *testing.T) {
	opt := quickOpts()
	plain, err := runFig4Point(opt, passthru.NCache, 16, int64(96*1024)/int64(opt.Scale))
	if err != nil {
		t.Fatal(err)
	}
	viaFault, err := runFaultPoint(faultOpts(t, ""), passthru.NCache)
	if err != nil {
		t.Fatal(err)
	}
	if plain.ThroughputMBs != viaFault.ThroughputMBs || plain.OpsPerSec != viaFault.OpsPerSec {
		t.Fatalf("empty fault spec perturbed the run: %.3f MB/s %.1f ops/s vs %.3f MB/s %.1f ops/s",
			plain.ThroughputMBs, plain.OpsPerSec, viaFault.ThroughputMBs, viaFault.OpsPerSec)
	}
	if viaFault.Retransmits != 0 || viaFault.ISCSIRetries != 0 || viaFault.FaultReport != nil {
		t.Fatalf("fault-free run reports fault activity: %+v", viaFault)
	}
}

// TestFaultSeedReproducibility checks clause (c) of the degradation suite:
// the same seed replays a faulted run bit-for-bit — identical throughput,
// counters, attribution and schedule report — while a different seed moves
// the injection points.
func TestFaultSeedReproducibility(t *testing.T) {
	opt := faultOpts(t, "frame-loss")
	run := func(seed uint64) string {
		o := opt
		o.FaultSeed = seed
		p, err := runFaultPoint(o, passthru.NCache)
		if err != nil {
			t.Fatal(err)
		}
		return FormatFaultPoints([]FaultPoint{{Scenario: "frame-loss", NFSPoint: p}})
	}
	a, b := run(opt.FaultSeed), run(opt.FaultSeed)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", a, b)
	}
	if other := run(opt.FaultSeed + 1); other == a {
		t.Fatal("different seeds produced identical faulted runs")
	}
}

// TestFaultLayerAttribution checks injected faults land on the right trace
// layer: disk schedules charge LDisk and leave the network clean; frame
// schedules charge the transports (drop recovery is booked to LNet by the
// RPC retransmission timer) and leave the disks clean.
func TestFaultLayerAttribution(t *testing.T) {
	p, err := runFaultPoint(faultOpts(t, "slow-disk"), passthru.NCache)
	if err != nil {
		t.Fatal(err)
	}
	if n, d := layerFaults(p, trace.LDisk); n == 0 || d <= 0 {
		t.Errorf("slow-disk: LDisk attribution = %d/%.0f, want >0", n, d)
	}
	if n, _ := layerFaults(p, trace.LNet); n != 0 {
		t.Errorf("slow-disk: %d faults leaked onto LNet", n)
	}

	p, err = runFaultPoint(faultOpts(t, "frame-loss"), passthru.NCache)
	if err != nil {
		t.Fatal(err)
	}
	if p.Retransmits == 0 {
		t.Fatal("frame-loss: no RPC retransmissions at rate 0.002")
	}
	if n, d := layerFaults(p, trace.LNet); n == 0 || d <= 0 {
		t.Errorf("frame-loss: LNet attribution = %d/%.0f, want >0", n, d)
	}
	if n, _ := layerFaults(p, trace.LDisk); n != 0 {
		t.Errorf("frame-loss: %d faults leaked onto LDisk", n)
	}
}

// TestFaultReportRendering smoke-checks the fig-fault table pieces on a
// single cheap point (the full sweep is cmd/ncbench territory).
func TestFaultReportRendering(t *testing.T) {
	p, err := runFaultPoint(faultOpts(t, "slow-disk"), passthru.Original)
	if err != nil {
		t.Fatal(err)
	}
	base, err := runFaultPoint(faultOpts(t, ""), passthru.Original)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatFaultPoints([]FaultPoint{
		{Scenario: "none", NFSPoint: base},
		{Scenario: "slow-disk", NFSPoint: p},
	})
	for _, want := range []string{"vs none", "slowdisk:disk*", "disk="} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

// TestFaultTransportLossRecovery is the tentpole acceptance at bench scale:
// the transport comparison under the frame-loss preset completes with zero
// escaped request errors over BOTH transports — UDP absorbing loss through
// datagram-RPC retransmission, TCP through RTO/fast-retransmit — with each
// transport's recovery machinery demonstrably exercised, and the whole
// faulted comparison replaying bit-for-bit at the same seed.
func TestFaultTransportLossRecovery(t *testing.T) {
	opt := faultOpts(t, "frame-loss")
	opt.Latency = false
	first, err := RunTransportComparison(opt)
	if err != nil {
		t.Fatal(err)
	}
	var tcpRtx, rpcRtx uint64
	for _, p := range first {
		if p.Errors != 0 {
			t.Errorf("%s/%s: %d request errors escaped loss recovery",
				p.Mode, p.Transport, p.Errors)
		}
		switch p.Transport {
		case "tcp":
			tcpRtx += p.TCPRetransmits
		case "udp":
			rpcRtx += p.RPCRetransmits
		}
	}
	if tcpRtx == 0 {
		t.Error("frame loss on client links provoked no TCP retransmissions")
	}
	if rpcRtx == 0 {
		t.Error("frame loss on client links provoked no RPC retransmissions")
	}
	second, err := RunTransportComparison(opt)
	if err != nil {
		t.Fatal(err)
	}
	diffPoints(t, "transport under frame-loss", first, second)
}
