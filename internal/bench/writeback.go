package bench

import (
	"fmt"
	"strings"

	"ncache/internal/extfs"
	"ncache/internal/nfs"
	"ncache/internal/passthru"
	"ncache/internal/workload"
)

// WritebackArms names the two durability arms fig-writeback compares: both
// acknowledge an NFS WRITE only once it is durable, but "sync" forces every
// write through apply+flush before the ack while "wal" group-commits the
// intent to the write-ahead log and lets the batching flusher move the data
// behind the ack.
var WritebackArms = []string{"sync", "wal"}

// writebackWriteMixPct is the write share of the regular-data operations in
// the fig-writeback SFS sweep — write-heavy, where the dirty-data path is
// the bottleneck (the SPECsfs default is ~17%).
const writebackWriteMixPct = 50

// WritebackPoint is one durability arm's measured point of the write-heavy
// SFS sweep. Pipeline counters are totals over the whole run (warm-up
// included — the WAL and flusher never reset mid-run); they are zero on the
// sync arm, which has no WAL.
type WritebackPoint struct {
	Arm            string
	RegularDataPct int
	WriteMixPct    int
	OpsPerSec      float64
	ThroughputMBs  float64
	ServerCPU      float64
	Errors         uint64
	// Write-ahead log activity: group commits, mean records per commit,
	// peak journal depth in records.
	WALCommits     uint64
	MeanCommitRecs float64
	WALPeakDepth   int64
	// Flusher activity: coalesced batches, mean blocks per batch, peak
	// dirty memory, and admission stalls at the high watermark.
	FlushBatches    uint64
	MeanBatchBlocks float64
	DirtyPeakMB     float64
	Stalls          uint64
	StallMs         float64
}

// RunWriteback measures the write-back pipeline against the synchronous
// dirty-data path at equal durability: the same write-heavy SFS load on the
// same NCache testbed, acked-means-durable on both arms.
func RunWriteback(opt Options) ([]WritebackPoint, error) {
	opt = opt.withDefaults()
	var out []WritebackPoint
	for _, arm := range WritebackArms {
		p, err := runWritebackPoint(opt, arm)
		if err != nil {
			return nil, fmt.Errorf("fig-writeback %s: %w", arm, err)
		}
		out = append(out, p)
	}
	return out, nil
}

func runWritebackPoint(opt Options, arm string) (WritebackPoint, error) {
	fileSize := uint64(sfsFileSize / opt.Scale)
	fileSize -= fileSize % extfs.BlockSize
	if fileSize == 0 {
		fileSize = extfs.BlockSize
	}
	totalBlocks := int64(sfsFileCount) * int64(fileSize/extfs.BlockSize)

	cs := clusterSpec{
		mode:          passthru.NCache,
		nics:          1,
		clients:       2,
		blocksPerDisk: totalBlocks/4 + 16384,
		fsCacheBlocks: 4096,
		ncacheBytes:   (int64(totalBlocks)*extfs.BlockSize*3)/2 + (64 << 20),
		workers:       opt.Workers,
		writeback: passthru.WritebackConfig{
			Enabled:      true,
			WriteThrough: arm == "sync",
		},
	}
	var specs []extfs.FileSpec
	cl, err := cs.build(func(f *extfs.Formatter) error {
		for i := 0; i < sfsFileCount; i++ {
			spec, err := f.AddFile(fmt.Sprintf("wb-%04d", i), fileSize, nil)
			if err != nil {
				return err
			}
			specs = append(specs, spec)
		}
		_, err := f.AddFile("scratch-marker", extfs.BlockSize, nil)
		return err
	})
	if err != nil {
		return WritebackPoint{}, err
	}
	defer cl.Close()

	files := make([]workload.FileRef, 0, len(specs))
	for _, spec := range specs {
		fh, err := lookupFH(cl, 0, spec.Name)
		if err != nil {
			return WritebackPoint{}, err
		}
		if err := prefill(cl, fh, spec.Size); err != nil {
			return WritebackPoint{}, err
		}
		files = append(files, workload.FileRef{FH: fh, Size: spec.Size})
	}

	clients := make([]*nfs.Client, 0, len(cl.Clients))
	for _, h := range cl.Clients {
		clients = append(clients, h.NFS)
	}
	load := &workload.SFSLoad{
		Clients: clients,
		Cfg: workload.SFSConfig{
			RegularDataPct: 75,
			WriteMixPct:    writebackWriteMixPct,
			Files:          files,
			ScratchDir:     nfs.RootFH(),
			Concurrency:    opt.Concurrency * 4,
		},
	}
	runner := &workload.Runner{Eng: cl.Eng, Warmup: opt.Warmup, Window: opt.Window}
	p := WritebackPoint{Arm: arm, RegularDataPct: 75, WriteMixPct: writebackWriteMixPct}
	m, err := runner.Run(load,
		func() { resetClusterStats(cl) },
		func() { p.ServerCPU = cl.App.Node.CPU.Utilization() })
	if err != nil {
		return WritebackPoint{}, err
	}
	p.OpsPerSec = m.OpsPerSec()
	p.ThroughputMBs = m.Throughput() / 1e6
	p.Errors = m.Errors
	if wb := cl.App.WB; wb != nil {
		p.WALCommits = wb.WALCommits
		p.MeanCommitRecs = wb.MeanCommitSize()
		p.WALPeakDepth = wb.WALPeakDepth
		p.FlushBatches = wb.FlushBatches
		p.MeanBatchBlocks = wb.MeanBatchBlocks()
		p.DirtyPeakMB = float64(wb.DirtyPeakBytes) / 1e6
		p.Stalls = wb.Stalls
		p.StallMs = float64(wb.StallNs) / 1e6
	}
	return p, nil
}

// FormatWritebackPoints renders the fig-writeback durability-vs-throughput
// table.
func FormatWritebackPoints(points []WritebackPoint) string {
	var base WritebackPoint
	for _, p := range points {
		if p.Arm == "sync" {
			base = p
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fig-writeback: write-heavy SFS (%d%% data ops, %d%% writes), acked == durable on both arms\n",
		75, writebackWriteMixPct)
	fmt.Fprintf(&b, "%-6s %9s %8s %9s %10s %8s %9s %8s %8s %9s %8s %10s\n",
		"arm", "ops/s", "MB/s", "srvCPU%", "commits", "recs/ci", "walPeak", "batches", "blk/bat", "dirtyMB", "stalls", "vs sync")
	for _, p := range points {
		gain := ""
		if p.Arm != "sync" && base.OpsPerSec > 0 {
			gain = fmt.Sprintf("%+.1f%%", gainPct(p.OpsPerSec, base.OpsPerSec))
		}
		fmt.Fprintf(&b, "%-6s %9.0f %8.1f %9.1f %10d %8.1f %9d %8d %8.1f %9.2f %8d %10s\n",
			p.Arm, p.OpsPerSec, p.ThroughputMBs, p.ServerCPU*100,
			p.WALCommits, p.MeanCommitRecs, p.WALPeakDepth,
			p.FlushBatches, p.MeanBatchBlocks, p.DirtyPeakMB, p.Stalls, gain)
	}
	return b.String()
}
